// rstp — command-line front end to the library.
//
//   rstp bounds  <c1> <c2> <d> <k>
//       Print every closed-form bound for the model.
//
//   rstp run     <protocol> <c1> <c2> <d> <k> <n|bits> [options]
//       Run a protocol end to end and print transfer statistics.
//         protocol: alpha | beta | gamma | altbit | indexed | strawman
//         n|bits:   a length (random input, seeded) or a literal 0/1 string
//         --env worst|fast|random|adversarial   (default worst)
//         --seed N                              (default 1)
//         --trace FILE                          write the timed trace
//         --trace-out FILE                      write a Chrome-trace/Perfetto
//                                               span timeline (rstp-trace-v1)
//         --stats                               print trace statistics
//         --metrics-out FILE                    append the run's metrics (JSONL)
//         --timing                              print wall-clock phase timings
//                                               (raw and net of the measured
//                                               timer-pair overhead)
//
//   rstp verify  <c1> <c2> <d> <tracefile> <bits>
//       Check a saved trace against good(A) and the expected output.
//
//   rstp explore <protocol> <d> <k> <bits>
//       Exhaustively verify all schedules (c1=c2=1) for a small instance;
//       prints a counterexample trace on failure.
//
//   rstp bench [--json PATH] [--threads N]... [--metrics-out FILE]
//       Run the reference simulation campaign at several thread counts,
//       verify bitwise determinism, time the codec hot paths, and write the
//       perf baseline JSON (schema in docs/PERF.md). Campaign progress lines
//       go to stderr; --metrics-out appends one JSONL row per job.
//
//   rstp campaign [--metrics-out FILE] [--threads N] [--dashboard]
//       Run the fixed golden campaign grid (the regression-gate reference;
//       bitwise deterministic for any thread count) and append one JSONL row
//       per job to --metrics-out. --dashboard renders a live terminal view
//       (per-protocol bars, jobs/sec, ETA, rolling effort mean and delay
//       percentiles); when stdout is not a TTY or NO_COLOR is set it
//       degrades to the one-line progress mode (never ANSI). --no-dashboard
//       wins over --dashboard. Display never touches the result.
//
//   rstp mega [--sessions N] [--shards N] [--threads N] [--protocol P]
//             [--k K] [--bits N] [--seed N] [--max-events N]
//             [--metrics-out FILE]
//       Run N multiplexed sessions on one simulated clock (the
//       million-session engine, sim/multi_session.h). Defaults are the
//       golden megasession cell, so `rstp mega --sessions 10000
//       --metrics-out F` regenerates tests/golden/megasession_baseline.jsonl.
//       Appends ONE JSONL row — the session-order fold — carrying the
//       `sessions` and `events_per_sec` schema fields.
//
//   rstp report <metrics.jsonl>
//       Render a metrics JSONL file (from --metrics-out) as a table.
//
//   rstp report <old.jsonl> <new.jsonl> [--json] [--fail-on SPEC]
//       Join two metrics series by run identity and report per-cell and
//       aggregate deltas. --json emits the machine-readable
//       rstp-metrics-diff-v1 document instead of the table. --fail-on turns
//       the diff into a gate: SPEC is a comma-separated list of clauses like
//       'effort_mean>1%,delay_p99>5%,cells_changed>0' (grammar in
//       docs/OBSERVABILITY.md); any tripped clause exits 3.
//
//   rstp fuzz <protocol> [options]
//       Coverage-guided schedule/fault fuzzing (docs/TESTING.md). The run is
//       deterministic for a fixed --seed/--budget, for any --jobs value;
//       failures are minimized and written as replayable repro documents.
//         --seed N            master seed (default 1)
//         --budget N          case executions (default 256)
//         --jobs N            worker threads (default 1; 0 = hardware)
//         --k K  --bits N     alphabet size / max input bits
//         --faults            enable the fault injector (drops, duplicates,
//                             late deliveries, in-alphabet corruption)
//         --corpus DIR        seed with every *.case file in DIR (sorted)
//         --repro-out FILE    write the first failure's repro document here
//         --metrics-out FILE  append one JSONL row per corpus entry
//         --wait-override W / --block-override B   mutant knobs
//         --max-events N / --time-budget-ms N / --keep-going
//         --dashboard         live per-generation view (corpus, coverage
//                             growth, crash/failure counters); same TTY /
//                             NO_COLOR / --no-dashboard fallback as campaign
//
//   rstp adversary [options]
//       Coverage-guided adversary synthesis (docs/TESTING.md): per grid cell,
//       search the space of legal delivery schedules and process step plans
//       for an effort maximizer, and report the empirical gap to the paper's
//       Theorem 5.3/5.6 lower bounds. Generation 0 always contains the
//       hand-coded worst case, so best >= hand on every cell unless the
//       search itself regressed — exit 1 in that case.
//         --grid golden|quick   16-cell baseline grid / 4-cell smoke grid
//         --budget N            genome evaluations per cell (default 64)
//         --jobs N              worker threads (default 1; 0 = hardware);
//                               the result is bitwise identical for any value
//         --seed N              master seed (default 1)
//         --max-events N        per-run event cap (default 200000)
//         --repro-out FILE      write the max-gap cell's winning genome as a
//                               replayable rstp-adversary-v1 artifact
//         --metrics-out FILE    append one JSONL row per cell (gap_ratio
//                               feeds `rstp report --fail-on 'gap_ratio_max>…'`)
//
//   rstp replay <reprofile> [--trace-out FILE]
//       Re-execute a repro document (rstp-fuzz-repro-v1 or rstp-adversary-v1,
//       sniffed from the header line) and compare every recorded field.
//       Exit 0 iff the recorded verdict reproduces bitwise (even a failing
//       verdict), 1 on any divergence. --trace-out writes the replay's span
//       timeline (Chrome-trace JSON) for post-mortem inspection in Perfetto
//       (fuzz repros only).
//
// Exit code 0 on success/verified, 1 on failure, 2 on usage errors (including
// malformed diff inputs and threshold specs), 3 on a tripped --fail-on gate.
#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rstp/core/bounds.h"
#include "rstp/core/drift.h"
#include "rstp/core/effort.h"
#include "rstp/est/runner.h"
#include "rstp/core/trace_stats.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/ioa/trace_io.h"
#include "rstp/obs/dashboard.h"
#include "rstp/obs/diff.h"
#include "rstp/obs/sinks.h"
#include "rstp/obs/trace.h"
#include "rstp/protocols/factory.h"
#include "rstp/sim/adversary.h"
#include "rstp/sim/campaign_bench.h"
#include "rstp/sim/multi_session.h"
#include "rstp/sim/fuzz.h"

namespace {

using namespace rstp;
using protocols::ProtocolKind;

int usage() {
  std::cerr << "usage:\n"
               "  rstp bounds  <c1> <c2> <d> <k>\n"
               "  rstp run     <protocol> <c1> <c2> <d> <k> <n|bits>"
               " [--env worst|fast|random|adversarial] [--seed N] [--trace FILE]"
               " [--trace-out FILE] [--stats] [--metrics-out FILE] [--timing]"
               " [--estimator[=margin]] [--drift SPEC]\n"
               "  rstp verify  <c1> <c2> <d> <tracefile> <bits>\n"
               "  rstp explore <protocol> <d> <k> <bits>\n"
               "  rstp bench   [--json PATH] [--threads N]... [--metrics-out FILE]\n"
               "  rstp campaign [--metrics-out FILE] [--threads N] [--dashboard]"
               " [--no-dashboard] [--estimator[=margin]] [--drift SPEC]\n"
               "  rstp mega    [--sessions N] [--shards N] [--threads N]"
               " [--protocol P] [--k K] [--bits N] [--seed N] [--max-events N]"
               " [--metrics-out FILE]\n"
               "  rstp report  <metrics.jsonl>\n"
               "  rstp report  <old.jsonl> <new.jsonl> [--json] [--fail-on SPEC]\n"
               "  rstp fuzz    <protocol> [--seed N] [--budget N] [--jobs N] [--k K]"
               " [--bits N] [--faults] [--corpus DIR] [--repro-out FILE]"
               " [--metrics-out FILE] [--wait-override W] [--block-override B]"
               " [--max-events N] [--time-budget-ms N] [--keep-going]"
               " [--dashboard] [--no-dashboard]\n"
               "  rstp adversary [--grid golden|quick] [--budget N] [--jobs N]"
               " [--seed N] [--max-events N] [--repro-out FILE] [--metrics-out FILE]\n"
               "  rstp replay  <reprofile> [--trace-out FILE]\n";
  return 2;
}

/// Checked numeric parsing: the whole token must be one decimal number that
/// fits the target type. std::nullopt on any malformed or out-of-range token
/// (unlike std::stoll, which accepts trailing garbage and throws on range).
template <typename T>
[[nodiscard]] std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
  return value;
}

/// Reports a bad numeric token the way usage errors are reported: name the
/// argument, echo the offending token, exit 2.
int bad_number(std::string_view what, std::string_view token) {
  std::cerr << "invalid " << what << " '" << token << "': expected a decimal integer\n";
  return 2;
}

/// Parses an `--estimator=margin` value. Empty optional (after the error
/// message naming the token) on a non-numeric or out-of-range margin.
[[nodiscard]] std::optional<double> parse_margin(std::string_view token) {
  const auto parsed = parse_number<double>(token);
  if (!parsed.has_value() || !(*parsed >= 0.0 && *parsed < 1.0)) {
    std::cerr << "invalid --estimator margin '" << token << "': expected a number in [0, 1)\n";
    return std::nullopt;
  }
  return parsed;
}

/// Parses a `--drift` spec, turning a DriftParseError into the usual exit-2
/// style report naming the offending token.
[[nodiscard]] std::optional<core::DriftSpec> parse_drift(const std::string& token) {
  try {
    return core::DriftSpec::parse(token);
  } catch (const core::DriftParseError& e) {
    std::cerr << "bad --drift segment '" << e.token() << "': " << e.what() << "\n";
    return std::nullopt;
  }
}

std::optional<ProtocolKind> parse_protocol(const std::string& name) {
  for (const auto kind : protocols::kAllProtocolKinds) {
    if (name == protocols::to_string(kind)) return kind;
  }
  return std::nullopt;
}

/// Parses the input argument: a pure 0/1 string of length ≥ 8 is a literal
/// bit sequence; anything else is a decimal length for a seeded random
/// input (so "64" is 64 random bits, "01100110" is those exact 8 bits).
/// std::nullopt when the token is neither.
std::optional<std::vector<ioa::Bit>> parse_input(const std::string& text, std::uint64_t seed) {
  if (text.find_first_not_of("01") == std::string::npos && text.size() >= 8) {
    std::vector<ioa::Bit> bits;
    bits.reserve(text.size());
    for (const char c : text) bits.push_back(static_cast<ioa::Bit>(c - '0'));
    return bits;
  }
  const auto length = parse_number<std::uint32_t>(text);
  if (!length.has_value()) return std::nullopt;
  return core::make_random_input(*length, seed);
}

/// Appends metric records to a JSONL file (append, so several runs can
/// accumulate into one report input). False when the file cannot be opened.
bool append_metrics_jsonl(const std::string& path,
                          const std::vector<obs::RunMetricsRecord>& records) {
  std::ofstream out{path, std::ios::app};
  if (!out) return false;
  for (const obs::RunMetricsRecord& record : records) {
    obs::write_run_metrics_jsonl(out, record);
  }
  return static_cast<bool>(out);
}

int cmd_bounds(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto c1 = parse_number<std::int64_t>(argv[2]);
  if (!c1.has_value()) return bad_number("c1", argv[2]);
  const auto c2 = parse_number<std::int64_t>(argv[3]);
  if (!c2.has_value()) return bad_number("c2", argv[3]);
  const auto d = parse_number<std::int64_t>(argv[4]);
  if (!d.has_value()) return bad_number("d", argv[4]);
  const auto k = parse_number<std::uint32_t>(argv[5]);
  if (!k.has_value()) return bad_number("k", argv[5]);
  const auto params = core::TimingParams::make(*c1, *c2, *d);
  std::cout << core::compute_bounds(params, *k) << '\n';
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 8) return usage();
  const auto kind = parse_protocol(argv[2]);
  if (!kind.has_value()) {
    std::cerr << "unknown protocol '" << argv[2] << "'\n";
    return 2;
  }
  const auto c1 = parse_number<std::int64_t>(argv[3]);
  if (!c1.has_value()) return bad_number("c1", argv[3]);
  const auto c2 = parse_number<std::int64_t>(argv[4]);
  if (!c2.has_value()) return bad_number("c2", argv[4]);
  const auto d = parse_number<std::int64_t>(argv[5]);
  if (!d.has_value()) return bad_number("d", argv[5]);
  const auto k = parse_number<std::uint32_t>(argv[6]);
  if (!k.has_value()) return bad_number("k", argv[6]);
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(*c1, *c2, *d);
  cfg.k = *k;

  core::Environment env = core::Environment::worst_case();
  std::uint64_t seed = 1;
  std::string trace_file;
  std::string trace_out_file;
  std::string metrics_file;
  bool want_stats = false;
  bool want_timing = false;
  bool want_estimator = false;
  double est_margin = 0.125;
  core::DriftSpec drift;
  for (int i = 8; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--env" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "worst") {
        env = core::Environment::worst_case();
      } else if (name == "fast") {
        env.transmitter_sched = core::Environment::Sched::FastFixed;
        env.receiver_sched = core::Environment::Sched::FastFixed;
        env.delay = core::Environment::Delay::Zero;
      } else if (name == "random") {
        env = core::Environment::randomized(seed);
      } else if (name == "adversarial") {
        env = core::Environment::adversarial_fast();
      } else {
        std::cerr << "unknown environment '" << name << "'\n";
        return 2;
      }
    } else if (arg == "--seed" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint64_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--seed", argv[i]);
      seed = *parsed;
      env.seed = seed;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_file = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_file = arg.substr(std::string_view{"--trace-out="}.size());
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--timing") {
      want_timing = true;
    } else if (arg == "--estimator") {
      want_estimator = true;
    } else if (arg.rfind("--estimator=", 0) == 0) {
      const auto margin = parse_margin(arg.substr(std::string_view{"--estimator="}.size()));
      if (!margin.has_value()) return 2;
      want_estimator = true;
      est_margin = *margin;
    } else if (arg == "--drift" && i + 1 < argc) {
      const auto parsed = parse_drift(argv[++i]);
      if (!parsed.has_value()) return 2;
      drift = *parsed;
    } else if (arg.rfind("--drift=", 0) == 0) {
      const auto parsed = parse_drift(arg.substr(std::string_view{"--drift="}.size()));
      if (!parsed.has_value()) return 2;
      drift = *parsed;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (want_estimator && *kind != ProtocolKind::Beta && *kind != ProtocolKind::Gamma) {
    std::cerr << "--estimator supports only beta and gamma\n";
    return 2;
  }
  const auto input = parse_input(argv[7], seed);
  if (!input.has_value()) return bad_number("input length", argv[7]);
  cfg.input = *input;
  if (*kind == ProtocolKind::Indexed) {
    cfg.k = std::max<std::uint32_t>(cfg.k,
                                    static_cast<std::uint32_t>(2 * std::max<std::size_t>(
                                                                       1, cfg.input.size())));
  }

  std::uint64_t overhead_ns = 0;
  if (want_timing) {
    obs::set_phase_timing_enabled(true);
    // The calibration loop spins real timer pairs; reset so the run's
    // attribution starts clean (the overhead gauge survives the reset).
    overhead_ns = obs::measure_phase_overhead_ns_per_pair();
    obs::reset_phase_totals();
  }
  std::optional<obs::trace::Tracer> tracer;
  std::optional<obs::trace::ModelRecorder> recorder;
  if (!trace_out_file.empty()) {
    tracer.emplace();
    recorder.emplace(*tracer);
    if (want_timing) tracer->attach_host_hook();
  }
  // run_estimated with no drift and the estimator off is exactly
  // core::run_protocol (same seed stream), so one call covers all modes.
  est::EstimatorConfig est_cfg;
  est_cfg.margin = est_margin;
  const est::EstimatedRun est_run =
      est::run_estimated(*kind, cfg, env, drift, want_estimator, est_cfg,
                         /*record_trace=*/true, 50'000'000,
                         recorder.has_value() ? &*recorder : nullptr);
  const core::ProtocolRun& run = est_run.run;
  if (tracer.has_value()) tracer->detach_host_hook();
  if (want_timing) obs::set_phase_timing_enabled(false);
  std::cout << "protocol:   " << protocols::to_string(*kind) << "\n"
            << "model:      " << cfg.params << " k=" << cfg.k << "\n"
            << "input bits: " << cfg.input.size() << "\n"
            << "completed:  " << (run.result.quiescent ? "yes" : "NO") << "\n"
            << "correct:    " << (run.output_correct ? "yes" : "NO") << "\n";
  if (!drift.empty()) {
    std::cout << "drift:      " << drift << "\n";
  }
  if (want_estimator) {
    std::cout << "estimator:  margin " << est_margin << ", (c1,c2,d) = ("
              << est_run.gauges.c1_hat << ", " << est_run.gauges.c2_hat << ", "
              << est_run.gauges.d_hat << "), " << est_run.gauges.gap_samples << " gap / "
              << est_run.gauges.delay_samples << " delay samples, " << est_run.gauges.resizes
              << " resizes\n";
  }
  double effort = 0;
  if (run.result.last_transmitter_send.has_value() && !cfg.input.empty()) {
    effort = static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
             static_cast<double>(cfg.input.size());
    std::cout << "effort:     " << effort << " ticks/bit\n";
  }
  const core::VerifyResult verdict = core::verify_trace(run.result.trace, cfg.params, cfg.input);
  std::cout << "verifier:   " << (verdict.ok() ? "accepts (in good(A))" : "REJECTS") << '\n';
  if (!verdict.ok()) std::cout << verdict;
  if (want_stats) {
    std::cout << core::compute_trace_stats(run.result.trace) << '\n';
  }
  if (want_timing) {
    std::cout << "phase timing (timer-pair overhead " << overhead_ns
              << " ns, clock: " << to_string(host_clock_source()) << "):\n";
    const std::vector<obs::PhaseTotal> totals = obs::collect_phase_totals();
    obs::print_phase_table(std::cout, totals, overhead_ns);
    obs::print_phase_tree(std::cout, totals, obs::collect_phase_edge_totals());
  }
  if (!metrics_file.empty()) {
    obs::RunMetricsRecord record;
    record.protocol = protocols::to_string(*kind);
    record.c1 = cfg.params.c1.ticks();
    record.c2 = cfg.params.c2.ticks();
    record.d = cfg.params.d.ticks();
    record.k = cfg.k;
    record.input_bits = cfg.input.size();
    record.seed = env.seed;
    record.effort = effort;
    record.end_time = (run.result.end_time - Time::zero()).ticks();
    record.correct = run.output_correct;
    record.quiescent = run.result.quiescent;
    record.metrics = run.result.metrics;
    record.est = est_run.gauges;
    if (!append_metrics_jsonl(metrics_file, {record})) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics:    appended to " << metrics_file << "\n";
  }
  if (!trace_file.empty()) {
    std::ofstream out{trace_file};
    if (!out) {
      std::cerr << "cannot open '" << trace_file << "'\n";
      return 1;
    }
    ioa::write_trace(out, run.result.trace);
    std::cout << "trace:      written to " << trace_file << " (" << run.result.trace.size()
              << " events)\n";
  }
  if (tracer.has_value()) {
    std::ofstream out{trace_out_file};
    if (!out) {
      std::cerr << "cannot open '" << trace_out_file << "'\n";
      return 1;
    }
    tracer->write_chrome_json(out);
    const obs::trace::Summary summary = obs::trace::summarize(*tracer);
    std::cout << "trace-out:  written to " << trace_out_file << " (" << summary.model_spans
              << " spans, " << summary.flow_events << " flow events, " << summary.host_spans
              << " host spans, " << summary.dropped << " dropped, delay p50/p95/p99 "
              << summary.delay_p50 << '/' << summary.delay_p95 << '/' << summary.delay_p99
              << " ticks)\n";
  }
  return run.output_correct && verdict.ok() ? 0 : 1;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 7) return usage();
  const auto c1 = parse_number<std::int64_t>(argv[2]);
  if (!c1.has_value()) return bad_number("c1", argv[2]);
  const auto c2 = parse_number<std::int64_t>(argv[3]);
  if (!c2.has_value()) return bad_number("c2", argv[3]);
  const auto d = parse_number<std::int64_t>(argv[4]);
  if (!d.has_value()) return bad_number("d", argv[4]);
  const auto params = core::TimingParams::make(*c1, *c2, *d);
  std::ifstream in{argv[5]};
  if (!in) {
    std::cerr << "cannot open '" << argv[5] << "'\n";
    return 1;
  }
  const ioa::TimedTrace trace = ioa::parse_trace(in);
  std::vector<ioa::Bit> expected;
  for (const char c : std::string{argv[6]}) {
    if (c != '0' && c != '1') {
      std::cerr << "expected-output must be a 0/1 string\n";
      return 2;
    }
    expected.push_back(static_cast<ioa::Bit>(c - '0'));
  }
  const core::VerifyResult verdict = core::verify_trace(trace, params, expected);
  std::cout << verdict << '\n';
  return verdict.ok() ? 0 : 1;
}

int cmd_explore(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto kind = parse_protocol(argv[2]);
  if (!kind.has_value()) {
    std::cerr << "unknown protocol '" << argv[2] << "'\n";
    return 2;
  }
  const auto d = parse_number<std::int64_t>(argv[3]);
  if (!d.has_value()) return bad_number("d", argv[3]);
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, *d);
  const auto k = parse_number<std::uint32_t>(argv[4]);
  if (!k.has_value()) return bad_number("k", argv[4]);
  cfg.k = *k;
  for (const char c : std::string{argv[5]}) {
    if (c != '0' && c != '1') {
      std::cerr << "input must be a 0/1 string\n";
      return 2;
    }
    cfg.input.push_back(static_cast<ioa::Bit>(c - '0'));
  }
  if (*kind == ProtocolKind::Indexed) {
    cfg.k = std::max<std::uint32_t>(
        cfg.k, static_cast<std::uint32_t>(2 * std::max<std::size_t>(1, cfg.input.size())));
  }
  const auto instance = protocols::make_protocol(*kind, cfg);
  ioa::ExplorerConfig config;
  config.d = *d;
  const auto& input = cfg.input;
  const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    const auto& out = dynamic_cast<const protocols::ReceiverBase&>(r).output();
    return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
  };
  const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    return dynamic_cast<const protocols::ReceiverBase&>(r).output() == input;
  };
  ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix, complete};
  const ioa::ExplorerResult result = explorer.run();
  std::cout << "states:      " << result.distinct_states << "\n"
            << "transitions: " << result.transitions << "\n"
            << "terminals:   " << result.terminal_states << "\n"
            << "verdict:     " << (result.verified() ? "VERIFIED over all schedules"
                                                     : "VIOLATION FOUND")
            << '\n';
  if (!result.verified()) {
    if (result.exhausted_caps) {
      std::cout << "(state/branching caps exhausted — result inconclusive)\n";
    }
    if (!result.counterexample.empty()) {
      std::cout << "\ncounterexample:\n";
      ioa::write_trace(std::cout, result.counterexample);
    }
  }
  return result.verified() ? 0 : 1;
}

int cmd_bench(int argc, char** argv) {
  std::string json_path = "BENCH_campaign.json";
  std::string metrics_file;
  sim::CampaignBenchOptions options;
  std::vector<unsigned> threads;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const auto parsed = parse_number<unsigned>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--threads", argv[i]);
      threads.push_back(*parsed);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else {
      return usage();
    }
  }
  if (!threads.empty()) options.thread_counts = threads;
  // Progress goes to stderr so the stdout summary (and anything grepping it)
  // stays stable; the bench module attaches it to the untimed warmup run.
  options.progress.out = &std::cerr;
  options.progress.interval = std::chrono::milliseconds{500};

  const sim::CampaignBenchReport report = sim::run_campaign_bench(options);
  sim::print_campaign_bench(std::cout, report);
  if (!metrics_file.empty()) {
    const std::vector<obs::RunMetricsRecord> records = sim::campaign_metrics_records(
        report.serial_result, sim::reference_campaign_spec().input_bits);
    if (!append_metrics_jsonl(metrics_file, records)) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics:    appended " << records.size() << " jobs to " << metrics_file
              << "\n";
  }
  std::ofstream out{json_path};
  if (!out) {
    std::cerr << "cannot open '" << json_path << "'\n";
    return 1;
  }
  sim::write_campaign_bench_json(out, report);
  std::cout << "baseline:   written to " << json_path << "\n";
  return report.ok() ? 0 : 1;
}

/// How `--dashboard` resolves against the terminal: live ANSI frames only on
/// a real TTY with NO_COLOR unset; otherwise the one-line fallback, which
/// never emits escape bytes (CI pipes it and greps for exactly that).
enum class ProgressStyle { None, Lines, Frames };

[[nodiscard]] ProgressStyle resolve_progress_style(bool want_dashboard) {
  if (!want_dashboard) return ProgressStyle::None;
  return obs::stream_supports_dashboard(stdout) ? ProgressStyle::Frames : ProgressStyle::Lines;
}

[[nodiscard]] obs::DashboardState campaign_dashboard_state(const sim::CampaignSnapshot& snap) {
  obs::DashboardState s;
  s.mode = obs::DashboardState::Mode::Campaign;
  s.label = "campaign";
  s.elapsed_seconds = snap.elapsed_seconds;
  s.done = snap.jobs_done;
  s.total = snap.jobs_total;
  s.events = snap.events;
  s.effort_jobs = snap.effort_jobs;
  if (snap.effort_jobs > 0) {
    s.effort_mean = snap.effort_sum / static_cast<double>(snap.effort_jobs);
  }
  s.protocols.reserve(snap.protocols.size());
  for (const sim::CampaignProtocolSnapshot& p : snap.protocols) {
    obs::DashboardProtocolRow row;
    row.name = std::string{protocols::to_string(p.protocol)};
    row.done = p.done;
    row.total = p.total;
    row.events = p.events;
    row.effort_jobs = p.effort_jobs;
    if (p.effort_jobs > 0) row.effort_mean = p.effort_sum / static_cast<double>(p.effort_jobs);
    s.protocols.push_back(std::move(row));
  }
  s.delay_buckets = snap.delay_buckets;
  s.delay_count = snap.delay_count;
  return s;
}

[[nodiscard]] obs::DashboardState fuzz_dashboard_state(const sim::FuzzGenerationSnapshot& snap,
                                                       protocols::ProtocolKind protocol) {
  obs::DashboardState s;
  s.mode = obs::DashboardState::Mode::Fuzz;
  s.label = "fuzz " + std::string{protocols::to_string(protocol)};
  s.elapsed_seconds = snap.elapsed_seconds;
  s.done = snap.executed;
  s.total = snap.budget;
  s.generation = snap.generation;
  s.corpus = snap.corpus;
  s.coverage = snap.coverage;
  s.coverage_gain = snap.coverage_gain;
  s.crashes = snap.crashes;
  s.failures = snap.failures;
  return s;
}

int cmd_campaign(int argc, char** argv) {
  std::string metrics_file;
  unsigned threads = 1;
  bool want_dashboard = false;
  bool want_estimator = false;
  std::optional<double> margin_override;
  std::optional<core::DriftSpec> drift_override;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      const auto parsed = parse_number<unsigned>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--threads", argv[i]);
      threads = *parsed;
    } else if (arg == "--dashboard") {
      want_dashboard = true;
    } else if (arg == "--no-dashboard") {
      want_dashboard = false;
    } else if (arg == "--estimator") {
      want_estimator = true;
    } else if (arg.rfind("--estimator=", 0) == 0) {
      const auto margin = parse_margin(arg.substr(std::string_view{"--estimator="}.size()));
      if (!margin.has_value()) return 2;
      want_estimator = true;
      margin_override = *margin;
    } else if (arg == "--drift" && i + 1 < argc) {
      const auto parsed = parse_drift(argv[++i]);
      if (!parsed.has_value()) return 2;
      drift_override = *parsed;
    } else if (arg.rfind("--drift=", 0) == 0) {
      const auto parsed = parse_drift(arg.substr(std::string_view{"--drift="}.size()));
      if (!parsed.has_value()) return 2;
      drift_override = *parsed;
    } else {
      return usage();
    }
  }
  // Bare --estimator runs the pinned estimator grid (margin 0, its own drift
  // axis — the checked-in estimator_baseline.jsonl); overrides are for
  // ad-hoc sweeps, not the baseline.
  sim::CampaignSpec spec =
      want_estimator ? est::golden_estimator_spec() : sim::golden_campaign_spec();
  if (margin_override.has_value()) spec.estimator.margin = *margin_override;
  if (drift_override.has_value()) spec.drifts = {*drift_override};
  const sim::Campaign campaign{spec};
  const ProgressStyle style = resolve_progress_style(want_dashboard);
  sim::CampaignProgress progress;
  obs::Dashboard dashboard{std::cout};
  if (style == ProgressStyle::Lines) {
    progress.out = &std::cout;
    progress.interval = std::chrono::milliseconds{500};
  } else if (style == ProgressStyle::Frames) {
    progress.interval = std::chrono::milliseconds{250};
    progress.on_snapshot = [&dashboard](const sim::CampaignSnapshot& snap) {
      dashboard.draw(campaign_dashboard_state(snap));
    };
  }
  const sim::CampaignResult result =
      style == ProgressStyle::None ? campaign.run(threads) : campaign.run(threads, progress);
  dashboard.close();
  if (want_estimator) {
    std::cout << "estimator grid: " << result.jobs.size() << " jobs, " << result.incorrect
              << " incorrect, est penalty mean/max " << result.est_penalty.mean << "/"
              << result.est_penalty.max << ", mean effort " << result.effort.mean
              << " ticks/bit\n";
  } else {
    std::cout << "golden grid: " << result.jobs.size() << " jobs, " << result.incorrect
              << " incorrect, mean effort " << result.effort.mean << " ticks/bit\n";
  }
  if (!metrics_file.empty()) {
    if (!append_metrics_jsonl(metrics_file, sim::campaign_metrics_records(result,
                                                                          spec.input_bits))) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics:     appended " << result.jobs.size() << " jobs to " << metrics_file
              << "\n";
  }
  return result.all_correct() ? 0 : 1;
}

int cmd_mega(int argc, char** argv) {
  // Defaults ARE the golden megasession cell: `rstp mega --sessions 10000
  // --metrics-out F` reproduces the checked-in baseline bit for bit (modulo
  // the wall-clock events_per_sec field, which the gate treats as aggregate-
  // only). Every flag below is an ad-hoc override for exploration.
  sim::MultiSessionSpec spec = sim::golden_megasession_spec();
  unsigned threads = 1;
  std::string metrics_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sessions" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint64_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--sessions", argv[i]);
      spec.sessions = *parsed;
    } else if (arg == "--shards" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint32_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--shards", argv[i]);
      spec.shards = *parsed;
    } else if (arg == "--threads" && i + 1 < argc) {
      const auto parsed = parse_number<unsigned>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--threads", argv[i]);
      threads = *parsed;
    } else if (arg == "--protocol" && i + 1 < argc) {
      const auto kind = parse_protocol(argv[++i]);
      if (!kind.has_value()) {
        std::cerr << "unknown protocol '" << argv[i] << "'\n";
        return 2;
      }
      spec.protocol = *kind;
    } else if (arg == "--k" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint32_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--k", argv[i]);
      spec.k = *parsed;
    } else if (arg == "--bits" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint32_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--bits", argv[i]);
      spec.input_bits = *parsed;
    } else if (arg == "--seed" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint64_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--seed", argv[i]);
      spec.base_seed = *parsed;
    } else if (arg == "--max-events" && i + 1 < argc) {
      const auto parsed = parse_number<std::uint64_t>(argv[++i]);
      if (!parsed.has_value()) return bad_number("--max-events", argv[i]);
      spec.max_events_per_session = *parsed;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else {
      return usage();
    }
  }
  const sim::MultiSession mega{spec};
  const sim::MultiSessionResult result = mega.run(threads);
  std::cout << "mega: " << result.sessions << " sessions on " << spec.shards << " shards, "
            << result.total_events << " events in " << std::fixed << std::setprecision(2)
            << result.elapsed_seconds << "s (" << std::setprecision(0)
            << result.events_per_sec << " events/sec), mean effort " << std::setprecision(2)
            << result.effort.mean << " ticks/bit, "
            << result.sessions - result.correct_sessions << " incorrect, "
            << result.sessions - result.quiescent_sessions << " non-quiescent\n";
  if (!metrics_file.empty()) {
    if (!append_metrics_jsonl(metrics_file, {sim::multi_session_metrics_record(spec, result)})) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics: appended 1 fold record to " << metrics_file << "\n";
  }
  return result.all_correct() ? 0 : 1;
}

/// The two-file (diff / gate) form of `rstp report`. Malformed inputs and
/// threshold specs are usage-class errors (exit 2, naming the offending line
/// or token); a tripped gate is its own outcome (exit 3) so CI can tell
/// "regressed" from "broken invocation".
int cmd_report_diff(const std::string& old_path, const std::string& new_path, bool want_json,
                    const std::string& fail_on) {
  std::vector<obs::Threshold> thresholds;
  try {
    if (!fail_on.empty()) thresholds = obs::parse_thresholds(fail_on);
  } catch (const obs::ThresholdParseError& e) {
    std::cerr << "bad --fail-on clause '" << e.token() << "': " << e.what() << "\n";
    return 2;
  }
  const auto read_series = [](const std::string& path,
                              std::vector<obs::RunMetricsRecord>& out) {
    std::ifstream in{path};
    if (!in) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    try {
      out = obs::read_run_metrics_jsonl(in);
    } catch (const obs::JsonParseError& e) {
      std::cerr << "error in '" << path << "': " << e.what() << "\n";
      return 2;
    }
    return 0;
  };
  std::vector<obs::RunMetricsRecord> old_records;
  std::vector<obs::RunMetricsRecord> new_records;
  if (const int rc = read_series(old_path, old_records); rc != 0) return rc;
  if (const int rc = read_series(new_path, new_records); rc != 0) return rc;

  const obs::DiffReport report = obs::diff_metrics(old_records, new_records);
  if (want_json) {
    obs::write_diff_json(std::cout, report);
  } else {
    obs::print_diff_table(std::cout, report);
  }
  if (thresholds.empty()) return 0;
  std::vector<obs::ThresholdViolation> violations;
  try {
    violations = obs::evaluate_thresholds(report, thresholds);
  } catch (const obs::ThresholdParseError& e) {
    std::cerr << "bad --fail-on clause '" << e.token() << "': " << e.what() << "\n";
    return 2;
  }
  if (violations.empty()) {
    std::cerr << "gate: all " << thresholds.size() << " thresholds hold\n";
    return 0;
  }
  for (const obs::ThresholdViolation& v : violations) {
    std::cerr << "gate: " << v.threshold.source << " tripped: " << v.quantity.name << " "
              << (v.quantity.integral ? std::to_string(v.quantity.old_u)
                                      : std::to_string(v.quantity.old_v))
              << " -> "
              << (v.quantity.integral ? std::to_string(v.quantity.new_u)
                                      : std::to_string(v.quantity.new_v))
              << " (+" << v.observed << (v.threshold.relative ? "%" : "") << ")\n";
  }
  return 3;
}

int cmd_report(int argc, char** argv) {
  std::vector<std::string> files;
  bool want_json = false;
  std::string fail_on;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      want_json = true;
    } else if (arg == "--fail-on" && i + 1 < argc) {
      fail_on = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() == 2) {
    return cmd_report_diff(files[0], files[1], want_json, fail_on);
  }
  // The single-file form keeps its original contract: render the table,
  // exit 1 on unreadable or malformed input (via main's catch-all).
  if (files.size() != 1 || want_json || !fail_on.empty()) return usage();
  std::ifstream in{files[0]};
  if (!in) {
    std::cerr << "cannot open '" << files[0] << "'\n";
    return 1;
  }
  const std::vector<obs::RunMetricsRecord> records = obs::read_run_metrics_jsonl(in);
  obs::print_metrics_table(std::cout, records);
  return 0;
}

/// One JSONL row per fuzz-corpus entry, in the standard run-metrics schema
/// (so `rstp report` and the diff gate work on fuzz output unchanged).
[[nodiscard]] obs::RunMetricsRecord fuzz_metrics_record(const sim::FuzzCase& c,
                                                        const sim::FuzzCaseResult& r) {
  obs::RunMetricsRecord record;
  record.protocol = std::string{protocols::to_string(c.protocol)};
  record.c1 = c.params.c1.ticks();
  record.c2 = c.params.c2.ticks();
  record.d = c.params.d.ticks();
  record.k = c.k;
  record.input_bits = c.input_bits;
  record.seed = c.input_seed;
  record.effort = r.effort;
  record.end_time = r.end_time;
  record.correct = !r.failed && !r.crashed;
  record.quiescent = r.quiescent;
  record.metrics = r.metrics;
  return record;
}

int cmd_fuzz(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto kind = parse_protocol(argv[2]);
  if (!kind.has_value()) {
    std::cerr << "unknown protocol '" << argv[2] << "'\n";
    return 2;
  }
  sim::FuzzSpec spec;
  spec.protocol = *kind;
  std::string corpus_dir;
  std::string repro_file;
  std::string metrics_file;
  bool want_dashboard = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_number = [&](auto& slot) {
      if (i + 1 >= argc) return false;
      const auto parsed =
          parse_number<std::remove_reference_t<decltype(slot)>>(argv[++i]);
      if (!parsed.has_value()) return false;
      slot = *parsed;
      return true;
    };
    if (arg == "--seed") {
      if (!take_number(spec.seed)) return bad_number("--seed", argv[i]);
    } else if (arg == "--budget") {
      if (!take_number(spec.budget)) return bad_number("--budget", argv[i]);
    } else if (arg == "--jobs") {
      if (!take_number(spec.jobs)) return bad_number("--jobs", argv[i]);
    } else if (arg == "--k") {
      if (!take_number(spec.k)) return bad_number("--k", argv[i]);
    } else if (arg == "--bits") {
      if (!take_number(spec.max_input_bits)) return bad_number("--bits", argv[i]);
    } else if (arg == "--max-events") {
      if (!take_number(spec.max_events)) return bad_number("--max-events", argv[i]);
    } else if (arg == "--time-budget-ms") {
      if (!take_number(spec.time_budget_ms)) return bad_number("--time-budget-ms", argv[i]);
    } else if (arg == "--wait-override") {
      if (!take_number(spec.wait_override)) return bad_number("--wait-override", argv[i]);
    } else if (arg == "--block-override") {
      if (!take_number(spec.block_override)) return bad_number("--block-override", argv[i]);
    } else if (arg == "--faults") {
      spec.faults_enabled = true;
    } else if (arg == "--keep-going") {
      spec.stop_on_failure = false;
    } else if (arg == "--dashboard") {
      want_dashboard = true;
    } else if (arg == "--no-dashboard") {
      want_dashboard = false;
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--repro-out" && i + 1 < argc) {
      repro_file = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }

  if (!corpus_dir.empty()) {
    std::vector<std::filesystem::path> paths;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator{corpus_dir, ec}) {
      if (entry.path().extension() == ".case") paths.push_back(entry.path());
    }
    if (ec) {
      std::cerr << "cannot read corpus dir '" << corpus_dir << "': " << ec.message() << "\n";
      return 2;
    }
    std::sort(paths.begin(), paths.end());
    for (const std::filesystem::path& path : paths) {
      std::ifstream in{path};
      if (!in) {
        std::cerr << "cannot open '" << path.string() << "'\n";
        return 2;
      }
      sim::FuzzCase seed_case = sim::parse_fuzz_case(in);
      seed_case.protocol = spec.protocol;  // the corpus seeds schedules, not protocols
      spec.corpus_seeds.push_back(seed_case);
    }
  }

  const ProgressStyle style = resolve_progress_style(want_dashboard);
  obs::Dashboard dashboard{std::cout};
  if (style == ProgressStyle::Frames) {
    spec.on_generation = [&dashboard, &spec](const sim::FuzzGenerationSnapshot& snap) {
      dashboard.draw(fuzz_dashboard_state(snap, spec.protocol));
    };
  } else if (style == ProgressStyle::Lines) {
    spec.on_generation = [&spec](const sim::FuzzGenerationSnapshot& snap) {
      std::cout << obs::render_line(fuzz_dashboard_state(snap, spec.protocol)) << '\n'
                << std::flush;
    };
  }

  const sim::FuzzResult result = sim::run_fuzz(spec);
  dashboard.close();
  std::cout << "protocol:      " << protocols::to_string(spec.protocol) << "\n"
            << "executed:      " << result.executed << " cases (budget " << spec.budget
            << ", jobs " << spec.jobs << ")\n"
            << "coverage:      " << result.coverage << " fingerprints (hash "
            << result.coverage_hash << ")\n"
            << "corpus:        " << result.corpus.size() << " cases\n"
            << "failures:      " << result.failures.size() << "\n";

  if (!metrics_file.empty()) {
    std::vector<obs::RunMetricsRecord> records;
    records.reserve(result.corpus.size());
    for (std::size_t i = 0; i < result.corpus.size(); ++i) {
      records.push_back(fuzz_metrics_record(result.corpus[i], result.corpus_results[i]));
    }
    if (!append_metrics_jsonl(metrics_file, records)) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics:       appended " << records.size() << " rows to " << metrics_file
              << "\n";
  }

  if (result.ok()) return 0;
  for (const sim::FuzzFailure& failure : result.failures) {
    std::cout << "\nfailure: " << failure.result.failure << "\n";
  }
  const sim::FuzzFailure& first = result.failures.front();
  if (!repro_file.empty()) {
    std::ofstream out{repro_file};
    if (!out) {
      std::cerr << "cannot open '" << repro_file << "'\n";
      return 1;
    }
    sim::write_fuzz_repro(out, first.minimized, first.result);
    std::cout << "repro:         written to " << repro_file << " (rstp replay " << repro_file
              << ")\n";
  } else {
    std::cout << "\n";  // repro inline: pipe to a file and `rstp replay` it
    sim::write_fuzz_repro(std::cout, first.minimized, first.result);
  }
  return 1;
}

int cmd_adversary(int argc, char** argv) {
  sim::AdversarySpec spec;
  spec.grid = sim::golden_adversary_grid();
  std::string repro_file;
  std::string metrics_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_number = [&](auto& slot) {
      if (i + 1 >= argc) return false;
      const auto parsed =
          parse_number<std::remove_reference_t<decltype(slot)>>(argv[++i]);
      if (!parsed.has_value()) return false;
      slot = *parsed;
      return true;
    };
    if (arg == "--seed") {
      if (!take_number(spec.seed)) return bad_number("--seed", argv[i]);
    } else if (arg == "--budget") {
      if (!take_number(spec.budget)) return bad_number("--budget", argv[i]);
    } else if (arg == "--jobs") {
      if (!take_number(spec.jobs)) return bad_number("--jobs", argv[i]);
    } else if (arg == "--max-events") {
      if (!take_number(spec.max_events)) return bad_number("--max-events", argv[i]);
    } else if (arg == "--grid" && i + 1 < argc) {
      const std::string grid = argv[++i];
      if (grid == "golden") {
        spec.grid = sim::golden_adversary_grid();
      } else if (grid == "quick") {
        spec.grid = sim::quick_adversary_grid();
      } else {
        std::cerr << "unknown grid '" << grid << "' (want golden or quick)\n";
        return 2;
      }
    } else if (arg == "--repro-out" && i + 1 < argc) {
      repro_file = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }

  spec.on_cell = [](const sim::AdversaryProgress& progress) {
    std::cerr << "adversary: cell " << (progress.cell_index + 1) << "/" << progress.cell_count
              << " done\n";
  };
  const sim::AdversaryResult result = sim::run_adversary_search(spec);

  std::cout << "adversary synthesis: " << result.cells.size() << " cells, budget "
            << spec.budget << "/cell, seed " << spec.seed << ", jobs " << spec.jobs
            << " (result hash " << result.result_hash << ")\n";
  std::cout << std::left << std::setw(8) << "proto" << std::right << std::setw(4) << "c1"
            << std::setw(4) << "c2" << std::setw(4) << "d" << std::setw(4) << "k"
            << std::setw(10) << "bound" << std::setw(10) << "hand" << std::setw(10) << "best"
            << std::setw(11) << "gap_ratio" << "  verdict\n";
  for (const sim::AdversaryCellResult& cell : result.cells) {
    std::cout << std::left << std::setw(8) << protocols::to_string(cell.cell.protocol)
              << std::right << std::setw(4) << cell.cell.params.c1.ticks() << std::setw(4)
              << cell.cell.params.c2.ticks() << std::setw(4) << cell.cell.params.d.ticks()
              << std::setw(4) << cell.cell.k << std::setw(10) << std::fixed
              << std::setprecision(3) << cell.lower_bound << std::setw(10) << cell.hand_effort
              << std::setw(10) << cell.best.effort << std::setw(11) << cell.gap_ratio << "  "
              << (cell.beats_hand() ? "best>=hand" : "BELOW HAND") << "\n";
  }

  if (!metrics_file.empty()) {
    const std::vector<obs::RunMetricsRecord> records =
        sim::adversary_metrics_records(result, spec.seed);
    if (!append_metrics_jsonl(metrics_file, records)) {
      std::cerr << "cannot open '" << metrics_file << "'\n";
      return 1;
    }
    std::cout << "metrics:   appended " << records.size() << " rows to " << metrics_file
              << "\n";
  }

  if (!repro_file.empty()) {
    // The most interesting witness: the cell with the largest empirical gap.
    const auto widest = std::max_element(
        result.cells.begin(), result.cells.end(),
        [](const auto& a, const auto& b) { return a.gap_ratio < b.gap_ratio; });
    std::ofstream out{repro_file};
    if (!out) {
      std::cerr << "cannot open '" << repro_file << "'\n";
      return 1;
    }
    sim::write_adversary_repro(out, sim::make_adversary_repro(*widest, spec.max_events));
    std::cout << "repro:     written to " << repro_file << " (rstp replay " << repro_file
              << ")\n";
  }

  if (!result.all_beat_hand()) {
    std::cerr << "adversary search fell below the hand-coded policy on some cell\n";
    return 1;
  }
  return 0;
}

/// Replays an rstp-adversary-v1 artifact (cmd_replay dispatches here after
/// sniffing the header line).
int replay_adversary_file(std::ifstream& in, const std::string& path) {
  const sim::AdversaryRepro repro = sim::parse_adversary_repro(in);
  const sim::AdversaryReplayOutcome outcome = sim::replay_adversary_repro(repro);
  std::cout << "case:       " << protocols::to_string(repro.cell.protocol) << " "
            << repro.cell.params << " k=" << repro.cell.k << " bits="
            << repro.cell.input_bits << " (adversary genome)\n"
            << "effort:     " << std::fixed << std::setprecision(3) << outcome.eval.effort
            << " (last_send " << outcome.eval.last_send << ", "
            << (outcome.eval.correct ? "correct" : "INCORRECT") << ", "
            << (outcome.eval.quiescent ? "quiescent" : "event-capped") << ")\n";
  if (outcome.reproduced) {
    std::cout << "reproduced: yes (all recorded fields match bitwise)\n";
    return 0;
  }
  std::cout << "reproduced: NO — " << outcome.mismatch << "\n";
  (void)path;
  return 1;
}

/// First non-blank, non-comment line of a file (empty if none) — used to
/// sniff which artifact grammar a replay file speaks.
[[nodiscard]] std::string sniff_header_line(const std::string& path) {
  std::ifstream in{path};
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::size_t first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = raw.find_last_not_of(" \t\r");
    return raw.substr(first, last - first + 1);
  }
  return {};
}

int cmd_replay(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string trace_out_file;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_file = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_file = arg.substr(std::string_view{"--trace-out="}.size());
    } else if (arg == "--estimator" || arg.rfind("--estimator=", 0) == 0) {
      std::cerr << "--estimator is not supported for replay: artifacts pin the recorded"
                   " constants\n";
      return 2;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  std::ifstream in{argv[2]};
  if (!in) {
    std::cerr << "cannot open '" << argv[2] << "'\n";
    return 1;
  }
  if (sniff_header_line(argv[2]) == sim::adversary_repro_header()) {
    if (!trace_out_file.empty()) {
      std::cerr << "--trace-out is not supported for adversary artifacts\n";
      return 2;
    }
    return replay_adversary_file(in, argv[2]);
  }
  const sim::FuzzRepro repro = sim::parse_fuzz_repro(in);
  std::optional<obs::trace::Tracer> tracer;
  std::optional<obs::trace::ModelRecorder> recorder;
  if (!trace_out_file.empty()) {
    tracer.emplace();
    recorder.emplace(*tracer);
  }
  const sim::ReplayOutcome outcome =
      sim::replay_fuzz_repro(repro, recorder.has_value() ? &*recorder : nullptr);
  if (tracer.has_value()) {
    std::ofstream trace_out{trace_out_file};
    if (!trace_out) {
      std::cerr << "cannot open '" << trace_out_file << "'\n";
      return 1;
    }
    tracer->write_chrome_json(trace_out);
    const obs::trace::Summary summary = obs::trace::summarize(*tracer);
    std::cout << "trace-out:  written to " << trace_out_file << " (" << summary.model_spans
              << " spans, " << summary.flow_events << " flow events)\n";
  }
  std::cout << "case:       " << protocols::to_string(repro.fuzz_case.protocol) << " "
            << repro.fuzz_case.params << " k=" << repro.fuzz_case.k << " bits="
            << repro.fuzz_case.input_bits << "\n"
            << "verdict:    "
            << (outcome.result.failed ? "FAILED" : outcome.result.crashed ? "crashed (excused)"
                                                                          : "ok")
            << "\n";
  if (!outcome.result.failure.empty()) {
    std::cout << "detail:     " << outcome.result.failure << "\n";
  }
  if (outcome.reproduced) {
    std::cout << "reproduced: yes (all recorded fields match bitwise)\n";
    return 0;
  }
  std::cout << "reproduced: NO — " << outcome.mismatch << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "bounds") return cmd_bounds(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "verify") return cmd_verify(argc, argv);
    if (command == "explore") return cmd_explore(argc, argv);
    if (command == "bench") return cmd_bench(argc, argv);
    if (command == "campaign") return cmd_campaign(argc, argv);
    if (command == "mega") return cmd_mega(argc, argv);
    if (command == "report") return cmd_report(argc, argv);
    if (command == "fuzz") return cmd_fuzz(argc, argv);
    if (command == "adversary") return cmd_adversary(argc, argv);
    if (command == "replay") return cmd_replay(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
