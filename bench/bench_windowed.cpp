// E16 — the pipelined-gamma extension: buying pipelining with alphabet.
//
// A^γw keeps two parity-tagged blocks in flight, halving the per-block round
// trip but also halving the symbol alphabet (one payload bit pays for the
// tag). The theory says it wins iff 2·⌊log2 μ_{k/2}(δ2)⌋ > ⌊log2 μ_k(δ2)⌋ —
// which holds once k is rich relative to δ2 and fails for poor alphabets
// (at k=4 the halved alphabet is binary and B' collapses). This harness
// measures both protocols across k and prints the predicted and observed
// winner; the crossover must land where the bit-counting says.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/gamma_windowed.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;
  for (const std::int64_t d : {8, 32}) {
    const auto params = core::TimingParams::make(1, 2, d);
    const auto delta2 = static_cast<std::uint32_t>(params.delta2());
    char title[150];
    std::snprintf(title, sizeof title,
                  "E16: windowed vs plain gamma, c1=1 c2=2 d=%lld (delta2=%u)",
                  static_cast<long long>(d), delta2);
    bench::print_header(title);
    std::printf("%6s | %5s %5s | %12s %12s | %9s %9s %8s\n", "k", "B_k", "2B'", "gamma",
                "windowed", "predicted", "observed", "check");
    bench::print_rule(84);
    for (const std::uint32_t k : {4u, 8u, 16u, 32u, 64u}) {
      const std::size_t B = combinatorics::floor_log2_mu(k, delta2);
      const std::size_t B2 = 2 * combinatorics::floor_log2_mu(k / 2, delta2);
      const std::size_t n = 48 * B * B2 / std::max<std::size_t>(1, std::min(B, B2));
      const auto gamma =
          core::measure_effort(ProtocolKind::Gamma, params, k, n, Environment::worst_case());
      const auto windowed = core::measure_effort(ProtocolKind::WindowedGamma, params, k, n,
                                                 Environment::worst_case());
      const bool correct = gamma.output_correct && windowed.output_correct;
      const bool predicted_windowed_wins = B2 > B;
      const bool observed_windowed_wins = windowed.effort < gamma.effort;
      // The bit-count prediction is exact at the margins we sweep; require
      // agreement except within 5% (a genuine tie region).
      const bool near_tie =
          std::abs(windowed.effort - gamma.effort) < 0.05 * gamma.effort;
      const bool ok =
          correct && (near_tie || predicted_windowed_wins == observed_windowed_wins);
      all_ok = all_ok && ok;
      std::printf("%6u | %5zu %5zu | %12.4f %12.4f | %9s %9s %8s\n", k, B, B2, gamma.effort,
                  windowed.effort, predicted_windowed_wins ? "windowed" : "gamma",
                  observed_windowed_wins ? "windowed" : "gamma", bench::verdict(ok));
    }
    bench::print_rule(84);
  }
  {
    // Window sweep at rich alphabet: W=1 reproduces plain gamma's rhythm;
    // growing W hides more of the round trip until the pipeline becomes
    // send-limited; far beyond that, the shrinking per-tag alphabet wins
    // back and effort rises again.
    const auto params = core::TimingParams::make(1, 2, 32);
    const std::uint32_t k = 64;
    const auto delta2 = static_cast<std::uint32_t>(params.delta2());
    bench::print_header("E16b: window sweep, k=64, c1=1 c2=2 d=32 (delta2=16)");
    std::printf("%4s %6s %5s | %12s %12s %8s\n", "W", "k/W", "B'", "measured", "predicted",
                "check");
    bench::print_rule(56);
    double w1_effort = 0;
    double best = 1e300;
    for (const std::uint32_t w : {1u, 2u, 4u, 8u, 16u}) {
      const double bound = protocols::windowed_gamma_upper(params, k, w);
      const std::size_t Bp = combinatorics::floor_log2_mu(k / w, delta2);
      protocols::ProtocolConfig cfg;
      cfg.params = params;
      cfg.k = k;
      cfg.window_override = w;
      cfg.input = core::make_random_input(Bp * w * ((160 / w) + 1), w);
      const core::ProtocolRun run = core::run_protocol(ProtocolKind::WindowedGamma, cfg,
                                                       Environment::worst_case(),
                                                       /*record_trace=*/false);
      double effort = 0;
      if (run.result.last_transmitter_send.has_value()) {
        effort =
            static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
            static_cast<double>(cfg.input.size());
      }
      const bool ok = run.output_correct && effort <= bound * (1 + 1e-9);
      all_ok = all_ok && ok;
      if (w == 1) w1_effort = effort;
      best = std::min(best, effort);
      std::printf("%4u %6u %5zu | %12.4f %12.4f %8s\n", w, k / w, Bp, effort, bound,
                  bench::verdict(ok));
    }
    bench::print_rule(56);
    all_ok = all_ok && best < w1_effort;  // some window beats stop-and-wait
  }

  std::printf("E16 verdict: %s — pipelining wins exactly where W*B_{k/W} > B_k; the window "
              "sweep shows the RTT being hidden and the alphabet cost taking over\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
