// The megasession perf baseline: drives sim::MultiSession at three session
// counts (10k / 100k / 1M by default) and writes the sustained
// simulated-events-per-second figures to the machine-tracked
// BENCH_megasession.json (schema in docs/PERF.md). The smallest stage also
// reruns at 2 threads and cross-checks the fold against the serial run
// (same_simulation), so the baseline doubles as a determinism gate. Exit
// code 0 iff every stage was all-correct and the cross-check held.
//
// Input bits shrink as the session count grows (64 → 16 → 4): the point of
// the large stages is scheduler/arena overhead per *event* at scale, not
// per-session protocol work, and this keeps the full sweep tractable on one
// core. --quick runs a single 2k-session stage for the CTest entry.
//
//   bench_megasession [--json PATH] [--quick] [--threads N]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rstp/obs/json.h"
#include "rstp/sim/multi_session.h"

namespace {

struct StageSpec {
  std::uint64_t sessions = 0;
  std::uint32_t shards = 16;
  std::uint32_t input_bits = 64;
};

struct StageResult {
  StageSpec spec;
  rstp::sim::MultiSessionResult result;
  bool deterministic = true;  ///< only checked on the first stage
};

rstp::sim::MultiSessionSpec stage_spec(const StageSpec& stage) {
  rstp::sim::MultiSessionSpec spec = rstp::sim::golden_megasession_spec();
  spec.sessions = stage.sessions;
  spec.shards = stage.shards;
  spec.input_bits = stage.input_bits;
  return spec;
}

void write_json(std::ostream& os, const std::vector<StageResult>& stages, unsigned threads) {
  os << "{\"schema\":\"rstp-bench-megasession-v1\",\"threads\":" << threads << ",\"stages\":[";
  bool first = true;
  for (const StageResult& s : stages) {
    if (!first) os << ",";
    first = false;
    os << "{\"sessions\":" << s.result.sessions << ",\"shards\":" << s.spec.shards
       << ",\"input_bits\":" << s.spec.input_bits
       << ",\"total_events\":" << s.result.total_events
       << ",\"elapsed_seconds\":" << rstp::obs::json_number(s.result.elapsed_seconds)
       << ",\"events_per_sec\":" << rstp::obs::json_number(s.result.events_per_sec)
       << ",\"mean_effort\":" << rstp::obs::json_number(s.result.effort.mean)
       << ",\"correct\":" << (s.result.all_correct() ? "true" : "false")
       << ",\"deterministic\":" << (s.deterministic ? "true" : "false") << "}";
  }
  os << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_megasession.json";
  bool quick = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: bench_megasession [--json PATH] [--quick] [--threads N]\n";
      return 2;
    }
  }

  std::vector<StageSpec> stages;
  if (quick) {
    stages.push_back(StageSpec{2'000, 16, 32});
  } else {
    stages.push_back(StageSpec{10'000, 16, 64});
    stages.push_back(StageSpec{100'000, 64, 16});
    stages.push_back(StageSpec{1'000'000, 256, 4});
  }

  try {
    bool ok = true;
    std::vector<StageResult> results;
    results.reserve(stages.size());
    for (const StageSpec& stage : stages) {
      StageResult r;
      r.spec = stage;
      const rstp::sim::MultiSession mega{stage_spec(stage)};
      r.result = mega.run(threads);
      if (results.empty()) {
        // Determinism cross-check on the cheapest stage: a 2-thread rerun
        // must reproduce the serial session-order fold exactly.
        const rstp::sim::MultiSessionResult threaded = mega.run(2);
        r.deterministic = r.result.same_simulation(threaded);
      }
      ok = ok && r.result.all_correct() && r.deterministic;
      std::cout << "mega " << r.result.sessions << " sessions (" << stage.shards << " shards, "
                << stage.input_bits << " bits): " << r.result.total_events << " events, "
                << r.result.events_per_sec << " events/sec"
                << (r.result.all_correct() ? "" : " [INCORRECT]")
                << (r.deterministic ? "" : " [NONDETERMINISTIC]") << "\n";
      results.push_back(std::move(r));
    }

    std::ofstream out{json_path};
    if (!out) {
      std::cerr << "cannot open '" << json_path << "'\n";
      return 1;
    }
    write_json(out, results, threads);
    std::cout << "baseline: written to " << json_path << "\n";
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
