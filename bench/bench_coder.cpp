// E9 (§3, §6.1): cost of the multiset codec — the "straightforward but
// tedious" encode/decode the paper omits. google-benchmark microbenchmarks
// of rank/unrank and whole-message encode/decode across (k, δ), plus the
// end-to-end simulator's event throughput. These numbers bound the CPU cost
// a real implementation of A^β/A^γ would pay per block.
#include <benchmark/benchmark.h>

#include "rstp/combinatorics/block_coder.h"
#include "rstp/common/rng.h"
#include "rstp/core/effort.h"

namespace {

using namespace rstp;
using combinatorics::BlockCoder;
using combinatorics::Multiset;
using combinatorics::MultisetCodec;
using combinatorics::Symbol;

void BM_MultisetRank(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const MultisetCodec codec{k, delta};
  Rng rng{42};
  // Pre-build a pool of random multisets.
  std::vector<Multiset> pool;
  for (int i = 0; i < 64; ++i) {
    Multiset m{k};
    for (std::uint32_t j = 0; j < delta; ++j) {
      m.add(static_cast<Symbol>(rng.next_below(k)));
    }
    pool.push_back(std::move(m));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.rank(pool[i++ & 63]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultisetRank)->Args({4, 8})->Args({16, 16})->Args({64, 64})->Args({256, 64});

void BM_MultisetUnrank(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const MultisetCodec codec{k, delta};
  Rng rng{43};
  std::vector<bigint::BigUint> ranks;
  for (int i = 0; i < 64; ++i) {
    ranks.push_back(bigint::BigUint{rng.next_u64()} % codec.count());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.unrank(ranks[i++ & 63]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultisetUnrank)->Args({4, 8})->Args({16, 16})->Args({64, 64})->Args({256, 64});

void BM_BlockEncode(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const BlockCoder coder{k, delta};
  const auto bits = core::make_random_input(coder.bits_per_block(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coder.encode(bits));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(static_cast<std::size_t>(state.iterations()) * coder.bits_per_block() / 8));
}
BENCHMARK(BM_BlockEncode)->Args({4, 8})->Args({16, 16})->Args({64, 64});

void BM_BlockDecode(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto delta = static_cast<std::uint32_t>(state.range(1));
  const BlockCoder coder{k, delta};
  const auto bits = core::make_random_input(coder.bits_per_block(), 7);
  const auto block = coder.encode(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coder.decode(block));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(static_cast<std::size_t>(state.iterations()) * coder.bits_per_block() / 8));
}
BENCHMARK(BM_BlockDecode)->Args({4, 8})->Args({16, 16})->Args({64, 64});

void BM_MessageEncode(benchmark::State& state) {
  const BlockCoder coder{16, 16};
  const auto message = core::make_random_input(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coder.encode_message(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) / 8);
}
BENCHMARK(BM_MessageEncode)->Arg(1024)->Arg(16384);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Full simulator runs of A^beta(16): events per second of the whole stack.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    protocols::ProtocolConfig cfg;
    cfg.params = core::TimingParams::make(1, 2, 16);
    cfg.k = 16;
    cfg.input = core::make_random_input(n, 11);
    const core::ProtocolRun run =
        core::run_protocol(protocols::ProtocolKind::Beta, cfg, core::Environment::worst_case(),
                           /*record_trace=*/false);
    if (!run.output_correct) state.SkipWithError("corrupted run");
    events += run.result.event_count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
