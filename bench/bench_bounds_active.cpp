// E5 (Theorem 5.6): the active lower bound table and the optimality gap.
//
// Same layout as E4 but for the active case: lower bound d/log2 ζ_k(δ2),
// upper bound (3d + c2)/⌊log2 μ_k(δ2)⌋ achieved by A^γ(k). Also prints the
// passive lower bound for the same parameters, showing the paper's key
// structural point: the active bound depends on δ2 = d/c2 (what a SLOW
// process can do in d time) while the passive bound depends on δ1 = d/c1 —
// so as timing uncertainty c2/c1 grows the two bounds diverge.
#include <cstdio>

#include "bench_common.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/bounds.h"

int main() {
  using namespace rstp;

  bench::print_header("E5: Theorem 5.6 (active lower bound) vs sec-6.2 upper bound, c1=1 c2=2");
  std::printf("%6s %6s | %10s %10s | %12s %12s %8s | %12s\n", "k", "dlt2", "log2(mu)",
              "log2(zeta)", "lower_5.6", "upper_6.2", "ratio", "passive_5.3");
  bench::print_rule(100);

  bool all_ok = true;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 64u, 256u}) {
    for (const std::int64_t d : {2, 4, 8, 16, 32, 64, 128}) {
      const auto params = core::TimingParams::make(1, 2, d);
      const core::BoundsReport r = core::compute_bounds(params, k);
      const auto delta2 = static_cast<std::uint32_t>(r.delta2);
      const bool ok = r.active_ratio() >= 1.0 && r.active_ratio() < 10.0;
      all_ok = all_ok && ok;
      std::printf("%6u %6lld | %10.3f %10.3f | %12.4f %12.4f %8.3f | %12.4f\n", k,
                  static_cast<long long>(d), combinatorics::log2_mu(k, delta2),
                  combinatorics::log2_zeta(k, delta2), r.active_lower, r.gamma_upper,
                  r.active_ratio(), r.passive_lower);
    }
    bench::print_rule(100);
  }

  bench::print_header("E5b: bound divergence as timing uncertainty grows (k=8, d=64, c1=1)");
  std::printf("%6s %6s %6s | %12s %12s | %12s %12s\n", "c2", "dlt1", "dlt2", "passive_low",
              "active_low", "beta_up", "gamma_up");
  bench::print_rule(84);
  for (const std::int64_t c2 : {1, 2, 4, 8, 16, 32, 64}) {
    const auto params = core::TimingParams::make(1, c2, 64);
    const core::BoundsReport r = core::compute_bounds(params, 8);
    std::printf("%6lld %6lld %6lld | %12.4f %12.4f | %12.4f %12.4f\n",
                static_cast<long long>(c2), static_cast<long long>(r.delta1),
                static_cast<long long>(r.delta2), r.passive_lower, r.active_lower, r.beta_upper,
                r.gamma_upper);
  }
  bench::print_rule(84);
  std::printf("E5 verdict: %s — active ratio bounded; passive/active bounds diverge with c2/c1\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
