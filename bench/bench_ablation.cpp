// E10 — ablation of A^β's design choices (the knobs DESIGN.md calls out):
//
// (a) The idle phase. Figure 3 inserts δ idle steps between blocks so blocks
//     cannot mix in flight. Ablating it (wait < ⌈d/c1⌉) keeps the protocol
//     *faster* but breaks the block-separation argument. A single simulated
//     environment cannot certify either side, so the sweep runs the
//     bounded-exhaustive explorer: it verifies safety over ALL admissible
//     schedules or exhibits a corrupting one. Finding: in this discrete
//     model (simultaneous deliveries keep send order) the exact threshold is
//     wait = ⌈d/c1⌉ − 1 — consecutive blocks' sends end up exactly d apart,
//     which ties but cannot overtake; the paper's ⌈d/c1⌉ is the right bound
//     when ties may resolve either way (the continuous reading). One wait
//     step below that, the explorer finds the corrupting reordering.
//
// (b) The block size. Lemma 6.1 uses block = δ1; correctness only needs the
//     wait, so one might hope bigger blocks amortize the idle phase. They
//     don't: for fixed k, μ_k(n) is only polynomial in n, so bits-per-packet
//     *fall* as blocks grow and effort rises past block = δ1 — the paper's
//     choice is the sweet spot, not just what the lower-bound argument needs.
#include <cstdio>

#include "bench_common.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/protocols/base.h"
#include "rstp/protocols/factory.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  const auto params = core::TimingParams::make(1, 1, 3);  // c1=c2=1, d=3 (explorable)
  const std::int64_t paper_threshold = params.delta1_wait();      // 3
  const std::int64_t discrete_threshold = paper_threshold - 1;    // tie rule: 2

  bench::print_header(
      "E10a: ablating beta's idle phase — exhaustive over all schedules (c1=c2=1, d=3, k=3)");
  std::printf("%6s | %10s %10s %12s %8s\n", "wait", "states", "verdict", "mode", "check");
  bench::print_rule(60);
  bool all_ok = true;
  for (const std::uint32_t wait : {1u, 2u, 3u, 4u}) {
    protocols::ProtocolConfig cfg;
    cfg.params = params;
    cfg.k = 3;
    cfg.input = core::make_random_input(8, 99);  // 2 blocks of B=4 bits (mu_3(3)=10)
    cfg.wait_steps_override = wait;
    const auto instance = protocols::make_protocol(ProtocolKind::Beta, cfg);

    ioa::ExplorerConfig config;
    config.d = params.d.ticks();
    const auto& input = cfg.input;
    const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
      const auto& out = dynamic_cast<const protocols::ReceiverBase&>(r).output();
      return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
    };
    const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
      return dynamic_cast<const protocols::ReceiverBase&>(r).output() == input;
    };

    bool safe = true;
    const char* mode = "prefix";
    std::uint64_t states = 0;
    try {
      ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix,
                             complete};
      const ioa::ExplorerResult r = explorer.run();
      states = r.distinct_states;
      safe = r.verified();
    } catch (const ModelError&) {
      // Mixed blocks formed a non-codeword multiset: also a safety failure.
      safe = false;
      mode = "decode";
    }
    const bool expected_safe = static_cast<std::int64_t>(wait) >= discrete_threshold;
    const bool ok = safe == expected_safe;
    all_ok = all_ok && ok;
    const char* note = static_cast<std::int64_t>(wait) == discrete_threshold
                           ? "   <- discrete (tie-rule) threshold"
                           : (static_cast<std::int64_t>(wait) == paper_threshold
                                  ? "   <- paper's ceil(d/c1)"
                                  : "");
    std::printf("%6u | %10llu %10s %12s %8s%s\n", wait,
                static_cast<unsigned long long>(states), safe ? "SAFE" : "UNSAFE", mode,
                bench::verdict(ok), note);
  }
  bench::print_rule(60);

  bench::print_header(
      "E10b: block size beyond delta1 does NOT amortize (c1=c2=1, d=8, wait=8, k=4)");
  std::printf("%6s %6s | %12s %12s %10s\n", "block", "B", "effort", "bits/round", "correct");
  bench::print_rule(56);
  double delta1_effort = 0.0;
  for (const std::uint32_t block : {4u, 8u, 16u, 32u, 64u}) {
    protocols::ProtocolConfig cfg;
    cfg.params = core::TimingParams::make(1, 1, 8);
    cfg.k = 4;
    cfg.block_size_override = block;
    cfg.wait_steps_override = 8;
    const std::size_t B = combinatorics::floor_log2_mu(4, block);
    cfg.input = core::make_random_input(B * 24, block);
    const core::ProtocolRun run =
        core::run_protocol(ProtocolKind::Beta, cfg, Environment::worst_case());
    double effort = 0;
    if (run.result.last_transmitter_send.has_value()) {
      effort = static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
               static_cast<double>(cfg.input.size());
    }
    all_ok = all_ok && run.output_correct;
    if (block == 8) {
      delta1_effort = effort;  // the paper's choice (block = δ1)
    } else if (delta1_effort > 0) {
      all_ok = all_ok && effort >= delta1_effort - 1e-9;  // δ1 stays optimal
    }
    std::printf("%6u %6zu | %12.4f %12zu %10s%s\n", block, B, effort, B,
                run.output_correct ? "yes" : "NO",
                block == 8 ? "   <- paper's block = delta1 (optimal)" : "");
  }
  bench::print_rule(56);

  bench::print_header("E10c: gamma under ack-batching (delivery adversary also batches acks)");
  std::printf("%10s | %12s %12s %12s %10s\n", "delay", "effort", "paper_3d+c2", "queue_bound",
              "correct");
  bench::print_rule(66);
  {
    const auto p2 = core::TimingParams::make(1, 2, 8);
    const core::BoundsReport bounds = core::compute_bounds(p2, 8);
    const std::size_t n = bounds.gamma_bits_per_block * 48;
    for (const auto delay : {Environment::Delay::Max, Environment::Delay::Random,
                             Environment::Delay::Adversarial}) {
      Environment env = Environment::worst_case();
      env.delay = delay;
      env.seed = 9;
      const auto m = core::measure_effort(ProtocolKind::Gamma, p2, 8, n, env);
      const char* name = delay == Environment::Delay::Max        ? "max(fifo)"
                         : delay == Environment::Delay::Random   ? "random"
                                                                 : "batching";
      // Queueing-aware ceiling: 2d + δ2·c2 + c2 + c2 per block.
      const double queue_bound =
          (2.0 * 8 + static_cast<double>(p2.delta2()) * 2 + 2 + 2) /
          static_cast<double>(bounds.gamma_bits_per_block);
      all_ok = all_ok && m.output_correct && m.effort <= queue_bound * (1 + 1e-9);
      std::printf("%10s | %12.4f %12.4f %12.4f %10s\n", name, m.effort, bounds.gamma_upper,
                  queue_bound, m.output_correct ? "yes" : "NO");
    }
  }
  bench::print_rule(66);
  std::printf("E10 verdict: %s — wait threshold exact; block=delta1 optimal; gamma robust to "
              "delivery adversaries\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
