// E4 (Theorem 5.3): the r-passive lower bound table and the optimality gap.
//
// For each (k, δ1) this prints the exact counting quantities (μ_k(δ1),
// ζ_k(δ1), their base-2 logs — computed with exact big-integer arithmetic),
// the Theorem 5.3 lower bound δ1·c2/log2 ζ_k(δ1), the Lemma 6.1 upper bound
// achieved by A^β(k), and their ratio. The paper's claim is that this ratio
// is O(1) in every parameter — the table shows it flattening out as δ1 and k
// grow (toward 2, the price of the idle phase) with small-μ flooring effects
// visible in the top-left corner.
#include <cstdio>

#include "bench_common.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/bounds.h"

int main() {
  using namespace rstp;

  bench::print_header("E4: Theorem 5.3 (r-passive lower bound) vs Lemma 6.1 upper bound, c1=1 c2=2");
  std::printf("%6s %6s | %14s %10s %10s | %12s %12s %8s\n", "k", "dlt1", "mu_k(d1)",
              "log2(mu)", "log2(zeta)", "lower_5.3", "upper_6.1", "ratio");
  bench::print_rule(96);

  bool all_ok = true;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 64u, 256u}) {
    for (const std::int64_t d : {2, 4, 8, 16, 32, 64, 128}) {
      const auto params = core::TimingParams::make(1, 2, d);
      const core::BoundsReport r = core::compute_bounds(params, k);
      const auto delta1 = static_cast<std::uint32_t>(r.delta1);
      const bigint::BigUint mu = combinatorics::mu(k, delta1);
      // Print μ exactly when small, in scientific-ish form otherwise.
      char mu_text[32];
      if (mu.bit_length() <= 40) {
        std::snprintf(mu_text, sizeof mu_text, "%llu",
                      static_cast<unsigned long long>(mu.to_u64()));
      } else {
        std::snprintf(mu_text, sizeof mu_text, "2^%.1f", mu.log2());
      }
      const bool ok = r.passive_ratio() >= 1.0 && r.passive_ratio() < 10.0;
      all_ok = all_ok && ok;
      std::printf("%6u %6lld | %14s %10.3f %10.3f | %12.4f %12.4f %8.3f\n", k,
                  static_cast<long long>(d), mu_text, combinatorics::log2_mu(k, delta1),
                  combinatorics::log2_zeta(k, delta1), r.passive_lower, r.beta_upper,
                  r.passive_ratio());
    }
    bench::print_rule(96);
  }
  std::printf("E4 verdict: %s — upper/lower ratio is a bounded constant over the whole grid\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
