// E7 (Figure 2 / Lemmas 5.1, 5.4): the lower-bound adversary, executable.
//
// The proofs construct executions where the receiver observes only the
// MULTISET of packets per δ-step window: the adversary groups each window
// and delivers it as one canonically-ordered batch. This harness runs that
// adversary (channel::AdversarialBatchPolicy) against:
//   (a) A^β(k)  — decodes from multisets: must survive unscathed;
//   (b) the positional strawman — carries more bits/block but depends on
//       arrival order: must corrupt silently on generic inputs;
// and then lets the bounded-exhaustive explorer quantify the same fact over
// ALL admissible schedules for a small instance: β verifies, the strawman
// has a reachable corrupting schedule.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/protocols/base.h"
#include "rstp/protocols/factory.h"

namespace {

using namespace rstp;
using core::Environment;
using protocols::ProtocolKind;

std::size_t hamming_errors(const std::vector<ioa::Bit>& got, const std::vector<ioa::Bit>& want) {
  // Length mismatch counts as errors, plus positionwise flips on the overlap.
  std::size_t errors =
      got.size() > want.size() ? got.size() - want.size() : want.size() - got.size();
  const std::size_t common = std::min(got.size(), want.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (got[i] != want[i]) ++errors;
  }
  return errors;
}

}  // namespace

int main() {
  bench::print_header("E7: the Lemma 5.1 batch adversary vs multiset and positional coding");
  std::printf("%10s %6s %6s | %10s %12s %10s\n", "protocol", "k", "n", "completed",
              "bit_errors", "verifier");
  bench::print_rule(70);

  bool ok = true;
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    const std::size_t n = 240;
    protocols::ProtocolConfig cfg;
    cfg.params = core::TimingParams::make(1, 1, 8);
    cfg.k = k;
    cfg.input = core::make_random_input(n, 1000 + k);

    for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Strawman}) {
      const core::ProtocolRun run =
          core::run_protocol(kind, cfg, Environment::adversarial_fast());
      const std::size_t errors = hamming_errors(run.result.output, cfg.input);
      const auto verdict = core::verify_trace(run.result.trace, cfg.params, cfg.input);
      std::printf("%10s %6u %6zu | %10s %12zu %10s\n",
                  std::string(protocols::to_string(kind)).c_str(), k, n,
                  run.result.quiescent ? "yes" : "no", errors, verdict.ok() ? "accepts" : "rejects");
      if (kind == ProtocolKind::Beta) {
        ok = ok && run.output_correct && verdict.ok();
      } else {
        // The strawman must be corrupted on these generic random inputs.
        ok = ok && !run.output_correct;
      }
    }
  }
  bench::print_rule(70);

  bench::print_header("E7b: exhaustive check over ALL admissible schedules (c1=c2=1, d=2, 4 bits)");
  const std::vector<ioa::Bit> input = {0, 1, 0, 0};
  for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Strawman}) {
    protocols::ProtocolConfig cfg;
    cfg.params = core::TimingParams::make(1, 1, 2);
    cfg.k = kind == ProtocolKind::Beta ? 3 : 2;
    cfg.input = input;
    const auto instance = protocols::make_protocol(kind, cfg);
    ioa::ExplorerConfig config;
    config.d = 2;
    const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
      const auto& out = dynamic_cast<const protocols::ReceiverBase&>(r).output();
      return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
    };
    const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
      return dynamic_cast<const protocols::ReceiverBase&>(r).output() == input;
    };
    ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix, complete};
    const ioa::ExplorerResult r = explorer.run();
    std::printf("  %-9s states=%-8llu terminals=%-6llu safe=%-3s complete=%-3s\n",
                std::string(protocols::to_string(kind)).c_str(),
                static_cast<unsigned long long>(r.distinct_states),
                static_cast<unsigned long long>(r.terminal_states),
                r.safety_held ? "yes" : "NO", r.all_terminals_complete ? "yes" : "NO");
    if (kind == ProtocolKind::Beta) {
      ok = ok && r.verified();
    } else {
      ok = ok && !(r.safety_held && r.all_terminals_complete);
    }
  }

  std::printf("E7 verdict: %s — multiset coding survives the proof adversary; positional "
              "coding does not\n",
              bench::verdict(ok));
  return ok ? 0 : 1;
}
