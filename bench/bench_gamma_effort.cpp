// E3 (paper §6.2, Figure 4): effort of the active protocol A^γ(k) vs its
// upper bound (3d + c2)/⌊log2 μ_k(δ2)⌋ and the Theorem 5.6 lower bound
// d/log2 ζ_k(δ2).
//
// Two sweeps: over k (alphabet) and over c2 (timing uncertainty, which sets
// δ2 = ⌊d/c2⌋ — the active protocol's block size shrinks as processes get
// slower). Expected shape: effort decreases in k, increases as c2 grows, and
// the measured value sits inside the [Thm 5.6, §6.2] band on every row.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;

  {
    const auto params = core::TimingParams::make(1, 2, 16);
    bench::print_header("E3a: A^gamma(k) effort over k, c1=1 c2=2 d=16 (delta2=8) [worst case]");
    std::printf("%6s %6s | %12s %12s %12s | %10s %8s\n", "k", "B", "measured", "upper_6.2",
                "lower_5.6", "up/low", "check");
    bench::print_rule(84);
    double prev = 1e300;
    for (const std::uint32_t k : {2u, 3u, 4u, 8u, 16u, 32u, 64u}) {
      const core::BoundsReport bounds = core::compute_bounds(params, k);
      const std::size_t n = bounds.gamma_bits_per_block * 64;
      const auto m =
          core::measure_effort(ProtocolKind::Gamma, params, k, n, Environment::worst_case());
      const bool ok = m.output_correct && m.effort <= bounds.gamma_upper * (1 + 1e-9) &&
                      m.effort >= bounds.active_lower * 0.75 && m.effort <= prev + 1e-9;
      all_ok = all_ok && ok;
      prev = m.effort;
      std::printf("%6u %6zu | %12.4f %12.4f %12.4f | %10.3f %8s\n", k,
                  bounds.gamma_bits_per_block, m.effort, bounds.gamma_upper, bounds.active_lower,
                  bounds.active_ratio(), bench::verdict(ok));
    }
    bench::print_rule(84);
  }

  {
    bench::print_header("E3b: A^gamma(8) effort over c2 (timing uncertainty), c1=1 d=24");
    std::printf("%6s %6s %6s | %12s %12s %12s %8s\n", "c2", "dlt2", "B", "measured", "upper_6.2",
                "lower_5.6", "check");
    bench::print_rule(76);
    for (const std::int64_t c2 : {1, 2, 3, 4, 6, 8, 12, 24}) {
      const auto params = core::TimingParams::make(1, c2, 24);
      const core::BoundsReport bounds = core::compute_bounds(params, 8);
      const std::size_t n = bounds.gamma_bits_per_block * 64;
      const auto m =
          core::measure_effort(ProtocolKind::Gamma, params, 8, n, Environment::worst_case());
      const bool ok = m.output_correct && m.effort <= bounds.gamma_upper * (1 + 1e-9) &&
                      m.effort >= bounds.active_lower * 0.75;
      all_ok = all_ok && ok;
      std::printf("%6lld %6lld %6zu | %12.4f %12.4f %12.4f %8s\n", static_cast<long long>(c2),
                  static_cast<long long>(bounds.delta2), bounds.gamma_bits_per_block, m.effort,
                  bounds.gamma_upper, bounds.active_lower, bench::verdict(ok));
    }
    bench::print_rule(76);
  }

  std::printf("E3 verdict: %s — gamma effort within [Thm5.6, sec6.2] across both sweeps\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
