// E1 (paper §4, Figure 1): effort of the simple r-passive protocol A^α.
//
// Paper claim: eff(A^α) = d·c2/c1 (here: ⌈d/c1⌉·c2 over integer ticks, which
// equals the paper's value whenever c1 | d).
//
// This harness sweeps (c1, c2, d), measures t(last-send)/n in the worst-case
// environment (both processes at c2, deliveries at +d), and prints the
// measured effort next to the closed form. Expected: measured → closed form
// as n grows (the only deviation is the missing final wait phase, an O(1/n)
// tail), and ratio ≈ 1.000 in every row.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bench::print_header("E1: A^alpha effort vs closed form d*c2/c1 (worst-case environment)");
  std::printf("%6s %6s %6s %8s | %12s %12s %8s %8s\n", "c1", "c2", "d", "n", "measured",
              "closed_form", "ratio", "check");
  bench::print_rule(84);

  const std::int64_t grid[][3] = {
      {1, 1, 1},  {1, 1, 4},  {1, 2, 4},  {1, 2, 8},  {2, 2, 8},  {2, 3, 8},
      {2, 4, 16}, {3, 5, 15}, {3, 5, 17}, {4, 4, 32}, {1, 8, 8},  {1, 4, 64},
  };
  bool all_ok = true;
  for (const auto& row : grid) {
    const auto params = core::TimingParams::make(row[0], row[1], row[2]);
    const std::size_t n = 2048;
    const auto m =
        core::measure_effort(ProtocolKind::Alpha, params, 2, n, Environment::worst_case());
    const core::BoundsReport bounds = core::compute_bounds(params, 2);
    const double ratio = m.effort / bounds.alpha_effort;
    // The measured figure misses only the final message's wait phase.
    const bool ok = m.output_correct && ratio <= 1.0 + 1e-9 &&
                    ratio >= 1.0 - 2.0 / static_cast<double>(n);
    all_ok = all_ok && ok;
    std::printf("%6lld %6lld %6lld %8zu | %12.4f %12.4f %8.4f %8s\n",
                static_cast<long long>(row[0]), static_cast<long long>(row[1]),
                static_cast<long long>(row[2]), n, m.effort, bounds.alpha_effort, ratio,
                bench::verdict(ok));
  }
  bench::print_rule(84);
  std::printf("E1 verdict: %s — eff(A^alpha) matches d*c2/c1 on every row\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
