// The perf baseline harness: runs the fixed reference campaign at 1/2/4/N
// threads, cross-checks that every thread count reproduces the serial
// CampaignResult bitwise, times the multiset-codec hot paths against the
// seed recurrence, and writes the machine-tracked BENCH_campaign.json
// (schema in docs/PERF.md). Exit code 0 iff every job was correct and every
// stage was deterministic, so CI can gate on it (label `bench`).
//
//   bench_campaign [--json PATH] [--iterations N]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "rstp/sim/campaign_bench.h"

int main(int argc, char** argv) {
  std::string json_path = "BENCH_campaign.json";
  rstp::sim::CampaignBenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--iterations" && i + 1 < argc) {
      options.codec_iterations = std::stoul(argv[++i]);
    } else {
      std::cerr << "usage: bench_campaign [--json PATH] [--iterations N]\n";
      return 2;
    }
  }

  try {
    const rstp::sim::CampaignBenchReport report = rstp::sim::run_campaign_bench(options);
    rstp::sim::print_campaign_bench(std::cout, report);
    std::ofstream out{json_path};
    if (!out) {
      std::cerr << "cannot open '" << json_path << "'\n";
      return 1;
    }
    rstp::sim::write_campaign_bench_json(out, report);
    std::cout << "baseline:   written to " << json_path << "\n";
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
