// Shared table-printing helpers for the experiment harnesses.
//
// Each bench binary regenerates one experiment from DESIGN.md §4 and prints
// a fixed-width table: the paper's closed-form prediction next to the
// measured value, so the reproduction claim (same shape, same winners, same
// crossovers) can be eyeballed directly and recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

namespace rstp::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Marks a row value as OK/FAIL for quick scanning.
inline const char* verdict(bool ok) { return ok ? "ok" : "FAIL"; }

}  // namespace rstp::bench
