// E12 — the Theorem 5.3 counting argument, executed end to end.
//
// For exhaustive small n this harness computes every input's transmitter
// signature (the P^tr(X) window-multiset sequence of Lemma 5.1) for A^β(k)
// and tabulates:
//   * distinct signatures — must equal 2^n (Lemma 5.1: a correct protocol
//     distinguishes all inputs through the adversary's multiset lens);
//   * max ℓ(X) — the windows actually used;
//   * the counting floor ⌈n / log2(ζ_k(δ1)+1)⌉ — Theorem 5.3's minimum.
// Expected shape: distinct = 2^n on every row, measured ℓ ≥ floor, and the
// ratio ℓ/floor bounded by a constant (the same O(1) gap as E4).
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/distinguisher.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/beta.h"

int main() {
  using namespace rstp;
  using ioa::Bit;

  const std::uint32_t k = 2;
  const auto params = core::TimingParams::make(1, 1, 3);
  const auto delta1 = static_cast<std::uint32_t>(params.delta1());

  bench::print_header("E12: Lemma 5.1 / Thm 5.3 counting, executed (beta, k=2, delta1=3)");
  std::printf("zeta_%u(%u) = %s  → %.3f bits per window\n", k, delta1,
              combinatorics::zeta(k, delta1).to_decimal().c_str(),
              (combinatorics::zeta(k, delta1) + bigint::BigUint{1}).log2());
  std::printf("%4s | %10s %10s | %8s %8s %8s %8s\n", "n", "inputs", "distinct", "max_l",
              "floor_l", "ratio", "check");
  bench::print_rule(68);

  bool all_ok = true;
  for (std::size_t n = 1; n <= 12; ++n) {
    std::set<std::string> signatures;
    std::size_t max_windows = 0;
    const std::size_t total = std::size_t{1} << n;
    for (std::size_t v = 0; v < total; ++v) {
      std::vector<Bit> x;
      x.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        x.push_back(static_cast<Bit>((v >> (n - 1 - i)) & 1u));
      }
      protocols::ProtocolConfig cfg;
      cfg.params = params;
      cfg.k = k;
      cfg.input = std::move(x);
      protocols::BetaTransmitter t{cfg};
      const core::TransmitterSignature sig = core::transmitter_signature(t, k, delta1);
      std::string key;
      for (const auto& w : sig.windows) {
        for (const auto s : w.to_sorted_sequence()) key += static_cast<char>('a' + s);
        key += '|';
      }
      signatures.insert(std::move(key));
      max_windows = std::max(max_windows, sig.windows.size());
    }
    const std::size_t floor_l = core::min_windows_for(n, k, delta1);
    const bool ok = signatures.size() == total && max_windows >= floor_l;
    all_ok = all_ok && ok;
    std::printf("%4zu | %10zu %10zu | %8zu %8zu %8.2f %8s\n", n, total, signatures.size(),
                max_windows, floor_l,
                static_cast<double>(max_windows) / static_cast<double>(floor_l),
                bench::verdict(ok));
  }
  bench::print_rule(68);
  std::printf("E12 verdict: %s — signatures injective (2^n distinct) and window counts above "
              "the Thm 5.3 floor\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
