// E15 — environment sensitivity: how far below the worst case do typical
// environments sit, and does anything ever exceed it?
//
// eff(A) maximizes over good executions; operators care about the typical
// ones too. For each protocol this harness samples 200 fully randomized
// environments (random gaps in [c1,c2] per step, random delays in [0,d] per
// packet) and prints the effort distribution next to the deterministic
// worst-case measurement and the closed-form bound. Checks:
//   * nothing sampled ever exceeds the worst-case environment's measurement
//     (the max-over-executions claim, statistically probed);
//   * worst-case measurement ≤ closed-form bound;
//   * the spread (max/min) is material — effort is genuinely
//     environment-dependent, which is why the paper's worst-case metric
//     needs the adversarial quantifier.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  const auto params = core::TimingParams::make(1, 3, 9);
  const core::BoundsReport bounds = core::compute_bounds(params, 8);
  constexpr std::size_t kSamples = 200;

  bench::print_header(
      "E15: effort over 200 randomized environments vs worst case (c1=1 c2=3 d=9 k=8)");
  std::printf("%8s | %8s %8s %8s %8s | %10s %10s | %8s\n", "protocol", "min", "mean", "p95",
              "max", "worst-case", "bound", "check");
  bench::print_rule(88);

  bool all_ok = true;
  const struct {
    ProtocolKind kind;
    double bound;
    std::size_t align;
  } rows[] = {
      {ProtocolKind::Alpha, bounds.alpha_effort, 1},
      {ProtocolKind::Beta, bounds.beta_upper, bounds.beta_bits_per_block},
      {ProtocolKind::Gamma, bounds.gamma_upper, bounds.gamma_bits_per_block},
      {ProtocolKind::AltBit, bounds.altbit_upper, 1},
  };
  for (const auto& row : rows) {
    const std::size_t n = ((240 + row.align - 1) / row.align) * row.align;
    const auto dist =
        core::measure_effort_distribution(row.kind, params, 8, n, kSamples, 0xE15);
    const auto worst =
        core::measure_effort(row.kind, params, 8, n, Environment::worst_case(), 0x11BE1);
    const bool ok = dist.all_correct && worst.output_correct &&
                    dist.max <= worst.effort + 1e-9 &&
                    worst.effort <= row.bound * (1 + 1e-9) && dist.max > dist.min + 1e-9;
    all_ok = all_ok && ok;
    std::printf("%8s | %8.3f %8.3f %8.3f %8.3f | %10.3f %10.3f | %8s\n",
                std::string(protocols::to_string(row.kind)).c_str(), dist.min, dist.mean,
                dist.p95, dist.max, worst.effort, row.bound, bench::verdict(ok));
  }
  bench::print_rule(88);
  std::printf("E15 verdict: %s — the worst-case environment dominates every sample; typical "
              "environments run 20-50%% cheaper\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
