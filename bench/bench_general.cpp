// E11 — the §7 generalized model, answered experimentally.
//
// The paper's closing question: do the results generalize to (1) a delivery
// window [d1, d2] and (2) per-process step laws? This harness says yes, and
// shows the two novel effects the generalization introduces:
//   (a) a known minimum delay d1 SHRINKS the idle phase (separation only
//       needs d2 − d1), so β's measured effort falls as d1 grows — while the
//       batch adversary weakens in lockstep, keeping the construction within
//       a constant factor of the generalized lower bound;
//   (b) per-process laws split the bounds' dependencies: β's effort follows
//       the TRANSMITTER's law only (the receiver can be arbitrarily slow —
//       it's r-passive), while γ also pays the RECEIVER's c2 on the ack
//       path (including ack queueing when r_c2 > t_c2).
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "rstp/general/run.h"

int main() {
  using namespace rstp;
  using general::GeneralEnvironment;
  using general::GeneralTimingParams;
  using protocols::ProtocolKind;

  bool all_ok = true;

  bench::print_header("E11a: minimum delay d1 shrinks beta's idle phase (t=r=[1,2], d2=12, k=8)");
  std::printf("%6s %6s %6s | %12s %12s %12s %8s\n", "d1", "wait", "adv_d", "beta_meas",
              "beta_upper", "passive_low", "check");
  bench::print_rule(76);
  double prev = 1e300;
  for (const std::int64_t d1 : {0, 3, 6, 9, 11, 12}) {
    GeneralTimingParams g{Duration{1}, Duration{2}, Duration{1},
                          Duration{2}, Duration{d1}, Duration{12}};
    const auto bounds = general::compute_general_bounds(g, 8);
    const auto m = general::measure_general_effort(ProtocolKind::Beta, g, 8,
                                                   bounds.beta_bits_per_block * 48,
                                                   GeneralEnvironment::worst_case());
    const bool ok = m.output_correct && m.effort <= bounds.beta_upper * (1 + 1e-9) &&
                    m.effort <= prev + 1e-9;
    all_ok = all_ok && ok;
    prev = m.effort;
    std::printf("%6lld %6lld %6lld | %12.4f %12.4f %12.4f %8s\n", static_cast<long long>(d1),
                static_cast<long long>(bounds.beta_wait),
                static_cast<long long>(bounds.adversary_delta), m.effort, bounds.beta_upper,
                bounds.passive_lower, bench::verdict(ok));
  }
  bench::print_rule(76);

  bench::print_header("E11b: beta ignores the receiver's law; gamma pays it (t=[1,2], d=[0,12], k=8)");
  std::printf("%6s %6s | %12s %12s | %12s %12s %8s\n", "r_c1", "r_c2", "beta_meas", "gamma_meas",
              "gamma_upper", "active_low", "check");
  bench::print_rule(80);
  double beta_baseline = -1;
  for (const std::int64_t r_c2 : {2, 4, 8, 12}) {
    GeneralTimingParams g{Duration{1}, Duration{2},         Duration{1},
                          Duration{r_c2}, Duration{0}, Duration{12}};
    const auto bounds = general::compute_general_bounds(g, 8);
    const auto beta = general::measure_general_effort(ProtocolKind::Beta, g, 8,
                                                      bounds.beta_bits_per_block * 48,
                                                      GeneralEnvironment::worst_case());
    const auto gamma = general::measure_general_effort(ProtocolKind::Gamma, g, 8,
                                                       bounds.gamma_bits_per_block * 48,
                                                       GeneralEnvironment::worst_case());
    if (beta_baseline < 0) beta_baseline = beta.effort;
    const bool ok = beta.output_correct && gamma.output_correct &&
                    std::abs(beta.effort - beta_baseline) < 1e-9 &&  // r-passive: r-law-free
                    gamma.effort <= bounds.gamma_upper * (1 + 1e-9);
    all_ok = all_ok && ok;
    std::printf("%6lld %6lld | %12.4f %12.4f | %12.4f %12.4f %8s\n", 1LL,
                static_cast<long long>(r_c2), beta.effort, gamma.effort, bounds.gamma_upper,
                bounds.active_lower, bench::verdict(ok));
  }
  bench::print_rule(80);

  bench::print_header("E11c: asymmetric grid — all protocols correct, efforts within bounds");
  std::printf("%-26s | %10s %10s %10s %10s %8s\n", "model", "alpha", "beta", "gamma", "altbit",
              "check");
  bench::print_rule(84);
  const GeneralTimingParams grid[] = {
      {Duration{1}, Duration{1}, Duration{1}, Duration{1}, Duration{0}, Duration{6}},
      {Duration{1}, Duration{2}, Duration{3}, Duration{5}, Duration{0}, Duration{10}},
      {Duration{2}, Duration{5}, Duration{1}, Duration{2}, Duration{4}, Duration{10}},
      {Duration{1}, Duration{3}, Duration{1}, Duration{3}, Duration{7}, Duration{9}},
      {Duration{3}, Duration{4}, Duration{2}, Duration{6}, Duration{2}, Duration{12}},
  };
  for (const auto& g : grid) {
    double efforts[4] = {0, 0, 0, 0};
    bool ok = true;
    const ProtocolKind kinds[] = {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma,
                                  ProtocolKind::AltBit};
    for (int i = 0; i < 4; ++i) {
      const auto m = general::measure_general_effort(kinds[i], g, 8, 120,
                                                     GeneralEnvironment::worst_case());
      efforts[i] = m.effort;
      ok = ok && m.output_correct && m.quiescent;
    }
    all_ok = all_ok && ok;
    std::ostringstream name;
    name << g;
    std::printf("%-26s | %10.3f %10.3f %10.3f %10.3f %8s\n", name.str().c_str(), efforts[0],
                efforts[1], efforts[2], efforts[3], bench::verdict(ok));
  }
  bench::print_rule(84);

  std::printf("E11 verdict: %s — the paper's results carry to the section-7 generalization\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
