// E14 — the effort definition (paper §4), visualized.
//
// eff(A) is a suplim: max over good executions of t(last-send)/n, as n→∞.
// This harness measures effort(n) for n growing 16→4096 in the worst-case
// environment, Richardson-extrapolates the limit (finite runs differ from it
// by an O(1/n) tail — the missing final round — so eff ≈ 2·e(2n) − e(n)),
// and compares the extrapolated limit to the closed-form upper bound:
//   * α and β: the bound is TIGHT — the limit matches it to 4+ digits;
//   * γ: within ~15% (the 3d+c2 analysis does not credit the overlap of
//     block transmission with the first packets' delivery);
//   * stop-and-wait: the 2d+2c2 bound is conservative by ~20% (under FIFO
//     max delay the receiver's ack step partially overlaps the next cycle).
// In every case the bound dominates the limit and effort(n) increases to it
// — exactly the suplim behaviour the definition prescribes.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  const auto params = core::TimingParams::make(1, 2, 8);
  const core::BoundsReport bounds = core::compute_bounds(params, 8);
  bool all_ok = true;

  struct Row {
    ProtocolKind kind;
    double bound;
    std::size_t align;   // block alignment for n
    double tightness;    // required limit/bound ratio floor
  };
  const Row rows[] = {
      {ProtocolKind::Alpha, bounds.alpha_effort, 1, 0.999},
      {ProtocolKind::Beta, bounds.beta_upper, bounds.beta_bits_per_block, 0.999},
      {ProtocolKind::Gamma, bounds.gamma_upper, bounds.gamma_bits_per_block, 0.80},
      {ProtocolKind::AltBit, bounds.altbit_upper, 1, 0.75},
  };

  for (const Row& row : rows) {
    char title[140];
    std::snprintf(title, sizeof title,
                  "E14: effort(n) -> eff(A) for %s (c1=1 c2=2 d=8 k=8; closed-form bound %.4f)",
                  std::string(protocols::to_string(row.kind)).c_str(), row.bound);
    bench::print_header(title);
    std::printf("%8s | %12s %14s\n", "n", "effort(n)", "extrap. limit");
    bench::print_rule(40);
    double prev_effort = -1;
    double prev_n = 0;
    double limit = 0;
    for (std::size_t base = 16; base <= 4096; base *= 4) {
      const std::size_t n = ((base + row.align - 1) / row.align) * row.align;
      const auto m = core::measure_effort(row.kind, params, 8, n, Environment::worst_case());
      if (!m.output_correct) {
        all_ok = false;
        continue;
      }
      // Richardson step for a c0 − c1/n model with unequal n spacing.
      if (prev_effort >= 0) {
        const double nn = static_cast<double>(n);
        limit = (nn * m.effort - prev_n * prev_effort) / (nn - prev_n);
        std::printf("%8zu | %12.5f %14.5f\n", n, m.effort, limit);
      } else {
        std::printf("%8zu | %12.5f %14s\n", n, m.effort, "-");
      }
      // Suplim shape: effort(n) non-decreasing toward the limit.
      all_ok = all_ok && m.effort >= prev_effort - 1e-9;
      prev_effort = m.effort;
      prev_n = static_cast<double>(n);
    }
    bench::print_rule(40);
    const double ratio = limit / row.bound;
    const bool ok = limit <= row.bound * (1 + 1e-6) && ratio >= row.tightness;
    all_ok = all_ok && ok;
    std::printf("limit/bound = %.4f  (bound %s)  %s\n", ratio,
                ratio > 0.99 ? "TIGHT" : "conservative", bench::verdict(ok));
  }
  std::printf("\nE14 verdict: %s — effort(n) increases to a limit the closed forms dominate; "
              "alpha/beta bounds are exactly tight\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
