// E13 — why the bounds depend on k: the unbounded-alphabet escape hatch.
//
// Theorem 5.3 lower-bounds every fixed-k r-passive solution by
// δ1·c2/log2 ζ_k(δ1), which for fixed k grows like d/log d. Indexed
// streaming ([Ste76]-style sequence numbers, alphabet 2·|X|) holds effort at
// exactly c2 regardless of d. The table sweeps d and prints both: the
// crossing demonstrates the k-dependence is not an artifact of the proofs —
// any attempt to remove it is refuted by this protocol.
//
// The second table shows the flip side: at fixed d, the Theorem rewards
// larger alphabets, and for k comparable to 2^δ1 the fixed-k bound itself
// dips under c2 — alphabet size is exactly the currency the model trades
// time against.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/factory.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;
  const std::size_t n = 256;

  bench::print_header("E13a: indexed streaming (|P| = 2|X|) vs fixed-k lower bounds, c1=1 c2=2");
  std::printf("%6s | %12s | %12s %12s %12s | %8s\n", "d", "indexed", "low(k=2)", "low(k=4)",
              "low(k=16)", "check");
  bench::print_rule(76);
  for (const std::int64_t d : {4, 8, 16, 32, 64, 128}) {
    const auto params = core::TimingParams::make(1, 2, d);
    protocols::ProtocolConfig cfg;
    cfg.params = params;
    cfg.k = static_cast<std::uint32_t>(2 * n);
    cfg.input = core::make_random_input(n, static_cast<std::uint64_t>(d));
    const core::ProtocolRun run =
        core::run_protocol(ProtocolKind::Indexed, cfg, Environment::worst_case());
    const double effort =
        static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
        static_cast<double>(n);
    const double low2 = core::compute_bounds(params, 2).passive_lower;
    const double low4 = core::compute_bounds(params, 4).passive_lower;
    const double low16 = core::compute_bounds(params, 16).passive_lower;
    // Indexed stays ~c2; each fixed-k bound overtakes it as d grows.
    const bool ok = run.output_correct && effort <= 2.0 + 1e-9;
    all_ok = all_ok && ok;
    std::printf("%6lld | %12.4f | %12.4f %12.4f %12.4f | %8s\n", static_cast<long long>(d),
                effort, low2, low4, low16, bench::verdict(ok));
  }
  bench::print_rule(76);

  bench::print_header("E13b: at fixed d=64, the bound itself rewards alphabet size");
  std::printf("%8s | %14s %14s\n", "k", "passive_lower", "beta_upper");
  bench::print_rule(44);
  const auto params = core::TimingParams::make(1, 2, 64);
  for (const std::uint32_t k : {2u, 8u, 32u, 128u, 512u, 2048u}) {
    const core::BoundsReport bounds = core::compute_bounds(params, k);
    std::printf("%8u | %14.4f %14.4f\n", k, bounds.passive_lower, bounds.beta_upper);
  }
  bench::print_rule(44);
  std::printf("E13 verdict: %s — effort(indexed) = c2 independent of d; fixed-k bounds grow "
              "like d/log d\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
