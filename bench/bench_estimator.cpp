// E16 — the price of self-tuning: estimator effort vs the oracle.
//
// The paper's protocols receive (c1, c2, d) as givens; the est layer
// discovers them online (RFC 6298-style EWMA brackets) and re-plans block
// sizes at block boundaries. This harness measures est_penalty =
// effort_est / effort_oracle across environments and safety margins, then
// across scripted drift:
//   * worst-case stationary channels at margin 0: within 5% of the oracle
//     (the golden-grid acceptance bar) — often *below* 1, because the
//     estimator tunes to the realized channel where the oracle plans for
//     the declared worst case;
//   * growing margins buy drift headroom with bounded extra effort;
//   * drifting channels stay correct and re-converge after breakpoints,
//     with the penalty bounded by a loose 2x sanity ceiling.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "rstp/core/drift.h"
#include "rstp/core/effort.h"
#include "rstp/est/runner.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;
  const std::size_t n = 256;

  bench::print_header(
      "E16a: stationary est_penalty by margin (worst case, n=256; budget: margin 0 within 5%)");
  std::printf("%6s | %-12s | %6s | %10s | %-12s | %7s\n", "proto", "params", "margin",
              "penalty", "(c1,c2,d)-hat", "resizes");
  bench::print_rule(72);
  for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Gamma}) {
    for (const auto& params :
         {core::TimingParams::make(1, 2, 6), core::TimingParams::make(2, 3, 9)}) {
      for (const double margin : {0.0, 0.125, 0.25}) {
        protocols::ProtocolConfig cfg;
        cfg.params = params;
        cfg.k = 4;
        cfg.input = core::make_random_input(n, 1);
        est::EstimatorConfig est_cfg;
        est_cfg.margin = margin;
        const est::PenaltyRun pair = est::run_penalty_pair(
            kind, cfg, Environment::worst_case(), core::DriftSpec{}, est_cfg);
        const obs::EstimatorGauges& g = pair.estimated.gauges;
        const bool correct =
            pair.estimated.run.output_correct && pair.estimated.run.result.quiescent;
        const bool within = margin > 0.0 || pair.est_penalty <= 1.05;
        all_ok = all_ok && correct && within;
        char hats[32];
        std::snprintf(hats, sizeof hats, "(%lld,%lld,%lld)", static_cast<long long>(g.c1_hat),
                      static_cast<long long>(g.c2_hat), static_cast<long long>(g.d_hat));
        char pbuf[24];
        std::snprintf(pbuf, sizeof pbuf, "%d,%d,%d", static_cast<int>(params.c1.ticks()),
                      static_cast<int>(params.c2.ticks()), static_cast<int>(params.d.ticks()));
        std::printf("%6s | %-12s | %6.3f | %10.4f | %-12s | %7llu  %s\n",
                    std::string(protocols::to_string(kind)).c_str(), pbuf, margin,
                    pair.est_penalty, hats, static_cast<unsigned long long>(g.resizes),
                    bench::verdict(correct && within));
      }
    }
  }

  bench::print_header(
      "E16b: drifting channels (d drifts 9->4->7 clamped to the envelope; sanity ceiling 2x)");
  std::printf("%6s | %-12s | %10s | %-12s | %7s\n", "proto", "params", "penalty",
              "(c1,c2,d)-hat", "resizes");
  bench::print_rule(60);
  const core::DriftSpec drift = core::DriftSpec::parse("0:9,250:4,600:7");
  for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Gamma}) {
    for (const auto& params :
         {core::TimingParams::make(1, 2, 6), core::TimingParams::make(2, 3, 9)}) {
      protocols::ProtocolConfig cfg;
      cfg.params = params;
      cfg.k = 4;
      cfg.input = core::make_random_input(n, 1);
      est::EstimatorConfig est_cfg;
      est_cfg.margin = 0.0;
      const est::PenaltyRun pair =
          est::run_penalty_pair(kind, cfg, Environment::worst_case(), drift, est_cfg);
      const obs::EstimatorGauges& g = pair.estimated.gauges;
      const bool correct =
          pair.estimated.run.output_correct && pair.estimated.run.result.quiescent;
      const bool legal = g.c1_hat >= 1 && g.c1_hat <= g.c2_hat && g.c2_hat <= g.d_hat;
      const bool bounded = pair.est_penalty > 0 && pair.est_penalty <= 2.0;
      all_ok = all_ok && correct && legal && bounded;
      char hats[32];
      std::snprintf(hats, sizeof hats, "(%lld,%lld,%lld)", static_cast<long long>(g.c1_hat),
                    static_cast<long long>(g.c2_hat), static_cast<long long>(g.d_hat));
      char pbuf[24];
      std::snprintf(pbuf, sizeof pbuf, "%d,%d,%d", static_cast<int>(params.c1.ticks()),
                    static_cast<int>(params.c2.ticks()), static_cast<int>(params.d.ticks()));
      std::printf("%6s | %-12s | %10.4f | %-12s | %7llu  %s\n",
                  std::string(protocols::to_string(kind)).c_str(), pbuf, pair.est_penalty, hats,
                  static_cast<unsigned long long>(g.resizes),
                  bench::verdict(correct && legal && bounded));
    }
  }

  std::printf("\nE16 verdict: %s — self-tuning costs at most 5%% on stationary worst-case "
              "channels and stays correct (and legal) under drift\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
