// E8 ([BSW69] baseline): stop-and-wait / alternating-bit vs the paper's
// block protocols.
//
// Stop-and-wait moves one bit per round trip (~2d + 2c2); A^γ(k) moves
// B = ⌊log2 μ_k(δ2)⌋ bits per ~3d + c2. The win factor should therefore be
// roughly 2B/3, growing with both k and d. A^β(k) is also shown for
// completeness. Expected shape: altbit flat (independent of k), the block
// protocols dropping as k grows, win factors in the predicted band.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;
  for (const std::int64_t d : {8, 32}) {
    const auto params = core::TimingParams::make(1, 2, d);
    char title[128];
    std::snprintf(title, sizeof title, "E8: stop-and-wait vs block protocols, c1=1 c2=2 d=%lld",
                  static_cast<long long>(d));
    bench::print_header(title);
    std::printf("%6s %6s | %12s %12s %12s | %12s %12s\n", "k", "B_gam", "altbit", "gamma", "beta",
                "win(g vs a)", "pred 2B/3");
    bench::print_rule(88);
    for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      const core::BoundsReport bounds = core::compute_bounds(params, k);
      const std::size_t n_blocks = 48;
      const auto alt = core::measure_effort(ProtocolKind::AltBit, params, 4, 256,
                                            Environment::worst_case());
      const auto gamma = core::measure_effort(ProtocolKind::Gamma, params, k,
                                              bounds.gamma_bits_per_block * n_blocks,
                                              Environment::worst_case());
      const auto beta = core::measure_effort(ProtocolKind::Beta, params, k,
                                             bounds.beta_bits_per_block * n_blocks,
                                             Environment::worst_case());
      const double win = alt.effort / gamma.effort;
      const double predicted = 2.0 * static_cast<double>(bounds.gamma_bits_per_block) / 3.0;
      const bool ok = alt.output_correct && gamma.output_correct && beta.output_correct &&
                      gamma.effort < alt.effort && win > predicted / 3.0 && win < predicted * 3.0;
      all_ok = all_ok && ok;
      std::printf("%6u %6zu | %12.4f %12.4f %12.4f | %12.2f %12.2f %s\n", k,
                  bounds.gamma_bits_per_block, alt.effort, gamma.effort, beta.effort, win,
                  predicted, bench::verdict(ok));
    }
    bench::print_rule(88);
  }
  std::printf("E8 verdict: %s — block protocols beat stop-and-wait by ~2B/3, growing with k,d\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
