// E2 (paper §6.1, Figure 3 / Lemma 6.1): effort of A^β(k) vs its upper bound
// 2δ1·c2/⌊log2 μ_k(δ1)⌋ and the Theorem 5.3 lower bound δ1·c2/log2 ζ_k(δ1).
//
// Sweeps k at two δ regimes. Expected shape (the paper's qualitative claims):
//   * effort decreases monotonically in k (larger alphabet, more bits/block);
//   * measured ≤ upper bound on every row (with |X| block-aligned);
//   * measured ≥ lower bound — the construction can't beat Theorem 5.3;
//   * upper/lower ratio stays an O(1) constant across the whole sweep
//     ("asymptotically optimal").
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bool all_ok = true;
  for (const std::int64_t d : {8, 32}) {
    const auto params = core::TimingParams::make(1, 2, d);
    char title[160];
    std::snprintf(title, sizeof title,
                  "E2: A^beta(k) effort, c1=1 c2=2 d=%lld (delta1=%lld)  [worst case]",
                  static_cast<long long>(d), static_cast<long long>(d));
    bench::print_header(title);
    std::printf("%6s %6s | %12s %12s %12s | %10s %10s %8s\n", "k", "B", "measured",
                "upper_6.1", "lower_5.3", "meas/low", "up/low", "check");
    bench::print_rule(96);
    double prev = 1e300;
    for (const std::uint32_t k : {2u, 3u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      const core::BoundsReport bounds = core::compute_bounds(params, k);
      const std::size_t n = bounds.beta_bits_per_block * 64;  // block-aligned
      const auto m =
          core::measure_effort(ProtocolKind::Beta, params, k, n, Environment::worst_case());
      const bool ok = m.output_correct && m.effort <= bounds.beta_upper * (1 + 1e-9) &&
                      m.effort >= bounds.passive_lower * 0.75 && m.effort <= prev + 1e-9;
      all_ok = all_ok && ok;
      prev = m.effort;
      std::printf("%6u %6zu | %12.4f %12.4f %12.4f | %10.3f %10.3f %8s\n", k,
                  bounds.beta_bits_per_block, m.effort, bounds.beta_upper, bounds.passive_lower,
                  m.effort / bounds.passive_lower, bounds.passive_ratio(), bench::verdict(ok));
    }
    bench::print_rule(96);
  }
  std::printf("E2 verdict: %s — beta effort within [Thm5.3, Lemma6.1] and decreasing in k\n",
              bench::verdict(all_ok));
  return all_ok ? 0 : 1;
}
