// E6 (§1/§6 discussion): passive vs active crossover.
//
// The passive protocol pays 2δ1 steps (each up to c2) per block — its cost
// scales with the timing-uncertainty ratio c2/c1, because it must idle long
// enough for the FASTEST possible clock while being charged at the SLOWEST.
// The active protocol pays ~3d + c2 per block regardless of c1. So:
//   * c2/c1 ≈ 1  → β wins (no uncertainty tax, no ack round trips);
//   * c2/c1 large → γ wins (acks replace conservative idling).
// This harness sweeps c2 at fixed c1=1, d=32, k=8 and prints measured
// efforts for both (block-aligned inputs, worst-case environment), locating
// the crossover. Expected: β's column grows ~linearly in c2; γ's stays
// roughly flat; a single crossover point.
#include <cstdio>

#include "bench_common.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"

int main() {
  using namespace rstp;
  using core::Environment;
  using protocols::ProtocolKind;

  bench::print_header("E6: passive (beta) vs active (gamma) crossover, c1=1 d=32 k=8");
  std::printf("%6s | %12s %12s %8s | %12s %12s\n", "c2", "beta_meas", "gamma_meas", "winner",
              "beta_upper", "gamma_upper");
  bench::print_rule(76);

  int crossovers = 0;
  bool beta_was_winning = true;
  bool first = true;
  bool all_correct = true;
  for (const std::int64_t c2 : {1, 2, 4, 8, 16, 32}) {
    const auto params = core::TimingParams::make(1, c2, 32);
    const core::BoundsReport bounds = core::compute_bounds(params, 8);
    const auto beta = core::measure_effort(ProtocolKind::Beta, params, 8,
                                           bounds.beta_bits_per_block * 48,
                                           Environment::worst_case());
    const auto gamma = core::measure_effort(ProtocolKind::Gamma, params, 8,
                                            bounds.gamma_bits_per_block * 48,
                                            Environment::worst_case());
    all_correct = all_correct && beta.output_correct && gamma.output_correct;
    const bool beta_wins = beta.effort < gamma.effort;
    if (!first && beta_wins != beta_was_winning) ++crossovers;
    beta_was_winning = beta_wins;
    first = false;
    std::printf("%6lld | %12.4f %12.4f %8s | %12.4f %12.4f\n", static_cast<long long>(c2),
                beta.effort, gamma.effort, beta_wins ? "beta" : "gamma", bounds.beta_upper,
                bounds.gamma_upper);
  }
  bench::print_rule(76);
  const bool shape_ok = all_correct && crossovers == 1 && !beta_was_winning;
  std::printf("E6 verdict: %s — beta wins at low c2/c1, gamma at high, single crossover (%d)\n",
              bench::verdict(shape_ok), crossovers);
  return shape_ok ? 0 : 1;
}
