// Tests for the discrete-event simulator, using purpose-built micro-automata
// (exercising the ioa::Automaton interface directly, independent of the
// shipped protocols).
#include "rstp/sim/simulator.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"

namespace rstp::sim {
namespace {

using ioa::Action;
using ioa::ActionKind;
using ioa::Actor;
using ioa::Packet;
using ioa::ProcessId;

/// Sends payloads 0..n-1, one per step, then stops.
class CounterSender final : public ioa::Automaton {
 public:
  explicit CounterSender(std::uint32_t n) : n_(n) {}
  [[nodiscard]] std::string_view name() const override { return "counter_sender"; }
  [[nodiscard]] std::optional<Action> enabled_local() const override {
    if (sent_ < n_) return Action::send(Packet::to_receiver(sent_));
    return std::nullopt;
  }
  void apply(const Action& action) override {
    if (action.kind == ActionKind::Recv) {
      ++acks_;
      return;
    }
    RSTP_CHECK(enabled_local().has_value() && *enabled_local() == action, "not enabled");
    ++sent_;
  }
  [[nodiscard]] bool accepts_input(const Action& a) const override {
    return a.kind == ActionKind::Recv &&
           a.packet.direction == Packet::Direction::ReceiverToTransmitter;
  }
  [[nodiscard]] bool quiescent() const override { return sent_ >= n_; }
  [[nodiscard]] std::string snapshot() const override {
    std::ostringstream os;
    os << "cs " << sent_ << ' ' << acks_;
    return os.str();
  }
  [[nodiscard]] std::unique_ptr<Automaton> clone() const override {
    return std::make_unique<CounterSender>(*this);
  }
  [[nodiscard]] std::uint32_t acks() const { return acks_; }

 private:
  std::uint32_t n_;
  std::uint32_t sent_ = 0;
  std::uint32_t acks_ = 0;
};

/// Records arrivals; optionally echoes an ack per arrival; always idles.
class EchoReceiver final : public ioa::Automaton {
 public:
  explicit EchoReceiver(bool echo) : echo_(echo) {}
  [[nodiscard]] std::string_view name() const override { return "echo_receiver"; }
  [[nodiscard]] std::optional<Action> enabled_local() const override {
    if (pending_acks_ > 0) return Action::send(Packet::to_transmitter(0));
    return Action::internal(1, "idle");
  }
  void apply(const Action& action) override {
    if (action.kind == ActionKind::Recv) {
      received_.push_back(action.packet.payload);
      if (echo_) ++pending_acks_;
      return;
    }
    if (action.kind == ActionKind::Send) {
      --pending_acks_;
    }
  }
  [[nodiscard]] bool accepts_input(const Action& a) const override {
    return a.kind == ActionKind::Recv &&
           a.packet.direction == Packet::Direction::TransmitterToReceiver;
  }
  [[nodiscard]] bool quiescent() const override { return pending_acks_ == 0; }
  [[nodiscard]] std::string snapshot() const override {
    std::ostringstream os;
    os << "er " << received_.size() << ' ' << pending_acks_;
    return os.str();
  }
  [[nodiscard]] std::unique_ptr<Automaton> clone() const override {
    return std::make_unique<EchoReceiver>(*this);
  }
  [[nodiscard]] const std::vector<std::uint32_t>& received() const { return received_; }

 private:
  bool echo_;
  std::vector<std::uint32_t> received_;
  int pending_acks_ = 0;
};

SimConfig config_for(const core::TimingParams& params) {
  SimConfig c;
  c.params = params;
  return c;
}

TEST(Simulator, DeliversEverythingAndQuiesces) {
  const auto params = core::TimingParams::make(1, 1, 3);
  CounterSender sender{5};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_max_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  Simulator sim{sender, receiver, chan, ts, rs, config_for(params)};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(receiver.received(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(result.transmitter_sends, 5u);
  EXPECT_EQ(result.receiver_sends, 0u);
  ASSERT_TRUE(result.last_transmitter_send.has_value());
  // Steps at 0,1,2,3,4 → last send at 4; last delivery at 4+3=7.
  EXPECT_EQ(*result.last_transmitter_send, at_tick(4));
  EXPECT_EQ(result.end_time, at_tick(7));
}

TEST(Simulator, TraceHasDeterministicEventOrdering) {
  const auto params = core::TimingParams::make(1, 1, 1);
  CounterSender sender{2};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  Simulator sim{sender, receiver, chan, ts, rs, config_for(params)};
  const RunResult result = sim.run();
  // With zero delay: at t=0 the transmitter's send precedes the delivery
  // (deliveries-first applies only to packets already in flight), and the
  // delivery precedes the receiver's step — all at tick 0.
  const auto& ev = result.trace.events();
  ASSERT_GE(ev.size(), 3u);
  EXPECT_EQ(ev[0].actor, Actor::Transmitter);
  EXPECT_EQ(ev[0].action.kind, ActionKind::Send);
  EXPECT_EQ(ev[1].actor, Actor::Channel);
  EXPECT_EQ(ev[1].action.kind, ActionKind::Recv);
  EXPECT_EQ(ev[2].actor, Actor::Receiver);
  EXPECT_EQ(ev[0].time, at_tick(0));
  EXPECT_EQ(ev[2].time, at_tick(0));
}

TEST(Simulator, AcksFlowBackToTransmitter) {
  const auto params = core::TimingParams::make(1, 2, 4);
  CounterSender sender{3};
  EchoReceiver receiver{true};
  channel::Channel chan{params.d, channel::make_max_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  Simulator sim{sender, receiver, chan, ts, rs, config_for(params)};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(sender.acks(), 3u);
  EXPECT_EQ(result.receiver_sends, 3u);
}

TEST(Simulator, SlowSchedulerStretchesTime) {
  const auto params = core::TimingParams::make(1, 5, 5);
  CounterSender sender{4};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler ts{params.c2};  // steps every 5
  FixedRateScheduler rs{params.c2};
  Simulator sim{sender, receiver, chan, ts, rs, config_for(params)};
  const RunResult result = sim.run();
  ASSERT_TRUE(result.last_transmitter_send.has_value());
  EXPECT_EQ(*result.last_transmitter_send, at_tick(15));  // 0,5,10,15
}

TEST(Simulator, OutOfBandSchedulerIsModelError) {
  const auto params = core::TimingParams::make(2, 3, 5);
  CounterSender sender{2};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler bad{Duration{1}};  // gap 1 < c1=2
  FixedRateScheduler ok{params.c1};
  Simulator sim{sender, receiver, chan, bad, ok, config_for(params)};
  EXPECT_THROW((void)sim.run(), ModelError);
}

TEST(Simulator, FirstOffsetBeyondC2IsModelError) {
  const auto params = core::TimingParams::make(1, 2, 3);
  CounterSender sender{1};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler bad{params.c1, Duration{3}};  // first step at 3 > c2=2
  FixedRateScheduler ok{params.c1};
  Simulator sim{sender, receiver, chan, bad, ok, config_for(params)};
  EXPECT_THROW((void)sim.run(), ModelError);
}

TEST(Simulator, DropInjectionLosesPacketButSimStillTerminates) {
  const auto params = core::TimingParams::make(1, 1, 2);
  CounterSender sender{1};
  EchoReceiver receiver{true};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  SimConfig cfg = config_for(params);
  cfg.drop_every_nth = 1;  // drop the only data packet
  cfg.max_events = 100;
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.quiescent);  // sender quiesces even though packet lost
  EXPECT_EQ(result.dropped_packets, 1u);
  EXPECT_TRUE(receiver.received().empty());
}

TEST(Simulator, PerProcessTimingLawsValidatedSeparately) {
  // Generalized model: the transmitter may run a law the receiver's would
  // reject. transmitter [1,2], receiver [3,5], d = 6.
  const auto envelope = core::TimingParams::make(1, 5, 6);
  CounterSender sender{3};
  EchoReceiver receiver{false};
  channel::Channel chan{envelope.d, channel::make_zero_delay()};
  FixedRateScheduler ts{Duration{2}};  // legal for t [1,2], illegal for r [3,5]
  FixedRateScheduler rs{Duration{4}};  // legal for r [3,5], illegal for t [1,2]
  SimConfig cfg = config_for(envelope);
  cfg.transmitter_params = core::TimingParams::make(1, 2, 6);
  cfg.receiver_params = core::TimingParams::make(3, 5, 6);
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(receiver.received().size(), 3u);
}

TEST(Simulator, PerProcessLawViolationCaught) {
  const auto envelope = core::TimingParams::make(1, 5, 6);
  CounterSender sender{2};
  EchoReceiver receiver{false};
  channel::Channel chan{envelope.d, channel::make_zero_delay()};
  FixedRateScheduler ts{Duration{4}};  // violates the transmitter's [1,2]
  FixedRateScheduler rs{Duration{4}};
  SimConfig cfg = config_for(envelope);
  cfg.transmitter_params = core::TimingParams::make(1, 2, 6);
  cfg.receiver_params = core::TimingParams::make(3, 5, 6);
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  EXPECT_THROW((void)sim.run(), ModelError);
}

TEST(Simulator, MismatchedChannelDelayRejected) {
  const auto params = core::TimingParams::make(1, 1, 3);
  CounterSender sender{1};
  EchoReceiver receiver{false};
  channel::Channel chan{Duration{4}, channel::make_zero_delay()};  // d mismatch
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  EXPECT_THROW(Simulator(sender, receiver, chan, ts, rs, config_for(params)),
               ContractViolation);
}

TEST(Simulator, RunIsSingleShot) {
  const auto params = core::TimingParams::make(1, 1, 1);
  CounterSender sender{1};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  Simulator sim{sender, receiver, chan, ts, rs, config_for(params)};
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), ContractViolation);
}

TEST(Simulator, ObserverSeesEveryEventInOrder) {
  const auto params = core::TimingParams::make(1, 1, 2);
  CounterSender sender{3};
  EchoReceiver receiver{true};
  channel::Channel chan{params.d, channel::make_max_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  SimConfig cfg = config_for(params);
  std::vector<ioa::TimedEvent> seen;
  cfg.observer = [&seen](const ioa::TimedEvent& e) { seen.push_back(e); };
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.quiescent);
  // Observer stream must equal the recorded trace exactly.
  EXPECT_EQ(seen, result.trace.events());
}

TEST(Simulator, ObserverWorksWithoutTraceRecording) {
  // The observer enables memory-flat invariant checking on long runs.
  const auto params = core::TimingParams::make(1, 1, 2);
  CounterSender sender{50};
  EchoReceiver receiver{true};
  channel::Channel chan{params.d, channel::make_max_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  SimConfig cfg = config_for(params);
  cfg.record_trace = false;
  std::uint64_t events = 0;
  std::int64_t in_flight = 0;
  cfg.observer = [&](const ioa::TimedEvent& e) {
    ++events;
    if (e.action.kind == ActionKind::Send) ++in_flight;
    if (e.action.kind == ActionKind::Recv) --in_flight;
    ASSERT_GE(in_flight, 0) << "a recv without a matching prior send";
  };
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(events, result.event_count);
  EXPECT_EQ(in_flight, 0);
}

TEST(Simulator, ObserverExceptionAbortsRun) {
  const auto params = core::TimingParams::make(1, 1, 2);
  CounterSender sender{5};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_zero_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  SimConfig cfg = config_for(params);
  cfg.observer = [](const ioa::TimedEvent& e) {
    if (e.action.kind == ActionKind::Recv) {
      throw ModelError("stop at first delivery");
    }
  };
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  EXPECT_THROW((void)sim.run(), ModelError);
}

TEST(Simulator, RecordTraceOffKeepsCountsOnly) {
  const auto params = core::TimingParams::make(1, 1, 2);
  CounterSender sender{3};
  EchoReceiver receiver{false};
  channel::Channel chan{params.d, channel::make_max_delay()};
  FixedRateScheduler ts{params.c1};
  FixedRateScheduler rs{params.c1};
  SimConfig cfg = config_for(params);
  cfg.record_trace = false;
  Simulator sim{sender, receiver, chan, ts, rs, cfg};
  const RunResult result = sim.run();
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.transmitter_sends, 3u);
  EXPECT_GT(result.event_count, 0u);
}

}  // namespace
}  // namespace rstp::sim
