// Tests for the good(A) trace verifier — including that it REJECTS
// deliberately corrupted traces (the verifier is the oracle for all the
// property tests, so its own failure modes need direct coverage).
#include "rstp/core/verify.h"

#include <gtest/gtest.h>

#include "rstp/core/effort.h"
#include "rstp/protocols/factory.h"

namespace rstp::core {
namespace {

using ioa::Action;
using ioa::Actor;
using ioa::Bit;
using ioa::Packet;
using ioa::TimedEvent;
using ioa::TimedTrace;

const TimingParams kParams = TimingParams::make(2, 3, 6);

/// Hand-built minimal good trace: one bit sent, delivered, written.
TimedTrace good_trace() {
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(2), Actor::Transmitter, Action::internal(1, "wait_t"), 1});
  t.append({at_tick(3), Actor::Channel, Action::recv(Packet::to_receiver(1)), 2});
  t.append({at_tick(4), Actor::Transmitter, Action::internal(1, "wait_t"), 3});
  t.append({at_tick(5), Actor::Receiver, Action::write(1), 4});
  return t;
}

TEST(Verify, AcceptsGoodTrace) {
  const std::vector<Bit> input = {1};
  const VerifyResult r = verify_trace(good_trace(), kParams, input);
  EXPECT_TRUE(r.ok()) << r;
}

TEST(Verify, EmptyTraceWithEmptyInputIsGood) {
  const VerifyResult r = verify_trace(TimedTrace{}, kParams, {});
  EXPECT_TRUE(r.ok());
}

TEST(Verify, FlagsStepGapTooSmall) {
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::internal(1, "wait_t"), 0});
  t.append({at_tick(1), Actor::Transmitter, Action::internal(1, "wait_t"), 1});  // gap 1 < c1=2
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_drained = false});
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.clean_of(ViolationKind::StepGapTooSmall));
}

TEST(Verify, FlagsStepGapTooLarge) {
  TimedTrace t;
  t.append({at_tick(0), Actor::Receiver, Action::internal(2, "idle_r"), 0});
  t.append({at_tick(4), Actor::Receiver, Action::internal(2, "idle_r"), 1});  // gap 4 > c2=3
  const VerifyResult r = verify_trace(t, kParams, {});
  EXPECT_FALSE(r.clean_of(ViolationKind::StepGapTooLarge));
}

TEST(Verify, InputsDoNotCountAsSteps) {
  // Recv events belong to the channel; a long quiet stretch between a
  // process's recv inputs is not a gap violation for that process.
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(0)), 0});
  t.append({at_tick(6), Actor::Channel, Action::recv(Packet::to_receiver(0)), 1});
  const VerifyResult r =
      verify_trace(t, kParams, {}, {.require_complete = false, .require_drained = false});
  EXPECT_TRUE(r.clean_of(ViolationKind::StepGapTooLarge)) << r;
  EXPECT_TRUE(r.clean_of(ViolationKind::StepGapTooSmall));
}

TEST(Verify, FirstStepCheckIsOptional) {
  TimedTrace t;
  t.append({at_tick(5), Actor::Transmitter, Action::internal(1, "wait_t"), 0});  // first at 5 > c2
  EXPECT_TRUE(verify_trace(t, kParams, {}, {.require_complete = false}).ok());
  const VerifyResult strict =
      verify_trace(t, kParams, {}, {.require_complete = false, .check_first_step = true});
  EXPECT_FALSE(strict.clean_of(ViolationKind::FirstStepTooLate));
}

TEST(Verify, FlagsRecvWithoutSend) {
  TimedTrace t;
  t.append({at_tick(1), Actor::Channel, Action::recv(Packet::to_receiver(1)), 0});
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  EXPECT_FALSE(r.clean_of(ViolationKind::RecvWithoutSend));
}

TEST(Verify, FlagsDuplicatedDelivery) {
  // One send, two recvs: the second recv has no matching send left.
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(1), Actor::Channel, Action::recv(Packet::to_receiver(1)), 1});
  t.append({at_tick(2), Actor::Channel, Action::recv(Packet::to_receiver(1)), 2});
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  EXPECT_FALSE(r.clean_of(ViolationKind::RecvWithoutSend));
}

TEST(Verify, FlagsDeliveryTooLate) {
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(7), Actor::Channel, Action::recv(Packet::to_receiver(1)), 1});  // 7 > d=6
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  EXPECT_FALSE(r.clean_of(ViolationKind::DeliveryTooLate));
}

TEST(Verify, MatchesByPayloadNotJustDirection) {
  // recv(2) cannot be matched by an outstanding send(1).
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(1), Actor::Channel, Action::recv(Packet::to_receiver(2)), 1});
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  EXPECT_FALSE(r.clean_of(ViolationKind::RecvWithoutSend));
  EXPECT_FALSE(r.clean_of(ViolationKind::UndeliveredPacket));
}

TEST(Verify, GreedyMatchingHandlesEqualPayloads) {
  // Two sends of the same payload; deliveries within d of *some* valid
  // bijection must pass: send@0, send@3, recv@6, recv@9 — greedy matches
  // (0→6, 3→9): delays 6 and 6, both ≤ d=6. The reversed matching would
  // fail (0→9 delay 9), so the verifier must pick the feasible one.
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(3), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 1});
  t.append({at_tick(6), Actor::Channel, Action::recv(Packet::to_receiver(1)), 2});
  t.append({at_tick(9), Actor::Channel, Action::recv(Packet::to_receiver(1)), 3});
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  EXPECT_TRUE(r.clean_of(ViolationKind::DeliveryTooLate)) << r;
}

TEST(Verify, FlagsUndeliveredPacketOnlyWhenDrainedRequired) {
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  EXPECT_FALSE(verify_trace(t, kParams, {}, {.require_complete = false})
                   .clean_of(ViolationKind::UndeliveredPacket));
  EXPECT_TRUE(verify_trace(t, kParams, {}, {.require_complete = false, .require_drained = false})
                  .ok());
}

TEST(Verify, FlagsWrongWriteValue) {
  TimedTrace t = good_trace();  // writes 1
  const std::vector<Bit> input = {0};
  const VerifyResult r = verify_trace(t, kParams, input);
  EXPECT_FALSE(r.clean_of(ViolationKind::OutputNotPrefix));
}

TEST(Verify, FlagsExtraWriteBeyondInput) {
  TimedTrace t = good_trace();
  t.append({at_tick(8), Actor::Receiver, Action::write(0), 5});
  const std::vector<Bit> input = {1};
  const VerifyResult r = verify_trace(t, kParams, input);
  EXPECT_FALSE(r.clean_of(ViolationKind::OutputNotPrefix));
}

TEST(Verify, FlagsIncompleteOutput) {
  const std::vector<Bit> input = {1, 0};
  const VerifyResult r = verify_trace(good_trace(), kParams, input);
  EXPECT_FALSE(r.clean_of(ViolationKind::OutputIncomplete));
  EXPECT_TRUE(verify_trace(good_trace(), kParams, input, {.require_complete = false})
                  .clean_of(ViolationKind::OutputIncomplete));
}

TEST(Verify, ViolationsCarryEventSeqAndPrintable) {
  TimedTrace t;
  t.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  t.append({at_tick(7), Actor::Channel, Action::recv(Packet::to_receiver(1)), 1});
  const VerifyResult r = verify_trace(t, kParams, {}, {.require_complete = false});
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations[0].event_seq, 1u);
  std::ostringstream os;
  os << r;
  EXPECT_NE(os.str().find("DeliveryTooLate"), std::string::npos);
}

TEST(Verify, AcceptsAllShippedProtocolTraces) {
  // Cross-module smoke: every paper protocol's worst-case trace verifies.
  for (const auto kind : protocols::kPaperProtocolKinds) {
    protocols::ProtocolConfig cfg;
    cfg.params = TimingParams::make(1, 2, 6);
    cfg.k = 4;
    cfg.input = make_random_input(24, 9);
    const ProtocolRun run = run_protocol(kind, cfg, Environment::worst_case());
    ASSERT_TRUE(run.output_correct) << kind;
    const VerifyResult r = verify_trace(run.result.trace, cfg.params, cfg.input);
    EXPECT_TRUE(r.ok()) << protocols::to_string(kind) << '\n' << r;
  }
}

}  // namespace
}  // namespace rstp::core
