// Soak suite: a broad randomized campaign over the whole configuration space
// — protocols × timing parameters × alphabet sizes × schedulers × delivery
// policies × input lengths — with every run checked for termination,
// correctness, and good(A) membership by the independent verifier, and its
// trace round-tripped through the serializer.
//
// This is the repository's crash-net: it exists to surface interaction bugs
// none of the targeted suites think to write. Everything is seeded; a
// failure prints the campaign seed to reproduce.
#include <gtest/gtest.h>

#include <sstream>

#include "rstp/common/rng.h"
#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/core/verify.h"
#include "rstp/general/run.h"
#include "rstp/ioa/trace_io.h"
#include "rstp/protocols/factory.h"

namespace rstp::core {
namespace {

using protocols::ProtocolKind;

constexpr ProtocolKind kSoakKinds[] = {ProtocolKind::Alpha,   ProtocolKind::Beta,
                                       ProtocolKind::Gamma,   ProtocolKind::AltBit,
                                       ProtocolKind::Indexed, ProtocolKind::WindowedGamma};

TEST(Soak, BaseModelCampaign) {
  Rng rng{0x50AC0001};
  for (int trial = 0; trial < 150; ++trial) {
    const std::int64_t c1 = rng.next_in(1, 5);
    const std::int64_t c2 = rng.next_in(c1, 10);
    const std::int64_t d = rng.next_in(c2, 24);
    const TimingParams params = TimingParams::make(c1, c2, d);
    const std::size_t n = static_cast<std::size_t>(rng.next_in(0, 64));
    const auto kind = kSoakKinds[rng.next_below(std::size(kSoakKinds))];

    protocols::ProtocolConfig cfg;
    cfg.params = params;
    if (kind == ProtocolKind::Indexed) {
      cfg.k = static_cast<std::uint32_t>(2 * std::max<std::size_t>(1, n));
    } else if (kind == ProtocolKind::WindowedGamma) {
      cfg.k = 2 * static_cast<std::uint32_t>(rng.next_in(2, 10));  // even, >= 4
    } else {
      cfg.k = static_cast<std::uint32_t>(rng.next_in(2, 20));
    }
    cfg.input = make_random_input(n, rng.next_u64());

    Environment env;
    const Environment::Sched scheds[] = {Environment::Sched::SlowFixed,
                                         Environment::Sched::FastFixed,
                                         Environment::Sched::Random,
                                         Environment::Sched::Sawtooth};
    env.transmitter_sched = scheds[rng.next_below(4)];
    env.receiver_sched = scheds[rng.next_below(4)];
    const Environment::Delay delays[] = {Environment::Delay::Max, Environment::Delay::Zero,
                                         Environment::Delay::Random};
    env.delay = delays[rng.next_below(3)];
    env.seed = rng.next_u64();

    std::ostringstream ctx;
    ctx << "trial " << trial << ": " << protocols::to_string(kind) << " " << params
        << " k=" << cfg.k << " n=" << n;
    SCOPED_TRACE(ctx.str());

    const ProtocolRun run = run_protocol(kind, cfg, env);
    ASSERT_TRUE(run.result.quiescent);
    ASSERT_TRUE(run.output_correct);
    const VerifyResult verdict = verify_trace(run.result.trace, params, cfg.input);
    ASSERT_TRUE(verdict.ok()) << verdict;

    // Serializer round trip must be lossless on every shape of trace.
    const ioa::TimedTrace parsed =
        ioa::parse_trace_string(ioa::trace_to_string(run.result.trace));
    ASSERT_EQ(parsed.events(), run.result.trace.events());

    // Stats must be internally consistent with the run.
    const TraceStats stats = compute_trace_stats(run.result.trace);
    ASSERT_EQ(stats.writes, n);
    ASSERT_EQ(stats.data.unmatched_sends, 0u);
    if (stats.data.max_delay.has_value()) {
      ASSERT_LE(stats.data.max_delay->ticks(), d);
    }
  }
}

TEST(Soak, GeneralModelCampaign) {
  Rng rng{0x50AC0002};
  for (int trial = 0; trial < 80; ++trial) {
    const std::int64_t t_c1 = rng.next_in(1, 4);
    const std::int64_t t_c2 = rng.next_in(t_c1, 8);
    const std::int64_t r_c1 = rng.next_in(1, 4);
    const std::int64_t r_c2 = rng.next_in(r_c1, 8);
    const std::int64_t d_hi = rng.next_in(std::max(t_c2, r_c2), 20);
    const std::int64_t d_lo = rng.next_in(0, d_hi);
    general::GeneralTimingParams g{Duration{t_c1}, Duration{t_c2}, Duration{r_c1},
                                   Duration{r_c2}, Duration{d_lo}, Duration{d_hi}};
    const std::size_t n = static_cast<std::size_t>(rng.next_in(0, 48));
    const ProtocolKind kinds[] = {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma,
                                  ProtocolKind::AltBit};
    const auto kind = kinds[rng.next_below(4)];
    const auto k = static_cast<std::uint32_t>(rng.next_in(2, 12));
    const auto input = make_random_input(n, rng.next_u64());

    std::ostringstream ctx;
    ctx << "trial " << trial << ": " << protocols::to_string(kind) << " " << g << " k=" << k
        << " n=" << n;
    SCOPED_TRACE(ctx.str());

    const ProtocolRun run = general::run_general_protocol(
        kind, g, k, input, general::GeneralEnvironment::randomized(rng.next_u64()));
    ASSERT_TRUE(run.result.quiescent);
    ASSERT_TRUE(run.output_correct);
    const VerifyResult verdict = general::verify_general_trace(run.result.trace, g, input);
    ASSERT_TRUE(verdict.ok()) << verdict;
  }
}

}  // namespace
}  // namespace rstp::core
