// Tests for A^γw(k) — the pipelined (windowed) gamma extension.
#include "rstp/protocols/gamma_windowed.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/protocols/factory.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k = 8, std::int64_t c1 = 1,
                          std::int64_t c2 = 2, std::int64_t d = 8) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

TEST(WindowedGamma, RequiresEvenAlphabetOfAtLeastFour) {
  EXPECT_THROW(WindowedGammaTransmitter{config_for({1}, 3)}, ContractViolation);
  EXPECT_THROW(WindowedGammaTransmitter{config_for({1}, 2)}, ContractViolation);
  EXPECT_THROW(WindowedGammaReceiver{config_for({1}, 5)}, ContractViolation);
  EXPECT_NO_THROW(WindowedGammaTransmitter{config_for({1}, 4)});
}

TEST(WindowedGamma, PayloadsCarryAlternatingParityTags) {
  // k=8 → symbols over {0..3}, parity in the high half. δ2 = 4.
  WindowedGammaTransmitter t{config_for(core::make_random_input(20, 1))};
  ASSERT_EQ(t.block_size(), 4);
  // Block 0 (parity 0): payloads < 4; block 1 (parity 1): payloads in [4, 8).
  for (int i = 0; i < 4; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    ASSERT_EQ(a->kind, ActionKind::Send);
    EXPECT_LT(a->packet.payload, 4u) << "block 0 must carry parity 0";
    t.apply(*a);
  }
  for (int i = 0; i < 4; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    ASSERT_EQ(a->kind, ActionKind::Send);
    EXPECT_GE(a->packet.payload, 4u) << "block 1 must carry parity 1";
    t.apply(*a);
  }
  // Window full: block 2 needs block 0 acked.
  EXPECT_EQ(t.enabled_local()->kind, ActionKind::Internal);
  for (int i = 0; i < 4; ++i) t.apply(Action::recv(Packet::to_transmitter(0)));
  EXPECT_EQ(t.enabled_local()->kind, ActionKind::Send) << "block 0 acked unlocks block 2";
}

TEST(WindowedGamma, OutOfOrderBlockCompletionCascades) {
  // Acks for the tail block (parity 1) arriving before the head block's
  // (parity 0) must not advance `completed_` until the head is done.
  WindowedGammaTransmitter t{config_for(core::make_random_input(20, 2))};
  for (int i = 0; i < 8; ++i) t.apply(*t.enabled_local());  // send blocks 0,1
  // All 4 acks of parity 1 arrive first: still stalled (head is parity 0).
  for (int i = 0; i < 4; ++i) t.apply(Action::recv(Packet::to_transmitter(1)));
  EXPECT_EQ(t.enabled_local()->kind, ActionKind::Internal);
  // Head's acks cascade both completions: blocks 2 AND 3 become available.
  for (int i = 0; i < 4; ++i) t.apply(Action::recv(Packet::to_transmitter(0)));
  int sends = 0;
  while (t.enabled_local().has_value() && t.enabled_local()->kind == ActionKind::Send) {
    t.apply(*t.enabled_local());
    ++sends;
  }
  EXPECT_EQ(sends, 8) << "both remaining blocks may be sent back-to-back";
}

TEST(WindowedGamma, ReceiverDecodesBlocksInOrderDespiteParityCompletion) {
  const auto input = core::make_random_input(10, 3);
  const ProtocolConfig cfg = config_for(input);
  WindowedGammaTransmitter t{cfg};
  WindowedGammaReceiver r{cfg};
  std::vector<std::uint32_t> payloads;
  while (t.enabled_local().has_value() && t.enabled_local()->kind == ActionKind::Send) {
    payloads.push_back(t.enabled_local()->packet.payload);
    t.apply(*t.enabled_local());
  }
  ASSERT_EQ(payloads.size(), 8u);  // two blocks in the window
  // Deliver block 1 (parity 1) completely BEFORE block 0: nothing decodes…
  for (std::size_t i = 4; i < 8; ++i) r.apply(Action::recv(Packet::to_receiver(payloads[i])));
  EXPECT_EQ(r.decoded_bits(), 0u);
  // …until block 0 lands, then both decode in order.
  for (std::size_t i = 0; i < 4; ++i) r.apply(Action::recv(Packet::to_receiver(payloads[i])));
  EXPECT_GE(r.decoded_bits(), 10u);
  std::vector<Bit> written;
  while (r.enabled_local()->kind == ActionKind::Send) r.apply(*r.enabled_local());  // acks
  while (r.enabled_local()->kind == ActionKind::Write) {
    written.push_back(r.enabled_local()->message);
    r.apply(*r.enabled_local());
  }
  EXPECT_EQ(written, input);
}

TEST(WindowedGamma, EndToEndCorrectAcrossEnvironments) {
  const auto input = core::make_random_input(80, 5);
  const auto cfg = config_for(input);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const core::ProtocolRun run =
        core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::randomized(seed));
    EXPECT_TRUE(run.result.quiescent) << "seed " << seed;
    EXPECT_TRUE(run.output_correct) << "seed " << seed;
    const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << '\n' << verdict;
  }
  const core::ProtocolRun worst =
      core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::worst_case());
  EXPECT_TRUE(worst.output_correct);
}

TEST(WindowedGamma, EffortWithinItsDerivedBound) {
  const auto params = core::TimingParams::make(1, 2, 16);
  const std::uint32_t k = 16;
  const double bound = windowed_gamma_upper(params, k);
  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = k;
  const std::size_t B = combinatorics::floor_log2_mu(k / 2, static_cast<std::uint32_t>(params.delta2()));
  cfg.input = core::make_random_input(B * 2 * 40, 6);  // align to 2-block windows
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  const double effort =
      static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
      static_cast<double>(cfg.input.size());
  EXPECT_LE(effort, bound * (1 + 1e-9));
}

TEST(WindowedGamma, PipeliningBeatsPlainGammaWhenAlphabetIsRich) {
  // 2·B_{k/2} > B_k here: windowing should win.
  const auto params = core::TimingParams::make(1, 2, 16);
  const std::uint32_t k = 16;
  const auto gamma = core::measure_effort(ProtocolKind::Gamma, params, k, 720,
                                          Environment::worst_case());
  const auto windowed = core::measure_effort(ProtocolKind::WindowedGamma, params, k, 720,
                                             Environment::worst_case());
  ASSERT_TRUE(gamma.output_correct);
  ASSERT_TRUE(windowed.output_correct);
  EXPECT_LT(windowed.effort, gamma.effort);
}

TEST(WindowedGamma, WindowNeverExceedsTwoBlocksInFlight) {
  const auto cfg = config_for(core::make_random_input(60, 7));
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  const auto delta2 = static_cast<std::uint64_t>(cfg.params.delta2());
  // ≤ 2 blocks of data + their acks simultaneously in flight.
  EXPECT_LE(stats.max_in_flight, 4 * delta2);
  EXPECT_EQ(stats.acks.delivered, stats.data.delivered);
}

TEST(WindowedGamma, ExhaustivelyVerifiedSmallInstance) {
  // c1=c2=1, d=2 → δ2=2; k=4 → symbols over {0,1}, B=1 bit per block.
  const std::vector<Bit> input = {1, 0, 1};
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, 2);
  cfg.k = 4;
  cfg.input = input;
  const auto instance = make_protocol(ProtocolKind::WindowedGamma, cfg);
  ioa::ExplorerConfig config;
  config.d = 2;
  const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    const auto& out = dynamic_cast<const ReceiverBase&>(r).output();
    return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
  };
  const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    return dynamic_cast<const ReceiverBase&>(r).output() == input;
  };
  ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix, complete};
  const ioa::ExplorerResult result = explorer.run();
  EXPECT_TRUE(result.verified()) << result.first_violation;
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(WindowedGamma, WindowOverrideValidation) {
  ProtocolConfig cfg = config_for({1, 0}, 12);
  cfg.window_override = 3;  // 12/3 = 4 symbols: fine
  EXPECT_NO_THROW(WindowedGammaTransmitter{cfg});
  cfg.window_override = 5;  // 5 does not divide 12
  EXPECT_THROW(WindowedGammaTransmitter{cfg}, ContractViolation);
  cfg.window_override = 8;  // 12 < 2*8
  EXPECT_THROW(WindowedGammaTransmitter{cfg}, ContractViolation);
  cfg.window_override = 0;
  EXPECT_THROW(WindowedGammaTransmitter{cfg}, ContractViolation);
}

TEST(WindowedGamma, WindowOneMatchesPlainGammaEffort) {
  // W = 1: no pipelining, full alphabet — the same block rhythm as A^gamma,
  // so worst-case effort must coincide exactly.
  const auto params = core::TimingParams::make(1, 2, 16);
  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = 16;
  cfg.window_override = 1;
  cfg.input = core::make_random_input(440, 9);
  const core::ProtocolRun w1 =
      core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::worst_case());
  cfg.window_override.reset();
  const core::ProtocolRun plain =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  ASSERT_TRUE(w1.output_correct);
  ASSERT_TRUE(plain.output_correct);
  EXPECT_EQ(w1.result.last_transmitter_send, plain.result.last_transmitter_send);
}

TEST(WindowedGamma, LargerWindowsCorrectUnderRandomizedEnvironments) {
  for (const std::uint32_t w : {3u, 4u, 6u}) {
    protocols::ProtocolConfig cfg;
    cfg.params = core::TimingParams::make(1, 2, 12);
    cfg.k = 24;  // divisible by 3, 4, 6
    cfg.window_override = w;
    cfg.input = core::make_random_input(90, w);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const core::ProtocolRun run =
          core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::randomized(seed));
      EXPECT_TRUE(run.output_correct) << "W=" << w << " seed=" << seed;
      const auto verdict = core::verify_trace(run.result.trace, cfg.params, cfg.input);
      EXPECT_TRUE(verdict.ok()) << "W=" << w << '\n' << verdict;
    }
  }
}

TEST(WindowedGamma, BoundFunctionValidation) {
  const auto params = core::TimingParams::make(1, 2, 16);
  EXPECT_GT(windowed_gamma_upper(params, 16, 1), 0.0);
  EXPECT_THROW((void)windowed_gamma_upper(params, 15, 2), ContractViolation);
  EXPECT_THROW((void)windowed_gamma_upper(params, 4, 4), ContractViolation);
  // Deeper windows with rich alphabets keep helping until send-limited.
  EXPECT_LT(windowed_gamma_upper(params, 64, 2), windowed_gamma_upper(params, 64, 1));
}

TEST(WindowedGamma, SurvivesTheBatchAdversary) {
  // Pipelined blocks are adjacent in time, so an adversarial batch can mix
  // packets of different blocks in one sorted burst — the tag is what keeps
  // them separable. Unlike beta, gamma-w needs no timing argument at all.
  const auto cfg = config_for(core::make_random_input(64, 11), 8, 1, 1, 8);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::WindowedGamma, cfg, Environment::adversarial_fast());
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, cfg.input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(WindowedGamma, EmptyInput) {
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::WindowedGamma, config_for({}), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_TRUE(run.result.quiescent);
}

}  // namespace
}  // namespace rstp::protocols
