// Tests for the I/O-automata action vocabulary and timed traces.
#include <gtest/gtest.h>

#include <sstream>

#include "rstp/common/check.h"
#include "rstp/ioa/action.h"
#include "rstp/ioa/trace.h"

namespace rstp::ioa {
namespace {

TEST(Packet, DirectionRouting) {
  const Packet data = Packet::to_receiver(3);
  EXPECT_EQ(data.destination(), ProcessId::Receiver);
  EXPECT_EQ(data.source(), ProcessId::Transmitter);
  const Packet ack = Packet::to_transmitter(0);
  EXPECT_EQ(ack.destination(), ProcessId::Transmitter);
  EXPECT_EQ(ack.source(), ProcessId::Receiver);
  EXPECT_EQ(peer(ProcessId::Transmitter), ProcessId::Receiver);
  EXPECT_EQ(peer(ProcessId::Receiver), ProcessId::Transmitter);
}

TEST(Packet, EqualityIncludesDirectionAndPayload) {
  EXPECT_EQ(Packet::to_receiver(1), Packet::to_receiver(1));
  EXPECT_NE(Packet::to_receiver(1), Packet::to_receiver(2));
  EXPECT_NE(Packet::to_receiver(1), Packet::to_transmitter(1));
}

TEST(Action, FactoryAndEquality) {
  const Action s = Action::send(Packet::to_receiver(5));
  EXPECT_EQ(s.kind, ActionKind::Send);
  EXPECT_EQ(s.packet.payload, 5u);
  EXPECT_EQ(s, Action::send(Packet::to_receiver(5)));
  EXPECT_NE(s, Action::recv(Packet::to_receiver(5)));  // kind differs

  const Action w = Action::write(1);
  EXPECT_EQ(w.kind, ActionKind::Write);
  EXPECT_EQ(w, Action::write(1));
  EXPECT_NE(w, Action::write(0));

  const Action i1 = Action::internal(7, "wait_t");
  const Action i2 = Action::internal(7, "different_debug_name");
  EXPECT_EQ(i1, i2) << "internal identity is the id, not the debug name";
  EXPECT_NE(i1, Action::internal(8, "wait_t"));
}

TEST(Action, StreamFormatting) {
  std::ostringstream os;
  os << Action::send(Packet::to_receiver(2)) << " | " << Action::write(1) << " | "
     << Action::internal(1, "wait_t");
  EXPECT_EQ(os.str(), "send(pkt(t→r, 2)) | write(1) | wait_t");
}

TEST(TimedTrace, AppendEnforcesMonotonicity) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::internal(1, "a"), 0});
  trace.append({at_tick(0), Actor::Receiver, Action::internal(2, "b"), 1});  // equal time OK
  trace.append({at_tick(5), Actor::Channel, Action::recv(Packet::to_receiver(0)), 2});
  EXPECT_THROW(trace.append({at_tick(4), Actor::Transmitter, Action::internal(1, "a"), 3}),
               ContractViolation);
  EXPECT_THROW(trace.append({at_tick(5), Actor::Transmitter, Action::internal(1, "a"), 2}),
               ContractViolation);  // seq must increase
  EXPECT_EQ(trace.size(), 3u);
}

TEST(TimedTrace, WrittenMessagesExtractsY) {
  TimedTrace trace;
  trace.append({at_tick(1), Actor::Receiver, Action::write(1), 0});
  trace.append({at_tick(2), Actor::Receiver, Action::internal(2, "idle_r"), 1});
  trace.append({at_tick(3), Actor::Receiver, Action::write(0), 2});
  trace.append({at_tick(4), Actor::Receiver, Action::write(1), 3});
  EXPECT_EQ(trace.written_messages(), (std::vector<Bit>{1, 0, 1}));
}

TEST(TimedTrace, LastSendTracksPerSender) {
  TimedTrace trace;
  EXPECT_FALSE(trace.last_send_time(ProcessId::Transmitter).has_value());
  trace.append({at_tick(1), Actor::Transmitter, Action::send(Packet::to_receiver(0)), 0});
  trace.append({at_tick(4), Actor::Receiver, Action::send(Packet::to_transmitter(0)), 1});
  trace.append({at_tick(9), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 2});
  ASSERT_TRUE(trace.last_send_time(ProcessId::Transmitter).has_value());
  EXPECT_EQ(*trace.last_send_time(ProcessId::Transmitter), at_tick(9));
  EXPECT_EQ(*trace.last_send_time(ProcessId::Receiver), at_tick(4));
  EXPECT_EQ(trace.send_count(ProcessId::Transmitter), 2u);
  EXPECT_EQ(trace.send_count(ProcessId::Receiver), 1u);
}

TEST(TimedTrace, BehaviorDropsInternalActions) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(0)), 0});
  trace.append({at_tick(1), Actor::Transmitter, Action::internal(1, "wait_t"), 1});
  trace.append({at_tick(2), Actor::Channel, Action::recv(Packet::to_receiver(0)), 2});
  trace.append({at_tick(3), Actor::Receiver, Action::internal(2, "idle_r"), 3});
  trace.append({at_tick(4), Actor::Receiver, Action::write(0), 4});
  const auto beh = trace.behavior();
  ASSERT_EQ(beh.size(), 3u);
  EXPECT_EQ(beh[0].action.kind, ActionKind::Send);
  EXPECT_EQ(beh[1].action.kind, ActionKind::Recv);
  EXPECT_EQ(beh[2].action.kind, ActionKind::Write);
}

TEST(TimedTrace, ProcessViewContainsOwnStepsAndIncomingPackets) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(7)), 0});
  trace.append({at_tick(1), Actor::Channel, Action::recv(Packet::to_receiver(7)), 1});
  trace.append({at_tick(2), Actor::Receiver, Action::send(Packet::to_transmitter(0)), 2});
  trace.append({at_tick(3), Actor::Channel, Action::recv(Packet::to_transmitter(0)), 3});
  trace.append({at_tick(4), Actor::Receiver, Action::write(1), 4});

  const auto r_view = trace.process_view(ProcessId::Receiver);
  ASSERT_EQ(r_view.size(), 3u);  // incoming data, own ack send, own write
  EXPECT_EQ(r_view[0].action.kind, ActionKind::Recv);
  EXPECT_EQ(r_view[1].action.kind, ActionKind::Send);
  EXPECT_EQ(r_view[2].action.kind, ActionKind::Write);

  const auto t_view = trace.process_view(ProcessId::Transmitter);
  ASSERT_EQ(t_view.size(), 2u);  // own send, incoming ack
  EXPECT_EQ(t_view[0].action.kind, ActionKind::Send);
  EXPECT_EQ(t_view[1].action.kind, ActionKind::Recv);
  EXPECT_EQ(t_view[1].action.packet.destination(), ProcessId::Transmitter);
}

TEST(TimedTrace, LocalEventsPartitionByActor) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(0)), 0});
  trace.append({at_tick(2), Actor::Channel, Action::recv(Packet::to_receiver(0)), 1});
  trace.append({at_tick(3), Actor::Receiver, Action::write(0), 2});
  EXPECT_EQ(trace.local_events(Actor::Transmitter).size(), 1u);
  EXPECT_EQ(trace.local_events(Actor::Receiver).size(), 1u);
  EXPECT_EQ(trace.local_events(Actor::Channel).size(), 1u);
  EXPECT_EQ(trace.end_time(), at_tick(3));
  EXPECT_EQ(TimedTrace{}.end_time(), Time::zero());
}

}  // namespace
}  // namespace rstp::ioa
