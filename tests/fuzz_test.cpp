// Mechanics of the fault/fuzz subsystem (label: fuzz):
//   * SeededFaultInjector: deterministic, rate-respecting, pin-obeying.
//   * Channel fault plumbing: each fault kind produces the right deliveries
//     and the right structured log entries.
//   * verify_trace_with_faults: per-kind excusal, never-excused kinds.
//   * Case/repro serialization round-trips and rejects malformed input.
//   * run_fuzz: bitwise determinism across runs and --jobs values.
// End-to-end failure discovery lives in fuzz_repro_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "rstp/channel/channel.h"
#include "rstp/channel/policies.h"
#include "rstp/core/verify.h"
#include "rstp/fault/fault.h"
#include "rstp/sim/fuzz.h"
#include "support/gen.h"

namespace rstp {
namespace {

using channel::Channel;
using fault::FaultDecision;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultRates;
using fault::PinnedFault;
using fault::SeededFaultInjector;
using ioa::Packet;

[[nodiscard]] Time at_tick(std::int64_t t) { return Time::zero() + Duration{t}; }

TEST(SeededFaultInjector, DecisionDependsOnlyOnSeedAndSendSeq) {
  FaultRates rates;
  rates.drop_pm = 100;
  rates.duplicate_pm = 100;
  rates.late_pm = 100;
  rates.corrupt_pm = 100;
  SeededFaultInjector a{42, rates};
  SeededFaultInjector b{42, rates};
  // Query b out of order and repeatedly: decisions must still agree with a's
  // in-order stream — the contract run_fuzz_case's reproducibility rests on.
  for (const std::uint64_t seq : {5u, 0u, 17u, 5u, 3u, 999u, 0u}) {
    const FaultDecision da = a.decide(Packet::to_receiver(1), at_tick(0), at_tick(6), seq);
    const FaultDecision db = b.decide(Packet::to_receiver(1), at_tick(0), at_tick(6), seq);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicates, db.duplicates);
    EXPECT_EQ(da.late_by, db.late_by);
    EXPECT_EQ(da.corrupt_payload, db.corrupt_payload);
  }
}

TEST(SeededFaultInjector, ZeroRatesAreBenignAndRatesRoughlyHold) {
  SeededFaultInjector benign{1, FaultRates{}};
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    EXPECT_TRUE(benign.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), seq).benign());
  }
  FaultRates rates;
  rates.drop_pm = 250;  // expect ~1/4 of sends dropped
  SeededFaultInjector quarter{7, rates};
  int drops = 0;
  for (std::uint64_t seq = 0; seq < 4000; ++seq) {
    const FaultDecision d = quarter.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), seq);
    if (d.drop) ++drops;
    EXPECT_EQ(d.duplicates, 0u);
    EXPECT_EQ(d.late_by.ticks(), 0);
  }
  EXPECT_GT(drops, 800);
  EXPECT_LT(drops, 1200);
}

TEST(SeededFaultInjector, PinsOverrideRatesAndCorruptStaysInAlphabet) {
  FaultRates rates;
  rates.corrupt_space = 4;
  const std::vector<PinnedFault> pins = {{3, FaultKind::Drop, 0},
                                         {5, FaultKind::Duplicate, 2},
                                         {8, FaultKind::Late, 3},
                                         {9, FaultKind::Corrupt, 2}};
  SeededFaultInjector inj{1, rates, pins};
  EXPECT_TRUE(inj.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), 0).benign());
  EXPECT_TRUE(inj.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), 3).drop);
  EXPECT_EQ(inj.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), 5).duplicates, 2u);
  EXPECT_EQ(inj.decide(Packet::to_receiver(0), at_tick(0), at_tick(6), 8).late_by, Duration{3});
  // Pinned corrupt with arg == current payload must still change the value.
  const FaultDecision corrupt =
      inj.decide(Packet::to_receiver(2), at_tick(0), at_tick(6), 9);
  ASSERT_TRUE(corrupt.corrupt_payload.has_value());
  EXPECT_NE(*corrupt.corrupt_payload, 2u);
  EXPECT_LT(*corrupt.corrupt_payload, 4u);
}

TEST(FaultRates, ValidationRejectsIllegalShapes) {
  FaultRates over;
  over.drop_pm = 600;
  over.duplicate_pm = 600;  // sum > 1000
  EXPECT_THROW(over.validate(), ContractViolation);
  FaultRates dup;
  dup.max_duplicates = 0;
  EXPECT_THROW(dup.validate(), ContractViolation);
  FaultRates late;
  late.max_late = Duration{0};
  EXPECT_THROW(late.validate(), ContractViolation);
  FaultRates space;
  space.corrupt_space = 1;
  EXPECT_THROW(space.validate(), ContractViolation);
  EXPECT_NO_THROW(FaultRates{}.validate());
}

// ---------------------------------------------------------------------------
// Channel plumbing, one fault kind at a time (pins + fixed delay keep every
// delivery instant exact).

TEST(ChannelFaults, DropNeverEntersFlightAndIsLogged) {
  Channel chan{Duration{6}, channel::make_fixed_delay(Duration{2})};
  SeededFaultInjector inj{1, FaultRates{}, {{0, FaultKind::Drop, 0}}};
  chan.set_fault_injector(&inj);
  chan.send(Packet::to_receiver(3), at_tick(0));
  EXPECT_TRUE(chan.empty());
  ASSERT_EQ(chan.fault_log().size(), 1u);
  const FaultEvent& e = chan.fault_log()[0];
  EXPECT_EQ(e.kind, FaultKind::Drop);
  EXPECT_EQ(e.send_seq, 0u);
  EXPECT_EQ(e.at, at_tick(0));
  EXPECT_EQ(e.original, Packet::to_receiver(3));
}

TEST(ChannelFaults, DuplicateDeliversExtraCopies) {
  Channel chan{Duration{6}, channel::make_fixed_delay(Duration{2})};
  SeededFaultInjector inj{1, FaultRates{}, {{0, FaultKind::Duplicate, 2}}};
  chan.set_fault_injector(&inj);
  chan.send(Packet::to_receiver(1), at_tick(0));
  EXPECT_EQ(chan.in_flight(), 3u);  // original + 2 copies
  EXPECT_EQ(chan.fault_log().size(), 2u);  // one event per extra copy
  const auto& due = chan.collect_due(at_tick(2));
  ASSERT_EQ(due.size(), 3u);
  for (const auto& flight : due) EXPECT_EQ(flight.packet, Packet::to_receiver(1));
}

TEST(ChannelFaults, LateDeliveryOvershootsTheDeadline) {
  Channel chan{Duration{6}, channel::make_fixed_delay(Duration{2})};
  SeededFaultInjector inj{1, FaultRates{}, {{0, FaultKind::Late, 3}}};
  chan.set_fault_injector(&inj);
  chan.send(Packet::to_receiver(1), at_tick(10));
  EXPECT_TRUE(chan.collect_due(at_tick(16)).empty());  // past d, still held
  const auto& due = chan.collect_due(at_tick(19));     // deadline + 3
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].deliver_at, at_tick(19));
  ASSERT_EQ(chan.fault_log().size(), 1u);
  EXPECT_EQ(chan.fault_log()[0].late_by, Duration{3});
}

TEST(ChannelFaults, CorruptMutatesPayloadBeforeThePolicy) {
  Channel chan{Duration{6}, channel::make_fixed_delay(Duration{2})};
  SeededFaultInjector inj{1, FaultRates{}, {{0, FaultKind::Corrupt, 2}}};
  chan.set_fault_injector(&inj);
  chan.send(Packet::to_receiver(0), at_tick(0));
  const auto& due = chan.collect_due(at_tick(2));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].packet, Packet::to_receiver(2));
  ASSERT_EQ(chan.fault_log().size(), 1u);
  EXPECT_EQ(chan.fault_log()[0].original, Packet::to_receiver(0));
  EXPECT_EQ(chan.fault_log()[0].injected, Packet::to_receiver(2));
}

TEST(ChannelFaults, NoInjectorMeansCleanLogAndInModelBehavior) {
  Channel chan{Duration{6}, channel::make_fixed_delay(Duration{2})};
  chan.send(Packet::to_receiver(1), at_tick(0));
  EXPECT_TRUE(chan.fault_log().empty());
  EXPECT_EQ(chan.collect_due(at_tick(2)).size(), 1u);
}

// ---------------------------------------------------------------------------
// Fault-aware verification.

/// A minimal trace: send at t_send, recv at t_recv (same payload).
[[nodiscard]] ioa::TimedTrace send_recv_trace(std::int64_t t_send, std::int64_t t_recv) {
  ioa::TimedTrace trace;
  trace.append({at_tick(t_send), ioa::Actor::Transmitter,
                ioa::Action::send(Packet::to_receiver(1)), 0});
  trace.append({at_tick(t_recv), ioa::Actor::Channel,
                ioa::Action::recv(Packet::to_receiver(1)), 1});
  return trace;
}

TEST(VerifyWithFaults, LateFaultExcusesLateDelivery) {
  const auto params = core::TimingParams::make(1, 2, 6);
  const ioa::TimedTrace trace = send_recv_trace(0, 9);  // delay 9 > d=6
  core::VerifyOptions options;
  options.require_complete = false;
  const std::vector<ioa::Bit> input;

  const auto blind = core::verify_trace_with_faults(trace, params, input, {}, options);
  EXPECT_FALSE(blind.ok());  // no faults logged: the violation stands

  const FaultEvent late{FaultKind::Late, 0, at_tick(0), Packet::to_receiver(1),
                        Packet::to_receiver(1), Duration{3}};
  const std::vector<FaultEvent> faults = {late};
  const auto excused = core::verify_trace_with_faults(trace, params, input, faults, options);
  EXPECT_TRUE(excused.ok());
  EXPECT_EQ(excused.excused, 1u);
  EXPECT_FALSE(excused.raw.ok());  // the raw verdict still records it
}

TEST(VerifyWithFaults, FaultAfterTheViolationDoesNotExcuseIt) {
  const auto params = core::TimingParams::make(1, 2, 6);
  const ioa::TimedTrace trace = send_recv_trace(0, 9);
  core::VerifyOptions options;
  options.require_complete = false;
  const FaultEvent later{FaultKind::Late, 7, at_tick(30), Packet::to_receiver(1),
                         Packet::to_receiver(1), Duration{3}};
  const std::vector<FaultEvent> faults = {later};
  const auto report =
      core::verify_trace_with_faults(trace, params, {}, faults, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.excused, 0u);
}

TEST(VerifyWithFaults, StepGapViolationsAreNeverExcused) {
  // Two transmitter steps 1 tick apart with c1=2: a scheduler-law violation
  // no channel fault can cause — it must survive any fault log.
  const auto params = core::TimingParams::make(2, 4, 8);
  ioa::TimedTrace trace;
  trace.append({at_tick(0), ioa::Actor::Transmitter, protocols::wait_t_action(), 0});
  trace.append({at_tick(1), ioa::Actor::Transmitter, protocols::wait_t_action(), 1});
  core::VerifyOptions options;
  options.require_complete = false;
  const FaultEvent early{FaultKind::Drop, 0, at_tick(0), Packet::to_receiver(1),
                         Packet::to_receiver(1), Duration{0}};
  const std::vector<FaultEvent> faults = {early};
  const auto report = core::verify_trace_with_faults(trace, params, {}, faults, options);
  ASSERT_EQ(report.unexcused.size(), 1u);
  EXPECT_EQ(report.unexcused[0].kind, core::ViolationKind::StepGapTooSmall);
}

TEST(VerifyWithFaults, DropExcusesTheMatchingCascade) {
  // A dropped send's retransmission recv greedily matches the *dropped* send
  // and books an over-d delay; the fault log must excuse it (the regression
  // the first fault-injected fuzz campaign caught).
  const auto params = core::TimingParams::make(1, 6, 6);
  ioa::TimedTrace trace;
  trace.append({at_tick(0), ioa::Actor::Transmitter,
                ioa::Action::send(Packet::to_receiver(1)), 0});  // dropped
  trace.append({at_tick(5), ioa::Actor::Transmitter,
                ioa::Action::send(Packet::to_receiver(1)), 1});  // retransmit
  trace.append({at_tick(8), ioa::Actor::Channel,
                ioa::Action::recv(Packet::to_receiver(1)), 2});  // matches seq 0: delay 8 > d
  core::VerifyOptions options;
  options.require_complete = false;
  options.require_drained = false;
  const FaultEvent drop{FaultKind::Drop, 0, at_tick(0), Packet::to_receiver(1),
                        Packet::to_receiver(1), Duration{0}};
  const std::vector<FaultEvent> faults = {drop};
  const auto report = core::verify_trace_with_faults(trace, params, {}, faults, options);
  EXPECT_TRUE(report.ok()) << report;
  EXPECT_FALSE(report.raw.ok());
}

// ---------------------------------------------------------------------------
// Serialization.

TEST(FuzzSerialization, CaseRoundTripsThroughText) {
  sim::FuzzCase c;
  c.protocol = protocols::ProtocolKind::Gamma;
  c.params = core::TimingParams::make(2, 3, 9);
  c.k = 6;
  c.input_bits = 17;
  c.input_seed = 111;
  c.sched_seed_t = 222;
  c.sched_seed_r = 333;
  c.delay_seed = 444;
  c.wait_override = 2;
  c.faults_enabled = true;
  c.fault_seed = 555;
  c.rates.drop_pm = 10;
  c.rates.corrupt_pm = 20;
  c.rates.corrupt_space = 6;
  c.pins = {{4, fault::FaultKind::Late, 2}, {9, fault::FaultKind::Drop, 0}};

  std::stringstream buffer;
  sim::write_fuzz_case(buffer, c);
  const sim::FuzzCase parsed = sim::parse_fuzz_case(buffer);
  EXPECT_EQ(parsed, c);
}

TEST(FuzzSerialization, ReproRoundTripsAndIgnoresCommentsAndBlanks) {
  sim::FuzzCase c;
  c.wait_override = 1;
  const sim::FuzzCaseResult result = sim::run_fuzz_case(c);
  std::stringstream buffer;
  sim::write_fuzz_repro(buffer, c, result);

  // Sprinkle comments/blank lines the way a hand-edited file would.
  std::string text = "# golden repro\n\n" + buffer.str() + "\n# trailing comment\n";
  std::istringstream annotated{text};
  const sim::FuzzRepro repro = sim::parse_fuzz_repro(annotated);
  EXPECT_EQ(repro.fuzz_case, c);
  EXPECT_EQ(repro.failed, result.failed);
  EXPECT_EQ(repro.output_hash, result.output_hash);
  EXPECT_EQ(repro.coverage_hash, result.coverage_hash);
}

TEST(FuzzSerialization, MalformedDocumentsAreModelErrors) {
  const auto parse = [](std::string text) {
    std::istringstream in{std::move(text)};
    return sim::parse_fuzz_case(in);
  };
  EXPECT_THROW(parse(""), ModelError);
  EXPECT_THROW(parse("wrong-header-v0\nend\n"), ModelError);
  EXPECT_THROW(parse("rstp-fuzz-case-v1\nk 4\n"), ModelError);  // missing end
  EXPECT_THROW(parse("rstp-fuzz-case-v1\nmystery 1\nend\n"), ModelError);
  EXPECT_THROW(parse("rstp-fuzz-case-v1\nk banana\nend\n"), ModelError);
  EXPECT_THROW(parse("rstp-fuzz-case-v1\nparams 3 2 9\nend\n"), ModelError);
  EXPECT_THROW(parse("rstp-fuzz-case-v1\nprotocol omega\nend\n"), ModelError);
}

// ---------------------------------------------------------------------------
// Campaign determinism.

TEST(RunFuzz, BitwiseDeterministicAcrossRunsAndJobs) {
  sim::FuzzSpec spec;
  spec.protocol = protocols::ProtocolKind::Beta;
  spec.seed = 99;
  spec.budget = 40;
  spec.faults_enabled = true;

  spec.jobs = 1;
  const sim::FuzzResult serial = sim::run_fuzz(spec);
  const sim::FuzzResult again = sim::run_fuzz(spec);
  spec.jobs = 3;
  const sim::FuzzResult parallel = sim::run_fuzz(spec);
  // More workers than a generation has distinct parents: catches any
  // jobs-dependent choice of generation size or fold order.
  spec.jobs = 8;
  const sim::FuzzResult wide = sim::run_fuzz(spec);

  for (const sim::FuzzResult* r : {&again, &parallel, &wide}) {
    EXPECT_EQ(r->executed, serial.executed);
    EXPECT_EQ(r->coverage, serial.coverage);
    EXPECT_EQ(r->coverage_hash, serial.coverage_hash);
    EXPECT_EQ(r->corpus, serial.corpus);
    ASSERT_EQ(r->failures.size(), serial.failures.size());
    for (std::size_t i = 0; i < serial.failures.size(); ++i) {
      EXPECT_EQ(r->failures[i].original, serial.failures[i].original);
      EXPECT_EQ(r->failures[i].minimized, serial.failures[i].minimized);
    }
  }
}

TEST(RunFuzz, CorpusSeedsAreExecutedFirst) {
  sim::FuzzCase seed_case;
  seed_case.protocol = protocols::ProtocolKind::Beta;
  seed_case.input_bits = 5;
  sim::FuzzSpec spec;
  spec.protocol = protocols::ProtocolKind::Beta;
  spec.budget = 5;  // 4 base cases + the seed, nothing else
  spec.corpus_seeds = {seed_case};
  const sim::FuzzResult result = sim::run_fuzz(spec);
  EXPECT_EQ(result.executed, 5u);
  EXPECT_TRUE(result.ok());
}

TEST(RunFuzz, StalledCorpusRaisesTheMutationRateDeterministically) {
  // Self-tuning pin: a tiny search space saturates coverage fast, and once
  // generations stop gaining fingerprints the breeding draw must widen —
  // base 3, +1 per consecutive zero-gain generation, capped at +5 — purely
  // as a function of the fold sequence, so identical across jobs.
  sim::FuzzSpec spec;
  spec.protocol = protocols::ProtocolKind::Alpha;
  spec.k = 2;
  spec.max_input_bits = 2;
  spec.seed = 7;
  spec.budget = 640;
  spec.stop_on_failure = false;

  struct Tick {
    std::uint64_t generation;
    std::size_t coverage_gain;
    std::uint64_t mutation_rate;
  };
  const auto collect = [&spec](unsigned jobs) {
    sim::FuzzSpec s = spec;
    s.jobs = jobs;
    std::vector<Tick> ticks;
    s.on_generation = [&ticks](const sim::FuzzGenerationSnapshot& snap) {
      if (!snap.final_snapshot) {
        ticks.push_back({snap.generation, snap.coverage_gain, snap.mutation_rate});
      }
    };
    (void)sim::run_fuzz(s);
    return ticks;
  };

  const std::vector<Tick> serial = collect(1);
  ASSERT_FALSE(serial.empty());
  std::uint64_t stall = 0;
  std::uint64_t widest = 0;
  for (const Tick& t : serial) {
    if (t.coverage_gain == 0) {
      ++stall;
    } else {
      stall = 0;
    }
    EXPECT_EQ(t.mutation_rate, 3 + std::min<std::uint64_t>(stall, 5))
        << "generation " << t.generation;
    widest = std::max(widest, t.mutation_rate);
  }
  // The pin itself: the space is small enough that the hunt *does* stall,
  // so the rate demonstrably rises above the base.
  EXPECT_GT(widest, 3u);

  const std::vector<Tick> parallel = collect(3);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].generation, serial[i].generation);
    EXPECT_EQ(parallel[i].coverage_gain, serial[i].coverage_gain);
    EXPECT_EQ(parallel[i].mutation_rate, serial[i].mutation_rate);
  }
}

TEST(RunFuzz, InvalidGenomesAreSkippedNotFailed) {
  // windowed-gamma requires W | k; k=5 violates the config contract. The
  // fuzzer must classify it as invalid (skip), not as a protocol failure.
  sim::FuzzCase c;
  c.protocol = protocols::ProtocolKind::WindowedGamma;
  c.k = 5;
  const sim::FuzzCaseResult r = sim::run_fuzz_case(c);
  EXPECT_TRUE(r.invalid);
  EXPECT_FALSE(r.failed);
}

}  // namespace
}  // namespace rstp
