// Unit tests for rstp::bigint::BigUint.
//
// Strategy: small values are cross-checked against native 64/128-bit
// arithmetic oracles; large values are checked through algebraic identities
// (a = (a/b)*b + a%b, (a+b)-b = a, decimal round trips, shift laws) and
// known landmark constants (factorials, powers, Mersenne numbers).
#include "rstp/bigint/biguint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::bigint {
namespace {

using u128 = unsigned __int128;

BigUint from_u128(u128 v) {
  BigUint result{static_cast<std::uint64_t>(v >> 64)};
  result <<= 64;
  result.add_u64(static_cast<std::uint64_t>(v));
  return result;
}

TEST(BigUint, DefaultIsZero) {
  const BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_u64(), 0u);
  EXPECT_EQ(zero.to_decimal(), "0");
}

TEST(BigUint, ConstructFromU64) {
  const BigUint v{12345u};
  EXPECT_FALSE(v.is_zero());
  EXPECT_EQ(v.to_u64(), 12345u);
  EXPECT_EQ(v.to_decimal(), "12345");
}

TEST(BigUint, BitLengthMatchesPowersOfTwo) {
  for (std::size_t e = 0; e < 300; ++e) {
    const BigUint p = BigUint::pow2(e);
    EXPECT_EQ(p.bit_length(), e + 1) << "2^" << e;
    EXPECT_TRUE(p.bit(e));
    if (e > 0) {
      EXPECT_FALSE(p.bit(e - 1));
    }
  }
}

TEST(BigUint, DecimalRoundTripLandmarks) {
  EXPECT_EQ(BigUint::pow2(128).to_decimal(), "340282366920938463463374607431768211456");
  BigUint fact{1};
  for (std::uint64_t i = 2; i <= 25; ++i) fact.mul_u64(i);
  EXPECT_EQ(fact.to_decimal(), "15511210043330985984000000");  // 25!
  EXPECT_EQ(BigUint::from_decimal("15511210043330985984000000"), fact);
}

TEST(BigUint, FromDecimalRejectsGarbage) {
  EXPECT_THROW((void)BigUint::from_decimal(""), ContractViolation);
  EXPECT_THROW((void)BigUint::from_decimal("12a3"), ContractViolation);
  EXPECT_THROW((void)BigUint::from_decimal("-5"), ContractViolation);
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint a{~std::uint64_t{0}};
  a += BigUint{1};
  EXPECT_EQ(a, BigUint::pow2(64));
  a += a;
  EXPECT_EQ(a, BigUint::pow2(65));
}

TEST(BigUint, SubtractionBorrowsAcrossLimbs) {
  BigUint a = BigUint::pow2(128);
  a -= BigUint{1};
  EXPECT_EQ(a.bit_length(), 128u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_TRUE(a.bit(i));
}

TEST(BigUint, SubtractionToZeroNormalizes) {
  BigUint a = BigUint::from_decimal("123123123123123123123123");
  a -= a;
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a, BigUint{});
}

TEST(BigUint, SubtractionUnderflowThrows) {
  BigUint small{3};
  EXPECT_THROW(small -= BigUint{4}, ContractViolation);
}

TEST(BigUint, MultiplicationMatchesU128Oracle) {
  Rng rng{0xB16B00B5};
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t a = rng.next_u64() >> rng.next_below(32);
    const std::uint64_t b = rng.next_u64() >> rng.next_below(32);
    const u128 expected = static_cast<u128>(a) * b;
    EXPECT_EQ(BigUint{a} * BigUint{b}, from_u128(expected)) << a << " * " << b;
  }
}

TEST(BigUint, MultiplicationByZeroAndOne) {
  const BigUint big = BigUint::from_decimal("987654321098765432109876543210");
  EXPECT_TRUE((big * BigUint{}).is_zero());
  EXPECT_EQ(big * BigUint{1}, big);
  EXPECT_EQ(BigUint{} * BigUint{}, BigUint{});
}

TEST(BigUint, MultiplicationLaws) {
  Rng rng{42};
  for (int iter = 0; iter < 100; ++iter) {
    const BigUint a{rng.next_u64()};
    const BigUint b{rng.next_u64()};
    const BigUint c{rng.next_u64()};
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigUint, ShiftLeftEqualsMultiplyByPow2) {
  const BigUint v = BigUint::from_decimal("123456789123456789123456789");
  for (const std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ(v << s, v * BigUint::pow2(s)) << "shift " << s;
  }
}

TEST(BigUint, ShiftRightInvertsShiftLeft) {
  const BigUint v = BigUint::from_decimal("999999999999999999999999999999999");
  for (const std::size_t s : {1u, 13u, 64u, 64u * 3 + 5u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
  EXPECT_TRUE((BigUint{1} >> 1).is_zero());
  EXPECT_TRUE((v >> 2000).is_zero());
}

TEST(BigUint, DivU64MatchesOracle) {
  Rng rng{7};
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint64_t n = rng.next_u64();
    const std::uint64_t div = rng.next_u64() | 1;  // nonzero
    std::uint64_t rem = 0;
    const BigUint q = BigUint{n}.div_u64(div, rem);
    EXPECT_EQ(q.to_u64(), n / div);
    EXPECT_EQ(rem, n % div);
  }
}

TEST(BigUint, DivModIdentityOnRandomMultiLimbValues) {
  Rng rng{0xDEC0DE};
  for (int iter = 0; iter < 200; ++iter) {
    BigUint a{rng.next_u64()};
    const std::uint64_t a_limbs = rng.next_below(4);
    for (std::uint64_t i = 0; i < a_limbs; ++i) {
      a <<= 64;
      a.add_u64(rng.next_u64());
    }
    BigUint b{rng.next_u64() | 1};
    if (rng.next_bool()) {
      b <<= 64;
      b.add_u64(rng.next_u64());
    }
    const auto [q, r] = BigUint::divmod(a, b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUint, DivModSmallCases) {
  EXPECT_EQ((BigUint{100} / BigUint{7}).to_u64(), 14u);
  EXPECT_EQ((BigUint{100} % BigUint{7}).to_u64(), 2u);
  EXPECT_TRUE((BigUint{3} / BigUint{5}).is_zero());
  EXPECT_EQ((BigUint{3} % BigUint{5}).to_u64(), 3u);
  EXPECT_THROW((void)BigUint::divmod(BigUint{1}, BigUint{}), ContractViolation);
}

TEST(BigUint, ComparisonTotalOrder) {
  const BigUint a{5};
  const BigUint b = BigUint::pow2(64);
  const BigUint c = BigUint::pow2(64) + BigUint{1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, BigUint{5});
  EXPECT_NE(a, b);
  EXPECT_GE(c, b);
}

TEST(BigUint, ToU64RangeChecks) {
  EXPECT_EQ(BigUint{~std::uint64_t{0}}.to_u64(), ~std::uint64_t{0});
  EXPECT_TRUE(BigUint{7}.fits_u64());
  EXPECT_FALSE(BigUint::pow2(64).fits_u64());
  EXPECT_THROW((void)BigUint::pow2(64).to_u64(), ContractViolation);
}

TEST(BigUint, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigUint{1000}.to_double(), 1000.0);
  EXPECT_NEAR(BigUint::pow2(100).to_double(), 0x1.0p100, 0x1.0p60);
}

TEST(BigUint, Log2ExactOnPowers) {
  for (const std::size_t e : {1u, 10u, 63u, 64u, 100u, 1000u}) {
    EXPECT_DOUBLE_EQ(BigUint::pow2(e).log2(), static_cast<double>(e)) << e;
  }
  EXPECT_THROW((void)BigUint{}.log2(), ContractViolation);
}

TEST(BigUint, Log2MatchesStdLogOnU64) {
  Rng rng{99};
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t v = rng.next_u64() | 1;
    EXPECT_NEAR(BigUint{v}.log2(), std::log2(static_cast<double>(v)), 1e-9);
  }
}

TEST(BigUint, MulAddU64InPlace) {
  BigUint v{1};
  for (int i = 0; i < 40; ++i) v.mul_u64(10);  // 10^40
  EXPECT_EQ(v.to_decimal(), "1" + std::string(40, '0'));
  v.add_u64(9);
  EXPECT_EQ(v.to_decimal(), "1" + std::string(39, '0') + "9");
  v.mul_u64(0);
  EXPECT_TRUE(v.is_zero());
}

TEST(BigUint, AdditionSubtractionRoundTripRandom) {
  Rng rng{0xFEED};
  for (int iter = 0; iter < 200; ++iter) {
    BigUint a{rng.next_u64()};
    a <<= static_cast<std::size_t>(rng.next_below(100));
    BigUint b{rng.next_u64()};
    b <<= static_cast<std::size_t>(rng.next_below(100));
    const BigUint sum = a + b;
    EXPECT_EQ(sum - b, a);
    EXPECT_EQ(sum - a, b);
    EXPECT_GE(sum, a);
    EXPECT_GE(sum, b);
  }
}

TEST(BigUint, StreamOperatorPrintsDecimal) {
  std::ostringstream os;
  os << BigUint::from_decimal("31337");
  EXPECT_EQ(os.str(), "31337");
}

}  // namespace
}  // namespace rstp::bigint
