// Tests for the common substrate: Time/Duration arithmetic and the seeded RNG.
#include <gtest/gtest.h>

#include <map>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/common/time.h"
#include "rstp/core/params.h"

#include <sstream>

namespace rstp {
namespace {

TEST(Duration, ArithmeticAndOrdering) {
  const Duration a{5};
  const Duration b{3};
  EXPECT_EQ((a + b).ticks(), 8);
  EXPECT_EQ((a - b).ticks(), 2);
  EXPECT_EQ((b - a).ticks(), -2);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 4).ticks(), 20);
  EXPECT_EQ((4 * a).ticks(), 20);
  EXPECT_LT(b, a);
  EXPECT_EQ((-a).ticks(), -5);
}

TEST(Duration, FloorAndCeilDivision) {
  EXPECT_EQ(Duration{10}.floor_div(Duration{3}), 3);
  EXPECT_EQ(Duration{10}.ceil_div(Duration{3}), 4);
  EXPECT_EQ(Duration{9}.floor_div(Duration{3}), 3);
  EXPECT_EQ(Duration{9}.ceil_div(Duration{3}), 3);
  EXPECT_EQ(Duration{0}.floor_div(Duration{5}), 0);
  EXPECT_EQ(Duration{0}.ceil_div(Duration{5}), 0);
  EXPECT_EQ(Duration{-7}.floor_div(Duration{2}), -4);
  EXPECT_EQ(Duration{-7}.ceil_div(Duration{2}), -3);
  EXPECT_THROW((void)Duration{4}.floor_div(Duration{0}), ContractViolation);
  EXPECT_THROW((void)Duration{4}.floor_div(Duration{-2}), ContractViolation);
}

TEST(Time, InstantArithmetic) {
  const Time t0 = Time::zero();
  const Time t1 = t0 + Duration{7};
  EXPECT_EQ(t1.ticks(), 7);
  EXPECT_EQ((t1 - t0).ticks(), 7);
  EXPECT_EQ((t1 - Duration{2}).ticks(), 5);
  EXPECT_LT(t0, t1);
  Time t = t0;
  t += Duration{3};
  EXPECT_EQ(t.ticks(), 3);
  EXPECT_EQ(at_tick(11).ticks(), 11);
  EXPECT_EQ(ticks(11).ticks(), 11);
}

TEST(TimingParams, ValidationAndDerivedCounts) {
  const auto p = core::TimingParams::make(3, 4, 10);
  EXPECT_EQ(p.delta1(), 3);       // ⌊10/3⌋
  EXPECT_EQ(p.delta1_wait(), 4);  // ⌈10/3⌉
  EXPECT_EQ(p.delta2(), 2);       // ⌊10/4⌋
  // Exact divisibility collapses floor and ceil (the paper's case).
  const auto q = core::TimingParams::make(2, 5, 10);
  EXPECT_EQ(q.delta1(), 5);
  EXPECT_EQ(q.delta1_wait(), 5);
  EXPECT_EQ(q.delta2(), 2);
  EXPECT_THROW((void)core::TimingParams::make(0, 1, 1), ContractViolation);
  EXPECT_THROW((void)core::TimingParams::make(2, 1, 3), ContractViolation);  // c1 > c2
  EXPECT_THROW((void)core::TimingParams::make(1, 3, 2), ContractViolation);  // c2 > d
}

TEST(TimingParams, EqualityAndPrinting) {
  const auto a = core::TimingParams::make(1, 2, 4);
  const auto b = core::TimingParams::make(1, 2, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, core::TimingParams::make(1, 2, 5));
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "{c1=1t, c2=2t, d=4t}");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DistinctSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{9};
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_THROW((void)rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{31337};
  std::map<std::uint64_t, int> histogram;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.next_below(6)];
  }
  for (std::uint64_t v = 0; v < 6; ++v) {
    // Each bucket expects 10000; 4 sigma ≈ 365.
    EXPECT_NEAR(histogram[v], kDraws / 6, 500) << "bucket " << v;
  }
}

TEST(Rng, NextInCoversClosedRange) {
  Rng rng{4242};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.next_in(5, 5), 5);
  EXPECT_THROW((void)rng.next_in(6, 5), ContractViolation);
}

TEST(Rng, NextDurationRespectsBounds) {
  Rng rng{8};
  for (int i = 0; i < 500; ++i) {
    const Duration d = rng.next_duration(Duration{2}, Duration{9});
    EXPECT_GE(d.ticks(), 2);
    EXPECT_LE(d.ticks(), 9);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{66};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsP) {
  Rng rng{17};
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(heads, 2500, 200);
  EXPECT_THROW((void)rng.next_bool(1.5), ContractViolation);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{5};
  Rng child = parent.fork();
  // The child stream differs from the continuing parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Regression pin: splitmix64 from seed 0 (reference values from the
  // published algorithm).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace rstp
