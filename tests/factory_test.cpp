// Tests for the protocol factory and the kind metadata.
#include "rstp/protocols/factory.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "rstp/common/check.h"
#include "rstp/core/effort.h"

namespace rstp::protocols {
namespace {

ProtocolConfig valid_config(ProtocolKind kind) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 8);
  cfg.k = kind == ProtocolKind::Indexed ? 64u : 8u;
  cfg.input = core::make_random_input(16, 1);
  return cfg;
}

TEST(Factory, EveryKindConstructs) {
  for (const auto kind : kAllProtocolKinds) {
    const ProtocolInstance instance = make_protocol(kind, valid_config(kind));
    ASSERT_NE(instance.transmitter, nullptr) << to_string(kind);
    ASSERT_NE(instance.receiver, nullptr) << to_string(kind);
    EXPECT_FALSE(instance.transmitter->name().empty());
    EXPECT_FALSE(instance.receiver->name().empty());
    // Fresh automata are in their start states: nothing transmitted yet.
    EXPECT_FALSE(instance.transmitter->transmission_complete()) << to_string(kind);
    EXPECT_TRUE(instance.receiver->output().empty()) << to_string(kind);
  }
}

TEST(Factory, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const auto kind : kAllProtocolKinds) {
    names.insert(std::string{to_string(kind)});
  }
  EXPECT_EQ(names.size(), std::size(kAllProtocolKinds));
  EXPECT_EQ(to_string(ProtocolKind::Alpha), "alpha");
  EXPECT_EQ(to_string(ProtocolKind::Beta), "beta");
  EXPECT_EQ(to_string(ProtocolKind::Gamma), "gamma");
  EXPECT_EQ(to_string(ProtocolKind::AltBit), "altbit");
  EXPECT_EQ(to_string(ProtocolKind::Strawman), "strawman");
  EXPECT_EQ(to_string(ProtocolKind::Indexed), "indexed");
  EXPECT_EQ(to_string(ProtocolKind::WindowedGamma), "gammaw");
}

TEST(Factory, StreamInsertionMatchesToString) {
  std::ostringstream os;
  os << ProtocolKind::Gamma;
  EXPECT_EQ(os.str(), "gamma");
}

TEST(Factory, RPassivePartitionMatchesThePaper) {
  // r-passive = the receiver sends no packets (P^rt = ∅).
  EXPECT_TRUE(is_r_passive(ProtocolKind::Alpha));
  EXPECT_TRUE(is_r_passive(ProtocolKind::Beta));
  EXPECT_TRUE(is_r_passive(ProtocolKind::Strawman));
  EXPECT_TRUE(is_r_passive(ProtocolKind::Indexed));
  EXPECT_FALSE(is_r_passive(ProtocolKind::Gamma));
  EXPECT_FALSE(is_r_passive(ProtocolKind::AltBit));
  EXPECT_FALSE(is_r_passive(ProtocolKind::WindowedGamma));
}

TEST(Factory, RPassiveMetadataMatchesBehaviour) {
  // Dynamic check: a full worst-case run of an r-passive protocol must have
  // zero receiver sends; an active one must have at least one.
  for (const auto kind : kAllProtocolKinds) {
    if (kind == ProtocolKind::Strawman) continue;  // corrupts under some envs; skip
    const core::ProtocolRun run =
        core::run_protocol(kind, valid_config(kind), core::Environment::worst_case());
    ASSERT_TRUE(run.output_correct) << to_string(kind);
    if (is_r_passive(kind)) {
      EXPECT_EQ(run.result.receiver_sends, 0u) << to_string(kind);
    } else {
      EXPECT_GT(run.result.receiver_sends, 0u) << to_string(kind);
    }
  }
}

TEST(Factory, InvalidConfigurationsRejected) {
  ProtocolConfig bad_k = valid_config(ProtocolKind::Beta);
  bad_k.k = 1;
  EXPECT_THROW((void)make_protocol(ProtocolKind::Beta, bad_k), ContractViolation);

  ProtocolConfig bad_bits = valid_config(ProtocolKind::Beta);
  bad_bits.input = {0, 1, 2};
  EXPECT_THROW((void)make_protocol(ProtocolKind::Beta, bad_bits), ContractViolation);

  ProtocolConfig bad_override = valid_config(ProtocolKind::Beta);
  bad_override.block_size_override = 0;
  EXPECT_THROW((void)make_protocol(ProtocolKind::Beta, bad_override), ContractViolation);

  ProtocolConfig small_indexed = valid_config(ProtocolKind::Indexed);
  small_indexed.k = 8;  // < 2·16
  EXPECT_THROW((void)make_protocol(ProtocolKind::Indexed, small_indexed), ContractViolation);

  ProtocolConfig odd_windowed = valid_config(ProtocolKind::WindowedGamma);
  odd_windowed.k = 7;
  EXPECT_THROW((void)make_protocol(ProtocolKind::WindowedGamma, odd_windowed),
               ContractViolation);
}

TEST(Factory, PaperKindsAreASubsetOfAllKinds) {
  for (const auto kind : kPaperProtocolKinds) {
    bool found = false;
    for (const auto all : kAllProtocolKinds) {
      found = found || all == kind;
    }
    EXPECT_TRUE(found) << to_string(kind);
  }
}

}  // namespace
}  // namespace rstp::protocols
