// Tests for the order-sensitive strawman — the executable argument for why
// the paper's encodings must be multiset-based (experiment E7).
#include "rstp/protocols/strawman.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Bit;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k = 4, std::int64_t c1 = 1,
                          std::int64_t c2 = 1, std::int64_t d = 4) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

TEST(Strawman, CarriesMoreBitsPerBlockThanBeta) {
  // Positional coding packs δ·⌊log2 k⌋ bits ≥ ⌊log2 μ_k(δ)⌋ — it is MORE
  // efficient when it works, which is exactly why it is tempting and wrong.
  StrawmanTransmitter t{config_for(core::make_random_input(16, 1))};
  EXPECT_EQ(t.block_size(), 4);
  EXPECT_EQ(t.bits_per_block(), 8u);  // 4 packets × 2 bits
}

TEST(Strawman, CorrectUnderFifoEnvironments) {
  // Under order-preserving delivery the strawman works fine.
  const auto input = core::make_random_input(64, 2);
  const auto cfg = config_for(input);
  Environment env = Environment::worst_case();  // MaxDelay is FIFO
  const core::ProtocolRun run = core::run_protocol(ProtocolKind::Strawman, cfg, env);
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
}

TEST(Strawman, CorruptedByAdversarialBatchReordering) {
  // The Lemma 5.1 adversary delivers each window in canonical payload order,
  // destroying the positional information. The output is wrong — and, worse,
  // the corruption is silent (no error is raised).
  const auto input = core::make_random_input(64, 3);
  const auto cfg = config_for(input);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Strawman, cfg, Environment::adversarial_fast());
  EXPECT_TRUE(run.result.quiescent) << "the run completes normally…";
  EXPECT_FALSE(run.output_correct) << "…but the data is corrupted";
  // The verifier flags the prefix violation even though the protocol didn't.
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
  EXPECT_FALSE(verdict.ok());
  EXPECT_FALSE(verdict.clean_of(core::ViolationKind::OutputNotPrefix));
}

TEST(Strawman, BetaSurvivesTheExactSameAdversary) {
  // Control experiment: identical input, identical environment, only the
  // encoding differs.
  const auto input = core::make_random_input(64, 3);
  const auto cfg = config_for(input);
  const core::ProtocolRun beta =
      core::run_protocol(ProtocolKind::Beta, cfg, Environment::adversarial_fast());
  EXPECT_TRUE(beta.output_correct);
}

TEST(Strawman, SortedBlocksSurviveByAccident) {
  // An input whose every block happens to encode to an already-sorted symbol
  // sequence is unaffected by canonical-order delivery — corruption is
  // input-dependent, which is what makes such bugs nasty.
  const auto cfg = config_for(core::make_constant_input(32, 0));
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Strawman, cfg, Environment::adversarial_fast());
  EXPECT_TRUE(run.output_correct) << "all-zero blocks are sort-invariant";
}

}  // namespace
}  // namespace rstp::protocols
