// Tests for A^γ(k) (paper §6.2, Figure 4): the active solution.
#include "rstp/protocols/gamma.h"

#include <gtest/gtest.h>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/sim/simulator.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k = 4, std::int64_t c1 = 1,
                          std::int64_t c2 = 2, std::int64_t d = 8) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

TEST(GammaTransmitter, BlockSizeIsDelta2) {
  // δ2 = ⌊8/2⌋ = 4.
  GammaTransmitter t{config_for(core::make_random_input(10, 1))};
  EXPECT_EQ(t.block_size(), 4);
  // k=4, δ2=4 → B = ⌊log2 μ_4(4)⌋ = ⌊log2 35⌋ = 5.
  EXPECT_EQ(t.bits_per_block(), 5u);
}

TEST(GammaTransmitter, SendsBlockThenAwaitsAcks) {
  GammaTransmitter t{config_for(core::make_random_input(5, 2))};  // one block
  for (int i = 0; i < 4; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Send) << "packet " << i;
    t.apply(*a);
  }
  // Now idling for acks.
  auto a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, ActionKind::Internal);
  t.apply(*a);
  // Three acks: still waiting.
  for (int i = 0; i < 3; ++i) {
    t.apply(Action::recv(Packet::to_transmitter(kAckPayload)));
    EXPECT_EQ(t.enabled_local()->kind, ActionKind::Internal);
  }
  // Fourth ack releases the transmitter; with no data left it stops.
  t.apply(Action::recv(Packet::to_transmitter(kAckPayload)));
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.transmission_complete());
  EXPECT_TRUE(t.quiescent());
}

TEST(GammaTransmitter, ExcessAcksAreContractViolations) {
  GammaTransmitter t{config_for({})};
  EXPECT_THROW(t.apply(Action::recv(Packet::to_transmitter(kAckPayload))), ContractViolation);
}

TEST(GammaReceiver, AcksTakePriorityOverWrites) {
  const auto input = core::make_random_input(5, 3);
  const ProtocolConfig cfg = config_for(input);
  GammaTransmitter t{cfg};
  GammaReceiver r{cfg};
  // Deliver the whole block; the receiver owes 4 acks and 5 writes.
  for (const auto s : t.symbol_stream()) {
    r.apply(Action::recv(Packet::to_receiver(s)));
  }
  EXPECT_EQ(r.decoded_bits(), 5u);
  for (int i = 0; i < 4; ++i) {
    const auto a = r.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Send) << "ack " << i << " before any write";
    EXPECT_EQ(a->packet.payload, kAckPayload);
    r.apply(*a);
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    const auto a = r.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Write);
    r.apply(*a);
  }
  EXPECT_EQ(r.output(), input);
  EXPECT_TRUE(r.quiescent());
}

TEST(GammaEndToEnd, CorrectUnderWorstCase) {
  const auto input = core::make_random_input(100, 11);
  const auto cfg = config_for(input, 8);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(GammaEndToEnd, CorrectUnderRandomDelaysThatReorder) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto input = core::make_random_input(60, seed + 31);
    const auto cfg = config_for(input, 4, 1, 3, 9);
    const core::ProtocolRun run =
        core::run_protocol(ProtocolKind::Gamma, cfg, Environment::randomized(seed));
    EXPECT_TRUE(run.output_correct) << "seed " << seed;
    const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << '\n' << verdict;
  }
}

TEST(GammaEndToEnd, EffortIsWithinSection62Bound) {
  const auto params = core::TimingParams::make(1, 2, 8);
  const core::BoundsReport bounds = core::compute_bounds(params, 8);
  const auto m =
      core::measure_effort(ProtocolKind::Gamma, params, 8, 512, Environment::worst_case());
  EXPECT_TRUE(m.output_correct);
  EXPECT_LE(m.effort, bounds.gamma_upper * (1.0 + 1e-9));
  EXPECT_GE(m.effort, bounds.active_lower * 0.8);
}

TEST(GammaEndToEnd, AckCountMatchesDataCount) {
  const auto input = core::make_random_input(40, 17);
  const auto cfg = config_for(input, 4);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_EQ(run.result.receiver_sends, run.result.transmitter_sends)
      << "γ acknowledges every data packet exactly once";
}

TEST(GammaEndToEnd, BlocksNeverOverlapInFlight) {
  // The transmitter never has more than δ2 unacked packets, so the channel
  // never holds more than δ2 data packets.
  const auto input = core::make_random_input(50, 23);
  const auto cfg = config_for(input, 4);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  std::int64_t in_flight = 0;
  std::int64_t max_in_flight = 0;
  for (const auto& e : run.result.trace.events()) {
    if (e.action.kind == ActionKind::Send &&
        e.action.packet.direction == Packet::Direction::TransmitterToReceiver) {
      ++in_flight;
    }
    if (e.action.kind == ActionKind::Recv &&
        e.action.packet.direction == Packet::Direction::TransmitterToReceiver) {
      --in_flight;
    }
    max_in_flight = std::max(max_in_flight, in_flight);
  }
  const auto delta2 = cfg.params.delta2();
  EXPECT_LE(max_in_flight, delta2);
}

TEST(GammaEndToEnd, AckLossDeadlocksInsteadOfCorrupting) {
  // Outside the model: drop packets. γ stalls awaiting acks; output stays a
  // prefix of X.
  const auto input = core::make_random_input(20, 5);
  const auto cfg = config_for(input, 4);
  protocols::ProtocolInstance inst = make_protocol(ProtocolKind::Gamma, cfg);
  auto ts = sim::make_fixed_rate(cfg.params.c2);
  auto rs = sim::make_fixed_rate(cfg.params.c2);
  channel::Channel chan{cfg.params.d, channel::make_max_delay()};
  sim::SimConfig sc;
  sc.params = cfg.params;
  sc.max_events = 5000;
  sc.drop_every_nth = 5;
  sim::Simulator sim{*inst.transmitter, *inst.receiver, chan, *ts, *rs, sc};
  const auto result = sim.run();
  EXPECT_FALSE(result.quiescent);
  ASSERT_LE(result.output.size(), input.size());
  EXPECT_TRUE(std::equal(result.output.begin(), result.output.end(), input.begin()));
}

TEST(GammaEndToEnd, TightTimingDelta2EqualsOne) {
  // c2 = d → δ2 = 1: one packet per block, one ack per packet. Still correct
  // (and equivalent in rhythm to stop-and-wait).
  const auto input = core::make_random_input(12, 8);
  const auto cfg = config_for(input, 4, 1, 8, 8);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
}

TEST(GammaEndToEnd, EmptyInput) {
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, config_for({}), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_EQ(run.result.transmitter_sends, 0u);
}

}  // namespace
}  // namespace rstp::protocols
