// Tests for the §7 generalized model: per-process step laws and a delivery
// window [d1, d2].
#include "rstp/general/run.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/core/bounds.h"

namespace rstp::general {
namespace {

using core::Environment;
using ioa::Bit;
using protocols::ProtocolKind;

GeneralTimingParams make(std::int64_t t_c1, std::int64_t t_c2, std::int64_t r_c1,
                         std::int64_t r_c2, std::int64_t d_lo, std::int64_t d_hi) {
  GeneralTimingParams p{Duration{t_c1}, Duration{t_c2}, Duration{r_c1},
                        Duration{r_c2}, Duration{d_lo}, Duration{d_hi}};
  p.validate();
  return p;
}

TEST(GeneralParams, ValidationRejectsBadShapes) {
  EXPECT_THROW(make(0, 1, 1, 1, 0, 4), ContractViolation);
  EXPECT_THROW(make(2, 1, 1, 1, 0, 4), ContractViolation);
  EXPECT_THROW(make(1, 1, 1, 1, 5, 4), ContractViolation);   // d1 > d2
  EXPECT_THROW(make(1, 8, 1, 1, 0, 4), ContractViolation);   // t_c2 > d2
  EXPECT_THROW(make(1, 1, 1, 8, 0, 4), ContractViolation);   // r_c2 > d2
  EXPECT_NO_THROW(make(1, 2, 2, 3, 1, 6));
}

TEST(GeneralParams, BaseEmbeddingRoundTrips) {
  const auto base = core::TimingParams::make(2, 3, 7);
  const GeneralTimingParams g = GeneralTimingParams::from_base(base);
  EXPECT_TRUE(g.is_base());
  EXPECT_EQ(g.envelope(), base);
  EXPECT_EQ(g.transmitter_params(), base);
  EXPECT_EQ(g.receiver_params(), base);
  // Derived counts reduce to the base δs.
  EXPECT_EQ(g.delta1(), base.delta1());
  EXPECT_EQ(g.beta_block(), base.delta1_wait());
  EXPECT_EQ(g.beta_wait(), base.delta1_wait());
  EXPECT_EQ(g.delta2(), base.delta2());
}

TEST(GeneralParams, MinimumDelayShrinksTheWait) {
  // d ∈ [6, 8], t_c1 = 1: separation only needs ⌈2/1⌉ = 2 idle steps,
  // versus 8 in the base model.
  const auto g = make(1, 2, 1, 2, 6, 8);
  EXPECT_EQ(g.beta_block(), 8);
  EXPECT_EQ(g.beta_wait(), 2);
  EXPECT_EQ(g.adversary_delta(), 2);
  // Deterministic latency: wait collapses to the structural minimum of 1.
  const auto det = make(1, 2, 1, 2, 8, 8);
  EXPECT_EQ(det.beta_wait(), 1);
  EXPECT_EQ(det.adversary_delta(), 0);
}

TEST(GeneralParams, AsymmetricRatesProject) {
  const auto g = make(1, 2, 3, 4, 0, 12);
  EXPECT_EQ(g.transmitter_params(), core::TimingParams::make(1, 2, 12));
  EXPECT_EQ(g.receiver_params(), core::TimingParams::make(3, 4, 12));
  EXPECT_EQ(g.envelope(), core::TimingParams::make(1, 4, 12));
  EXPECT_FALSE(g.is_base());
}

TEST(GeneralBounds, ReduceToBaseModelBounds) {
  const auto base = core::TimingParams::make(1, 2, 8);
  const core::BoundsReport base_bounds = core::compute_bounds(base, 8);
  const GeneralBoundsReport g = compute_general_bounds(GeneralTimingParams::from_base(base), 8);
  EXPECT_DOUBLE_EQ(g.passive_lower, base_bounds.passive_lower);
  EXPECT_DOUBLE_EQ(g.active_lower, base_bounds.active_lower);
  EXPECT_DOUBLE_EQ(g.beta_upper, base_bounds.beta_upper);
  // The general γ bound is queueing-aware and slightly *tighter* than the
  // paper's 3d + c2 in the base model (δ2·c2 ≤ d): ≤, not ==.
  EXPECT_LE(g.gamma_upper, base_bounds.gamma_upper + 1e-12);
  EXPECT_GE(g.gamma_upper, base_bounds.active_lower);
  EXPECT_DOUBLE_EQ(g.alpha_effort, base_bounds.alpha_effort);
}

TEST(GeneralBounds, KnownMinimumDelayLowersBetaEffort) {
  const auto open = compute_general_bounds(make(1, 2, 1, 2, 0, 8), 8);
  const auto tight = compute_general_bounds(make(1, 2, 1, 2, 6, 8), 8);
  EXPECT_LT(tight.beta_upper, open.beta_upper)
      << "separation wait shrinks with the window, so effort improves";
  EXPECT_LT(tight.passive_lower, open.passive_lower)
      << "…and the batching adversary weakens in step";
}

TEST(GeneralBounds, ZeroWidthWindowYieldsNoPassiveBoundFromBatching) {
  const auto det = compute_general_bounds(make(1, 2, 1, 2, 8, 8), 8);
  EXPECT_DOUBLE_EQ(det.passive_lower, 0.0);
  EXPECT_GT(det.active_lower, 0.0);  // Thm 5.6's argument is unaffected
}

TEST(GeneralRun, AllProtocolsCorrectUnderAsymmetricRates) {
  const auto g = make(1, 2, 3, 5, 0, 10);
  const auto input = core::make_random_input(40, 7);
  for (const auto kind : protocols::kPaperProtocolKinds) {
    const core::ProtocolRun run =
        run_general_protocol(kind, g, 4, input, GeneralEnvironment::worst_case());
    EXPECT_TRUE(run.result.quiescent) << protocols::to_string(kind);
    EXPECT_TRUE(run.output_correct) << protocols::to_string(kind);
    const auto verdict = verify_general_trace(run.result.trace, g, input);
    EXPECT_TRUE(verdict.ok()) << protocols::to_string(kind) << '\n' << verdict;
  }
}

TEST(GeneralRun, AllProtocolsCorrectWithDeliveryWindow) {
  const auto g = make(1, 2, 1, 2, 5, 9);
  const auto input = core::make_random_input(48, 8);
  for (const auto kind : protocols::kPaperProtocolKinds) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const core::ProtocolRun run =
          run_general_protocol(kind, g, 4, input, GeneralEnvironment::randomized(seed));
      EXPECT_TRUE(run.output_correct)
          << protocols::to_string(kind) << " seed " << seed;
      const auto verdict = verify_general_trace(run.result.trace, g, input);
      EXPECT_TRUE(verdict.ok()) << protocols::to_string(kind) << '\n' << verdict;
    }
  }
}

TEST(GeneralRun, DeterministicLatencyChannel) {
  // d1 = d2: every delivery takes exactly d; β runs almost back-to-back.
  const auto g = make(1, 2, 1, 2, 8, 8);
  const auto input = core::make_random_input(60, 9);
  const core::ProtocolRun run =
      run_general_protocol(ProtocolKind::Beta, g, 8, input, GeneralEnvironment::worst_case());
  EXPECT_TRUE(run.output_correct);
  const auto verdict = verify_general_trace(run.result.trace, g, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(GeneralRun, EffortRespectsGeneralizedBounds) {
  const auto g = make(1, 2, 1, 3, 4, 12);
  const GeneralBoundsReport bounds = compute_general_bounds(g, 8);
  const auto beta = measure_general_effort(ProtocolKind::Beta, g, 8,
                                           bounds.beta_bits_per_block * 40,
                                           GeneralEnvironment::worst_case());
  ASSERT_TRUE(beta.output_correct);
  EXPECT_LE(beta.effort, bounds.beta_upper * (1 + 1e-9));
  const auto gamma = measure_general_effort(ProtocolKind::Gamma, g, 8,
                                            bounds.gamma_bits_per_block * 40,
                                            GeneralEnvironment::worst_case());
  ASSERT_TRUE(gamma.output_correct);
  EXPECT_LE(gamma.effort, bounds.gamma_upper * (1 + 1e-9));
}

TEST(GeneralRun, MinimumDelayActuallySpeedsUpBeta) {
  // The headline §7 result, measured: same d2, growing d1 → lower effort.
  const auto input_bits = 240u;
  double prev = 0.0;
  for (const std::int64_t d_lo : {0, 4, 7}) {
    const auto g = make(1, 2, 1, 2, d_lo, 8);
    const auto m = measure_general_effort(ProtocolKind::Beta, g, 8, input_bits,
                                          GeneralEnvironment::worst_case());
    ASSERT_TRUE(m.output_correct) << "d_lo=" << d_lo;
    if (d_lo != 0) {
      EXPECT_LT(m.effort, prev) << "d_lo=" << d_lo;
    }
    prev = m.effort;
  }
}

TEST(GeneralRun, VerifierEnforcesTheWindowLowerEdge) {
  // A run on a channel faster than d1 must be rejected by the general
  // verifier: build it by running with a base-model (d1 = 0) channel but
  // verifying against d1 > 0.
  const auto base = core::TimingParams::make(1, 2, 8);
  protocols::ProtocolConfig cfg;
  cfg.params = base;
  cfg.k = 4;
  cfg.input = core::make_random_input(24, 3);
  core::Environment env = core::Environment::worst_case();
  env.delay = core::Environment::Delay::Zero;  // deliveries at +0 < d1
  const core::ProtocolRun run = core::run_protocol(protocols::ProtocolKind::Beta, cfg, env);
  ASSERT_TRUE(run.output_correct);
  const auto g = make(1, 2, 1, 2, 3, 8);
  const auto verdict = verify_general_trace(run.result.trace, g, cfg.input,
                                            /*require_complete=*/false);
  EXPECT_FALSE(verdict.clean_of(core::ViolationKind::DeliveryTooEarly));
}

TEST(GeneralRun, WindowedGammaUnderTheGeneralModel) {
  // The pipelined extension also runs under per-process laws and a delivery
  // window; the runner wires its block size from δ2 like plain γ.
  const auto g = make(1, 2, 2, 3, 3, 9);
  const auto input = core::make_random_input(36, 21);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const core::ProtocolRun run = run_general_protocol(ProtocolKind::WindowedGamma, g, 8, input,
                                                       GeneralEnvironment::randomized(seed));
    EXPECT_TRUE(run.output_correct) << "seed " << seed;
    const auto verdict = verify_general_trace(run.result.trace, g, input);
    EXPECT_TRUE(verdict.ok()) << verdict;
  }
}

TEST(GeneralRun, AdversarialFallsBackWhenWindowIsZero) {
  const auto g = make(1, 2, 1, 2, 8, 8);
  GeneralEnvironment env;
  env.delay = core::Environment::Delay::Adversarial;
  const auto input = core::make_random_input(30, 4);
  const core::ProtocolRun run = run_general_protocol(ProtocolKind::Beta, g, 4, input, env);
  EXPECT_TRUE(run.output_correct);
}

TEST(GeneralRun, AdversarialBatchingStillBeatenByBetaWithWindow) {
  const auto g = make(1, 1, 1, 1, 2, 8);
  GeneralEnvironment env;
  env.transmitter_sched = core::Environment::Sched::FastFixed;
  env.receiver_sched = core::Environment::Sched::FastFixed;
  env.delay = core::Environment::Delay::Adversarial;
  const auto input = core::make_random_input(60, 5);
  const core::ProtocolRun run = run_general_protocol(ProtocolKind::Beta, g, 4, input, env);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = verify_general_trace(run.result.trace, g, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

}  // namespace
}  // namespace rstp::general
