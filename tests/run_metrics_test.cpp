// Tests for the always-on RunMetrics snapshot: populated without a trace,
// differentially consistent with trace-derived statistics, identical with
// tracing on or off, and exactly round-tripped through the JSONL sink.
#include <gtest/gtest.h>

#include <sstream>

#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/obs/json.h"
#include "rstp/obs/sinks.h"
#include "rstp/protocols/factory.h"

namespace rstp {
namespace {

using core::Environment;
using protocols::ProtocolKind;

protocols::ProtocolConfig sample_config(ProtocolKind kind, std::size_t n = 32) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(n, 7);
  if (kind == ProtocolKind::Indexed) {
    cfg.k = static_cast<std::uint32_t>(2 * n);
  }
  return cfg;
}

TEST(RunMetrics, PopulatedForEveryProtocolWithoutATrace) {
  for (const ProtocolKind kind : protocols::kAllProtocolKinds) {
    SCOPED_TRACE(std::string(protocols::to_string(kind)));
    const protocols::ProtocolConfig cfg = sample_config(kind);
    const core::ProtocolRun run =
        core::run_protocol(kind, cfg, Environment::worst_case(), /*record_trace=*/false);
    ASSERT_TRUE(run.output_correct);
    EXPECT_EQ(run.result.trace.size(), 0u);  // genuinely headless

    const obs::RunCounters& c = run.result.metrics.counters;
    EXPECT_GT(c.events, 0u);
    EXPECT_GT(c.data_sends, 0u);
    EXPECT_GT(c.data_recvs, 0u);
    EXPECT_EQ(c.writes, cfg.input.size());
    EXPECT_GT(c.transmitter_steps, 0u);
    EXPECT_GT(c.receiver_steps, 0u);
    EXPECT_EQ(c.dropped, 0u);

    // Histogram totals must agree with the counters they shadow.
    EXPECT_EQ(run.result.metrics.data_delay.count(), c.data_recvs);
    EXPECT_EQ(run.result.metrics.ack_delay.count(), c.ack_recvs);
    EXPECT_EQ(run.result.metrics.transmitter_gap.count(), c.transmitter_steps - 1);
    EXPECT_EQ(run.result.metrics.receiver_gap.count(), c.receiver_steps - 1);
    // Worst case: every delay is exactly d; realized gaps are never under c1
    // (a stop/resume gap can exceed c2, so no upper-bound assertion here).
    EXPECT_EQ(run.result.metrics.data_delay.min(), cfg.params.d.ticks());
    EXPECT_EQ(run.result.metrics.data_delay.max(), cfg.params.d.ticks());
    EXPECT_GE(run.result.metrics.transmitter_gap.min(), cfg.params.c1.ticks());
  }
}

TEST(RunMetrics, ProtocolCountersReportedThroughTheStatHook) {
  // γ acknowledges every packet: acks flow and block boundaries are counted.
  const protocols::ProtocolConfig cfg = sample_config(ProtocolKind::Gamma);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case(),
                         /*record_trace=*/false);
  const obs::ProtocolCounters& p = run.result.metrics.counters.protocol;
  EXPECT_GT(p.blocks_encoded, 0u);
  EXPECT_EQ(p.blocks_encoded, p.blocks_decoded);
  EXPECT_GT(p.acks_sent, 0u);
  EXPECT_EQ(p.acks_sent, p.acks_observed);
  EXPECT_EQ(p.retransmissions, 0u);

  // β is r-passive: block counters flow, no acks at all.
  const protocols::ProtocolConfig beta_cfg = sample_config(ProtocolKind::Beta);
  const core::ProtocolRun beta = core::run_protocol(ProtocolKind::Beta, beta_cfg,
                                                    Environment::worst_case(),
                                                    /*record_trace=*/false);
  EXPECT_GT(beta.result.metrics.counters.protocol.blocks_encoded, 0u);
  EXPECT_EQ(beta.result.metrics.counters.protocol.acks_sent, 0u);
}

TEST(RunMetrics, CountersMatchTraceDerivedStatistics) {
  for (const ProtocolKind kind : {ProtocolKind::Gamma, ProtocolKind::Beta, ProtocolKind::AltBit}) {
    SCOPED_TRACE(std::string(protocols::to_string(kind)));
    const protocols::ProtocolConfig cfg = sample_config(kind, 48);
    const core::ProtocolRun run =
        core::run_protocol(kind, cfg, Environment::randomized(11));
    ASSERT_TRUE(run.output_correct);
    const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
    const obs::RunMetrics& m = run.result.metrics;

    EXPECT_EQ(stats.writes, m.counters.writes);
    EXPECT_EQ(stats.transmitter.steps, m.counters.transmitter_steps);
    EXPECT_EQ(stats.receiver.steps, m.counters.receiver_steps);
    EXPECT_EQ(stats.data.delivered, m.counters.data_recvs);
    EXPECT_EQ(stats.acks.delivered, m.counters.ack_recvs);
    EXPECT_EQ(stats.data.delivered + stats.data.unmatched_sends, m.counters.data_sends);
    EXPECT_EQ(stats.acks.delivered + stats.acks.unmatched_sends, m.counters.ack_sends);
    if (stats.data.delivered > 0) {
      EXPECT_EQ(stats.data.min_delay->ticks(), m.data_delay.min());
      EXPECT_EQ(stats.data.max_delay->ticks(), m.data_delay.max());
      EXPECT_DOUBLE_EQ(stats.data.mean_delay, m.data_delay.mean());
      // Both percentile paths run the same nearest-rank rule over the same
      // samples (width 1 in both, since delays span ≤ d = 6 ticks).
      EXPECT_EQ(stats.data.p95_delay->ticks(), m.data_delay.percentile(95));
    }
    if (stats.transmitter.steps > 1) {
      EXPECT_EQ(stats.transmitter.min_gap->ticks(), m.transmitter_gap.min());
      EXPECT_EQ(stats.transmitter.max_gap->ticks(), m.transmitter_gap.max());
    }
  }
}

TEST(RunMetrics, IdenticalWithTracingOnOrOff) {
  const protocols::ProtocolConfig cfg = sample_config(ProtocolKind::Gamma);
  const core::ProtocolRun traced =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::randomized(3));
  const core::ProtocolRun headless = core::run_protocol(
      ProtocolKind::Gamma, cfg, Environment::randomized(3), /*record_trace=*/false);
  EXPECT_EQ(traced.result.metrics, headless.result.metrics);
}

obs::RunMetricsRecord sample_record(ProtocolKind kind, std::uint64_t seed) {
  const protocols::ProtocolConfig cfg = sample_config(kind);
  core::Environment env = core::Environment::randomized(seed);
  const core::ProtocolRun run = core::run_protocol(kind, cfg, env, /*record_trace=*/false);
  obs::RunMetricsRecord record;
  record.protocol = protocols::to_string(kind);
  record.c1 = cfg.params.c1.ticks();
  record.c2 = cfg.params.c2.ticks();
  record.d = cfg.params.d.ticks();
  record.k = cfg.k;
  record.input_bits = cfg.input.size();
  record.seed = seed;
  record.effort = 3.1415926;
  record.end_time = (run.result.end_time - Time::zero()).ticks();
  record.correct = run.output_correct;
  record.quiescent = run.result.quiescent;
  record.metrics = run.result.metrics;
  return record;
}

TEST(MetricsSinks, JsonlRoundTripIsExact) {
  std::vector<obs::RunMetricsRecord> records;
  records.push_back(sample_record(ProtocolKind::Gamma, 0xFFFF'FFFF'FFFF'FFFFull));
  records.push_back(sample_record(ProtocolKind::Beta, 2));
  std::ostringstream out;
  for (const obs::RunMetricsRecord& r : records) obs::write_run_metrics_jsonl(out, r);

  std::istringstream in{out.str()};
  const std::vector<obs::RunMetricsRecord> parsed = obs::read_run_metrics_jsonl(in);
  ASSERT_EQ(parsed.size(), records.size());
  EXPECT_EQ(parsed[0], records[0]);  // u64 seed and doubles survive exactly
  EXPECT_EQ(parsed[1], records[1]);
}

TEST(MetricsSinks, MalformedLinesAreRejectedWithTheLineNumber) {
  std::istringstream bad{"\nnot json\n"};  // blank line 1 is skipped
  try {
    (void)obs::read_run_metrics_jsonl(bad);
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }

  std::istringstream wrong_schema{"{\"schema\": \"something-else\"}\n"};
  EXPECT_THROW((void)obs::read_run_metrics_jsonl(wrong_schema), obs::JsonParseError);
}

TEST(MetricsSinks, MegasessionFieldsRoundTripExactly) {
  obs::RunMetricsRecord record = sample_record(ProtocolKind::Gamma, 9);
  record.sessions = 12345;
  record.events_per_sec = 2.5e6;
  std::ostringstream out;
  obs::write_run_metrics_jsonl(out, record);
  EXPECT_NE(out.str().find("\"sessions\":12345"), std::string::npos) << out.str();

  std::istringstream in{out.str()};
  const std::vector<obs::RunMetricsRecord> parsed = obs::read_run_metrics_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], record);  // operator== covers sessions/events_per_sec
}

TEST(MetricsSinks, LegacyLinesWithoutSessionFieldsParseAsZero) {
  // Pre-megasession baselines lack the sessions/events_per_sec keys; they
  // must read back as 0 (single-session convention), not fail to parse.
  std::istringstream legacy{
      "{\"schema\":\"rstp-run-metrics-v1\",\"protocol\":\"alpha\",\"c1\":1,\"c2\":2,"
      "\"d\":4,\"k\":2,\"input_bits\":8,\"seed\":7,\"effort\":1.5,\"end_time\":10,"
      "\"correct\":true,\"quiescent\":true,\"counters\":{\"events\":3},\"hist\":{}}\n"};
  const std::vector<obs::RunMetricsRecord> parsed = obs::read_run_metrics_jsonl(legacy);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].sessions, 0u);
  EXPECT_DOUBLE_EQ(parsed[0].events_per_sec, 0.0);
  EXPECT_EQ(parsed[0].seed, 7u);
}

TEST(MetricsSinks, TableRendersOneRowPerRunAndATotalsLine) {
  std::vector<obs::RunMetricsRecord> records;
  records.push_back(sample_record(ProtocolKind::Gamma, 5));
  std::ostringstream os;
  obs::print_metrics_table(os, records);
  const std::string text = os.str();
  EXPECT_NE(text.find("protocol"), std::string::npos) << text;
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_NE(text.find("runs: 1"), std::string::npos);
}

}  // namespace
}  // namespace rstp
