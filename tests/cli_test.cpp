// Integration tests for the rstp CLI binary (tools/rstp_cli.cpp), exercised
// through the shell exactly as a user would. The binary path is injected by
// CMake as RSTP_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string cli() { return RSTP_CLI_PATH; }

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::string content;
  std::string line;
  while (std::getline(in, line)) {
    content += line;
    content += '\n';
  }
  return content;
}

int run_command(const std::string& args, std::string* output = nullptr) {
  const std::string tmp = ::testing::TempDir() + "/cli_out.txt";
  const std::string command = cli() + " " + args + " > " + tmp + " 2>&1";
  const int status = std::system(command.c_str());
  if (output != nullptr) {
    output->clear();
    std::ifstream in{tmp};
    std::string line;
    while (std::getline(in, line)) {
      *output += line;
      *output += '\n';
    }
  }
  return WEXITSTATUS(status);
}

TEST(Cli, BoundsPrintsTheClosedForms) {
  std::string out;
  EXPECT_EQ(run_command("bounds 1 2 16 8", &out), 0);
  EXPECT_NE(out.find("delta1=16"), std::string::npos) << out;
  EXPECT_NE(out.find("passive_lower"), std::string::npos);
  EXPECT_NE(out.find("gamma_upper"), std::string::npos);
}

TEST(Cli, RunReportsCorrectVerifiedTransfer) {
  std::string out;
  EXPECT_EQ(run_command("run beta 1 2 8 8 64 --stats", &out), 0);
  EXPECT_NE(out.find("correct:    yes"), std::string::npos) << out;
  EXPECT_NE(out.find("accepts (in good(A))"), std::string::npos);
  EXPECT_NE(out.find("peak in-flight"), std::string::npos);
}

TEST(Cli, RunAcceptsLiteralBitString) {
  std::string out;
  EXPECT_EQ(run_command("run gamma 1 2 8 4 01101001", &out), 0);
  EXPECT_NE(out.find("input bits: 8"), std::string::npos) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos);
}

TEST(Cli, RunThenVerifyRoundTrip) {
  const std::string trace_file = ::testing::TempDir() + "/cli_trace.txt";
  std::string out;
  ASSERT_EQ(run_command("run alpha 1 2 4 2 10101010 --trace " + trace_file, &out), 0) << out;
  // The saved trace verifies against the same model and output.
  EXPECT_EQ(run_command("verify 1 2 4 " + trace_file + " 10101010", &out), 0) << out;
  EXPECT_NE(out.find("trace OK"), std::string::npos);
  // …and fails against the wrong expected output.
  EXPECT_EQ(run_command("verify 1 2 4 " + trace_file + " 01010101", &out), 1);
  EXPECT_NE(out.find("OutputNotPrefix"), std::string::npos) << out;
  // …and against a tighter model (smaller d than the delays in the trace).
  EXPECT_EQ(run_command("verify 1 2 3 " + trace_file + " 10101010", &out), 1);
  EXPECT_NE(out.find("DeliveryTooLate"), std::string::npos) << out;
  std::remove(trace_file.c_str());
}

TEST(Cli, ExploreVerifiesBetaAndRefutesStrawman) {
  std::string out;
  EXPECT_EQ(run_command("explore beta 2 3 0100", &out), 0);
  EXPECT_NE(out.find("VERIFIED over all schedules"), std::string::npos) << out;
  EXPECT_EQ(run_command("explore strawman 2 2 01000000", &out), 1);
  EXPECT_NE(out.find("VIOLATION FOUND"), std::string::npos) << out;
  EXPECT_NE(out.find("counterexample:"), std::string::npos);
}

TEST(Cli, AdversarialEnvironmentFlagWorks) {
  std::string out;
  EXPECT_EQ(run_command("run beta 1 1 8 4 64 --env adversarial", &out), 0) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos);
  EXPECT_EQ(run_command("run strawman 1 1 8 4 64 --env adversarial", &out), 1);
  EXPECT_NE(out.find("correct:    NO"), std::string::npos) << out;
}

TEST(Cli, FastAndRandomEnvironmentsRun) {
  std::string out;
  EXPECT_EQ(run_command("run gamma 1 2 8 8 32 --env fast", &out), 0) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos);
  EXPECT_EQ(run_command("run gammaw 1 2 8 8 32 --env random --seed 9", &out), 0) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos);
  EXPECT_EQ(run_command("run indexed 1 2 8 4 32", &out), 0) << out;  // k auto-raised
  EXPECT_NE(out.find("correct:    yes"), std::string::npos);
}

TEST(Cli, BenchWritesTheCampaignBaselineJson) {
  const std::string json_file = ::testing::TempDir() + "/cli_bench.json";
  std::string out;
  // One serial stage keeps the CLI smoke test quick; the full 1/2/4/N ladder
  // lives in the bench_campaign harness (ctest -L bench).
  EXPECT_EQ(run_command("bench --json " + json_file + " --threads 1 --threads 2", &out), 0)
      << out;
  EXPECT_NE(out.find("deterministic: yes"), std::string::npos) << out;
  EXPECT_NE(out.find("baseline:   written to"), std::string::npos) << out;
  // The warmup campaign reports progress (stderr, folded in by run_command);
  // the final 100% line is guaranteed even for short grids.
  EXPECT_NE(out.find("campaign: 64/64 jobs (100.0%)"), std::string::npos) << out;
  std::ifstream in{json_file};
  ASSERT_TRUE(in.good());
  std::string json;
  std::string line;
  while (std::getline(in, line)) {
    json += line;
    json += '\n';
  }
  EXPECT_NE(json.find("\"schema\": \"rstp-bench-campaign-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"identical_to_serial\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Cli, UsageErrorsExitWithTwo) {
  std::string out;
  EXPECT_EQ(run_command("", &out), 2);
  EXPECT_EQ(run_command("frobnicate", &out), 2);
  EXPECT_EQ(run_command("run nosuchprotocol 1 2 4 2 8", &out), 2);
  EXPECT_EQ(run_command("bounds 1 2", &out), 2);
}

TEST(Cli, BadNumericArgumentsExitWithTwoAndNameTheToken) {
  std::string out;
  EXPECT_EQ(run_command("bounds 1x 2 16 8", &out), 2);
  EXPECT_NE(out.find("invalid c1 '1x'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run beta 1 2 8 8 64 --seed nope", &out), 2);
  EXPECT_NE(out.find("invalid --seed 'nope'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run beta 1 2 8 8 12abc", &out), 2);
  EXPECT_NE(out.find("invalid input length '12abc'"), std::string::npos) << out;
  // Out-of-range is a parse failure too (std::stoll would have thrown here).
  EXPECT_EQ(run_command("bounds 99999999999999999999 2 16 8", &out), 2);
  EXPECT_NE(out.find("invalid c1"), std::string::npos) << out;
  EXPECT_EQ(run_command("bench --threads -3", &out), 2);
  EXPECT_NE(out.find("invalid --threads '-3'"), std::string::npos) << out;
}

TEST(Cli, MetricsOutThenReportRoundTrip) {
  const std::string jsonl = ::testing::TempDir() + "/cli_metrics.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  ASSERT_EQ(run_command("run gamma 1 2 6 4 32 --metrics-out " + jsonl, &out), 0) << out;
  EXPECT_NE(out.find("metrics:    appended to"), std::string::npos) << out;
  // A second run appends, so one file accumulates a comparable series.
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --metrics-out " + jsonl, &out), 0) << out;
  EXPECT_EQ(run_command("report " + jsonl, &out), 0);
  EXPECT_NE(out.find("gamma"), std::string::npos) << out;
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("runs: 2"), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, RunTimingPrintsThePhaseTable) {
  std::string out;
  EXPECT_EQ(run_command("run gamma 1 2 6 4 32 --timing", &out), 0);
  EXPECT_NE(out.find("phase timing (timer-pair overhead "), std::string::npos) << out;
  EXPECT_NE(out.find("sim_step"), std::string::npos) << out;
  // The nested breakdown rides along: sim-step time is attributed to named
  // children, with the unattributed remainder on a (self) line.
  EXPECT_NE(out.find("phase tree"), std::string::npos) << out;
  EXPECT_NE(out.find("proto_apply"), std::string::npos) << out;
  EXPECT_NE(out.find("(self)"), std::string::npos) << out;
}

TEST(Cli, ReportDiffOfIdenticalSeriesHoldsTheGate) {
  const std::string jsonl = ::testing::TempDir() + "/cli_diff_base.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  ASSERT_EQ(run_command("run gamma 1 2 6 4 32 --metrics-out " + jsonl, &out), 0) << out;
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'effort_mean>1%'", &out),
            0);
  EXPECT_NE(out.find("0 changed"), std::string::npos) << out;
  EXPECT_NE(out.find("gate: all 1 thresholds hold"), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, ReportDiffTripsTheGateOnARegression) {
  const std::string old_jsonl = ::testing::TempDir() + "/cli_diff_old.jsonl";
  const std::string new_jsonl = ::testing::TempDir() + "/cli_diff_new.jsonl";
  std::remove(old_jsonl.c_str());
  std::remove(new_jsonl.c_str());
  std::string out;
  // Same cell identity, radically different environment: the worst-case run
  // works much harder per bit, so effort_mean regresses far past 1%.
  ASSERT_EQ(run_command("run gamma 1 2 6 4 32 --env fast --metrics-out " + old_jsonl, &out), 0);
  ASSERT_EQ(run_command("run gamma 1 2 6 4 32 --env worst --metrics-out " + new_jsonl, &out), 0);
  EXPECT_EQ(run_command("report " + old_jsonl + " " + new_jsonl +
                            " --fail-on 'effort_mean>1%'",
                        &out),
            3);
  EXPECT_NE(out.find("gate: effort_mean>1% tripped"), std::string::npos) << out;
  // Without --fail-on the same diff is informational and exits 0.
  EXPECT_EQ(run_command("report " + old_jsonl + " " + new_jsonl, &out), 0);
  EXPECT_NE(out.find("1 changed"), std::string::npos) << out;
  std::remove(old_jsonl.c_str());
  std::remove(new_jsonl.c_str());
}

TEST(Cli, ReportDiffJsonEmitsTheSchemaTag) {
  const std::string jsonl = ::testing::TempDir() + "/cli_diff_json.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --metrics-out " + jsonl, &out), 0);
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --json", &out), 0);
  EXPECT_NE(out.find("\"schema\":\"rstp-metrics-diff-v1\""), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, ReportDiffRejectsMalformedInputWithLineNumber) {
  const std::string good = ::testing::TempDir() + "/cli_diff_good.jsonl";
  const std::string bad = ::testing::TempDir() + "/cli_diff_bad.jsonl";
  std::remove(good.c_str());
  std::string out;
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --metrics-out " + good, &out), 0);
  // Copy the good line, then append garbage: the error must name line 2 of
  // the offending file and use the usage-error exit code in two-file mode.
  std::ifstream in{good};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  std::ofstream{bad} << line << "\n" << "{\"schema\":\"rstp-run-metrics-v1\", broken\n";
  EXPECT_EQ(run_command("report " + good + " " + bad, &out), 2);
  EXPECT_NE(out.find(bad), std::string::npos) << out;
  EXPECT_NE(out.find("line 2"), std::string::npos) << out;
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(Cli, ReportDiffRejectsBadThresholdSpecs) {
  const std::string jsonl = ::testing::TempDir() + "/cli_diff_spec.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --metrics-out " + jsonl, &out), 0);
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'effort_mean>>1%'",
                        &out),
            2);
  EXPECT_NE(out.find("bad --fail-on clause"), std::string::npos) << out;
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'no_such_thing>1'",
                        &out),
            2);
  EXPECT_NE(out.find("no_such_thing"), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, CampaignRunsTheGoldenGrid) {
  const std::string jsonl = ::testing::TempDir() + "/cli_campaign.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  EXPECT_EQ(run_command("campaign --metrics-out " + jsonl + " --threads 2", &out), 0);
  EXPECT_NE(out.find("golden grid: 32 jobs, 0 incorrect"), std::string::npos) << out;
  // The exported series diffs clean against itself through the gate — the
  // exact invocation the metrics-gate CI job uses.
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl +
                            " --fail-on 'cells_changed>0,cells_missing>0,cells_extra>0'",
                        &out),
            0);
  EXPECT_NE(out.find("gate: all 3 thresholds hold"), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, DashboardDegradesToPlainLinesWhenPiped) {
  // run_command pipes stdout into a file, so the TTY probe fails and
  // --dashboard must fall back to one-line progress with zero ANSI bytes.
  std::string out;
  EXPECT_EQ(run_command("campaign --dashboard --threads 2", &out), 0);
  EXPECT_EQ(out.find('\x1b'), std::string::npos) << out;
  EXPECT_NE(out.find("golden grid: 32 jobs, 0 incorrect"), std::string::npos) << out;
  EXPECT_NE(out.find("campaign: 32/32 jobs (100.0%)"), std::string::npos) << out;

  EXPECT_EQ(run_command("fuzz beta --seed 1 --budget 64 --jobs 2 --dashboard", &out), 0);
  EXPECT_EQ(out.find('\x1b'), std::string::npos) << out;
  EXPECT_NE(out.find("fuzz: gen "), std::string::npos) << out;
  // --no-dashboard wins over --dashboard and silences the per-generation feed.
  EXPECT_EQ(run_command("fuzz beta --seed 1 --budget 64 --jobs 2 --dashboard --no-dashboard",
                        &out),
            0);
  EXPECT_EQ(out.find("fuzz: gen "), std::string::npos) << out;
}

TEST(Cli, ReportRejectsNonFiniteGateLimits) {
  const std::string jsonl = ::testing::TempDir() + "/cli_diff_nan.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --metrics-out " + jsonl, &out), 0);
  // 'effort_mean>nan' used to parse and then pass everything (NaN compares
  // false); it is now a usage error like any other malformed clause.
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'effort_mean>nan'",
                        &out),
            2);
  EXPECT_NE(out.find("bad --fail-on clause"), std::string::npos) << out;
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'events>inf'", &out), 2);
  std::remove(jsonl.c_str());
}

TEST(Cli, ReportOnMissingOrMalformedInputFails) {
  std::string out;
  EXPECT_EQ(run_command("report /nonexistent/metrics.jsonl", &out), 1);
  EXPECT_NE(out.find("cannot open"), std::string::npos) << out;
  const std::string bad = ::testing::TempDir() + "/cli_bad.jsonl";
  std::ofstream{bad} << "this is not json\n";
  EXPECT_EQ(run_command("report " + bad, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
  std::remove(bad.c_str());
}

TEST(Cli, ModelErrorsSurfaceCleanly) {
  std::string out;
  // c1 > c2 is a contract violation; the CLI must catch and report it.
  EXPECT_EQ(run_command("bounds 3 2 8 4", &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos) << out;
}

TEST(Cli, RunWritesChromeTraceWithTraceOut) {
  const std::string trace_json = ::testing::TempDir() + "/cli_span_trace.json";
  std::remove(trace_json.c_str());
  std::string out;
  // Both --trace-out FILE and --trace-out=FILE spellings are accepted.
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --seed 7 --trace-out=" + trace_json, &out), 0)
      << out;
  EXPECT_NE(out.find("trace-out:  written to"), std::string::npos) << out;
  EXPECT_NE(out.find("flow events"), std::string::npos) << out;
  const std::string content = read_file(trace_json);
  ASSERT_FALSE(content.empty());
  EXPECT_NE(content.find("\"schema\":\"rstp-trace-v1\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"s\""), std::string::npos);  // at least one flow start
  EXPECT_NE(content.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(content.find("model: channel"), std::string::npos);
  std::remove(trace_json.c_str());
}

TEST(Cli, ReplayWritesChromeTraceWithTraceOut) {
  const std::string trace_json = ::testing::TempDir() + "/cli_replay_trace.json";
  std::remove(trace_json.c_str());
  std::string out;
  // The golden repro records a failing verdict; replay exits 0 iff it
  // reproduces bitwise — and the trace file captures the faulty timeline.
  ASSERT_EQ(run_command(std::string("replay ") + RSTP_GOLDEN_REPRO_PATH + " --trace-out " +
                            trace_json,
                        &out),
            0)
      << out;
  EXPECT_NE(out.find("trace-out:  written to"), std::string::npos) << out;
  const std::string content = read_file(trace_json);
  ASSERT_FALSE(content.empty());
  EXPECT_NE(content.find("\"schema\":\"rstp-trace-v1\""), std::string::npos);
  std::remove(trace_json.c_str());
}

TEST(Cli, EstimatorRunReportsLiveEstimates) {
  std::string out;
  EXPECT_EQ(run_command("run beta 1 2 6 4 64 --estimator", &out), 0) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos) << out;
  EXPECT_NE(out.find("estimator:  margin 0.125"), std::string::npos) << out;
  EXPECT_NE(out.find("accepts (in good(A))"), std::string::npos) << out;
  // An explicit margin and a drift script ride along; the estimator chases
  // the post-breakpoint delay and the run still verifies.
  EXPECT_EQ(run_command("run gamma 1 2 6 4 64 --estimator=0 --drift 0:6,120:3", &out), 0) << out;
  EXPECT_NE(out.find("correct:    yes"), std::string::npos) << out;
  EXPECT_NE(out.find("drift:"), std::string::npos) << out;
  EXPECT_NE(out.find("estimator:  margin 0"), std::string::npos) << out;
}

TEST(Cli, EstimatorAndDriftUsageErrorsNameTheBadToken) {
  std::string out;
  EXPECT_EQ(run_command("run beta 1 2 6 4 64 --drift nope", &out), 2);
  EXPECT_NE(out.find("bad --drift segment 'nope'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run beta 1 2 6 4 64 --drift 0:9,250", &out), 2);
  EXPECT_NE(out.find("bad --drift segment '250'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run beta 1 2 6 4 64 --estimator=abc", &out), 2);
  EXPECT_NE(out.find("invalid --estimator margin 'abc'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run beta 1 2 6 4 64 --estimator=1.5", &out), 2);
  EXPECT_NE(out.find("invalid --estimator margin '1.5'"), std::string::npos) << out;
  EXPECT_EQ(run_command("run alpha 1 2 6 2 64 --estimator", &out), 2);
  EXPECT_NE(out.find("--estimator supports only beta and gamma"), std::string::npos) << out;
}

TEST(Cli, ReplayRejectsTheEstimatorFlag) {
  std::string out;
  EXPECT_EQ(run_command(std::string("replay ") + RSTP_GOLDEN_REPRO_PATH + " --estimator", &out),
            2);
  EXPECT_NE(out.find("--estimator is not supported for replay"), std::string::npos) << out;
}

TEST(Cli, EstimatorCampaignHoldsThePenaltyGate) {
  const std::string jsonl = ::testing::TempDir() + "/cli_est_campaign.jsonl";
  std::remove(jsonl.c_str());
  std::string out;
  EXPECT_EQ(run_command("campaign --estimator --metrics-out " + jsonl + " --threads 2", &out), 0);
  EXPECT_NE(out.find("estimator grid: 16 jobs, 0 incorrect"), std::string::npos) << out;
  // The exported series holds the CI penalty gate against itself — the exact
  // invocation the estimator-smoke CI job runs against the checked-in file.
  EXPECT_EQ(run_command("report " + jsonl + " " + jsonl + " --fail-on 'est_penalty_max>5%'",
                        &out),
            0);
  EXPECT_NE(out.find("gate: all 1 thresholds hold"), std::string::npos) << out;
  std::remove(jsonl.c_str());
}

TEST(Cli, TimingReportsOverheadAndHonorsNoTscEnv) {
  std::string out;
  ASSERT_EQ(run_command("run beta 1 2 6 4 32 --timing", &out), 0) << out;
  EXPECT_NE(out.find("timer-pair overhead"), std::string::npos) << out;
  EXPECT_NE(out.find("net_ns"), std::string::npos) << out;

  // RSTP_NO_TSC forces the steady_clock fallback; timing must still work.
  const std::string tmp = ::testing::TempDir() + "/cli_notsc.txt";
  const std::string command =
      "RSTP_NO_TSC=1 " + cli() + " run beta 1 2 6 4 32 --timing > " + tmp + " 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0);
  const std::string content = read_file(tmp);
  EXPECT_NE(content.find("clock: steady"), std::string::npos) << content;
  std::remove(tmp.c_str());
}

}  // namespace
