// Tests for A^β(k) (paper §6.1, Figure 3): the block r-passive solution.
#include "rstp/protocols/beta.h"

#include <gtest/gtest.h>

#include "rstp/channel/policies.h"
#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/sim/simulator.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k = 4, std::int64_t c1 = 1,
                          std::int64_t c2 = 2, std::int64_t d = 4) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

TEST(BetaTransmitter, RoundStructureIsSendsThenWaits) {
  // δ = ⌈4/1⌉ = 4; k=4 → B = ⌊log2 μ_4(4)⌋ = ⌊log2 35⌋ = 5 bits per block.
  BetaTransmitter t{config_for(core::make_random_input(10, 3))};
  EXPECT_EQ(t.block_size(), 4);
  EXPECT_EQ(t.bits_per_block(), 5u);
  // 10 bits → 2 blocks → 8 symbols.
  EXPECT_EQ(t.symbol_stream().size(), 8u);

  // Round 1: exactly δ sends then δ waits.
  for (int i = 0; i < 4; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Send) << "send " << i;
    t.apply(*a);
  }
  for (int i = 0; i < 4; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Internal) << "wait " << i;
    t.apply(*a);
  }
  // Round 2 begins with a send.
  const auto a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, ActionKind::Send);
}

TEST(BetaTransmitter, StopsAfterFinalWaitPhase) {
  BetaTransmitter t{config_for(core::make_random_input(5, 9))};  // 1 block
  for (int i = 0; i < 8; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    t.apply(*a);
  }
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.transmission_complete());
}

TEST(BetaTransmitter, EmptyInputSendsNothing) {
  BetaTransmitter t{config_for({})};
  EXPECT_TRUE(t.symbol_stream().empty());
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.quiescent());
}

TEST(BetaReceiver, DecodesFullBlocksFromMultiset) {
  const auto input = core::make_random_input(5, 4);  // exactly one block (B=5)
  const ProtocolConfig cfg = config_for(input);
  BetaTransmitter t{cfg};
  BetaReceiver r{cfg};
  // Feed the block's symbols in REVERSE order — decoding must not care.
  const auto& stream = t.symbol_stream();
  ASSERT_EQ(stream.size(), 4u);
  for (std::size_t i = stream.size(); i-- > 0;) {
    r.apply(Action::recv(ioa::Packet::to_receiver(stream[i])));
  }
  EXPECT_EQ(r.decoded_bits(), 5u);
  // Drain the writes.
  std::vector<Bit> written;
  while (true) {
    const auto a = r.enabled_local();
    ASSERT_TRUE(a.has_value());
    if (a->kind != ActionKind::Write) break;
    written.push_back(a->message);
    r.apply(*a);
  }
  EXPECT_EQ(written, input);
  EXPECT_TRUE(r.quiescent());
}

TEST(BetaReceiver, DiscardsPaddingBeyondTargetLength) {
  const std::vector<Bit> input = {1, 0, 1};  // 3 bits, block carries 5
  const ProtocolConfig cfg = config_for(input);
  BetaTransmitter t{cfg};
  BetaReceiver r{cfg};
  for (const auto s : t.symbol_stream()) {
    r.apply(Action::recv(ioa::Packet::to_receiver(s)));
  }
  EXPECT_EQ(r.decoded_bits(), 5u);
  std::vector<Bit> written;
  while (r.enabled_local()->kind == ActionKind::Write) {
    written.push_back(r.enabled_local()->message);
    r.apply(*r.enabled_local());
  }
  EXPECT_EQ(written, input) << "only |X| bits are written; padding is dropped";
}

TEST(BetaReceiver, RejectsOutOfAlphabetSymbols) {
  BetaReceiver r{config_for({1}, /*k=*/4)};
  EXPECT_THROW(r.apply(Action::recv(ioa::Packet::to_receiver(4))), ContractViolation);
}

TEST(BetaEndToEnd, CorrectUnderWorstCase) {
  const auto input = core::make_random_input(100, 7);
  const auto cfg = config_for(input, 8);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Beta, cfg, Environment::worst_case());
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(BetaEndToEnd, CorrectUnderAdversarialBatchReordering) {
  // The Lemma 5.1 adversary erases intra-window order; β must not care.
  const auto input = core::make_random_input(80, 21);
  const auto cfg = config_for(input, 4, /*c1=*/1, /*c2=*/1, /*d=*/4);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Beta, cfg, Environment::adversarial_fast());
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(BetaEndToEnd, CorrectUnderRandomizedEnvironments) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto input = core::make_random_input(60, seed + 100);
    const auto cfg = config_for(input, 4, 2, 3, 9);
    const core::ProtocolRun run =
        core::run_protocol(ProtocolKind::Beta, cfg, Environment::randomized(seed));
    EXPECT_TRUE(run.output_correct) << "seed " << seed;
    const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << '\n' << verdict;
  }
}

TEST(BetaEndToEnd, EffortIsWithinLemma61Bound) {
  const auto params = core::TimingParams::make(1, 2, 6);
  const core::BoundsReport bounds = core::compute_bounds(params, 8);
  // The Lemma 6.1 bound assumes |X| ≡ 0 (mod B) (the paper's simplifying
  // assumption); align n so padding does not distort the per-bit figure.
  const std::size_t n = bounds.beta_bits_per_block * 64;
  const auto m =
      core::measure_effort(ProtocolKind::Beta, params, 8, n, Environment::worst_case());
  EXPECT_TRUE(m.output_correct);
  // Worst-case measured effort must respect the Lemma 6.1 upper bound (up to
  // the final round's truncation, which only helps).
  EXPECT_LE(m.effort, bounds.beta_upper * (1.0 + 1e-9));
  // And cannot beat the Theorem 5.3 lower bound asymptotically; allow the
  // finite-n tail a little slack.
  EXPECT_GE(m.effort, bounds.passive_lower * 0.8);
}

TEST(BetaEndToEnd, LargerAlphabetLowersEffort) {
  const auto params = core::TimingParams::make(1, 2, 8);
  const auto m2 =
      core::measure_effort(ProtocolKind::Beta, params, 2, 256, Environment::worst_case());
  const auto m16 =
      core::measure_effort(ProtocolKind::Beta, params, 16, 256, Environment::worst_case());
  EXPECT_TRUE(m2.output_correct);
  EXPECT_TRUE(m16.output_correct);
  EXPECT_LT(m16.effort, m2.effort) << "k=16 must beat k=2 (more bits per block)";
}

TEST(BetaEndToEnd, BeatsAlphaForAnyK) {
  const auto params = core::TimingParams::make(1, 2, 8);
  const auto alpha =
      core::measure_effort(ProtocolKind::Alpha, params, 2, 256, Environment::worst_case());
  const auto beta =
      core::measure_effort(ProtocolKind::Beta, params, 2, 256, Environment::worst_case());
  EXPECT_LT(beta.effort, alpha.effort)
      << "even k=2 blocks carry >1 bit per round once δ is large";
}

TEST(BetaEndToEnd, DropFaultIsDetectedAsModelViolation) {
  // Outside the model: drop packets. Loss desynchronizes β's block framing —
  // the receiver groups packets across block boundaries and decodes garbage
  // (or stalls on a forever-incomplete final block). β's correctness promise
  // simply does not extend past the model, and the verifier proves the run
  // was outside it: the dropped sends are flagged as undelivered.
  const auto input = core::make_random_input(20, 5);
  const auto cfg = config_for(input, 4);
  protocols::ProtocolInstance inst = make_protocol(ProtocolKind::Beta, cfg);
  auto ts = sim::make_fixed_rate(cfg.params.c2);
  auto rs = sim::make_fixed_rate(cfg.params.c2);
  channel::Channel chan{cfg.params.d, channel::make_max_delay()};
  sim::SimConfig sc;
  sc.params = cfg.params;
  sc.max_events = 5000;
  sc.drop_every_nth = 3;
  sim::Simulator sim{*inst.transmitter, *inst.receiver, chan, *ts, *rs, sc};
  const auto result = sim.run();
  EXPECT_GT(result.dropped_packets, 0u);
  const auto verdict = core::verify_trace(result.trace, cfg.params, input,
                                          {.require_complete = false});
  EXPECT_FALSE(verdict.clean_of(core::ViolationKind::UndeliveredPacket))
      << "the verifier must prove this run is outside good(A)";
}

TEST(BetaEndToEnd, VariousLengthsIncludingBlockBoundaries) {
  const auto params = core::TimingParams::make(1, 2, 4);
  const core::BoundsReport bounds = core::compute_bounds(params, 4);
  const std::size_t B = bounds.beta_bits_per_block;
  for (const std::size_t n : {std::size_t{1}, B - 1, B, B + 1, 3 * B, 10 * B + 2}) {
    const auto input = core::make_random_input(n, n);
    const core::ProtocolRun run = core::run_protocol(ProtocolKind::Beta, config_for(input, 4),
                                                     Environment::worst_case());
    EXPECT_TRUE(run.output_correct) << "n=" << n;
  }
}

}  // namespace
}  // namespace rstp::protocols
