// Tests for the executable Lemma 5.1 machinery (core/distinguisher).
#include "rstp/core/distinguisher.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/alpha.h"
#include "rstp/protocols/beta.h"
#include "rstp/protocols/factory.h"
#include "rstp/protocols/gamma.h"
#include "rstp/protocols/strawman.h"

namespace rstp::core {
namespace {

using combinatorics::Multiset;
using ioa::Bit;
using protocols::ProtocolConfig;
using protocols::ProtocolKind;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k, std::int64_t c1,
                          std::int64_t c2, std::int64_t d) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

/// Enumerates all binary strings of length n.
std::vector<std::vector<Bit>> all_inputs(std::size_t n) {
  std::vector<std::vector<Bit>> result;
  for (std::uint32_t v = 0; v < (1u << n); ++v) {
    std::vector<Bit> x;
    x.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<Bit>((v >> (n - 1 - i)) & 1u));
    }
    result.push_back(std::move(x));
  }
  return result;
}

TEST(Signature, AlphaWindowsAreSingletonBits) {
  // α with c1=1, d=3: one send then 2 waits per message → window of δ1 = 3
  // steps holds exactly one packet carrying the message bit.
  const std::vector<Bit> x = {1, 0, 1};
  protocols::AlphaTransmitter t{config_for(x, 2, 1, 2, 3)};
  const TransmitterSignature sig = transmitter_signature(t, 2, 3);
  EXPECT_TRUE(sig.complete);
  EXPECT_EQ(sig.total_sends, 3u);
  ASSERT_EQ(sig.windows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sig.windows[i].size(), 1u);
    EXPECT_EQ(sig.windows[i].count(x[i]), 1u);
  }
}

TEST(Signature, BetaWindowsAreTheEncodedBlocks) {
  const auto input = make_random_input(8, 3);
  const ProtocolConfig cfg = config_for(input, 3, 1, 1, 4);
  protocols::BetaTransmitter t{cfg};
  // β's rounds are 2δ steps (δ sends + δ waits): with window = 2δ each
  // window is exactly one block's multiset.
  const TransmitterSignature sig = transmitter_signature(t, 3, 2 * t.block_size());
  EXPECT_TRUE(sig.complete);
  const auto& stream = t.symbol_stream();
  const auto delta = static_cast<std::size_t>(t.block_size());
  ASSERT_EQ(sig.windows.size(), stream.size() / delta);
  for (std::size_t b = 0; b < sig.windows.size(); ++b) {
    const std::span<const combinatorics::Symbol> block{stream.data() + b * delta, delta};
    EXPECT_EQ(sig.windows[b], Multiset::from_symbols(3, block)) << "block " << b;
  }
}

TEST(Signature, DoesNotMutateTheTransmitter) {
  protocols::AlphaTransmitter t{config_for({1, 0}, 2, 1, 2, 3)};
  const std::string before = t.snapshot();
  (void)transmitter_signature(t, 2, 3);
  EXPECT_EQ(t.snapshot(), before);
}

TEST(Signature, ActiveTransmitterReportsIncomplete) {
  // γ stalls awaiting acks that never come in the signature harness.
  protocols::GammaTransmitter t{config_for({1, 0, 1, 1}, 4, 1, 2, 8)};
  const TransmitterSignature sig = transmitter_signature(t, 4, 4, /*max_steps=*/500);
  EXPECT_FALSE(sig.complete);
  EXPECT_GT(sig.total_sends, 0u);  // the first block was sent before stalling
}

TEST(Signature, EmptyInputHasEmptySignature) {
  protocols::AlphaTransmitter t{config_for({}, 2, 1, 2, 3)};
  const TransmitterSignature sig = transmitter_signature(t, 2, 3);
  EXPECT_TRUE(sig.complete);
  EXPECT_TRUE(sig.windows.empty());
  EXPECT_EQ(sig.total_sends, 0u);
}

TEST(Lemma51, CorrectProtocolsHaveInjectiveSignaturesExhaustively) {
  // Lemma 5.1's contrapositive: a correct r-passive protocol must give
  // distinct inputs distinct signatures. Exhaustive over all 2^7 inputs.
  for (const auto kind : {ProtocolKind::Alpha, ProtocolKind::Beta}) {
    std::set<std::string> seen;
    for (const auto& x : all_inputs(7)) {
      const ProtocolConfig cfg = config_for(x, 3, 1, 1, 3);
      const auto instance = protocols::make_protocol(kind, cfg);
      const TransmitterSignature sig =
          transmitter_signature(*instance.transmitter, 3, cfg.params.delta1());
      ASSERT_TRUE(sig.complete);
      // Serialize for set membership.
      std::string key;
      for (const auto& w : sig.windows) {
        for (const auto s : w.to_sorted_sequence()) key += static_cast<char>('a' + s);
        key += '|';
      }
      EXPECT_TRUE(seen.insert(key).second)
          << protocols::to_string(kind) << ": duplicate signature for an input of length 7";
    }
    EXPECT_EQ(seen.size(), 128u);
  }
}

TEST(Lemma51, StrawmanHasCollidingSignatures) {
  // Two inputs whose strawman blocks are permutations of each other: equal
  // window multisets ⇒ the batch adversary makes them indistinguishable.
  // k=2, δ=2, b=1 bit/symbol: block (1,0) vs (0,1) ⇔ inputs 10 vs 01.
  const std::vector<Bit> x1 = {1, 0};
  const std::vector<Bit> x2 = {0, 1};
  const ProtocolConfig cfg1 = config_for(x1, 2, 1, 1, 2);
  const ProtocolConfig cfg2 = config_for(x2, 2, 1, 1, 2);
  protocols::StrawmanTransmitter t1{cfg1};
  protocols::StrawmanTransmitter t2{cfg2};
  const auto sig1 = transmitter_signature(t1, 2, 2);
  const auto sig2 = transmitter_signature(t2, 2, 2);
  EXPECT_EQ(sig1, sig2) << "the strawman cannot distinguish 10 from 01";

  // And indeed, under the batch adversary both runs write the same output,
  // so at least one of them is wrong (Lemma 5.1's argument, executed).
  const ProtocolRun r1 = run_protocol(ProtocolKind::Strawman, cfg1,
                                      Environment::adversarial_fast());
  const ProtocolRun r2 = run_protocol(ProtocolKind::Strawman, cfg2,
                                      Environment::adversarial_fast());
  EXPECT_EQ(r1.result.output, r2.result.output);
  EXPECT_FALSE(r1.output_correct && r2.output_correct);

  // The strongest form of Lemma 5.1's conclusion: the receiver's entire
  // timed view — every packet it receives, at its time, plus every local
  // step it takes — is IDENTICAL across the two executions. The receiver
  // provably cannot tell X1 from X2.
  EXPECT_EQ(r1.result.trace.process_view(ioa::ProcessId::Receiver),
            r2.result.trace.process_view(ioa::ProcessId::Receiver));
  // The transmitters' views differ, of course (they hold different inputs).
  EXPECT_NE(r1.result.trace.process_view(ioa::ProcessId::Transmitter),
            r2.result.trace.process_view(ioa::ProcessId::Transmitter));
}

TEST(Lemma51, WindowCountRespectsTheCountingBound) {
  // Theorem 5.3's counting, executed: for every n and every input, a correct
  // protocol's window count ℓ(X) must be ≥ ⌈n / log2(ζ_k(δ1)+1)⌉ for at
  // least one X of each length (the max over X is what the bound constrains;
  // we check the max).
  const std::uint32_t k = 2;
  const std::uint32_t delta1 = 3;
  for (std::size_t n = 1; n <= 8; ++n) {
    std::size_t max_windows = 0;
    for (const auto& x : all_inputs(n)) {
      const ProtocolConfig cfg = config_for(x, k, 1, 1, 3);
      protocols::BetaTransmitter t{cfg};
      const auto sig = transmitter_signature(t, k, delta1);
      max_windows = std::max(max_windows, sig.windows.size());
    }
    EXPECT_GE(max_windows, min_windows_for(n, k, delta1)) << "n=" << n;
  }
}

TEST(Lemma51, MinWindowsFormula) {
  EXPECT_EQ(min_windows_for(0, 2, 3), 0u);
  // ζ_2(3) = 2+3+4 = 9 → log2(10) ≈ 3.32 bits per window.
  EXPECT_EQ(min_windows_for(1, 2, 3), 1u);
  EXPECT_EQ(min_windows_for(4, 2, 3), 2u);
  EXPECT_EQ(min_windows_for(7, 2, 3), 3u);
  EXPECT_EQ(min_windows_for(34, 2, 3), 11u);
}

TEST(Signature, WindowSizeOneTracksEveryStep) {
  const std::vector<Bit> x = {1, 1};
  protocols::AlphaTransmitter t{config_for(x, 2, 1, 2, 2)};  // send, wait, send, wait
  const auto sig = transmitter_signature(t, 2, 1);
  ASSERT_EQ(sig.windows.size(), 3u);  // last send at step 3; trailing wait trimmed
  EXPECT_EQ(sig.windows[0].size(), 1u);
  EXPECT_EQ(sig.windows[1].size(), 0u);
  EXPECT_EQ(sig.windows[2].size(), 1u);
}

}  // namespace
}  // namespace rstp::core
