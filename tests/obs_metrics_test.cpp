// Tests for the obs instrumentation layer: fixed-bucket histograms, the
// sharded metrics registry, and the gated wall-clock phase timers.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rstp/common/check.h"
#include "rstp/obs/metrics.h"
#include "rstp/sim/campaign.h"
#include "rstp/sim/campaign_bench.h"

namespace rstp {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;

TEST(Histogram, WidthOneBucketsGiveExactPercentiles) {
  Histogram h{0, 99};  // span 100 ≤ 64 buckets? no: width becomes 2
  EXPECT_EQ(h.bucket_width(), 2);
  Histogram exact{0, 63};
  EXPECT_EQ(exact.bucket_width(), 1);
  for (std::int64_t v = 1; v <= 20; ++v) exact.record(v);
  EXPECT_EQ(exact.count(), 20u);
  EXPECT_EQ(exact.sum(), 210);
  EXPECT_EQ(exact.min(), 1);
  EXPECT_EQ(exact.max(), 20);
  EXPECT_DOUBLE_EQ(exact.mean(), 10.5);
  // Nearest-rank over 1..20: p50 → rank 10 → value 10; p95 → rank 19; p99 →
  // rank 20.
  EXPECT_EQ(exact.percentile(50), 10);
  EXPECT_EQ(exact.percentile(95), 19);
  EXPECT_EQ(exact.percentile(99), 20);
  EXPECT_EQ(exact.percentile(0), 1);
  EXPECT_EQ(exact.percentile(100), 20);
}

TEST(Histogram, OutOfWindowValuesClampIntoEdgeBuckets) {
  Histogram h{0, 7};
  h.record(-5);
  h.record(100);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
  // min/max still report the true extremes; percentiles stay inside the
  // window (they report the top bucket's upper edge, never invented values).
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.percentile(99), 7);
}

TEST(Histogram, EmptyAndUnconfiguredBehaviour) {
  Histogram empty{0, 10};
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.percentile(50), 0);

  Histogram unconfigured;
  EXPECT_FALSE(unconfigured.configured());
  EXPECT_THROW(unconfigured.record(1), ContractViolation);
}

TEST(Histogram, MergeRequiresIdenticalLayoutAndSums) {
  Histogram a{0, 15};
  Histogram b{0, 15};
  a.record(3);
  b.record(10);
  b.record(12);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 3);
  EXPECT_EQ(a.max(), 12);
  EXPECT_EQ(a.sum(), 25);

  Histogram other{0, 31};
  EXPECT_THROW(a.merge(other), ContractViolation);
}

TEST(Histogram, FromPartsRoundTripsExactly) {
  Histogram h{0, 63};
  for (const std::int64_t v : {0, 1, 1, 5, 40, 63}) h.record(v);
  std::vector<std::uint64_t> buckets;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) buckets.push_back(h.bucket(i));
  const Histogram rebuilt = Histogram::from_parts(h.lower_bound(), h.bucket_width(),
                                                  std::move(buckets), h.count(), h.sum(),
                                                  h.min(), h.max());
  EXPECT_EQ(rebuilt, h);
}

TEST(Histogram, FromPartsRejectsInconsistentParts) {
  // Bucket counts that do not sum to `count` must be rejected.
  EXPECT_THROW((void)Histogram::from_parts(0, 1, {1, 1}, 3, 2, 0, 1), ContractViolation);
  EXPECT_THROW((void)Histogram::from_parts(0, 0, {1}, 1, 0, 0, 0), ContractViolation);
  EXPECT_THROW((void)Histogram::from_parts(0, 1, {}, 0, 0, 0, 0), ContractViolation);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  const auto a = reg.counter("test/a");
  const auto again = reg.counter("test/a");
  EXPECT_EQ(a, again);
  const auto g = reg.gauge("test/gauge");
  EXPECT_NE(a, g);
}

TEST(MetricsRegistry, CountersSumAndGaugesTakeTheMax) {
  MetricsRegistry reg;
  const auto c = reg.counter("test/count");
  const auto g = reg.gauge("test/high_water");
  reg.add(c, 5);
  reg.add(c);
  reg.gauge_max(g, 7);
  reg.gauge_max(g, 3);  // lower: must not regress the high-water mark
  EXPECT_EQ(reg.value(c), 6u);
  EXPECT_EQ(reg.value(g), 7u);

  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "test/count");
  EXPECT_FALSE(samples[0].is_gauge);
  EXPECT_EQ(samples[0].value, 6u);
  EXPECT_EQ(samples[1].name, "test/high_water");
  EXPECT_TRUE(samples[1].is_gauge);

  reg.reset();
  EXPECT_EQ(reg.value(c), 0u);
  EXPECT_EQ(reg.value(g), 0u);
}

TEST(MetricsRegistry, ConcurrentRecordingMergesDeterministically) {
  MetricsRegistry reg;
  const auto c = reg.counter("test/parallel");
  const auto g = reg.gauge("test/parallel_max");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, c, g, t]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.add(c);
      reg.gauge_max(g, t + 1);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.value(c), kThreads * kPerThread);
  EXPECT_EQ(reg.value(g), kThreads);
}

TEST(PhaseTimers, DisabledTimersRecordNothing) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(false);
  { const obs::ScopedPhaseTimer t{obs::Phase::CodecRank}; }
  for (const obs::PhaseTotal& total : obs::collect_phase_totals()) {
    EXPECT_EQ(total.calls, 0u) << obs::to_string(total.phase);
  }
}

TEST(PhaseTimers, EnabledTimersCountCallsPerPhase) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  { const obs::ScopedPhaseTimer t{obs::Phase::CodecRank}; }
  { const obs::ScopedPhaseTimer t{obs::Phase::CodecRank}; }
  { const obs::ScopedPhaseTimer t{obs::Phase::SimStep}; }
  obs::set_phase_timing_enabled(false);
  std::uint64_t rank_calls = 0;
  std::uint64_t step_calls = 0;
  for (const obs::PhaseTotal& total : obs::collect_phase_totals()) {
    if (total.phase == obs::Phase::CodecRank) rank_calls = total.calls;
    if (total.phase == obs::Phase::SimStep) step_calls = total.calls;
  }
  EXPECT_EQ(rank_calls, 2u);
  EXPECT_EQ(step_calls, 1u);
}

std::uint64_t flat_nanos(const std::vector<obs::PhaseTotal>& totals, obs::Phase phase) {
  for (const obs::PhaseTotal& total : totals) {
    if (total.phase == phase) return total.nanos;
  }
  return 0;
}

std::uint64_t flat_calls(const std::vector<obs::PhaseTotal>& totals, obs::Phase phase) {
  for (const obs::PhaseTotal& total : totals) {
    if (total.phase == phase) return total.calls;
  }
  return 0;
}

TEST(NestedPhaseTimers, ChildTimeLandsOnTheParentEdge) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  {
    const obs::ScopedPhaseTimer step{obs::Phase::SimStep};
    { const obs::ScopedPhaseTimer rank{obs::Phase::CodecRank}; }
    { const obs::ScopedPhaseTimer rank{obs::Phase::CodecRank}; }
  }
  { const obs::ScopedPhaseTimer rank{obs::Phase::CodecRank}; }  // top-level
  obs::set_phase_timing_enabled(false);

  const auto edges = obs::collect_phase_edge_totals();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].parent, obs::Phase::SimStep);
  EXPECT_EQ(edges[0].child, obs::Phase::CodecRank);
  EXPECT_EQ(edges[0].calls, 2u);

  // Flat totals fold the edge time back in: the child's flat count covers
  // nested and top-level instances alike, exactly as the old flat-only
  // layout reported them.
  const auto totals = obs::collect_phase_totals();
  EXPECT_EQ(flat_calls(totals, obs::Phase::CodecRank), 3u);
  EXPECT_EQ(flat_calls(totals, obs::Phase::SimStep), 1u);
  EXPECT_GE(flat_nanos(totals, obs::Phase::CodecRank), edges[0].nanos);
}

TEST(NestedPhaseTimers, ChildDurationsNeverExceedTheParent) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  for (int i = 0; i < 50; ++i) {
    const obs::ScopedPhaseTimer step{obs::Phase::SimStep};
    { const obs::ScopedPhaseTimer a{obs::Phase::ProtoEnabled}; }
    { const obs::ScopedPhaseTimer b{obs::Phase::ProtoApply}; }
    { const obs::ScopedPhaseTimer c{obs::Phase::RecordEvent}; }
  }
  obs::set_phase_timing_enabled(false);

  // Child intervals are strict sub-intervals of the parent's (the parent's
  // clock brackets every child's), so attributed time can never exceed the
  // parent's flat total.
  std::uint64_t attributed = 0;
  for (const obs::PhaseEdgeTotal& edge : obs::collect_phase_edge_totals()) {
    ASSERT_EQ(edge.parent, obs::Phase::SimStep);
    EXPECT_EQ(edge.calls, 50u);
    attributed += edge.nanos;
  }
  EXPECT_LE(attributed, flat_nanos(obs::collect_phase_totals(), obs::Phase::SimStep));
}

TEST(NestedPhaseTimers, DeepNestingAttributesEachLevelToItsDirectParent) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  {
    const obs::ScopedPhaseTimer step{obs::Phase::SimStep};
    const obs::ScopedPhaseTimer apply{obs::Phase::ProtoApply};
    const obs::ScopedPhaseTimer rank{obs::Phase::CodecRank};
  }
  obs::set_phase_timing_enabled(false);
  const auto edges = obs::collect_phase_edge_totals();
  ASSERT_EQ(edges.size(), 2u);
  // (parent, child) enum order: SimStep→ProtoApply before ProtoApply→CodecRank.
  EXPECT_EQ(edges[0].parent, obs::Phase::SimStep);
  EXPECT_EQ(edges[0].child, obs::Phase::ProtoApply);
  EXPECT_EQ(edges[1].parent, obs::Phase::ProtoApply);
  EXPECT_EQ(edges[1].child, obs::Phase::CodecRank);
}

TEST(NestedPhaseTimers, TimersOnOrOffLeaveRunMetricsBitwiseIdentical) {
  // The timers measure wall clock; the simulation's own metrics must not
  // notice whether they are armed. Run one golden-grid job both ways and
  // compare the whole job result (RunMetrics included) with ==.
  const sim::Campaign campaign{sim::golden_campaign_spec()};
  const sim::CampaignJob job = campaign.job(0);
  const std::size_t input_bits = campaign.spec().input_bits;

  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(false);
  const sim::CampaignJobResult untimed = sim::run_campaign_job(job, input_bits, 1'000'000);
  obs::set_phase_timing_enabled(true);
  const sim::CampaignJobResult timed = sim::run_campaign_job(job, input_bits, 1'000'000);
  obs::set_phase_timing_enabled(false);
  obs::reset_phase_totals();

  EXPECT_FALSE(untimed.failed) << untimed.error;
  EXPECT_EQ(untimed, timed);
}

TEST(NearestRankBucket, EmptyAndAllZeroFoldsReturnBucketZero) {
  const std::uint64_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(obs::nearest_rank_bucket(zeros, 4, 0, 95.0), 0u);    // empty fold
  EXPECT_EQ(obs::nearest_rank_bucket(zeros, 0, 0, 50.0), 0u);    // no buckets at all
  EXPECT_EQ(obs::nearest_rank_bucket(zeros, 0, 7, 50.0), 0u);    // size 0 wins over count
}

TEST(NearestRankBucket, CountExceedingTheBucketSumClampsToTheLastBucket) {
  // The dashboard folds relaxed atomics without a snapshot, so the count can
  // lead the buckets by in-flight increments; all-zero buckets under a
  // nonzero count is the extreme case. The scan must run dry into the last
  // bucket, never past the array.
  const std::uint64_t zeros[3] = {0, 0, 0};
  EXPECT_EQ(obs::nearest_rank_bucket(zeros, 3, 10, 0.0), 2u);
  EXPECT_EQ(obs::nearest_rank_bucket(zeros, 3, 10, 100.0), 2u);
  const std::uint64_t partial[3] = {1, 1, 0};
  EXPECT_EQ(obs::nearest_rank_bucket(partial, 3, 5, 99.0), 2u);  // rank 5 > sum 2
}

TEST(NearestRankBucket, PercentileArgumentClampsInto0To100) {
  const std::uint64_t buckets[3] = {5, 3, 2};
  EXPECT_EQ(obs::nearest_rank_bucket(buckets, 3, 10, -50.0), 0u);  // rank clamps up to 1
  EXPECT_EQ(obs::nearest_rank_bucket(buckets, 3, 10, 500.0), 2u);  // rank clamps to count
}

TEST(PhaseStack, ExitOnAnEmptyStackRecordsTopLevelInsteadOfUnderflowing) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  // A hook firing with no enclosing ScopedPhaseTimer (or an unmatched exit):
  // depth pins at 0, the frames[depth - 1] read is guarded out, and the span
  // lands in the phase's top-level slot.
  const std::uint64_t start = obs::detail::phase_now_ns();
  obs::detail::phase_exit(obs::Phase::CodecRank, start);
  obs::detail::phase_exit(obs::Phase::CodecRank, start);  // still safe when repeated
  obs::set_phase_timing_enabled(false);
  const auto totals = obs::collect_phase_totals();
  EXPECT_EQ(flat_calls(totals, obs::Phase::CodecRank), 2u);
  EXPECT_TRUE(obs::collect_phase_edge_totals().empty());  // nothing read as nested
  obs::reset_phase_totals();
}

void nest_timers(int depth) {
  if (depth == 0) return;
  const obs::ScopedPhaseTimer t{obs::Phase::SimStep};
  nest_timers(depth - 1);
}

TEST(PhaseStack, OverflowingTheFrameCapacityStaysSafeAndBalanced) {
  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  // 40 nested timers, well past the 16-frame capacity: pushes beyond it drop
  // their frames (never write out of bounds), the saturated depth still
  // counts, and every exit is recorded — the stack rebalances on unwind.
  nest_timers(40);
  obs::set_phase_timing_enabled(false);
  const auto totals = obs::collect_phase_totals();
  EXPECT_EQ(flat_calls(totals, obs::Phase::SimStep), 40u);
  obs::reset_phase_totals();
}

}  // namespace
}  // namespace rstp
