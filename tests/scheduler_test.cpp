// Tests for step schedulers (the Σ(A_t, A_r) resolution strategies).
#include "rstp/sim/scheduler.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"

namespace rstp::sim {
namespace {

const core::TimingParams kParams = core::TimingParams::make(2, 5, 10);

TEST(FixedRate, ConstantGap) {
  FixedRateScheduler sched{Duration{3}};
  EXPECT_EQ(sched.first_offset(), Duration{0});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(sched.next_gap(i), Duration{3});
  }
}

TEST(FixedRate, CustomFirstOffset) {
  FixedRateScheduler sched{Duration{2}, Duration{1}};
  EXPECT_EQ(sched.first_offset(), Duration{1});
}

TEST(FixedRate, RejectsNonPositiveGap) {
  EXPECT_THROW(FixedRateScheduler(Duration{0}), ContractViolation);
  EXPECT_THROW(FixedRateScheduler(Duration{-1}), ContractViolation);
  EXPECT_THROW(FixedRateScheduler(Duration{1}, Duration{-1}), ContractViolation);
}

TEST(SeededRandom, GapsStayInBand) {
  SeededRandomScheduler sched{Rng{11}, kParams};
  const Duration first = sched.first_offset();
  EXPECT_GE(first.ticks(), 0);
  EXPECT_LE(first, kParams.c2);
  bool saw_min = false;
  bool saw_max = false;
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    const Duration g = sched.next_gap(i);
    EXPECT_GE(g, kParams.c1);
    EXPECT_LE(g, kParams.c2);
    saw_min |= (g == kParams.c1);
    saw_max |= (g == kParams.c2);
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(SeededRandom, DeterministicPerSeed) {
  SeededRandomScheduler a{Rng{21}, kParams};
  SeededRandomScheduler b{Rng{21}, kParams};
  EXPECT_EQ(a.first_offset(), b.first_offset());
  for (std::uint64_t i = 1; i <= 50; ++i) {
    EXPECT_EQ(a.next_gap(i), b.next_gap(i));
  }
}

TEST(Sawtooth, AlternatesExtremes) {
  SawtoothScheduler sched{kParams};
  EXPECT_EQ(sched.next_gap(2), kParams.c1);
  EXPECT_EQ(sched.next_gap(3), kParams.c2);
  EXPECT_EQ(sched.next_gap(4), kParams.c1);
}

TEST(Drift, RunsOfFastThenSlow) {
  DriftScheduler sched{kParams, 3};
  // steps 1..2 in run 0 (fast), 3..5 run 1 (slow), 6..8 run 2 (fast)...
  EXPECT_EQ(sched.next_gap(1), kParams.c1);
  EXPECT_EQ(sched.next_gap(2), kParams.c1);
  EXPECT_EQ(sched.next_gap(3), kParams.c2);
  EXPECT_EQ(sched.next_gap(5), kParams.c2);
  EXPECT_EQ(sched.next_gap(6), kParams.c1);
  EXPECT_THROW(DriftScheduler(kParams, 0), ContractViolation);
}

TEST(Factories, ProduceWorkingSchedulers) {
  auto fixed = make_fixed_rate(Duration{4});
  EXPECT_EQ(fixed->next_gap(1), Duration{4});
  auto random = make_seeded_random(3, kParams);
  EXPECT_GE(random->next_gap(1), kParams.c1);
  auto saw = make_sawtooth(kParams);
  EXPECT_EQ(saw->first_offset(), Duration{0});
  auto drift = make_drift(kParams, 2);
  EXPECT_EQ(drift->next_gap(1), kParams.c1);
}

}  // namespace
}  // namespace rstp::sim
