// Tests for the unbounded-alphabet indexed-streaming protocol ([Ste76]-style)
// — the exhibit that the k-dependence in the paper's bounds is essential.
#include "rstp/protocols/indexed.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/protocols/factory.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

ProtocolConfig config_for(std::vector<Bit> input, std::int64_t c1 = 1, std::int64_t c2 = 2,
                          std::int64_t d = 6) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = static_cast<std::uint32_t>(std::max<std::size_t>(1, input.size()) * 2);
  cfg.input = std::move(input);
  return cfg;
}

TEST(IndexedTransmitter, StreamsOnePacketPerStepNoWaiting) {
  const std::vector<Bit> x = {1, 0, 1};
  IndexedTransmitter t{config_for(x)};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Send);
    EXPECT_EQ(a->packet.payload, (i << 1) | x[i]) << "payload encodes (index, bit)";
    t.apply(*a);
  }
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.transmission_complete());
}

TEST(IndexedTransmitter, RejectsTooSmallAlphabet) {
  ProtocolConfig cfg = config_for({1, 0, 1, 1});
  cfg.k = 7;  // needs 8
  EXPECT_THROW(IndexedTransmitter{cfg}, ContractViolation);
  EXPECT_THROW(IndexedReceiver{cfg}, ContractViolation);
}

TEST(IndexedReceiver, ReassemblesOutOfOrderArrivals) {
  const ProtocolConfig cfg = config_for({1, 0, 1});
  IndexedReceiver r{cfg};
  // Deliver in reverse order.
  r.apply(Action::recv(Packet::to_receiver((2u << 1) | 1u)));
  r.apply(Action::recv(Packet::to_receiver((1u << 1) | 0u)));
  // Index 0 missing: nothing writable yet.
  EXPECT_EQ(r.enabled_local()->kind, ActionKind::Internal);
  EXPECT_TRUE(r.quiescent());
  r.apply(Action::recv(Packet::to_receiver((0u << 1) | 1u)));
  std::vector<Bit> written;
  while (r.enabled_local()->kind == ActionKind::Write) {
    written.push_back(r.enabled_local()->message);
    r.apply(*r.enabled_local());
  }
  EXPECT_EQ(written, (std::vector<Bit>{1, 0, 1}));
}

TEST(IndexedReceiver, DuplicateIndexIsModelViolation) {
  IndexedReceiver r{config_for({1, 0})};
  r.apply(Action::recv(Packet::to_receiver(1u)));  // index 0, bit 1
  EXPECT_THROW(r.apply(Action::recv(Packet::to_receiver(1u))), ContractViolation);
}

TEST(IndexedEndToEnd, CorrectUnderEveryEnvironmentIncludingAdversarial) {
  const auto input = core::make_random_input(48, 3);
  for (const auto delay :
       {Environment::Delay::Max, Environment::Delay::Zero, Environment::Delay::Random,
        Environment::Delay::Adversarial}) {
    Environment env = Environment::worst_case();
    env.delay = delay;
    env.seed = 5;
    const auto cfg = config_for(input, 1, 1, 6);  // Adversarial wants c1-aligned windows
    const core::ProtocolRun run = core::run_protocol(ProtocolKind::Indexed, cfg, env);
    EXPECT_TRUE(run.output_correct) << static_cast<int>(delay);
    const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
    EXPECT_TRUE(verdict.ok()) << verdict;
  }
}

TEST(IndexedEndToEnd, EffortIsExactlyC2) {
  // One send per step, steps every c2 in the worst case: last send at
  // (n−1)·c2, so effort → c2.
  const auto params = core::TimingParams::make(1, 3, 8);
  const std::size_t n = 256;
  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = static_cast<std::uint32_t>(2 * n);
  cfg.input = core::make_random_input(n, 4);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Indexed, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  ASSERT_TRUE(run.result.last_transmitter_send.has_value());
  EXPECT_EQ((*run.result.last_transmitter_send - Time::zero()).ticks(),
            static_cast<std::int64_t>(n - 1) * 3);
}

TEST(IndexedEndToEnd, BeatsAnyFixedKLowerBoundOnceDIsLargeEnough) {
  // The point of the exhibit: for any FIXED k, the r-passive lower bound
  // grows like d/log d while indexed streaming stays at c2 — so with d large
  // enough, indexed drops below it. No contradiction with Theorem 5.3: the
  // indexed alphabet grows with |X|, and the theorem's bound is per fixed k.
  const auto params = core::TimingParams::make(1, 2, 64);
  const std::size_t n = 256;
  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = static_cast<std::uint32_t>(2 * n);
  cfg.input = core::make_random_input(n, 8);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Indexed, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  const double effort =
      static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
      static_cast<double>(n);
  for (const std::uint32_t k : {2u, 4u, 8u, 16u}) {
    const core::BoundsReport bounds = core::compute_bounds(params, k);
    EXPECT_LT(effort, bounds.passive_lower) << "k=" << k;
  }
  // …whereas at the SAME d a big enough alphabet undercuts c2 — the bounds
  // reward alphabet size exactly as the theorem says.
  EXPECT_LT(core::compute_bounds(params, 512).passive_lower, effort);
}

TEST(IndexedEndToEnd, ExhaustivelyVerifiedForSmallInstances) {
  const std::vector<Bit> input = {1, 0, 1};
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, 2);
  cfg.k = 6;
  cfg.input = input;
  const auto instance = make_protocol(ProtocolKind::Indexed, cfg);
  ioa::ExplorerConfig config;
  config.d = 2;
  const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    const auto& out = dynamic_cast<const ReceiverBase&>(r).output();
    return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
  };
  const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    return dynamic_cast<const ReceiverBase&>(r).output() == input;
  };
  ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix, complete};
  const ioa::ExplorerResult result = explorer.run();
  EXPECT_TRUE(result.verified()) << result.first_violation;
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(IndexedEndToEnd, EmptyInput) {
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Indexed, config_for({}), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_TRUE(run.result.quiescent);
}

}  // namespace
}  // namespace rstp::protocols
