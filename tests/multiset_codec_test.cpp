// Tests for Multiset and the rank/unrank bijection (the constructive
// toseq/tomulti of paper §3).
#include "rstp/combinatorics/multiset_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::combinatorics {
namespace {

using bigint::BigUint;

TEST(Multiset, BasicOperations) {
  Multiset m{4};
  EXPECT_EQ(m.universe(), 4u);
  EXPECT_EQ(m.size(), 0u);
  m.add(2);
  m.add(2);
  m.add(0);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.count(2), 2u);
  EXPECT_EQ(m.count(0), 1u);
  EXPECT_EQ(m.count(3), 0u);
  m.remove(2);
  EXPECT_EQ(m.count(2), 1u);
  EXPECT_EQ(m.size(), 2u);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.count(0), 0u);
}

TEST(Multiset, ContractChecks) {
  Multiset m{3};
  EXPECT_THROW(m.add(3), ContractViolation);
  EXPECT_THROW(m.remove(1), ContractViolation);
  EXPECT_THROW((void)m.count(7), ContractViolation);
  EXPECT_THROW(Multiset{0}, ContractViolation);
}

TEST(Multiset, FromSymbolsIsOrderInsensitive) {
  const Symbol a[] = {3, 1, 1, 0, 2};
  const Symbol b[] = {1, 0, 3, 2, 1};
  EXPECT_EQ(Multiset::from_symbols(4, a), Multiset::from_symbols(4, b));
}

TEST(Multiset, ToSortedSequenceIsCanonicalLinearization) {
  const Symbol syms[] = {2, 0, 2, 1};
  const Multiset m = Multiset::from_symbols(3, syms);
  const std::vector<Symbol> expected = {0, 1, 2, 2};
  EXPECT_EQ(m.to_sorted_sequence(), expected);
}

TEST(Multiset, SubmultisetRelation) {
  const Symbol a[] = {0, 1};
  const Symbol b[] = {0, 0, 1, 2};
  const Multiset ma = Multiset::from_symbols(3, a);
  const Multiset mb = Multiset::from_symbols(3, b);
  EXPECT_TRUE(ma.submultiset_of(mb));
  EXPECT_FALSE(mb.submultiset_of(ma));
  EXPECT_TRUE(ma.submultiset_of(ma));
  EXPECT_TRUE(Multiset{3}.submultiset_of(ma));  // empty ⊆ everything
}

TEST(MultisetCodec, CountMatchesMu) {
  for (std::uint32_t k = 1; k <= 8; ++k) {
    for (std::uint32_t n = 0; n <= 10; ++n) {
      const MultisetCodec codec{k, n};
      EXPECT_EQ(codec.count(), mu(k, n)) << "k=" << k << " n=" << n;
    }
  }
}

TEST(MultisetCodec, RankUnrankFullBijectionSmall) {
  // Exhaustive: every rank unranks to a distinct multiset that ranks back.
  for (std::uint32_t k = 2; k <= 5; ++k) {
    for (std::uint32_t n = 1; n <= 6; ++n) {
      const MultisetCodec codec{k, n};
      const std::uint64_t total = codec.count().to_u64();
      std::set<std::vector<Symbol>> seen;
      for (std::uint64_t r = 0; r < total; ++r) {
        const Multiset m = codec.unrank(BigUint{r});
        EXPECT_EQ(m.size(), n);
        EXPECT_EQ(m.universe(), k);
        EXPECT_EQ(codec.rank(m).to_u64(), r);
        seen.insert(m.to_sorted_sequence());
      }
      EXPECT_EQ(seen.size(), total) << "unrank must be injective, k=" << k << " n=" << n;
    }
  }
}

TEST(MultisetCodec, RankIsLexOrderOfSortedSequences) {
  // Unranking consecutive ranks yields lexicographically increasing
  // canonical sequences.
  const MultisetCodec codec{4, 3};
  std::vector<Symbol> prev;
  const std::uint64_t total = codec.count().to_u64();
  for (std::uint64_t r = 0; r < total; ++r) {
    const std::vector<Symbol> cur = codec.unrank(BigUint{r}).to_sorted_sequence();
    if (r > 0) {
      EXPECT_TRUE(std::lexicographical_compare(prev.begin(), prev.end(), cur.begin(), cur.end()))
          << "rank " << r;
    }
    prev = cur;
  }
}

TEST(MultisetCodec, ExtremeRanks) {
  const MultisetCodec codec{5, 4};
  // Rank 0 is the all-zeros multiset; the max rank is all (k-1)s.
  EXPECT_EQ(codec.unrank(BigUint{}).to_sorted_sequence(), (std::vector<Symbol>{0, 0, 0, 0}));
  const BigUint last = codec.count() - BigUint{1};
  EXPECT_EQ(codec.unrank(last).to_sorted_sequence(), (std::vector<Symbol>{4, 4, 4, 4}));
}

TEST(MultisetCodec, RankRejectsWrongShape) {
  const MultisetCodec codec{3, 4};
  Multiset wrong_universe{4};
  for (int i = 0; i < 4; ++i) wrong_universe.add(0);
  EXPECT_THROW((void)codec.rank(wrong_universe), ContractViolation);
  Multiset wrong_size{3};
  wrong_size.add(0);
  EXPECT_THROW((void)codec.rank(wrong_size), ContractViolation);
  EXPECT_THROW((void)codec.unrank(codec.count()), ContractViolation);  // out of range
}

TEST(MultisetCodec, RandomRoundTripLargeParameters) {
  // Large (k, n) where μ is astronomically big: round-trip random ranks.
  Rng rng{0x5EED};
  const MultisetCodec codec{16, 64};  // μ_16(64) ≈ 2^49.6
  const std::size_t bits = codec.count().bit_length() - 1;
  for (int iter = 0; iter < 200; ++iter) {
    BigUint r{rng.next_u64()};
    r = r % codec.count();
    const Multiset m = codec.unrank(r);
    EXPECT_EQ(m.size(), 64u);
    EXPECT_EQ(codec.rank(m), r);
  }
  EXPECT_GE(bits, 45u);
}

TEST(MultisetCodec, HugeParametersStayExact) {
  // δ=256, k=64: μ has hundreds of bits; identity must still hold exactly.
  const MultisetCodec codec{64, 256};
  const BigUint probe = codec.count() - BigUint{12345};
  EXPECT_EQ(codec.rank(codec.unrank(probe)), probe);
  EXPECT_GT(codec.count().bit_length(), 100u);
}

TEST(MultisetCodec, FromCountsAgreesWithRepeatedAdd) {
  Multiset m{5};
  m.add(1);
  m.add(1);
  m.add(4);
  EXPECT_EQ(Multiset::from_counts({0, 2, 0, 0, 1}), m);
  EXPECT_EQ(Multiset::from_counts({0, 2, 0, 0, 1}).size(), 3u);
  EXPECT_THROW((void)Multiset::from_counts({}), ContractViolation);
}

TEST(MultisetCodec, FastPathsAgreeWithReferenceRandomized) {
  // Property test for the cumulative-table fast paths: over randomized
  // (k ≤ 64, n ≤ 32) parameter points and both multiset distributions that
  // occur in practice (uniform random symbols, and uniform random ranks —
  // the block-decoder's workload), rank/unrank must agree exactly with the
  // original recurrence-walk implementations and round-trip.
  Rng rng{0xFA57'7AB1};
  for (int iter = 0; iter < 300; ++iter) {
    const auto k = static_cast<std::uint32_t>(1 + rng.next_below(64));
    const auto n = static_cast<std::uint32_t>(rng.next_below(33));
    const MultisetCodec codec{k, n};

    Multiset m{k};
    for (std::uint32_t j = 0; j < n; ++j) {
      m.add(static_cast<Symbol>(rng.next_below(k)));
    }
    const BigUint r = codec.rank(m);
    EXPECT_EQ(r, codec.rank_reference(m)) << "k=" << k << " n=" << n;
    EXPECT_EQ(codec.unrank(r), m) << "k=" << k << " n=" << n;
    EXPECT_EQ(codec.unrank_reference(r), m) << "k=" << k << " n=" << n;

    const BigUint v = BigUint{rng.next_u64()} % codec.count();
    const Multiset u = codec.unrank(v);
    EXPECT_EQ(u, codec.unrank_reference(v)) << "k=" << k << " n=" << n;
    EXPECT_EQ(codec.rank(u), v) << "k=" << k << " n=" << n;
    EXPECT_EQ(codec.rank_reference(u), v) << "k=" << k << " n=" << n;
  }
}

TEST(MultisetCodec, FastPathsAgreeWithReferenceExhaustiveSmall) {
  // Exhaustive differential check where full enumeration is affordable:
  // every rank of every small (k, n) decodes identically via both paths.
  for (std::uint32_t k = 1; k <= 6; ++k) {
    for (std::uint32_t n = 0; n <= 5; ++n) {
      const MultisetCodec codec{k, n};
      const std::uint64_t total = codec.count().to_u64();
      for (std::uint64_t r = 0; r < total; ++r) {
        const Multiset m = codec.unrank(BigUint{r});
        ASSERT_EQ(m, codec.unrank_reference(BigUint{r})) << "k=" << k << " n=" << n;
        ASSERT_EQ(codec.rank(m), codec.rank_reference(m)) << "k=" << k << " n=" << n;
      }
    }
  }
}

TEST(BitsConversion, RoundTrip) {
  Rng rng{77};
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t width = 1 + rng.next_below(120);
    std::vector<std::uint8_t> bits(width);
    for (auto& b : bits) b = rng.next_bool() ? 1 : 0;
    const BigUint v = bits_to_biguint(bits);
    EXPECT_EQ(biguint_to_bits(v, width), bits);
  }
}

TEST(BitsConversion, Checks) {
  const std::uint8_t bad[] = {0, 2, 1};
  EXPECT_THROW((void)bits_to_biguint(bad), ContractViolation);
  EXPECT_THROW((void)biguint_to_bits(BigUint{4}, 2), ContractViolation);  // needs 3 bits
  EXPECT_EQ(biguint_to_bits(BigUint{}, 3), (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(BitsConversion, MsbFirst) {
  const std::uint8_t bits[] = {1, 0, 1};  // 0b101 = 5
  EXPECT_EQ(bits_to_biguint(bits).to_u64(), 5u);
}

}  // namespace
}  // namespace rstp::combinatorics
