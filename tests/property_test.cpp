// Randomized property tests over the whole stack. Every case is seeded and
// reproducible; the trace verifier (independently implemented) is the oracle.
//
// Properties checked, per the paper's problem statement (§4):
//   P1  Safety: at every moment Y is a prefix of X (checked by the verifier
//       on the full trace, plus on corrupted variants it must reject).
//   P2  Liveness: every good execution completes with Y = X.
//   P3  Model conformance: every simulator-produced execution is in good(A).
//   P4  Effort: worst-case measurements sit between the Theorem 5.3/5.6
//       lower bounds and the Lemma 6.1/§6.2 upper bounds.
//   P5  Determinism: identical seeds give identical executions.
//   P6  Safety under faults: fault-free fuzzed schedules satisfy P1–P3, and
//       with fault injection on, the verifier never reports a safety
//       violation that is not preceded by an injected-fault event.
//   P7  Synthesized schedules: every randomly generated legal ScheduleGenome
//       passes the legality checker and drives correct, quiescent in-model
//       runs; every illegal genome is rejected with a structured defect
//       naming the offending field and slot.
//   P8  Self-tuning: on random stationary in-model environments the online
//       (ĉ1, ĉ2, d̂) estimates bracket the realized channel (ĉ1 never above
//       the realized minimum gap; ĉ2/d̂ at or above the realized constants
//       whenever the environment pins them), every estimator-driven run
//       satisfies the verifier, and adversarial drift never drives the
//       estimator into an illegal state (ĉ1 > ĉ2 or d̂ < ĉ2).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "rstp/channel/synthesized.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/drift.h"
#include "rstp/core/verify.h"
#include "rstp/est/runner.h"
#include "rstp/obs/diff.h"
#include "rstp/protocols/factory.h"
#include "rstp/sim/campaign.h"
#include "rstp/sim/campaign_bench.h"
#include "rstp/sim/adversary.h"
#include "rstp/sim/fuzz.h"
#include "support/gen.h"

namespace rstp::core {
namespace {

using protocols::ProtocolKind;
using test::random_environment;
using test::random_params;

class RandomizedRuns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedRuns, SafetyLivenessAndModelConformance) {
  Rng rng{GetParam()};
  const TimingParams params = random_params(rng);
  const std::uint32_t k = static_cast<std::uint32_t>(rng.next_in(2, 12));
  const std::size_t n = static_cast<std::size_t>(rng.next_in(0, 80));
  const Environment env = random_environment(rng);

  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = k;
  cfg.input = make_random_input(n, rng.next_u64());

  for (const auto kind : protocols::kPaperProtocolKinds) {
    SCOPED_TRACE(std::string(protocols::to_string(kind)) + " seed=" +
                 std::to_string(GetParam()));
    const ProtocolRun run = run_protocol(kind, cfg, env);
    EXPECT_TRUE(run.result.quiescent);     // P2: terminates
    EXPECT_TRUE(run.output_correct);       // P2: Y == X
    const VerifyResult verdict = verify_trace(run.result.trace, params, cfg.input);
    EXPECT_TRUE(verdict.ok()) << verdict;  // P1 + P3
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRuns, ::testing::Range<std::uint64_t>(0, 25));

TEST(Determinism, IdenticalSeedsGiveIdenticalTraces) {
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 3, 7);
  cfg.k = 4;
  cfg.input = make_random_input(30, 1);
  const Environment env = Environment::randomized(1234);
  const ProtocolRun a = run_protocol(ProtocolKind::Gamma, cfg, env);
  const ProtocolRun b = run_protocol(ProtocolKind::Gamma, cfg, env);
  ASSERT_EQ(a.result.trace.size(), b.result.trace.size());
  EXPECT_EQ(a.result.trace.events(), b.result.trace.events());
}

TEST(Determinism, DifferentSeedsDiverge) {
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 3, 7);
  cfg.k = 4;
  cfg.input = make_random_input(30, 1);
  const ProtocolRun a = run_protocol(ProtocolKind::Gamma, cfg, Environment::randomized(1));
  const ProtocolRun b = run_protocol(ProtocolKind::Gamma, cfg, Environment::randomized(2));
  EXPECT_NE(a.result.trace.events(), b.result.trace.events());
}

TEST(VerifierAsOracle, RejectsTamperedTraces) {
  // Take a genuinely good trace and corrupt it in several distinct ways; the
  // verifier must notice each. This guards the guard.
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = make_random_input(20, 2);
  const ProtocolRun run = run_protocol(ProtocolKind::Beta, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  const auto& events = run.result.trace.events();
  ASSERT_TRUE(verify_trace(run.result.trace, cfg.params, cfg.input).ok());

  // Corruption 1: flip one written bit.
  {
    ioa::TimedTrace tampered;
    bool flipped = false;
    for (auto e : events) {
      if (!flipped && e.action.kind == ioa::ActionKind::Write) {
        e.action.message ^= 1;
        flipped = true;
      }
      tampered.append(e);
    }
    ASSERT_TRUE(flipped);
    EXPECT_FALSE(verify_trace(tampered, cfg.params, cfg.input).ok());
  }
  // Corruption 2: delete one recv (packet never delivered).
  {
    ioa::TimedTrace tampered;
    bool skipped = false;
    for (const auto& e : events) {
      if (!skipped && e.action.kind == ioa::ActionKind::Recv) {
        skipped = true;
        continue;
      }
      tampered.append(e);
    }
    const VerifyResult verdict = verify_trace(tampered, cfg.params, cfg.input);
    EXPECT_FALSE(verdict.clean_of(ViolationKind::UndeliveredPacket));
  }
  // Corruption 3: retime a recv past its deadline.
  {
    ioa::TimedTrace tampered;
    for (const auto& e : events) {
      if (e.action.kind == ioa::ActionKind::Recv) {
        // Move every recv to the very end of the execution, far past d.
        continue;
      }
      tampered.append(e);
    }
    const Time late = run.result.end_time + Duration{1000};
    std::uint64_t seq = events.back().seq;
    for (const auto& e : events) {
      if (e.action.kind == ioa::ActionKind::Recv) {
        tampered.append({late, e.actor, e.action, ++seq});
      }
    }
    const VerifyResult verdict = verify_trace(tampered, cfg.params, cfg.input);
    EXPECT_FALSE(verdict.clean_of(ViolationKind::DeliveryTooLate));
  }
}

TEST(EffortProperty, MeasuredAlwaysInsideTheoremBand) {
  Rng rng{0xEFF0};
  for (int trial = 0; trial < 12; ++trial) {
    const TimingParams params = random_params(rng);
    const std::uint32_t k = static_cast<std::uint32_t>(rng.next_in(2, 16));
    const BoundsReport bounds = compute_bounds(params, k);
    SCOPED_TRACE([&] {
      std::ostringstream os;
      os << params << " k=" << k;
      return os.str();
    }());

    // Bounds assume block-aligned |X| (the paper's mod-B assumption).
    const auto beta = measure_effort(ProtocolKind::Beta, params, k,
                                     bounds.beta_bits_per_block * 30,
                                     Environment::worst_case(), rng.next_u64());
    ASSERT_TRUE(beta.output_correct);
    EXPECT_LE(beta.effort, bounds.beta_upper * (1 + 1e-9));

    const auto gamma = measure_effort(ProtocolKind::Gamma, params, k,
                                      bounds.gamma_bits_per_block * 30,
                                      Environment::worst_case(), rng.next_u64());
    ASSERT_TRUE(gamma.output_correct);
    EXPECT_LE(gamma.effort, bounds.gamma_upper * (1 + 1e-9));

    const auto alpha = measure_effort(ProtocolKind::Alpha, params, 2, 300,
                                      Environment::worst_case(), rng.next_u64());
    ASSERT_TRUE(alpha.output_correct);
    EXPECT_LE(alpha.effort, bounds.alpha_effort * (1 + 1e-9));
  }
}

TEST(PrefixProperty, HoldsAtEveryIntermediatePoint) {
  // Replay a trace event-by-event and check the prefix invariant after each
  // write — stronger than only checking the final output.
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(2, 3, 9);
  cfg.k = 8;
  cfg.input = make_random_input(60, 3);
  for (const auto kind : protocols::kPaperProtocolKinds) {
    const ProtocolRun run = run_protocol(kind, cfg, Environment::randomized(5));
    std::size_t written = 0;
    for (const auto& e : run.result.trace.events()) {
      if (e.action.kind == ioa::ActionKind::Write) {
        ASSERT_LT(written, cfg.input.size()) << protocols::to_string(kind);
        EXPECT_EQ(e.action.message, cfg.input[written]) << protocols::to_string(kind);
        ++written;
      }
    }
    EXPECT_EQ(written, cfg.input.size()) << protocols::to_string(kind);
  }
}

TEST(Determinism, CampaignMetricsDiffToZeroAcrossSchedulesAndTimers) {
  // P5 end to end through the diff layer: the same campaign run twice —
  // different worker counts, and with the wall-clock phase timers armed the
  // second time — must produce series whose diff is empty. This is the exact
  // property the golden-baseline gate (rstp report --fail-on) relies on.
  const sim::Campaign campaign{sim::golden_campaign_spec()};
  const std::size_t input_bits = campaign.spec().input_bits;
  const auto first = sim::campaign_metrics_records(campaign.run(1), input_bits);

  obs::reset_phase_totals();
  obs::set_phase_timing_enabled(true);
  const auto second = sim::campaign_metrics_records(campaign.run(3), input_bits);
  obs::set_phase_timing_enabled(false);
  obs::reset_phase_totals();

  const obs::DiffReport report = obs::diff_metrics(first, second);
  EXPECT_EQ(report.matched, first.size());
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const obs::QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(SafetyUnderFaults, FaultFreeFuzzedSchedulesSatisfyTheProblem) {
  // P6, first half: the fuzzer's mutated schedules/timings stay inside
  // good(A) when no faults are injected, so every correct protocol must
  // come through with zero failures — and each corpus entry must satisfy
  // P1–P3 under the plain (fault-blind) verifier.
  for (const auto kind : protocols::kPaperProtocolKinds) {
    SCOPED_TRACE(protocols::to_string(kind));
    sim::FuzzSpec spec;
    spec.protocol = kind;
    spec.seed = 61;
    spec.budget = 48;
    const sim::FuzzResult result = sim::run_fuzz(spec);
    EXPECT_TRUE(result.ok()) << result.failures.size() << " failures, first: "
                             << (result.failures.empty() ? ""
                                                         : result.failures[0].result.failure);
    ASSERT_EQ(result.corpus.size(), result.corpus_results.size());
    for (const sim::FuzzCaseResult& r : result.corpus_results) {
      EXPECT_FALSE(r.crashed) << r.failure;
      EXPECT_TRUE(r.quiescent);          // P2: terminates
      EXPECT_TRUE(r.unexcused.empty());  // P1 + P3 (no faults => nothing excused)
      EXPECT_EQ(r.excused, 0u);
      EXPECT_EQ(r.fault_events, 0u);
    }
  }
}

TEST(SafetyUnderFaults, NoSafetyViolationWithoutAPrecedingFault) {
  // P6, second half: drive correct protocols through fault-injecting
  // channels. Wrong output (OutputNotPrefix) is allowed only when a fault
  // event precedes the offending write — an unexcused safety violation
  // would mean the protocol corrupted Y all by itself.
  Rng rng{4242};
  for (const auto kind : protocols::kPaperProtocolKinds) {
    for (int i = 0; i < 12; ++i) {
      sim::FuzzCase c;
      c.protocol = kind;
      c.params = test::random_params(rng);
      c.k = 4;
      c.input_bits = 16;
      c.input_seed = rng.next_u64();
      c.sched_seed_t = rng.next_u64();
      c.sched_seed_r = rng.next_u64();
      c.delay_seed = rng.next_u64();
      c.faults_enabled = true;
      c.fault_seed = rng.next_u64();
      c.rates.drop_pm = 60;
      c.rates.duplicate_pm = 60;
      c.rates.late_pm = 60;
      c.rates.corrupt_pm = 60;
      c.rates.corrupt_space = c.k;
      c.max_events = 20'000;
      SCOPED_TRACE(std::string(protocols::to_string(kind)) + " i=" + std::to_string(i));
      const sim::FuzzCaseResult r = sim::run_fuzz_case(c);
      ASSERT_FALSE(r.invalid);
      EXPECT_FALSE(r.failed) << r.failure;
      for (const Violation& v : r.unexcused) {
        EXPECT_NE(v.kind, ViolationKind::OutputNotPrefix)
            << "unexcused safety violation: " << v;
      }
    }
  }
}

/// A uniformly random *legal* genome for `params`: every table entry drawn
/// from exactly the interval the model allows.
channel::ScheduleGenome random_legal_genome(Rng& rng, const TimingParams& params) {
  channel::ScheduleGenome g;
  const auto fill = [&](std::vector<Duration>& table, std::int64_t lo, std::int64_t hi) {
    table.clear();
    const auto len = static_cast<std::size_t>(rng.next_in(1, 6));
    for (std::size_t i = 0; i < len; ++i) table.push_back(Duration{rng.next_in(lo, hi)});
  };
  fill(g.delays, 0, params.d.ticks());
  g.order_keys.clear();
  const auto keys = static_cast<std::size_t>(rng.next_in(1, 6));
  for (std::size_t i = 0; i < keys; ++i) g.order_keys.push_back(rng.next_below(64));
  g.t_first = Duration{rng.next_in(0, params.c2.ticks())};
  g.r_first = Duration{rng.next_in(0, params.c2.ticks())};
  fill(g.t_gaps, params.c1.ticks(), params.c2.ticks());
  fill(g.r_gaps, params.c1.ticks(), params.c2.ticks());
  return g;
}

TEST(SynthesizedSchedules, RandomLegalGenomesPassTheCheckerAndRunInModel) {
  // P7, first half: any genome whose entries respect the model's intervals
  // is (a) accepted by check_genome and (b) an environment the paper's
  // protocols handle — correct, quiescent runs, exactly like any other
  // point of good(A).
  Rng rng{9091};
  for (const auto kind : protocols::kPaperProtocolKinds) {
    for (int i = 0; i < 8; ++i) {
      SCOPED_TRACE(std::string(protocols::to_string(kind)) + " i=" + std::to_string(i));
      const TimingParams params = random_params(rng);
      const channel::ScheduleGenome genome = random_legal_genome(rng, params);
      const channel::GenomeCheck check = channel::check_genome(genome, params);
      ASSERT_TRUE(check.ok()) << check.defects.size() << " defects, first: "
                              << (check.defects.empty() ? "" : check.defects[0].reason);

      sim::AdversaryCell cell;
      cell.protocol = kind;
      cell.params = params;
      cell.k = static_cast<std::uint32_t>(rng.next_in(2, 8));
      cell.input_bits = static_cast<std::uint32_t>(rng.next_in(1, 24));
      const sim::GenomeEval eval = sim::evaluate_genome(cell, rng.next_u64(), genome);
      EXPECT_TRUE(eval.valid);
      EXPECT_TRUE(eval.correct);    // P1 + P2: Y == X
      EXPECT_TRUE(eval.quiescent);  // P2: terminates
    }
  }
}

TEST(SynthesizedSchedules, IllegalGenomesAreRejectedWithStructuredDefects) {
  // P7, second half: one mutation past each boundary, each reported against
  // the right field and slot — and every illegal genome is collectively
  // rejected by the throwing wrapper and the policy constructor.
  const TimingParams params = TimingParams::make(2, 3, 9);
  const channel::ScheduleGenome legal{{Duration{4}}, {0}, Duration{1}, Duration{2},
                                      {Duration{2}}, {Duration{3}}};
  ASSERT_TRUE(channel::check_genome(legal, params).ok());

  struct Break {
    const char* field;
    std::size_t index;
    channel::ScheduleGenome genome;
  };
  std::vector<Break> breaks;
  {
    channel::ScheduleGenome g = legal;
    g.delays = {Duration{0}, Duration{10}};  // d + 1, slot 1
    breaks.push_back({"delays", 1, g});
  }
  {
    channel::ScheduleGenome g = legal;
    g.delays = {Duration{-1}};
    breaks.push_back({"delays", 0, g});
  }
  {
    channel::ScheduleGenome g = legal;
    g.t_gaps = {Duration{2}, Duration{1}};  // below c1, slot 1
    breaks.push_back({"t_gaps", 1, g});
  }
  {
    channel::ScheduleGenome g = legal;
    g.r_gaps = {Duration{4}};  // above c2
    breaks.push_back({"r_gaps", 0, g});
  }
  {
    channel::ScheduleGenome g = legal;
    g.t_first = Duration{4};  // above c2
    breaks.push_back({"t_first", 0, g});
  }
  {
    channel::ScheduleGenome g = legal;
    g.order_keys.clear();  // empty table
    breaks.push_back({"order_keys", 0, g});
  }

  for (const Break& b : breaks) {
    SCOPED_TRACE(b.field);
    const channel::GenomeCheck check = channel::check_genome(b.genome, params);
    ASSERT_FALSE(check.ok());
    bool named = false;
    for (const channel::GenomeDefect& defect : check.defects) {
      if (defect.field == b.field && defect.index == b.index) named = true;
    }
    EXPECT_TRUE(named) << "no defect names " << b.field << "[" << b.index << "]";
    EXPECT_THROW(channel::validate_genome(b.genome, params), ModelError);
    EXPECT_THROW(channel::SynthesizedPolicy(b.genome, params), ContractViolation);
  }
}

TEST(EstimatorBracketing, StationaryInModelRunsBracketTheRealizedChannel) {
  // P8, first half. The estimator's gap hook sees exactly the samples the
  // gap histograms record (same simulator guard), so the histograms are the
  // realized truth to bracket against: ĉ1 must never exceed the realized
  // minimum gap, ĉ2 must cover a pinned-constant gap, and d̂ must cover d
  // whenever every delivery takes exactly d. Every estimator-driven run must
  // also come through correct, quiescent, and verifier-clean.
  Rng rng{0xE571};
  for (int trial = 0; trial < 10; ++trial) {
    const TimingParams params = random_params(rng);
    const std::uint32_t k = static_cast<std::uint32_t>(rng.next_in(2, 8));
    const std::size_t n = static_cast<std::size_t>(rng.next_in(8, 64));
    const Environment env = random_environment(rng);

    protocols::ProtocolConfig cfg;
    cfg.params = params;
    cfg.k = k;
    cfg.input = make_random_input(n, rng.next_u64());

    for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Gamma}) {
      SCOPED_TRACE(std::string(protocols::to_string(kind)) + " trial=" +
                   std::to_string(trial));
      const est::EstimatedRun er =
          est::run_estimated(kind, cfg, env, DriftSpec{}, true);
      EXPECT_TRUE(er.run.output_correct);
      EXPECT_TRUE(er.run.result.quiescent);
      const VerifyResult verdict = verify_trace(er.run.result.trace, params, cfg.input);
      EXPECT_TRUE(verdict.ok()) << verdict;

      // Legal state after any warm-up: 1 <= ĉ1 <= ĉ2 <= d̂.
      ASSERT_GE(er.gauges.c1_hat, 1);
      ASSERT_LE(er.gauges.c1_hat, er.gauges.c2_hat);
      ASSERT_LE(er.gauges.c2_hat, er.gauges.d_hat);

      const obs::Histogram& tg = er.run.result.metrics.transmitter_gap;
      const obs::Histogram& rg = er.run.result.metrics.receiver_gap;
      ASSERT_GT(tg.count() + rg.count(), 0u);
      std::int64_t realized_min = std::numeric_limits<std::int64_t>::max();
      std::int64_t realized_max = 0;
      for (const obs::Histogram* h : {&tg, &rg}) {
        if (h->count() == 0) continue;
        realized_min = std::min(realized_min, h->min());
        realized_max = std::max(realized_max, h->max());
      }
      // ĉ1 is a margin-shrunk running minimum: never above the realization.
      EXPECT_LE(er.gauges.c1_hat, realized_min);
      if (realized_min == params.c1.ticks()) {
        EXPECT_LE(er.gauges.c1_hat, params.c1.ticks());  // brackets the truth
      }
      if (realized_min == realized_max) {
        // Constant realized gaps: the EWMA sits on the value, so ĉ2 covers it.
        EXPECT_GE(er.gauges.c2_hat, realized_max);
      }
      if (env.delay == Environment::Delay::Max && er.gauges.delay_samples > 0) {
        EXPECT_GE(er.gauges.d_hat, params.d.ticks());  // d̂ covers the truth
      }
    }
  }
}

TEST(EstimatorBracketing, AdversarialDriftNeverDrivesTheEstimatorIllegal) {
  // P8, second half: scripted drift (including zero-delay segments and
  // clamped-out-of-envelope values) may cost effort, but it can never push
  // the estimates into an illegal state, and every drifting run must still
  // finish correctly inside good(A) for the envelope.
  Rng rng{0xD21F};
  for (int trial = 0; trial < 10; ++trial) {
    const TimingParams params = random_params(rng);

    DriftSpec drift;
    Time start = Time::zero();
    const auto segments = static_cast<std::size_t>(rng.next_in(1, 4));
    for (std::size_t s = 0; s < segments; ++s) {
      DriftSpec::Segment seg;
      seg.start = start;
      seg.d_eff = Duration{rng.next_in(0, 30)};  // may clamp at both ends
      if (rng.next_below(2) == 0) seg.c2_eff = Duration{rng.next_in(1, 10)};
      drift.segments.push_back(seg);
      start = start + Duration{rng.next_in(1, 200)};
    }
    drift.validate();

    protocols::ProtocolConfig cfg;
    cfg.params = params;
    cfg.k = static_cast<std::uint32_t>(rng.next_in(2, 8));
    cfg.input = make_random_input(static_cast<std::size_t>(rng.next_in(8, 48)),
                                  rng.next_u64());
    const Environment env = random_environment(rng);

    for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Gamma}) {
      SCOPED_TRACE(std::string(protocols::to_string(kind)) + " trial=" +
                   std::to_string(trial) + " drift=" + drift.to_string());
      const est::EstimatedRun er = est::run_estimated(kind, cfg, env, drift, true);
      EXPECT_TRUE(er.run.output_correct);
      EXPECT_TRUE(er.run.result.quiescent);
      // The illegal states P8 rules out: ĉ1 > ĉ2 or d̂ < ĉ2.
      ASSERT_GE(er.gauges.c1_hat, 1);
      ASSERT_LE(er.gauges.c1_hat, er.gauges.c2_hat);
      ASSERT_LE(er.gauges.c2_hat, er.gauges.d_hat);
      // Clamping keeps drifting executions inside the envelope's good(A).
      const VerifyResult verdict = verify_trace(er.run.result.trace, params, cfg.input);
      EXPECT_TRUE(verdict.ok()) << verdict;
    }
  }
}

}  // namespace
}  // namespace rstp::core
