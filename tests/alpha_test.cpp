// Tests for A^α (paper §4, Figure 1): the simple r-passive solution.
#include "rstp/protocols/alpha.h"

#include <gtest/gtest.h>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/sim/simulator.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

ProtocolConfig config_for(std::vector<Bit> input, std::int64_t c1 = 1, std::int64_t c2 = 2,
                          std::int64_t d = 4) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = 2;
  cfg.input = std::move(input);
  return cfg;
}

TEST(AlphaTransmitter, FollowsFigureOneStateMachine) {
  // c1=1, d=4 → ⌈d/c1⌉ = 4 steps per message: send, wait, wait, wait.
  AlphaTransmitter t{config_for({1, 0})};
  EXPECT_EQ(t.steps_per_message(), 4);

  auto a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::send(Packet::to_receiver(1)));
  t.apply(*a);
  for (int w = 0; w < 3; ++w) {
    a = t.enabled_local();
    ASSERT_TRUE(a.has_value()) << "wait step " << w;
    EXPECT_EQ(a->kind, ActionKind::Internal);
    t.apply(*a);
  }
  a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::send(Packet::to_receiver(0)));  // second message
  t.apply(*a);
  EXPECT_TRUE(t.transmission_complete());
  for (int w = 0; w < 3; ++w) {
    a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    t.apply(*a);
  }
  EXPECT_FALSE(t.enabled_local().has_value()) << "stopped after the final wait cycle";
  EXPECT_TRUE(t.quiescent());
}

TEST(AlphaTransmitter, DegenerateWaitOfOneStep) {
  // c1 = d → ⌈d/c1⌉ = 1: each send immediately unlocks the next message.
  AlphaTransmitter t{config_for({1, 1, 0}, /*c1=*/4, /*c2=*/4, /*d=*/4)};
  EXPECT_EQ(t.steps_per_message(), 1);
  for (int i = 0; i < 3; ++i) {
    const auto a = t.enabled_local();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::Send);
    t.apply(*a);
  }
  EXPECT_FALSE(t.enabled_local().has_value());
}

TEST(AlphaTransmitter, EmptyInputStopsImmediately) {
  AlphaTransmitter t{config_for({})};
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.quiescent());
  EXPECT_TRUE(t.transmission_complete());
}

TEST(AlphaTransmitter, RejectsNonEnabledActions) {
  AlphaTransmitter t{config_for({1})};
  EXPECT_THROW(t.apply(Action::send(Packet::to_receiver(0))), ContractViolation);  // wrong bit
  EXPECT_THROW(t.apply(Action::write(1)), ContractViolation);
}

TEST(AlphaReceiver, WritesInArrivalOrderOnePerStep) {
  AlphaReceiver r{config_for({})};
  // Initially idle.
  auto a = r.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, ActionKind::Internal);
  // Two packets arrive back-to-back (inputs, no step consumed).
  r.apply(Action::recv(Packet::to_receiver(1)));
  r.apply(Action::recv(Packet::to_receiver(0)));
  EXPECT_FALSE(r.quiescent());
  a = r.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::write(1));
  r.apply(*a);
  a = r.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::write(0));
  r.apply(*a);
  EXPECT_TRUE(r.quiescent());
  EXPECT_EQ(r.output(), (std::vector<Bit>{1, 0}));
}

TEST(AlphaReceiver, RejectsNonBinaryPackets) {
  AlphaReceiver r{config_for({})};
  EXPECT_THROW(r.apply(Action::recv(Packet::to_receiver(2))), ContractViolation);
}

TEST(AlphaEndToEnd, CorrectUnderWorstCase) {
  const auto input = core::make_random_input(64, 1);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Alpha, config_for(input), Environment::worst_case());
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const auto verdict = core::verify_trace(run.result.trace, config_for(input).params, input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(AlphaEndToEnd, EffortMatchesClosedForm) {
  // Worst case: ⌈d/c1⌉ steps of c2 each per message → effort = 4·2 = 8.
  const auto params = core::TimingParams::make(1, 2, 4);
  const auto m =
      core::measure_effort(ProtocolKind::Alpha, params, 2, 256, Environment::worst_case());
  EXPECT_TRUE(m.output_correct);
  ASSERT_TRUE(m.last_send.has_value());
  // t(last send) = (n-1) messages × 8 ticks (first send at t=0).
  EXPECT_EQ((*m.last_send - Time::zero()).ticks(), (256 - 1) * 8);
  EXPECT_NEAR(m.effort, 8.0, 8.0 / 256 + 1e-9);  // → d·c2/c1 as n→∞
}

TEST(AlphaEndToEnd, InOrderDeliveryEvenWithMaxDelay) {
  // Packets are ≥ d apart, so even max-delay delivery preserves order.
  const auto input = core::make_alternating_input(32);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Alpha, config_for(input), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
}

TEST(AlphaEndToEnd, CorrectUnderRandomizedEnvironments) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto input = core::make_random_input(40, seed);
    const core::ProtocolRun run = core::run_protocol(ProtocolKind::Alpha, config_for(input),
                                                     Environment::randomized(seed));
    EXPECT_TRUE(run.output_correct) << "seed " << seed;
    const auto verdict = core::verify_trace(run.result.trace, config_for(input).params, input);
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << '\n' << verdict;
  }
}

TEST(AlphaEndToEnd, SingleBitMessage) {
  const std::vector<Bit> input = {1};
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Alpha, config_for(input), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_EQ(run.result.transmitter_sends, 1u);
}

TEST(AlphaEndToEnd, EmptyMessage) {
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Alpha, config_for({}), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_EQ(run.result.transmitter_sends, 0u);
  EXPECT_TRUE(run.result.quiescent);
}

TEST(AlphaClone, SnapshotAndCloneAgree) {
  AlphaTransmitter t{config_for({1, 0, 1})};
  t.apply(*t.enabled_local());
  const auto copy = t.clone();
  EXPECT_EQ(copy->snapshot(), t.snapshot());
  // Advancing the copy must not affect the original.
  copy->apply(*copy->enabled_local());
  EXPECT_NE(copy->snapshot(), t.snapshot());
}

}  // namespace
}  // namespace rstp::protocols
