// The estimator suite (ctest -L est): unit pins on the EWMA estimator and
// the block planner, convergence pins on fixed seeds, drifting
// re-convergence after a breakpoint, the resize-at-block-boundary-only
// invariant, and the golden estimator grid's stationary-penalty budget plus
// its bitwise determinism across thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/core/drift.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/est/estimator.h"
#include "rstp/est/runner.h"
#include "rstp/sim/campaign.h"

namespace rstp::est {
namespace {

using protocols::ProtocolKind;

TEST(EstimatorConfig, ValidatesItsRanges) {
  EstimatorConfig good;
  good.validate();  // the defaults are legal

  EstimatorConfig bad = good;
  bad.margin = 1.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = good;
  bad.margin = -0.1;
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = good;
  bad.gain = 0.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = good;
  bad.var_gain = 1.5;
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = good;
  bad.max_block = 0;
  EXPECT_THROW(bad.validate(), ContractViolation);
}

TEST(TimingEstimator, NoSamplesGivesTheUnitProbe) {
  const TimingEstimator est{EstimatorConfig{}};
  const core::TimingParams p = est.estimate();
  EXPECT_EQ(p.c1.ticks(), 1);
  EXPECT_EQ(p.c2.ticks(), 1);
  EXPECT_EQ(p.d.ticks(), 1);
}

TEST(TimingEstimator, ConstantSamplesConvergeExactlyAtZeroMargin) {
  EstimatorConfig cfg;
  cfg.margin = 0.0;
  TimingEstimator est{cfg};
  for (int i = 0; i < 200; ++i) {
    est.observe_gap(Duration{2});
    est.observe_delay(Duration{6});
  }
  const core::TimingParams p = est.estimate();
  EXPECT_EQ(p.c1.ticks(), 2);  // running min of a constant stream
  EXPECT_EQ(p.c2.ticks(), 2);  // variance decays to 0, srtt sits on the value
  EXPECT_EQ(p.d.ticks(), 6);
  EXPECT_EQ(est.gap_samples(), 200u);
  EXPECT_EQ(est.delay_samples(), 200u);
}

TEST(TimingEstimator, MarginWidensTheBracketOnBothSides) {
  EstimatorConfig cfg;
  cfg.margin = 0.25;
  TimingEstimator est{cfg};
  for (int i = 0; i < 400; ++i) {
    est.observe_gap(Duration{4});
    est.observe_delay(Duration{8});
  }
  const core::TimingParams p = est.estimate();
  EXPECT_EQ(p.c1.ticks(), 3);   // floor(4 * 0.75): conservative from below
  EXPECT_EQ(p.c2.ticks(), 5);   // round(4 * 1.25): conservative from above
  EXPECT_EQ(p.d.ticks(), 10);   // round(8 * 1.25)
}

TEST(TimingEstimator, LegalityHoldsUnderAdversarialSampleStreams) {
  // The clamp chain must keep 1 <= c1 <= c2 <= d after *every* observation,
  // no matter how wild the sample sequence — this is the P8 illegal-state
  // guarantee at its source.
  Rng rng{0xAD5A};
  TimingEstimator est{EstimatorConfig{}};
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t magnitude = rng.next_in(0, 1'000'000);
    if (rng.next_below(2) == 0) {
      est.observe_gap(Duration{magnitude});
    } else {
      est.observe_delay(Duration{magnitude});
    }
    const core::TimingParams p = est.estimate();
    ASSERT_GE(p.c1.ticks(), 1) << "after sample " << i;
    ASSERT_LE(p.c1.ticks(), p.c2.ticks()) << "after sample " << i;
    ASSERT_LE(p.c2.ticks(), p.d.ticks()) << "after sample " << i;
  }
}

TEST(BlockPlanner, PlansAreFrozenAndResizeOnlyAtBoundaries) {
  // δ may change only when a *new* block is planned: once plan(j) is
  // computed it is frozen, however far the estimates move afterwards. This
  // is the resize-at-block-boundary-only invariant, checked at its source.
  EstimatorConfig cfg;
  cfg.margin = 0.0;
  auto est = std::make_shared<TimingEstimator>(cfg);
  for (int i = 0; i < 100; ++i) {
    est->observe_gap(Duration{2});
    est->observe_delay(Duration{6});
  }
  std::vector<ioa::Bit> input(40, 1);
  BlockPlanner planner{BlockPlanner::Discipline::TimedBlocks, 4, input, est};

  const BlockPlan& p0 = planner.plan(0);
  EXPECT_EQ(p0.delta, 3u);  // ceil(6/2) for the timed (β) discipline
  EXPECT_EQ(p0.wait, 3u);
  EXPECT_EQ(p0.first_bit, 0u);
  EXPECT_EQ(planner.resizes(), 0u);

  // Move the estimates dramatically; the frozen plan must not budge.
  for (int i = 0; i < 400; ++i) est->observe_delay(Duration{50});
  EXPECT_EQ(planner.plan(0).delta, 3u);
  EXPECT_EQ(planner.plan(0).symbols, p0.symbols);
  EXPECT_EQ(planner.resizes(), 0u);

  // The next boundary picks up the new d̂ — and counts as one resize.
  const BlockPlan& p1 = planner.plan(1);
  EXPECT_EQ(p1.delta, 25u);  // ceil(50/2)
  EXPECT_EQ(p1.first_bit, p0.bits);
  EXPECT_EQ(planner.resizes(), 1u);

  // Plans are computed sequentially: skipping ahead is a contract violation.
  EXPECT_THROW(planner.plan(3), ContractViolation);
}

TEST(BlockPlanner, AckedDisciplineUsesDelta2AndNeverWaits) {
  EstimatorConfig cfg;
  cfg.margin = 0.0;
  auto est = std::make_shared<TimingEstimator>(cfg);
  for (int i = 0; i < 100; ++i) {
    est->observe_gap(Duration{2});
    est->observe_delay(Duration{6});
  }
  std::vector<ioa::Bit> input(16, 0);
  BlockPlanner planner{BlockPlanner::Discipline::AckedBlocks, 4, input, est};
  const BlockPlan& p0 = planner.plan(0);
  EXPECT_EQ(p0.delta, 3u);  // floor(6/2) = δ2 for the acked (γ) discipline
  EXPECT_EQ(p0.wait, 0u);
}

TEST(DriftSpec, ParsesRoundTripsAndNamesBadTokens) {
  const core::DriftSpec spec = core::DriftSpec::parse("0:9,250:4:1,600:7");
  ASSERT_EQ(spec.segments.size(), 3u);
  EXPECT_EQ(spec.segments[0].start, Time{0});
  EXPECT_EQ(spec.segments[1].d_eff, Duration{4});
  EXPECT_EQ(spec.segments[1].c2_eff, Duration{1});
  EXPECT_FALSE(spec.segments[2].c2_eff.has_value());
  EXPECT_EQ(core::DriftSpec::parse(spec.to_string()), spec);

  const auto token_of = [](std::string_view text) {
    try {
      (void)core::DriftSpec::parse(text);
    } catch (const core::DriftParseError& e) {
      return e.token();
    }
    return std::string{"<no error>"};
  };
  EXPECT_EQ(token_of("nope"), "nope");
  EXPECT_EQ(token_of("0:9,250"), "250");
  EXPECT_EQ(token_of("0:x"), "0:x");
}

TEST(DriftSpec, ValidateRejectsIllegalSchedules) {
  EXPECT_THROW((void)core::DriftSpec::parse("5:3"), core::DriftParseError);      // must start at 0
  EXPECT_THROW((void)core::DriftSpec::parse("0:3,0:4"), core::DriftParseError);  // increasing
  core::DriftSpec hand_built;
  hand_built.segments.push_back({Time{3}, Duration{4}, std::nullopt});
  EXPECT_THROW(hand_built.validate(), ContractViolation);
}

TEST(Convergence, WorstCaseCellPinsExactEstimates) {
  // Under worst_case (gaps ≡ c2, delays ≡ d) with margin 0 the estimator
  // must land exactly on (c2, c2, d): the realized channel *is* the truth.
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(256, 1);
  EstimatorConfig est_cfg;
  est_cfg.margin = 0.0;
  const EstimatedRun run = run_estimated(ProtocolKind::Beta, cfg, core::Environment::worst_case(),
                                         core::DriftSpec{}, true, est_cfg);
  EXPECT_TRUE(run.run.output_correct);
  EXPECT_TRUE(run.run.result.quiescent);
  EXPECT_EQ(run.gauges.c1_hat, 2);
  EXPECT_EQ(run.gauges.c2_hat, 2);
  EXPECT_EQ(run.gauges.d_hat, 6);
  EXPECT_GT(run.gauges.gap_samples, 0u);
  EXPECT_GT(run.gauges.delay_samples, 0u);
  const core::VerifyResult verdict =
      core::verify_trace(run.run.result.trace, cfg.params, cfg.input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(Convergence, DriftingRunReconvergesAfterTheBreakpoint) {
  // True d drops 6 → 3 at t = 120; the EWMA must chase it back *down* (a
  // running max never would) and the run must still finish correctly.
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(64, 1);
  EstimatorConfig est_cfg;
  est_cfg.margin = 0.0;
  const core::DriftSpec drift = core::DriftSpec::parse("0:6,120:3");
  const EstimatedRun run = run_estimated(ProtocolKind::Gamma, cfg,
                                         core::Environment::worst_case(), drift, true, est_cfg);
  EXPECT_TRUE(run.run.output_correct);
  EXPECT_TRUE(run.run.result.quiescent);
  EXPECT_EQ(run.gauges.c2_hat, 2);
  EXPECT_EQ(run.gauges.d_hat, 3) << "d̂ did not re-converge to the post-breakpoint delay";
  // Drifting executions are clamped into the envelope, so the plain
  // verifier accepts them with no excusal machinery.
  const core::VerifyResult verdict =
      core::verify_trace(run.run.result.trace, cfg.params, cfg.input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(GoldenGrid, StationaryCellsStayWithinTheOraclePenaltyBudget) {
  // The acceptance bar: estimator-driven effort within 5% of the oracle on
  // every stationary cell of the golden grid. Drifting cells may pay more
  // (the estimator is chasing a moving target) but must stay correct.
  const sim::Campaign campaign{golden_estimator_spec()};
  const sim::CampaignResult result = campaign.run(2);
  EXPECT_EQ(result.incorrect, 0u);
  ASSERT_EQ(result.jobs.size(), campaign.job_count());
  for (const sim::CampaignJobResult& job : result.jobs) {
    ASSERT_GT(job.est_penalty, 0.0) << "job " << job.index;
    EXPECT_GE(job.est.c1_hat, 1) << "job " << job.index;
    EXPECT_LE(job.est.c1_hat, job.est.c2_hat) << "job " << job.index;
    EXPECT_LE(job.est.c2_hat, job.est.d_hat) << "job " << job.index;
    if (campaign.job(job.index).drift.empty()) {
      EXPECT_LE(job.est_penalty, 1.05)
          << "stationary job " << job.index << " exceeds the 5% oracle budget";
    }
  }
  EXPECT_GT(result.est_penalty.mean, 0.0);
  EXPECT_GE(result.est_penalty.max, result.est_penalty.mean);
}

TEST(GoldenGrid, BitwiseIdenticalAcrossThreadCounts) {
  // The estimator axis must not cost the campaign its determinism contract:
  // the whole CampaignResult (efforts, penalties, gauges, metrics) compares
  // equal for any worker count.
  const sim::Campaign campaign{golden_estimator_spec()};
  const sim::CampaignResult serial = campaign.run(1);
  EXPECT_EQ(serial, campaign.run(3));
  EXPECT_EQ(serial, campaign.run(8));
}

TEST(GoldenGrid, DisabledEstimatorMatchesThePlainRunner) {
  // run_estimated with no drift and no estimator is exactly
  // core::run_protocol — same seed stream, same trace.
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(2, 3, 9);
  cfg.k = 8;
  cfg.input = core::make_random_input(48, 7);
  const core::Environment env = core::Environment::randomized(99);
  const core::ProtocolRun plain = core::run_protocol(ProtocolKind::Gamma, cfg, env);
  const EstimatedRun est = run_estimated(ProtocolKind::Gamma, cfg, env, core::DriftSpec{}, false);
  EXPECT_EQ(plain.result.trace.events(), est.run.result.trace.events());
  EXPECT_EQ(est.gauges, obs::EstimatorGauges{});
}

TEST(PenaltyFold, GuardsTheZeroOracleDenominator) {
  // The healthy path: a plain ratio.
  EXPECT_DOUBLE_EQ(fold_est_penalty(200.0, 300.0), 1.5);
  EXPECT_DOUBLE_EQ(fold_est_penalty(100.0, 50.0), 0.5);  // below 1 is legitimate
  // Neither run sent: 0, the schema's "not applicable" value.
  EXPECT_DOUBLE_EQ(fold_est_penalty(0.0, 0.0), 0.0);
  // Only the oracle stayed silent: the raw ratio would be inf — the fold
  // must hand back the finite sentinel instead so est_penalty_max gates trip
  // loudly rather than choking on a non-finite JSON value.
  EXPECT_DOUBLE_EQ(fold_est_penalty(0.0, 300.0), kDegenerateEstPenalty);
  EXPECT_TRUE(std::isfinite(fold_est_penalty(0.0, 300.0)));
  EXPECT_TRUE(std::isfinite(kDegenerateEstPenalty));
}

}  // namespace
}  // namespace rstp::est
