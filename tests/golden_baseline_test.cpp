// The metrics regression gate, as a test: rerun the checked-in golden
// campaign grid (tests/golden/campaign_baseline.jsonl, produced by
// `rstp campaign --metrics-out`) and diff the fresh results against the
// committed file. Any delta means either a real behavior change (regenerate
// the baseline deliberately, with the diff in the commit message) or lost
// determinism — both things a reviewer must see. The baseline path is
// injected by CMake as RSTP_GOLDEN_BASELINE_PATH.
#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "rstp/est/runner.h"
#include "rstp/obs/diff.h"
#include "rstp/obs/sinks.h"
#include "rstp/sim/campaign.h"
#include "rstp/sim/campaign_bench.h"

namespace rstp {
namespace {

std::vector<obs::RunMetricsRecord> read_baseline() {
  std::ifstream in{RSTP_GOLDEN_BASELINE_PATH};
  EXPECT_TRUE(in.good()) << "cannot open " << RSTP_GOLDEN_BASELINE_PATH;
  return obs::read_run_metrics_jsonl(in);
}

std::vector<obs::RunMetricsRecord> rerun_golden_grid(unsigned threads) {
  const sim::Campaign campaign{sim::golden_campaign_spec()};
  const sim::CampaignResult result = campaign.run(threads);
  EXPECT_EQ(result.incorrect, 0u);
  return sim::campaign_metrics_records(result, sim::golden_campaign_spec().input_bits);
}

TEST(GoldenBaseline, CheckedInFileMatchesTheSpec) {
  const std::vector<obs::RunMetricsRecord> baseline = read_baseline();
  EXPECT_EQ(baseline.size(), sim::Campaign{sim::golden_campaign_spec()}.job_count());
}

TEST(GoldenBaseline, RerunningTheGridReproducesTheBaselineExactly) {
  const std::vector<obs::RunMetricsRecord> baseline = read_baseline();
  const obs::DiffReport report = diff_metrics(baseline, rerun_golden_grid(1));
  EXPECT_EQ(report.matched, baseline.size());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const obs::CellDiff& cell : report.cells) {
    ADD_FAILURE() << "cell " << cell.key.protocol << " seed " << cell.key.seed
                  << " drifted from the golden baseline (" << cell.deltas.size()
                  << " quantities); regenerate tests/golden/campaign_baseline.jsonl "
                     "only for a deliberate behavior change";
  }
  for (const obs::QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(GoldenBaseline, ThreadedRerunMatchesToo) {
  // The gate must hold regardless of worker count, or CI results would
  // depend on the runner's core count.
  const obs::DiffReport report = diff_metrics(read_baseline(), rerun_golden_grid(3));
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
}

// --- The estimator baseline (tests/golden/estimator_baseline.jsonl) -------
// Same gate, second grid: the 16-cell estimator sweep produced by
// `rstp campaign --estimator --metrics-out`, carrying per-cell est_penalty
// and the final estimator gauges. CI additionally holds the aggregate with
// `rstp report <baseline> <fresh> --fail-on 'est_penalty_max>5%'`.

std::vector<obs::RunMetricsRecord> read_estimator_baseline() {
  std::ifstream in{RSTP_GOLDEN_ESTIMATOR_BASELINE_PATH};
  EXPECT_TRUE(in.good()) << "cannot open " << RSTP_GOLDEN_ESTIMATOR_BASELINE_PATH;
  return obs::read_run_metrics_jsonl(in);
}

std::vector<obs::RunMetricsRecord> rerun_estimator_grid(unsigned threads) {
  const sim::Campaign campaign{est::golden_estimator_spec()};
  const sim::CampaignResult result = campaign.run(threads);
  EXPECT_EQ(result.incorrect, 0u);
  return sim::campaign_metrics_records(result, est::golden_estimator_spec().input_bits);
}

TEST(GoldenEstimatorBaseline, CheckedInFileMatchesTheSpec) {
  const std::vector<obs::RunMetricsRecord> baseline = read_estimator_baseline();
  EXPECT_EQ(baseline.size(), sim::Campaign{est::golden_estimator_spec()}.job_count());
  for (const obs::RunMetricsRecord& record : baseline) {
    EXPECT_GT(record.est_penalty, 0.0) << record.protocol << " seed " << record.seed;
    EXPECT_GE(record.est.c1_hat, 1);
  }
}

TEST(GoldenEstimatorBaseline, RerunningTheGridReproducesTheBaselineExactly) {
  const std::vector<obs::RunMetricsRecord> baseline = read_estimator_baseline();
  const obs::DiffReport report = diff_metrics(baseline, rerun_estimator_grid(1));
  EXPECT_EQ(report.matched, baseline.size());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const obs::CellDiff& cell : report.cells) {
    ADD_FAILURE() << "cell " << cell.key.protocol << " seed " << cell.key.seed
                  << " drifted from the estimator baseline (" << cell.deltas.size()
                  << " quantities); regenerate tests/golden/estimator_baseline.jsonl "
                     "only for a deliberate behavior change";
  }
  for (const obs::QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(GoldenEstimatorBaseline, ThreadedRerunMatchesToo) {
  const obs::DiffReport report =
      diff_metrics(read_estimator_baseline(), rerun_estimator_grid(3));
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
}

}  // namespace
}  // namespace rstp
