// Tests for the closed-form bounds (Theorems 5.3/5.6, Lemma 6.1, §6.2).
#include "rstp/core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"

namespace rstp::core {
namespace {

TEST(Bounds, DeltasMatchPaperWhenDivisible) {
  const auto params = TimingParams::make(2, 4, 8);
  const BoundsReport r = compute_bounds(params, 4);
  EXPECT_EQ(r.delta1, 4);       // d/c1
  EXPECT_EQ(r.delta1_wait, 4);  // equals δ1 when c1 | d
  EXPECT_EQ(r.delta2, 2);       // d/c2
}

TEST(Bounds, DeltasWithNonDividingRates) {
  const auto params = TimingParams::make(3, 4, 10);
  const BoundsReport r = compute_bounds(params, 4);
  EXPECT_EQ(r.delta1, 3);       // ⌊10/3⌋
  EXPECT_EQ(r.delta1_wait, 4);  // ⌈10/3⌉
  EXPECT_EQ(r.delta2, 2);       // ⌊10/4⌋
}

TEST(Bounds, AlphaEffortIsDC2OverC1) {
  const auto params = TimingParams::make(2, 3, 8);
  const BoundsReport r = compute_bounds(params, 2);
  // ⌈8/2⌉ · 3 = 12 = d·c2/c1.
  EXPECT_DOUBLE_EQ(r.alpha_effort, 12.0);
}

TEST(Bounds, ClosedFormsMatchDefinitions) {
  const auto params = TimingParams::make(1, 2, 6);
  const std::uint32_t k = 8;
  const BoundsReport r = compute_bounds(params, k);
  EXPECT_DOUBLE_EQ(r.passive_lower, 6.0 * 2.0 / combinatorics::log2_zeta(k, 6));
  EXPECT_DOUBLE_EQ(r.active_lower, 6.0 / combinatorics::log2_zeta(k, 3));
  EXPECT_DOUBLE_EQ(r.beta_upper,
                   2.0 * 6.0 * 2.0 / static_cast<double>(combinatorics::floor_log2_mu(k, 6)));
  EXPECT_DOUBLE_EQ(r.gamma_upper,
                   (3.0 * 6.0 + 2.0) / static_cast<double>(combinatorics::floor_log2_mu(k, 3)));
  EXPECT_DOUBLE_EQ(r.altbit_upper, 2.0 * 6.0 + 2.0 * 2.0);
}

TEST(Bounds, UpperBoundsDominateLowerBounds) {
  for (const std::uint32_t k : {2u, 4u, 16u, 64u}) {
    for (const std::int64_t d : {4, 16, 64}) {
      const auto params = TimingParams::make(1, 2, d);
      const BoundsReport r = compute_bounds(params, k);
      EXPECT_GE(r.beta_upper, r.passive_lower) << "k=" << k << " d=" << d;
      EXPECT_GE(r.gamma_upper, r.active_lower) << "k=" << k << " d=" << d;
      EXPECT_GT(r.passive_lower, 0.0);
      EXPECT_GT(r.active_lower, 0.0);
    }
  }
}

TEST(Bounds, OptimalityRatiosAreBoundedConstants) {
  // The paper's headline: the constructions are within a constant factor of
  // the lower bounds, for every k and every timing. Empirically the ratio
  // stays below ~10 across a wide grid (2 from the idle phase, the
  // ζ-vs-μ gap, and up to 2x more from ⌊log μ⌋ flooring when μ is tiny).
  for (const std::uint32_t k : {2u, 3u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    for (const std::int64_t d : {2, 4, 8, 16, 32, 64, 128}) {
      const auto params = TimingParams::make(1, 2, d);
      const BoundsReport r = compute_bounds(params, k);
      EXPECT_LT(r.passive_ratio(), 10.0) << "k=" << k << " d=" << d;
      EXPECT_LT(r.active_ratio(), 10.0) << "k=" << k << " d=" << d;
      EXPECT_GE(r.passive_ratio(), 1.0);
      EXPECT_GE(r.active_ratio(), 1.0);
    }
  }
}

TEST(Bounds, EffortDecreasesWithK) {
  // §6: the larger P^tr is, the less effort the solution requires.
  const auto params = TimingParams::make(1, 2, 32);
  double prev_beta = 1e300;
  double prev_gamma = 1e300;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const BoundsReport r = compute_bounds(params, k);
    EXPECT_LT(r.beta_upper, prev_beta) << "k=" << k;
    EXPECT_LE(r.gamma_upper, prev_gamma) << "k=" << k;
    prev_beta = r.beta_upper;
    prev_gamma = r.gamma_upper;
  }
}

TEST(Bounds, GammaBeatsBetaWhenTimingUncertaintyIsLarge) {
  // With c2/c1 large, passive waiting (δ1·c2-based) is expensive while the
  // active bound only pays 3d + c2.
  const auto params = TimingParams::make(1, 16, 16);
  const BoundsReport r = compute_bounds(params, 8);
  EXPECT_LT(r.gamma_upper, r.beta_upper);
}

TEST(Bounds, BetaBeatsGammaWhenTimingIsTight) {
  // With c1 = c2, the passive protocol pays 2δ steps of c1 while γ still
  // pays 3 full d's per block of fewer bits.
  const auto params = TimingParams::make(1, 1, 16);
  const BoundsReport r = compute_bounds(params, 8);
  EXPECT_LT(r.beta_upper, r.gamma_upper);
}

TEST(Bounds, InvalidParametersRejected) {
  EXPECT_THROW((void)compute_bounds(TimingParams{Duration{0}, Duration{1}, Duration{1}}, 2),
               ContractViolation);
  EXPECT_THROW((void)compute_bounds(TimingParams{Duration{2}, Duration{1}, Duration{3}}, 2),
               ContractViolation);
  EXPECT_THROW((void)compute_bounds(TimingParams{Duration{1}, Duration{2}, Duration{1}}, 2),
               ContractViolation);
  EXPECT_THROW((void)compute_bounds(TimingParams::make(1, 1, 4), 1), ContractViolation);
}

TEST(Bounds, AsymptoticFormPassive) {
  // Theorem 5.3 in Ω-form: lower bound ≈ δ1·c2 / log2 μ_k(δ1) up to the
  // ζ-vs-μ slack (ζ_k(n) ≤ n·μ_k(n) → log ζ ≤ log μ + log n).
  const auto params = TimingParams::make(1, 2, 64);
  const std::uint32_t k = 16;
  const BoundsReport r = compute_bounds(params, k);
  const double mu_form = 64.0 * 2.0 / combinatorics::log2_mu(k, 64);
  EXPECT_LE(r.passive_lower, mu_form + 1e-9);
  EXPECT_GE(r.passive_lower, mu_form * 0.7) << "log ζ and log μ differ by ≤ log δ1";
}

TEST(Bounds, StreamOutputMentionsKeyNumbers) {
  const BoundsReport r = compute_bounds(TimingParams::make(1, 2, 8), 4);
  std::ostringstream os;
  os << r;
  const std::string text = os.str();
  EXPECT_NE(text.find("delta1=8"), std::string::npos);
  EXPECT_NE(text.find("passive_lower"), std::string::npos);
  EXPECT_NE(text.find("gamma_upper"), std::string::npos);
}

}  // namespace
}  // namespace rstp::core
