// End-to-end fuzzer guarantees (label: fuzz):
//   * the checked-in golden failure (β mutant with a 1-step inter-block wait)
//     is rediscovered within a small fixed budget;
//   * its checked-in repro document replays to the identical verdict, bitwise;
//   * a freshly emitted repro round-trips through text and replays;
//   * the checked-in seed corpus parses and runs clean on the real protocol.
// Paths are injected by CMake: RSTP_GOLDEN_REPRO_PATH, RSTP_FUZZ_CORPUS_DIR.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rstp/sim/fuzz.h"

namespace rstp::sim {
namespace {

TEST(FuzzRepro, GoldenBrokenBetaReplaysBitwise) {
  std::ifstream in{RSTP_GOLDEN_REPRO_PATH};
  ASSERT_TRUE(in) << "missing golden repro: " << RSTP_GOLDEN_REPRO_PATH;
  const FuzzRepro repro = parse_fuzz_repro(in);
  EXPECT_EQ(repro.fuzz_case.protocol, protocols::ProtocolKind::Beta);
  EXPECT_EQ(repro.fuzz_case.wait_override, 1u);
  EXPECT_TRUE(repro.failed);

  const ReplayOutcome outcome = replay_fuzz_repro(repro);
  EXPECT_TRUE(outcome.reproduced) << outcome.mismatch;
  EXPECT_TRUE(outcome.result.failed);
  ASSERT_FALSE(outcome.result.unexcused.empty());
  // The mutant's signature: wrong output, not a channel-law artifact.
  EXPECT_EQ(outcome.result.unexcused.front().kind, core::ViolationKind::OutputNotPrefix);
}

TEST(FuzzRepro, FuzzerFindsTheBrokenBetaWithinBudget) {
  // The exact configuration documented in the golden file's header. The
  // budget is part of the determinism contract: same seed, same budget, the
  // bug is found every time, on any machine, at any --jobs.
  FuzzSpec spec;
  spec.protocol = protocols::ProtocolKind::Beta;
  spec.seed = 1;
  spec.budget = 64;
  spec.wait_override = 1;
  const FuzzResult result = run_fuzz(spec);
  ASSERT_FALSE(result.ok()) << "fuzzer missed the checked-in mutant bug";
  const FuzzFailure& failure = result.failures.front();
  EXPECT_TRUE(failure.result.failed);
  EXPECT_EQ(failure.minimized.wait_override, 1u);

  // The found failure, serialized and re-parsed, replays to the same verdict.
  std::stringstream buffer;
  write_fuzz_repro(buffer, failure.minimized, failure.result);
  const FuzzRepro repro = parse_fuzz_repro(buffer);
  const ReplayOutcome outcome = replay_fuzz_repro(repro);
  EXPECT_TRUE(outcome.reproduced) << outcome.mismatch;
}

TEST(FuzzRepro, ReplayDetectsATamperedVerdict) {
  std::ifstream in{RSTP_GOLDEN_REPRO_PATH};
  ASSERT_TRUE(in);
  FuzzRepro repro = parse_fuzz_repro(in);
  repro.output_hash ^= 1;  // recorded verdict no longer matches the run
  const ReplayOutcome outcome = replay_fuzz_repro(repro);
  EXPECT_FALSE(outcome.reproduced);
  EXPECT_NE(outcome.mismatch.find("output_hash"), std::string::npos) << outcome.mismatch;
}

TEST(FuzzRepro, SeedCorpusParsesAndRunsCleanOnCorrectBeta) {
  std::size_t cases = 0;
  for (const auto& entry : std::filesystem::directory_iterator{RSTP_FUZZ_CORPUS_DIR}) {
    if (entry.path().extension() != ".case") continue;
    SCOPED_TRACE(entry.path().string());
    std::ifstream in{entry.path()};
    ASSERT_TRUE(in);
    const FuzzCase c = parse_fuzz_case(in);
    const FuzzCaseResult r = run_fuzz_case(c);
    EXPECT_FALSE(r.invalid);
    EXPECT_FALSE(r.failed) << r.failure;  // correct β: faults excused or absent
    ++cases;
  }
  EXPECT_GE(cases, 3u) << "seed corpus went missing";
}

TEST(FuzzRepro, CorpusSeededCampaignStaysDeterministic) {
  // Seeding through spec.corpus_seeds must not disturb the determinism
  // guarantee (the CLI's --corpus path does exactly this).
  FuzzSpec spec;
  spec.protocol = protocols::ProtocolKind::Beta;
  spec.seed = 5;
  spec.budget = 32;
  for (const auto& entry : std::filesystem::directory_iterator{RSTP_FUZZ_CORPUS_DIR}) {
    if (entry.path().extension() != ".case") continue;
    std::ifstream in{entry.path()};
    spec.corpus_seeds.push_back(parse_fuzz_case(in));
  }
  std::sort(spec.corpus_seeds.begin(), spec.corpus_seeds.end(),
            [](const FuzzCase& a, const FuzzCase& b) { return a.input_seed < b.input_seed; });
  ASSERT_GE(spec.corpus_seeds.size(), 3u);

  spec.jobs = 1;
  const FuzzResult serial = run_fuzz(spec);
  spec.jobs = 4;
  const FuzzResult parallel = run_fuzz(spec);
  EXPECT_EQ(serial.executed, parallel.executed);
  EXPECT_EQ(serial.coverage_hash, parallel.coverage_hash);
  EXPECT_EQ(serial.corpus, parallel.corpus);
  EXPECT_TRUE(serial.ok());
}

}  // namespace
}  // namespace rstp::sim
