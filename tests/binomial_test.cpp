// Tests for the counting functions μ_k(n), ζ_k(n) (paper §3) and binomials.
#include "rstp/combinatorics/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rstp/common/check.h"

namespace rstp::combinatorics {
namespace {

using bigint::BigUint;

TEST(Binomial, SmallTable) {
  EXPECT_EQ(binomial(0, 0).to_u64(), 1u);
  EXPECT_EQ(binomial(5, 0).to_u64(), 1u);
  EXPECT_EQ(binomial(5, 5).to_u64(), 1u);
  EXPECT_EQ(binomial(5, 2).to_u64(), 10u);
  EXPECT_EQ(binomial(10, 3).to_u64(), 120u);
  EXPECT_EQ(binomial(52, 5).to_u64(), 2598960u);  // poker hands
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_TRUE(binomial(3, 4).is_zero());
  EXPECT_TRUE(binomial(0, 1).is_zero());
}

TEST(Binomial, SymmetryLaw) {
  for (std::uint64_t n = 0; n <= 30; ++n) {
    for (std::uint64_t r = 0; r <= n; ++r) {
      EXPECT_EQ(binomial(n, r), binomial(n, n - r)) << n << " choose " << r;
    }
  }
}

TEST(Binomial, PascalRecurrence) {
  for (std::uint64_t n = 1; n <= 40; ++n) {
    for (std::uint64_t r = 1; r <= n; ++r) {
      EXPECT_EQ(binomial(n, r), binomial(n - 1, r - 1) + binomial(n - 1, r));
    }
  }
}

TEST(Binomial, RowSumsArePowersOfTwo) {
  for (std::uint64_t n = 0; n <= 64; ++n) {
    BigUint sum;
    for (std::uint64_t r = 0; r <= n; ++r) sum += binomial(n, r);
    EXPECT_EQ(sum, BigUint::pow2(n)) << "row " << n;
  }
}

TEST(Binomial, LargeValueExact) {
  // C(200, 100), a 60-digit number (reference value from exact computation).
  EXPECT_EQ(binomial(200, 100).to_decimal(),
            "90548514656103281165404177077484163874504589675413336841320");
}

TEST(Mu, MatchesClosedForm) {
  // μ_k(n) = C(n+k-1, k-1).
  for (std::uint32_t k = 1; k <= 10; ++k) {
    for (std::uint32_t n = 0; n <= 12; ++n) {
      EXPECT_EQ(mu(k, n), binomial(n + k - 1, k - 1)) << "k=" << k << " n=" << n;
    }
  }
}

TEST(Mu, KnownValues) {
  EXPECT_EQ(mu(2, 3).to_u64(), 4u);    // {000,001,011,111}
  EXPECT_EQ(mu(3, 2).to_u64(), 6u);    // pairs over 3 symbols
  EXPECT_EQ(mu(1, 100).to_u64(), 1u);  // single symbol: one multiset
  EXPECT_EQ(mu(4, 0).to_u64(), 1u);    // the empty multiset
}

TEST(Mu, MonotoneInBothArguments) {
  // The paper uses μ_k(j) ≤ μ_k(j+1); also μ is monotone in k.
  for (std::uint32_t k = 2; k <= 8; ++k) {
    for (std::uint32_t n = 1; n <= 10; ++n) {
      EXPECT_LE(mu(k, n), mu(k, n + 1));
      EXPECT_LE(mu(k, n), mu(k + 1, n));
    }
  }
}

TEST(Zeta, MatchesDefinitionAndHockeyStick) {
  for (std::uint32_t k = 1; k <= 8; ++k) {
    for (std::uint32_t n = 0; n <= 10; ++n) {
      BigUint expected;
      for (std::uint32_t j = 1; j <= n; ++j) expected += mu(k, j);
      EXPECT_EQ(zeta(k, n), expected) << "k=" << k << " n=" << n;
      // Hockey-stick closed form: ζ_k(n) = C(n+k, k) − 1.
      EXPECT_EQ(zeta(k, n) + BigUint{1}, binomial(n + k, k));
    }
  }
}

TEST(Zeta, PaperInequality) {
  // §3: ζ_k(n) ≤ n·μ_k(n).
  for (std::uint32_t k = 2; k <= 8; ++k) {
    for (std::uint32_t n = 1; n <= 12; ++n) {
      EXPECT_LE(zeta(k, n), mu(k, n) * BigUint{n});
    }
  }
}

TEST(FloorLog2Mu, MatchesBitLength) {
  EXPECT_EQ(floor_log2_mu(2, 3), 2u);   // μ=4 → 2 bits
  EXPECT_EQ(floor_log2_mu(3, 2), 2u);   // μ=6 → 2 bits
  EXPECT_EQ(floor_log2_mu(2, 1), 1u);   // μ=2 → 1 bit
  EXPECT_EQ(floor_log2_mu(1, 5), 0u);   // μ=1 → 0 bits
  for (std::uint32_t k = 2; k <= 16; k *= 2) {
    for (std::uint32_t n = 1; n <= 20; ++n) {
      const double exact = log2_mu(k, n);
      const auto floor_val = static_cast<double>(floor_log2_mu(k, n));
      EXPECT_LE(floor_val, exact + 1e-9);
      EXPECT_GT(floor_val + 1.0, exact - 1e-9);
    }
  }
}

TEST(Log2, MuAndZetaConsistent) {
  // log2 ζ ≥ log2 μ (ζ includes μ's multisets), and both positive.
  for (std::uint32_t k = 2; k <= 12; ++k) {
    for (std::uint32_t n = 1; n <= 15; ++n) {
      EXPECT_GE(log2_zeta(k, n), log2_mu(k, n) - 1e-9);
      EXPECT_GT(log2_zeta(k, n), 0.0);
    }
  }
}

TEST(Log2, AgainstLgamma) {
  // Cross-check log2 μ_k(n) against lgamma-based floating binomials.
  for (std::uint32_t k = 2; k <= 64; k += 7) {
    for (std::uint32_t n = 1; n <= 64; n += 7) {
      const double expect = (std::lgamma(static_cast<double>(n + k)) -
                             std::lgamma(static_cast<double>(k)) -
                             std::lgamma(static_cast<double>(n + 1))) /
                            std::log(2.0);
      EXPECT_NEAR(log2_mu(k, n), expect, 1e-6) << "k=" << k << " n=" << n;
    }
  }
}

TEST(Counting, ContractViolations) {
  EXPECT_THROW((void)mu(0, 3), ContractViolation);
  EXPECT_THROW((void)zeta(0, 3), ContractViolation);
  EXPECT_THROW((void)log2_zeta(2, 0), ContractViolation);  // ζ_k(0)=0
}

}  // namespace
}  // namespace rstp::combinatorics
