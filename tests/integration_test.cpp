// Full-stack integration sweep: every paper protocol × every scheduler kind
// × every channel policy × a grid of timing parameters, each run checked for
// correctness and verified against good(A).
//
// This is the repository's main "the composition works" safety net: any
// regression in the simulator, channel, scheduler, coder, or a protocol
// surfaces here with the exact offending combination in the test name.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "rstp/channel/policies.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/protocols/factory.h"

namespace rstp::core {
namespace {

using protocols::ProtocolKind;

struct GridPoint {
  ProtocolKind kind;
  Environment::Sched sched;
  Environment::Delay delay;
};

std::string sched_name(Environment::Sched s) {
  switch (s) {
    case Environment::Sched::SlowFixed:
      return "slow";
    case Environment::Sched::FastFixed:
      return "fast";
    case Environment::Sched::Random:
      return "random";
    case Environment::Sched::Sawtooth:
      return "sawtooth";
  }
  return "?";
}

std::string delay_name(Environment::Delay d) {
  switch (d) {
    case Environment::Delay::Max:
      return "max";
    case Environment::Delay::Zero:
      return "zero";
    case Environment::Delay::Random:
      return "random";
    case Environment::Delay::Adversarial:
      return "adversarial";
  }
  return "?";
}

class FullStackSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(FullStackSweep, CorrectAndModelConformant) {
  const GridPoint point = GetParam();

  // The adversarial batch policy can legitimately defeat only the strawman
  // (covered in strawman_test); every paper protocol must survive it.
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = make_random_input(48, 0xAB);

  Environment env;
  env.transmitter_sched = point.sched;
  env.receiver_sched = point.sched;
  env.delay = point.delay;
  env.seed = 77;

  const ProtocolRun run = run_protocol(point.kind, cfg, env);
  EXPECT_TRUE(run.result.quiescent);
  EXPECT_TRUE(run.output_correct);
  const VerifyResult verdict = verify_trace(run.result.trace, cfg.params, cfg.input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

std::vector<GridPoint> make_grid() {
  std::vector<GridPoint> grid;
  for (const auto kind : protocols::kPaperProtocolKinds) {
    for (const auto sched : {Environment::Sched::SlowFixed, Environment::Sched::FastFixed,
                             Environment::Sched::Random, Environment::Sched::Sawtooth}) {
      for (const auto delay : {Environment::Delay::Max, Environment::Delay::Zero,
                               Environment::Delay::Random, Environment::Delay::Adversarial}) {
        grid.push_back({kind, sched, delay});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, FullStackSweep, ::testing::ValuesIn(make_grid()),
                         [](const auto& param_info) {
                           const GridPoint& p = param_info.param;
                           return std::string(protocols::to_string(p.kind)) + "_" +
                                  sched_name(p.sched) + "_" + delay_name(p.delay);
                         });

// Timing-parameter sweep at a fixed (protocol, environment): exercises
// non-dividing c1/c2, c1 = c2, c2 = d, and large-δ regimes.
class TimingSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(TimingSweep, AllProtocolsCorrect) {
  const auto [c1, c2, d] = GetParam();
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(c1, c2, d);
  cfg.k = 4;
  cfg.input = make_random_input(40, static_cast<std::uint64_t>(c1 * 100 + c2 * 10 + d));
  for (const auto kind : protocols::kPaperProtocolKinds) {
    const ProtocolRun run = run_protocol(kind, cfg, Environment::randomized(99));
    EXPECT_TRUE(run.output_correct) << protocols::to_string(kind);
    const VerifyResult verdict = verify_trace(run.result.trace, cfg.params, cfg.input);
    EXPECT_TRUE(verdict.ok()) << protocols::to_string(kind) << '\n' << verdict;
  }
}

std::string timing_name(
    const ::testing::TestParamInfo<std::tuple<std::int64_t, std::int64_t, std::int64_t>>& info) {
  return "c1_" + std::to_string(std::get<0>(info.param)) + "_c2_" +
         std::to_string(std::get<1>(info.param)) + "_d_" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    TimingGrid, TimingSweep,
    ::testing::Values(std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 1, 1},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 1, 8},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 8, 8},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{2, 3, 7},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{3, 5, 17},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 2, 32},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{4, 4, 4},
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>{2, 4, 12}),
    timing_name);

// Input-content sweep: pathological bit patterns across every protocol.
TEST(InputPatterns, AllProtocolsHandlePathologicalInputs) {
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 2, 6);
  cfg.k = 4;
  const std::vector<std::vector<ioa::Bit>> inputs = {
      {},                          // empty
      {0},                         // single zero
      {1},                         // single one
      make_constant_input(33, 0),  // all zeros (rank-0 blocks)
      make_constant_input(33, 1),  // all ones (high ranks)
      make_alternating_input(33),  // alternating
  };
  for (const auto& input : inputs) {
    cfg.input = input;
    for (const auto kind : protocols::kPaperProtocolKinds) {
      const ProtocolRun run = run_protocol(kind, cfg, Environment::worst_case());
      EXPECT_TRUE(run.output_correct)
          << protocols::to_string(kind) << " on input of size " << input.size();
    }
  }
}

// Remaining environment corners not covered by the enum sweeps above.
TEST(EnvironmentCorners, DescendingBatchAdversaryAlsoHarmless) {
  // The batch adversary's other canonical order (descending payload) erases
  // intra-window order just the same; multiset decoding must not care.
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 1, 8);
  cfg.k = 4;
  cfg.input = make_random_input(64, 0xDE5C);
  protocols::ProtocolInstance inst = protocols::make_protocol(ProtocolKind::Beta, cfg);
  auto ts = sim::make_fixed_rate(cfg.params.c1);
  auto rs = sim::make_fixed_rate(cfg.params.c1);
  channel::Channel chan{
      cfg.params.d,
      channel::make_adversarial_batch(cfg.params.c1 * cfg.params.delta1(), cfg.params.d,
                                      channel::AdversarialBatchPolicy::BatchOrder::DescendingPayload)};
  sim::SimConfig sc;
  sc.params = cfg.params;
  sim::Simulator sim{*inst.transmitter, *inst.receiver, chan, *ts, *rs, sc};
  const auto result = sim.run();
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.output, cfg.input);
  EXPECT_TRUE(verify_trace(result.trace, cfg.params, cfg.input).ok());
}

TEST(EnvironmentCorners, DriftSchedulerEndToEnd) {
  // Long runs of fast steps followed by long runs of slow steps (clock
  // drift); every protocol must hold up and the trace must stay in good(A).
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 3, 9);
  cfg.k = 4;
  cfg.input = make_random_input(48, 0xD21F7);
  for (const auto kind : protocols::kPaperProtocolKinds) {
    protocols::ProtocolInstance inst = protocols::make_protocol(kind, cfg);
    auto ts = sim::make_drift(cfg.params, 7);
    auto rs = sim::make_drift(cfg.params, 11);
    channel::Channel chan{cfg.params.d,
                          channel::make_uniform_random(5, Duration{0}, cfg.params.d, cfg.params.d)};
    sim::SimConfig sc;
    sc.params = cfg.params;
    sim::Simulator sim{*inst.transmitter, *inst.receiver, chan, *ts, *rs, sc};
    const auto result = sim.run();
    EXPECT_EQ(result.output, cfg.input) << protocols::to_string(kind);
    EXPECT_TRUE(verify_trace(result.trace, cfg.params, cfg.input).ok())
        << protocols::to_string(kind);
  }
}

TEST(EnvironmentCorners, SimulatorTracesPassTheStrictFirstStepCheck) {
  // The simulator starts processes at offset 0 (the paper's "starting at 0"),
  // so even the optional first-step-within-c2 check holds on its traces.
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(2, 3, 9);
  cfg.k = 4;
  cfg.input = make_random_input(20, 0xF125);
  const ProtocolRun run = run_protocol(ProtocolKind::Gamma, cfg, Environment::worst_case());
  ASSERT_TRUE(run.output_correct);
  VerifyOptions strict;
  strict.check_first_step = true;
  EXPECT_TRUE(verify_trace(run.result.trace, cfg.params, cfg.input, strict).ok());
}

// Large-scale smoke: a few thousand bits end-to-end stay exact.
TEST(Scale, ThousandsOfBitsRemainExact) {
  protocols::ProtocolConfig cfg;
  cfg.params = TimingParams::make(1, 2, 16);
  cfg.k = 16;
  cfg.input = make_random_input(5000, 0x5CA1E);
  for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Gamma}) {
    const ProtocolRun run = run_protocol(kind, cfg, Environment::worst_case(),
                                         /*record_trace=*/false);
    EXPECT_TRUE(run.output_correct) << protocols::to_string(kind);
    EXPECT_TRUE(run.result.quiescent);
  }
}

}  // namespace
}  // namespace rstp::core
