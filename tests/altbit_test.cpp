// Tests for the stop-and-wait / alternating-bit baseline ([BSW69]).
#include "rstp/protocols/altbit.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"

namespace rstp::protocols {
namespace {

using core::Environment;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

ProtocolConfig config_for(std::vector<Bit> input, std::int64_t c1 = 1, std::int64_t c2 = 2,
                          std::int64_t d = 5) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(c1, c2, d);
  cfg.k = 4;  // data payloads are bit|(seq<<1) ∈ {0..3}
  cfg.input = std::move(input);
  return cfg;
}

TEST(AltBitTransmitter, SendAwaitCycleWithAlternatingSeq) {
  AltBitTransmitter t{config_for({1, 0})};
  // Message 0: bit 1, seq 0 → payload 0b01 = 1.
  auto a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::send(Packet::to_receiver(1)));
  t.apply(*a);
  EXPECT_EQ(t.enabled_local()->kind, ActionKind::Internal);  // awaiting ack
  t.apply(Action::recv(Packet::to_transmitter(0)));          // ack seq 0
  // Message 1: bit 0, seq 1 → payload 0b10 = 2.
  a = t.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::send(Packet::to_receiver(2)));
  t.apply(*a);
  t.apply(Action::recv(Packet::to_transmitter(1)));  // ack seq 1
  EXPECT_FALSE(t.enabled_local().has_value());
  EXPECT_TRUE(t.quiescent());
}

TEST(AltBitTransmitter, WrongSeqAckIsContractViolation) {
  AltBitTransmitter t{config_for({1})};
  t.apply(*t.enabled_local());  // send (seq 0)
  EXPECT_THROW(t.apply(Action::recv(Packet::to_transmitter(1))), ContractViolation);
}

TEST(AltBitTransmitter, UnexpectedAckIsContractViolation) {
  AltBitTransmitter t{config_for({1})};
  // No outstanding message yet.
  EXPECT_THROW(t.apply(Action::recv(Packet::to_transmitter(0))), ContractViolation);
}

TEST(AltBitReceiver, AcceptsAndAcksEachMessage) {
  AltBitReceiver r{config_for({})};
  r.apply(Action::recv(Packet::to_receiver(0b01)));  // bit 1, seq 0
  // Ack comes before the write.
  auto a = r.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::send(Packet::to_transmitter(0)));
  r.apply(*a);
  a = r.enabled_local();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Action::write(1));
  r.apply(*a);
  EXPECT_TRUE(r.quiescent());
  r.apply(Action::recv(Packet::to_receiver(0b10)));  // bit 0, seq 1
  EXPECT_EQ(r.enabled_local()->kind, ActionKind::Send);
}

TEST(AltBitReceiver, SeqViolationDetected) {
  AltBitReceiver r{config_for({})};
  // First message must carry seq 0; seq 1 indicates a model violation.
  EXPECT_THROW(r.apply(Action::recv(Packet::to_receiver(0b10))), ContractViolation);
}

TEST(AltBitEndToEnd, CorrectAcrossEnvironments) {
  const auto input = core::make_random_input(30, 3);
  for (const auto& env : {Environment::worst_case(), Environment::randomized(5)}) {
    const auto cfg = config_for(input);
    const core::ProtocolRun run = core::run_protocol(ProtocolKind::AltBit, cfg, env);
    EXPECT_TRUE(run.result.quiescent);
    EXPECT_TRUE(run.output_correct);
    const auto verdict = core::verify_trace(run.result.trace, cfg.params, input);
    EXPECT_TRUE(verdict.ok()) << verdict;
  }
}

TEST(AltBitEndToEnd, OneRoundTripPerBit) {
  const auto params = core::TimingParams::make(1, 2, 5);
  const core::BoundsReport bounds = core::compute_bounds(params, 4);
  const auto m =
      core::measure_effort(ProtocolKind::AltBit, params, 4, 128, Environment::worst_case());
  EXPECT_TRUE(m.output_correct);
  EXPECT_EQ(m.transmitter_sends, 128u) << "exactly one data packet per bit";
  EXPECT_LE(m.effort, bounds.altbit_upper * (1.0 + 1e-9));
  // Effort must be at least one full round trip (2d) per bit.
  EXPECT_GE(m.effort, 2.0 * static_cast<double>(params.d.ticks()) * 0.9);
}

TEST(AltBitEndToEnd, GammaBeatsAltBitByAboutBitsPerBlock) {
  const auto params = core::TimingParams::make(1, 2, 8);
  const core::BoundsReport bounds = core::compute_bounds(params, 8);
  const auto alt =
      core::measure_effort(ProtocolKind::AltBit, params, 8, 256, Environment::worst_case());
  const auto gamma =
      core::measure_effort(ProtocolKind::Gamma, params, 8, 256, Environment::worst_case());
  ASSERT_TRUE(alt.output_correct);
  ASSERT_TRUE(gamma.output_correct);
  EXPECT_LT(gamma.effort, alt.effort);
  // The win factor is on the order of B = bits per block (within 3x slack).
  const double factor = alt.effort / gamma.effort;
  const auto B = static_cast<double>(bounds.gamma_bits_per_block);
  EXPECT_GT(factor, B / 3.0);
}

TEST(AltBitEndToEnd, SingleBit) {
  const std::vector<Bit> input = {0};
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::AltBit, config_for(input), Environment::worst_case());
  EXPECT_TRUE(run.output_correct);
  EXPECT_EQ(run.result.transmitter_sends, 1u);
  EXPECT_EQ(run.result.receiver_sends, 1u);
}

}  // namespace
}  // namespace rstp::protocols
