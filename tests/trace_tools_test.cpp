// Tests for trace serialization (ioa/trace_io) and statistics
// (core/trace_stats).
#include <gtest/gtest.h>

#include <sstream>

#include "rstp/common/check.h"
#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/trace_io.h"

namespace rstp {
namespace {

using core::Environment;
using ioa::Action;
using ioa::Actor;
using ioa::Packet;
using ioa::TimedTrace;
using protocols::ProtocolKind;

core::ProtocolRun sample_run(ProtocolKind kind = ProtocolKind::Gamma) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(24, 7);
  return core::run_protocol(kind, cfg, Environment::randomized(11));
}

TEST(TraceIo, RoundTripsARealExecution) {
  const core::ProtocolRun run = sample_run();
  ASSERT_TRUE(run.output_correct);
  const std::string text = ioa::trace_to_string(run.result.trace);
  const TimedTrace parsed = ioa::parse_trace_string(text);
  EXPECT_EQ(parsed.events(), run.result.trace.events());
}

TEST(TraceIo, ParsedTraceStillVerifies) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(24, 7);
  const core::ProtocolRun run = core::run_protocol(ProtocolKind::Gamma, cfg,
                                                   Environment::randomized(11));
  const TimedTrace parsed = ioa::parse_trace_string(ioa::trace_to_string(run.result.trace));
  const core::VerifyResult verdict = core::verify_trace(parsed, cfg.params, cfg.input);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(TraceIo, FormatIsHumanReadable) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(3)), 0});
  trace.append({at_tick(2), Actor::Channel, Action::recv(Packet::to_receiver(3)), 1});
  trace.append({at_tick(3), Actor::Receiver, Action::write(1), 2});
  trace.append({at_tick(4), Actor::Receiver, Action::internal(2, "idle_r"), 3});
  const std::string text = ioa::trace_to_string(trace);
  EXPECT_NE(text.find("0 0 t send tr 3"), std::string::npos) << text;
  EXPECT_NE(text.find("1 2 c recv tr 3"), std::string::npos);
  EXPECT_NE(text.find("2 3 r write 1"), std::string::npos);
  EXPECT_NE(text.find("3 4 r internal 2 idle_r"), std::string::npos);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const std::string text = "# header\n\n0 0 t send tr 1\n# trailing\n";
  const TimedTrace parsed = ioa::parse_trace_string(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].action, Action::send(Packet::to_receiver(1)));
}

TEST(TraceIo, MalformedInputRejected) {
  EXPECT_THROW((void)ioa::parse_trace_string("garbage\n"), ModelError);
  EXPECT_THROW((void)ioa::parse_trace_string("0 0 x send tr 1\n"), ModelError);
  EXPECT_THROW((void)ioa::parse_trace_string("0 0 t send sideways 1\n"), ModelError);
  EXPECT_THROW((void)ioa::parse_trace_string("0 0 t write 2\n"), ModelError);
  EXPECT_THROW((void)ioa::parse_trace_string("0 0 t explode\n"), ModelError);
  // Non-monotone times.
  EXPECT_THROW((void)ioa::parse_trace_string("0 5 t write 1\n1 4 t write 1\n"), ModelError);
}

TEST(TraceStats, GapAndDelayExtremesMatchTheEnvironment) {
  // Fixed-rate c2 scheduler + max-delay channel: every gap is exactly c2,
  // every delay exactly d.
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(20, 3);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Beta, cfg, Environment::worst_case());
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  ASSERT_TRUE(stats.transmitter.min_gap.has_value());
  EXPECT_EQ(*stats.transmitter.min_gap, cfg.params.c2);
  EXPECT_EQ(*stats.transmitter.max_gap, cfg.params.c2);
  ASSERT_TRUE(stats.data.min_delay.has_value());
  EXPECT_EQ(*stats.data.min_delay, cfg.params.d);
  EXPECT_EQ(*stats.data.max_delay, cfg.params.d);
  EXPECT_EQ(stats.data.unmatched_sends, 0u);
  EXPECT_EQ(stats.writes, 20u);
}

TEST(TraceStats, RandomDelaysSpanTheWindow) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 8);
  cfg.k = 8;
  cfg.input = core::make_random_input(300, 5);
  const core::ProtocolRun run =
      core::run_protocol(ProtocolKind::Gamma, cfg, Environment::randomized(9));
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  ASSERT_TRUE(stats.data.min_delay.has_value());
  EXPECT_LT(stats.data.min_delay->ticks(), 3);
  EXPECT_GT(stats.data.max_delay->ticks(), 5);
  EXPECT_GT(stats.data.mean_delay, 2.0);
  EXPECT_LT(stats.data.mean_delay, 6.0);
  // γ acknowledges everything.
  EXPECT_EQ(stats.acks.delivered, stats.data.delivered);
}

TEST(TraceStats, AcksTrackedSeparatelyFromData) {
  const core::ProtocolRun run = sample_run(ProtocolKind::Beta);
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  EXPECT_GT(stats.data.delivered, 0u);
  EXPECT_EQ(stats.acks.delivered, 0u);  // r-passive: no ack traffic
  EXPECT_FALSE(stats.acks.min_delay.has_value());
}

TEST(TraceStats, InFlightPeakRespectsGammaWindow) {
  const core::ProtocolRun run = sample_run(ProtocolKind::Gamma);
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  // δ2 = 3 data packets max, plus up to δ2 acks in flight.
  EXPECT_LE(stats.max_in_flight, 6u);
  EXPECT_GE(stats.max_in_flight, 1u);
}

TEST(TraceStats, EmptyTrace) {
  const core::TraceStats stats = core::compute_trace_stats(TimedTrace{});
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.transmitter.steps, 0u);
  EXPECT_FALSE(stats.data.min_delay.has_value());
  EXPECT_DOUBLE_EQ(stats.write_throughput, 0.0);
}

TEST(TraceStats, PrintsAReadableSummary) {
  const core::ProtocolRun run = sample_run();
  std::ostringstream os;
  os << core::compute_trace_stats(run.result.trace);
  const std::string text = os.str();
  EXPECT_NE(text.find("A_t:"), std::string::npos);
  EXPECT_NE(text.find("data:"), std::string::npos);
  EXPECT_NE(text.find("peak in-flight"), std::string::npos);
}

}  // namespace
}  // namespace rstp
