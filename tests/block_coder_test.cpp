// Tests for BlockCoder — the constructive toseq ∘ tomulti encoding (§6.1).
#include "rstp/combinatorics/block_coder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::combinatorics {
namespace {

TEST(BlockCoder, ParametersMatchTheory) {
  const BlockCoder coder{4, 5};
  EXPECT_EQ(coder.alphabet(), 4u);
  EXPECT_EQ(coder.packets_per_block(), 5u);
  // μ_4(5) = C(8,3) = 56 → ⌊log2 56⌋ = 5 bits per block.
  EXPECT_EQ(coder.bits_per_block(), 5u);
}

TEST(BlockCoder, RejectsDegenerateParameters) {
  EXPECT_THROW((BlockCoder{1, 5}), ContractViolation);   // k < 2
  EXPECT_THROW((BlockCoder{2, 0}), ContractViolation);   // no packets per block
}

TEST(BlockCoder, EncodeDecodeRoundTripExhaustiveSmall) {
  const BlockCoder coder{3, 4};  // μ_3(4)=15 → 3 bits
  ASSERT_EQ(coder.bits_per_block(), 3u);
  for (std::uint32_t v = 0; v < 8; ++v) {
    std::vector<Bit> bits = {static_cast<Bit>((v >> 2) & 1), static_cast<Bit>((v >> 1) & 1),
                             static_cast<Bit>(v & 1)};
    const std::vector<Symbol> block = coder.encode(bits);
    EXPECT_EQ(block.size(), 4u);
    EXPECT_TRUE(std::is_sorted(block.begin(), block.end()));  // toseq is canonical
    EXPECT_EQ(coder.decode(block), bits) << "value " << v;
  }
}

TEST(BlockCoder, EncodingIsInjective) {
  const BlockCoder coder{2, 6};  // μ_2(6)=7 → 2 bits
  std::set<std::vector<Symbol>> images;
  for (std::uint32_t v = 0; v < 4; ++v) {
    const std::vector<Bit> bits = {static_cast<Bit>((v >> 1) & 1), static_cast<Bit>(v & 1)};
    images.insert(coder.encode(bits));
  }
  EXPECT_EQ(images.size(), 4u);
}

TEST(BlockCoder, DecodeIsOrderImmune) {
  // The defining property: any permutation of the block decodes identically.
  const BlockCoder coder{5, 6};
  Rng rng{123};
  std::vector<Bit> bits(coder.bits_per_block());
  for (int iter = 0; iter < 50; ++iter) {
    for (auto& b : bits) b = rng.next_bool() ? 1 : 0;
    std::vector<Symbol> block = coder.encode(bits);
    for (int shuffle = 0; shuffle < 10; ++shuffle) {
      // Fisher-Yates with our deterministic rng.
      for (std::size_t i = block.size(); i > 1; --i) {
        std::swap(block[i - 1], block[rng.next_below(i)]);
      }
      EXPECT_EQ(coder.decode(block), bits);
    }
  }
}

TEST(BlockCoder, DecodeRejectsNonCodewords) {
  // Ranks in [2^B, μ) are never produced by encode; decoding one is a model
  // violation (corruption / cross-block mixing).
  const BlockCoder coder{3, 4};  // μ=15, B=3 → ranks 8..14 invalid
  const MultisetCodec codec{3, 4};
  const Multiset invalid = codec.unrank(bigint::BigUint{14});
  EXPECT_THROW((void)coder.decode(invalid), ModelError);
}

TEST(BlockCoder, DecodeRejectsWrongBlockShape) {
  const BlockCoder coder{3, 4};
  Multiset short_block{3};
  short_block.add(1);
  EXPECT_THROW((void)coder.decode(short_block), ContractViolation);
  Multiset wrong_universe{5};
  for (int i = 0; i < 4; ++i) wrong_universe.add(0);
  EXPECT_THROW((void)coder.decode(wrong_universe), ContractViolation);
}

TEST(BlockCoder, EncodeRejectsWrongWidth) {
  const BlockCoder coder{3, 4};
  const std::vector<Bit> wrong(coder.bits_per_block() + 1, 0);
  EXPECT_THROW((void)coder.encode(wrong), ContractViolation);
}

TEST(BlockCoder, MessagePaddingArithmetic) {
  const BlockCoder coder{4, 5};  // B = 5
  EXPECT_EQ(coder.blocks_for(0), 0u);
  EXPECT_EQ(coder.blocks_for(1), 1u);
  EXPECT_EQ(coder.blocks_for(5), 1u);
  EXPECT_EQ(coder.blocks_for(6), 2u);
  EXPECT_EQ(coder.padding_for(0), 0u);
  EXPECT_EQ(coder.padding_for(5), 0u);
  EXPECT_EQ(coder.padding_for(7), 3u);
}

TEST(BlockCoder, EncodeMessageRoundTripWithPadding) {
  const BlockCoder coder{4, 3};  // μ_4(3)=20 → B=4
  Rng rng{55};
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 17u, 64u}) {
    std::vector<Bit> message(n);
    for (auto& b : message) b = rng.next_bool() ? 1 : 0;
    const std::vector<Symbol> stream = coder.encode_message(message);
    EXPECT_EQ(stream.size(), coder.blocks_for(n) * coder.packets_per_block());
    // Decode block by block; the first n bits must equal the message.
    std::vector<Bit> recovered;
    for (std::size_t b = 0; b * coder.packets_per_block() < stream.size(); ++b) {
      const std::span<const Symbol> block{stream.data() + b * coder.packets_per_block(),
                                          coder.packets_per_block()};
      const std::vector<Bit> bits = coder.decode(block);
      recovered.insert(recovered.end(), bits.begin(), bits.end());
    }
    ASSERT_GE(recovered.size(), n);
    EXPECT_TRUE(std::equal(message.begin(), message.end(), recovered.begin()));
    // Padding is all zeros.
    for (std::size_t i = n; i < recovered.size(); ++i) EXPECT_EQ(recovered[i], 0);
  }
}

TEST(BlockCoder, BitsPerBlockNeverExceedsInformationContent) {
  for (std::uint32_t k = 2; k <= 16; k += 3) {
    for (std::uint32_t delta = 1; delta <= 20; delta += 4) {
      const BlockCoder coder{k, delta};
      EXPECT_LE(static_cast<double>(coder.bits_per_block()), log2_mu(k, delta) + 1e-9);
      EXPECT_GT(static_cast<double>(coder.bits_per_block()) + 1.0, log2_mu(k, delta) - 1e-9);
    }
  }
}

// Parameterized sweep: round-trips hold across the (k, δ) grid.
class BlockCoderSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(BlockCoderSweep, RandomRoundTrips) {
  const auto [k, delta] = GetParam();
  const BlockCoder coder{k, delta};
  Rng rng{static_cast<std::uint64_t>(k) * 1000 + delta};
  std::vector<Bit> bits(coder.bits_per_block());
  for (int iter = 0; iter < 30; ++iter) {
    for (auto& b : bits) b = rng.next_bool() ? 1 : 0;
    const std::vector<Symbol> block = coder.encode(bits);
    EXPECT_EQ(block.size(), delta);
    for (Symbol s : block) EXPECT_LT(s, k);
    EXPECT_EQ(coder.decode(block), bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BlockCoderSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u, 8u, 16u, 32u),
                                            ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u)),
                         [](const auto& param_info) {
                           return "k" + std::to_string(std::get<0>(param_info.param)) + "_d" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

}  // namespace
}  // namespace rstp::combinatorics
