// Tests for the parallel simulation-campaign engine (sim/campaign).
#include "rstp/sim/campaign.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <sstream>

#include "rstp/common/check.h"
#include "rstp/sim/campaign_bench.h"

namespace rstp::sim {
namespace {

using protocols::ProtocolKind;

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.protocols = {ProtocolKind::Alpha, ProtocolKind::Beta};
  spec.timings = {core::TimingParams::make(1, 1, 4)};
  spec.alphabets = {4};
  spec.environments = {core::Environment::worst_case(), core::Environment::randomized(1)};
  spec.seeds_per_cell = 2;
  spec.input_bits = 16;
  spec.campaign_seed = 42;
  return spec;
}

TEST(CampaignSpec, JobCountIsTheGridProduct) {
  const CampaignSpec spec = small_spec();
  EXPECT_EQ(spec.job_count(), 2u * 1u * 1u * 2u * 2u);
}

TEST(CampaignSpec, ValidateRejectsEmptyAxes) {
  CampaignSpec spec = small_spec();
  spec.protocols.clear();
  EXPECT_THROW(Campaign{spec}, ContractViolation);
  spec = small_spec();
  spec.alphabets.clear();
  EXPECT_THROW(Campaign{spec}, ContractViolation);
  spec = small_spec();
  spec.seeds_per_cell = 0;
  EXPECT_THROW(Campaign{spec}, ContractViolation);
}

TEST(Campaign, JobEnumerationCoversTheGridWithDistinctSeeds) {
  const Campaign campaign{small_spec()};
  std::set<std::pair<std::uint64_t, std::uint64_t>> seeds;
  std::size_t alpha_jobs = 0;
  for (std::size_t i = 0; i < campaign.job_count(); ++i) {
    const CampaignJob job = campaign.job(i);
    EXPECT_EQ(job.index, i);
    seeds.insert({job.environment.seed, job.input_seed});
    if (job.protocol == ProtocolKind::Alpha) ++alpha_jobs;
  }
  // SplitMix64 derivation: every job gets its own (env, input) seed pair.
  EXPECT_EQ(seeds.size(), campaign.job_count());
  EXPECT_EQ(alpha_jobs, campaign.job_count() / 2);
}

TEST(Campaign, SerialRunIsCorrectAndAggregated) {
  const Campaign campaign{small_spec()};
  const CampaignResult result = campaign.run(1);
  ASSERT_EQ(result.jobs.size(), campaign.job_count());
  EXPECT_TRUE(result.all_correct());
  EXPECT_EQ(result.incorrect, 0u);
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    EXPECT_EQ(result.jobs[i].index, i);
    EXPECT_TRUE(result.jobs[i].output_correct);
    EXPECT_FALSE(result.jobs[i].failed);
    events += result.jobs[i].event_count;
  }
  EXPECT_EQ(result.total_events, events);
  EXPECT_GE(result.effort.max, result.effort.mean);
  EXPECT_GE(result.effort.mean, result.effort.min);
  EXPECT_GT(result.effort.min, 0.0);
}

TEST(Campaign, FourThreadResultIsBitwiseIdenticalToSerial) {
  // The ISSUE's determinism contract, on the reference 64-job grid: the
  // merged result must compare equal field-for-field (defaulted operator==
  // over every job row and aggregate) whatever the thread count.
  const Campaign campaign{reference_campaign_spec()};
  ASSERT_EQ(campaign.job_count(), 64u);
  const CampaignResult serial = campaign.run(1);
  const CampaignResult parallel = campaign.run(4);
  EXPECT_TRUE(serial == parallel);
  const CampaignResult two = campaign.run(2);
  EXPECT_TRUE(serial == two);
}

TEST(Campaign, ThreadCountZeroMeansHardwareConcurrency) {
  const Campaign campaign{small_spec()};
  const CampaignResult serial = campaign.run(1);
  const CampaignResult automatic = campaign.run(0);
  EXPECT_TRUE(serial == automatic);
}

TEST(Campaign, ZeroProgressIntervalIsRejected) {
  // interval == 0 used to make the monitor thread busy-spin through
  // wait_for timeouts; it is now a contract violation whenever any
  // progress sink (stream or snapshot hook) is attached.
  const Campaign campaign{small_spec()};
  std::ostringstream sink;
  CampaignProgress progress;
  progress.out = &sink;
  progress.interval = std::chrono::milliseconds{0};
  EXPECT_THROW((void)campaign.run(1, progress), ContractViolation);
  progress.out = nullptr;
  progress.on_snapshot = [](const CampaignSnapshot&) {};
  EXPECT_THROW((void)campaign.run(1, progress), ContractViolation);
  // With no sink at all the interval is irrelevant and must not throw.
  progress.on_snapshot = nullptr;
  EXPECT_TRUE(campaign.run(1) == campaign.run(1, progress));
}

TEST(Campaign, SingleJobRerunMatchesTheCampaignRow) {
  // run_campaign_job is the worker body: rerunning one cell standalone must
  // reproduce the row the full campaign recorded for it.
  const Campaign campaign{small_spec()};
  const CampaignResult result = campaign.run(1);
  const CampaignSpec& spec = campaign.spec();
  for (const std::size_t index : {std::size_t{0}, campaign.job_count() - 1}) {
    const CampaignJobResult rerun =
        run_campaign_job(campaign.job(index), spec.input_bits, spec.max_events);
    EXPECT_TRUE(rerun == result.jobs[index]) << "job " << index;
  }
}

}  // namespace
}  // namespace rstp::sim
