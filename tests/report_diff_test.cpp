// Unit tests for the metrics diff/regression-gate layer (rstp/obs/diff.h):
// the cell join, exact delta arithmetic (including u64-overflow-adjacent
// counters and zero-old percentages), the --fail-on threshold grammar, and
// the exact JSON round trip of a diff report.
#include "rstp/obs/diff.h"

#include <gtest/gtest.h>

#include "rstp/est/runner.h"
#include "rstp/obs/json.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace rstp::obs {
namespace {

/// A minimal but fully-formed record: configured histograms (the JSONL
/// schema requires them) and a recognizable identity.
RunMetricsRecord make_record(const std::string& protocol, std::uint64_t seed,
                             std::uint64_t events) {
  RunMetricsRecord r;
  r.protocol = protocol;
  r.c1 = 1;
  r.c2 = 2;
  r.d = 6;
  r.k = 4;
  r.input_bits = 64;
  r.seed = seed;
  r.effort = 2.5;
  r.end_time = 100;
  r.correct = true;
  r.quiescent = true;
  r.metrics.counters.events = events;
  r.metrics.data_delay = Histogram(0, 6);
  r.metrics.ack_delay = Histogram(0, 6);
  r.metrics.transmitter_gap = Histogram(0, 2);
  r.metrics.receiver_gap = Histogram(0, 2);
  r.metrics.data_delay.record(3);
  r.metrics.data_delay.record(5);
  return r;
}

TEST(DiffJoin, IdenticalSeriesProduceNoChanges) {
  const std::vector<RunMetricsRecord> runs = {make_record("alpha", 1, 10),
                                              make_record("beta", 2, 20)};
  const DiffReport report = diff_metrics(runs, runs);
  EXPECT_EQ(report.old_records, 2u);
  EXPECT_EQ(report.new_records, 2u);
  EXPECT_EQ(report.matched, 2u);
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(DiffJoin, MissingAndExtraCellsAreReportedByKey) {
  const std::vector<RunMetricsRecord> old_runs = {make_record("alpha", 1, 10),
                                                  make_record("beta", 2, 20)};
  const std::vector<RunMetricsRecord> new_runs = {make_record("alpha", 1, 10),
                                                  make_record("gamma", 3, 30)};
  const DiffReport report = diff_metrics(old_runs, new_runs);
  EXPECT_EQ(report.matched, 1u);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].protocol, "beta");
  ASSERT_EQ(report.extra.size(), 1u);
  EXPECT_EQ(report.extra[0].protocol, "gamma");
  const QuantityDelta* missing = report.find_aggregate("cells_missing");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->new_u, 1u);
  const QuantityDelta* extra = report.find_aggregate("cells_extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(extra->new_u, 1u);
}

TEST(DiffJoin, DuplicateIdentitiesPairByOccurrenceIndex) {
  // Two records with the same identity join 1:1 in file order; dropping one
  // repetition shows up as a missing cell (rep 1), not a changed cell.
  const RunMetricsRecord a = make_record("alpha", 7, 10);
  const RunMetricsRecord b = make_record("alpha", 7, 99);
  const DiffReport same = diff_metrics({a, b}, {a, b});
  EXPECT_EQ(same.matched, 2u);
  EXPECT_TRUE(same.cells.empty());

  const DiffReport dropped = diff_metrics({a, b}, {a});
  EXPECT_EQ(dropped.matched, 1u);
  ASSERT_EQ(dropped.missing.size(), 1u);
  EXPECT_EQ(dropped.missing[0].rep, 1u);
  EXPECT_TRUE(dropped.cells.empty());
}

TEST(DiffDelta, ChangedCellListsOnlyChangedQuantities) {
  const RunMetricsRecord before = make_record("alpha", 1, 10);
  RunMetricsRecord after = before;
  after.metrics.counters.events = 15;
  const DiffReport report = diff_metrics({before}, {after});
  ASSERT_EQ(report.cells.size(), 1u);
  ASSERT_EQ(report.cells[0].deltas.size(), 1u);
  const QuantityDelta& delta = report.cells[0].deltas[0];
  EXPECT_EQ(delta.name, "events");
  EXPECT_TRUE(delta.integral);
  EXPECT_EQ(delta.old_u, 10u);
  EXPECT_EQ(delta.new_u, 15u);
  EXPECT_DOUBLE_EQ(delta.delta(), 5.0);
  EXPECT_DOUBLE_EQ(delta.pct(), 50.0);
  const QuantityDelta* changed = report.find_aggregate("cells_changed");
  ASSERT_NE(changed, nullptr);
  EXPECT_EQ(changed->new_u, 1u);
}

TEST(DiffDelta, OverflowAdjacentCountersDiffExactly) {
  // Counters near 2^64 must never round-trip through a double: the diff is
  // computed in u64 arithmetic as sign + magnitude.
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max();
  const RunMetricsRecord before = make_record("alpha", 1, kHuge - 1);
  const RunMetricsRecord after = make_record("alpha", 1, kHuge);
  const DiffReport up = diff_metrics({before}, {after});
  ASSERT_EQ(up.cells.size(), 1u);
  const QuantityDelta& grew = up.cells[0].deltas[0];
  EXPECT_EQ(grew.old_u, kHuge - 1);
  EXPECT_EQ(grew.new_u, kHuge);
  EXPECT_DOUBLE_EQ(grew.delta(), 1.0);  // exact despite 2^64-scale endpoints

  const DiffReport down = diff_metrics({after}, {before});
  ASSERT_EQ(down.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(down.cells[0].deltas[0].delta(), -1.0);
}

TEST(DiffDelta, ZeroOldValueYieldsInfinitePercent) {
  QuantityDelta delta;
  delta.name = "events";
  delta.integral = true;
  delta.old_u = 0;
  delta.new_u = 5;
  delta.old_v = 0;
  delta.new_v = 5;
  EXPECT_TRUE(delta.changed());
  EXPECT_EQ(delta.pct(), HUGE_VAL);
  delta.new_u = 0;
  delta.new_v = 0;
  EXPECT_FALSE(delta.changed());
  EXPECT_EQ(delta.pct(), 0.0);
}

TEST(Thresholds, ParseAcceptsTheDocumentedGrammar) {
  const std::vector<Threshold> parsed =
      parse_thresholds("effort_mean>1%, delay_p99 >= 5 , events>10");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].quantity, "effort_mean");
  EXPECT_FALSE(parsed[0].inclusive);
  EXPECT_DOUBLE_EQ(parsed[0].limit, 1.0);
  EXPECT_TRUE(parsed[0].relative);
  EXPECT_EQ(parsed[1].quantity, "delay_p99");
  EXPECT_TRUE(parsed[1].inclusive);
  EXPECT_FALSE(parsed[1].relative);
  EXPECT_EQ(parsed[2].quantity, "events");  // bare counter → events_total
}

TEST(Thresholds, ParseErrorsNameTheOffendingToken) {
  const auto token_of = [](const std::string& spec) {
    try {
      (void)parse_thresholds(spec);
    } catch (const ThresholdParseError& error) {
      return error.token();
    }
    return std::string{"<no error>"};
  };
  EXPECT_EQ(token_of("effort_mean"), "effort_mean");        // no comparator
  EXPECT_EQ(token_of("effort_mean>abc"), "effort_mean>abc");  // bad number
  EXPECT_EQ(token_of("effort_mean>-1"), "effort_mean>-1");    // negative limit
  EXPECT_EQ(token_of("a>1,,b>2"), "");                        // empty clause
}

TEST(Thresholds, RejectsNonFiniteLimits) {
  // from_chars parses "nan"/"inf" lexemes; accepting them would make a gate
  // that silently passes everything (NaN compares false against all values).
  const auto token_of = [](const std::string& spec) {
    try {
      (void)parse_thresholds(spec);
    } catch (const ThresholdParseError& error) {
      return error.token();
    }
    return std::string{"<no error>"};
  };
  EXPECT_EQ(token_of("effort_mean>nan"), "effort_mean>nan");
  EXPECT_EQ(token_of("effort_mean>inf"), "effort_mean>inf");
  EXPECT_EQ(token_of("effort_mean>=nan"), "effort_mean>=nan");
  EXPECT_EQ(token_of("events>inf%"), "events>inf%");
  EXPECT_EQ(token_of("events>nan(ind)"), "events>nan(ind)");
}

TEST(Thresholds, NanObservedValueTripsTheGate) {
  // A NaN measurement compares false against any finite limit; the gate must
  // report it as a violation instead of certifying the run.
  DiffReport report;
  QuantityDelta poisoned;
  poisoned.name = "effort_mean";
  poisoned.integral = false;
  poisoned.old_v = std::numeric_limits<double>::quiet_NaN();
  poisoned.new_v = 5.0;
  report.aggregates.push_back(poisoned);
  for (const char* spec : {"effort_mean>1000", "effort_mean>0.1%"}) {
    const std::vector<ThresholdViolation> violations =
        evaluate_thresholds(report, parse_thresholds(spec));
    ASSERT_EQ(violations.size(), 1u) << spec;
    EXPECT_TRUE(std::isnan(violations[0].observed)) << spec;
  }
}

TEST(Thresholds, ZeroBaselineRelativeGateTripsLoudly) {
  // pct() maps a zero baseline to +HUGE_VAL by convention, so a relative
  // gate on a quantity that appears from nothing always trips.
  DiffReport report;
  QuantityDelta appeared;
  appeared.name = "events_total";
  appeared.integral = true;
  appeared.old_u = 0;
  appeared.new_u = 7;
  appeared.old_v = 0;
  appeared.new_v = 7;
  report.aggregates.push_back(appeared);
  const std::vector<ThresholdViolation> violations =
      evaluate_thresholds(report, parse_thresholds("events>1000000%"));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].observed, HUGE_VAL);
}

TEST(Thresholds, UnknownQuantityThrowsAtEvaluation) {
  const std::vector<RunMetricsRecord> runs = {make_record("alpha", 1, 10)};
  const DiffReport report = diff_metrics(runs, runs);
  const std::vector<Threshold> thresholds = parse_thresholds("no_such_quantity>1");
  EXPECT_THROW((void)evaluate_thresholds(report, thresholds), ThresholdParseError);
}

TEST(Thresholds, TripOnIncreasesOnlyAndRespectRelativeLimits) {
  const RunMetricsRecord before = make_record("alpha", 1, 100);
  RunMetricsRecord regressed = before;
  regressed.metrics.counters.events = 103;  // +3%
  const DiffReport worse = diff_metrics({before}, {regressed});
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>1%")).size(), 1u);
  EXPECT_TRUE(evaluate_thresholds(worse, parse_thresholds("events>5%")).empty());
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>2")).size(), 1u);
  EXPECT_TRUE(evaluate_thresholds(worse, parse_thresholds("events>3")).empty());
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>=3")).size(), 1u);

  // The same shift downward is an improvement and never trips.
  const DiffReport better = diff_metrics({regressed}, {before});
  EXPECT_TRUE(evaluate_thresholds(better, parse_thresholds("events>1%")).empty());
}

TEST(DiffJson, RoundTripsExactlyThroughTheBundledParser) {
  const std::vector<RunMetricsRecord> old_runs = {
      make_record("alpha", 1, std::numeric_limits<std::uint64_t>::max() - 1),
      make_record("beta", 2, 20)};
  std::vector<RunMetricsRecord> new_runs = {
      make_record("alpha", 1, std::numeric_limits<std::uint64_t>::max()),
      make_record("gamma", 3, 30)};
  new_runs[0].effort = 3.0000000000000004;  // needs shortest-round-trip digits
  const DiffReport report = diff_metrics(old_runs, new_runs);
  ASSERT_FALSE(report.cells.empty());

  std::ostringstream os;
  write_diff_json(os, report);
  const DiffReport reread = read_diff_json(os.str());
  EXPECT_EQ(reread, report);

  // Serializing the reread report reproduces the byte stream too.
  std::ostringstream os2;
  write_diff_json(os2, reread);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(DiffJson, RejectsWrongSchemaTag) {
  EXPECT_THROW((void)read_diff_json(R"({"schema":"not-a-diff"})"), JsonParseError);
  EXPECT_THROW((void)read_diff_json("not json at all"), JsonParseError);
}

TEST(JsonStrings, SurrogatePairsDecodeToOneUtf8Sequence) {
  // \uD83D\uDE00 is U+1F600; the decoder must combine the pair instead of
  // emitting two raw 3-byte surrogates (which is invalid UTF-8).
  const JsonValue v = parse_json("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(v.text, "\xF0\x9F\x98\x80");
}

TEST(JsonStrings, BmpBoundariesStillDecodeAsThreeBytes) {
  EXPECT_EQ(parse_json("\"\\uD7FF\"").text, "\xED\x9F\xBF");  // last before surrogates
  EXPECT_EQ(parse_json("\"\\uE000\"").text, "\xEE\x80\x80");  // first after surrogates
}

TEST(JsonStrings, LoneOrMismatchedSurrogatesAreRejected) {
  EXPECT_THROW((void)parse_json(R"("\uD800")"), JsonParseError);        // lone high
  EXPECT_THROW((void)parse_json(R"("\uDC00")"), JsonParseError);        // lone low
  EXPECT_THROW((void)parse_json(R"("\uD800A")"), JsonParseError);  // high + BMP
  EXPECT_THROW((void)parse_json(R"("\uD800\uD800")"), JsonParseError);  // high + high
  EXPECT_THROW((void)parse_json(R"("\uD800\u0041")"), JsonParseError);  // high + escaped BMP
  EXPECT_THROW((void)parse_json(R"("\uD800x")"), JsonParseError);       // high + raw char
}

TEST(MegasessionFields, SessionsIsACellQuantityButEventsPerSecIsNot) {
  std::vector<RunMetricsRecord> old_runs = {make_record("alpha", 1, 100)};
  std::vector<RunMetricsRecord> new_runs = {make_record("alpha", 1, 100)};
  old_runs[0].sessions = 100;
  old_runs[0].events_per_sec = 5e6;
  new_runs[0].sessions = 200;
  new_runs[0].events_per_sec = 1e6;  // 80% slower — but wall clock, no cell delta

  const DiffReport report = diff_metrics(old_runs, new_runs);
  ASSERT_EQ(report.cells.size(), 1u);
  bool saw_sessions = false;
  for (const QuantityDelta& d : report.cells[0].deltas) {
    EXPECT_NE(d.name, "events_per_sec");  // machine-dependent: aggregate-only
    if (d.name == "sessions") {
      saw_sessions = true;
      EXPECT_EQ(d.old_u, 100u);
      EXPECT_EQ(d.new_u, 200u);
    }
  }
  EXPECT_TRUE(saw_sessions);

  const QuantityDelta* total = report.find_aggregate("sessions_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->old_u, 100u);
  EXPECT_EQ(total->new_u, 200u);
  const QuantityDelta* mean = report.find_aggregate("events_per_sec_mean");
  ASSERT_NE(mean, nullptr);
  EXPECT_DOUBLE_EQ(mean->old_v, 5e6);
  EXPECT_DOUBLE_EQ(mean->new_v, 1e6);
}

TEST(MegasessionFields, ThroughputDropGatesAsAPositiveDelta) {
  // The gate only trips on positive deltas, so the drop itself is the
  // aggregate's new value: old 5e6 -> new 1e6 is an 80% drop.
  std::vector<RunMetricsRecord> old_runs = {make_record("alpha", 1, 100)};
  std::vector<RunMetricsRecord> new_runs = {make_record("alpha", 1, 100)};
  old_runs[0].events_per_sec = 5e6;
  new_runs[0].events_per_sec = 1e6;
  const DiffReport report = diff_metrics(old_runs, new_runs);
  const QuantityDelta* drop = report.find_aggregate("events_per_sec_drop");
  ASSERT_NE(drop, nullptr);
  EXPECT_DOUBLE_EQ(drop->new_v, 80.0);

  EXPECT_TRUE(evaluate_thresholds(report, parse_thresholds("events_per_sec_drop>95")).empty());
  ASSERT_EQ(evaluate_thresholds(report, parse_thresholds("events_per_sec_drop>50")).size(), 1u);

  // A throughput *increase* reports drop 0 and can never trip.
  const DiffReport faster = diff_metrics(new_runs, old_runs);
  EXPECT_DOUBLE_EQ(faster.find_aggregate("events_per_sec_drop")->new_v, 0.0);
  EXPECT_TRUE(evaluate_thresholds(faster, parse_thresholds("events_per_sec_drop>=0")).empty());
}

TEST(MegasessionFields, DropGateIsInertWithoutBaselineThroughput) {
  // Pre-megasession baselines carry no events_per_sec at all; the drop
  // aggregate must stay 0 (unchanged) so existing golden gates — which
  // require EVERY aggregate unchanged on a rerun — still hold.
  const std::vector<RunMetricsRecord> old_runs = {make_record("alpha", 1, 100)};
  std::vector<RunMetricsRecord> new_runs = {make_record("alpha", 1, 100)};
  new_runs[0].events_per_sec = 1e6;  // new side alone cannot define a drop
  const DiffReport report = diff_metrics(old_runs, new_runs);
  const QuantityDelta* drop = report.find_aggregate("events_per_sec_drop");
  ASSERT_NE(drop, nullptr);
  EXPECT_FALSE(drop->changed());
  EXPECT_TRUE(evaluate_thresholds(report, parse_thresholds("events_per_sec_drop>0")).empty());
}

TEST(MegasessionFields, DegenerateEstPenaltySentinelTripsTheMaxGateFinite) {
  // The satellite guard: a degenerate oracle (never sent) reports the large
  // finite sentinel, which must trip est_penalty_max as a normal violation —
  // not leak inf/NaN through the gate arithmetic.
  std::vector<RunMetricsRecord> old_runs = {make_record("beta", 1, 100)};
  std::vector<RunMetricsRecord> new_runs = {make_record("beta", 1, 100)};
  new_runs[0].est_penalty = est::kDegenerateEstPenalty;
  const DiffReport report = diff_metrics(old_runs, new_runs);
  const auto violations = evaluate_thresholds(report, parse_thresholds("est_penalty_max>1.5"));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(std::isfinite(violations[0].observed));
  EXPECT_DOUBLE_EQ(violations[0].observed, est::kDegenerateEstPenalty);
}

}  // namespace
}  // namespace rstp::obs
