// Unit tests for the metrics diff/regression-gate layer (rstp/obs/diff.h):
// the cell join, exact delta arithmetic (including u64-overflow-adjacent
// counters and zero-old percentages), the --fail-on threshold grammar, and
// the exact JSON round trip of a diff report.
#include "rstp/obs/diff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace rstp::obs {
namespace {

/// A minimal but fully-formed record: configured histograms (the JSONL
/// schema requires them) and a recognizable identity.
RunMetricsRecord make_record(const std::string& protocol, std::uint64_t seed,
                             std::uint64_t events) {
  RunMetricsRecord r;
  r.protocol = protocol;
  r.c1 = 1;
  r.c2 = 2;
  r.d = 6;
  r.k = 4;
  r.input_bits = 64;
  r.seed = seed;
  r.effort = 2.5;
  r.end_time = 100;
  r.correct = true;
  r.quiescent = true;
  r.metrics.counters.events = events;
  r.metrics.data_delay = Histogram(0, 6);
  r.metrics.ack_delay = Histogram(0, 6);
  r.metrics.transmitter_gap = Histogram(0, 2);
  r.metrics.receiver_gap = Histogram(0, 2);
  r.metrics.data_delay.record(3);
  r.metrics.data_delay.record(5);
  return r;
}

TEST(DiffJoin, IdenticalSeriesProduceNoChanges) {
  const std::vector<RunMetricsRecord> runs = {make_record("alpha", 1, 10),
                                              make_record("beta", 2, 20)};
  const DiffReport report = diff_metrics(runs, runs);
  EXPECT_EQ(report.old_records, 2u);
  EXPECT_EQ(report.new_records, 2u);
  EXPECT_EQ(report.matched, 2u);
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(DiffJoin, MissingAndExtraCellsAreReportedByKey) {
  const std::vector<RunMetricsRecord> old_runs = {make_record("alpha", 1, 10),
                                                  make_record("beta", 2, 20)};
  const std::vector<RunMetricsRecord> new_runs = {make_record("alpha", 1, 10),
                                                  make_record("gamma", 3, 30)};
  const DiffReport report = diff_metrics(old_runs, new_runs);
  EXPECT_EQ(report.matched, 1u);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0].protocol, "beta");
  ASSERT_EQ(report.extra.size(), 1u);
  EXPECT_EQ(report.extra[0].protocol, "gamma");
  const QuantityDelta* missing = report.find_aggregate("cells_missing");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->new_u, 1u);
  const QuantityDelta* extra = report.find_aggregate("cells_extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(extra->new_u, 1u);
}

TEST(DiffJoin, DuplicateIdentitiesPairByOccurrenceIndex) {
  // Two records with the same identity join 1:1 in file order; dropping one
  // repetition shows up as a missing cell (rep 1), not a changed cell.
  const RunMetricsRecord a = make_record("alpha", 7, 10);
  const RunMetricsRecord b = make_record("alpha", 7, 99);
  const DiffReport same = diff_metrics({a, b}, {a, b});
  EXPECT_EQ(same.matched, 2u);
  EXPECT_TRUE(same.cells.empty());

  const DiffReport dropped = diff_metrics({a, b}, {a});
  EXPECT_EQ(dropped.matched, 1u);
  ASSERT_EQ(dropped.missing.size(), 1u);
  EXPECT_EQ(dropped.missing[0].rep, 1u);
  EXPECT_TRUE(dropped.cells.empty());
}

TEST(DiffDelta, ChangedCellListsOnlyChangedQuantities) {
  const RunMetricsRecord before = make_record("alpha", 1, 10);
  RunMetricsRecord after = before;
  after.metrics.counters.events = 15;
  const DiffReport report = diff_metrics({before}, {after});
  ASSERT_EQ(report.cells.size(), 1u);
  ASSERT_EQ(report.cells[0].deltas.size(), 1u);
  const QuantityDelta& delta = report.cells[0].deltas[0];
  EXPECT_EQ(delta.name, "events");
  EXPECT_TRUE(delta.integral);
  EXPECT_EQ(delta.old_u, 10u);
  EXPECT_EQ(delta.new_u, 15u);
  EXPECT_DOUBLE_EQ(delta.delta(), 5.0);
  EXPECT_DOUBLE_EQ(delta.pct(), 50.0);
  const QuantityDelta* changed = report.find_aggregate("cells_changed");
  ASSERT_NE(changed, nullptr);
  EXPECT_EQ(changed->new_u, 1u);
}

TEST(DiffDelta, OverflowAdjacentCountersDiffExactly) {
  // Counters near 2^64 must never round-trip through a double: the diff is
  // computed in u64 arithmetic as sign + magnitude.
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max();
  const RunMetricsRecord before = make_record("alpha", 1, kHuge - 1);
  const RunMetricsRecord after = make_record("alpha", 1, kHuge);
  const DiffReport up = diff_metrics({before}, {after});
  ASSERT_EQ(up.cells.size(), 1u);
  const QuantityDelta& grew = up.cells[0].deltas[0];
  EXPECT_EQ(grew.old_u, kHuge - 1);
  EXPECT_EQ(grew.new_u, kHuge);
  EXPECT_DOUBLE_EQ(grew.delta(), 1.0);  // exact despite 2^64-scale endpoints

  const DiffReport down = diff_metrics({after}, {before});
  ASSERT_EQ(down.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(down.cells[0].deltas[0].delta(), -1.0);
}

TEST(DiffDelta, ZeroOldValueYieldsInfinitePercent) {
  QuantityDelta delta;
  delta.name = "events";
  delta.integral = true;
  delta.old_u = 0;
  delta.new_u = 5;
  delta.old_v = 0;
  delta.new_v = 5;
  EXPECT_TRUE(delta.changed());
  EXPECT_EQ(delta.pct(), HUGE_VAL);
  delta.new_u = 0;
  delta.new_v = 0;
  EXPECT_FALSE(delta.changed());
  EXPECT_EQ(delta.pct(), 0.0);
}

TEST(Thresholds, ParseAcceptsTheDocumentedGrammar) {
  const std::vector<Threshold> parsed =
      parse_thresholds("effort_mean>1%, delay_p99 >= 5 , events>10");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].quantity, "effort_mean");
  EXPECT_FALSE(parsed[0].inclusive);
  EXPECT_DOUBLE_EQ(parsed[0].limit, 1.0);
  EXPECT_TRUE(parsed[0].relative);
  EXPECT_EQ(parsed[1].quantity, "delay_p99");
  EXPECT_TRUE(parsed[1].inclusive);
  EXPECT_FALSE(parsed[1].relative);
  EXPECT_EQ(parsed[2].quantity, "events");  // bare counter → events_total
}

TEST(Thresholds, ParseErrorsNameTheOffendingToken) {
  const auto token_of = [](const std::string& spec) {
    try {
      (void)parse_thresholds(spec);
    } catch (const ThresholdParseError& error) {
      return error.token();
    }
    return std::string{"<no error>"};
  };
  EXPECT_EQ(token_of("effort_mean"), "effort_mean");        // no comparator
  EXPECT_EQ(token_of("effort_mean>abc"), "effort_mean>abc");  // bad number
  EXPECT_EQ(token_of("effort_mean>-1"), "effort_mean>-1");    // negative limit
  EXPECT_EQ(token_of("a>1,,b>2"), "");                        // empty clause
}

TEST(Thresholds, UnknownQuantityThrowsAtEvaluation) {
  const std::vector<RunMetricsRecord> runs = {make_record("alpha", 1, 10)};
  const DiffReport report = diff_metrics(runs, runs);
  const std::vector<Threshold> thresholds = parse_thresholds("no_such_quantity>1");
  EXPECT_THROW((void)evaluate_thresholds(report, thresholds), ThresholdParseError);
}

TEST(Thresholds, TripOnIncreasesOnlyAndRespectRelativeLimits) {
  const RunMetricsRecord before = make_record("alpha", 1, 100);
  RunMetricsRecord regressed = before;
  regressed.metrics.counters.events = 103;  // +3%
  const DiffReport worse = diff_metrics({before}, {regressed});
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>1%")).size(), 1u);
  EXPECT_TRUE(evaluate_thresholds(worse, parse_thresholds("events>5%")).empty());
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>2")).size(), 1u);
  EXPECT_TRUE(evaluate_thresholds(worse, parse_thresholds("events>3")).empty());
  EXPECT_EQ(evaluate_thresholds(worse, parse_thresholds("events>=3")).size(), 1u);

  // The same shift downward is an improvement and never trips.
  const DiffReport better = diff_metrics({regressed}, {before});
  EXPECT_TRUE(evaluate_thresholds(better, parse_thresholds("events>1%")).empty());
}

TEST(DiffJson, RoundTripsExactlyThroughTheBundledParser) {
  const std::vector<RunMetricsRecord> old_runs = {
      make_record("alpha", 1, std::numeric_limits<std::uint64_t>::max() - 1),
      make_record("beta", 2, 20)};
  std::vector<RunMetricsRecord> new_runs = {
      make_record("alpha", 1, std::numeric_limits<std::uint64_t>::max()),
      make_record("gamma", 3, 30)};
  new_runs[0].effort = 3.0000000000000004;  // needs shortest-round-trip digits
  const DiffReport report = diff_metrics(old_runs, new_runs);
  ASSERT_FALSE(report.cells.empty());

  std::ostringstream os;
  write_diff_json(os, report);
  const DiffReport reread = read_diff_json(os.str());
  EXPECT_EQ(reread, report);

  // Serializing the reread report reproduces the byte stream too.
  std::ostringstream os2;
  write_diff_json(os2, reread);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(DiffJson, RejectsWrongSchemaTag) {
  EXPECT_THROW((void)read_diff_json(R"({"schema":"not-a-diff"})"), JsonParseError);
  EXPECT_THROW((void)read_diff_json("not json at all"), JsonParseError);
}

}  // namespace
}  // namespace rstp::obs
