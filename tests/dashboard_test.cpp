// Tests for the live dashboard (obs/dashboard): golden frames for the pure
// renderer, the display-only snapshot plumbing, and the contract that
// attaching a dashboard never changes campaign or fuzz results.
#include "rstp/obs/dashboard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <vector>

#include "rstp/sim/campaign.h"
#include "rstp/sim/fuzz.h"

namespace rstp::obs {
namespace {

using protocols::ProtocolKind;

/// A fixed mid-flight campaign state: every derived figure (percent, rate,
/// ETA, percentiles) is exactly representable so the goldens are stable.
DashboardState campaign_state() {
  DashboardState s;
  s.mode = DashboardState::Mode::Campaign;
  s.color = false;
  s.label = "campaign";
  s.elapsed_seconds = 12.5;
  s.done = 17;
  s.total = 32;
  s.events = 123456;
  s.effort_mean = 2.75;
  s.effort_jobs = 17;
  DashboardProtocolRow alpha;
  alpha.name = "alpha";
  alpha.done = 16;
  alpha.total = 16;
  alpha.events = 61728;
  alpha.effort_mean = 2.25;
  alpha.effort_jobs = 16;
  DashboardProtocolRow beta;
  beta.name = "beta";
  beta.done = 1;
  beta.total = 16;
  beta.events = 61728;
  beta.effort_mean = 3.5;
  beta.effort_jobs = 1;
  s.protocols = {alpha, beta};
  s.delay_buckets.assign(8, 0);
  s.delay_buckets[0] = 10;
  s.delay_buckets[3] = 50;
  s.delay_buckets[5] = 35;
  s.delay_buckets[6] = 5;
  s.delay_count = 100;
  return s;
}

DashboardState fuzz_state() {
  DashboardState s;
  s.mode = DashboardState::Mode::Fuzz;
  s.color = false;
  s.elapsed_seconds = 4.0;
  s.done = 96;
  s.total = 256;
  s.generation = 3;
  s.corpus = 17;
  s.coverage = 412;
  s.coverage_gain = 37;
  s.crashes = 2;
  s.failures = 0;
  return s;
}

TEST(RenderFrame, CampaignGolden) {
  const std::string expected =
      "campaign  [############............]  17/32 jobs (53.1%)  elapsed 12.5s  eta 11.0s\n"
      "  1.4 jobs/s  |  123456 events  |  effort mean 2.75  |  delay p50/p95/p99 3/5/6 "
      "ticks\n"
      "  alpha  [########################]  16/16  effort 2.25  events 61728\n"
      "  beta   [#.......................]  1/16  effort 3.50  events 61728\n";
  EXPECT_EQ(render_frame(campaign_state()), expected);
}

TEST(RenderFrame, FuzzGolden) {
  const std::string expected =
      "fuzz  [#########...............]  96/256 cases (37.5%)  elapsed 4.0s  eta 6.7s\n"
      "  gen 3  |  24.0 cases/s  |  corpus 17  |  coverage 412 (+37)  |  crashes 2  |  "
      "failures 0\n";
  EXPECT_EQ(render_frame(fuzz_state()), expected);
}

TEST(RenderFrame, PlainModeHasNoEscapeBytes) {
  for (const DashboardState& s : {campaign_state(), fuzz_state()}) {
    EXPECT_EQ(render_frame(s).find('\x1b'), std::string::npos);
    EXPECT_EQ(render_line(s).find('\x1b'), std::string::npos);
  }
}

TEST(RenderFrame, ColorModeUsesAnsiAndKeepsTheSameTextShape) {
  DashboardState colored = campaign_state();
  colored.color = true;
  const std::string frame = render_frame(colored);
  EXPECT_NE(frame.find("\x1b[1m"), std::string::npos);   // bold header
  EXPECT_NE(frame.find("\x1b[32m"), std::string::npos);  // green bar fill
  // Stripping SGR sequences recovers the plain golden exactly.
  std::string stripped;
  for (std::size_t i = 0; i < frame.size();) {
    if (frame[i] == '\x1b') {
      const std::size_t m = frame.find('m', i);
      ASSERT_NE(m, std::string::npos);
      i = m + 1;
    } else {
      stripped.push_back(frame[i++]);
    }
  }
  EXPECT_EQ(stripped, render_frame(campaign_state()));
}

TEST(RenderFrame, FailuresTurnRedOnlyInFuzzColorMode) {
  DashboardState s = fuzz_state();
  s.color = true;
  EXPECT_EQ(render_frame(s).find("\x1b[31m"), std::string::npos);  // failures == 0
  s.failures = 1;
  EXPECT_NE(render_frame(s).find("\x1b[31m"), std::string::npos);
}

TEST(RenderFrame, BarEdgesAreEmptyAndFull) {
  DashboardState s = fuzz_state();
  s.done = 0;
  EXPECT_NE(render_frame(s).find("[........................]"), std::string::npos);
  s.done = s.total;
  EXPECT_NE(render_frame(s).find("[########################]"), std::string::npos);
}

TEST(RenderLine, CampaignGolden) {
  EXPECT_EQ(render_line(campaign_state()),
            "campaign: 17/32 jobs (53.1%), 123456 events, mean effort 2.75, eta 11.0s");
}

TEST(RenderLine, FuzzGolden) {
  EXPECT_EQ(render_line(fuzz_state()),
            "fuzz: gen 3, 96/256 cases, corpus 17, coverage 412 (+37), crashes 2, failures 0");
}

TEST(DelayPercentile, NearestRankOverClampedBuckets) {
  const std::vector<std::uint64_t> buckets{10, 0, 0, 50, 0, 35, 5, 0};
  EXPECT_EQ(delay_percentile(buckets, 100, 0), 0);
  EXPECT_EQ(delay_percentile(buckets, 100, 50), 3);
  EXPECT_EQ(delay_percentile(buckets, 100, 95), 5);
  EXPECT_EQ(delay_percentile(buckets, 100, 99), 6);
  EXPECT_EQ(delay_percentile(buckets, 100, 100), 6);
  EXPECT_EQ(delay_percentile({}, 0, 50), 0);
  EXPECT_EQ(delay_percentile(buckets, 0, 50), 0);
}

TEST(Dashboard, RedrawRewindsOverThePreviousFrame) {
  std::ostringstream out;
  Dashboard dash{out};
  dash.draw(campaign_state());
  EXPECT_EQ(dash.last_frame_lines(), 4u);
  const std::string first = out.str();
  EXPECT_NE(first.find("\x1b[?25l"), std::string::npos);  // cursor hidden once
  EXPECT_EQ(first.find("\x1b[4A"), std::string::npos);    // nothing to rewind yet
  dash.draw(campaign_state());
  EXPECT_NE(out.str().find("\x1b[4A\r\x1b[0J"), std::string::npos);
  dash.close();
  EXPECT_NE(out.str().find("\x1b[?25h"), std::string::npos);
  EXPECT_EQ(dash.last_frame_lines(), 0u);
}

TEST(Dashboard, CloseWithoutDrawWritesNothing) {
  std::ostringstream out;
  Dashboard dash{out};
  dash.close();
  EXPECT_TRUE(out.str().empty());
}

// ---------------------------------------------------------------------------
// Snapshot plumbing: the display feed is consistent and cannot perturb the
// deterministic results it mirrors.

sim::CampaignSpec snapshot_campaign_spec() {
  sim::CampaignSpec spec;
  spec.protocols = {ProtocolKind::Alpha, ProtocolKind::Beta};
  spec.timings = {core::TimingParams::make(1, 1, 4)};
  spec.alphabets = {4};
  spec.environments = {core::Environment::worst_case(), core::Environment::randomized(1)};
  spec.seeds_per_cell = 2;
  spec.input_bits = 16;
  spec.campaign_seed = 42;
  return spec;
}

TEST(CampaignSnapshots, FinalSnapshotIsExactAndPerProtocol) {
  const sim::Campaign campaign{snapshot_campaign_spec()};
  std::vector<sim::CampaignSnapshot> snapshots;
  sim::CampaignProgress progress;
  progress.interval = std::chrono::milliseconds{50};
  progress.on_snapshot = [&](const sim::CampaignSnapshot& s) { snapshots.push_back(s); };
  const sim::CampaignResult result = campaign.run(2, progress);

  ASSERT_FALSE(snapshots.empty());
  const sim::CampaignSnapshot& final_snap = snapshots.back();
  EXPECT_TRUE(final_snap.final_snapshot);
  EXPECT_EQ(final_snap.jobs_done, campaign.job_count());
  EXPECT_EQ(final_snap.jobs_total, campaign.job_count());
  EXPECT_EQ(final_snap.events, result.total_events);
  ASSERT_EQ(final_snap.protocols.size(), 2u);
  std::uint64_t done = 0;
  std::uint64_t events = 0;
  for (const sim::CampaignProtocolSnapshot& p : final_snap.protocols) {
    EXPECT_EQ(p.total, campaign.job_count() / 2);
    done += p.done;
    events += p.events;
  }
  EXPECT_EQ(done, campaign.job_count());
  EXPECT_EQ(events, result.total_events);
  // Every data delivery of the grid landed in the display distribution.
  std::uint64_t bucketed = 0;
  ASSERT_EQ(final_snap.delay_buckets.size(), sim::CampaignSnapshot::kDelayBuckets);
  for (const std::uint64_t b : final_snap.delay_buckets) bucketed += b;
  EXPECT_EQ(bucketed, final_snap.delay_count);
  EXPECT_GT(final_snap.delay_count, 0u);
}

TEST(CampaignSnapshots, DashboardOnOrOffIsBitwiseIdenticalAcrossThreadCounts) {
  const sim::Campaign campaign{snapshot_campaign_spec()};
  const sim::CampaignResult plain = campaign.run(1);
  for (const unsigned threads : {1u, 3u, 8u}) {
    sim::CampaignProgress progress;
    progress.interval = std::chrono::milliseconds{1};
    std::size_t calls = 0;
    progress.on_snapshot = [&](const sim::CampaignSnapshot&) { ++calls; };
    const sim::CampaignResult observed = campaign.run(threads, progress);
    EXPECT_TRUE(observed == plain) << "threads " << threads;
    EXPECT_GE(calls, 1u);
  }
}

TEST(FuzzSnapshots, GenerationHookSeesTheHuntAndKeepsDeterminism) {
  sim::FuzzSpec spec;
  spec.protocol = ProtocolKind::Beta;
  spec.seed = 7;
  spec.budget = 48;
  spec.jobs = 1;
  const sim::FuzzResult plain = sim::run_fuzz(spec);

  for (const unsigned jobs : {1u, 3u, 8u}) {
    sim::FuzzSpec hooked = spec;
    hooked.jobs = jobs;
    std::vector<sim::FuzzGenerationSnapshot> snapshots;
    hooked.on_generation = [&](const sim::FuzzGenerationSnapshot& s) {
      snapshots.push_back(s);
    };
    const sim::FuzzResult observed = sim::run_fuzz(hooked);

    EXPECT_EQ(observed.executed, plain.executed) << "jobs " << jobs;
    EXPECT_EQ(observed.coverage, plain.coverage) << "jobs " << jobs;
    EXPECT_EQ(observed.coverage_hash, plain.coverage_hash) << "jobs " << jobs;
    EXPECT_TRUE(observed.corpus == plain.corpus) << "jobs " << jobs;
    EXPECT_EQ(observed.failures.size(), plain.failures.size()) << "jobs " << jobs;

    ASSERT_GE(snapshots.size(), 2u);  // at least one generation + the final one
    EXPECT_TRUE(snapshots.back().final_snapshot);
    EXPECT_EQ(snapshots.back().executed, observed.executed);
    EXPECT_EQ(snapshots.back().coverage, observed.coverage);
    EXPECT_EQ(snapshots.back().corpus, observed.corpus.size());
    EXPECT_EQ(snapshots.back().budget, spec.budget);
    for (std::size_t i = 0; i + 1 < snapshots.size(); ++i) {
      EXPECT_FALSE(snapshots[i].final_snapshot);
      EXPECT_EQ(snapshots[i].generation, i);
      EXPECT_LE(snapshots[i].executed, snapshots[i + 1].executed);
    }
  }
}

}  // namespace
}  // namespace rstp::obs
