// Tests for the high-level Link API.
#include "rstp/api/link.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/core/bounds.h"

namespace rstp::api {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  return bytes;
}

TEST(BitsBytes, RoundTrip) {
  const auto bytes = random_bytes(257, 1);
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(BitsBytes, MsbFirstLayout) {
  const std::uint8_t one_byte[] = {0b10110001};
  const auto bits = bytes_to_bits(one_byte);
  const std::vector<ioa::Bit> expected = {1, 0, 1, 1, 0, 0, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(BitsBytes, RejectsNonByteMultiple) {
  const std::vector<ioa::Bit> bits(7, 0);
  EXPECT_THROW((void)bits_to_bytes(bits), ContractViolation);
}

TEST(Link, TransfersBytesIntact) {
  LinkOptions options;
  options.params = core::TimingParams::make(1, 2, 8);
  options.k = 8;
  Link link{options};
  const auto payload = random_bytes(64, 2);
  const TransferResult result = link.transfer(payload);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.received, payload);
  EXPECT_EQ(result.stats.payload_bytes, 64u);
  EXPECT_EQ(result.stats.payload_bits, 512u);
  EXPECT_GT(result.stats.ticks_per_bit, 0.0);
  EXPECT_GT(result.stats.data_packets, 0u);
}

TEST(Link, EveryExplicitProtocolWorks) {
  const auto payload = random_bytes(16, 3);
  for (const auto p :
       {LinkProtocol::Alpha, LinkProtocol::Beta, LinkProtocol::Gamma, LinkProtocol::AltBit}) {
    LinkOptions options;
    options.params = core::TimingParams::make(1, 2, 6);
    options.k = 4;
    options.protocol = p;
    Link link{options};
    const TransferResult result = link.transfer(payload);
    EXPECT_TRUE(result.ok) << static_cast<int>(p);
    EXPECT_EQ(result.received, payload) << static_cast<int>(p);
  }
}

TEST(Link, AutoSelectionFollowsTheBounds) {
  // Tight timing → β; high uncertainty → γ (the E6 crossover).
  EXPECT_EQ(Link::recommend(core::TimingParams::make(1, 1, 16), 8),
            protocols::ProtocolKind::Beta);
  EXPECT_EQ(Link::recommend(core::TimingParams::make(1, 16, 16), 8),
            protocols::ProtocolKind::Gamma);
  LinkOptions tight;
  tight.params = core::TimingParams::make(1, 1, 16);
  EXPECT_EQ(Link{tight}.resolved_protocol(), protocols::ProtocolKind::Beta);
  LinkOptions loose;
  loose.params = core::TimingParams::make(1, 16, 16);
  EXPECT_EQ(Link{loose}.resolved_protocol(), protocols::ProtocolKind::Gamma);
}

TEST(Link, VerifyOptionRunsTheTraceChecker) {
  LinkOptions options;
  options.params = core::TimingParams::make(1, 2, 6);
  options.k = 4;
  options.verify = true;
  Link link{options};
  const TransferResult result = link.transfer(random_bytes(8, 4));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.stats.verified);
}

TEST(Link, EmptyPayload) {
  Link link{LinkOptions{}};
  const TransferResult result = link.transfer({});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.received.empty());
  EXPECT_EQ(result.stats.data_packets, 0u);
  EXPECT_DOUBLE_EQ(result.stats.ticks_per_bit, 0.0);
}

TEST(Link, AcksOnlyForActiveProtocols) {
  const auto payload = random_bytes(8, 5);
  LinkOptions options;
  options.params = core::TimingParams::make(1, 2, 6);
  options.k = 4;
  options.protocol = LinkProtocol::Beta;
  EXPECT_EQ(Link{options}.transfer(payload).stats.ack_packets, 0u);
  options.protocol = LinkProtocol::Gamma;
  EXPECT_GT(Link{options}.transfer(payload).stats.ack_packets, 0u);
}

TEST(Link, EffortWithinBoundsForLargePayload) {
  LinkOptions options;
  options.params = core::TimingParams::make(1, 2, 16);
  options.k = 16;
  options.protocol = LinkProtocol::Beta;
  Link link{options};
  const TransferResult result = link.transfer(random_bytes(1024, 6));
  ASSERT_TRUE(result.ok);
  const core::BoundsReport bounds = core::compute_bounds(options.params, options.k);
  // Byte payloads are generally not block-aligned: allow the padding factor.
  const double blocks = std::ceil(static_cast<double>(result.stats.payload_bits) /
                                  static_cast<double>(bounds.beta_bits_per_block));
  const double padding_factor =
      blocks * static_cast<double>(bounds.beta_bits_per_block) /
      static_cast<double>(result.stats.payload_bits);
  EXPECT_LE(result.stats.ticks_per_bit, bounds.beta_upper * padding_factor * (1 + 1e-9));
}

TEST(Link, RandomizedEnvironmentsStayCorrect) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    LinkOptions options;
    options.params = core::TimingParams::make(2, 3, 9);
    options.k = 8;
    options.environment = core::Environment::randomized(seed);
    options.verify = true;
    Link link{options};
    const TransferResult result = link.transfer(random_bytes(32, seed));
    EXPECT_TRUE(result.ok) << "seed " << seed;
    EXPECT_TRUE(result.stats.verified) << "seed " << seed;
  }
}

TEST(Link, InvalidOptionsRejected) {
  LinkOptions options;
  options.k = 1;
  EXPECT_THROW(Link{options}, ContractViolation);
  LinkOptions bad_params;
  bad_params.params = core::TimingParams{Duration{3}, Duration{2}, Duration{5}};
  EXPECT_THROW(Link{bad_params}, ContractViolation);
}

}  // namespace
}  // namespace rstp::api
