// Adversary synthesis suite (ctest -L adversary): pins the three guarantees
// sim/adversary.h advertises — bitwise determinism across --jobs, the
// hand-coded-adversary floor (best ≥ Environment::worst_case() on every
// cell), and artifact replayability — plus the checked-in gap baseline
// (tests/golden/adversary_baseline.jsonl) that turns the §5 lower-bound gap
// into a regression-gated number. Paths are injected by CMake as
// RSTP_GOLDEN_ADVERSARY_BASELINE_PATH / RSTP_GOLDEN_ADVERSARY_ARTIFACT_PATH.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "rstp/common/check.h"
#include "rstp/core/effort.h"
#include "rstp/obs/diff.h"
#include "rstp/obs/sinks.h"
#include "rstp/sim/adversary.h"

namespace rstp::sim {
namespace {

AdversarySpec quick_spec(unsigned jobs) {
  AdversarySpec spec;
  spec.grid = quick_adversary_grid();
  spec.seed = 1;
  spec.budget = 24;
  spec.jobs = jobs;
  return spec;
}

/// Mirrors the CI invocation that produced the checked-in baseline:
/// `rstp adversary --grid golden --budget 48 --seed 1`.
AdversarySpec golden_spec(unsigned jobs) {
  AdversarySpec spec;
  spec.grid = golden_adversary_grid();
  spec.seed = 1;
  spec.budget = 48;
  spec.jobs = jobs;
  return spec;
}

TEST(AdversarySearch, BitwiseIdenticalAcrossJobs) {
  // The determinism identity mirrors fuzz_repro_test: the worker count may
  // only change wall-clock, never a single result bit.
  const AdversaryResult one = run_adversary_search(quick_spec(1));
  const AdversaryResult three = run_adversary_search(quick_spec(3));
  const AdversaryResult eight = run_adversary_search(quick_spec(8));
  EXPECT_EQ(one.result_hash, three.result_hash);
  EXPECT_EQ(one.result_hash, eight.result_hash);
  ASSERT_EQ(one.cells.size(), three.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(one.cells[i].best.last_send, three.cells[i].best.last_send);
    EXPECT_EQ(one.cells[i].best.output_hash, three.cells[i].best.output_hash);
    EXPECT_EQ(one.cells[i].best.coverage_hash, three.cells[i].best.coverage_hash);
    EXPECT_EQ(one.cells[i].best_genome, three.cells[i].best_genome);
    EXPECT_EQ(one.cells[i].executed, three.cells[i].executed);
  }
}

TEST(AdversarySearch, SynthesizedAdversaryNeverFallsBelowTheHandCodedOne) {
  // Generation 0 seeds the population with hand_equivalent_genome() and the
  // elite is monotone, so this must hold for any budget — including the
  // degenerate budget that only runs the seeds.
  const AdversaryResult result = run_adversary_search(quick_spec(2));
  ASSERT_FALSE(result.cells.empty());
  EXPECT_TRUE(result.all_beat_hand());
  for (const AdversaryCellResult& cell : result.cells) {
    SCOPED_TRACE(std::string(protocols::to_string(cell.cell.protocol)));
    EXPECT_TRUE(cell.best.fit());
    EXPECT_GE(cell.best.last_send, cell.hand_last_send);
    EXPECT_GT(cell.lower_bound, 0.0);
    EXPECT_GE(cell.gap_ratio, 1.0);  // empirical effort sits above the bound
    EXPECT_GT(cell.executed, 0u);
    EXPECT_LE(cell.executed, quick_spec(2).budget);
  }
}

TEST(AdversarySearch, HandEquivalentGenomeReproducesWorstCaseEnvironment) {
  // The genome encoding of Environment::worst_case() (SlowFixed/SlowFixed/
  // MaxDelay) must produce the exact run the effort layer measures — the
  // floor the search is gated against is the paper's hand-built adversary,
  // not an approximation of it.
  for (const AdversaryCell& cell : quick_adversary_grid()) {
    SCOPED_TRACE(std::string(protocols::to_string(cell.protocol)));
    const std::uint64_t input_seed = 77;
    const GenomeEval eval =
        evaluate_genome(cell, input_seed, hand_equivalent_genome(cell.params));
    ASSERT_TRUE(eval.fit());

    protocols::ProtocolConfig cfg;
    cfg.params = cell.params;
    cfg.k = cell.k;
    const std::size_t bits = cell.protocol == protocols::ProtocolKind::Indexed
                                 ? 2 * cell.input_bits
                                 : cell.input_bits;
    cfg.input = core::make_random_input(bits, input_seed);
    const core::ProtocolRun run = core::run_protocol(
        cell.protocol, cfg, core::Environment::worst_case(), /*record_trace=*/false);
    ASSERT_TRUE(run.output_correct);
    ASSERT_TRUE(run.result.last_transmitter_send.has_value());
    EXPECT_EQ(eval.last_send, run.result.last_transmitter_send->ticks());
    EXPECT_EQ(eval.end_time, run.result.end_time.ticks());
  }
}

TEST(AdversaryRepro, ArtifactRoundTripsAndReplaysBitwise) {
  const AdversaryResult result = run_adversary_search(quick_spec(2));
  const auto widest = std::max_element(
      result.cells.begin(), result.cells.end(),
      [](const auto& a, const auto& b) { return a.gap_ratio < b.gap_ratio; });
  ASSERT_NE(widest, result.cells.end());
  const AdversaryRepro repro = make_adversary_repro(*widest, quick_spec(2).max_events);

  std::stringstream file;
  write_adversary_repro(file, repro);
  const AdversaryRepro parsed = parse_adversary_repro(file);
  EXPECT_EQ(parsed.cell, repro.cell);
  EXPECT_EQ(parsed.input_seed, repro.input_seed);
  EXPECT_EQ(parsed.genome, repro.genome);
  EXPECT_EQ(parsed.expect_last_send, repro.expect_last_send);
  EXPECT_EQ(parsed.expect_output_hash, repro.expect_output_hash);

  const AdversaryReplayOutcome outcome = replay_adversary_repro(parsed);
  EXPECT_TRUE(outcome.reproduced) << outcome.mismatch;
  EXPECT_EQ(outcome.eval.last_send, repro.expect_last_send);
}

TEST(AdversaryRepro, TamperedExpectationIsCaughtByReplay) {
  const AdversaryResult result = run_adversary_search(quick_spec(1));
  ASSERT_FALSE(result.cells.empty());
  AdversaryRepro repro = make_adversary_repro(result.cells.front(), quick_spec(1).max_events);
  repro.expect_last_send += 1;
  const AdversaryReplayOutcome outcome = replay_adversary_repro(repro);
  EXPECT_FALSE(outcome.reproduced);
  EXPECT_NE(outcome.mismatch.find("last_send"), std::string::npos) << outcome.mismatch;
}

TEST(AdversaryRepro, IllegalGenomeInAnArtifactIsRejectedAtParse) {
  // The parser enforces legality at `end`, so no artifact can smuggle an
  // out-of-model schedule past the gate: a delay beyond d must throw, with
  // the structured defect (field + index) in the message.
  AdversaryRepro repro;
  repro.cell.params = core::TimingParams::make(1, 2, 6);
  repro.genome = hand_equivalent_genome(repro.cell.params);
  repro.genome.delays = {Duration{repro.cell.params.d.ticks() + 1}};
  std::stringstream file;
  write_adversary_repro(file, repro);
  try {
    (void)parse_adversary_repro(file);
    FAIL() << "illegal genome parsed";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string{e.what()}.find("delays"), std::string::npos) << e.what();
  }
}

std::vector<obs::RunMetricsRecord> read_gap_baseline() {
  std::ifstream in{RSTP_GOLDEN_ADVERSARY_BASELINE_PATH};
  EXPECT_TRUE(in.good()) << "cannot open " << RSTP_GOLDEN_ADVERSARY_BASELINE_PATH;
  return obs::read_run_metrics_jsonl(in);
}

TEST(GoldenGapBaseline, CheckedInFileCoversTheGoldenGrid) {
  EXPECT_EQ(read_gap_baseline().size(), golden_adversary_grid().size());
}

TEST(GoldenGapBaseline, RerunningTheSearchReproducesTheBaselineExactly) {
  // Any delta is either a real behavior change (regenerate the baseline
  // deliberately: `rstp adversary --grid golden --budget 48 --seed 1
  // --metrics-out tests/golden/adversary_baseline.jsonl`) or lost
  // determinism — both reviewer-visible events.
  const std::vector<obs::RunMetricsRecord> baseline = read_gap_baseline();
  const AdversaryResult result = run_adversary_search(golden_spec(1));
  EXPECT_TRUE(result.all_beat_hand());
  const obs::DiffReport report =
      diff_metrics(baseline, adversary_metrics_records(result, golden_spec(1).seed));
  EXPECT_EQ(report.matched, baseline.size());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const obs::CellDiff& cell : report.cells) {
    ADD_FAILURE() << "cell " << cell.key.protocol << " c1=" << cell.key.c1
                  << " k=" << cell.key.k << " drifted from the gap baseline ("
                  << cell.deltas.size() << " quantities)";
  }
  for (const obs::QuantityDelta& agg : report.aggregates) {
    EXPECT_FALSE(agg.changed()) << agg.name;
  }
}

TEST(GoldenGapBaseline, ThreadedRerunMatchesToo) {
  const obs::DiffReport report =
      diff_metrics(read_gap_baseline(),
                   adversary_metrics_records(run_adversary_search(golden_spec(3)),
                                             golden_spec(3).seed));
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
}

TEST(GoldenGapArtifact, CheckedInArtifactReplaysBitwise) {
  std::ifstream in{RSTP_GOLDEN_ADVERSARY_ARTIFACT_PATH};
  ASSERT_TRUE(in.good()) << "cannot open " << RSTP_GOLDEN_ADVERSARY_ARTIFACT_PATH;
  const AdversaryRepro repro = parse_adversary_repro(in);
  const AdversaryReplayOutcome outcome = replay_adversary_repro(repro);
  EXPECT_TRUE(outcome.reproduced) << outcome.mismatch;
  EXPECT_TRUE(outcome.eval.fit());
}

}  // namespace
}  // namespace rstp::sim
