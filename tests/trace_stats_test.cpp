// Edge-case tests for core::compute_trace_stats: degenerate traces and the
// tail-latency percentiles added for latency-budget decisions.
#include <gtest/gtest.h>

#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/ioa/trace.h"

namespace rstp {
namespace {

using ioa::Action;
using ioa::Actor;
using ioa::Packet;
using ioa::TimedTrace;

TEST(TraceStatsEdge, EmptyTraceLeavesEverythingZeroAndUnset) {
  const core::TraceStats stats = core::compute_trace_stats(TimedTrace{});
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.max_in_flight, 0u);
  EXPECT_EQ(stats.transmitter.steps, 0u);
  EXPECT_EQ(stats.receiver.steps, 0u);
  EXPECT_DOUBLE_EQ(stats.transmitter.mean_gap, 0.0);
  EXPECT_DOUBLE_EQ(stats.write_throughput, 0.0);
  EXPECT_FALSE(stats.transmitter.min_gap.has_value());
  EXPECT_FALSE(stats.data.min_delay.has_value());
  EXPECT_FALSE(stats.data.p50_delay.has_value());
  EXPECT_FALSE(stats.last_transmitter_send.has_value());
}

TEST(TraceStatsEdge, UnmatchedSendsOnlyCountAsOutstanding) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::send(Packet::to_receiver(1)), 0});
  trace.append({at_tick(2), Actor::Transmitter, Action::send(Packet::to_receiver(2)), 1});
  trace.append({at_tick(3), Actor::Receiver, Action::send(Packet::to_transmitter(0)), 2});
  const core::TraceStats stats = core::compute_trace_stats(trace);
  EXPECT_EQ(stats.data.delivered, 0u);
  EXPECT_EQ(stats.data.unmatched_sends, 2u);
  EXPECT_EQ(stats.acks.unmatched_sends, 1u);
  EXPECT_EQ(stats.max_in_flight, 3u);
  // No delivery ⇒ no delay distribution at all, not a zero-filled one.
  EXPECT_FALSE(stats.data.min_delay.has_value());
  EXPECT_FALSE(stats.data.p50_delay.has_value());
  EXPECT_DOUBLE_EQ(stats.data.mean_delay, 0.0);
  ASSERT_TRUE(stats.last_transmitter_send.has_value());
  EXPECT_EQ(*stats.last_transmitter_send, at_tick(2));
}

TEST(TraceStatsEdge, SingleEventTraceHasNoGapsOrThroughput) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Transmitter, Action::internal(0, "wait_t"), 0});
  const core::TraceStats stats = core::compute_trace_stats(trace);
  EXPECT_EQ(stats.transmitter.steps, 1u);
  EXPECT_FALSE(stats.transmitter.min_gap.has_value());
  EXPECT_DOUBLE_EQ(stats.transmitter.mean_gap, 0.0);
  EXPECT_EQ(stats.writes, 0u);
  // end_time 0 and no writes: throughput must stay 0, not divide by zero.
  EXPECT_DOUBLE_EQ(stats.write_throughput, 0.0);
}

TEST(TraceStatsEdge, WriteAtTickZeroKeepsThroughputZero) {
  TimedTrace trace;
  trace.append({at_tick(0), Actor::Receiver, Action::write(1), 0});
  const core::TraceStats stats = core::compute_trace_stats(trace);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_DOUBLE_EQ(stats.write_throughput, 0.0);  // zero-duration execution
}

TEST(TraceStatsPercentiles, NearestRankTailsOverAKnownDistribution) {
  // 100 deliveries: 90 at delay 2, 9 at delay 7, one straggler at 30.
  TimedTrace trace;
  std::uint64_t seq = 0;
  std::int64_t t = 0;
  const auto deliver = [&](std::int64_t delay) {
    trace.append({at_tick(t), Actor::Transmitter, Action::send(Packet::to_receiver(1)), seq++});
    trace.append({at_tick(t + delay), Actor::Channel, Action::recv(Packet::to_receiver(1)),
                  seq++});
    t += delay + 1;
  };
  for (int i = 0; i < 90; ++i) deliver(2);
  for (int i = 0; i < 9; ++i) deliver(7);
  deliver(30);
  const core::TraceStats stats = core::compute_trace_stats(trace);
  ASSERT_EQ(stats.data.delivered, 100u);
  ASSERT_TRUE(stats.data.p50_delay.has_value());
  EXPECT_EQ(stats.data.p50_delay->ticks(), 2);
  EXPECT_EQ(stats.data.p95_delay->ticks(), 7);
  EXPECT_EQ(stats.data.p99_delay->ticks(), 7);
  EXPECT_EQ(stats.data.max_delay->ticks(), 30);
  // The mean (2.73) would pass a budget of 3 that p95 (7) rightly fails.
  EXPECT_LT(stats.data.mean_delay, 3.0);
  EXPECT_GT(static_cast<double>(stats.data.p95_delay->ticks()), 3.0);
}

TEST(TraceStatsPercentiles, RealRunTailsAreWithinTheModelWindow) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 8);
  cfg.k = 8;
  cfg.input = core::make_random_input(200, 5);
  const core::ProtocolRun run = core::run_protocol(
      protocols::ProtocolKind::Gamma, cfg, core::Environment::randomized(9));
  const core::TraceStats stats = core::compute_trace_stats(run.result.trace);
  ASSERT_TRUE(stats.data.p50_delay.has_value());
  EXPECT_LE(stats.data.p50_delay->ticks(), stats.data.p95_delay->ticks());
  EXPECT_LE(stats.data.p95_delay->ticks(), stats.data.p99_delay->ticks());
  EXPECT_LE(stats.data.p99_delay->ticks(), stats.data.max_delay->ticks());
  EXPECT_LE(stats.data.p99_delay->ticks(), cfg.params.d.ticks());
  EXPECT_GE(stats.data.p50_delay->ticks(), stats.data.min_delay->ticks());
}

}  // namespace
}  // namespace rstp
