// Tests for the empirical effort harness (paper §4's eff(A), measured).
#include "rstp/core/effort.h"

#include <gtest/gtest.h>

#include "rstp/common/check.h"
#include "rstp/core/bounds.h"

namespace rstp::core {
namespace {

using protocols::ProtocolKind;

TEST(Workloads, RandomInputIsSeededAndBinary) {
  const auto a = make_random_input(128, 5);
  const auto b = make_random_input(128, 5);
  const auto c = make_random_input(128, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  int ones = 0;
  for (const auto bit : a) {
    ASSERT_LE(bit, 1);
    ones += bit;
  }
  EXPECT_GT(ones, 32);  // roughly balanced
  EXPECT_LT(ones, 96);
}

TEST(Workloads, AlternatingAndConstant) {
  EXPECT_EQ(make_alternating_input(4), (std::vector<ioa::Bit>{0, 1, 0, 1}));
  EXPECT_EQ(make_constant_input(3, 1), (std::vector<ioa::Bit>{1, 1, 1}));
  EXPECT_THROW((void)make_constant_input(3, 2), ContractViolation);
}

TEST(Environment, PresetsHaveDocumentedShapes) {
  const Environment worst = Environment::worst_case();
  EXPECT_EQ(worst.transmitter_sched, Environment::Sched::SlowFixed);
  EXPECT_EQ(worst.delay, Environment::Delay::Max);
  const Environment adv = Environment::adversarial_fast();
  EXPECT_EQ(adv.transmitter_sched, Environment::Sched::FastFixed);
  EXPECT_EQ(adv.delay, Environment::Delay::Adversarial);
  const Environment rnd = Environment::randomized(42);
  EXPECT_EQ(rnd.seed, 42u);
  EXPECT_EQ(rnd.delay, Environment::Delay::Random);
}

TEST(Effort, MeasurementReportsCorrectnessAndQuiescence) {
  const auto params = TimingParams::make(1, 2, 4);
  const auto m = measure_effort(ProtocolKind::Alpha, params, 2, 32, Environment::worst_case());
  EXPECT_EQ(m.n, 32u);
  EXPECT_TRUE(m.output_correct);
  EXPECT_TRUE(m.quiescent);
  EXPECT_TRUE(m.last_send.has_value());
  EXPECT_GT(m.effort, 0.0);
  EXPECT_EQ(m.transmitter_sends, 32u);
}

TEST(Effort, ZeroLengthInputHasZeroEffort) {
  const auto params = TimingParams::make(1, 2, 4);
  const auto m = measure_effort(ProtocolKind::Beta, params, 4, 0, Environment::worst_case());
  EXPECT_TRUE(m.output_correct);
  EXPECT_FALSE(m.last_send.has_value());
  EXPECT_DOUBLE_EQ(m.effort, 0.0);
}

TEST(Effort, WorstCaseDominatesOtherEnvironments) {
  // The worst-case environment must yield ≥ effort of faster environments.
  const auto params = TimingParams::make(1, 3, 6);
  for (const auto kind : {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma}) {
    const auto worst = measure_effort(kind, params, 4, 128, Environment::worst_case());
    Environment fast;
    fast.transmitter_sched = Environment::Sched::FastFixed;
    fast.receiver_sched = Environment::Sched::FastFixed;
    fast.delay = Environment::Delay::Zero;
    const auto best = measure_effort(kind, params, 4, 128, fast);
    ASSERT_TRUE(worst.output_correct) << protocols::to_string(kind);
    ASSERT_TRUE(best.output_correct) << protocols::to_string(kind);
    EXPECT_GE(worst.effort, best.effort - 1e-9) << protocols::to_string(kind);
  }
}

TEST(Effort, ConvergesAsNGrows) {
  // effort(n) should approach the asymptote from below-or-near as n grows;
  // successive measurements differ less and less.
  const auto params = TimingParams::make(1, 2, 6);
  const auto m64 = measure_effort(ProtocolKind::Beta, params, 8, 64, Environment::worst_case());
  const auto m256 = measure_effort(ProtocolKind::Beta, params, 8, 256, Environment::worst_case());
  const auto m1024 =
      measure_effort(ProtocolKind::Beta, params, 8, 1024, Environment::worst_case());
  const double d1 = std::abs(m256.effort - m64.effort);
  const double d2 = std::abs(m1024.effort - m256.effort);
  EXPECT_LE(d2, d1 + 1e-9);
}

TEST(Effort, MeasurementsRespectTheoremBoundsAcrossGrid) {
  // Parameter sweep: worst-case measured effort sits between the matching
  // lower bound (finite-n slack 0.75) and the protocol's upper bound.
  for (const std::uint32_t k : {2u, 4u, 16u}) {
    for (const std::int64_t d : {4, 12}) {
      const auto params = TimingParams::make(1, 2, d);
      const BoundsReport bounds = compute_bounds(params, k);
      // Block-align n (the bounds assume |X| ≡ 0 mod B, per the paper).
      const auto beta = measure_effort(ProtocolKind::Beta, params, k,
                                       bounds.beta_bits_per_block * 50,
                                       Environment::worst_case());
      ASSERT_TRUE(beta.output_correct) << "beta k=" << k << " d=" << d;
      EXPECT_LE(beta.effort, bounds.beta_upper * (1 + 1e-9)) << "k=" << k << " d=" << d;
      EXPECT_GE(beta.effort, bounds.passive_lower * 0.75) << "k=" << k << " d=" << d;

      const auto gamma = measure_effort(ProtocolKind::Gamma, params, k,
                                        bounds.gamma_bits_per_block * 50,
                                        Environment::worst_case());
      ASSERT_TRUE(gamma.output_correct) << "gamma k=" << k << " d=" << d;
      EXPECT_LE(gamma.effort, bounds.gamma_upper * (1 + 1e-9)) << "k=" << k << " d=" << d;
      EXPECT_GE(gamma.effort, bounds.active_lower * 0.75) << "k=" << k << " d=" << d;
    }
  }
}

TEST(EffortDistribution, SummaryIsConsistent) {
  const auto params = TimingParams::make(1, 3, 9);
  const auto dist =
      measure_effort_distribution(ProtocolKind::Beta, params, 8, 120, /*samples=*/50);
  EXPECT_TRUE(dist.all_correct);
  EXPECT_EQ(dist.samples, 50u);
  EXPECT_LE(dist.min, dist.mean);
  EXPECT_LE(dist.mean, dist.max);
  EXPECT_LE(dist.p95, dist.max);
  EXPECT_GE(dist.p95, dist.min);
  EXPECT_GT(dist.min, 0.0);
}

TEST(EffortDistribution, WorstCaseEnvironmentDominatesRandomSampling) {
  // The max-over-good-executions in eff(A)'s definition: the deterministic
  // worst-case environment must upper-bound anything random sampling finds.
  const auto params = TimingParams::make(1, 3, 9);
  for (const auto kind : {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma}) {
    const auto worst =
        measure_effort(kind, params, 8, 120, Environment::worst_case(), 0xD157F00D);
    const auto dist = measure_effort_distribution(kind, params, 8, 120, 40, 0x0D15);
    ASSERT_TRUE(worst.output_correct) << protocols::to_string(kind);
    ASSERT_TRUE(dist.all_correct) << protocols::to_string(kind);
    EXPECT_GE(worst.effort, dist.max - 1e-9) << protocols::to_string(kind);
  }
}

TEST(EffortDistribution, DegenerateInputsRejected) {
  const auto params = TimingParams::make(1, 2, 4);
  EXPECT_THROW((void)measure_effort_distribution(ProtocolKind::Beta, params, 4, 0, 10),
               ContractViolation);
  EXPECT_THROW((void)measure_effort_distribution(ProtocolKind::Beta, params, 4, 10, 0),
               ContractViolation);
}

TEST(Effort, SchedulerAndPolicyFactoriesCoverAllEnums) {
  const auto params = TimingParams::make(1, 2, 4);
  for (const auto s : {Environment::Sched::SlowFixed, Environment::Sched::FastFixed,
                       Environment::Sched::Random, Environment::Sched::Sawtooth}) {
    EXPECT_NE(make_scheduler(s, params, 1), nullptr);
  }
  for (const auto del : {Environment::Delay::Max, Environment::Delay::Zero,
                         Environment::Delay::Random, Environment::Delay::Adversarial}) {
    EXPECT_NE(make_delivery_policy(del, params, 1), nullptr);
  }
}

}  // namespace
}  // namespace rstp::core
