// Tests for the channel automaton C(P) and its delivery policies.
#include "rstp/channel/channel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"

namespace rstp::channel {
namespace {

using ioa::Packet;

TEST(Channel, ZeroDelayDeliversImmediately) {
  Channel chan{Duration{10}, make_zero_delay()};
  EXPECT_TRUE(chan.empty());
  chan.send(Packet::to_receiver(1), at_tick(5));
  ASSERT_TRUE(chan.next_delivery_time().has_value());
  EXPECT_EQ(*chan.next_delivery_time(), at_tick(5));
  const auto due = chan.collect_due(at_tick(5));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].packet.payload, 1u);
  EXPECT_EQ(due[0].sent_at, at_tick(5));
  EXPECT_TRUE(chan.empty());
}

TEST(Channel, MaxDelayDeliversAtDeadline) {
  Channel chan{Duration{7}, make_max_delay()};
  chan.send(Packet::to_receiver(0), at_tick(3));
  EXPECT_EQ(*chan.next_delivery_time(), at_tick(10));
  EXPECT_TRUE(chan.collect_due(at_tick(9)).empty());
  EXPECT_EQ(chan.collect_due(at_tick(10)).size(), 1u);
}

TEST(Channel, FixedDelayPreservesFifo) {
  Channel chan{Duration{10}, make_fixed_delay(Duration{4})};
  for (std::uint32_t p = 0; p < 5; ++p) {
    chan.send(Packet::to_receiver(p), at_tick(p));
  }
  const auto due = chan.collect_due(at_tick(100));
  ASSERT_EQ(due.size(), 5u);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(due[p].packet.payload, p);
    EXPECT_EQ(due[p].deliver_at, at_tick(p + 4));
  }
}

TEST(Channel, PolicyViolationIsModelError) {
  // A fixed delay larger than d violates Δ(C(P)).
  Channel chan{Duration{3}, make_fixed_delay(Duration{5})};
  EXPECT_THROW(chan.send(Packet::to_receiver(0), at_tick(0)), ModelError);
}

TEST(Channel, CollectDueReturnsSortedByDeliveryOrder) {
  Channel chan{Duration{10}, make_max_delay()};
  chan.send(Packet::to_receiver(2), at_tick(4));  // due 14
  chan.send(Packet::to_receiver(1), at_tick(1));  // due 11
  chan.send(Packet::to_receiver(3), at_tick(7));  // due 17
  EXPECT_EQ(chan.in_flight(), 3u);
  const auto due = chan.collect_due(at_tick(15));
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].packet.payload, 1u);
  EXPECT_EQ(due[1].packet.payload, 2u);
  EXPECT_EQ(chan.in_flight(), 1u);
}

TEST(Channel, EqualTimeTieBreaksBySendSeq) {
  // Two packets scheduled for the same instant arrive in send order when the
  // policy does not override order_key.
  Channel chan{Duration{5}, make_fixed_delay(Duration{5})};
  chan.send(Packet::to_receiver(9), at_tick(0));
  chan.send(Packet::to_receiver(8), at_tick(0));
  const auto due = chan.collect_due(at_tick(5));
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].packet.payload, 9u);
  EXPECT_EQ(due[1].packet.payload, 8u);
}

TEST(Channel, RandomPolicyStaysWithinWindowAndCanReorder) {
  Channel chan{Duration{20}, make_uniform_random(99, Duration{0}, Duration{20}, Duration{20})};
  for (std::uint32_t p = 0; p < 50; ++p) {
    chan.send(Packet::to_receiver(p), at_tick(p));
  }
  const auto due = chan.collect_due(at_tick(1000));
  ASSERT_EQ(due.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 0; i < due.size(); ++i) {
    const Duration delay = due[i].deliver_at - due[i].sent_at;
    EXPECT_GE(delay.ticks(), 0);
    EXPECT_LE(delay.ticks(), 20);
    if (i > 0 && due[i].send_seq < due[i - 1].send_seq) reordered = true;
  }
  EXPECT_TRUE(reordered) << "uniform random delays over a long stream should reorder";
}

TEST(Channel, ConstructionContracts) {
  EXPECT_THROW(Channel(Duration{-1}, make_zero_delay()), ContractViolation);
  EXPECT_THROW(Channel(Duration{5}, nullptr), ContractViolation);
}

TEST(UniformRandomPolicy, RejectsInvertedBoundsAtConstruction) {
  // Regression: lo > hi used to slip through construction and only blow up
  // (or silently bias) on the first draw. The contract is checked up front.
  EXPECT_THROW(make_uniform_random(1, Duration{5}, Duration{2}, Duration{10}),
               ContractViolation);
}

TEST(UniformRandomPolicy, RejectsUpperBoundBeyondChannelDeadline) {
  // hi > d would let the policy pick instants the channel must then reject
  // as ModelErrors; the factory refuses the configuration outright.
  EXPECT_THROW(make_uniform_random(1, Duration{0}, Duration{11}, Duration{10}),
               ContractViolation);
  EXPECT_THROW(make_uniform_random(1, Duration{-1}, Duration{4}, Duration{10}),
               ContractViolation);
  // The boundary itself is legal: delays uniform over the full [0, d].
  EXPECT_NO_THROW(make_uniform_random(1, Duration{0}, Duration{10}, Duration{10}));
}

TEST(AdversarialBatch, DeliversWholeWindowAtOnceInCanonicalOrder) {
  // Window 4, d 8: packets sent at 0..3 form window 0, delivered together at
  // 0*4+8 = 8 in ascending payload order regardless of send order.
  Channel chan{Duration{8}, make_adversarial_batch(Duration{4}, Duration{8})};
  chan.send(Packet::to_receiver(3), at_tick(0));
  chan.send(Packet::to_receiver(1), at_tick(1));
  chan.send(Packet::to_receiver(2), at_tick(2));
  chan.send(Packet::to_receiver(1), at_tick(3));
  // Window 1 (sends at 4..7) delivers at 12.
  chan.send(Packet::to_receiver(0), at_tick(4));
  EXPECT_EQ(*chan.next_delivery_time(), at_tick(8));
  const auto first = chan.collect_due(at_tick(8));
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0].packet.payload, 1u);
  EXPECT_EQ(first[1].packet.payload, 1u);
  EXPECT_EQ(first[2].packet.payload, 2u);
  EXPECT_EQ(first[3].packet.payload, 3u);
  const auto second = chan.collect_due(at_tick(12));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].packet.payload, 0u);
}

TEST(AdversarialBatch, ErasesIntraWindowOrderInformation) {
  // Two different send orders of the same multiset produce identical
  // delivery sequences — the Lemma 5.1 indistinguishability.
  const auto run = [](std::vector<std::uint32_t> order) {
    Channel chan{Duration{6}, make_adversarial_batch(Duration{3}, Duration{6})};
    for (std::size_t i = 0; i < order.size(); ++i) {
      chan.send(Packet::to_receiver(order[i]), at_tick(static_cast<std::int64_t>(i)));
    }
    std::vector<std::uint32_t> arrivals;
    for (const auto& f : chan.collect_due(at_tick(100))) {
      arrivals.push_back(f.packet.payload);
    }
    return arrivals;
  };
  EXPECT_EQ(run({2, 0, 1}), run({1, 2, 0}));
  EXPECT_EQ(run({2, 0, 1}), run({0, 1, 2}));
}

TEST(AdversarialBatch, DescendingOrderVariant) {
  Channel chan{Duration{6},
               make_adversarial_batch(Duration{3}, Duration{6},
                                      AdversarialBatchPolicy::BatchOrder::DescendingPayload)};
  chan.send(Packet::to_receiver(0), at_tick(0));
  chan.send(Packet::to_receiver(2), at_tick(1));
  chan.send(Packet::to_receiver(1), at_tick(2));
  const auto due = chan.collect_due(at_tick(100));
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].packet.payload, 2u);
  EXPECT_EQ(due[1].packet.payload, 1u);
  EXPECT_EQ(due[2].packet.payload, 0u);
}

TEST(AdversarialBatch, RespectsDelayBoundAtWindowEdges) {
  // A packet sent at the last instant of a window still meets its deadline.
  Channel chan{Duration{4}, make_adversarial_batch(Duration{4}, Duration{4})};
  chan.send(Packet::to_receiver(0), at_tick(3));  // window 0 → delivery at 4
  const auto due = chan.collect_due(at_tick(4));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_LE((due[0].deliver_at - due[0].sent_at).ticks(), 4);
}

TEST(AdversarialBatch, WindowWiderThanDelayRejected) {
  EXPECT_THROW((void)AdversarialBatchPolicy(Duration{9}, Duration{8}), ContractViolation);
  EXPECT_THROW((void)AdversarialBatchPolicy(Duration{0}, Duration{8}), ContractViolation);
}

TEST(Channel, MinDelayWindowEnforced) {
  // Generalized model: deliveries must take at least d1.
  Channel chan{Duration{10}, make_fixed_delay(Duration{5}), /*min_delay=*/Duration{3}};
  chan.send(Packet::to_receiver(0), at_tick(0));  // delay 5 ∈ [3, 10] OK
  EXPECT_EQ(chan.min_delay(), Duration{3});
  Channel too_fast{Duration{10}, make_zero_delay(), Duration{3}};
  EXPECT_THROW(too_fast.send(Packet::to_receiver(0), at_tick(0)), ModelError);
}

TEST(Channel, MinDelayValidation) {
  EXPECT_THROW(Channel(Duration{5}, make_zero_delay(), Duration{-1}), ContractViolation);
  EXPECT_THROW(Channel(Duration{5}, make_zero_delay(), Duration{6}), ContractViolation);
  EXPECT_NO_THROW(Channel(Duration{5}, make_fixed_delay(Duration{5}), Duration{5}));
}

TEST(Channel, RandomPolicyWithinShiftedWindow) {
  Channel chan{Duration{12}, make_uniform_random(3, Duration{4}, Duration{12}, Duration{12}),
               Duration{4}};
  for (std::uint32_t p = 0; p < 40; ++p) {
    chan.send(Packet::to_receiver(p), at_tick(p));
  }
  for (const auto& f : chan.collect_due(at_tick(1000))) {
    const Duration delay = f.deliver_at - f.sent_at;
    EXPECT_GE(delay.ticks(), 4);
    EXPECT_LE(delay.ticks(), 12);
  }
}

TEST(Channel, TotalSentCounts) {
  Channel chan{Duration{5}, make_zero_delay()};
  EXPECT_EQ(chan.total_sent(), 0u);
  chan.send(Packet::to_receiver(0), at_tick(0));
  chan.send(Packet::to_transmitter(0), at_tick(1));
  EXPECT_EQ(chan.total_sent(), 2u);
}

}  // namespace
}  // namespace rstp::channel
