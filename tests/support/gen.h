// Shared randomized-input generators for the test suite. Every generator
// draws from a caller-seeded Rng so any failure reproduces from its seed —
// the same discipline the fuzzer (sim/fuzz.h) enforces for whole genomes.
#pragma once

#include "rstp/common/rng.h"
#include "rstp/core/effort.h"
#include "rstp/core/params.h"

namespace rstp::test {

/// Random model parameters with 1 ≤ c1 ≤ c2 ≤ d ≤ 16.
inline core::TimingParams random_params(Rng& rng) {
  const std::int64_t c1 = rng.next_in(1, 4);
  const std::int64_t c2 = rng.next_in(c1, 8);
  const std::int64_t d = rng.next_in(c2, 16);
  return core::TimingParams::make(c1, c2, d);
}

/// Random environment: any scheduler pair, any in-model delay policy, a
/// fresh seed for the Random variants.
inline core::Environment random_environment(Rng& rng) {
  core::Environment env;
  const auto scheds = {core::Environment::Sched::SlowFixed, core::Environment::Sched::FastFixed,
                       core::Environment::Sched::Random, core::Environment::Sched::Sawtooth};
  const auto delays = {core::Environment::Delay::Max, core::Environment::Delay::Zero,
                       core::Environment::Delay::Random};
  env.transmitter_sched = *(scheds.begin() + rng.next_below(scheds.size()));
  env.receiver_sched = *(scheds.begin() + rng.next_below(scheds.size()));
  env.delay = *(delays.begin() + rng.next_below(delays.size()));
  env.seed = rng.next_u64();
  return env;
}

}  // namespace rstp::test
