// Tests for the bounded-exhaustive explorer — and, through it, exhaustive
// verification of the paper's protocols over ALL admissible delivery
// schedules and reorderings for small instances (fixed per-process periods).
#include "rstp/ioa/explorer.h"

#include <gtest/gtest.h>

#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/general/run.h"
#include "rstp/common/check.h"
#include "rstp/protocols/base.h"
#include "rstp/protocols/factory.h"

namespace rstp::ioa {
namespace {

using protocols::ProtocolConfig;
using protocols::ProtocolKind;
using protocols::ReceiverBase;

ProtocolConfig config_for(std::vector<Bit> input, std::uint32_t k, std::int64_t d) {
  ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, d);
  cfg.k = k;
  cfg.input = std::move(input);
  return cfg;
}

/// Safety: Y is a prefix of X. Completion: Y == X.
Explorer::Predicate prefix_of(const std::vector<Bit>& input) {
  return [input](const Automaton& /*t*/, const Automaton& r) {
    const auto& receiver = dynamic_cast<const ReceiverBase&>(r);
    const auto& out = receiver.output();
    if (out.size() > input.size()) return false;
    return std::equal(out.begin(), out.end(), input.begin());
  };
}

Explorer::Predicate equals(const std::vector<Bit>& input) {
  return [input](const Automaton& /*t*/, const Automaton& r) {
    return dynamic_cast<const ReceiverBase&>(r).output() == input;
  };
}

ExplorerResult explore_protocol(ProtocolKind kind, const std::vector<Bit>& input, std::uint32_t k,
                                std::int64_t d, ExplorerConfig config = {}) {
  const ProtocolConfig cfg = config_for(input, k, d);
  const auto instance = protocols::make_protocol(kind, cfg);
  config.d = d;
  Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix_of(input),
                    equals(input)};
  return explorer.run();
}

TEST(Explorer, AlphaVerifiedExhaustively) {
  const std::vector<Bit> input = {1, 0, 1};
  const ExplorerResult r = explore_protocol(ProtocolKind::Alpha, input, 2, 2);
  EXPECT_TRUE(r.verified()) << r.first_violation;
  EXPECT_GT(r.terminal_states, 0u);
  EXPECT_GT(r.distinct_states, 10u);
}

TEST(Explorer, BetaVerifiedExhaustively) {
  // d=2 → δ=2 blocks; k=3 → μ_3(2)=6 → B=2 bits per block; 4 bits = 2 blocks.
  const std::vector<Bit> input = {1, 0, 0, 1};
  const ExplorerResult r = explore_protocol(ProtocolKind::Beta, input, 3, 2);
  EXPECT_TRUE(r.verified()) << r.first_violation;
  EXPECT_GT(r.terminal_states, 0u);
}

TEST(Explorer, GammaVerifiedExhaustively) {
  // d=2 → δ2=2; k=3 → B=2; 4 bits = 2 blocks, each gated by 2 acks.
  const std::vector<Bit> input = {0, 1, 1, 0};
  const ExplorerResult r = explore_protocol(ProtocolKind::Gamma, input, 3, 2);
  EXPECT_TRUE(r.verified()) << r.first_violation;
  EXPECT_GT(r.terminal_states, 0u);
}

TEST(Explorer, AltBitVerifiedExhaustively) {
  const std::vector<Bit> input = {1, 1, 0};
  const ExplorerResult r = explore_protocol(ProtocolKind::AltBit, input, 4, 2);
  EXPECT_TRUE(r.verified()) << r.first_violation;
}

TEST(Explorer, StrawmanFailsExhaustiveSafety) {
  // The positional strawman is NOT safe under all reorderings: the explorer
  // finds a corrupting schedule that random simulation might miss.
  // Input chosen so at least one block encodes to a non-sorted sequence.
  const std::vector<Bit> input = {0, 1, 0, 0};  // block symbols (01,00) = (1,0): unsorted
  const ExplorerResult r = explore_protocol(ProtocolKind::Strawman, input, 2, 2);
  EXPECT_FALSE(r.safety_held && r.all_terminals_complete)
      << "the explorer must find the reordering that corrupts positional coding";
}

TEST(Explorer, EveryExecutionReachesCompletion) {
  // all_terminals_complete is meaningful: terminal states exist and each has
  // Y == X even under the weirdest admissible schedules.
  const std::vector<Bit> input = {1, 0};
  for (const auto kind : protocols::kPaperProtocolKinds) {
    const ExplorerResult r = explore_protocol(kind, input, 2, 2);
    EXPECT_TRUE(r.verified()) << protocols::to_string(kind) << ": " << r.first_violation;
    EXPECT_GT(r.terminal_states, 0u) << protocols::to_string(kind);
  }
}

TEST(Explorer, LargerDelayGrowsStateSpace) {
  const std::vector<Bit> input = {1, 0};
  const ExplorerResult d1 = explore_protocol(ProtocolKind::Alpha, input, 2, 1);
  const ExplorerResult d3 = explore_protocol(ProtocolKind::Alpha, input, 2, 3);
  EXPECT_TRUE(d1.verified());
  EXPECT_TRUE(d3.verified());
  EXPECT_GT(d3.distinct_states, d1.distinct_states);
}

TEST(Explorer, StateCapReportsExhaustion) {
  ExplorerConfig tight;
  tight.max_states = 5;
  const ProtocolConfig cfg = config_for({1, 0, 1, 0}, 2, 2);
  const auto instance = protocols::make_protocol(ProtocolKind::Beta, cfg);
  tight.d = 2;
  Explorer explorer{*instance.transmitter, *instance.receiver, tight, nullptr, nullptr};
  const ExplorerResult r = explorer.run();
  EXPECT_TRUE(r.exhausted_caps);
  EXPECT_FALSE(r.verified());
}

TEST(Explorer, CounterexampleIsAGenuineGoodExecution) {
  // The strawman's violation comes with a concrete execution. Feeding it to
  // the independent trace verifier must show: timing and channel conduct are
  // CLEAN (the execution is admissible — this is the crucial part: the bug
  // is the protocol's, not the adversary's), while the output property is
  // broken.
  const std::vector<Bit> input = {0, 1, 0, 0};
  const ProtocolConfig cfg = config_for(input, 2, 2);
  const auto instance = protocols::make_protocol(ProtocolKind::Strawman, cfg);
  ExplorerConfig config;
  config.d = 2;
  Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix_of(input),
                    equals(input)};
  const ExplorerResult r = explorer.run();
  ASSERT_FALSE(r.safety_held && r.all_terminals_complete);
  ASSERT_FALSE(r.counterexample.empty());

  const core::VerifyResult verdict =
      core::verify_trace(r.counterexample, cfg.params, input,
                         {.require_complete = false, .require_drained = false});
  EXPECT_TRUE(verdict.clean_of(core::ViolationKind::StepGapTooSmall)) << verdict;
  EXPECT_TRUE(verdict.clean_of(core::ViolationKind::StepGapTooLarge)) << verdict;
  EXPECT_TRUE(verdict.clean_of(core::ViolationKind::RecvWithoutSend)) << verdict;
  EXPECT_TRUE(verdict.clean_of(core::ViolationKind::DeliveryTooLate)) << verdict;
  // The safety predicate failed on receiver OUTPUT state; if the violation
  // was a wrong write, the verifier sees it too.
  if (!r.safety_held) {
    EXPECT_FALSE(verdict.clean_of(core::ViolationKind::OutputNotPrefix)) << verdict;
  }
}

TEST(Explorer, NoCounterexampleWhenVerified) {
  const std::vector<Bit> input = {1, 0};
  const ExplorerResult r = explore_protocol(ProtocolKind::Beta, input, 3, 2);
  ASSERT_TRUE(r.verified());
  EXPECT_TRUE(r.counterexample.empty());
  EXPECT_TRUE(r.first_violation.empty());
}

TEST(Explorer, AsymmetricRatesVerifiedExhaustively) {
  // §7 fragment: the transmitter steps every 1 tick, the receiver every 2
  // (or vice versa); d = 2. Protocols are built with each side's own law.
  const std::vector<Bit> input = {1, 0};
  struct Case {
    std::int64_t t_period;
    std::int64_t r_period;
  };
  for (const Case& c : {Case{1, 2}, Case{2, 1}}) {
    for (const auto kind :
         {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma, ProtocolKind::AltBit}) {
      // Build with the general model so block/wait sizes follow the
      // transmitter's own step law.
      general::GeneralTimingParams g{Duration{c.t_period}, Duration{c.t_period},
                                     Duration{c.r_period}, Duration{c.r_period},
                                     Duration{0},          Duration{2}};
      const protocols::ProtocolConfig cfg =
          general::make_general_config(kind, g, 3, input);
      const auto instance = protocols::make_protocol(kind, cfg);
      ExplorerConfig config;
      config.d = 2;
      config.t_period = c.t_period;
      config.r_period = c.r_period;
      Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix_of(input),
                        equals(input)};
      const ExplorerResult r = explorer.run();
      EXPECT_TRUE(r.verified())
          << protocols::to_string(kind) << " t_period=" << c.t_period
          << " r_period=" << c.r_period << ": " << r.first_violation;
      EXPECT_GT(r.terminal_states, 0u) << protocols::to_string(kind);
    }
  }
}

TEST(Explorer, PeriodValidation) {
  const ProtocolConfig cfg = config_for({1}, 2, 1);
  const auto instance = protocols::make_protocol(ProtocolKind::Alpha, cfg);
  ExplorerConfig config;
  config.d = 1;
  config.t_period = 0;
  EXPECT_THROW(Explorer(*instance.transmitter, *instance.receiver, config, nullptr, nullptr),
               ContractViolation);
}

TEST(Explorer, NullPredicatesJustExplore) {
  const ProtocolConfig cfg = config_for({1}, 2, 1);
  const auto instance = protocols::make_protocol(ProtocolKind::Alpha, cfg);
  ExplorerConfig config;
  config.d = 1;
  Explorer explorer{*instance.transmitter, *instance.receiver, config, nullptr, nullptr};
  const ExplorerResult r = explorer.run();
  EXPECT_TRUE(r.safety_held);
  EXPECT_TRUE(r.all_terminals_complete);
  EXPECT_GT(r.transitions, 0u);
}

}  // namespace
}  // namespace rstp::ioa
