// Tests for the causal span tracer (obs/trace.h), the calibrated host clock
// (common/time.h), and the phase-timer overhead floor — including the
// bitwise-invisibility contract: arming the tracer must not change any
// simulation result bit, for any thread count.
#include "rstp/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rstp/common/time.h"
#include "rstp/core/effort.h"
#include "rstp/ioa/trace_io.h"
#include "rstp/obs/dashboard.h"
#include "rstp/obs/json.h"
#include "rstp/obs/metrics.h"
#include "rstp/obs/sinks.h"
#include "rstp/sim/campaign.h"

namespace rstp {
namespace {

using obs::trace::ModelRecorder;
using obs::trace::Tracer;
using obs::trace::TraceConfig;

protocols::ProtocolConfig fixed_config() {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 2, 6);
  cfg.k = 4;
  cfg.input = core::make_random_input(32, 7);
  return cfg;
}

core::ProtocolRun run_with_tracer(Tracer* tracer) {
  std::optional<ModelRecorder> recorder;
  if (tracer != nullptr) recorder.emplace(*tracer);
  return core::run_protocol(protocols::ProtocolKind::Beta, fixed_config(),
                            core::Environment::worst_case(), /*record_trace=*/true,
                            50'000'000, recorder.has_value() ? &*recorder : nullptr);
}

std::string export_json(const Tracer& tracer) {
  std::ostringstream os;
  tracer.write_chrome_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Chrome-trace export

TEST(SpanTrace, ExportIsValidChromeJsonWithAllActorsAndFlows) {
  Tracer tracer;
  const core::ProtocolRun run = run_with_tracer(&tracer);
  ASSERT_TRUE(run.output_correct);

  const obs::JsonValue doc = obs::parse_json(export_json(tracer));
  ASSERT_TRUE(doc.is_object());
  const obs::JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->string_or("schema", ""), "rstp-trace-v1");
  EXPECT_EQ(other->u64_or("dropped", 1), 0u);

  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<int> span_pids;
  std::set<std::uint64_t> flow_starts;
  std::set<std::uint64_t> flow_finishes;
  for (const obs::JsonValue& e : events->items) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "X" && e.string_or("cat", "") == "model") {
      span_pids.insert(static_cast<int>(e.u64_or("pid", 0)));
    } else if (ph == "s") {
      flow_starts.insert(e.u64_or("id", ~0ull));
    } else if (ph == "f") {
      EXPECT_EQ(e.string_or("bp", ""), "e");
      flow_finishes.insert(e.u64_or("id", ~0ull));
    }
  }
  // Model spans on all three actors: transmitter (1), channel (2), receiver (3).
  EXPECT_TRUE(span_pids.count(1)) << export_json(tracer);
  EXPECT_TRUE(span_pids.count(2));
  EXPECT_TRUE(span_pids.count(3));
  // At least one complete send → delivery lineage pair.
  std::size_t matched = 0;
  for (const std::uint64_t id : flow_starts) matched += flow_finishes.count(id);
  EXPECT_GE(matched, 1u);
}

TEST(SpanTrace, GoldenFixedSeedPrefixAndByteStableReExport) {
  Tracer first;
  (void)run_with_tracer(&first);
  const std::string a = export_json(first);
  // Re-exporting the same recording is byte-identical, and so is the export
  // of an independent second run of the same seed: the model timeline is a
  // pure function of the execution.
  EXPECT_EQ(a, export_json(first));
  Tracer second;
  (void)run_with_tracer(&second);
  EXPECT_EQ(a, export_json(second));

  // Golden structural prefix for this seed: with d=6 and the worst-case
  // schedulers stepping every c2=2, beta sends at t=0,2,4 before the first
  // delivery lands at t=6 — pinned as (ph, name) pairs in file order.
  const obs::JsonValue doc = obs::parse_json(a);
  std::vector<std::pair<std::string, std::string>> prefix;
  for (const obs::JsonValue& e : doc.find("traceEvents")->items) {
    const std::string cat = e.string_or("cat", "");
    if (cat != "model" && cat != "flow") continue;
    prefix.emplace_back(e.string_or("ph", ""), e.string_or("name", ""));
    if (prefix.size() == 8) break;
  }
  const std::vector<std::pair<std::string, std::string>> golden = {
      {"X", "send"}, {"s", "pkt_data"}, {"X", "send"}, {"s", "pkt_data"},
      {"X", "send"}, {"s", "pkt_data"}, {"X", "recv"}, {"f", "pkt_data"},
  };
  EXPECT_EQ(prefix, golden);

  // Every span name comes from the fixed vocabulary (no dynamic strings).
  const std::set<std::string> vocabulary = {
      "send",       "recv",       "write",    "idle",       "block_encode",
      "block_decode", "ack_round", "pkt_data", "pkt_ack",    "fault_drop",
      "fault_duplicate", "fault_late", "fault_corrupt"};
  for (const obs::JsonValue& e : doc.find("traceEvents")->items) {
    const std::string cat = e.string_or("cat", "");
    if (cat != "model" && cat != "flow") continue;
    EXPECT_TRUE(vocabulary.count(e.string_or("name", "?")))
        << "unexpected span name " << e.string_or("name", "?");
  }
}

TEST(SpanTrace, CapacityOverflowCountsDropsAndExportStaysValid) {
  Tracer tracer{TraceConfig{.capacity = 8}};
  (void)run_with_tracer(&tracer);
  EXPECT_GT(tracer.dropped(), 0u);
  const obs::JsonValue doc = obs::parse_json(export_json(tracer));
  EXPECT_EQ(doc.find("otherData")->u64_or("dropped", 0), tracer.dropped());
}

TEST(SpanTrace, SummaryCountsSpansFlowsAndDelayPercentiles) {
  Tracer tracer;
  (void)run_with_tracer(&tracer);
  const obs::trace::Summary s = obs::trace::summarize(tracer);
  EXPECT_GT(s.model_spans, 0u);
  EXPECT_GT(s.flow_events, 0u);
  EXPECT_GT(s.data_delivered, 0u);
  EXPECT_EQ(s.dropped, 0u);
  // Worst-case channel holds every packet exactly d = 6 ticks.
  EXPECT_EQ(s.delay_p50, 6);
  EXPECT_EQ(s.delay_p99, 6);
}

// ---------------------------------------------------------------------------
// Bitwise invisibility

TEST(SpanTrace, TracingDoesNotChangeAnyResultBit) {
  const core::ProtocolRun off = run_with_tracer(nullptr);
  Tracer tracer;
  const core::ProtocolRun on = run_with_tracer(&tracer);

  EXPECT_EQ(on.output_correct, off.output_correct);
  EXPECT_EQ(on.result.output, off.result.output);
  EXPECT_EQ(on.result.event_count, off.result.event_count);
  EXPECT_EQ(on.result.end_time, off.result.end_time);
  EXPECT_EQ(on.result.transmitter_steps, off.result.transmitter_steps);
  EXPECT_EQ(on.result.receiver_steps, off.result.receiver_steps);
  EXPECT_EQ(on.result.transmitter_sends, off.result.transmitter_sends);
  EXPECT_EQ(on.result.receiver_sends, off.result.receiver_sends);
  EXPECT_EQ(on.result.dropped_packets, off.result.dropped_packets);
  EXPECT_EQ(on.result.quiescent, off.result.quiescent);
  EXPECT_EQ(on.result.faults, off.result.faults);
  EXPECT_EQ(on.result.metrics.counters, off.result.metrics.counters);
  EXPECT_EQ(on.result.metrics.data_delay, off.result.metrics.data_delay);
  // The timed traces agree event for event (serialized comparison).
  std::ostringstream trace_on;
  std::ostringstream trace_off;
  ioa::write_trace(trace_on, on.result.trace);
  ioa::write_trace(trace_off, off.result.trace);
  EXPECT_EQ(trace_on.str(), trace_off.str());
}

TEST(SpanTrace, CampaignStaysBitwiseDeterministicWithHostTracingArmed) {
  sim::CampaignSpec spec;
  spec.protocols = {protocols::ProtocolKind::Beta, protocols::ProtocolKind::Alpha};
  spec.timings = {core::TimingParams::make(1, 2, 6)};
  spec.alphabets = {4};
  spec.environments = {core::Environment::worst_case()};
  spec.seeds_per_cell = 2;
  spec.input_bits = 24;
  spec.campaign_seed = 5;
  const sim::Campaign campaign{spec};

  const sim::CampaignResult baseline = campaign.run(1);

  // Arm everything observational: phase timing on and a tracer's host hook
  // attached. Neither may perturb a single result bit, at any thread count.
  obs::set_phase_timing_enabled(true);
  Tracer tracer;
  tracer.attach_host_hook();
  const sim::CampaignResult three = campaign.run(3);
  const sim::CampaignResult eight = campaign.run(8);
  tracer.detach_host_hook();
  obs::set_phase_timing_enabled(false);
  obs::reset_phase_totals();

  EXPECT_EQ(baseline, three);
  EXPECT_EQ(baseline, eight);
  // The workers really did record host spans while producing identical bits.
  EXPECT_GT(tracer.host_span_count(), 0u);
}

// ---------------------------------------------------------------------------
// Host-time profiling spans

TEST(SpanTrace, HostSpansLandUnderPid100WhenHookAttached) {
  obs::set_phase_timing_enabled(true);
  Tracer tracer;
  tracer.attach_host_hook();
  (void)run_with_tracer(&tracer);
  tracer.detach_host_hook();
  obs::set_phase_timing_enabled(false);
  obs::reset_phase_totals();

  EXPECT_GT(tracer.host_span_count(), 0u);
  const obs::JsonValue doc = obs::parse_json(export_json(tracer));
  std::size_t host_spans = 0;
  for (const obs::JsonValue& e : doc.find("traceEvents")->items) {
    if (e.string_or("cat", "") != "host") continue;
    ++host_spans;
    EXPECT_EQ(e.u64_or("pid", 0), 100u);
    // Host timestamps are rebased to the first span: small µs offsets.
    EXPECT_GE(e.number_or("ts", -1), 0.0);
  }
  EXPECT_EQ(host_spans, tracer.host_span_count());
}

TEST(SpanTrace, OnlyOneHostHookMayBeAttached) {
  Tracer first;
  first.attach_host_hook();
  Tracer second;
  EXPECT_THROW(second.attach_host_hook(), ContractViolation);
  first.detach_host_hook();
  second.attach_host_hook();  // free again after detach
  second.detach_host_hook();
}

// ---------------------------------------------------------------------------
// Calibrated host clock

TEST(HostClock, EnvVarForcesSteadyFallbackAndTimingStillWorks) {
  ASSERT_EQ(::setenv("RSTP_NO_TSC", "1", 1), 0);
  detail::recalibrate_host_clock_for_testing();
  EXPECT_EQ(host_clock_source(), HostClockSource::Steady);
  EXPECT_STREQ(to_string(host_clock_source()), "steady");

  // The fallback clock still drives the phase timers end to end.
  obs::set_phase_timing_enabled(true);
  const std::uint64_t overhead = obs::measure_phase_overhead_ns_per_pair();
  obs::reset_phase_totals();
  (void)run_with_tracer(nullptr);
  obs::set_phase_timing_enabled(false);
  EXPECT_GE(overhead, 1u);
  bool saw_sim_step = false;
  for (const obs::PhaseTotal& t : obs::collect_phase_totals()) {
    if (t.phase == obs::Phase::SimStep && t.calls > 0 && t.nanos > 0) saw_sim_step = true;
  }
  EXPECT_TRUE(saw_sim_step);
  obs::reset_phase_totals();

  ASSERT_EQ(::unsetenv("RSTP_NO_TSC"), 0);
  detail::recalibrate_host_clock_for_testing();  // restore the machine default
}

TEST(HostClock, HostNowIsMonotonicInBothModes) {
  for (const bool force_steady : {false, true}) {
    if (force_steady) {
      detail::set_host_clock_source_for_testing(HostClockSource::Steady);
    } else {
      calibrate_host_clock();
    }
    std::uint64_t prev = host_now_ns();
    for (int i = 0; i < 10'000; ++i) {
      const std::uint64_t now = host_now_ns();
      ASSERT_GE(now, prev);
      prev = now;
    }
  }
  calibrate_host_clock();
}

TEST(HostClock, OverheadGaugeIsPublishedAndSurvivesReset) {
  const std::uint64_t measured = obs::measure_phase_overhead_ns_per_pair();
  EXPECT_GE(measured, 1u);
  EXPECT_EQ(obs::phase_overhead_ns_per_pair(), measured);
  obs::reset_phase_totals();

  bool found = false;
  for (const obs::MetricsRegistry::Sample& s : obs::global_registry().collect()) {
    if (s.name == "phase/_overhead/ns_per_pair") {
      found = true;
      EXPECT_TRUE(s.is_gauge);
      EXPECT_EQ(s.value, measured);
    }
  }
  EXPECT_TRUE(found);
  obs::reset_phase_totals();
}

TEST(HostClock, TscInstrumentationFloorIsBelowSteadyClock) {
  calibrate_host_clock();
  if (host_clock_source() != HostClockSource::Tsc) {
    GTEST_SKIP() << "no invariant TSC on this machine (or RSTP_NO_TSC set)";
  }
  const std::uint64_t tsc_overhead = obs::measure_phase_overhead_ns_per_pair();
  detail::set_host_clock_source_for_testing(HostClockSource::Steady);
  const std::uint64_t steady_overhead = obs::measure_phase_overhead_ns_per_pair();
  detail::set_host_clock_source_for_testing(HostClockSource::Tsc);
  obs::reset_phase_totals();
  EXPECT_LT(tsc_overhead, steady_overhead)
      << "tsc " << tsc_overhead << " ns vs steady " << steady_overhead << " ns";
}

// ---------------------------------------------------------------------------
// Shared nearest-rank percentile kernel (the dedup satellite)

TEST(NearestRank, SharedKernelMatchesHistogramAndDashboard) {
  obs::Histogram hist(0, 9);  // width-1 buckets: exact percentiles
  const std::vector<std::int64_t> values = {0, 1, 1, 2, 5, 5, 5, 9};
  std::vector<std::uint64_t> buckets(10, 0);
  for (const std::int64_t v : values) {
    hist.record(v);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (const double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    const std::size_t index =
        obs::nearest_rank_bucket(buckets.data(), buckets.size(), values.size(), p);
    EXPECT_EQ(static_cast<std::int64_t>(index), hist.percentile(p)) << "p=" << p;
    EXPECT_EQ(static_cast<std::int64_t>(index),
              obs::delay_percentile(buckets, values.size(), p))
        << "p=" << p;
  }
  EXPECT_EQ(obs::nearest_rank_bucket(buckets.data(), buckets.size(), 0, 50.0), 0u);
}

// ---------------------------------------------------------------------------
// JSON control-character round trips (pinning the escaping contract)

TEST(JsonEscaping, ControlCharactersRoundTripThroughTheBundledParser) {
  for (int c = 0x00; c < 0x20; ++c) {
    std::string raw = "a";
    raw.push_back(static_cast<char>(c));
    raw += "b";
    const std::string quoted = obs::json_quote(raw);
    // No raw control byte may survive into the document.
    for (const char q : quoted) {
      EXPECT_GE(static_cast<unsigned char>(q), 0x20u) << "c=" << c;
    }
    const obs::JsonValue parsed = obs::parse_json(quoted);
    EXPECT_EQ(parsed.text, raw) << "c=" << c;
  }
}

TEST(JsonEscaping, RunMetricsJsonlRoundTripsControlCharsInStrings) {
  obs::RunMetricsRecord record;
  record.protocol = "beta\x01\n\ttab";
  record.c1 = 1;
  record.c2 = 2;
  record.d = 6;
  record.k = 4;
  record.metrics.data_delay = obs::Histogram(0, 6);
  record.metrics.data_delay.record(3);
  record.metrics.ack_delay = obs::Histogram(0, 6);
  record.metrics.transmitter_gap = obs::Histogram(0, 2);
  record.metrics.receiver_gap = obs::Histogram(0, 2);

  std::stringstream stream;
  obs::write_run_metrics_jsonl(stream, record);
  const std::string line = stream.str();
  // Exactly one '\n': the record terminator. The embedded one is escaped.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  const std::vector<obs::RunMetricsRecord> back = obs::read_run_metrics_jsonl(stream);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], record);
}

}  // namespace
}  // namespace rstp
