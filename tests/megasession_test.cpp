// Tests for the million-session multiplexed engine (sim/multi_session.h):
// bitwise-identical folds across thread counts AND shard counts, field
// equality against N independent core::run_protocol runs with the same
// derived seeds, the flattened metrics record, and reproduction of the
// checked-in golden megasession baseline (ctest label `mega`).
#include "rstp/sim/multi_session.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <vector>

#include "rstp/common/check.h"
#include "rstp/obs/diff.h"

namespace rstp::sim {
namespace {

using protocols::ProtocolKind;

/// Small enough to run in milliseconds, varied enough to exercise every
/// session-construction path: randomized schedulers/delivery (so per-session
/// seed derivation matters) over the Alpha worst-case-capable cell.
MultiSessionSpec small_spec() {
  MultiSessionSpec spec;
  spec.protocol = ProtocolKind::Alpha;
  spec.params.c1 = Duration{1};
  spec.params.c2 = Duration{2};
  spec.params.d = Duration{4};
  spec.k = 2;
  spec.input_bits = 16;
  spec.environment = core::Environment::randomized(0);  // seed is re-derived
  spec.sessions = 64;
  spec.base_seed = 0xBEEF;
  spec.shards = 16;
  return spec;
}

TEST(MultiSessionSpec, ValidateRejectsDegenerateSpecs) {
  MultiSessionSpec spec = small_spec();
  spec.sessions = 0;
  EXPECT_THROW(MultiSession{spec}, ContractViolation);
  spec = small_spec();
  spec.shards = 0;
  EXPECT_THROW(MultiSession{spec}, ContractViolation);
  spec = small_spec();
  spec.k = 1;
  EXPECT_THROW(MultiSession{spec}, ContractViolation);
  spec = small_spec();
  spec.max_events_per_session = 0;
  EXPECT_THROW(MultiSession{spec}, ContractViolation);
}

TEST(MultiSession, ThreadCountsProduceBitwiseIdenticalFolds) {
  const MultiSession mega{small_spec()};
  const MultiSessionResult serial = mega.run(1);
  const MultiSessionResult three = mega.run(3);
  const MultiSessionResult eight = mega.run(8);

  EXPECT_EQ(serial.sessions, 64u);
  EXPECT_TRUE(serial.all_correct());
  EXPECT_TRUE(serial.same_simulation(three));
  EXPECT_TRUE(serial.same_simulation(eight));
  // same_simulation covers the histogram fold too, but make the bitwise
  // claim explicit for the metrics block.
  EXPECT_EQ(serial.metrics, three.metrics);
  EXPECT_EQ(serial.metrics, eight.metrics);
}

TEST(MultiSession, ShardCountDoesNotChangeTheFold) {
  MultiSessionSpec spec = small_spec();
  const MultiSession sixteen{spec};
  const MultiSessionResult reference = sixteen.run(2);
  for (const std::uint32_t shards : {1u, 5u, 64u, 200u}) {  // 200 > sessions
    spec.shards = shards;
    const MultiSession mega{spec};
    EXPECT_TRUE(reference.same_simulation(mega.run(2))) << "shards=" << shards;
  }
}

TEST(MultiSession, MatchesNIndependentRunProtocolCalls) {
  const MultiSessionSpec spec = small_spec();
  const MultiSession mega{spec};
  const MultiSessionResult result = mega.run(3);

  // The reference: N standalone single-session runs, seeded exactly as the
  // engine documents (derive_unit_seeds over base_seed + session id), folded
  // in session order with the same integer-tick effort accumulation.
  std::uint64_t correct = 0;
  std::uint64_t quiescent = 0;
  std::uint64_t total_events = 0;
  std::uint64_t effort_sessions = 0;
  std::uint64_t effort_ticks_sum = 0;
  std::int64_t effort_ticks_min = 0;
  std::int64_t effort_ticks_max = 0;
  obs::RunMetrics metrics;
  bool metrics_valid = false;
  for (std::uint64_t s = 0; s < spec.sessions; ++s) {
    const DerivedSeeds seeds = derive_unit_seeds(spec.base_seed, s);
    protocols::ProtocolConfig config;
    config.params = spec.params;
    config.k = spec.k;
    config.input = core::make_random_input(spec.input_bits, seeds.input);
    core::Environment env = spec.environment;
    env.seed = seeds.environment;
    const core::ProtocolRun run = core::run_protocol(
        spec.protocol, config, env, /*record_trace=*/false, spec.max_events_per_session);
    if (run.output_correct) ++correct;
    if (run.result.quiescent) ++quiescent;
    total_events += run.result.event_count;
    if (run.result.last_transmitter_send.has_value()) {
      const std::int64_t ticks = (*run.result.last_transmitter_send - Time::zero()).ticks();
      if (ticks > 0) {
        if (effort_sessions == 0) {
          effort_ticks_min = effort_ticks_max = ticks;
        } else {
          effort_ticks_min = std::min(effort_ticks_min, ticks);
          effort_ticks_max = std::max(effort_ticks_max, ticks);
        }
        effort_ticks_sum += static_cast<std::uint64_t>(ticks);
        ++effort_sessions;
      }
    }
    if (!metrics_valid) {
      metrics = run.result.metrics;
      metrics_valid = true;
    } else {
      metrics.counters += run.result.metrics.counters;
      metrics.data_delay.merge(run.result.metrics.data_delay);
      metrics.ack_delay.merge(run.result.metrics.ack_delay);
      metrics.transmitter_gap.merge(run.result.metrics.transmitter_gap);
      metrics.receiver_gap.merge(run.result.metrics.receiver_gap);
    }
  }

  EXPECT_EQ(result.sessions, spec.sessions);
  EXPECT_EQ(result.correct_sessions, correct);
  EXPECT_EQ(result.quiescent_sessions, quiescent);
  EXPECT_EQ(result.total_events, total_events);
  EXPECT_EQ(result.metrics, metrics);
  ASSERT_GT(effort_sessions, 0u);
  const auto bits = static_cast<double>(spec.input_bits);
  EXPECT_DOUBLE_EQ(result.effort.min, static_cast<double>(effort_ticks_min) / bits);
  EXPECT_DOUBLE_EQ(result.effort.max, static_cast<double>(effort_ticks_max) / bits);
  EXPECT_DOUBLE_EQ(result.effort.mean, static_cast<double>(effort_ticks_sum) /
                                           (bits * static_cast<double>(effort_sessions)));
}

TEST(MultiSession, EveryProtocolHostsCleanly) {
  for (const ProtocolKind kind : {ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma,
                                  ProtocolKind::AltBit}) {
    MultiSessionSpec spec = small_spec();
    spec.protocol = kind;
    spec.k = 4;
    spec.sessions = 8;
    spec.shards = 3;
    const MultiSessionResult result = MultiSession{spec}.run(2);
    EXPECT_TRUE(result.all_correct()) << protocols::to_string(kind);
    EXPECT_GT(result.total_events, 0u) << protocols::to_string(kind);
  }
}

TEST(MultiSession, RecordCarriesTheSessionSchemaFields) {
  const MultiSessionSpec spec = small_spec();
  const MultiSessionResult result = MultiSession{spec}.run(2);
  const obs::RunMetricsRecord record = multi_session_metrics_record(spec, result);
  EXPECT_EQ(record.protocol, "alpha");
  EXPECT_EQ(record.sessions, spec.sessions);
  EXPECT_EQ(record.seed, spec.base_seed);
  EXPECT_EQ(record.input_bits, spec.input_bits);
  EXPECT_TRUE(record.correct);
  EXPECT_TRUE(record.quiescent);
  EXPECT_DOUBLE_EQ(record.effort, result.effort.mean);
  EXPECT_GT(record.events_per_sec, 0.0);
  EXPECT_EQ(record.metrics, result.metrics);
}

/// The checked-in baseline gate: rerunning the golden megasession cell must
/// reproduce every simulation-derived quantity of
/// tests/golden/megasession_baseline.jsonl exactly — the same join the CI
/// `megasession-smoke` job performs through `rstp report --fail-on`. Only
/// the events_per_sec aggregates (wall clock by definition) may move.
TEST(MegasessionGolden, BaselineReproducesExactly) {
  std::ifstream in{RSTP_GOLDEN_MEGASESSION_BASELINE_PATH};
  ASSERT_TRUE(in) << "missing " << RSTP_GOLDEN_MEGASESSION_BASELINE_PATH
                  << " — regenerate with: rstp mega --sessions 10000 --metrics-out <path>";
  const std::vector<obs::RunMetricsRecord> baseline = obs::read_run_metrics_jsonl(in);
  ASSERT_EQ(baseline.size(), 1u);

  const MultiSessionSpec spec = golden_megasession_spec();
  const MultiSessionResult result = MultiSession{spec}.run(3);
  EXPECT_TRUE(result.all_correct());
  const std::vector<obs::RunMetricsRecord> fresh = {multi_session_metrics_record(spec, result)};

  const obs::DiffReport report = obs::diff_metrics(baseline, fresh);
  EXPECT_TRUE(report.missing.empty());
  EXPECT_TRUE(report.extra.empty());
  for (const obs::CellDiff& cell : report.cells) {
    for (const obs::QuantityDelta& d : cell.deltas) {
      ADD_FAILURE() << "golden megasession drift: " << d.name << " " << d.old_v << " -> "
                    << d.new_v;
    }
  }
  for (const obs::QuantityDelta& agg : report.aggregates) {
    if (agg.name.rfind("events_per_sec", 0) == 0) continue;  // wall clock
    EXPECT_FALSE(agg.changed()) << agg.name << " " << agg.old_v << " -> " << agg.new_v;
  }
}

}  // namespace
}  // namespace rstp::sim
