// Model checking: exhaustively verify a protocol over EVERY admissible
// schedule for a small instance, and extract a concrete counterexample when
// verification fails.
//
// The simulator shows one execution; the explorer shows all of them (for
// c1 = c2 = 1 and small d). This example verifies A^β(3) on a 4-bit input,
// then does the same for the order-sensitive strawman and prints the exact
// interleaving that corrupts it — a trace you can hand to the verifier,
// which confirms the schedule was legal and the output wrong.
#include <iostream>

#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/ioa/explorer.h"
#include "rstp/ioa/trace_io.h"
#include "rstp/protocols/base.h"
#include "rstp/protocols/factory.h"

namespace {

using namespace rstp;
using protocols::ProtocolKind;

ioa::ExplorerResult check(ProtocolKind kind, const std::vector<ioa::Bit>& input, std::uint32_t k,
                          std::int64_t d) {
  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, d);
  cfg.k = k;
  cfg.input = input;
  const auto instance = protocols::make_protocol(kind, cfg);

  ioa::ExplorerConfig config;
  config.d = d;
  const auto prefix = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    const auto& out = dynamic_cast<const protocols::ReceiverBase&>(r).output();
    return out.size() <= input.size() && std::equal(out.begin(), out.end(), input.begin());
  };
  const auto complete = [&input](const ioa::Automaton&, const ioa::Automaton& r) {
    return dynamic_cast<const protocols::ReceiverBase&>(r).output() == input;
  };
  ioa::Explorer explorer{*instance.transmitter, *instance.receiver, config, prefix, complete};
  return explorer.run();
}

}  // namespace

int main() {
  const std::vector<ioa::Bit> input = {0, 1, 0, 0};
  std::cout << "instance: X = 0100, c1 = c2 = 1, d = 2\n\n";

  for (const auto kind : {ProtocolKind::Beta, ProtocolKind::Strawman}) {
    const std::uint32_t k = kind == ProtocolKind::Beta ? 3 : 2;
    const ioa::ExplorerResult result = check(kind, input, k, 2);
    std::cout << protocols::to_string(kind) << ": explored " << result.distinct_states
              << " states, " << result.transitions << " transitions, "
              << result.terminal_states << " terminals — "
              << (result.verified() ? "VERIFIED over all schedules" : "VIOLATION FOUND") << '\n';

    if (!result.verified() && !result.counterexample.empty()) {
      std::cout << "\ncounterexample execution:\n";
      ioa::write_trace(std::cout, result.counterexample);

      protocols::ProtocolConfig cfg;
      cfg.params = core::TimingParams::make(1, 1, 2);
      const core::VerifyResult verdict =
          core::verify_trace(result.counterexample, cfg.params, input,
                             {.require_complete = false, .require_drained = false});
      std::cout << "\nindependent verifier's reading of the counterexample:\n" << verdict
                << "\n(note: timing and channel conduct are admissible — the defect is the "
                   "protocol's order-sensitive encoding)\n\n";
    }
  }
  return 0;
}
