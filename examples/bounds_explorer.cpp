// Bounds explorer CLI: print the complete RSTP effort-bound table for
// user-supplied parameters.
//
// Usage: example_bounds_explorer [c1 c2 d [k]]
//   With no arguments, prints a demo grid.
#include <cstdio>
#include <cstdlib>

#include "rstp/core/bounds.h"

namespace {

void print_table_for(const rstp::core::TimingParams& params, std::uint32_t k) {
  using namespace rstp;
  const core::BoundsReport r = core::compute_bounds(params, k);
  std::printf("c1=%lld c2=%lld d=%lld k=%u\n", static_cast<long long>(params.c1.ticks()),
              static_cast<long long>(params.c2.ticks()),
              static_cast<long long>(params.d.ticks()), k);
  std::printf("  delta1=%lld (wait %lld), delta2=%lld\n", static_cast<long long>(r.delta1),
              static_cast<long long>(r.delta1_wait), static_cast<long long>(r.delta2));
  std::printf("  bits per block: beta %zu, gamma %zu\n", r.beta_bits_per_block,
              r.gamma_bits_per_block);
  std::printf("  %-34s %10.4f ticks/bit\n", "Thm 5.3 passive lower bound", r.passive_lower);
  std::printf("  %-34s %10.4f ticks/bit  (ratio %.2f)\n", "Lemma 6.1 beta upper bound",
              r.beta_upper, r.passive_ratio());
  std::printf("  %-34s %10.4f ticks/bit\n", "Thm 5.6 active lower bound", r.active_lower);
  std::printf("  %-34s %10.4f ticks/bit  (ratio %.2f)\n", "sec 6.2 gamma upper bound",
              r.gamma_upper, r.active_ratio());
  std::printf("  %-34s %10.4f ticks/bit\n", "alpha (Figure 1) exact effort", r.alpha_effort);
  std::printf("  %-34s %10.4f ticks/bit\n", "stop-and-wait baseline", r.altbit_upper);
  std::printf("  recommendation: %s\n\n",
              r.beta_upper <= r.gamma_upper ? "r-passive beta (no return channel needed)"
                                            : "active gamma (acks beat conservative idling)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rstp;
  if (argc >= 4) {
    const std::int64_t c1 = std::strtoll(argv[1], nullptr, 10);
    const std::int64_t c2 = std::strtoll(argv[2], nullptr, 10);
    const std::int64_t d = std::strtoll(argv[3], nullptr, 10);
    const std::uint32_t k =
        argc >= 5 ? static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10)) : 8;
    print_table_for(core::TimingParams::make(c1, c2, d), k);
    return 0;
  }
  std::printf("usage: %s c1 c2 d [k] — printing a demo grid instead\n\n", argv[0]);
  for (const std::uint32_t k : {2u, 8u, 64u}) {
    print_table_for(core::TimingParams::make(1, 2, 16), k);
  }
  print_table_for(core::TimingParams::make(1, 10, 20), 8);  // high jitter: gamma wins
  return 0;
}
