// Quickstart: transmit a short bit string with A^β(8) over the bounded-delay
// reordering channel, print the timed trace, and verify it against good(A).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cmath>
#include <iostream>

#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/protocols/factory.h"

int main() {
  using namespace rstp;

  // 1. Pick the model: processes step every 1..2 ticks, packets arrive
  //    within 4 ticks (c1=1, c2=2, d=4).
  protocols::ProtocolConfig config;
  config.params = core::TimingParams::make(1, 2, 4);
  config.k = 8;                                  // transmitter alphabet {0..7}
  config.input = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};  // X, the sequence to transmit

  // 2. What does theory predict for these parameters?
  const core::BoundsReport bounds = core::compute_bounds(config.params, config.k);
  std::cout << bounds << "\n\n";

  // 3. Run A^beta(8) in the worst-case environment (slowest steps, slowest
  //    deliveries) and show the whole timed execution.
  const core::ProtocolRun run = core::run_protocol(protocols::ProtocolKind::Beta, config,
                                                   core::Environment::worst_case());
  std::cout << "timed execution (" << run.result.trace.size() << " events):\n"
            << run.result.trace << '\n';

  // 4. The receiver's output tape Y.
  std::cout << "X = ";
  for (const auto b : config.input) std::cout << int{b};
  std::cout << "\nY = ";
  for (const auto b : run.result.output) std::cout << int{b};
  std::cout << "\nY == X: " << (run.output_correct ? "yes" : "NO") << '\n';

  // 5. Independently verify the execution is in good(A) and satisfies the
  //    problem statement.
  const core::VerifyResult verdict =
      core::verify_trace(run.result.trace, config.params, config.input);
  std::cout << "verifier: " << verdict << '\n';

  if (run.result.last_transmitter_send.has_value()) {
    const double effort =
        static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
        static_cast<double>(config.input.size());
    // The Lemma 6.1 bound assumes |X| ≡ 0 (mod B); short inputs pay for
    // their zero-padding, so scale the bound by the padded length.
    const double blocks = std::ceil(static_cast<double>(config.input.size()) /
                                    static_cast<double>(bounds.beta_bits_per_block));
    const double padded_bound = bounds.beta_upper * blocks *
                                static_cast<double>(bounds.beta_bits_per_block) /
                                static_cast<double>(config.input.size());
    std::cout << "measured effort: " << effort << " ticks/bit (Lemma 6.1 bound "
              << bounds.beta_upper << "; " << padded_bound
              << " after padding |X| to a block multiple)\n";
  }
  return run.output_correct && verdict.ok() ? 0 : 1;
}
