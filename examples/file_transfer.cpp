// File transfer: push a synthetic 4 KiB "file" through every protocol and
// compare model-time completion and effective throughput.
//
// This is the workload the paper's data-link framing motivates: a long
// binary stream that must arrive intact, in order, over a channel that may
// reorder but is rate- and delay-bounded. The table shows how much of the
// channel's capacity each protocol actually exploits.
//
// Usage: example_file_transfer [bytes] [k]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/factory.h"

int main(int argc, char** argv) {
  using namespace rstp;
  using protocols::ProtocolKind;

  const std::size_t bytes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;
  const std::uint32_t k = argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
                                   : 16;
  const std::size_t n = bytes * 8;

  protocols::ProtocolConfig config;
  config.params = core::TimingParams::make(1, 2, 16);  // e.g. 1 tick = 1 µs
  config.k = k;
  config.input = core::make_random_input(n, 0xF11E);

  std::printf("transferring %zu bytes (%zu bits), k=%u, model %s\n", bytes, n, k, "c1=1 c2=2 d=16");
  std::printf("%10s | %14s %14s %16s %10s\n", "protocol", "last-send", "completion",
              "ticks-per-bit", "correct");
  for (int i = 0; i < 72; ++i) std::putchar('-');
  std::putchar('\n');

  const ProtocolKind kinds[] = {ProtocolKind::Alpha,  ProtocolKind::Beta,
                                ProtocolKind::Gamma,  ProtocolKind::WindowedGamma,
                                ProtocolKind::AltBit, ProtocolKind::Indexed};
  for (const auto kind : kinds) {
    // Alpha and AltBit move one bit per round; cap their input so the demo
    // stays snappy on large files, and report per-bit figures (which are
    // length-independent for them anyway).
    protocols::ProtocolConfig cfg = config;
    const bool slow_protocol =
        kind == ProtocolKind::Alpha || kind == ProtocolKind::AltBit;
    if (slow_protocol && n > 4096) {
      cfg.input.resize(4096);
    }
    if (kind == ProtocolKind::Indexed) {
      // Sequence numbering needs an alphabet of 2·|X| — the unbounded-
      // alphabet escape hatch the paper's bounds price.
      cfg.k = static_cast<std::uint32_t>(2 * std::max<std::size_t>(1, cfg.input.size()));
    }
    const core::ProtocolRun run = core::run_protocol(kind, cfg, core::Environment::worst_case(),
                                                     /*record_trace=*/false);
    const double bits = static_cast<double>(cfg.input.size());
    const double last_send =
        run.result.last_transmitter_send.has_value()
            ? static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks())
            : 0.0;
    std::printf("%10s | %14.0f %14lld %16.3f %10s%s\n",
                std::string(protocols::to_string(kind)).c_str(), last_send,
                static_cast<long long>(run.result.end_time.ticks()), last_send / bits,
                run.output_correct ? "yes" : "NO",
                slow_protocol && n > 4096 ? "  (first 4096 bits)" : "");
  }

  const core::BoundsReport bounds = core::compute_bounds(config.params, k);
  std::printf("\ntheory (ticks/bit): alpha=%.2f beta<=%.2f gamma<=%.2f altbit<=%.2f\n",
              bounds.alpha_effort, bounds.beta_upper, bounds.gamma_upper, bounds.altbit_upper);
  std::printf("passive lower bound %.3f, active lower bound %.3f\n", bounds.passive_lower,
              bounds.active_lower);
  return 0;
}
