// Link API: the five-line path from bytes to verified transfer.
//
// Demonstrates the high-level facade: construct a Link from a timing model,
// let it auto-select the protocol from the paper's bounds, transfer a
// payload, and inspect the statistics (including the built-in good(A)
// verification).
#include <cstdio>
#include <string>

#include "rstp/api/link.h"
#include "rstp/core/bounds.h"

int main() {
  using namespace rstp;

  const std::string message =
      "In the sequence transmission problem one process, the transmitter, wishes "
      "to reliably communicate a sequence of data items to another process.";

  for (const auto& [c1, c2, d] : {std::tuple{1, 1, 16}, std::tuple{1, 8, 16}}) {
    api::LinkOptions options;
    options.params = core::TimingParams::make(c1, c2, d);
    options.k = 16;
    options.verify = true;  // run the good(A) checker on the execution
    api::Link link{options};

    std::printf("model c1=%d c2=%d d=%d → auto-selected protocol: %s\n", c1, c2, d,
                std::string(protocols::to_string(link.resolved_protocol())).c_str());

    const auto payload =
        std::span{reinterpret_cast<const std::uint8_t*>(message.data()), message.size()};
    const api::TransferResult result = link.transfer(payload);

    const std::string received{reinterpret_cast<const char*>(result.received.data()),
                               result.received.size()};
    std::printf("  transfer %s; verified in good(A): %s\n", result.ok ? "OK" : "FAILED",
                result.stats.verified ? "yes" : "no");
    std::printf("  %zu bytes in %lld ticks (%.3f ticks/bit), %llu data packets, %llu acks\n",
                result.stats.payload_bytes,
                static_cast<long long>(result.stats.completion.ticks()),
                result.stats.ticks_per_bit,
                static_cast<unsigned long long>(result.stats.data_packets),
                static_cast<unsigned long long>(result.stats.ack_packets));
    std::printf("  payload intact: %s\n\n", received == message ? "yes" : "NO");
  }
  return 0;
}
