// Telemetry feed: pick the protocol and alphabet size that meet a latency
// budget under jittery clocks.
//
// Scenario: a sensor produces a continuous bit stream; the link's physical
// layer guarantees delivery within d, and both endpoints run on clocks with
// bounded jitter (steps every [c1, c2]). A systems engineer has a per-bit
// latency budget and wants the smallest packet alphabet that meets it — a
// larger alphabet costs wider DAC/line coding, so smaller is cheaper.
//
// This example uses the bounds calculator to pick k, then validates the
// choice with a jittery-schedule simulation (Sawtooth scheduler: worst-case
// oscillation between c1 and c2; random delays).
#include <cstdio>
#include <optional>

#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/protocols/factory.h"

int main() {
  using namespace rstp;
  using protocols::ProtocolKind;

  const auto params = core::TimingParams::make(2, 5, 40);  // jitter ratio 2.5x
  const double budget_ticks_per_bit = 12.0;

  std::printf("model: c1=2 c2=5 d=40, per-bit latency budget: %.1f ticks\n\n",
              budget_ticks_per_bit);
  std::printf("%6s | %12s %12s | %12s %12s | %s\n", "k", "beta_upper", "gamma_upper",
              "beta_meets", "gamma_meets", "decision");
  for (int i = 0; i < 80; ++i) std::putchar('-');
  std::putchar('\n');

  std::optional<std::uint32_t> chosen_k;
  ProtocolKind chosen_kind = ProtocolKind::Beta;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const core::BoundsReport bounds = core::compute_bounds(params, k);
    const bool beta_ok = bounds.beta_upper <= budget_ticks_per_bit;
    const bool gamma_ok = bounds.gamma_upper <= budget_ticks_per_bit;
    const char* decision = "";
    if (!chosen_k.has_value() && (beta_ok || gamma_ok)) {
      chosen_k = k;
      chosen_kind = gamma_ok && (!beta_ok || bounds.gamma_upper < bounds.beta_upper)
                        ? ProtocolKind::Gamma
                        : ProtocolKind::Beta;
      decision = "<- smallest alphabet meeting the budget";
    }
    std::printf("%6u | %12.3f %12.3f | %12s %12s | %s\n", k, bounds.beta_upper,
                bounds.gamma_upper, beta_ok ? "yes" : "no", gamma_ok ? "yes" : "no", decision);
  }

  if (!chosen_k.has_value()) {
    std::printf("\nno alphabet up to 256 meets the budget — relax the budget or improve d\n");
    return 1;
  }

  // Validate the choice under jittery clocks + random delays (not just the
  // closed form): measure with the Sawtooth scheduler on both ends.
  std::printf("\nvalidating %s with k=%u under sawtooth jitter and random delays…\n",
              std::string(protocols::to_string(chosen_kind)).c_str(), *chosen_k);
  core::Environment jitter;
  jitter.transmitter_sched = core::Environment::Sched::Sawtooth;
  jitter.receiver_sched = core::Environment::Sched::Sawtooth;
  jitter.delay = core::Environment::Delay::Random;
  jitter.seed = 2026;

  const core::BoundsReport bounds = core::compute_bounds(params, *chosen_k);
  const std::size_t n = (chosen_kind == ProtocolKind::Beta ? bounds.beta_bits_per_block
                                                           : bounds.gamma_bits_per_block) *
                        100;
  const auto measured = core::measure_effort(chosen_kind, params, *chosen_k, n, jitter);
  std::printf("measured %.3f ticks/bit over %zu bits (budget %.1f): %s, data %s\n",
              measured.effort, n, budget_ticks_per_bit,
              measured.effort <= budget_ticks_per_bit ? "WITHIN BUDGET" : "OVER BUDGET",
              measured.output_correct ? "intact" : "CORRUPTED");
  return measured.output_correct && measured.effort <= budget_ticks_per_bit ? 0 : 1;
}
