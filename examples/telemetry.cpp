// Telemetry feed: pick the protocol and alphabet size that meet a latency
// budget under jittery clocks.
//
// Scenario: a sensor produces a continuous bit stream; the link's physical
// layer guarantees delivery within d, and both endpoints run on clocks with
// bounded jitter (steps every [c1, c2]). A systems engineer has a per-bit
// latency budget and wants the smallest packet alphabet that meets it — a
// larger alphabet costs wider DAC/line coding, so smaller is cheaper.
//
// This example uses the bounds calculator to pick k, then validates the
// choice with a jittery-schedule simulation (Sawtooth scheduler: worst-case
// oscillation between c1 and c2; random delays).
#include <cstdio>
#include <optional>

#include "rstp/core/bounds.h"
#include "rstp/core/effort.h"
#include "rstp/core/trace_stats.h"
#include "rstp/protocols/factory.h"

int main() {
  using namespace rstp;
  using protocols::ProtocolKind;

  const auto params = core::TimingParams::make(2, 5, 40);  // jitter ratio 2.5x
  const double budget_ticks_per_bit = 12.0;

  std::printf("model: c1=2 c2=5 d=40, per-bit latency budget: %.1f ticks\n\n",
              budget_ticks_per_bit);
  std::printf("%6s | %12s %12s | %12s %12s | %s\n", "k", "beta_upper", "gamma_upper",
              "beta_meets", "gamma_meets", "decision");
  for (int i = 0; i < 80; ++i) std::putchar('-');
  std::putchar('\n');

  std::optional<std::uint32_t> chosen_k;
  ProtocolKind chosen_kind = ProtocolKind::Beta;
  for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const core::BoundsReport bounds = core::compute_bounds(params, k);
    const bool beta_ok = bounds.beta_upper <= budget_ticks_per_bit;
    const bool gamma_ok = bounds.gamma_upper <= budget_ticks_per_bit;
    const char* decision = "";
    if (!chosen_k.has_value() && (beta_ok || gamma_ok)) {
      chosen_k = k;
      chosen_kind = gamma_ok && (!beta_ok || bounds.gamma_upper < bounds.beta_upper)
                        ? ProtocolKind::Gamma
                        : ProtocolKind::Beta;
      decision = "<- smallest alphabet meeting the budget";
    }
    std::printf("%6u | %12.3f %12.3f | %12s %12s | %s\n", k, bounds.beta_upper,
                bounds.gamma_upper, beta_ok ? "yes" : "no", gamma_ok ? "yes" : "no", decision);
  }

  if (!chosen_k.has_value()) {
    std::printf("\nno alphabet up to 256 meets the budget — relax the budget or improve d\n");
    return 1;
  }

  // Validate the choice under jittery clocks + random delays (not just the
  // closed form). A mean can hide routine budget violations, so the decision
  // is held against the tails: per-bit effort at p95 over many randomized
  // environments, and the per-packet delivery-delay tail of a traced run.
  std::printf("\nvalidating %s with k=%u under sawtooth jitter and random delays…\n",
              std::string(protocols::to_string(chosen_kind)).c_str(), *chosen_k);
  core::Environment jitter;
  jitter.transmitter_sched = core::Environment::Sched::Sawtooth;
  jitter.receiver_sched = core::Environment::Sched::Sawtooth;
  jitter.delay = core::Environment::Delay::Random;
  jitter.seed = 2026;

  const core::BoundsReport bounds = core::compute_bounds(params, *chosen_k);
  const std::size_t n = (chosen_kind == ProtocolKind::Beta ? bounds.beta_bits_per_block
                                                           : bounds.gamma_bits_per_block) *
                        100;
  const auto measured = core::measure_effort(chosen_kind, params, *chosen_k, n, jitter);
  std::printf("measured %.3f ticks/bit over %zu bits (budget %.1f), data %s\n",
              measured.effort, n, budget_ticks_per_bit,
              measured.output_correct ? "intact" : "CORRUPTED");

  protocols::ProtocolConfig cfg;
  cfg.params = params;
  cfg.k = *chosen_k;
  cfg.input = core::make_random_input(n, 0xC0FFEE);
  const core::ProtocolRun traced = core::run_protocol(chosen_kind, cfg, jitter);
  const core::TraceStats stats = core::compute_trace_stats(traced.result.trace);
  if (stats.data.p50_delay.has_value()) {
    std::printf("packet delay: mean %.2f ticks, p50 %lld, p95 %lld, p99 %lld (link bound d=%lld)\n",
                stats.data.mean_delay, static_cast<long long>(stats.data.p50_delay->ticks()),
                static_cast<long long>(stats.data.p95_delay->ticks()),
                static_cast<long long>(stats.data.p99_delay->ticks()),
                static_cast<long long>(params.d.ticks()));
  }

  const auto dist =
      core::measure_effort_distribution(chosen_kind, params, *chosen_k, n, /*samples=*/20);
  const bool tail_ok = dist.p95 <= budget_ticks_per_bit;
  std::printf("effort over 20 randomized environments: min %.3f, mean %.3f, p95 %.3f, max %.3f\n",
              dist.min, dist.mean, dist.p95, dist.max);
  std::printf("decision (held against p95, not the mean): %s\n",
              tail_ok ? "WITHIN BUDGET" : "OVER BUDGET");
  return measured.output_correct && dist.all_correct && tail_ok ? 0 : 1;
}
