// Adversarial channel demo: why the paper encodes blocks as MULTISETS.
//
// Runs the Lemma 5.1 adversary (window-batched, canonically-ordered
// delivery) against two protocols with the same send/wait rhythm:
//   * A^β(k)   — decodes each block from its multiset → immune to the
//                adversary by construction;
//   * strawman — positional coding (more bits per block!) → silently
//                corrupted, because arrival order IS its data.
// Then shows the flip side: under a FIFO channel the strawman works and is
// faster, which is exactly the trap; the model only guarantees the multiset.
#include <algorithm>
#include <cstdio>
#include <string>

#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/protocols/factory.h"

namespace {

using namespace rstp;

void show(const char* env_name, const core::Environment& env, protocols::ProtocolKind kind,
          const protocols::ProtocolConfig& cfg) {
  const core::ProtocolRun run = core::run_protocol(kind, cfg, env);
  std::size_t errors = 0;
  const std::size_t common = std::min(run.result.output.size(), cfg.input.size());
  for (std::size_t i = 0; i < common; ++i) {
    errors += run.result.output[i] != cfg.input[i] ? 1u : 0u;
  }
  const auto verdict = core::verify_trace(run.result.trace, cfg.params, cfg.input);
  std::printf("  %-12s %-9s: %-9s  bit errors %4zu/%zu   verifier %s\n", env_name,
              std::string(protocols::to_string(kind)).c_str(),
              run.output_correct ? "intact" : "CORRUPTED", errors, cfg.input.size(),
              verdict.ok() ? "accepts" : "rejects");
}

}  // namespace

int main() {
  using protocols::ProtocolKind;

  protocols::ProtocolConfig cfg;
  cfg.params = core::TimingParams::make(1, 1, 8);
  cfg.k = 4;
  cfg.input = core::make_random_input(160, 0xADE5);

  std::printf("model c1=c2=1, d=8; k=4; |X|=%zu random bits\n\n", cfg.input.size());

  std::printf("FIFO environment (max delay, order preserved):\n");
  show("fifo", core::Environment::worst_case(), ProtocolKind::Beta, cfg);
  show("fifo", core::Environment::worst_case(), ProtocolKind::Strawman, cfg);

  std::printf("\nLemma 5.1 batch adversary (windows delivered as sorted batches):\n");
  show("adversarial", core::Environment::adversarial_fast(), ProtocolKind::Beta, cfg);
  show("adversarial", core::Environment::adversarial_fast(), ProtocolKind::Strawman, cfg);

  std::printf(
      "\ntakeaway: within a delivery window the receiver can only trust the multiset of\n"
      "packets — exactly the quantity mu_k(delta) that appears in the paper's bounds.\n");
  return 0;
}
