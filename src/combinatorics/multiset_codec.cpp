#include "rstp/combinatorics/multiset_codec.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "rstp/common/check.h"
#include "rstp/obs/metrics.h"

namespace rstp::combinatorics {

using bigint::BigUint;

Multiset::Multiset(std::uint32_t k) : counts_(k, 0) {
  RSTP_CHECK_GE(k, 1u, "multiset universe must be non-empty");
}

Multiset Multiset::from_symbols(std::uint32_t k, std::span<const Symbol> symbols) {
  Multiset m{k};
  for (Symbol s : symbols) {
    m.add(s);
  }
  return m;
}

Multiset Multiset::from_counts(std::vector<std::uint32_t> counts) {
  RSTP_CHECK_GE(counts.size(), 1u, "multiset universe must be non-empty");
  Multiset m;
  m.counts_ = std::move(counts);
  for (const std::uint32_t c : m.counts_) {
    m.size_ += c;
  }
  return m;
}

std::uint32_t Multiset::count(Symbol s) const {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  return counts_[s];
}

void Multiset::add(Symbol s) {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  ++counts_[s];
  ++size_;
}

void Multiset::remove(Symbol s) {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  RSTP_CHECK_GT(counts_[s], 0u, "removing absent symbol");
  --counts_[s];
  --size_;
}

void Multiset::clear() {
  std::fill(counts_.begin(), counts_.end(), 0u);
  size_ = 0;
}

std::vector<Symbol> Multiset::to_sorted_sequence() const {
  std::vector<Symbol> seq;
  seq.reserve(size_);
  for (Symbol s = 0; s < universe(); ++s) {
    seq.insert(seq.end(), counts_[s], s);
  }
  return seq;
}

bool Multiset::submultiset_of(const Multiset& other) const {
  RSTP_CHECK_EQ(universe(), other.universe(), "submultiset over different universes");
  for (Symbol s = 0; s < universe(); ++s) {
    if (counts_[s] > other.counts_[s]) return false;
  }
  return true;
}

// The shared per-(k, n) tables.
//   mu[j][L]   = μ_j(L), the number of non-decreasing length-L sequences over
//                a j-symbol universe (Pascal-style recurrence, exact adds).
//   cum[L][c]  = Σ_{c'=0}^{c-1} μ_{k-c'}(L) — the cumulative suffix counts,
//                indexed by symbol boundary c in [0..k]; cum[L][0] = 0.
//   stay[L][c] = μ_{k-c}(L), i.e. cum[L][c+1] − cum[L][c]: the same suffix
//                counts as mu but laid out row-per-L, so rank's single-step
//                fast path reads the row its cum lookups already cached.
// rank sums μ_{k-c}(L) over a symbol interval, which the cumulative table
// turns into one subtraction; unrank decodes whole runs of equal symbols by
// galloping over the (monotone) mu and cum rows.
struct MultisetTables {
  std::vector<std::vector<BigUint>> mu;
  std::vector<std::vector<BigUint>> cum;
  std::vector<std::vector<BigUint>> stay;
};

namespace {

[[nodiscard]] std::shared_ptr<const MultisetTables> build_tables(std::uint32_t k,
                                                                 std::uint32_t n) {
  auto tables = std::make_shared<MultisetTables>();
  tables->mu.assign(k + 1, std::vector<BigUint>(n + 1));
  for (std::uint32_t j = 0; j <= k; ++j) {
    tables->mu[j][0] = BigUint{1};  // the empty sequence
  }
  for (std::uint32_t L = 1; L <= n; ++L) {
    tables->mu[0][L] = BigUint{};  // no non-empty sequence over an empty universe
    for (std::uint32_t j = 1; j <= k; ++j) {
      tables->mu[j][L] = tables->mu[j - 1][L] + tables->mu[j][L - 1];
    }
  }
  tables->cum.assign(n + 1, std::vector<BigUint>(k + 1));
  tables->stay.assign(n + 1, std::vector<BigUint>(k));
  for (std::uint32_t L = 0; L <= n; ++L) {
    for (std::uint32_t c = 0; c < k; ++c) {
      tables->cum[L][c + 1] = tables->cum[L][c] + tables->mu[k - c][L];
      tables->stay[L][c] = tables->mu[k - c][L];
    }
  }
  return tables;
}

/// Process-wide intern cache: every codec (block coder, protocol instance,
/// campaign job) with the same (k, n) shares one immutable table. weak_ptr
/// entries let tables of retired parameter points be reclaimed. Guarded by a
/// mutex because campaign workers construct protocols concurrently; the
/// build happens under the lock so racing workers wait for one build instead
/// of duplicating it.
[[nodiscard]] std::shared_ptr<const MultisetTables> interned_tables(std::uint32_t k,
                                                                    std::uint32_t n) {
  static std::mutex mutex;
  static std::map<std::pair<std::uint32_t, std::uint32_t>, std::weak_ptr<const MultisetTables>>
      cache;
  const std::scoped_lock lock{mutex};
  std::weak_ptr<const MultisetTables>& slot = cache[{k, n}];
  if (std::shared_ptr<const MultisetTables> cached = slot.lock()) {
    return cached;
  }
  std::shared_ptr<const MultisetTables> built = build_tables(k, n);
  slot = built;
  return built;
}

}  // namespace

MultisetCodec::MultisetCodec(std::uint32_t k, std::uint32_t n) : k_(k), n_(n) {
  RSTP_CHECK_GE(k, 1u, "codec universe must be non-empty");
  tables_ = interned_tables(k, n);
}

const BigUint& MultisetCodec::count() const { return tables_->mu[k_][n_]; }

const BigUint& MultisetCodec::suffix_count(std::uint32_t j, std::uint32_t L) const {
  return tables_->mu[j][L];
}

BigUint MultisetCodec::rank(const Multiset& m) const {
  // Nests under proto_apply/proto_enabled when a protocol encodes mid-step,
  // so --timing attributes sim-step time to the codec work it contains.
  const obs::ScopedPhaseTimer timer{obs::Phase::CodecRank};
  RSTP_CHECK_EQ(m.universe(), k_, "multiset universe mismatch");
  RSTP_CHECK_EQ(m.size(), n_, "multiset size mismatch");
  // Walk the count vector directly — only the (at most min(k, n)) positions
  // where the sorted sequence changes symbol contribute to the rank, so no
  // materialized sequence is needed.
  BigUint rank;
  Symbol prev = 0;
  std::uint32_t pos = 0;
  for (Symbol s = 0; s < k_; ++s) {
    const std::uint32_t cnt = m.count(s);
    if (cnt == 0) continue;
    if (s != prev) {
      const std::uint32_t remaining = n_ - 1 - pos;
      // Sequences that agree on the prefix but put a smaller symbol c ∈
      // [prev, s) at this position can complete in μ_{k-c}(remaining) ways.
      if (s == prev + 1) {
        rank += tables_->stay[remaining][prev];  // the sum is one term
      } else {
        const std::vector<BigUint>& cum = tables_->cum[remaining];
        rank += cum[s];
        rank -= cum[prev];
      }
      prev = s;
    }
    pos += cnt;
  }
  return rank;
}

Multiset MultisetCodec::unrank(const BigUint& value) const {
  const obs::ScopedPhaseTimer timer{obs::Phase::CodecUnrank};
  RSTP_CHECK(value < count(), "rank out of range for this codec");
  BigUint residual = value;
  std::vector<std::uint32_t> counts(k_, 0);
  Symbol c = 0;
  const BigUint* mu_row = tables_->mu[k_].data();  // μ_{k-c}(·), hoisted per run
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t remaining = n_ - 1 - i;
    // Stay test: position i repeats symbol c iff residual < μ_{k-c}(remaining).
    // This branch is strongly predicted (sorted sequences are mostly runs),
    // and mu_row walks one contiguous row backwards — no per-position
    // arithmetic and no per-element insert call.
    if (residual < mu_row[remaining]) {
      ++counts[c];
      continue;
    }
    // The symbol advances. Walk a couple of steps like the recurrence does
    // (short jumps are the common case) — on the stay row, contiguous in
    // the symbol axis — then switch to a galloping search over the
    // cumulative row so long jumps cost O(log jump) instead of O(jump).
    const std::vector<BigUint>& stay_row = tables_->stay[remaining];
    std::uint32_t walked = 0;
    while (true) {
      residual -= stay_row[c];
      ++c;
      RSTP_CHECK_LT(c, k_, "unrank overran the universe");
      if (residual < stay_row[c]) break;
      if (++walked < 2) continue;
      // Long jump: the symbol is the smallest c' > c with
      // cum[c'+1] > cum[c] + residual in the cumulative row's coordinates.
      const std::vector<BigUint>& cum = tables_->cum[remaining];
      residual += cum[c];
      Symbol lo = c + 1;
      Symbol hi = k_ - 1;
      for (Symbol step = 1; lo + step - 1 < hi; step *= 2) {
        const Symbol probe = lo + step - 1;
        if (cum[probe + 1] > residual) {
          hi = probe;
          break;
        }
        lo = probe + 1;
      }
      while (lo < hi) {
        const Symbol mid = lo + (hi - lo) / 2;
        if (cum[mid + 1] > residual) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      RSTP_CHECK(cum[lo + 1] > residual, "unrank overran the universe");
      residual -= cum[lo];
      c = lo;
      break;
    }
    mu_row = tables_->mu[k_ - c].data();
    ++counts[c];
  }
  RSTP_CHECK(residual.is_zero(), "unrank residual nonzero");
  return Multiset::from_counts(std::move(counts));
}

BigUint MultisetCodec::rank_reference(const Multiset& m) const {
  RSTP_CHECK_EQ(m.universe(), k_, "multiset universe mismatch");
  RSTP_CHECK_EQ(m.size(), n_, "multiset size mismatch");
  const std::vector<Symbol> seq = m.to_sorted_sequence();
  BigUint rank;
  Symbol prev = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t remaining = n_ - 1 - i;
    for (Symbol c = prev; c < seq[i]; ++c) {
      rank += suffix_count(k_ - c, remaining);
    }
    prev = seq[i];
  }
  return rank;
}

Multiset MultisetCodec::unrank_reference(const BigUint& value) const {
  RSTP_CHECK(value < count(), "rank out of range for this codec");
  BigUint residual = value;
  Multiset m{k_};
  Symbol prev = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t remaining = n_ - 1 - i;
    Symbol c = prev;
    while (true) {
      const BigUint& block = suffix_count(k_ - c, remaining);
      if (residual < block) break;
      residual -= block;
      ++c;
      RSTP_CHECK_LT(c, k_, "unrank overran the universe");
    }
    m.add(c);
    prev = c;
  }
  RSTP_CHECK(residual.is_zero(), "unrank residual nonzero");
  return m;
}

BigUint bits_to_biguint(std::span<const std::uint8_t> bits) {
  BigUint value;
  for (std::uint8_t b : bits) {
    RSTP_CHECK(b == 0 || b == 1, "bit values must be 0 or 1");
    value <<= 1;
    if (b != 0) value.add_u64(1);
  }
  return value;
}

std::vector<std::uint8_t> biguint_to_bits(const BigUint& value, std::size_t width) {
  RSTP_CHECK_LE(value.bit_length(), width, "value does not fit in the requested width");
  std::vector<std::uint8_t> bits(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    bits[width - 1 - i] = value.bit(i) ? 1 : 0;
  }
  return bits;
}

}  // namespace rstp::combinatorics
