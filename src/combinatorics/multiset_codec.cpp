#include "rstp/combinatorics/multiset_codec.h"

#include <algorithm>

#include "rstp/common/check.h"

namespace rstp::combinatorics {

using bigint::BigUint;

Multiset::Multiset(std::uint32_t k) : counts_(k, 0) {
  RSTP_CHECK_GE(k, 1u, "multiset universe must be non-empty");
}

Multiset Multiset::from_symbols(std::uint32_t k, std::span<const Symbol> symbols) {
  Multiset m{k};
  for (Symbol s : symbols) {
    m.add(s);
  }
  return m;
}

std::uint32_t Multiset::count(Symbol s) const {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  return counts_[s];
}

void Multiset::add(Symbol s) {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  ++counts_[s];
  ++size_;
}

void Multiset::remove(Symbol s) {
  RSTP_CHECK_LT(s, universe(), "symbol outside universe");
  RSTP_CHECK_GT(counts_[s], 0u, "removing absent symbol");
  --counts_[s];
  --size_;
}

void Multiset::clear() {
  std::fill(counts_.begin(), counts_.end(), 0u);
  size_ = 0;
}

std::vector<Symbol> Multiset::to_sorted_sequence() const {
  std::vector<Symbol> seq;
  seq.reserve(size_);
  for (Symbol s = 0; s < universe(); ++s) {
    seq.insert(seq.end(), counts_[s], s);
  }
  return seq;
}

bool Multiset::submultiset_of(const Multiset& other) const {
  RSTP_CHECK_EQ(universe(), other.universe(), "submultiset over different universes");
  for (Symbol s = 0; s < universe(); ++s) {
    if (counts_[s] > other.counts_[s]) return false;
  }
  return true;
}

MultisetCodec::MultisetCodec(std::uint32_t k, std::uint32_t n) : k_(k), n_(n) {
  RSTP_CHECK_GE(k, 1u, "codec universe must be non-empty");
  // mu_table_[j][L] = μ_j(L), the number of non-decreasing length-L sequences
  // over a j-symbol universe. Pascal-style recurrence, exact additions only.
  mu_table_.assign(k_ + 1, std::vector<BigUint>(n_ + 1));
  for (std::uint32_t j = 0; j <= k_; ++j) {
    mu_table_[j][0] = BigUint{1};  // the empty sequence
  }
  for (std::uint32_t L = 1; L <= n_; ++L) {
    mu_table_[0][L] = BigUint{};  // no non-empty sequence over an empty universe
    for (std::uint32_t j = 1; j <= k_; ++j) {
      mu_table_[j][L] = mu_table_[j - 1][L] + mu_table_[j][L - 1];
    }
  }
}

const BigUint& MultisetCodec::count() const { return mu_table_[k_][n_]; }

const BigUint& MultisetCodec::suffix_count(std::uint32_t j, std::uint32_t L) const {
  return mu_table_[j][L];
}

BigUint MultisetCodec::rank(const Multiset& m) const {
  RSTP_CHECK_EQ(m.universe(), k_, "multiset universe mismatch");
  RSTP_CHECK_EQ(m.size(), n_, "multiset size mismatch");
  const std::vector<Symbol> seq = m.to_sorted_sequence();
  BigUint rank;
  Symbol prev = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t remaining = n_ - 1 - i;
    // Sequences that agree on the prefix but put a smaller symbol c at
    // position i can complete in μ_{k-c}(remaining) ways.
    for (Symbol c = prev; c < seq[i]; ++c) {
      rank += suffix_count(k_ - c, remaining);
    }
    prev = seq[i];
  }
  return rank;
}

Multiset MultisetCodec::unrank(const BigUint& value) const {
  RSTP_CHECK(value < count(), "rank out of range for this codec");
  BigUint residual = value;
  Multiset m{k_};
  Symbol prev = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t remaining = n_ - 1 - i;
    Symbol c = prev;
    while (true) {
      const BigUint& block = suffix_count(k_ - c, remaining);
      if (residual < block) break;
      residual -= block;
      ++c;
      RSTP_CHECK_LT(c, k_, "unrank overran the universe");
    }
    m.add(c);
    prev = c;
  }
  RSTP_CHECK(residual.is_zero(), "unrank residual nonzero");
  return m;
}

BigUint bits_to_biguint(std::span<const std::uint8_t> bits) {
  BigUint value;
  for (std::uint8_t b : bits) {
    RSTP_CHECK(b == 0 || b == 1, "bit values must be 0 or 1");
    value <<= 1;
    if (b != 0) value.add_u64(1);
  }
  return value;
}

std::vector<std::uint8_t> biguint_to_bits(const BigUint& value, std::size_t width) {
  RSTP_CHECK_LE(value.bit_length(), width, "value does not fit in the requested width");
  std::vector<std::uint8_t> bits(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    bits[width - 1 - i] = value.bit(i) ? 1 : 0;
  }
  return bits;
}

}  // namespace rstp::combinatorics
