#include "rstp/combinatorics/binomial.h"

#include "rstp/common/check.h"

namespace rstp::combinatorics {

using bigint::BigUint;

BigUint binomial(std::uint64_t n, std::uint64_t r) {
  if (r > n) return BigUint{};
  // Use the symmetric smaller index to shorten the product.
  if (r > n - r) r = n - r;
  // Multiplicative formula with exact stepwise division:
  //   C(n, i) = C(n, i-1) * (n - i + 1) / i, and each intermediate is an
  //   integer, so div_u64 never truncates.
  BigUint result{1};
  for (std::uint64_t i = 1; i <= r; ++i) {
    result.mul_u64(n - i + 1);
    std::uint64_t rem = 0;
    result = result.div_u64(i, rem);
    RSTP_CHECK_EQ(rem, std::uint64_t{0}, "binomial intermediate not divisible");
  }
  return result;
}

BigUint mu(std::uint32_t k, std::uint32_t n) {
  RSTP_CHECK_GE(k, 1u, "mu requires a non-empty universe");
  return binomial(static_cast<std::uint64_t>(n) + k - 1, k - 1);
}

BigUint zeta(std::uint32_t k, std::uint32_t n) {
  RSTP_CHECK_GE(k, 1u, "zeta requires a non-empty universe");
  // ζ_k(n) = Σ_{j=1..n} C(j+k-1, k-1) = C(n+k, k) - 1 (hockey-stick), but we
  // keep the summation form: it is cheap at our sizes and matches the paper's
  // definition literally, which the unit tests then cross-check against the
  // closed form.
  BigUint total;
  for (std::uint32_t j = 1; j <= n; ++j) {
    total += mu(k, j);
  }
  return total;
}

std::size_t floor_log2_mu(std::uint32_t k, std::uint32_t n) {
  const BigUint m = mu(k, n);
  RSTP_CHECK(!m.is_zero(), "mu must be positive");
  return m.bit_length() - 1;
}

double log2_mu(std::uint32_t k, std::uint32_t n) { return mu(k, n).log2(); }

double log2_zeta(std::uint32_t k, std::uint32_t n) {
  const BigUint z = zeta(k, n);
  RSTP_CHECK(!z.is_zero(), "zeta must be positive (need n >= 1)");
  return z.log2();
}

}  // namespace rstp::combinatorics
