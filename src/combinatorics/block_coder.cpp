#include "rstp/combinatorics/block_coder.h"

#include "rstp/common/check.h"

namespace rstp::combinatorics {

using bigint::BigUint;

BlockCoder::BlockCoder(std::uint32_t k, std::uint32_t delta)
    : codec_(k, delta), bits_per_block_(0) {
  RSTP_CHECK_GE(k, 2u, "block coder needs an alphabet of at least two symbols");
  RSTP_CHECK_GE(delta, 1u, "block coder needs at least one packet per block");
  const BigUint& mu = codec_.count();
  RSTP_CHECK(mu >= BigUint{2}, "mu_k(delta) must be at least 2 to carry data");
  bits_per_block_ = mu.bit_length() - 1;  // ⌊log2 μ_k(δ)⌋
}

std::vector<Symbol> BlockCoder::encode(std::span<const Bit> bits) const {
  RSTP_CHECK_EQ(bits.size(), bits_per_block_, "encode expects exactly one block of bits");
  const BigUint value = bits_to_biguint(bits);
  // value < 2^B <= μ_k(δ), so unrank is defined.
  const Multiset block = codec_.unrank(value);
  return block.to_sorted_sequence();
}

std::vector<Bit> BlockCoder::decode(const Multiset& block) const {
  RSTP_CHECK_EQ(block.universe(), alphabet(), "block universe mismatch");
  RSTP_CHECK_EQ(block.size(), packets_per_block(), "decode expects a full block");
  const BigUint value = codec_.rank(block);
  if (value.bit_length() > bits_per_block_) {
    throw ModelError(
        "BlockCoder::decode: received multiset is not a valid codeword; "
        "the channel model (no corruption, no cross-block mixing) was violated");
  }
  return biguint_to_bits(value, bits_per_block_);
}

std::vector<Bit> BlockCoder::decode(std::span<const Symbol> symbols) const {
  return decode(Multiset::from_symbols(alphabet(), symbols));
}

std::vector<Symbol> BlockCoder::encode_message(std::span<const Bit> message) const {
  const std::size_t blocks = blocks_for(message.size());
  std::vector<Symbol> out;
  out.reserve(blocks * packets_per_block());
  std::vector<Bit> chunk(bits_per_block_, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * bits_per_block_;
    for (std::size_t i = 0; i < bits_per_block_; ++i) {
      const std::size_t idx = begin + i;
      chunk[i] = idx < message.size() ? message[idx] : Bit{0};
    }
    const std::vector<Symbol> encoded = encode(chunk);
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  return out;
}

std::size_t BlockCoder::padding_for(std::size_t message_bits) const {
  const std::size_t rem = message_bits % bits_per_block_;
  return rem == 0 ? 0 : bits_per_block_ - rem;
}

std::size_t BlockCoder::blocks_for(std::size_t message_bits) const {
  return (message_bits + bits_per_block_ - 1) / bits_per_block_;
}

}  // namespace rstp::combinatorics
