#include "rstp/protocols/base.h"

#include "rstp/common/check.h"

namespace rstp::protocols {

void ProtocolConfig::validate() const {
  params.validate();
  RSTP_CHECK_GE(k, 2u, "packet alphabet must have at least two symbols");
  if (block_size_override.has_value()) {
    RSTP_CHECK_GE(*block_size_override, 1u, "block size override must be positive");
  }
  if (wait_steps_override.has_value()) {
    RSTP_CHECK_GE(*wait_steps_override, 1u, "wait steps override must be positive");
  }
  for (ioa::Bit b : input) {
    RSTP_CHECK(b == 0 || b == 1, "input sequence must be binary");
  }
}

ioa::Action wait_t_action() { return ioa::Action::internal(kWaitT, "wait_t"); }
ioa::Action idle_r_action() { return ioa::Action::internal(kIdleR, "idle_r"); }
ioa::Action idle_t_action() { return ioa::Action::internal(kIdleT, "idle_t"); }

bool TransmitterBase::accepts_input(const ioa::Action& action) const {
  return action.kind == ioa::ActionKind::Recv &&
         action.packet.direction == ioa::Packet::Direction::ReceiverToTransmitter;
}

bool ReceiverBase::accepts_input(const ioa::Action& action) const {
  return action.kind == ioa::ActionKind::Recv &&
         action.packet.direction == ioa::Packet::Direction::TransmitterToReceiver;
}

}  // namespace rstp::protocols
