#include "rstp/protocols/factory.h"

#include <ostream>

#include "rstp/common/check.h"
#include "rstp/est/adaptive.h"
#include "rstp/protocols/alpha.h"
#include "rstp/protocols/altbit.h"
#include "rstp/protocols/beta.h"
#include "rstp/protocols/gamma.h"
#include "rstp/protocols/gamma_windowed.h"
#include "rstp/protocols/indexed.h"
#include "rstp/protocols/strawman.h"

namespace rstp::protocols {

std::string_view to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Alpha:
      return "alpha";
    case ProtocolKind::Beta:
      return "beta";
    case ProtocolKind::Gamma:
      return "gamma";
    case ProtocolKind::AltBit:
      return "altbit";
    case ProtocolKind::Strawman:
      return "strawman";
    case ProtocolKind::Indexed:
      return "indexed";
    case ProtocolKind::WindowedGamma:
      return "gammaw";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, ProtocolKind kind) { return os << to_string(kind); }

bool is_r_passive(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Alpha:
    case ProtocolKind::Beta:
    case ProtocolKind::Strawman:
    case ProtocolKind::Indexed:
      return true;
    case ProtocolKind::Gamma:
    case ProtocolKind::AltBit:
    case ProtocolKind::WindowedGamma:
      return false;
  }
  RSTP_UNREACHABLE("unknown protocol kind");
}

ProtocolInstance make_protocol(ProtocolKind kind, const ProtocolConfig& config) {
  config.validate();
  if (config.planner != nullptr) {
    // Estimator-driven variants: the shared planner replaces the oracle block
    // sizes. Only the two block protocols have an adaptive form.
    RSTP_CHECK(kind == ProtocolKind::Beta || kind == ProtocolKind::Gamma,
               "the estimator supports only beta and gamma");
    if (kind == ProtocolKind::Beta) {
      return {std::make_unique<est::AdaptiveBetaTransmitter>(config),
              std::make_unique<est::AdaptiveBetaReceiver>(config)};
    }
    return {std::make_unique<est::AdaptiveGammaTransmitter>(config),
            std::make_unique<est::AdaptiveGammaReceiver>(config)};
  }
  switch (kind) {
    case ProtocolKind::Alpha:
      return {std::make_unique<AlphaTransmitter>(config), std::make_unique<AlphaReceiver>(config)};
    case ProtocolKind::Beta:
      return {std::make_unique<BetaTransmitter>(config), std::make_unique<BetaReceiver>(config)};
    case ProtocolKind::Gamma:
      return {std::make_unique<GammaTransmitter>(config), std::make_unique<GammaReceiver>(config)};
    case ProtocolKind::AltBit:
      return {std::make_unique<AltBitTransmitter>(config),
              std::make_unique<AltBitReceiver>(config)};
    case ProtocolKind::Strawman:
      return {std::make_unique<StrawmanTransmitter>(config),
              std::make_unique<StrawmanReceiver>(config)};
    case ProtocolKind::Indexed:
      return {std::make_unique<IndexedTransmitter>(config),
              std::make_unique<IndexedReceiver>(config)};
    case ProtocolKind::WindowedGamma:
      return {std::make_unique<WindowedGammaTransmitter>(config),
              std::make_unique<WindowedGammaReceiver>(config)};
  }
  RSTP_UNREACHABLE("unknown protocol kind");
}

}  // namespace rstp::protocols
