#include "rstp/protocols/strawman.h"

#include <bit>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

namespace {

[[nodiscard]] std::size_t floor_log2_u32(std::uint32_t k) {
  return 31u - static_cast<std::size_t>(std::countl_zero(k));
}

}  // namespace

StrawmanTransmitter::StrawmanTransmitter(ProtocolConfig config) {
  config.validate();
  delta_ = config.params.delta1_wait();
  bits_per_symbol_ = floor_log2_u32(config.k);
  RSTP_CHECK_GE(bits_per_symbol_, std::size_t{1}, "strawman needs k >= 2");
  bits_per_block_ = bits_per_symbol_ * static_cast<std::size_t>(delta_);

  // Positional encoding: consecutive groups of bits_per_symbol_ bits map to
  // one symbol; zero-pad the tail block.
  const std::size_t n = config.input.size();
  const std::size_t blocks = (n + bits_per_block_ - 1) / bits_per_block_;
  stream_.reserve(blocks * static_cast<std::size_t>(delta_));
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::int64_t s = 0; s < delta_; ++s) {
      std::uint32_t symbol = 0;
      for (std::size_t bit = 0; bit < bits_per_symbol_; ++bit) {
        const std::size_t idx =
            b * bits_per_block_ + static_cast<std::size_t>(s) * bits_per_symbol_ + bit;
        const Bit value = idx < n ? config.input[idx] : Bit{0};
        symbol = (symbol << 1) | value;
      }
      stream_.push_back(symbol);
    }
  }
  std::ostringstream os;
  os << "A_t^strawman(k=" << config.k << ",delta=" << delta_ << ",n=" << n << ")";
  name_ = os.str();
}

std::optional<Action> StrawmanTransmitter::enabled_local() const {
  if (c_ < delta_ && i_ < stream_.size()) {
    return Action::send(Packet::to_receiver(stream_[i_]));
  }
  if (c_ >= delta_) {
    return wait_t_action();
  }
  return std::nullopt;
}

void StrawmanTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    ++i_;
    ++c_;
    if (c_ == delta_) {
      ++counters_.blocks_encoded;
    }
  } else {
    c_ = (c_ + 1) % (2 * delta_);
  }
}

bool StrawmanTransmitter::quiescent() const { return transmission_complete(); }

bool StrawmanTransmitter::transmission_complete() const { return i_ >= stream_.size(); }

std::string StrawmanTransmitter::snapshot() const {
  std::ostringstream os;
  os << "strawman_t i=" << i_ << " c=" << c_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> StrawmanTransmitter::clone() const {
  return std::make_unique<StrawmanTransmitter>(*this);
}

StrawmanReceiver::StrawmanReceiver(ProtocolConfig config) {
  config.validate();
  k_ = config.k;
  delta_ = config.params.delta1_wait();
  bits_per_symbol_ = floor_log2_u32(config.k);
  target_length_ = config.input.size();
  std::ostringstream os;
  os << "A_r^strawman(k=" << k_ << ",delta=" << delta_ << ",n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> StrawmanReceiver::enabled_local() const {
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return idle_r_action();
}

void StrawmanReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    RSTP_CHECK_LT(action.packet.payload, k_, "packet symbol outside the alphabet");
    arrivals_.push_back(action.packet.payload);
    if (arrivals_.size() == static_cast<std::size_t>(delta_)) {
      // Positional decode in ARRIVAL order — the deliberate flaw: only works
      // if the channel preserved the send order of the block.
      for (std::uint32_t symbol : arrivals_) {
        for (std::size_t bit = bits_per_symbol_; bit-- > 0;) {
          decoded_.push_back(static_cast<Bit>((symbol >> bit) & 1u));
        }
      }
      arrivals_.clear();
      ++counters_.blocks_decoded;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Write) {
    written_.push_back(action.message);
  }
}

bool StrawmanReceiver::quiescent() const {
  return written_.size() >= target_length_ ||
         (written_.size() == decoded_.size() && arrivals_.empty());
}

std::string StrawmanReceiver::snapshot() const {
  std::ostringstream os;
  os << "strawman_r decoded=" << decoded_.size() << " written=" << written_.size()
     << " pending=" << arrivals_.size();
  return os.str();
}

std::unique_ptr<ioa::Automaton> StrawmanReceiver::clone() const {
  return std::make_unique<StrawmanReceiver>(*this);
}

}  // namespace rstp::protocols
