#include "rstp/protocols/beta.h"

#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using combinatorics::BlockCoder;
using combinatorics::Symbol;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

BetaTransmitter::BetaTransmitter(ProtocolConfig config) {
  config.validate();
  block_ = config.block_size_override.has_value()
               ? static_cast<std::int64_t>(*config.block_size_override)
               : config.params.delta1_wait();
  wait_ = config.wait_steps_override.has_value()
              ? static_cast<std::int64_t>(*config.wait_steps_override)
              : config.params.delta1_wait();
  coder_ = std::make_shared<const BlockCoder>(config.k, static_cast<std::uint32_t>(block_));
  stream_ = coder_->encode_message(config.input);
  RSTP_CHECK_EQ(stream_.size() % static_cast<std::size_t>(block_), std::size_t{0},
                "encoded stream must be block-aligned");
  std::ostringstream os;
  os << "A_t^beta(k=" << config.k << ",delta=" << block_ << ",wait=" << wait_
     << ",n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> BetaTransmitter::enabled_local() const {
  // Figure 3: send when i <= |X| and 0 <= c < δ; wait when δ <= c < δ+W
  // (the paper has W = δ, making the round 2δ steps).
  if (c_ < block_ && i_ < stream_.size()) {
    return Action::send(Packet::to_receiver(stream_[i_]));
  }
  if (c_ >= block_) {
    return wait_t_action();
  }
  return std::nullopt;  // i == |S| and c == 0: transmission finished
}

void BetaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    return;  // r-passive: the receiver never sends, but stay input-enabled
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    ++i_;
    ++c_;
    if (c_ == block_) {
      ++counters_.blocks_encoded;
    }
  } else {
    c_ = (c_ + 1) % (block_ + wait_);  // Figure 3's wait_t: c := c + 1 (mod 2δ)
  }
}

bool BetaTransmitter::quiescent() const { return transmission_complete(); }

bool BetaTransmitter::transmission_complete() const { return i_ >= stream_.size(); }

std::string BetaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "beta_t i=" << i_ << " c=" << c_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> BetaTransmitter::clone() const {
  return std::make_unique<BetaTransmitter>(*this);
}

BetaReceiver::BetaReceiver(ProtocolConfig config)
    : block_(1), target_length_(config.input.size()) {
  config.validate();
  const auto delta = config.block_size_override.has_value()
                         ? *config.block_size_override
                         : static_cast<std::uint32_t>(config.params.delta1_wait());
  coder_ = std::make_shared<const BlockCoder>(config.k, delta);
  block_ = combinatorics::Multiset{config.k};
  std::ostringstream os;
  os << "A_r^beta(k=" << config.k << ",delta=" << delta << ",n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> BetaReceiver::enabled_local() const {
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return idle_r_action();
}

void BetaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LT(payload, coder_->alphabet(), "packet symbol outside the alphabet");
    block_.add(payload);
    if (block_.size() == coder_->packets_per_block()) {
      // Figure 3: a full block has arrived; decode it from its multiset.
      const std::vector<Bit> bits = coder_->decode(block_);
      decoded_.insert(decoded_.end(), bits.begin(), bits.end());
      block_.clear();
      ++counters_.blocks_decoded;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Write) {
    written_.push_back(action.message);
  }
}

bool BetaReceiver::quiescent() const {
  return written_.size() >= target_length_ ||
         (written_.size() == decoded_.size() && block_.size() == 0);
}

std::string BetaReceiver::snapshot() const {
  std::ostringstream os;
  os << "beta_r decoded=" << decoded_.size() << " written=" << written_.size()
     << " block=" << block_.size();
  return os.str();
}

std::unique_ptr<ioa::Automaton> BetaReceiver::clone() const {
  return std::make_unique<BetaReceiver>(*this);
}

}  // namespace rstp::protocols
