#include "rstp/protocols/alpha.h"

#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

AlphaTransmitter::AlphaTransmitter(ProtocolConfig config) {
  config.validate();
  input_ = std::move(config.input);
  // The wait's only job is send separation (≥ d apart at the fastest rate);
  // the generalized model may shrink it via the override.
  wait_steps_ = config.wait_steps_override.has_value()
                    ? static_cast<std::int64_t>(*config.wait_steps_override)
                    : config.params.delta1_wait();
  std::ostringstream os;
  os << "A_t^alpha(n=" << input_.size() << ")";
  name_ = os.str();
}

std::optional<Action> AlphaTransmitter::enabled_local() const {
  if (j_ == 0 && i_ < input_.size()) {
    return Action::send(Packet::to_receiver(input_[i_]));
  }
  if (j_ > 0 && j_ < wait_steps_) {
    return wait_t_action();
  }
  return std::nullopt;  // done: finite fair execution
}

void AlphaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    return;  // A^alpha is r-passive; inputs (none are ever sent) are ignored
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    j_ = 1;
  } else {
    ++j_;
  }
  // Figure 1: when the idle count reaches d/c1 the next message is unlocked.
  // (When ⌈d/c1⌉ = 1 the send itself completes the round.)
  if (j_ == wait_steps_) {
    ++i_;
    j_ = 0;
  }
}

bool AlphaTransmitter::quiescent() const { return transmission_complete(); }

bool AlphaTransmitter::transmission_complete() const {
  // The last send has happened once the final message's wait phase began.
  return i_ >= input_.size() || (i_ + 1 == input_.size() && j_ > 0);
}

std::string AlphaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "alpha_t i=" << i_ << " j=" << j_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> AlphaTransmitter::clone() const {
  return std::make_unique<AlphaTransmitter>(*this);
}

AlphaReceiver::AlphaReceiver(ProtocolConfig config) {
  config.validate();
  std::ostringstream os;
  os << "A_r^alpha(n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> AlphaReceiver::enabled_local() const {
  if (written_.size() < received_.size()) {
    return Action::write(received_[written_.size()]);
  }
  return idle_r_action();  // Figure 1: idle_r enabled whenever k > i
}

void AlphaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LE(payload, 1u, "alpha receiver expects binary packets");
    received_.push_back(static_cast<Bit>(payload));
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Write) {
    written_.push_back(action.message);
  }
  // idle_r has no effect.
}

bool AlphaReceiver::quiescent() const { return written_.size() == received_.size(); }

std::string AlphaReceiver::snapshot() const {
  std::ostringstream os;
  os << "alpha_r recv=" << received_.size() << " written=" << written_.size() << " y=";
  for (Bit b : received_) os << static_cast<int>(b);
  return os.str();
}

std::unique_ptr<ioa::Automaton> AlphaReceiver::clone() const {
  return std::make_unique<AlphaReceiver>(*this);
}

}  // namespace rstp::protocols
