#include "rstp/protocols/altbit.h"

#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

AltBitTransmitter::AltBitTransmitter(ProtocolConfig config) {
  config.validate();
  input_ = std::move(config.input);
  std::ostringstream os;
  os << "A_t^altbit(n=" << input_.size() << ")";
  name_ = os.str();
}

std::optional<Action> AltBitTransmitter::enabled_local() const {
  if (i_ >= input_.size()) {
    return std::nullopt;
  }
  if (phase_ == Phase::Sending) {
    const std::uint32_t seq = static_cast<std::uint32_t>(i_) & 1u;
    const std::uint32_t payload = static_cast<std::uint32_t>(input_[i_]) | (seq << 1);
    return Action::send(Packet::to_receiver(payload));
  }
  return idle_t_action();  // awaiting the ack for message i_
}

void AltBitTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    // The channel neither loses nor duplicates, so the only ack that can be
    // in flight is the one for the outstanding message; verify its seq bit.
    RSTP_CHECK(phase_ == Phase::AwaitingAck, "ack with no outstanding message");
    const std::uint32_t seq = static_cast<std::uint32_t>(i_) & 1u;
    RSTP_CHECK_EQ(action.packet.payload, seq, "alternating-bit ack sequence mismatch");
    ++counters_.acks_observed;
    ++i_;
    phase_ = Phase::Sending;
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    phase_ = Phase::AwaitingAck;
  }
}

bool AltBitTransmitter::quiescent() const { return i_ >= input_.size(); }

bool AltBitTransmitter::transmission_complete() const {
  return i_ >= input_.size() || (i_ + 1 == input_.size() && phase_ == Phase::AwaitingAck);
}

std::string AltBitTransmitter::snapshot() const {
  std::ostringstream os;
  os << "altbit_t i=" << i_ << " phase=" << (phase_ == Phase::Sending ? "send" : "await");
  return os.str();
}

std::unique_ptr<ioa::Automaton> AltBitTransmitter::clone() const {
  return std::make_unique<AltBitTransmitter>(*this);
}

AltBitReceiver::AltBitReceiver(ProtocolConfig config) {
  config.validate();
  std::ostringstream os;
  os << "A_r^altbit(n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> AltBitReceiver::enabled_local() const {
  if (!ack_queue_.empty()) {
    return Action::send(Packet::to_transmitter(ack_queue_.front()));
  }
  if (written_.size() < accepted_.size()) {
    return Action::write(accepted_[written_.size()]);
  }
  return idle_r_action();
}

void AltBitReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LE(payload, 3u, "altbit data payload out of range");
    const Bit bit = static_cast<Bit>(payload & 1u);
    const std::uint32_t seq = payload >> 1;
    // Stop-and-wait over a lossless channel: every arrival must carry the
    // expected sequence bit; a mismatch means the channel model was violated.
    RSTP_CHECK_EQ(seq, expected_seq_, "alternating-bit data sequence mismatch");
    accepted_.push_back(bit);
    expected_seq_ ^= 1u;
    ack_queue_.push_back(seq);
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  switch (action.kind) {
    case ActionKind::Send:
      ack_queue_.erase(ack_queue_.begin());
      ++counters_.acks_sent;
      break;
    case ActionKind::Write:
      written_.push_back(action.message);
      break;
    case ActionKind::Internal:
      break;
    case ActionKind::Recv:
      RSTP_UNREACHABLE("recv handled as input");
  }
}

bool AltBitReceiver::quiescent() const {
  return ack_queue_.empty() && written_.size() == accepted_.size();
}

std::string AltBitReceiver::snapshot() const {
  std::ostringstream os;
  os << "altbit_r accepted=" << accepted_.size() << " written=" << written_.size()
     << " acks_pending=" << ack_queue_.size() << " expect=" << expected_seq_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> AltBitReceiver::clone() const {
  return std::make_unique<AltBitReceiver>(*this);
}

}  // namespace rstp::protocols
