#include "rstp/protocols/indexed.h"

#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

namespace {

void check_alphabet_covers(const ProtocolConfig& config) {
  // Payload (i << 1) | bit needs 2·|X| symbols.
  RSTP_CHECK_GE(static_cast<std::size_t>(config.k), 2 * std::max<std::size_t>(1, config.input.size()),
                "indexed streaming needs an alphabet of at least 2*|X| symbols");
}

}  // namespace

IndexedTransmitter::IndexedTransmitter(ProtocolConfig config) {
  config.validate();
  check_alphabet_covers(config);
  input_ = std::move(config.input);
  std::ostringstream os;
  os << "A_t^indexed(n=" << input_.size() << ")";
  name_ = os.str();
}

std::optional<Action> IndexedTransmitter::enabled_local() const {
  if (i_ < input_.size()) {
    const auto payload =
        static_cast<std::uint32_t>((i_ << 1) | static_cast<std::size_t>(input_[i_]));
    return Action::send(Packet::to_receiver(payload));
  }
  return std::nullopt;
}

void IndexedTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    return;  // r-passive
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  ++i_;
}

bool IndexedTransmitter::quiescent() const { return i_ >= input_.size(); }

bool IndexedTransmitter::transmission_complete() const { return i_ >= input_.size(); }

std::string IndexedTransmitter::snapshot() const {
  std::ostringstream os;
  os << "indexed_t i=" << i_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> IndexedTransmitter::clone() const {
  return std::make_unique<IndexedTransmitter>(*this);
}

IndexedReceiver::IndexedReceiver(ProtocolConfig config)
    : present_(config.input.size(), 0),
      slots_(config.input.size(), 0),
      target_length_(config.input.size()) {
  config.validate();
  check_alphabet_covers(config);
  std::ostringstream os;
  os << "A_r^indexed(n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> IndexedReceiver::enabled_local() const {
  const std::size_t w = written_.size();
  if (w < target_length_ && present_[w] != 0) {
    return Action::write(slots_[w]);
  }
  return idle_r_action();
}

void IndexedReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::size_t index = action.packet.payload >> 1;
    const Bit bit = static_cast<Bit>(action.packet.payload & 1u);
    RSTP_CHECK_LT(index, target_length_, "packet index out of range");
    RSTP_CHECK_EQ(present_[index], 0, "duplicate index: channel model violated");
    present_[index] = 1;
    slots_[index] = bit;
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Write) {
    written_.push_back(action.message);
  }
}

bool IndexedReceiver::quiescent() const {
  const std::size_t w = written_.size();
  return w >= target_length_ || present_[w] == 0;  // no write currently possible
}

std::string IndexedReceiver::snapshot() const {
  std::ostringstream os;
  os << "indexed_r written=" << written_.size() << " mask=";
  for (const auto p : present_) os << int{p};
  return os.str();
}

std::unique_ptr<ioa::Automaton> IndexedReceiver::clone() const {
  return std::make_unique<IndexedReceiver>(*this);
}

}  // namespace rstp::protocols
