#include "rstp/protocols/gamma_windowed.h"

#include <algorithm>
#include <sstream>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"

namespace rstp::protocols {

using combinatorics::BlockCoder;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

namespace {

struct WindowLayout {
  std::uint32_t window;   // W
  std::uint32_t symbols;  // k / W
};

WindowLayout validated_layout(std::uint32_t k, std::uint32_t window) {
  RSTP_CHECK_GE(window, 1u, "windowed gamma needs a window of at least one block");
  RSTP_CHECK_GE(k, 2 * window, "windowed gamma needs k >= 2*W (>= 2 data symbols per tag)");
  RSTP_CHECK_EQ(k % window, 0u, "windowed gamma needs W | k");
  return WindowLayout{window, k / window};
}

std::uint32_t window_of(const ProtocolConfig& config) {
  return config.window_override.value_or(2u);
}

}  // namespace

double windowed_gamma_upper(const core::TimingParams& params, std::uint32_t k,
                            std::uint32_t window) {
  params.validate();
  const WindowLayout layout = validated_layout(k, window);
  const auto delta2 = static_cast<std::uint32_t>(params.delta2());
  const std::size_t bits = combinatorics::floor_log2_mu(layout.symbols, delta2);
  RSTP_CHECK_GE(bits, std::size_t{1}, "tagged alphabet too small to carry data");
  const auto c2 = static_cast<double>(params.c2.ticks());
  const auto d = static_cast<double>(params.d.ticks());
  const double block_send = static_cast<double>(delta2) * c2;
  // W blocks complete per window: either the pipeline is send-limited
  // (W blocks of sends back-to-back) or round-trip-limited (one block's
  // sends + last delivery + ack step + ack return + next-send step).
  const double period =
      std::max(static_cast<double>(window) * block_send, block_send + 2.0 * d + 2.0 * c2);
  return period / (static_cast<double>(window) * static_cast<double>(bits));
}

WindowedGammaTransmitter::WindowedGammaTransmitter(ProtocolConfig config) {
  config.validate();
  const WindowLayout layout = validated_layout(config.k, window_of(config));
  window_ = layout.window;
  symbols_ = layout.symbols;
  acks_.assign(window_, 0);
  delta2_ = config.block_size_override.has_value()
                ? static_cast<std::int64_t>(*config.block_size_override)
                : config.params.delta2();
  RSTP_CHECK_GE(delta2_, 1, "delta2 >= 1 requires c2 <= d");
  coder_ = std::make_shared<const BlockCoder>(symbols_, static_cast<std::uint32_t>(delta2_));
  stream_ = coder_->encode_message(config.input);
  std::ostringstream os;
  os << "A_t^gammaw(k=" << config.k << ",W=" << window_ << ",delta2=" << delta2_
     << ",n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> WindowedGammaTransmitter::enabled_local() const {
  if (i_ < stream_.size() && c_ < delta2_) {
    // Window constraint: block b may be in flight only when block b-W is
    // fully acked, i.e. completed_ >= b-W+1.
    if (block_ < completed_ + window_) {
      const auto tag = static_cast<std::uint32_t>(block_ % window_);
      return Action::send(Packet::to_receiver(stream_[i_] + symbols_ * tag));
    }
    return idle_t_action();  // window full: wait for the head block's acks
  }
  if (i_ < stream_.size()) {
    RSTP_UNREACHABLE("c_ exceeds the block size");
  }
  return std::nullopt;  // all packets sent; acks drain as inputs
}

void WindowedGammaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::size_t tag = action.packet.payload;
    RSTP_CHECK_LT(tag, window_, "ack payload must be a window tag");
    ++counters_.acks_observed;
    ++acks_[tag];
    RSTP_CHECK_LE(acks_[tag], delta2_, "more acks than packets for this tag");
    // Blocks complete strictly in order; a full later block waits for the
    // head (cascade of at most the window size).
    while (acks_[head_tag()] == delta2_) {
      acks_[head_tag()] = 0;
      ++completed_;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    ++i_;
    ++c_;
    if (c_ == delta2_) {
      ++block_;
      c_ = 0;
      ++counters_.blocks_encoded;
    }
  }
  // idle_t has no effect.
}

bool WindowedGammaTransmitter::quiescent() const { return transmission_complete(); }

bool WindowedGammaTransmitter::transmission_complete() const { return i_ >= stream_.size(); }

std::string WindowedGammaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "gammaw_t i=" << i_ << " c=" << c_ << " blk=" << block_ << " done=" << completed_
     << " acks=";
  for (const auto a : acks_) os << a << ',';
  return os.str();
}

std::unique_ptr<ioa::Automaton> WindowedGammaTransmitter::clone() const {
  return std::make_unique<WindowedGammaTransmitter>(*this);
}

WindowedGammaReceiver::WindowedGammaReceiver(ProtocolConfig config)
    : target_length_(config.input.size()) {
  config.validate();
  const WindowLayout layout = validated_layout(config.k, window_of(config));
  window_ = layout.window;
  symbols_ = layout.symbols;
  const auto delta2 = config.block_size_override.has_value()
                          ? *config.block_size_override
                          : static_cast<std::uint32_t>(config.params.delta2());
  coder_ = std::make_shared<const BlockCoder>(symbols_, delta2);
  blocks_.assign(window_, combinatorics::Multiset{symbols_});
  std::ostringstream os;
  os << "A_r^gammaw(k=" << config.k << ",W=" << window_ << ",delta2=" << delta2
     << ",n=" << target_length_ << ")";
  name_ = os.str();
}

void WindowedGammaReceiver::decode_ready_blocks() {
  // Blocks decode strictly in block order; a completed later-tag block
  // waits for its predecessors.
  while (blocks_[next_tag_].size() == coder_->packets_per_block()) {
    const std::vector<Bit> bits = coder_->decode(blocks_[next_tag_]);
    decoded_.insert(decoded_.end(), bits.begin(), bits.end());
    blocks_[next_tag_].clear();
    next_tag_ = (next_tag_ + 1) % window_;
    ++counters_.blocks_decoded;
  }
}

std::optional<Action> WindowedGammaReceiver::enabled_local() const {
  if (!ack_queue_.empty()) {
    return Action::send(Packet::to_transmitter(ack_queue_.front()));
  }
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return idle_r_action();
}

void WindowedGammaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LT(payload, window_ * symbols_, "packet symbol outside the alphabet");
    const std::uint32_t tag = payload / symbols_;
    blocks_[tag].add(payload % symbols_);
    RSTP_CHECK_LE(blocks_[tag].size(), coder_->packets_per_block(),
                  "two blocks of one tag in flight: window violated");
    ack_queue_.push_back(tag);
    decode_ready_blocks();
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  switch (action.kind) {
    case ActionKind::Send:
      ack_queue_.erase(ack_queue_.begin());
      ++counters_.acks_sent;
      break;
    case ActionKind::Write:
      written_.push_back(action.message);
      break;
    case ActionKind::Internal:
      break;
    case ActionKind::Recv:
      RSTP_UNREACHABLE("recv handled as input");
  }
}

bool WindowedGammaReceiver::quiescent() const {
  return ack_queue_.empty() &&
         (written_.size() >= target_length_ || written_.size() == decoded_.size());
}

std::string WindowedGammaReceiver::snapshot() const {
  std::ostringstream os;
  os << "gammaw_r decoded=" << decoded_.size() << " written=" << written_.size() << " blocks=";
  for (const auto& b : blocks_) os << b.size() << ',';
  os << " next=" << next_tag_ << " acks=" << ack_queue_.size();
  return os.str();
}

std::unique_ptr<ioa::Automaton> WindowedGammaReceiver::clone() const {
  return std::make_unique<WindowedGammaReceiver>(*this);
}

}  // namespace rstp::protocols
