#include "rstp/protocols/gamma.h"

#include <sstream>

#include "rstp/common/check.h"

namespace rstp::protocols {

using combinatorics::BlockCoder;
using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

GammaTransmitter::GammaTransmitter(ProtocolConfig config) {
  config.validate();
  delta2_ = config.block_size_override.has_value()
                ? static_cast<std::int64_t>(*config.block_size_override)
                : config.params.delta2();
  RSTP_CHECK_GE(delta2_, 1, "delta2 >= 1 requires c2 <= d");
  coder_ = std::make_shared<const BlockCoder>(config.k, static_cast<std::uint32_t>(delta2_));
  stream_ = coder_->encode_message(config.input);
  std::ostringstream os;
  os << "A_t^gamma(k=" << config.k << ",delta2=" << delta2_ << ",n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> GammaTransmitter::enabled_local() const {
  // Figure 4: send while c < δ2 and data remains; idle_t while awaiting acks.
  if (c_ < delta2_ && i_ < stream_.size()) {
    return Action::send(Packet::to_receiver(stream_[i_]));
  }
  if (c_ == delta2_) {
    return idle_t_action();
  }
  return std::nullopt;  // c == 0 and i == |S|: all blocks sent and acked
}

void GammaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    // recv(ack): a := a + 1; when the block is fully acked, unlock the next.
    RSTP_CHECK_EQ(action.packet.payload, kAckPayload, "unexpected r→t payload");
    ++a_;
    ++counters_.acks_observed;
    // Under the lossless, duplication-free channel every ack answers a packet
    // of the current block, so acks can never outrun this round's sends.
    RSTP_CHECK_LE(a_, c_, "ack without a matching packet in this block");
    if (a_ == delta2_) {
      a_ = 0;
      c_ = 0;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    ++i_;
    ++c_;
    if (c_ == delta2_) {
      ++counters_.blocks_encoded;
    }
  }
  // idle_t has no effect.
}

bool GammaTransmitter::quiescent() const { return transmission_complete(); }

bool GammaTransmitter::transmission_complete() const { return i_ >= stream_.size(); }

std::string GammaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "gamma_t i=" << i_ << " c=" << c_ << " a=" << a_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> GammaTransmitter::clone() const {
  return std::make_unique<GammaTransmitter>(*this);
}

GammaReceiver::GammaReceiver(ProtocolConfig config)
    : block_(1), target_length_(config.input.size()) {
  config.validate();
  const auto delta2 = config.block_size_override.has_value()
                          ? *config.block_size_override
                          : static_cast<std::uint32_t>(config.params.delta2());
  coder_ = std::make_shared<const BlockCoder>(config.k, delta2);
  block_ = combinatorics::Multiset{config.k};
  std::ostringstream os;
  os << "A_r^gamma(k=" << config.k << ",delta2=" << delta2 << ",n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> GammaReceiver::enabled_local() const {
  // Priority: acks gate the transmitter, so they come first (Figure 4's
  // send(ack) precondition j > 0), then writes, then idle.
  if (unacked_ > 0) {
    return Action::send(Packet::to_transmitter(kAckPayload));
  }
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return idle_r_action();
}

void GammaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LT(payload, coder_->alphabet(), "packet symbol outside the alphabet");
    ++unacked_;
    block_.add(payload);
    if (block_.size() == coder_->packets_per_block()) {
      const std::vector<Bit> bits = coder_->decode(block_);
      decoded_.insert(decoded_.end(), bits.begin(), bits.end());
      block_.clear();
      ++counters_.blocks_decoded;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  switch (action.kind) {
    case ActionKind::Send:
      --unacked_;
      ++counters_.acks_sent;
      break;
    case ActionKind::Write:
      written_.push_back(action.message);
      break;
    case ActionKind::Internal:
      break;
    case ActionKind::Recv:
      RSTP_UNREACHABLE("recv handled as input");
  }
}

bool GammaReceiver::quiescent() const {
  return unacked_ == 0 &&
         (written_.size() >= target_length_ ||
          (written_.size() == decoded_.size() && block_.size() == 0));
}

std::string GammaReceiver::snapshot() const {
  std::ostringstream os;
  os << "gamma_r decoded=" << decoded_.size() << " written=" << written_.size()
     << " block=" << block_.size() << " unacked=" << unacked_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> GammaReceiver::clone() const {
  return std::make_unique<GammaReceiver>(*this);
}

}  // namespace rstp::protocols
