#include "rstp/sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <thread>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/est/runner.h"
#include "rstp/obs/metrics.h"

namespace rstp::sim {

namespace {

/// Global-registry slots the campaign engine reports into (naming scheme in
/// docs/OBSERVABILITY.md). Registration is idempotent, so constructing this
/// per run() just looks the ids up after the first campaign.
struct MetricsRegistryIds {
  obs::MetricsRegistry::MetricId jobs = obs::global_registry().counter("campaign/jobs");
  obs::MetricsRegistry::MetricId events = obs::global_registry().counter("campaign/events");
  obs::MetricsRegistry::MetricId max_events =
      obs::global_registry().gauge("campaign/max_events_per_job");
};

}  // namespace

void CampaignSpec::validate() const {
  RSTP_CHECK(!protocols.empty(), "campaign needs at least one protocol");
  RSTP_CHECK(!timings.empty(), "campaign needs at least one timing point");
  RSTP_CHECK(!alphabets.empty(), "campaign needs at least one alphabet size");
  RSTP_CHECK(!environments.empty(), "campaign needs at least one environment");
  RSTP_CHECK_GE(seeds_per_cell, 1u, "campaign needs at least one seed per cell");
  for (const core::TimingParams& t : timings) t.validate();
  for (const std::uint32_t k : alphabets) {
    RSTP_CHECK_GE(k, 2u, "campaign alphabets need k >= 2");
  }
  for (const core::DriftSpec& drift : drifts) {
    if (!drift.empty()) drift.validate();
  }
  if (estimator_enabled) {
    estimator.validate();
    for (const protocols::ProtocolKind p : protocols) {
      RSTP_CHECK(p == protocols::ProtocolKind::Beta || p == protocols::ProtocolKind::Gamma,
                 "the estimator supports only beta and gamma");
    }
  }
}

std::size_t CampaignSpec::job_count() const {
  return protocols.size() * timings.size() * alphabets.size() * environments.size() *
         seeds_per_cell * std::max<std::size_t>(1, drifts.size());
}

DerivedSeeds derive_unit_seeds(std::uint64_t root, std::uint64_t index) {
  std::uint64_t state = root + index;
  DerivedSeeds seeds;
  seeds.environment = splitmix64(state);
  seeds.input = splitmix64(state);
  return seeds;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) { spec_.validate(); }

CampaignJob Campaign::job(std::size_t index) const {
  RSTP_CHECK_LT(index, job_count(), "campaign job index out of range");
  // Grid order: protocol-major, seed replica fastest. The drift axis sits
  // between seed and environment; with no drifts its size is 1, so grids
  // that predate it decompose — and derive seeds — exactly as before.
  const std::size_t drift_count = std::max<std::size_t>(1, spec_.drifts.size());
  std::size_t rest = index;
  const std::size_t seed_i = rest % spec_.seeds_per_cell;
  rest /= spec_.seeds_per_cell;
  const std::size_t drift_i = rest % drift_count;
  rest /= drift_count;
  const std::size_t env_i = rest % spec_.environments.size();
  rest /= spec_.environments.size();
  const std::size_t k_i = rest % spec_.alphabets.size();
  rest /= spec_.alphabets.size();
  const std::size_t timing_i = rest % spec_.timings.size();
  rest /= spec_.timings.size();
  const std::size_t proto_i = rest;
  (void)seed_i;  // folded into the index that seeds the SplitMix64 stream

  CampaignJob job;
  job.index = index;
  job.protocol = spec_.protocols[proto_i];
  job.params = spec_.timings[timing_i];
  job.k = spec_.alphabets[k_i];
  job.environment = spec_.environments[env_i];
  if (!spec_.drifts.empty()) job.drift = spec_.drifts[drift_i];
  job.estimator_enabled = spec_.estimator_enabled;
  job.estimator = spec_.estimator;
  // Per-job deterministic streams: SplitMix64 over campaign_seed + index
  // yields the environment seed, then the input seed. A job's randomness
  // depends only on (campaign_seed, index) — never on which worker ran it.
  const DerivedSeeds seeds =
      derive_unit_seeds(spec_.campaign_seed, static_cast<std::uint64_t>(index));
  job.environment.seed = seeds.environment;
  job.input_seed = seeds.input;
  return job;
}

CampaignJobResult run_campaign_job(const CampaignJob& job, std::size_t input_bits,
                                   std::uint64_t max_events) {
  CampaignJobResult r;
  r.index = job.index;
  r.protocol = job.protocol;
  r.params = job.params;
  r.k = job.k;
  r.env_seed = job.environment.seed;
  try {
    protocols::ProtocolConfig config;
    config.params = job.params;
    config.k = job.k;
    config.input = core::make_random_input(input_bits, job.input_seed);
    if (job.protocol == protocols::ProtocolKind::Indexed) {
      // The indexed baseline needs an alphabet of at least 2|X| symbols.
      config.k = std::max<std::uint32_t>(
          config.k, static_cast<std::uint32_t>(2 * std::max<std::size_t>(1, input_bits)));
    }
    const auto fill = [&](const core::ProtocolRun& run) {
      r.event_count = run.result.event_count;
      r.transmitter_steps = run.result.transmitter_steps;
      r.receiver_steps = run.result.receiver_steps;
      r.transmitter_sends = run.result.transmitter_sends;
      r.receiver_sends = run.result.receiver_sends;
      r.output_correct = run.output_correct;
      r.quiescent = run.result.quiescent;
      r.metrics = run.result.metrics;
      if (input_bits > 0 && run.result.last_transmitter_send.has_value()) {
        r.effort = static_cast<double>(
                       (*run.result.last_transmitter_send - Time::zero()).ticks()) /
                   static_cast<double>(input_bits);
      }
    };
    if (job.estimator_enabled) {
      // Oracle + estimated runs over the same environment; the row reports
      // the estimated run (that is the protocol under test) plus the ratio.
      const est::PenaltyRun pair = est::run_penalty_pair(job.protocol, config, job.environment,
                                                         job.drift, job.estimator, max_events);
      fill(pair.estimated.run);
      r.est_penalty = pair.est_penalty;
      r.est = pair.estimated.gauges;
    } else if (!job.drift.empty()) {
      fill(est::run_estimated(job.protocol, config, job.environment, job.drift,
                              /*estimator_enabled=*/false, est::EstimatorConfig{},
                              /*record_trace=*/false, max_events)
               .run);
    } else {
      fill(core::run_protocol(job.protocol, config, job.environment,
                              /*record_trace=*/false, max_events));
    }
  } catch (const std::exception& e) {
    r.failed = true;
    r.error = e.what();
  }
  return r;
}

CampaignResult Campaign::run(unsigned threads) const { return run(threads, CampaignProgress{}); }

CampaignResult Campaign::run(unsigned threads, const CampaignProgress& progress) const {
  if (progress.active()) {
    // A zero interval would make the monitor's wait_for return immediately
    // forever — a busy-spinning thread. Same construction-time validation
    // pattern as the delay-policy bounds checks.
    RSTP_CHECK_GT(progress.interval.count(), std::chrono::milliseconds::rep{0},
                  "campaign progress interval must be positive");
  }
  const std::size_t jobs = job_count();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, std::max<std::size_t>(1, jobs)));

  CampaignResult result;
  result.jobs.resize(jobs);

  // Live-progress state. Workers fold into these with relaxed atomics only —
  // the reporting path reads approximations and never feeds the result.
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> events_done{0};
  std::atomic<double> live_effort_sum{0.0};
  std::atomic<std::size_t> effort_jobs_done{0};
  const MetricsRegistryIds registry_ids;

  // Structured-snapshot state, maintained only while someone is watching.
  // Grid order is protocol-major, so job i belongs to protocol
  // i / jobs_per_protocol; the delay distribution refolds each job's
  // per-cell histogram into one fixed clamped-tick layout (display-only —
  // exact per-cell histograms stay in result.jobs[i].metrics).
  const bool snapshots = progress.on_snapshot != nullptr;
  const std::size_t proto_count = spec_.protocols.size();
  const std::size_t jobs_per_protocol = proto_count == 0 ? 0 : jobs / proto_count;
  std::vector<std::atomic<std::uint64_t>> proto_done(snapshots ? proto_count : 0);
  std::vector<std::atomic<std::uint64_t>> proto_events(snapshots ? proto_count : 0);
  std::vector<std::atomic<double>> proto_effort_sum(snapshots ? proto_count : 0);
  std::vector<std::atomic<std::uint64_t>> proto_effort_jobs(snapshots ? proto_count : 0);
  std::vector<std::atomic<std::uint64_t>> delay_buckets(
      snapshots ? CampaignSnapshot::kDelayBuckets : 0);
  std::atomic<std::uint64_t> delay_count{0};
  const auto fold_snapshot_state = [&](std::size_t i, const CampaignJobResult& slot) {
    const std::size_t p =
        jobs_per_protocol == 0 ? 0 : std::min(i / jobs_per_protocol, proto_count - 1);
    proto_done[p].fetch_add(1, std::memory_order_relaxed);
    proto_events[p].fetch_add(slot.event_count, std::memory_order_relaxed);
    if (slot.effort > 0) {
      proto_effort_sum[p].fetch_add(slot.effort, std::memory_order_relaxed);
      proto_effort_jobs[p].fetch_add(1, std::memory_order_relaxed);
    }
    const obs::Histogram& h = slot.metrics.data_delay;
    if (h.configured() && h.count() > 0) {
      for (std::size_t b = 0; b < h.bucket_count(); ++b) {
        const std::uint64_t n = h.bucket(b);
        if (n == 0) continue;
        const std::int64_t tick =
            h.lower_bound() + static_cast<std::int64_t>(b) * h.bucket_width();
        const std::size_t bucket =
            tick <= 0 ? 0
                      : std::min<std::size_t>(CampaignSnapshot::kDelayBuckets - 1,
                                              static_cast<std::size_t>(tick));
        delay_buckets[bucket].fetch_add(n, std::memory_order_relaxed);
      }
      delay_count.fetch_add(h.count(), std::memory_order_relaxed);
    }
  };

  // Work stealing over the job list: each worker atomically claims the next
  // unclaimed index and writes only its own slot, so the merged vector is in
  // grid order no matter how the OS schedules the threads.
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> died{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    try {
      while (!died.load(std::memory_order_relaxed)) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) break;
        CampaignJobResult& slot = result.jobs[i];
        slot = run_campaign_job(job(i), spec_.input_bits, spec_.max_events);
        events_done.fetch_add(slot.event_count, std::memory_order_relaxed);
        if (slot.effort > 0) {
          live_effort_sum.fetch_add(slot.effort, std::memory_order_relaxed);
          effort_jobs_done.fetch_add(1, std::memory_order_relaxed);
        }
        if (snapshots) fold_snapshot_state(i, slot);
        done.fetch_add(1, std::memory_order_relaxed);
        obs::global_registry().add(registry_ids.jobs);
        obs::global_registry().add(registry_ids.events, slot.event_count);
        obs::global_registry().gauge_max(registry_ids.max_events, slot.event_count);
      }
    } catch (...) {
      // run_campaign_job already folds model errors into the job row; this
      // catches infrastructure failures (bad_alloc, spec bugs) — stop the
      // pool and surface the first one after the join.
      const std::scoped_lock lock{error_mutex};
      if (!first_error) first_error = std::current_exception();
      died.store(true, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  const auto print_progress = [&](std::ostream& os) {
    const std::size_t d = done.load(std::memory_order_relaxed);
    const double fraction =
        jobs == 0 ? 1.0 : static_cast<double>(d) / static_cast<double>(jobs);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    os << "campaign: " << d << "/" << jobs << " jobs (" << std::fixed << std::setprecision(1)
       << 100.0 * fraction << "%), " << events_done.load(std::memory_order_relaxed)
       << " events";
    const std::size_t en = effort_jobs_done.load(std::memory_order_relaxed);
    if (en > 0) {
      os << ", mean effort " << std::setprecision(2)
         << live_effort_sum.load(std::memory_order_relaxed) / static_cast<double>(en);
    }
    if (d > 0 && d < jobs && fraction > 0) {
      os << ", eta " << std::setprecision(1) << elapsed * (1.0 - fraction) / fraction << "s";
    }
    os << '\n' << std::flush;
  };
  const auto build_snapshot = [&](bool final_snapshot) {
    CampaignSnapshot snap;
    snap.jobs_total = jobs;
    snap.jobs_done = done.load(std::memory_order_relaxed);
    snap.events = events_done.load(std::memory_order_relaxed);
    snap.effort_sum = live_effort_sum.load(std::memory_order_relaxed);
    snap.effort_jobs = effort_jobs_done.load(std::memory_order_relaxed);
    snap.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    snap.final_snapshot = final_snapshot;
    snap.protocols.reserve(proto_count);
    for (std::size_t p = 0; p < proto_count; ++p) {
      CampaignProtocolSnapshot ps;
      ps.protocol = spec_.protocols[p];
      ps.total = jobs_per_protocol;
      ps.done = proto_done[p].load(std::memory_order_relaxed);
      ps.events = proto_events[p].load(std::memory_order_relaxed);
      ps.effort_sum = proto_effort_sum[p].load(std::memory_order_relaxed);
      ps.effort_jobs = proto_effort_jobs[p].load(std::memory_order_relaxed);
      snap.protocols.push_back(ps);
    }
    snap.delay_buckets.resize(CampaignSnapshot::kDelayBuckets);
    for (std::size_t b = 0; b < CampaignSnapshot::kDelayBuckets; ++b) {
      snap.delay_buckets[b] = delay_buckets[b].load(std::memory_order_relaxed);
    }
    snap.delay_count = delay_count.load(std::memory_order_relaxed);
    return snap;
  };
  const auto report = [&]() {
    if (progress.out != nullptr) print_progress(*progress.out);
    if (snapshots) progress.on_snapshot(build_snapshot(/*final_snapshot=*/false));
  };

  // The monitor thread exists only while a sink is attached; the common
  // silent path pays nothing beyond the workers' relaxed counter updates.
  std::atomic<bool> finished{false};
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  std::thread monitor;
  if (progress.active()) {
    monitor = std::thread([&]() {
      std::unique_lock lock{monitor_mutex};
      while (!monitor_cv.wait_for(lock, progress.interval,
                                  [&]() { return finished.load(std::memory_order_relaxed); })) {
        report();
      }
    });
  }

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) t.join();
  }
  if (monitor.joinable()) {
    {
      const std::scoped_lock lock{monitor_mutex};
      finished.store(true, std::memory_order_relaxed);
    }
    monitor_cv.notify_all();
    monitor.join();
    // Always close with a complete report so short campaigns still show up;
    // after the join the snapshot counts are exact.
    if (progress.out != nullptr) print_progress(*progress.out);
    if (snapshots) progress.on_snapshot(build_snapshot(/*final_snapshot=*/true));
  }
  if (first_error) std::rethrow_exception(first_error);

  // Serial reduction in grid order: aggregates are a pure fold over the job
  // vector, so they too are bitwise reproducible across thread counts.
  bool first_effort = true;
  bool first_events = true;
  bool first_penalty = true;
  double effort_sum = 0;
  double events_sum = 0;
  double penalty_sum = 0;
  std::size_t effort_jobs = 0;
  std::size_t penalty_jobs = 0;
  for (const CampaignJobResult& r : result.jobs) {
    result.total_events += r.event_count;
    result.total_transmitter_sends += r.transmitter_sends;
    result.total_counters += r.metrics.counters;
    if (r.failed || !r.output_correct || !r.quiescent) ++result.incorrect;
    const auto events = static_cast<double>(r.event_count);
    if (first_events) {
      result.events.min = result.events.max = events;
      first_events = false;
    } else {
      result.events.min = std::min(result.events.min, events);
      result.events.max = std::max(result.events.max, events);
    }
    events_sum += events;
    if (r.effort > 0) {
      if (first_effort) {
        result.effort.min = result.effort.max = r.effort;
        first_effort = false;
      } else {
        result.effort.min = std::min(result.effort.min, r.effort);
        result.effort.max = std::max(result.effort.max, r.effort);
      }
      effort_sum += r.effort;
      ++effort_jobs;
    }
    if (r.est_penalty > 0) {
      if (first_penalty) {
        result.est_penalty.min = result.est_penalty.max = r.est_penalty;
        first_penalty = false;
      } else {
        result.est_penalty.min = std::min(result.est_penalty.min, r.est_penalty);
        result.est_penalty.max = std::max(result.est_penalty.max, r.est_penalty);
      }
      penalty_sum += r.est_penalty;
      ++penalty_jobs;
    }
  }
  if (jobs > 0) {
    result.events.mean = events_sum / static_cast<double>(jobs);
  }
  if (effort_jobs > 0) {
    result.effort.mean = effort_sum / static_cast<double>(effort_jobs);
  }
  if (penalty_jobs > 0) {
    result.est_penalty.mean = penalty_sum / static_cast<double>(penalty_jobs);
  }
  return result;
}

std::vector<obs::RunMetricsRecord> campaign_metrics_records(const CampaignResult& result,
                                                            std::size_t input_bits) {
  std::vector<obs::RunMetricsRecord> records;
  records.reserve(result.jobs.size());
  for (const CampaignJobResult& j : result.jobs) {
    obs::RunMetricsRecord record;
    record.protocol = protocols::to_string(j.protocol);
    record.c1 = j.params.c1.ticks();
    record.c2 = j.params.c2.ticks();
    record.d = j.params.d.ticks();
    record.k = j.k;
    record.input_bits = input_bits;
    record.seed = j.env_seed;
    record.effort = j.effort;
    record.correct = j.output_correct;
    record.quiescent = j.quiescent;
    record.metrics = j.metrics;
    record.est_penalty = j.est_penalty;
    record.est = j.est;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace rstp::sim
