#include "rstp/sim/scheduler.h"

#include <algorithm>

#include "rstp/common/check.h"

namespace rstp::sim {

FixedRateScheduler::FixedRateScheduler(Duration gap, Duration first) : gap_(gap), first_(first) {
  RSTP_CHECK_GT(gap_.ticks(), 0, "fixed rate gap must be positive");
  RSTP_CHECK(!first_.is_negative(), "first offset must be non-negative");
}

Duration FixedRateScheduler::next_gap(std::uint64_t /*step_index*/) { return gap_; }

SeededRandomScheduler::SeededRandomScheduler(Rng rng, core::TimingParams params)
    : rng_(rng), params_(params) {
  params_.validate();
}

Duration SeededRandomScheduler::first_offset() {
  return rng_.next_duration(Duration{0}, params_.c2);
}

Duration SeededRandomScheduler::next_gap(std::uint64_t /*step_index*/) {
  return rng_.next_duration(params_.c1, params_.c2);
}

SawtoothScheduler::SawtoothScheduler(core::TimingParams params) : params_(params) {
  params_.validate();
}

Duration SawtoothScheduler::next_gap(std::uint64_t step_index) {
  return (step_index % 2 == 0) ? params_.c1 : params_.c2;
}

DriftScheduler::DriftScheduler(core::TimingParams params, std::uint64_t run_length)
    : params_(params), run_length_(run_length) {
  params_.validate();
  RSTP_CHECK_GT(run_length_, std::uint64_t{0}, "drift run length must be positive");
}

Duration DriftScheduler::next_gap(std::uint64_t step_index) {
  const std::uint64_t run = step_index / run_length_;
  return (run % 2 == 0) ? params_.c1 : params_.c2;
}

DriftingSpecScheduler::DriftingSpecScheduler(core::DriftSpec spec, core::TimingParams params)
    : spec_(std::move(spec)), params_(params) {
  params_.validate();
  spec_.validate();
  RSTP_CHECK(!spec_.empty(), "drifting scheduler requires a non-empty spec");
}

Duration DriftingSpecScheduler::next_gap(std::uint64_t /*step_index*/) {
  const core::DriftSpec::Segment& seg = spec_.segment_at(clock_);
  const Duration target = seg.c2_eff.value_or(params_.c2);
  const Duration gap{std::clamp(target.ticks(), params_.c1.ticks(), params_.c2.ticks())};
  clock_ += gap;
  return gap;
}

std::unique_ptr<StepScheduler> make_fixed_rate(Duration gap, Duration first) {
  return std::make_unique<FixedRateScheduler>(gap, first);
}

std::unique_ptr<StepScheduler> make_seeded_random(std::uint64_t seed, core::TimingParams params) {
  return std::make_unique<SeededRandomScheduler>(Rng{seed}, params);
}

std::unique_ptr<StepScheduler> make_sawtooth(core::TimingParams params) {
  return std::make_unique<SawtoothScheduler>(params);
}

std::unique_ptr<StepScheduler> make_drift(core::TimingParams params, std::uint64_t run_length) {
  return std::make_unique<DriftScheduler>(params, run_length);
}

std::unique_ptr<StepScheduler> make_drifting_scheduler(core::DriftSpec spec,
                                                       core::TimingParams params) {
  return std::make_unique<DriftingSpecScheduler>(std::move(spec), params);
}

}  // namespace rstp::sim
