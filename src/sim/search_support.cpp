#include "rstp/sim/search_support.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "rstp/obs/run_metrics.h"

namespace rstp::sim {

std::uint64_t event_fingerprint(const ioa::TimedEvent& e,
                                const protocols::TransmitterBase& t,
                                const protocols::ReceiverBase& r) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(e.actor));
  h = fnv_mix(h, static_cast<std::uint64_t>(e.action.kind));
  switch (e.action.kind) {
    case ioa::ActionKind::Send:
    case ioa::ActionKind::Recv:
      h = fnv_mix(h, static_cast<std::uint64_t>(e.action.packet.direction));
      h = fnv_mix(h, e.action.packet.payload);
      break;
    case ioa::ActionKind::Write:
      h = fnv_mix(h, e.action.message);
      break;
    case ioa::ActionKind::Internal:
      h = fnv_mix(h, e.action.internal_id);
      break;
  }
  const obs::ProtocolCounters& tc = t.protocol_counters();
  const obs::ProtocolCounters& rc = r.protocol_counters();
  h = fnv_mix(h, tc.blocks_encoded);
  h = fnv_mix(h, tc.acks_observed);
  h = fnv_mix(h, tc.retransmissions);
  h = fnv_mix(h, rc.blocks_decoded);
  h = fnv_mix(h, rc.acks_sent);
  h = fnv_mix(h, r.output().size());
  return h;
}

std::uint64_t hash_bits(const std::vector<ioa::Bit>& bits) {
  std::uint64_t h = kFnvOffset;
  for (const ioa::Bit b : bits) h = fnv_mix(h, b);
  return h;
}

std::uint64_t hash_sorted(const std::vector<std::uint64_t>& values) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t v : values) h = fnv_mix(h, v);
  return h;
}

void parallel_for_slots(std::size_t n, unsigned jobs,
                        const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  const auto workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, std::max<std::size_t>(1, n)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> died{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    try {
      while (!died.load(std::memory_order_relaxed)) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    } catch (...) {
      const std::scoped_lock lock{error_mutex};
      if (!first_error) first_error = std::current_exception();
      died.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rstp::sim
