#include "rstp/sim/fuzz.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/core/effort.h"
#include "rstp/sim/search_support.h"
#include "rstp/sim/simulator.h"

namespace rstp::sim {

namespace {

using protocols::ProtocolKind;

// Fingerprinting (event_fingerprint/hash_bits/hash_sorted) and the
// generation-local work-stealing loop (parallel_for_slots) are shared with
// the adversary synthesizer — see rstp/sim/search_support.h.

[[nodiscard]] std::optional<ProtocolKind> protocol_from_string(std::string_view name) {
  for (const ProtocolKind kind : protocols::kAllProtocolKinds) {
    if (name == protocols::to_string(kind)) return kind;
  }
  return std::nullopt;
}

[[nodiscard]] std::string kind_name(core::ViolationKind kind) {
  std::ostringstream os;
  os << kind;
  return os.str();
}

// ---------------------------------------------------------------------------
// Case generation and mutation.

/// Smallest k >= `want` that satisfies `protocol`'s alphabet constraints.
[[nodiscard]] std::uint32_t valid_k(ProtocolKind protocol, std::uint32_t want) {
  std::uint32_t k = std::max(want, 2u);
  if (protocol == ProtocolKind::WindowedGamma) {
    // Default window W=2 needs W | k and k >= 2W.
    k = std::max(k, 4u);
    if (k % 2 != 0) ++k;
  }
  return k;
}

[[nodiscard]] fault::FaultRates default_fault_rates(std::uint32_t k) {
  fault::FaultRates rates;
  rates.drop_pm = 40;
  rates.duplicate_pm = 40;
  rates.late_pm = 40;
  rates.corrupt_pm = 40;
  rates.max_duplicates = 2;
  rates.max_late = Duration{4};
  rates.corrupt_space = std::max(k, 2u);
  return rates;
}

/// Baseline width of the per-case mutation-count draw (1 + next_below(rate)).
constexpr std::uint64_t kBaseMutationRate = 3;
/// Cap on the stall-driven boost: rate never exceeds kBaseMutationRate + 5.
constexpr std::uint64_t kMaxMutationBoost = 5;

/// The canonical starting points: a few timing shapes with seeds derived
/// from (spec.seed, variant). Everything else comes from mutation.
[[nodiscard]] FuzzCase base_case(const FuzzSpec& spec, std::size_t variant) {
  static constexpr struct {
    std::int64_t c1, c2, d;
  } kTimings[] = {{1, 2, 6}, {1, 1, 4}, {2, 3, 9}, {1, 3, 7}};
  constexpr std::size_t kVariants = std::size(kTimings);

  FuzzCase c;
  c.protocol = spec.protocol;
  c.params = core::TimingParams::make(kTimings[variant % kVariants].c1,
                                      kTimings[variant % kVariants].c2,
                                      kTimings[variant % kVariants].d);
  c.k = valid_k(spec.protocol, spec.k);
  c.input_bits = std::min(32u, std::max(1u, spec.max_input_bits));
  std::uint64_t state = spec.seed ^ (0xA24BAED4963EE407ULL * (variant + 1));
  c.input_seed = splitmix64(state);
  c.sched_seed_t = splitmix64(state);
  c.sched_seed_r = splitmix64(state);
  c.delay_seed = splitmix64(state);
  c.fault_seed = splitmix64(state);
  c.block_override = spec.block_override;
  c.wait_override = spec.wait_override;
  c.max_events = spec.max_events;
  c.faults_enabled = spec.faults_enabled;
  c.rates = default_fault_rates(c.k);
  return c;
}

/// `boost` widens the mutation-count draw when the corpus has stalled
/// (consecutive zero-gain generations); at boost 0 the draw — and therefore
/// the whole RNG stream — is identical to the historical fixed-rate fuzzer,
/// so golden hunts that never stall are unchanged.
[[nodiscard]] FuzzCase mutate(const FuzzCase& parent, Rng& rng, const FuzzSpec& spec,
                              std::uint64_t boost) {
  FuzzCase c = parent;
  const std::uint64_t mutations = 1 + rng.next_below(kBaseMutationRate + boost);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    switch (rng.next_below(c.faults_enabled ? 10 : 7)) {
      case 0:
        c.input_seed = rng.next_u64();
        break;
      case 1:
        c.sched_seed_t = rng.next_u64();
        break;
      case 2:
        c.sched_seed_r = rng.next_u64();
        break;
      case 3:
        c.delay_seed = rng.next_u64();
        break;
      case 4:
        c.input_bits = 1 + static_cast<std::uint32_t>(
                               rng.next_below(std::max(1u, spec.max_input_bits)));
        break;
      case 5: {
        const std::int64_t c1 = rng.next_in(1, 4);
        const std::int64_t c2 = rng.next_in(c1, 8);
        const std::int64_t d = rng.next_in(c2, 16);
        c.params = core::TimingParams::make(c1, c2, d);
        break;
      }
      case 6:
        c.k = valid_k(c.protocol, 2 + static_cast<std::uint32_t>(rng.next_below(10)));
        break;
      case 7:
        c.fault_seed = rng.next_u64();
        break;
      case 8: {
        // Reshape the rate mix while keeping the per-mille budget legal.
        fault::FaultRates& r = c.rates;
        r.drop_pm = static_cast<std::uint32_t>(rng.next_below(120));
        r.duplicate_pm = static_cast<std::uint32_t>(rng.next_below(120));
        r.late_pm = static_cast<std::uint32_t>(rng.next_below(120));
        r.corrupt_pm = static_cast<std::uint32_t>(rng.next_below(120));
        r.max_duplicates = 1 + static_cast<std::uint32_t>(rng.next_below(3));
        r.max_late = Duration{1 + static_cast<std::int64_t>(rng.next_below(8))};
        break;
      }
      case 9:
        if (!c.pins.empty() && rng.next_bool()) {
          c.pins.pop_back();
        } else {
          fault::PinnedFault pin;
          pin.send_seq = rng.next_below(64);
          pin.kind = static_cast<fault::FaultKind>(rng.next_below(4));
          pin.arg = 1 + static_cast<std::uint32_t>(rng.next_below(8));
          c.pins.push_back(pin);
        }
        break;
    }
  }
  c.rates.corrupt_space = std::max(c.k, 2u);
  return c;
}

/// Deterministic shrink: each attempted simplification is kept only if the
/// case still fails. Bounded by O(log input_bits + |pins| + rates) reruns.
[[nodiscard]] FuzzCase minimize_failure(const FuzzCase& original) {
  FuzzCase best = original;
  const auto still_fails = [](const FuzzCase& c) { return run_fuzz_case(c).failed; };

  while (best.input_bits > 1) {
    FuzzCase cand = best;
    cand.input_bits = best.input_bits / 2;
    if (!still_fails(cand)) break;
    best = cand;
  }
  if (!best.pins.empty()) {
    FuzzCase cand = best;
    cand.pins.clear();
    if (still_fails(cand)) {
      best = cand;
    } else {
      for (std::size_t i = best.pins.size(); i-- > 0;) {
        FuzzCase one_less = best;
        one_less.pins.erase(one_less.pins.begin() + static_cast<std::ptrdiff_t>(i));
        if (still_fails(one_less)) best = one_less;
      }
    }
  }
  if (best.faults_enabled) {
    FuzzCase cand = best;
    cand.faults_enabled = false;
    cand.pins.clear();
    if (still_fails(cand)) {
      best = cand;
    } else {
      const auto try_zero = [&](std::uint32_t fault::FaultRates::* field) {
        FuzzCase zeroed = best;
        zeroed.rates.*field = 0;
        if (still_fails(zeroed)) best = zeroed;
      };
      try_zero(&fault::FaultRates::drop_pm);
      try_zero(&fault::FaultRates::duplicate_pm);
      try_zero(&fault::FaultRates::late_pm);
      try_zero(&fault::FaultRates::corrupt_pm);
    }
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Single-case execution.

FuzzCaseResult run_fuzz_case(const FuzzCase& c, obs::trace::ModelRecorder* tracer) {
  c.params.validate();
  RSTP_CHECK_GE(c.k, 2u, "fuzz case needs k >= 2");
  RSTP_CHECK_GE(c.max_events, std::uint64_t{1}, "fuzz case needs a positive event cap");
  c.rates.validate();

  FuzzCaseResult out;

  protocols::ProtocolConfig config;
  config.params = c.params;
  config.k = c.k;
  config.input = core::make_random_input(c.input_bits, c.input_seed);
  if (c.protocol == ProtocolKind::Indexed) {
    // The indexed baseline needs an alphabet of at least 2|X| symbols.
    config.k = std::max<std::uint32_t>(
        config.k, static_cast<std::uint32_t>(2 * std::max<std::uint32_t>(1, c.input_bits)));
  }
  if (c.block_override != 0) config.block_size_override = c.block_override;
  if (c.wait_override != 0) config.wait_steps_override = c.wait_override;

  protocols::ProtocolInstance instance;
  try {
    instance = protocols::make_protocol(c.protocol, config);
  } catch (const ContractViolation& e) {
    // The genome violates this protocol's config contract (e.g. windowed-γ
    // alphabet shape). Not a bug — the case is simply outside the domain.
    out.invalid = true;
    out.failure = e.what();
    return out;
  }

  auto t_sched = make_seeded_random(c.sched_seed_t, c.params);
  auto r_sched = make_seeded_random(c.sched_seed_r, c.params);
  channel::Channel chan{
      c.params.d,
      channel::make_uniform_random(c.delay_seed, Duration{0}, c.params.d, c.params.d)};
  fault::SeededFaultInjector injector{c.fault_seed, c.rates, c.pins};
  if (c.faults_enabled) chan.set_fault_injector(&injector);

  std::unordered_set<std::uint64_t> seen;
  const protocols::TransmitterBase& t = *instance.transmitter;
  const protocols::ReceiverBase& r = *instance.receiver;

  SimConfig sim_config;
  sim_config.params = c.params;
  sim_config.max_events = c.max_events;
  sim_config.record_trace = true;
  sim_config.observer = [&](const ioa::TimedEvent& e) {
    seen.insert(event_fingerprint(e, t, r));
  };
  sim_config.tracer = tracer;

  RunResult run;
  bool completed = false;
  try {
    Simulator simulator{*instance.transmitter, *instance.receiver, chan, *t_sched, *r_sched,
                        sim_config};
    run = simulator.run();
    completed = true;
  } catch (const std::exception& e) {
    out.crashed = true;
    out.failure = e.what();
  }

  // The channel outlives the simulator, so the fault log survives a crash —
  // that is what decides whether the crash is fail-stop or a bug.
  out.fault_events = chan.fault_log().size();
  out.fingerprints.assign(seen.begin(), seen.end());
  std::sort(out.fingerprints.begin(), out.fingerprints.end());
  out.coverage_hash = hash_sorted(out.fingerprints);

  if (!completed) {
    out.failed = out.fault_events == 0;  // crash on a clean channel = bug
    return out;
  }

  out.quiescent = run.quiescent;
  out.event_count = run.event_count;
  out.metrics = run.metrics;
  out.end_time = run.end_time.ticks();
  if (run.last_transmitter_send.has_value() && !config.input.empty()) {
    out.last_send = run.last_transmitter_send->ticks();
    out.effort = static_cast<double>(out.last_send) /
                 static_cast<double>(config.input.size());
  }
  out.output_hash = hash_bits(run.output);
  const core::FaultVerifyReport report =
      core::verify_trace_with_faults(run.trace, c.params, config.input, run.faults);
  out.unexcused = report.unexcused;
  out.excused = report.excused;
  out.failed = !out.unexcused.empty();
  if (out.failed) {
    std::ostringstream os;
    os << out.unexcused.size() << " unexcused: " << out.unexcused.front();
    out.failure = os.str();
  }
  return out;
}

// ---------------------------------------------------------------------------
// The campaign loop.

FuzzResult run_fuzz(const FuzzSpec& spec) {
  RSTP_CHECK_GE(spec.budget, std::uint64_t{1}, "fuzz budget must be positive");
  RSTP_CHECK_GE(spec.max_input_bits, 1u, "fuzz needs at least one input bit");

  FuzzResult res;
  std::unordered_set<std::uint64_t> seen;
  constexpr std::size_t kMaxTrackedFailures = 8;
  constexpr std::uint64_t kGenerationSize = 32;

  std::vector<FuzzCase> round;
  for (std::size_t variant = 0; variant < 4; ++variant) {
    round.push_back(base_case(spec, variant));
  }
  for (const FuzzCase& seed_case : spec.corpus_seeds) {
    round.push_back(seed_case);
  }
  if (round.size() > spec.budget) round.resize(static_cast<std::size_t>(spec.budget));
  std::uint64_t planned = round.size();

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&]() {
    if (spec.time_budget_ms == 0) return false;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count() >=
           static_cast<std::int64_t>(spec.time_budget_ms);
  };

  // Mutation-rate self-tuning: each generation that folds in zero new
  // coverage bumps `stall`; any gain resets it. The next generation's
  // mutation-count draw widens to kBaseMutationRate + min(stall, cap), so a
  // plateaued corpus automatically explores bigger jumps. Pure fold-state:
  // deterministic across `jobs` like everything else here.
  std::uint64_t stall = 0;
  const auto mutation_boost = [&]() { return std::min(stall, kMaxMutationBoost); };

  // Display-only hunt progress. Published from the serial fold points, so
  // attaching on_generation cannot perturb the deterministic result state.
  std::uint64_t generation = 0;
  std::size_t crashes = 0;
  const auto emit_snapshot = [&](std::size_t coverage_gain, bool final_snapshot) {
    if (!spec.on_generation) return;
    FuzzGenerationSnapshot snap;
    snap.generation = generation;
    snap.executed = res.executed;
    snap.budget = spec.budget;
    snap.corpus = res.corpus.size();
    snap.coverage = seen.size();
    snap.coverage_gain = coverage_gain;
    snap.crashes = crashes;
    snap.failures = res.failures.size();
    snap.mutation_rate = kBaseMutationRate + mutation_boost();
    snap.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    snap.final_snapshot = final_snapshot;
    spec.on_generation(snap);
  };

  while (!round.empty()) {
    std::vector<FuzzCaseResult> results(round.size());
    parallel_for_slots(round.size(), spec.jobs,
                       [&](std::size_t i) { results[i] = run_fuzz_case(round[i]); });

    // Serial fold in slot order: corpus growth, coverage, and failure
    // collection are independent of how workers interleaved.
    const std::size_t coverage_before = seen.size();
    for (std::size_t i = 0; i < round.size(); ++i) {
      ++res.executed;
      const FuzzCaseResult& r = results[i];
      if (r.invalid) continue;
      if (r.crashed) ++crashes;
      bool fresh = false;
      for (const std::uint64_t fp : r.fingerprints) {
        if (seen.insert(fp).second) fresh = true;
      }
      if (r.failed) {
        if (res.failures.size() < kMaxTrackedFailures) {
          res.failures.push_back(FuzzFailure{round[i], round[i], r});
        }
      } else if (fresh) {
        res.corpus.push_back(round[i]);
        res.corpus_results.push_back(r);
      }
    }
    const std::size_t coverage_gain = seen.size() - coverage_before;
    if (coverage_gain == 0) {
      ++stall;
    } else {
      stall = 0;
    }
    emit_snapshot(coverage_gain, /*final_snapshot=*/false);
    ++generation;

    if (!res.failures.empty() && spec.stop_on_failure) break;
    if (planned >= spec.budget) break;
    if (out_of_time()) break;

    // Next generation: fully determined by (seed, iteration index, corpus
    // snapshot) before any parallel work starts. The generation size must
    // not depend on spec.jobs, or the corpus would evolve on a different
    // schedule at different thread counts and the campaign would diverge.
    const std::size_t batch = static_cast<std::size_t>(
        std::min<std::uint64_t>(spec.budget - planned, kGenerationSize));
    round.clear();
    for (std::size_t b = 0; b < batch; ++b) {
      std::uint64_t state = spec.seed ^ (0x9E3779B97F4A7C15ULL * (planned + b + 1));
      Rng rng{splitmix64(state)};
      const FuzzCase parent = res.corpus.empty()
                                  ? base_case(spec, b)
                                  : res.corpus[rng.next_below(res.corpus.size())];
      round.push_back(mutate(parent, rng, spec, mutation_boost()));
    }
    planned += batch;
  }

  res.coverage = seen.size();
  std::vector<std::uint64_t> all(seen.begin(), seen.end());
  std::sort(all.begin(), all.end());
  res.coverage_hash = hash_sorted(all);

  for (FuzzFailure& failure : res.failures) {
    failure.minimized = minimize_failure(failure.original);
    failure.result = run_fuzz_case(failure.minimized);
  }
  emit_snapshot(0, /*final_snapshot=*/true);
  return res;
}

// ---------------------------------------------------------------------------
// Serialization: line-oriented `key values...`, '#' comments, closed by
// `end`. Shared between corpus case files and repro files.

namespace {

constexpr std::string_view kCaseHeader = "rstp-fuzz-case-v1";
constexpr std::string_view kReproHeader = "rstp-fuzz-repro-v1";

void write_case_fields(std::ostream& os, const FuzzCase& c) {
  os << "protocol " << protocols::to_string(c.protocol) << '\n';
  os << "params " << c.params.c1.ticks() << ' ' << c.params.c2.ticks() << ' '
     << c.params.d.ticks() << '\n';
  os << "k " << c.k << '\n';
  os << "input_bits " << c.input_bits << '\n';
  os << "input_seed " << c.input_seed << '\n';
  os << "sched_seed_t " << c.sched_seed_t << '\n';
  os << "sched_seed_r " << c.sched_seed_r << '\n';
  os << "delay_seed " << c.delay_seed << '\n';
  os << "block_override " << c.block_override << '\n';
  os << "wait_override " << c.wait_override << '\n';
  os << "max_events " << c.max_events << '\n';
  os << "faults " << (c.faults_enabled ? 1 : 0) << '\n';
  os << "fault_seed " << c.fault_seed << '\n';
  os << "rates " << c.rates.drop_pm << ' ' << c.rates.duplicate_pm << ' ' << c.rates.late_pm
     << ' ' << c.rates.corrupt_pm << ' ' << c.rates.max_duplicates << ' '
     << c.rates.max_late.ticks() << ' ' << c.rates.corrupt_space << '\n';
  for (const fault::PinnedFault& pin : c.pins) {
    os << "pin " << pin.send_seq << ' ' << fault::to_string(pin.kind) << ' ' << pin.arg << '\n';
  }
}

[[noreturn]] void malformed(std::string_view what, std::string_view line) {
  std::ostringstream os;
  os << "malformed fuzz file: " << what;
  if (!line.empty()) os << " in line '" << line << "'";
  throw ModelError(os.str());
}

template <typename T>
[[nodiscard]] T read_value(std::istringstream& is, std::string_view line) {
  T value{};
  if (!(is >> value)) malformed("missing or bad value", line);
  return value;
}

/// Applies one `key values...` line to `c`; false if the key is unknown.
[[nodiscard]] bool apply_case_field(FuzzCase& c, const std::string& key,
                                    std::istringstream& is, const std::string& line) {
  if (key == "protocol") {
    std::string name;
    if (!(is >> name)) malformed("missing protocol name", line);
    const auto kind = protocol_from_string(name);
    if (!kind.has_value()) malformed("unknown protocol", line);
    c.protocol = *kind;
  } else if (key == "params") {
    const auto c1 = read_value<std::int64_t>(is, line);
    const auto c2 = read_value<std::int64_t>(is, line);
    const auto d = read_value<std::int64_t>(is, line);
    if (c1 < 1 || c2 < c1 || d < c2) malformed("params must satisfy 0 < c1 <= c2 <= d", line);
    c.params = core::TimingParams::make(c1, c2, d);
  } else if (key == "k") {
    c.k = read_value<std::uint32_t>(is, line);
  } else if (key == "input_bits") {
    c.input_bits = read_value<std::uint32_t>(is, line);
  } else if (key == "input_seed") {
    c.input_seed = read_value<std::uint64_t>(is, line);
  } else if (key == "sched_seed_t") {
    c.sched_seed_t = read_value<std::uint64_t>(is, line);
  } else if (key == "sched_seed_r") {
    c.sched_seed_r = read_value<std::uint64_t>(is, line);
  } else if (key == "delay_seed") {
    c.delay_seed = read_value<std::uint64_t>(is, line);
  } else if (key == "block_override") {
    c.block_override = read_value<std::uint32_t>(is, line);
  } else if (key == "wait_override") {
    c.wait_override = read_value<std::uint32_t>(is, line);
  } else if (key == "max_events") {
    c.max_events = read_value<std::uint64_t>(is, line);
    if (c.max_events == 0) malformed("max_events must be positive", line);
  } else if (key == "faults") {
    c.faults_enabled = read_value<std::uint32_t>(is, line) != 0;
  } else if (key == "fault_seed") {
    c.fault_seed = read_value<std::uint64_t>(is, line);
  } else if (key == "rates") {
    c.rates.drop_pm = read_value<std::uint32_t>(is, line);
    c.rates.duplicate_pm = read_value<std::uint32_t>(is, line);
    c.rates.late_pm = read_value<std::uint32_t>(is, line);
    c.rates.corrupt_pm = read_value<std::uint32_t>(is, line);
    c.rates.max_duplicates = read_value<std::uint32_t>(is, line);
    c.rates.max_late = Duration{read_value<std::int64_t>(is, line)};
    c.rates.corrupt_space = read_value<std::uint32_t>(is, line);
    try {
      c.rates.validate();
    } catch (const ContractViolation& e) {
      malformed(e.what(), line);
    }
  } else if (key == "pin") {
    fault::PinnedFault pin;
    pin.send_seq = read_value<std::uint64_t>(is, line);
    std::string name;
    if (!(is >> name)) malformed("missing pin kind", line);
    const auto kind = fault::fault_kind_from_string(name);
    if (!kind.has_value()) malformed("unknown fault kind", line);
    pin.kind = *kind;
    pin.arg = read_value<std::uint32_t>(is, line);
    c.pins.push_back(pin);
  } else {
    return false;
  }
  return true;
}

/// Strips a trailing comment and surrounding whitespace; empty = skip.
[[nodiscard]] std::string clean_line(const std::string& raw) {
  std::string line = raw;
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

/// Reads the header line (skipping blanks/comments); throws on mismatch.
void expect_header(std::istream& is, std::string_view header) {
  std::string raw;
  while (std::getline(is, raw)) {
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (line != header) malformed("expected header", line);
    return;
  }
  malformed("empty document", "");
}

}  // namespace

void write_fuzz_case(std::ostream& os, const FuzzCase& c) {
  os << kCaseHeader << '\n';
  write_case_fields(os, c);
  os << "end\n";
}

FuzzCase parse_fuzz_case(std::istream& is) {
  expect_header(is, kCaseHeader);
  FuzzCase c;
  std::string raw;
  while (std::getline(is, raw)) {
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (line == "end") return c;
    std::istringstream tokens{line};
    std::string key;
    tokens >> key;
    if (!apply_case_field(c, key, tokens, line)) malformed("unknown key", line);
  }
  malformed("missing 'end'", "");
}

FuzzRepro make_fuzz_repro(const FuzzCase& c, const FuzzCaseResult& result) {
  FuzzRepro repro;
  repro.fuzz_case = c;
  repro.failed = result.failed;
  repro.crashed = result.crashed;
  repro.quiescent = result.quiescent;
  repro.unexcused = result.unexcused.size();
  repro.fault_events = result.fault_events;
  for (const core::Violation& v : result.unexcused) repro.kinds.push_back(kind_name(v.kind));
  repro.output_hash = result.output_hash;
  repro.coverage_hash = result.coverage_hash;
  repro.event_count = result.event_count;
  return repro;
}

void write_fuzz_repro(std::ostream& os, const FuzzCase& c, const FuzzCaseResult& result) {
  const FuzzRepro repro = make_fuzz_repro(c, result);
  os << kReproHeader << '\n';
  write_case_fields(os, c);
  os << "expect_failed " << (repro.failed ? 1 : 0) << '\n';
  os << "expect_crashed " << (repro.crashed ? 1 : 0) << '\n';
  os << "expect_quiescent " << (repro.quiescent ? 1 : 0) << '\n';
  os << "expect_unexcused " << repro.unexcused << '\n';
  os << "expect_fault_events " << repro.fault_events << '\n';
  os << "expect_kinds " << repro.kinds.size();
  for (const std::string& kind : repro.kinds) os << ' ' << kind;
  os << '\n';
  os << "expect_output_hash " << repro.output_hash << '\n';
  os << "expect_coverage_hash " << repro.coverage_hash << '\n';
  os << "expect_events " << repro.event_count << '\n';
  os << "end\n";
}

FuzzRepro parse_fuzz_repro(std::istream& is) {
  expect_header(is, kReproHeader);
  FuzzRepro repro;
  std::string raw;
  while (std::getline(is, raw)) {
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (line == "end") return repro;
    std::istringstream tokens{line};
    std::string key;
    tokens >> key;
    if (key == "expect_failed") {
      repro.failed = read_value<std::uint32_t>(tokens, line) != 0;
    } else if (key == "expect_crashed") {
      repro.crashed = read_value<std::uint32_t>(tokens, line) != 0;
    } else if (key == "expect_quiescent") {
      repro.quiescent = read_value<std::uint32_t>(tokens, line) != 0;
    } else if (key == "expect_unexcused") {
      repro.unexcused = read_value<std::size_t>(tokens, line);
    } else if (key == "expect_fault_events") {
      repro.fault_events = read_value<std::size_t>(tokens, line);
    } else if (key == "expect_kinds") {
      const auto count = read_value<std::size_t>(tokens, line);
      for (std::size_t i = 0; i < count; ++i) {
        std::string name;
        if (!(tokens >> name)) malformed("missing violation kind", line);
        repro.kinds.push_back(name);
      }
    } else if (key == "expect_output_hash") {
      repro.output_hash = read_value<std::uint64_t>(tokens, line);
    } else if (key == "expect_coverage_hash") {
      repro.coverage_hash = read_value<std::uint64_t>(tokens, line);
    } else if (key == "expect_events") {
      repro.event_count = read_value<std::uint64_t>(tokens, line);
    } else if (!apply_case_field(repro.fuzz_case, key, tokens, line)) {
      malformed("unknown key", line);
    }
  }
  malformed("missing 'end'", "");
}

ReplayOutcome replay_fuzz_repro(const FuzzRepro& repro, obs::trace::ModelRecorder* tracer) {
  ReplayOutcome outcome;
  outcome.result = run_fuzz_case(repro.fuzz_case, tracer);
  const FuzzRepro got = make_fuzz_repro(repro.fuzz_case, outcome.result);

  const auto mismatch = [&](std::string_view field, auto got_v, auto want_v) {
    std::ostringstream os;
    os << field << ": got " << got_v << ", recorded " << want_v;
    outcome.mismatch = os.str();
  };
  if (got.failed != repro.failed) {
    mismatch("failed", got.failed, repro.failed);
  } else if (got.crashed != repro.crashed) {
    mismatch("crashed", got.crashed, repro.crashed);
  } else if (got.quiescent != repro.quiescent) {
    mismatch("quiescent", got.quiescent, repro.quiescent);
  } else if (got.unexcused != repro.unexcused) {
    mismatch("unexcused", got.unexcused, repro.unexcused);
  } else if (got.fault_events != repro.fault_events) {
    mismatch("fault_events", got.fault_events, repro.fault_events);
  } else if (got.kinds != repro.kinds) {
    mismatch("kinds", got.kinds.size(), repro.kinds.size());
  } else if (got.output_hash != repro.output_hash) {
    mismatch("output_hash", got.output_hash, repro.output_hash);
  } else if (got.coverage_hash != repro.coverage_hash) {
    mismatch("coverage_hash", got.coverage_hash, repro.coverage_hash);
  } else if (got.event_count != repro.event_count) {
    mismatch("event_count", got.event_count, repro.event_count);
  } else {
    outcome.reproduced = true;
  }
  return outcome;
}

}  // namespace rstp::sim
