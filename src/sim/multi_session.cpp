#include "rstp/sim/multi_session.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "rstp/channel/channel.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/obs/metrics.h"
#include "rstp/sim/scheduler.h"
#include "rstp/sim/simulator.h"

namespace rstp::sim {

namespace {

/// Global-registry slots the multiplexed engine reports into (same idempotent
/// lookup pattern as the campaign engine's ids).
struct MetricsRegistryIds {
  obs::MetricsRegistry::MetricId sessions = obs::global_registry().counter("mega/sessions");
  obs::MetricsRegistry::MetricId events = obs::global_registry().counter("mega/events");
  obs::MetricsRegistry::MetricId max_sessions =
      obs::global_registry().gauge("mega/max_sessions_per_run");
};

/// One materialized session in a shard's arena: the automata pair, its
/// private environment (schedulers + channel), and the incremental Simulator
/// driving them. Every pointee is heap-allocated and the slot vector is
/// exactly reserved, so the Simulator's internal pointers stay valid for the
/// shard's whole loop.
struct SessionSlot {
  protocols::ProtocolInstance instance;
  std::unique_ptr<StepScheduler> t_sched;
  std::unique_ptr<StepScheduler> r_sched;
  std::unique_ptr<channel::Channel> channel;
  std::vector<ioa::Bit> input;
  std::optional<Simulator> sim;
  RunResult result;
};

/// Builds session `session_id` in place. The wiring — and, critically, the
/// seed draw order (transmitter scheduler, receiver scheduler, delivery
/// policy from Rng{environment seed}) — mirrors core::run_protocol exactly,
/// so the session is reproducible as a standalone run with the same derived
/// seeds (megasession_test asserts this).
void materialize_session(const MultiSessionSpec& spec, std::uint64_t session_id,
                         SessionSlot& slot) {
  const DerivedSeeds seeds = derive_unit_seeds(spec.base_seed, session_id);

  protocols::ProtocolConfig config;
  config.params = spec.params;
  config.k = spec.k;
  config.input = core::make_random_input(spec.input_bits, seeds.input);
  slot.instance = protocols::make_protocol(spec.protocol, config);
  slot.input = std::move(config.input);

  Rng seeder{seeds.environment};
  slot.t_sched =
      core::make_scheduler(spec.environment.transmitter_sched, spec.params, seeder.next_u64());
  slot.r_sched =
      core::make_scheduler(spec.environment.receiver_sched, spec.params, seeder.next_u64());
  slot.channel = std::make_unique<channel::Channel>(
      spec.params.d, core::make_delivery_policy(spec.environment.delay, spec.params,
                                                seeder.next_u64()));

  SimConfig sim_config;
  sim_config.params = spec.params;
  sim_config.record_trace = false;
  sim_config.max_events = spec.max_events_per_session;
  slot.sim.emplace(*slot.instance.transmitter, *slot.instance.receiver, *slot.channel,
                   *slot.t_sched, *slot.r_sched, std::move(sim_config));
}

/// One shard's session-order fold. Effort is accumulated in integer ticks
/// (all sessions share input_bits, so mean = Σticks / (bits · senders)):
/// integer addition is associative, which is what makes the merged fold
/// invariant to the shard count, not just the thread count.
struct ShardFold {
  std::uint64_t sessions = 0;
  std::uint64_t correct = 0;
  std::uint64_t quiescent = 0;
  std::uint64_t total_events = 0;
  std::uint64_t effort_sessions = 0;  ///< sessions with t(last-send) > 0
  std::uint64_t effort_ticks_sum = 0;
  std::int64_t effort_ticks_min = 0;
  std::int64_t effort_ticks_max = 0;
  obs::RunMetrics metrics;
  bool metrics_valid = false;  ///< false only for an empty shard
};

void fold_effort_ticks(ShardFold& fold, std::int64_t ticks, std::uint64_t weight,
                       std::int64_t min_ticks, std::int64_t max_ticks) {
  if (fold.effort_sessions == 0) {
    fold.effort_ticks_min = min_ticks;
    fold.effort_ticks_max = max_ticks;
  } else {
    fold.effort_ticks_min = std::min(fold.effort_ticks_min, min_ticks);
    fold.effort_ticks_max = std::max(fold.effort_ticks_max, max_ticks);
  }
  fold.effort_ticks_sum += static_cast<std::uint64_t>(ticks);
  fold.effort_sessions += weight;
}

void fold_metrics(ShardFold& fold, const obs::RunMetrics& metrics) {
  if (!fold.metrics_valid) {
    // First session in the fold: adopt its metrics wholesale (this also
    // carries the histogram layouts — one TimingParams per spec, so every
    // later merge sees an identical layout).
    fold.metrics = metrics;
    fold.metrics_valid = true;
    return;
  }
  fold.metrics.counters += metrics.counters;
  fold.metrics.data_delay.merge(metrics.data_delay);
  fold.metrics.ack_delay.merge(metrics.ack_delay);
  fold.metrics.transmitter_gap.merge(metrics.transmitter_gap);
  fold.metrics.receiver_gap.merge(metrics.receiver_gap);
}

/// Runs sessions [lo, hi) to completion on one cross-session event heap and
/// returns their session-order fold.
ShardFold run_shard(const MultiSessionSpec& spec, std::uint64_t lo, std::uint64_t hi) {
  const auto count = static_cast<std::size_t>(hi - lo);

  // The arena: materialize every session once, into one exactly-reserved
  // contiguous vector, before the loop starts. From here on the per-dispatch
  // path allocates nothing (channel heaps reuse their buffers; heap entries
  // are PODs in a pre-reserved vector).
  std::vector<SessionSlot> slots;
  slots.reserve(count);
  for (std::uint64_t s = lo; s < hi; ++s) {
    slots.emplace_back();
    materialize_session(spec, s, slots.back());
  }

  // The cross-session event heap: (next dispatch instant, local session
  // index). The index tiebreak keeps simultaneous sessions in session order —
  // a deterministic choice, though sessions are independent, so the pop order
  // cannot change any per-session result bit either way.
  struct HeapEntry {
    Time at{};
    std::uint32_t idx = 0;
  };
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    if (b.at < a.at) return true;
    if (a.at < b.at) return false;
    return b.idx < a.idx;
  };

  std::vector<HeapEntry> heap;
  heap.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Simulator& sim = *slots[i].sim;
    sim.start();
    if (const std::optional<Time> at = sim.next_instant()) {
      heap.push_back(HeapEntry{*at, i});
    } else {
      slots[i].result = sim.take_result();
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    HeapEntry entry = heap.back();
    heap.pop_back();
    Simulator& sim = *slots[entry.idx].sim;
    sim.advance();
    if (const std::optional<Time> at = sim.next_instant()) {
      entry.at = *at;
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), later);
    } else {
      slots[entry.idx].result = sim.take_result();
    }
  }

  // Fold in session order (slot order IS session order within the shard).
  ShardFold fold;
  for (const SessionSlot& slot : slots) {
    const RunResult& r = slot.result;
    ++fold.sessions;
    if (r.output == slot.input) ++fold.correct;
    if (r.quiescent) ++fold.quiescent;
    fold.total_events += r.event_count;
    if (spec.input_bits > 0 && r.last_transmitter_send.has_value()) {
      const std::int64_t ticks = (*r.last_transmitter_send - Time::zero()).ticks();
      // Same "sent at least once" criterion as the campaign fold: a last
      // send at t=0 reports effort 0 and does not count as a sender.
      if (ticks > 0) fold_effort_ticks(fold, ticks, 1, ticks, ticks);
    }
    fold_metrics(fold, r.metrics);
  }
  return fold;
}

}  // namespace

void MultiSessionSpec::validate() const {
  params.validate();
  RSTP_CHECK_GE(k, 2u, "mega needs k >= 2");
  RSTP_CHECK_GE(sessions, std::uint64_t{1}, "mega needs at least one session");
  RSTP_CHECK_GE(shards, 1u, "mega needs at least one shard");
  RSTP_CHECK_GE(max_events_per_session, std::uint64_t{1}, "mega needs a positive event cap");
}

MultiSession::MultiSession(MultiSessionSpec spec) : spec_(std::move(spec)) { spec_.validate(); }

MultiSessionResult MultiSession::run(unsigned threads) const {
  const std::uint64_t n = spec_.sessions;
  const std::uint64_t shard_count = spec_.shards;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const auto workers = static_cast<unsigned>(std::min<std::uint64_t>(threads, shard_count));

  // Contiguous shard ranges via remainder spreading: the first n % shards
  // shards get one extra session. Ranges depend only on (sessions, shards).
  const std::uint64_t base = n / shard_count;
  const std::uint64_t extra = n % shard_count;
  const auto shard_lo = [&](std::uint64_t s) { return s * base + std::min(s, extra); };

  std::vector<ShardFold> folds(static_cast<std::size_t>(shard_count));

  // Work stealing over shards: each worker atomically claims the next shard
  // and writes only its own fold slot, so the serial shard-order merge below
  // sees identical inputs for every thread count.
  std::atomic<std::uint64_t> cursor{0};
  std::atomic<bool> died{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&]() {
    try {
      while (!died.load(std::memory_order_relaxed)) {
        const std::uint64_t s = cursor.fetch_add(1, std::memory_order_relaxed);
        if (s >= shard_count) break;
        folds[static_cast<std::size_t>(s)] = run_shard(spec_, shard_lo(s), shard_lo(s + 1));
      }
    } catch (...) {
      const std::scoped_lock lock{error_mutex};
      if (!first_error) first_error = std::current_exception();
      died.store(true, std::memory_order_relaxed);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (first_error) std::rethrow_exception(first_error);

  // Serial merge in shard order. Shards cover contiguous session ranges in
  // order and every fold operation here is associative (integer sums, min,
  // max, histogram bucket adds), so the merged result is the session-order
  // fold — independent of both the thread count and the shard count.
  MultiSessionResult result;
  ShardFold merged;
  for (const ShardFold& f : folds) {
    merged.sessions += f.sessions;
    merged.correct += f.correct;
    merged.quiescent += f.quiescent;
    merged.total_events += f.total_events;
    if (f.effort_sessions > 0) {
      fold_effort_ticks(merged, static_cast<std::int64_t>(f.effort_ticks_sum),
                        f.effort_sessions, f.effort_ticks_min, f.effort_ticks_max);
    }
    if (f.metrics_valid) fold_metrics(merged, f.metrics);
  }
  result.sessions = merged.sessions;
  result.correct_sessions = merged.correct;
  result.quiescent_sessions = merged.quiescent;
  result.total_events = merged.total_events;
  result.metrics = merged.metrics;
  if (merged.effort_sessions > 0 && spec_.input_bits > 0) {
    const auto bits = static_cast<double>(spec_.input_bits);
    result.effort.min = static_cast<double>(merged.effort_ticks_min) / bits;
    result.effort.max = static_cast<double>(merged.effort_ticks_max) / bits;
    result.effort.mean = static_cast<double>(merged.effort_ticks_sum) /
                         (bits * static_cast<double>(merged.effort_sessions));
  }
  result.elapsed_seconds = elapsed;
  if (elapsed > 0) {
    result.events_per_sec = static_cast<double>(result.total_events) / elapsed;
  }

  const MetricsRegistryIds registry_ids;
  obs::global_registry().add(registry_ids.sessions, result.sessions);
  obs::global_registry().add(registry_ids.events, result.total_events);
  obs::global_registry().gauge_max(registry_ids.max_sessions, result.sessions);
  return result;
}

obs::RunMetricsRecord multi_session_metrics_record(const MultiSessionSpec& spec,
                                                   const MultiSessionResult& result) {
  obs::RunMetricsRecord record;
  record.protocol = protocols::to_string(spec.protocol);
  record.c1 = spec.params.c1.ticks();
  record.c2 = spec.params.c2.ticks();
  record.d = spec.params.d.ticks();
  record.k = spec.k;
  record.input_bits = spec.input_bits;
  record.seed = spec.base_seed;
  record.effort = result.effort.mean;
  record.correct = result.correct_sessions == result.sessions;
  record.quiescent = result.quiescent_sessions == result.sessions;
  record.metrics = result.metrics;
  record.sessions = result.sessions;
  record.events_per_sec = result.events_per_sec;
  return record;
}

MultiSessionSpec golden_megasession_spec() {
  MultiSessionSpec spec;
  spec.params.c1 = Duration{1};
  spec.params.c2 = Duration{2};
  spec.params.d = Duration{4};
  spec.sessions = 10'000;
  spec.base_seed = 0x3E6A;
  return spec;
}

}  // namespace rstp::sim
