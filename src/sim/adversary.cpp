#include "rstp/sim/adversary.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/core/effort.h"
#include "rstp/sim/search_support.h"
#include "rstp/sim/simulator.h"

namespace rstp::sim {

namespace {

using channel::ScheduleGenome;
using protocols::ProtocolKind;

/// Replays the process half of a genome: first offset, then cyclic gaps.
class GenomeScheduler final : public StepScheduler {
 public:
  GenomeScheduler(Duration first, std::vector<Duration> gaps)
      : first_(first), gaps_(std::move(gaps)) {
    RSTP_CHECK(!gaps_.empty(), "genome scheduler needs at least one gap");
  }
  [[nodiscard]] Duration first_offset() override { return first_; }
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override {
    return gaps_[(step_index - 1) % gaps_.size()];
  }

 private:
  Duration first_;
  std::vector<Duration> gaps_;
};

/// Longest cyclic table the mutator will grow; keeps genomes (and their
/// minimized artifacts) small while still expressing periodic adversaries
/// far beyond the hand-coded one-entry policies.
constexpr std::size_t kMaxTable = 16;
constexpr std::uint64_t kMaxOrderKey = 64;
constexpr std::uint64_t kBaseMutationRate = 3;
constexpr std::uint64_t kMaxMutationBoost = 5;
constexpr std::uint64_t kGenerationSize = 16;

[[nodiscard]] ScheduleGenome mutate_genome(const ScheduleGenome& parent, Rng& rng,
                                           const core::TimingParams& params,
                                           std::uint64_t boost) {
  ScheduleGenome g = parent;
  const auto pick = [&](std::size_t size) { return rng.next_below(size); };
  const auto resize_table = [&](auto& table, auto fill) {
    if (rng.next_bool() && table.size() > 1) {
      table.pop_back();
    } else if (table.size() < kMaxTable) {
      table.push_back(fill());
    }
  };
  const std::uint64_t mutations = 1 + rng.next_below(kBaseMutationRate + boost);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    switch (rng.next_below(10)) {
      case 0:
        g.delays[pick(g.delays.size())] = rng.next_duration(Duration{0}, params.d);
        break;
      case 1:
        // Exploit move: latest-possible delivery is the hand adversary's own
        // trick; re-injecting it keeps mutated genomes near the optimum.
        g.delays[pick(g.delays.size())] = params.d;
        break;
      case 2:
        g.order_keys[pick(g.order_keys.size())] = rng.next_below(kMaxOrderKey);
        break;
      case 3:
        g.t_gaps[pick(g.t_gaps.size())] = rng.next_duration(params.c1, params.c2);
        break;
      case 4:
        g.r_gaps[pick(g.r_gaps.size())] = rng.next_duration(params.c1, params.c2);
        break;
      case 5:
        // Exploit move: slowest legal stepping maximizes per-step cost.
        if (rng.next_bool()) {
          g.t_gaps[pick(g.t_gaps.size())] = params.c2;
        } else {
          g.r_gaps[pick(g.r_gaps.size())] = params.c2;
        }
        break;
      case 6:
        resize_table(g.delays, [&] { return rng.next_duration(Duration{0}, params.d); });
        break;
      case 7:
        resize_table(g.order_keys, [&] { return rng.next_below(kMaxOrderKey); });
        break;
      case 8:
        if (rng.next_bool()) {
          resize_table(g.t_gaps, [&] { return rng.next_duration(params.c1, params.c2); });
        } else {
          resize_table(g.r_gaps, [&] { return rng.next_duration(params.c1, params.c2); });
        }
        break;
      case 9:
        if (rng.next_bool()) {
          g.t_first = rng.next_duration(Duration{0}, params.c2);
        } else {
          g.r_first = rng.next_duration(Duration{0}, params.c2);
        }
        break;
    }
  }
  return g;
}

/// Generation-0 population: the hand-coded floor plus a few structurally
/// distinct corners of the legal space (fast stepping, instant delivery,
/// maximum jitter).
[[nodiscard]] std::vector<ScheduleGenome> seed_genomes(const core::TimingParams& params) {
  std::vector<ScheduleGenome> out;
  out.push_back(hand_equivalent_genome(params));

  ScheduleGenome fast = out.front();
  fast.t_gaps = {params.c1};
  fast.r_gaps = {params.c1};
  out.push_back(fast);

  ScheduleGenome instant = out.front();
  instant.delays = {Duration{0}};
  out.push_back(instant);

  ScheduleGenome jitter;
  jitter.delays = {params.d, Duration{0}};
  jitter.order_keys = {1, 0};
  jitter.t_gaps = {params.c1, params.c2};
  jitter.r_gaps = {params.c2, params.c1};
  out.push_back(jitter);
  return out;
}

[[nodiscard]] std::uint64_t hash_genome(std::uint64_t h, const ScheduleGenome& g) {
  h = fnv_mix(h, g.delays.size());
  for (const Duration d : g.delays) h = fnv_mix(h, static_cast<std::uint64_t>(d.ticks()));
  h = fnv_mix(h, g.order_keys.size());
  for (const std::uint64_t key : g.order_keys) h = fnv_mix(h, key);
  h = fnv_mix(h, static_cast<std::uint64_t>(g.t_first.ticks()));
  h = fnv_mix(h, static_cast<std::uint64_t>(g.r_first.ticks()));
  h = fnv_mix(h, g.t_gaps.size());
  for (const Duration d : g.t_gaps) h = fnv_mix(h, static_cast<std::uint64_t>(d.ticks()));
  h = fnv_mix(h, g.r_gaps.size());
  for (const Duration d : g.r_gaps) h = fnv_mix(h, static_cast<std::uint64_t>(d.ticks()));
  return h;
}

[[nodiscard]] std::optional<ProtocolKind> protocol_from_string(std::string_view name) {
  for (const ProtocolKind kind : protocols::kAllProtocolKinds) {
    if (name == protocols::to_string(kind)) return kind;
  }
  return std::nullopt;
}

/// Deterministic shrink of the winning genome: each simplification is kept
/// only if the re-evaluated fitness stays >= the incumbent (never worse than
/// hand-coded, since that was the floor). Bounded by O(Σ log |table|) reruns.
[[nodiscard]] ScheduleGenome minimize_genome(const AdversaryCell& cell, std::uint64_t input_seed,
                                             ScheduleGenome best, std::int64_t best_fitness,
                                             std::uint64_t max_events) {
  const auto at_least_as_fit = [&](const ScheduleGenome& g) {
    const GenomeEval eval = evaluate_genome(cell, input_seed, g, max_events);
    return eval.fit() && eval.last_send >= best_fitness;
  };
  const auto shrink_table = [&](auto ScheduleGenome::* table) {
    while ((best.*table).size() > 1) {
      ScheduleGenome cand = best;
      auto& t = cand.*table;
      t.resize((t.size() + 1) / 2);
      if (!at_least_as_fit(cand)) break;
      best = std::move(cand);
    }
  };
  shrink_table(&ScheduleGenome::delays);
  shrink_table(&ScheduleGenome::order_keys);
  shrink_table(&ScheduleGenome::t_gaps);
  shrink_table(&ScheduleGenome::r_gaps);
  {
    ScheduleGenome cand = best;
    std::fill(cand.order_keys.begin(), cand.order_keys.end(), std::uint64_t{0});
    if (at_least_as_fit(cand)) best = std::move(cand);
  }
  {
    ScheduleGenome cand = best;
    cand.t_first = Duration{0};
    cand.r_first = Duration{0};
    if (at_least_as_fit(cand)) best = std::move(cand);
  }
  return best;
}

[[nodiscard]] double cell_lower_bound(const AdversaryCell& cell) {
  const core::BoundsReport bounds = core::compute_bounds(cell.params, cell.k);
  return protocols::is_r_passive(cell.protocol) ? bounds.passive_lower : bounds.active_lower;
}

}  // namespace

channel::ScheduleGenome hand_equivalent_genome(const core::TimingParams& params) {
  ScheduleGenome g;
  g.delays = {params.d};
  g.order_keys = {0};
  g.t_first = Duration{0};
  g.r_first = Duration{0};
  g.t_gaps = {params.c2};
  g.r_gaps = {params.c2};
  return g;
}

GenomeEval evaluate_genome(const AdversaryCell& cell, std::uint64_t input_seed,
                           const channel::ScheduleGenome& genome, std::uint64_t max_events) {
  cell.params.validate();
  RSTP_CHECK_GE(cell.k, 2u, "adversary cell needs k >= 2");
  RSTP_CHECK_GE(cell.input_bits, 1u, "adversary cell needs at least one input bit");

  GenomeEval out;

  protocols::ProtocolConfig config;
  config.params = cell.params;
  config.k = cell.k;
  config.input = core::make_random_input(cell.input_bits, input_seed);
  if (cell.protocol == ProtocolKind::Indexed) {
    config.k = std::max<std::uint32_t>(
        config.k,
        static_cast<std::uint32_t>(2 * std::max<std::uint32_t>(1, cell.input_bits)));
  }

  protocols::ProtocolInstance instance;
  try {
    instance = protocols::make_protocol(cell.protocol, config);
  } catch (const ContractViolation&) {
    return out;  // cell outside the protocol's config domain
  }

  GenomeScheduler t_sched{genome.t_first, genome.t_gaps};
  GenomeScheduler r_sched{genome.r_first, genome.r_gaps};
  channel::Channel chan{cell.params.d, channel::make_synthesized(genome, cell.params)};

  std::unordered_set<std::uint64_t> seen;
  const protocols::TransmitterBase& t = *instance.transmitter;
  const protocols::ReceiverBase& r = *instance.receiver;

  SimConfig sim_config;
  sim_config.params = cell.params;
  sim_config.max_events = max_events;
  sim_config.record_trace = false;
  sim_config.observer = [&](const ioa::TimedEvent& e) {
    seen.insert(event_fingerprint(e, t, r));
  };

  RunResult run;
  try {
    Simulator simulator{*instance.transmitter, *instance.receiver, chan, t_sched, r_sched,
                        sim_config};
    run = simulator.run();
  } catch (const std::exception&) {
    // A legal genome crashing a paper protocol is the fuzzer's department;
    // here it simply scores as unfit.
    return out;
  }

  out.valid = true;
  out.correct = run.output == config.input;
  out.quiescent = run.quiescent;
  if (run.last_transmitter_send.has_value()) {
    out.last_send = run.last_transmitter_send->ticks();
    out.effort = static_cast<double>(out.last_send) / static_cast<double>(cell.input_bits);
  }
  out.end_time = run.end_time.ticks();
  out.output_hash = hash_bits(run.output);
  out.event_count = run.event_count;
  out.fingerprints.assign(seen.begin(), seen.end());
  std::sort(out.fingerprints.begin(), out.fingerprints.end());
  out.coverage_hash = hash_sorted(out.fingerprints);
  return out;
}

AdversaryResult run_adversary_search(const AdversarySpec& spec) {
  RSTP_CHECK(!spec.grid.empty(), "adversary search needs at least one cell");
  RSTP_CHECK_GE(spec.budget, std::uint64_t{1}, "adversary budget must be positive");

  AdversaryResult res;
  std::uint64_t result_hash = kFnvOffset;

  for (std::size_t cell_index = 0; cell_index < spec.grid.size(); ++cell_index) {
    const AdversaryCell& cell = spec.grid[cell_index];
    cell.params.validate();
    std::uint64_t state = spec.seed ^ (0xA0761D6478BD642FULL * (cell_index + 1));
    const std::uint64_t cell_seed = splitmix64(state);
    const std::uint64_t input_seed = splitmix64(state);

    AdversaryCellResult cr;
    cr.cell = cell;
    cr.input_seed = input_seed;
    cr.lower_bound = cell_lower_bound(cell);

    std::unordered_set<std::uint64_t> seen;
    std::vector<ScheduleGenome> corpus;
    ScheduleGenome best_genome = hand_equivalent_genome(cell.params);
    GenomeEval best;  // unfit until the generation-0 fold
    bool have_best = false;
    std::uint64_t stall = 0;
    const auto boost = [&]() { return std::min(stall, kMaxMutationBoost); };

    std::vector<ScheduleGenome> round = seed_genomes(cell.params);
    if (round.size() > spec.budget) round.resize(static_cast<std::size_t>(spec.budget));
    std::uint64_t planned = round.size();

    while (!round.empty()) {
      std::vector<GenomeEval> evals(round.size());
      parallel_for_slots(round.size(), spec.jobs, [&](std::size_t i) {
        evals[i] = evaluate_genome(cell, input_seed, round[i], spec.max_events);
      });

      // Serial fold in slot order: elite updates, coverage, and corpus
      // growth are independent of how workers interleaved. Generation 0
      // folds the hand genome first, so `best` starts at the hand floor.
      const std::size_t coverage_before = seen.size();
      for (std::size_t i = 0; i < round.size(); ++i) {
        ++cr.executed;
        const GenomeEval& eval = evals[i];
        bool fresh = false;
        for (const std::uint64_t fp : eval.fingerprints) {
          if (seen.insert(fp).second) fresh = true;
        }
        if (fresh) corpus.push_back(round[i]);
        if (eval.fit() && (!have_best || eval.last_send > best.last_send)) {
          best = eval;
          best_genome = round[i];
          have_best = true;
        }
      }
      if (seen.size() == coverage_before) {
        ++stall;
      } else {
        stall = 0;
      }

      if (planned >= spec.budget) break;

      // Next generation: fully determined by (cell_seed, planned index,
      // corpus + elite snapshot) before any parallel work — same discipline
      // as run_fuzz, so the result is bitwise identical for any jobs value.
      const std::size_t batch = static_cast<std::size_t>(
          std::min<std::uint64_t>(spec.budget - planned, kGenerationSize));
      round.clear();
      for (std::size_t b = 0; b < batch; ++b) {
        std::uint64_t gen_state = cell_seed ^ (0x9E3779B97F4A7C15ULL * (planned + b + 1));
        Rng rng{splitmix64(gen_state)};
        const bool from_corpus = !corpus.empty() && rng.next_bool();
        const ScheduleGenome& parent =
            from_corpus ? corpus[rng.next_below(corpus.size())] : best_genome;
        round.push_back(mutate_genome(parent, rng, cell.params, boost()));
      }
      planned += batch;
    }

    // The hand genome is generation 0's first fold, and paper protocols are
    // correct on all of good(A) — `best` can only be unfit if the event cap
    // truncated even the hand run (a misconfigured spec, surfaced below by
    // beats_hand() = false rather than by a throw).
    cr.hand_last_send = 0;
    {
      const GenomeEval hand =
          evaluate_genome(cell, input_seed, hand_equivalent_genome(cell.params), spec.max_events);
      cr.hand_last_send = hand.last_send;
      cr.hand_effort = hand.effort;
    }
    if (have_best) {
      best_genome =
          minimize_genome(cell, input_seed, best_genome, best.last_send, spec.max_events);
      best = evaluate_genome(cell, input_seed, best_genome, spec.max_events);
    }
    cr.best_genome = best_genome;
    cr.best = best;
    cr.gap_ratio = cr.lower_bound > 0 ? cr.best.effort / cr.lower_bound : 0;
    cr.coverage = seen.size();

    result_hash = fnv_mix(result_hash, static_cast<std::uint64_t>(cr.best.last_send));
    result_hash = fnv_mix(result_hash, cr.best.output_hash);
    result_hash = fnv_mix(result_hash, cr.best.event_count);
    result_hash = fnv_mix(result_hash, cr.best.coverage_hash);
    result_hash = fnv_mix(result_hash, static_cast<std::uint64_t>(cr.hand_last_send));
    result_hash = fnv_mix(result_hash, cr.executed);
    result_hash = fnv_mix(result_hash, cr.coverage);
    result_hash = hash_genome(result_hash, cr.best_genome);

    res.cells.push_back(std::move(cr));
    if (spec.on_cell) {
      AdversaryProgress progress;
      progress.cell_index = cell_index;
      progress.cell_count = spec.grid.size();
      spec.on_cell(progress);
    }
  }

  res.result_hash = result_hash;
  return res;
}

std::vector<AdversaryCell> golden_adversary_grid() {
  static constexpr struct {
    std::int64_t c1, c2, d;
  } kTimings[] = {{1, 2, 6}, {2, 3, 9}};
  static constexpr std::uint32_t kAlphabets[] = {2, 6};

  std::vector<AdversaryCell> grid;
  for (const ProtocolKind protocol : protocols::kPaperProtocolKinds) {
    for (const auto& t : kTimings) {
      for (const std::uint32_t k : kAlphabets) {
        AdversaryCell cell;
        cell.protocol = protocol;
        cell.params = core::TimingParams::make(t.c1, t.c2, t.d);
        cell.k = k;
        cell.input_bits = 24;
        grid.push_back(cell);
      }
    }
  }
  return grid;
}

std::vector<AdversaryCell> quick_adversary_grid() {
  std::vector<AdversaryCell> grid;
  for (const ProtocolKind protocol : protocols::kPaperProtocolKinds) {
    AdversaryCell cell;
    cell.protocol = protocol;
    cell.params = core::TimingParams::make(1, 2, 6);
    cell.k = 4;
    cell.input_bits = 16;
    grid.push_back(cell);
  }
  return grid;
}

std::vector<obs::RunMetricsRecord> adversary_metrics_records(const AdversaryResult& result,
                                                             std::uint64_t seed) {
  std::vector<obs::RunMetricsRecord> out;
  out.reserve(result.cells.size());
  for (const AdversaryCellResult& cr : result.cells) {
    obs::RunMetricsRecord record;
    record.protocol = std::string{protocols::to_string(cr.cell.protocol)};
    record.c1 = cr.cell.params.c1.ticks();
    record.c2 = cr.cell.params.c2.ticks();
    record.d = cr.cell.params.d.ticks();
    record.k = cr.cell.k;
    record.input_bits = cr.cell.input_bits;
    record.seed = seed;
    record.effort = cr.best.effort;
    record.gap_ratio = cr.gap_ratio;
    record.end_time = cr.best.end_time;
    record.correct = cr.best.correct;
    record.quiescent = cr.best.quiescent;
    out.push_back(std::move(record));
  }
  return out;
}

// ---------------------------------------------------------------------------
// `rstp-adversary-v1` serialization: same line grammar as the fuzz artifacts.

namespace {

constexpr std::string_view kAdversaryHeader = "rstp-adversary-v1";

[[noreturn]] void malformed(std::string_view what, std::string_view line) {
  std::ostringstream os;
  os << "malformed adversary file: " << what;
  if (!line.empty()) os << " in line '" << line << "'";
  throw ModelError(os.str());
}

template <typename T>
[[nodiscard]] T read_value(std::istringstream& is, std::string_view line) {
  T value{};
  if (!(is >> value)) malformed("missing or bad value", line);
  return value;
}

[[nodiscard]] std::string clean_line(const std::string& raw) {
  std::string line = raw;
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

void write_duration_table(std::ostream& os, std::string_view key,
                          const std::vector<Duration>& table) {
  os << key << ' ' << table.size();
  for (const Duration d : table) os << ' ' << d.ticks();
  os << '\n';
}

[[nodiscard]] std::vector<Duration> read_duration_table(std::istringstream& is,
                                                        std::string_view line) {
  const auto count = read_value<std::size_t>(is, line);
  if (count == 0 || count > 4096) malformed("table size out of range", line);
  std::vector<Duration> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Duration{read_value<std::int64_t>(is, line)});
  }
  return out;
}

}  // namespace

std::string_view adversary_repro_header() { return kAdversaryHeader; }

AdversaryRepro make_adversary_repro(const AdversaryCellResult& cell_result,
                                    std::uint64_t max_events) {
  AdversaryRepro repro;
  repro.cell = cell_result.cell;
  repro.input_seed = cell_result.input_seed;
  repro.max_events = max_events;
  repro.genome = cell_result.best_genome;
  repro.expect_last_send = cell_result.best.last_send;
  repro.expect_output_hash = cell_result.best.output_hash;
  repro.expect_events = cell_result.best.event_count;
  repro.expect_correct = cell_result.best.correct;
  repro.expect_quiescent = cell_result.best.quiescent;
  return repro;
}

void write_adversary_repro(std::ostream& os, const AdversaryRepro& repro) {
  os << kAdversaryHeader << '\n';
  os << "protocol " << protocols::to_string(repro.cell.protocol) << '\n';
  os << "params " << repro.cell.params.c1.ticks() << ' ' << repro.cell.params.c2.ticks() << ' '
     << repro.cell.params.d.ticks() << '\n';
  os << "k " << repro.cell.k << '\n';
  os << "input_bits " << repro.cell.input_bits << '\n';
  os << "input_seed " << repro.input_seed << '\n';
  os << "max_events " << repro.max_events << '\n';
  os << "t_first " << repro.genome.t_first.ticks() << '\n';
  os << "r_first " << repro.genome.r_first.ticks() << '\n';
  write_duration_table(os, "t_gaps", repro.genome.t_gaps);
  write_duration_table(os, "r_gaps", repro.genome.r_gaps);
  write_duration_table(os, "delays", repro.genome.delays);
  os << "order_keys " << repro.genome.order_keys.size();
  for (const std::uint64_t key : repro.genome.order_keys) os << ' ' << key;
  os << '\n';
  os << "expect_last_send " << repro.expect_last_send << '\n';
  os << "expect_output_hash " << repro.expect_output_hash << '\n';
  os << "expect_events " << repro.expect_events << '\n';
  os << "expect_correct " << (repro.expect_correct ? 1 : 0) << '\n';
  os << "expect_quiescent " << (repro.expect_quiescent ? 1 : 0) << '\n';
  os << "end\n";
}

AdversaryRepro parse_adversary_repro(std::istream& is) {
  std::string raw;
  bool saw_header = false;
  AdversaryRepro repro;
  while (std::getline(is, raw)) {
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kAdversaryHeader) malformed("expected header", line);
      saw_header = true;
      continue;
    }
    if (line == "end") {
      // The genome must be legal for the declared params — an artifact that
      // smuggles an out-of-model schedule is rejected here, not at run time.
      channel::validate_genome(repro.genome, repro.cell.params);
      return repro;
    }
    std::istringstream tokens{line};
    std::string key;
    tokens >> key;
    if (key == "protocol") {
      std::string name;
      if (!(tokens >> name)) malformed("missing protocol name", line);
      const auto kind = protocol_from_string(name);
      if (!kind.has_value()) malformed("unknown protocol", line);
      repro.cell.protocol = *kind;
    } else if (key == "params") {
      const auto c1 = read_value<std::int64_t>(tokens, line);
      const auto c2 = read_value<std::int64_t>(tokens, line);
      const auto d = read_value<std::int64_t>(tokens, line);
      if (c1 < 1 || c2 < c1 || d < c2) malformed("params must satisfy 0 < c1 <= c2 <= d", line);
      repro.cell.params = core::TimingParams::make(c1, c2, d);
    } else if (key == "k") {
      repro.cell.k = read_value<std::uint32_t>(tokens, line);
    } else if (key == "input_bits") {
      repro.cell.input_bits = read_value<std::uint32_t>(tokens, line);
      if (repro.cell.input_bits == 0) malformed("input_bits must be positive", line);
    } else if (key == "input_seed") {
      repro.input_seed = read_value<std::uint64_t>(tokens, line);
    } else if (key == "max_events") {
      repro.max_events = read_value<std::uint64_t>(tokens, line);
      if (repro.max_events == 0) malformed("max_events must be positive", line);
    } else if (key == "t_first") {
      repro.genome.t_first = Duration{read_value<std::int64_t>(tokens, line)};
    } else if (key == "r_first") {
      repro.genome.r_first = Duration{read_value<std::int64_t>(tokens, line)};
    } else if (key == "t_gaps") {
      repro.genome.t_gaps = read_duration_table(tokens, line);
    } else if (key == "r_gaps") {
      repro.genome.r_gaps = read_duration_table(tokens, line);
    } else if (key == "delays") {
      repro.genome.delays = read_duration_table(tokens, line);
    } else if (key == "order_keys") {
      const auto count = read_value<std::size_t>(tokens, line);
      if (count == 0 || count > 4096) malformed("table size out of range", line);
      repro.genome.order_keys.clear();
      for (std::size_t i = 0; i < count; ++i) {
        repro.genome.order_keys.push_back(read_value<std::uint64_t>(tokens, line));
      }
    } else if (key == "expect_last_send") {
      repro.expect_last_send = read_value<std::int64_t>(tokens, line);
    } else if (key == "expect_output_hash") {
      repro.expect_output_hash = read_value<std::uint64_t>(tokens, line);
    } else if (key == "expect_events") {
      repro.expect_events = read_value<std::uint64_t>(tokens, line);
    } else if (key == "expect_correct") {
      repro.expect_correct = read_value<std::uint32_t>(tokens, line) != 0;
    } else if (key == "expect_quiescent") {
      repro.expect_quiescent = read_value<std::uint32_t>(tokens, line) != 0;
    } else {
      malformed("unknown key", line);
    }
  }
  malformed(saw_header ? "missing 'end'" : "empty document", "");
}

AdversaryReplayOutcome replay_adversary_repro(const AdversaryRepro& repro) {
  AdversaryReplayOutcome outcome;
  outcome.eval = evaluate_genome(repro.cell, repro.input_seed, repro.genome, repro.max_events);

  const auto mismatch = [&](std::string_view field, auto got_v, auto want_v) {
    std::ostringstream os;
    os << field << ": got " << got_v << ", recorded " << want_v;
    outcome.mismatch = os.str();
  };
  if (outcome.eval.last_send != repro.expect_last_send) {
    mismatch("last_send", outcome.eval.last_send, repro.expect_last_send);
  } else if (outcome.eval.output_hash != repro.expect_output_hash) {
    mismatch("output_hash", outcome.eval.output_hash, repro.expect_output_hash);
  } else if (outcome.eval.event_count != repro.expect_events) {
    mismatch("event_count", outcome.eval.event_count, repro.expect_events);
  } else if (outcome.eval.correct != repro.expect_correct) {
    mismatch("correct", outcome.eval.correct, repro.expect_correct);
  } else if (outcome.eval.quiescent != repro.expect_quiescent) {
    mismatch("quiescent", outcome.eval.quiescent, repro.expect_quiescent);
  } else {
    outcome.reproduced = true;
  }
  return outcome;
}

}  // namespace rstp::sim
