#include "rstp/sim/simulator.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "rstp/common/check.h"
#include "rstp/est/estimator.h"
#include "rstp/obs/metrics.h"
#include "rstp/obs/trace.h"

namespace rstp::sim {

namespace {

using ioa::Action;
using ioa::ActionKind;
using ioa::Actor;
using ioa::ProcessId;

[[nodiscard]] std::size_t index_of(ProcessId id) { return static_cast<std::size_t>(id); }

}  // namespace

Simulator::Simulator(ioa::Automaton& transmitter, ioa::Automaton& receiver,
                     channel::Channel& chan, StepScheduler& transmitter_sched,
                     StepScheduler& receiver_sched, SimConfig config)
    : channel_(&chan), config_(config) {
  config_.params.validate();
  if (config_.transmitter_params.has_value()) config_.transmitter_params->validate();
  if (config_.receiver_params.has_value()) config_.receiver_params->validate();
  RSTP_CHECK(chan.empty(), "simulator requires an initially empty channel");
  RSTP_CHECK_EQ(chan.max_delay().ticks(), config_.params.d.ticks(),
                "channel delay bound must equal the model's d");
  procs_[index_of(ProcessId::Transmitter)] = ProcessState{&transmitter, &transmitter_sched};
  procs_[index_of(ProcessId::Receiver)] = ProcessState{&receiver, &receiver_sched};
  record_events_ = config_.record_trace || static_cast<bool>(config_.observer);
  for (const ProcessId id : {ProcessId::Transmitter, ProcessId::Receiver}) {
    counter_sources_[index_of(id)] =
        dynamic_cast<const obs::CounterSource*>(procs_[index_of(id)].automaton);
  }
}

const obs::ProtocolCounters* Simulator::counters_of(ProcessId id) const {
  const obs::CounterSource* source = counter_sources_[index_of(id)];
  return source != nullptr ? &source->protocol_counters() : nullptr;
}

const core::TimingParams& Simulator::params_for(ProcessId id) const {
  if (id == ProcessId::Transmitter && config_.transmitter_params.has_value()) {
    return *config_.transmitter_params;
  }
  if (id == ProcessId::Receiver && config_.receiver_params.has_value()) {
    return *config_.receiver_params;
  }
  return config_.params;
}

Duration Simulator::validated_gap(ProcessId id, StepScheduler& sched,
                                  std::uint64_t step_index) const {
  // Nested under SimStep (per-step gaps) or Deliver (stop/resume gaps); the
  // two initial offsets at run() start are the only top-level instances.
  const obs::ScopedPhaseTimer timer{obs::Phase::SchedGap};
  const core::TimingParams& params = params_for(id);
  if (step_index == 0) {
    const Duration first = sched.first_offset();
    if (first.is_negative() || first > params.c2) {
      std::ostringstream os;
      os << "scheduler first offset " << first << " outside [0, c2=" << params.c2 << "]";
      throw ModelError(os.str());
    }
    return first;
  }
  const Duration gap = sched.next_gap(step_index);
  if (gap < params.c1 || gap > params.c2) {
    std::ostringstream os;
    os << "scheduler gap " << gap << " outside [c1=" << params.c1 << ", c2=" << params.c2 << "]";
    throw ModelError(os.str());
  }
  return gap;
}

void Simulator::record(RunResult& result, Time time, Actor actor, const Action& action) {
  const obs::ScopedPhaseTimer timer{obs::Phase::RecordEvent};
  ++result.event_count;
  ++result.metrics.counters.events;
  result.end_time = time;
  if (action.kind == ActionKind::Write) {
    result.output.push_back(action.message);
    ++result.metrics.counters.writes;
  }
  // record_events_ caches `record_trace || observer` so the common headless
  // configuration (campaign/effort runs) skips the TimedEvent construction
  // and the std::function emptiness test entirely.
  if (record_events_) {
    const ioa::TimedEvent event{time, actor, action, next_seq_};
    if (config_.record_trace) {
      result.trace.append(event);
    }
    if (config_.observer) {
      config_.observer(event);
    }
  }
  ++next_seq_;
}

void Simulator::deliver_due(RunResult& result, Time now) {
  const obs::ScopedPhaseTimer timer{obs::Phase::Deliver};
  for (const channel::InFlightPacket& flight : channel_->collect_due(now)) {
    ioa::Automaton& dest = *procs_[index_of(flight.packet.destination())].automaton;
    const Action recv = Action::recv(flight.packet);
    RSTP_CHECK(dest.accepts_input(recv), "delivered packet not an input of its destination");
    {
      const obs::ScopedPhaseTimer recv_timer{obs::Phase::ProtoRecv};
      dest.apply(recv);
    }
    // The channel knows both endpoints of every flight, so delivery delay is
    // measured exactly — no post-hoc trace matching involved.
    const Duration delay = flight.deliver_at - flight.sent_at;
    if (config_.estimator != nullptr) {
      config_.estimator->observe_delay(delay);
    }
    {
      const obs::ScopedPhaseTimer account_timer{obs::Phase::StepAccount};
      if (flight.packet.destination() == ProcessId::Receiver) {
        ++result.metrics.counters.data_recvs;
        result.metrics.data_delay.record(delay.ticks());
      } else {
        ++result.metrics.counters.ack_recvs;
        result.metrics.ack_delay.record(delay.ticks());
      }
    }
    record(result, flight.deliver_at, Actor::Channel, recv);
    if (config_.tracer != nullptr) {
      config_.tracer->on_delivery(flight.packet.destination(), flight.sent_at,
                                  flight.deliver_at, flight.packet, flight.send_seq,
                                  counters_of(flight.packet.destination()));
    }
    // A stopped process can be re-enabled by input; let it resume stepping.
    ProcessState& ps = procs_[index_of(flight.packet.destination())];
    if (ps.stopped) {
      std::optional<Action> resume;
      {
        const obs::ScopedPhaseTimer enabled_timer{obs::Phase::ProtoEnabled};
        resume = ps.automaton->enabled_local();
      }
      if (resume.has_value()) {
        ps.stopped = false;
        ps.next_step = flight.deliver_at + validated_gap(flight.packet.destination(),
                                                         *ps.scheduler, ps.steps_taken + 1);
      }
    }
  }
}

void Simulator::take_process_step(RunResult& result, ProcessState& ps, ProcessId id) {
  const obs::ScopedPhaseTimer timer{obs::Phase::SimStep};
  std::optional<Action> action;
  {
    const obs::ScopedPhaseTimer enabled_timer{obs::Phase::ProtoEnabled};
    action = ps.automaton->enabled_local();
  }
  if (!action.has_value()) {
    ps.stopped = true;
    return;
  }
  obs::RunCounters& counters = result.metrics.counters;
  {
    const obs::ScopedPhaseTimer apply_timer{obs::Phase::ProtoApply};
    ps.automaton->apply(*action);
  }
  if (config_.estimator != nullptr && ps.steps_taken > 0) {
    config_.estimator->observe_gap(ps.next_step - ps.last_step_time);
  }
  {
    const obs::ScopedPhaseTimer account_timer{obs::Phase::StepAccount};
    if (id == ProcessId::Transmitter) {
      ++result.transmitter_steps;
      ++counters.transmitter_steps;
      if (action->kind == ActionKind::Internal) ++counters.transmitter_internal_steps;
      if (ps.steps_taken > 0) {
        result.metrics.transmitter_gap.record((ps.next_step - ps.last_step_time).ticks());
      }
    } else {
      ++result.receiver_steps;
      ++counters.receiver_steps;
      if (action->kind == ActionKind::Internal) ++counters.receiver_internal_steps;
      if (ps.steps_taken > 0) {
        result.metrics.receiver_gap.record((ps.next_step - ps.last_step_time).ticks());
      }
    }
    ps.last_step_time = ps.next_step;
    ++ps.steps_taken;
  }
  record(result, ps.next_step, ioa::actor_of(id), *action);
  if (config_.tracer != nullptr) {
    config_.tracer->on_local_step(id, ps.next_step, *action, counters_of(id));
  }

  if (action->kind == ActionKind::Send) {
    bool drop = false;
    {
      const obs::ScopedPhaseTimer account_timer{obs::Phase::StepAccount};
      RSTP_CHECK_EQ(static_cast<int>(action->packet.source()), static_cast<int>(id),
                    "automaton sent a packet with the wrong direction tag");
      if (id == ProcessId::Transmitter) {
        ++result.transmitter_sends;
        ++counters.data_sends;
        result.last_transmitter_send = ps.next_step;
      } else {
        ++result.receiver_sends;
        ++counters.ack_sends;
      }
      const std::uint64_t send_count = result.transmitter_sends + result.receiver_sends;
      drop = config_.drop_every_nth != 0 && send_count % config_.drop_every_nth == 0;
      if (drop) {
        ++result.dropped_packets;  // fault injection: packet lost outside the model
        ++counters.dropped;
      }
    }
    if (config_.tracer != nullptr) {
      // total_sent() is the seq the channel will assign to this send; drops
      // from drop_every_nth never reach the channel, so they carry no flow.
      config_.tracer->on_send(id, ps.next_step, action->packet, channel_->total_sent(), !drop);
    }
    if (!drop) {
      const obs::ScopedPhaseTimer push_timer{obs::Phase::ChannelPush};
      channel_->send(action->packet, ps.next_step);
    }
  }
  ps.next_step = ps.next_step + validated_gap(id, *ps.scheduler, ps.steps_taken);
}

void Simulator::start() {
  RSTP_CHECK(!ran_, "Simulator::start/run may be called once");
  ran_ = true;

  // Histogram windows come from the model: delivery delays live in [0, d],
  // realized step gaps in [c1, c2] (a stop/resume gap clamps into the top
  // bucket; min()/max() keep the true extremes).
  const std::int64_t d = config_.params.d.ticks();
  result_.metrics.data_delay = obs::Histogram(0, d);
  result_.metrics.ack_delay = obs::Histogram(0, d);
  result_.metrics.transmitter_gap =
      obs::Histogram(0, params_for(ProcessId::Transmitter).c2.ticks());
  result_.metrics.receiver_gap = obs::Histogram(0, params_for(ProcessId::Receiver).c2.ticks());
  if (config_.record_trace) {
    // Executions are usually far longer than this; one up-front chunk keeps
    // the first reallocation doublings off the hot path without committing
    // max_events worth of memory.
    result_.trace.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(config_.max_events,
                                                                           4096)));
  }
  ProcessState& t = procs_[index_of(ProcessId::Transmitter)];
  ProcessState& r = procs_[index_of(ProcessId::Receiver)];
  t.next_step = Time::zero() + validated_gap(ProcessId::Transmitter, *t.scheduler, 0);
  r.next_step = Time::zero() + validated_gap(ProcessId::Receiver, *r.scheduler, 0);
}

bool Simulator::finished() const {
  if (result_.event_count >= config_.max_events) return true;
  // Global quiescence: nothing in flight and both processes have nothing
  // (non-trivial) left to do.
  const ProcessState& t = procs_[index_of(ProcessId::Transmitter)];
  const ProcessState& r = procs_[index_of(ProcessId::Receiver)];
  const bool t_idle = t.stopped || t.automaton->quiescent();
  const bool r_idle = r.stopped || r.automaton->quiescent();
  return channel_->empty() && t_idle && r_idle;
}

std::optional<Time> Simulator::next_instant() {
  RSTP_CHECK(ran_, "next_instant requires start()");
  // Cached between calls so the run() loop (and a heap-driven MultiSession,
  // which reads the instant once to key its heap and again in advance())
  // pays one quiescence check + min fold per dispatch, like the original
  // monolithic loop. advance() invalidates it.
  if (!instant_valid_) {
    instant_ = compute_next_instant();
    instant_valid_ = true;
  }
  return instant_;
}

std::optional<Time> Simulator::compute_next_instant() const {
  if (finished()) return std::nullopt;
  // Earliest pending instant among deliveries and process steps; at equal
  // times deliveries go first, then the transmitter, then the receiver.
  const ProcessState& t = procs_[index_of(ProcessId::Transmitter)];
  const ProcessState& r = procs_[index_of(ProcessId::Receiver)];
  const std::optional<Time> delivery = channel_->next_delivery_time();
  Time now = Time::max();
  if (delivery.has_value()) now = std::min(now, *delivery);
  if (!t.stopped) now = std::min(now, t.next_step);
  if (!r.stopped) now = std::min(now, r.next_step);
  RSTP_CHECK(now != Time::max(), "no pending events but not quiescent");
  return now;
}

void Simulator::advance() {
  const std::optional<Time> instant = next_instant();
  RSTP_CHECK(instant.has_value(), "advance() past the end of the run");
  instant_valid_ = false;
  const Time now = *instant;
  ProcessState& t = procs_[index_of(ProcessId::Transmitter)];
  ProcessState& r = procs_[index_of(ProcessId::Receiver)];
  const std::optional<Time> delivery = channel_->next_delivery_time();
  if (delivery.has_value() && *delivery <= now) {
    deliver_due(result_, now);
    return;
  }
  if (!t.stopped && t.next_step <= now) {
    take_process_step(result_, t, ProcessId::Transmitter);
    return;
  }
  if (!r.stopped && r.next_step <= now) {
    take_process_step(result_, r, ProcessId::Receiver);
    return;
  }
  RSTP_UNREACHABLE("event selection failed");
}

RunResult Simulator::take_result() {
  RSTP_CHECK(ran_ && !taken_, "take_result requires a finished, untaken run");
  RSTP_CHECK(finished(), "take_result before the run is over");
  taken_ = true;
  // The loop in run() exits via the cap check before the quiescence check,
  // so a run that hits the cap reports quiescent=false even if the final
  // dispatch happened to reach quiescence too.
  result_.quiescent = result_.event_count < config_.max_events;
  // Fold in the automata's own counters (the ProtocolBase stat-hook).
  // Automata outside the protocol hierarchy simply contribute nothing.
  for (const ProcessState& ps : procs_) {
    if (const auto* source = dynamic_cast<const obs::CounterSource*>(ps.automaton)) {
      result_.metrics.counters.protocol += source->protocol_counters();
    }
  }
  // Channel-level injected faults (empty without an injector). Drops count
  // into the same loss counters as drop_every_nth — both are packets the
  // automaton sent that never entered flight.
  result_.faults = channel_->fault_log();
  for (const fault::FaultEvent& f : result_.faults) {
    if (f.kind == fault::FaultKind::Drop) {
      ++result_.dropped_packets;
      ++result_.metrics.counters.dropped;
    }
  }
  if (config_.tracer != nullptr) {
    config_.tracer->on_finish(result_.end_time, result_.faults);
  }
  return std::move(result_);
}

RunResult Simulator::run() {
  start();
  while (next_instant().has_value()) {
    advance();
  }
  return take_result();
}

}  // namespace rstp::sim
