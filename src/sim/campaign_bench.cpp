#include "rstp/sim/campaign_bench.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>

#include "rstp/combinatorics/multiset_codec.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::sim {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_ms(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

/// Times `op(i)` over `iterations` calls, in nanoseconds per call. Takes the
/// minimum over a few repetitions: scheduler preemptions only ever inflate a
/// wall-clock sample, so the min is the robust estimator on a busy machine.
template <typename Op>
[[nodiscard]] double time_ns_per_call(std::size_t iterations, Op&& op) {
  double best = 0;
  for (int rep = 0; rep < 4; ++rep) {
    const Clock::time_point begin = Clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      op(i);
    }
    const Clock::time_point end = Clock::now();
    const double ns = std::chrono::duration<double, std::nano>(end - begin).count() /
                      static_cast<double>(iterations);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

[[nodiscard]] CodecTiming time_codec(std::uint32_t k, std::uint32_t n,
                                     std::size_t iterations) {
  const combinatorics::MultisetCodec codec{k, n};
  Rng rng{0xBE7C0DEC};
  constexpr std::size_t kPool = 64;
  std::vector<combinatorics::Multiset> multisets;
  std::vector<bigint::BigUint> ranks;
  for (std::size_t i = 0; i < kPool; ++i) {
    combinatorics::Multiset m{k};
    for (std::uint32_t j = 0; j < n; ++j) {
      m.add(static_cast<combinatorics::Symbol>(rng.next_below(k)));
    }
    ranks.push_back(codec.rank(m));
    multisets.push_back(std::move(m));
  }

  CodecTiming timing;
  timing.k = k;
  timing.n = n;
  // Volatile sink so the optimizer cannot drop the codec calls.
  volatile std::size_t sink = 0;
  timing.rank_ns = time_ns_per_call(iterations, [&](std::size_t i) {
    sink = sink + codec.rank(multisets[i % kPool]).bit_length();
  });
  timing.rank_reference_ns = time_ns_per_call(iterations, [&](std::size_t i) {
    sink = sink + codec.rank_reference(multisets[i % kPool]).bit_length();
  });
  timing.unrank_ns = time_ns_per_call(iterations, [&](std::size_t i) {
    sink = sink + codec.unrank(ranks[i % kPool]).size();
  });
  timing.unrank_reference_ns = time_ns_per_call(iterations, [&](std::size_t i) {
    sink = sink + codec.unrank_reference(ranks[i % kPool]).size();
  });
  return timing;
}

}  // namespace

CampaignSpec reference_campaign_spec() {
  CampaignSpec spec;
  spec.protocols = {protocols::ProtocolKind::Alpha, protocols::ProtocolKind::Beta,
                    protocols::ProtocolKind::Gamma, protocols::ProtocolKind::AltBit};
  spec.timings = {core::TimingParams::make(1, 1, 4), core::TimingParams::make(1, 2, 8)};
  spec.alphabets = {4, 16};
  spec.environments = {core::Environment::worst_case(), core::Environment::randomized(1)};
  spec.seeds_per_cell = 2;
  // Heavy enough that each job is hundreds of microseconds of simulation —
  // thread-pool overhead must be amortizable for the speedup stages to mean
  // anything — while keeping the whole bench comfortably under a second.
  spec.input_bits = 256;
  spec.campaign_seed = 0xCA3BA167;
  return spec;
}

CampaignSpec golden_campaign_spec() {
  CampaignSpec spec;
  spec.protocols = {protocols::ProtocolKind::Alpha, protocols::ProtocolKind::Beta,
                    protocols::ProtocolKind::Gamma, protocols::ProtocolKind::AltBit};
  spec.timings = {core::TimingParams::make(1, 2, 6), core::TimingParams::make(2, 3, 9)};
  spec.alphabets = {4, 8};
  spec.environments = {core::Environment::worst_case(), core::Environment::randomized(1)};
  spec.seeds_per_cell = 1;
  // Small on purpose: the gate reruns this grid on every CI pass, so it must
  // stay a fraction of a second while still covering every protocol, a
  // deterministic and a randomized environment, and two timing points.
  spec.input_bits = 64;
  spec.campaign_seed = 0x601DE2;
  return spec;
}

CampaignBenchReport run_campaign_bench(const CampaignBenchOptions& options) {
  RSTP_CHECK(!options.thread_counts.empty(), "bench needs at least one thread count");
  const Campaign campaign{reference_campaign_spec()};

  CampaignBenchReport report;
  report.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  report.jobs = campaign.job_count();

  // The serial run is the reference both for timing (speedup) and for the
  // bitwise determinism check. Run it once up front, untimed, to warm the
  // interned codec tables so no stage pays one-time setup. Progress lines
  // (when requested) attach here only, keeping the timed stages clean.
  report.serial_result = campaign.run(1, options.progress);
  const CampaignResult& warmup = report.serial_result;
  report.incorrect_jobs = warmup.incorrect;

  double serial_wall_ms = 0;
  report.deterministic = true;
  for (const unsigned requested : options.thread_counts) {
    const unsigned threads =
        requested == 0 ? std::max(1u, std::thread::hardware_concurrency()) : requested;
    const Clock::time_point begin = Clock::now();
    const CampaignResult result = campaign.run(threads);
    const Clock::time_point end = Clock::now();

    CampaignStage stage;
    stage.threads = threads;
    stage.wall_ms = elapsed_ms(begin, end);
    if (stage.wall_ms > 0) {
      stage.jobs_per_sec = static_cast<double>(report.jobs) / (stage.wall_ms / 1000.0);
    }
    stage.identical_to_serial = result == warmup;
    report.deterministic = report.deterministic && stage.identical_to_serial;
    if (serial_wall_ms == 0 && threads == 1) {
      serial_wall_ms = stage.wall_ms;
    }
    stage.speedup_vs_serial = serial_wall_ms > 0 && stage.wall_ms > 0
                                  ? serial_wall_ms / stage.wall_ms
                                  : 1.0;
    report.stages.push_back(stage);
  }

  for (const auto& [k, n] : options.codec_points) {
    report.codec.push_back(time_codec(k, n, options.codec_iterations));
  }
  return report;
}

void write_campaign_bench_json(std::ostream& os, const CampaignBenchReport& report) {
  const auto bool_str = [](bool b) { return b ? "true" : "false"; };
  os << "{\n";
  os << "  \"schema\": \"rstp-bench-campaign-v1\",\n";
  os << "  \"hardware_threads\": " << report.hardware_threads << ",\n";
  os << "  \"jobs\": " << report.jobs << ",\n";
  os << "  \"incorrect_jobs\": " << report.incorrect_jobs << ",\n";
  os << "  \"deterministic\": " << bool_str(report.deterministic) << ",\n";
  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const CampaignStage& s = report.stages[i];
    os << "    {\"threads\": " << s.threads << ", \"wall_ms\": " << s.wall_ms
       << ", \"jobs_per_sec\": " << s.jobs_per_sec
       << ", \"speedup_vs_serial\": " << s.speedup_vs_serial
       << ", \"identical_to_serial\": " << bool_str(s.identical_to_serial) << "}"
       << (i + 1 < report.stages.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"codec\": [\n";
  for (std::size_t i = 0; i < report.codec.size(); ++i) {
    const CodecTiming& c = report.codec[i];
    os << "    {\"k\": " << c.k << ", \"n\": " << c.n << ", \"rank_ns\": " << c.rank_ns
       << ", \"unrank_ns\": " << c.unrank_ns
       << ", \"rank_reference_ns\": " << c.rank_reference_ns
       << ", \"unrank_reference_ns\": " << c.unrank_reference_ns
       << ", \"table_beats_reference\": " << bool_str(c.table_beats_reference()) << "}"
       << (i + 1 < report.codec.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"ok\": " << bool_str(report.ok()) << "\n";
  os << "}\n";
}

void print_campaign_bench(std::ostream& os, const CampaignBenchReport& report) {
  os << "reference campaign: " << report.jobs << " jobs, hardware threads "
     << report.hardware_threads << "\n";
  os << "threads  wall_ms  jobs/sec  speedup  identical\n";
  for (const CampaignStage& s : report.stages) {
    os << "  " << s.threads << "  " << s.wall_ms << "  " << s.jobs_per_sec << "  "
       << s.speedup_vs_serial << "  " << (s.identical_to_serial ? "yes" : "NO") << "\n";
  }
  for (const CodecTiming& c : report.codec) {
    os << "codec k=" << c.k << " n=" << c.n << ": rank " << c.rank_ns << " ns (ref "
       << c.rank_reference_ns << "), unrank " << c.unrank_ns << " ns (ref "
       << c.unrank_reference_ns << ") — table "
       << (c.table_beats_reference() ? "beats" : "DOES NOT BEAT") << " reference\n";
  }
  os << "incorrect jobs: " << report.incorrect_jobs << ", deterministic: "
     << (report.deterministic ? "yes" : "NO") << "\n";
}

}  // namespace rstp::sim
