#include "rstp/core/effort.h"

#include <algorithm>
#include <cmath>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::core {

Environment Environment::worst_case() { return Environment{}; }

Environment Environment::adversarial_fast() {
  Environment env;
  env.transmitter_sched = Sched::FastFixed;
  env.receiver_sched = Sched::FastFixed;
  env.delay = Delay::Adversarial;
  return env;
}

Environment Environment::randomized(std::uint64_t seed) {
  Environment env;
  env.transmitter_sched = Sched::Random;
  env.receiver_sched = Sched::Random;
  env.delay = Delay::Random;
  env.seed = seed;
  return env;
}

std::unique_ptr<sim::StepScheduler> make_scheduler(Environment::Sched kind,
                                                   const TimingParams& params,
                                                   std::uint64_t seed) {
  switch (kind) {
    case Environment::Sched::SlowFixed:
      return sim::make_fixed_rate(params.c2);
    case Environment::Sched::FastFixed:
      return sim::make_fixed_rate(params.c1);
    case Environment::Sched::Random:
      return sim::make_seeded_random(seed, params);
    case Environment::Sched::Sawtooth:
      return sim::make_sawtooth(params);
  }
  RSTP_UNREACHABLE("unknown scheduler kind");
}

std::unique_ptr<channel::DeliveryPolicy> make_delivery_policy(Environment::Delay kind,
                                                              const TimingParams& params,
                                                              std::uint64_t seed) {
  switch (kind) {
    case Environment::Delay::Max:
      return channel::make_max_delay();
    case Environment::Delay::Zero:
      return channel::make_zero_delay();
    case Environment::Delay::Random:
      return channel::make_uniform_random(seed, Duration{0}, params.d, params.d);
    case Environment::Delay::Adversarial: {
      // The Lemma 5.1 grouping of δ1 steps: ⌊d/c1⌋·c1 ≤ d is the largest
      // legal batching window aligned to the fastest step rate.
      const Duration window = params.c1 * params.delta1();
      return channel::make_adversarial_batch(window, params.d);
    }
  }
  RSTP_UNREACHABLE("unknown delay kind");
}

ProtocolRun run_protocol(protocols::ProtocolKind kind, const protocols::ProtocolConfig& config,
                         const Environment& env, bool record_trace, std::uint64_t max_events,
                         obs::trace::ModelRecorder* tracer) {
  protocols::ProtocolInstance instance = protocols::make_protocol(kind, config);

  Rng seeder{env.seed};
  auto t_sched = make_scheduler(env.transmitter_sched, config.params, seeder.next_u64());
  auto r_sched = make_scheduler(env.receiver_sched, config.params, seeder.next_u64());
  channel::Channel chan{config.params.d,
                        make_delivery_policy(env.delay, config.params, seeder.next_u64())};

  sim::SimConfig sim_config;
  sim_config.params = config.params;
  sim_config.record_trace = record_trace;
  sim_config.max_events = max_events;
  sim_config.tracer = tracer;

  sim::Simulator simulator{*instance.transmitter, *instance.receiver, chan, *t_sched, *r_sched,
                           sim_config};
  ProtocolRun run;
  run.result = simulator.run();
  run.output_correct = run.result.output == config.input;
  return run;
}

EffortMeasurement measure_effort(protocols::ProtocolKind kind, const TimingParams& params,
                                 std::uint32_t k, std::size_t n, const Environment& env,
                                 std::uint64_t input_seed) {
  protocols::ProtocolConfig config;
  config.params = params;
  config.k = k;
  config.input = make_random_input(n, input_seed);

  const ProtocolRun run = run_protocol(kind, config, env, /*record_trace=*/false);

  EffortMeasurement m;
  m.n = n;
  m.last_send = run.result.last_transmitter_send;
  m.output_correct = run.output_correct;
  m.quiescent = run.result.quiescent;
  m.transmitter_sends = run.result.transmitter_sends;
  if (n > 0 && m.last_send.has_value()) {
    m.effort = static_cast<double>((*m.last_send - Time::zero()).ticks()) /
               static_cast<double>(n);
  }
  return m;
}

EffortDistribution measure_effort_distribution(protocols::ProtocolKind kind,
                                               const TimingParams& params, std::uint32_t k,
                                               std::size_t n, std::size_t samples,
                                               std::uint64_t seed) {
  RSTP_CHECK_GE(samples, std::size_t{1}, "need at least one sample");
  RSTP_CHECK_GE(n, std::size_t{1}, "need a non-empty input");
  Rng rng{seed};
  // One input shared by every sample (built once, not per sample).
  protocols::ProtocolConfig config;
  config.params = params;
  config.k = k;
  config.input = make_random_input(n, rng.next_u64());

  std::vector<double> efforts;
  efforts.reserve(samples);
  bool all_correct = true;
  for (std::size_t i = 0; i < samples; ++i) {
    const ProtocolRun run = run_protocol(kind, config, Environment::randomized(rng.next_u64()),
                                         /*record_trace=*/false);
    all_correct = all_correct && run.output_correct && run.result.quiescent;
    double effort = 0;
    if (run.result.last_transmitter_send.has_value()) {
      effort = static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks()) /
               static_cast<double>(n);
    }
    efforts.push_back(effort);
  }
  std::sort(efforts.begin(), efforts.end());

  EffortDistribution dist;
  dist.samples = samples;
  dist.all_correct = all_correct;
  dist.min = efforts.front();
  dist.max = efforts.back();
  double sum = 0;
  for (const double e : efforts) sum += e;
  dist.mean = sum / static_cast<double>(samples);
  // Nearest-rank percentile: the ⌈0.95·N⌉-th smallest (1-based).
  const auto rank_1based =
      static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(samples)));
  dist.p95 = efforts[std::min(samples, std::max<std::size_t>(1, rank_1based)) - 1];
  return dist;
}

std::vector<ioa::Bit> make_random_input(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<ioa::Bit> bits(n);
  for (auto& b : bits) {
    b = rng.next_bool() ? 1 : 0;
  }
  return bits;
}

std::vector<ioa::Bit> make_alternating_input(std::size_t n) {
  std::vector<ioa::Bit> bits(n);
  for (std::size_t i = 0; i < n; ++i) {
    bits[i] = static_cast<ioa::Bit>(i & 1);
  }
  return bits;
}

std::vector<ioa::Bit> make_constant_input(std::size_t n, ioa::Bit value) {
  RSTP_CHECK(value == 0 || value == 1, "bit value");
  return std::vector<ioa::Bit>(n, value);
}

}  // namespace rstp::core
