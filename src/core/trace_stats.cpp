#include "rstp/core/trace_stats.h"

#include <deque>
#include <map>
#include <ostream>
#include <vector>

#include "rstp/obs/metrics.h"

namespace rstp::core {

namespace {

using ioa::ActionKind;
using ioa::Actor;
using ioa::TimedEvent;

void accumulate_gap(GapStats& stats, std::optional<Time>& last, double& gap_sum, Time now) {
  ++stats.steps;
  if (last.has_value()) {
    const Duration gap = now - *last;
    gap_sum += static_cast<double>(gap.ticks());
    if (!stats.min_gap.has_value() || gap < *stats.min_gap) stats.min_gap = gap;
    if (!stats.max_gap.has_value() || gap > *stats.max_gap) stats.max_gap = gap;
  }
  last = now;
}

void accumulate_delay(DelayStats& stats, double& delay_sum, Duration delay) {
  ++stats.delivered;
  delay_sum += static_cast<double>(delay.ticks());
  if (!stats.min_delay.has_value() || delay < *stats.min_delay) stats.min_delay = delay;
  if (!stats.max_delay.has_value() || delay > *stats.max_delay) stats.max_delay = delay;
}

void print_gaps(std::ostream& os, const char* who, const GapStats& g) {
  os << "  " << who << ": " << g.steps << " steps";
  if (g.min_gap.has_value()) {
    os << ", gaps [" << *g.min_gap << ", " << *g.max_gap << "], mean " << g.mean_gap;
  }
  os << '\n';
}

void print_delays(std::ostream& os, const char* what, const DelayStats& d) {
  os << "  " << what << ": " << d.delivered << " delivered";
  if (d.unmatched_sends != 0) os << " (" << d.unmatched_sends << " unmatched)";
  if (d.min_delay.has_value()) {
    os << ", delay [" << *d.min_delay << ", " << *d.max_delay << "], mean " << d.mean_delay;
  }
  if (d.p50_delay.has_value()) {
    os << ", p50/p95/p99 " << *d.p50_delay << "/" << *d.p95_delay << "/" << *d.p99_delay;
  }
  os << '\n';
}

/// Folds the buffered delay samples into nearest-rank percentiles via an
/// obs::Histogram over [0, max]: width 1 (exact) for any spread up to 4096
/// ticks, classic bucket-edge nearest-rank beyond.
void fill_delay_percentiles(DelayStats& stats, const std::vector<std::int64_t>& delays) {
  if (delays.empty()) return;
  std::int64_t max_delay = 0;
  for (const std::int64_t d : delays) max_delay = std::max(max_delay, d);
  obs::Histogram hist{0, max_delay,
                      std::min<std::size_t>(4096, static_cast<std::size_t>(max_delay) + 1)};
  for (const std::int64_t d : delays) hist.record(d);
  stats.p50_delay = Duration{hist.percentile(50)};
  stats.p95_delay = Duration{hist.percentile(95)};
  stats.p99_delay = Duration{hist.percentile(99)};
}

}  // namespace

TraceStats compute_trace_stats(const ioa::TimedTrace& trace) {
  TraceStats stats;
  std::optional<Time> last_t_step;
  std::optional<Time> last_r_step;
  double t_gap_sum = 0;
  double r_gap_sum = 0;
  double data_delay_sum = 0;
  double ack_delay_sum = 0;
  std::vector<std::int64_t> data_delays;
  std::vector<std::int64_t> ack_delays;

  // Outstanding sends per packet value (greedy earliest matching, as in the
  // verifier) for delay measurement and occupancy.
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::deque<Time>> outstanding;
  std::uint64_t in_flight = 0;

  for (const TimedEvent& e : trace.events()) {
    if (e.actor == Actor::Transmitter) {
      accumulate_gap(stats.transmitter, last_t_step, t_gap_sum, e.time);
    } else if (e.actor == Actor::Receiver) {
      accumulate_gap(stats.receiver, last_r_step, r_gap_sum, e.time);
    }

    switch (e.action.kind) {
      case ActionKind::Send: {
        outstanding[{static_cast<std::uint8_t>(e.action.packet.direction),
                     e.action.packet.payload}]
            .push_back(e.time);
        ++in_flight;
        stats.max_in_flight = std::max(stats.max_in_flight, in_flight);
        if (e.action.packet.source() == ioa::ProcessId::Transmitter) {
          stats.last_transmitter_send = e.time;
        }
        break;
      }
      case ActionKind::Recv: {
        auto it = outstanding.find({static_cast<std::uint8_t>(e.action.packet.direction),
                                    e.action.packet.payload});
        if (it != outstanding.end() && !it->second.empty()) {
          const Duration delay = e.time - it->second.front();
          it->second.pop_front();
          --in_flight;
          if (e.action.packet.direction == ioa::Packet::Direction::TransmitterToReceiver) {
            accumulate_delay(stats.data, data_delay_sum, delay);
            data_delays.push_back(delay.ticks());
          } else {
            accumulate_delay(stats.acks, ack_delay_sum, delay);
            ack_delays.push_back(delay.ticks());
          }
        }
        break;
      }
      case ActionKind::Write:
        ++stats.writes;
        break;
      case ActionKind::Internal:
        break;
    }
  }

  for (const auto& [key, sends] : outstanding) {
    if (key.first == static_cast<std::uint8_t>(ioa::Packet::Direction::TransmitterToReceiver)) {
      stats.data.unmatched_sends += sends.size();
    } else {
      stats.acks.unmatched_sends += sends.size();
    }
  }

  if (stats.transmitter.steps > 1) {
    stats.transmitter.mean_gap = t_gap_sum / static_cast<double>(stats.transmitter.steps - 1);
  }
  if (stats.receiver.steps > 1) {
    stats.receiver.mean_gap = r_gap_sum / static_cast<double>(stats.receiver.steps - 1);
  }
  if (stats.data.delivered > 0) {
    stats.data.mean_delay = data_delay_sum / static_cast<double>(stats.data.delivered);
  }
  if (stats.acks.delivered > 0) {
    stats.acks.mean_delay = ack_delay_sum / static_cast<double>(stats.acks.delivered);
  }
  fill_delay_percentiles(stats.data, data_delays);
  fill_delay_percentiles(stats.acks, ack_delays);
  stats.end_time = trace.end_time();
  if (stats.writes > 0 && stats.end_time.ticks() > 0) {
    stats.write_throughput =
        static_cast<double>(stats.writes) / static_cast<double>(stats.end_time.ticks());
  }
  return stats;
}

std::ostream& operator<<(std::ostream& os, const TraceStats& stats) {
  os << "trace stats (end " << stats.end_time << ", " << stats.writes << " writes, "
     << stats.write_throughput << " writes/tick):\n";
  print_gaps(os, "A_t", stats.transmitter);
  print_gaps(os, "A_r", stats.receiver);
  print_delays(os, "data", stats.data);
  print_delays(os, "acks", stats.acks);
  os << "  peak in-flight: " << stats.max_in_flight;
  return os;
}

}  // namespace rstp::core
