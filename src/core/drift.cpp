#include "rstp/core/drift.h"

#include <charconv>
#include <ostream>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::core {
namespace {

/// Whole-token integer parse; throws DriftParseError naming `token` (the full
/// segment text) when `field` is not a plain decimal integer.
std::int64_t parse_field(std::string_view field, std::string_view token, const char* what) {
  std::int64_t value = 0;
  const char* first = field.data();
  const char* last = field.data() + field.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || field.empty()) {
    std::ostringstream msg;
    msg << what << " is not a decimal integer";
    throw DriftParseError(msg.str(), std::string(token));
  }
  return value;
}

}  // namespace

const DriftSpec::Segment& DriftSpec::segment_at(Time t) const {
  RSTP_CHECK(!segments.empty(), "segment_at on an empty drift spec");
  const Segment* active = &segments.front();
  for (const Segment& seg : segments) {
    if (seg.start > t) break;
    active = &seg;
  }
  return *active;
}

void DriftSpec::validate() const {
  if (segments.empty()) return;
  RSTP_CHECK(segments.front().start == Time::zero(),
             "drift spec must start its first segment at time 0");
  Time prev = segments.front().start;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& seg = segments[i];
    if (i > 0) {
      RSTP_CHECK(seg.start > prev, "drift segment starts must be strictly increasing");
      prev = seg.start;
    }
    RSTP_CHECK(!seg.d_eff.is_negative(), "drift segment d_eff must be non-negative");
    if (seg.c2_eff.has_value()) {
      RSTP_CHECK(seg.c2_eff->ticks() > 0, "drift segment c2_eff must be positive");
    }
  }
}

DriftSpec DriftSpec::parse(std::string_view text) {
  DriftSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    if (token.empty()) {
      throw DriftParseError("empty drift segment (expected start:d[:c2])", std::string(token));
    }
    // Split the segment into 2 or 3 colon-separated fields.
    std::size_t a = token.find(':');
    if (a == std::string_view::npos) {
      throw DriftParseError("drift segment needs at least start:d", std::string(token));
    }
    std::size_t b = token.find(':', a + 1);
    const std::string_view start_text = token.substr(0, a);
    const std::string_view d_text =
        token.substr(a + 1, b == std::string_view::npos ? std::string_view::npos : b - a - 1);
    Segment seg;
    seg.start = Time{parse_field(start_text, token, "segment start")};
    seg.d_eff = Duration{parse_field(d_text, token, "segment d")};
    if (b != std::string_view::npos) {
      const std::string_view c2_text = token.substr(b + 1);
      if (c2_text.find(':') != std::string_view::npos) {
        throw DriftParseError("drift segment has more than three fields", std::string(token));
      }
      seg.c2_eff = Duration{parse_field(c2_text, token, "segment c2")};
    }
    if (seg.start.ticks() < 0) {
      throw DriftParseError("segment start must be non-negative", std::string(token));
    }
    if (seg.d_eff.is_negative()) {
      throw DriftParseError("segment d must be non-negative", std::string(token));
    }
    if (seg.c2_eff.has_value() && seg.c2_eff->ticks() <= 0) {
      throw DriftParseError("segment c2 must be positive", std::string(token));
    }
    if (spec.segments.empty()) {
      if (seg.start != Time::zero()) {
        throw DriftParseError("first segment must start at 0", std::string(token));
      }
    } else if (seg.start <= spec.segments.back().start) {
      throw DriftParseError("segment starts must be strictly increasing", std::string(token));
    }
    spec.segments.push_back(seg);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  spec.validate();
  return spec;
}

std::string DriftSpec::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i > 0) os << ',';
    os << segments[i].start.ticks() << ':' << segments[i].d_eff.ticks();
    if (segments[i].c2_eff.has_value()) os << ':' << segments[i].c2_eff->ticks();
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const DriftSpec& spec) {
  return os << spec.to_string();
}

}  // namespace rstp::core
