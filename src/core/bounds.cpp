#include "rstp/core/bounds.h"

#include <ostream>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"

namespace rstp::core {

BoundsReport compute_bounds(const TimingParams& params, std::uint32_t k) {
  params.validate();
  RSTP_CHECK_GE(k, 2u, "bounds require a packet alphabet of at least two symbols");

  BoundsReport r;
  r.params = params;
  r.k = k;
  r.delta1 = params.delta1();
  r.delta1_wait = params.delta1_wait();
  r.delta2 = params.delta2();

  const auto d1 = static_cast<std::uint32_t>(r.delta1);
  const auto d1w = static_cast<std::uint32_t>(r.delta1_wait);
  const auto d2 = static_cast<std::uint32_t>(r.delta2);

  r.beta_bits_per_block = combinatorics::floor_log2_mu(k, d1w);
  r.gamma_bits_per_block = combinatorics::floor_log2_mu(k, d2);

  const auto c2 = static_cast<double>(params.c2.ticks());
  const auto d = static_cast<double>(params.d.ticks());

  // Theorem 5.3: eff ≥ δ1·c2 / log2(ζ_k(δ1)).
  r.passive_lower = static_cast<double>(r.delta1) * c2 / combinatorics::log2_zeta(k, d1);
  // Theorem 5.6: eff ≥ d / log2(ζ_k(δ2)).
  r.active_lower = d / combinatorics::log2_zeta(k, d2);

  // §4: A^α takes exactly ⌈d/c1⌉ steps per message, each ≤ c2.
  r.alpha_effort = static_cast<double>(r.delta1_wait) * c2;
  // Lemma 6.1 bound: each round is 2δ steps of ≤ c2 carrying B bits.
  r.beta_upper = 2.0 * static_cast<double>(r.delta1_wait) * c2 /
                 static_cast<double>(r.beta_bits_per_block);
  // §6.2 bound: each block of B bits completes within 3d + c2.
  r.gamma_upper = (3.0 * d + c2) / static_cast<double>(r.gamma_bits_per_block);
  // Stop-and-wait: one bit per round trip (send step→delivery→ack
  // step→delivery→next send step), ≤ 2d + 2c2 per bit.
  r.altbit_upper = 2.0 * d + 2.0 * c2;

  return r;
}

std::ostream& operator<<(std::ostream& os, const BoundsReport& r) {
  os << "bounds " << r.params << " k=" << r.k << '\n'
     << "  delta1=" << r.delta1 << " delta1_wait=" << r.delta1_wait << " delta2=" << r.delta2
     << '\n'
     << "  B_beta=" << r.beta_bits_per_block << " B_gamma=" << r.gamma_bits_per_block << '\n'
     << "  passive_lower=" << r.passive_lower << "  beta_upper=" << r.beta_upper
     << "  ratio=" << r.passive_ratio() << '\n'
     << "  active_lower=" << r.active_lower << "  gamma_upper=" << r.gamma_upper
     << "  ratio=" << r.active_ratio() << '\n'
     << "  alpha_effort=" << r.alpha_effort << "  altbit_upper=" << r.altbit_upper;
  return os;
}

}  // namespace rstp::core
