#include "rstp/core/verify.h"

#include <algorithm>
#include <deque>
#include <map>
#include <ostream>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::core {

namespace {

using ioa::ActionKind;
using ioa::Actor;
using ioa::TimedEvent;

void add_violation(VerifyResult& result, ViolationKind kind, std::uint64_t seq,
                   std::string detail) {
  result.violations.push_back(Violation{kind, seq, std::move(detail)});
}

/// Checks the Σ(A_t, A_r) gap law for one process's local events.
void check_step_gaps(VerifyResult& result, const std::vector<TimedEvent>& events,
                     const TimingParams& params, const VerifyOptions& options,
                     std::string_view who) {
  if (events.empty()) return;
  if (options.check_first_step && events.front().time > Time::zero() + params.c2) {
    std::ostringstream os;
    os << who << " first local event at " << events.front().time << " > c2=" << params.c2;
    add_violation(result, ViolationKind::FirstStepTooLate, events.front().seq, os.str());
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    const Duration gap = events[i].time - events[i - 1].time;
    if (gap < params.c1) {
      std::ostringstream os;
      os << who << " step gap " << gap << " < c1=" << params.c1 << " before event #"
         << events[i].seq;
      add_violation(result, ViolationKind::StepGapTooSmall, events[i].seq, os.str());
    } else if (gap > params.c2) {
      std::ostringstream os;
      os << who << " step gap " << gap << " > c2=" << params.c2 << " before event #"
         << events[i].seq;
      add_violation(result, ViolationKind::StepGapTooLarge, events[i].seq, os.str());
    }
  }
}

}  // namespace

std::ostream& operator<<(std::ostream& os, ViolationKind kind) {
  switch (kind) {
    case ViolationKind::StepGapTooSmall:
      return os << "StepGapTooSmall";
    case ViolationKind::StepGapTooLarge:
      return os << "StepGapTooLarge";
    case ViolationKind::FirstStepTooLate:
      return os << "FirstStepTooLate";
    case ViolationKind::RecvWithoutSend:
      return os << "RecvWithoutSend";
    case ViolationKind::DeliveryTooEarly:
      return os << "DeliveryTooEarly";
    case ViolationKind::DeliveryTooLate:
      return os << "DeliveryTooLate";
    case ViolationKind::UndeliveredPacket:
      return os << "UndeliveredPacket";
    case ViolationKind::OutputNotPrefix:
      return os << "OutputNotPrefix";
    case ViolationKind::OutputIncomplete:
      return os << "OutputIncomplete";
  }
  return os << "?";
}

std::ostream& operator<<(std::ostream& os, const Violation& v) {
  return os << v.kind << " (event #" << v.event_seq << "): " << v.detail;
}

bool VerifyResult::clean_of(ViolationKind kind) const {
  for (const Violation& v : violations) {
    if (v.kind == kind) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const VerifyResult& r) {
  if (r.ok()) return os << "trace OK";
  os << r.violations.size() << " violation(s):\n";
  for (const Violation& v : r.violations) {
    os << "  " << v << '\n';
  }
  return os;
}

VerifyResult verify_trace(const ioa::TimedTrace& trace, const TimingParams& params,
                          std::span<const ioa::Bit> input, const VerifyOptions& options) {
  params.validate();
  VerifyResult result;

  // --- Σ(A_t, A_r): per-process step-gap law --------------------------------
  const TimingParams& t_params = options.transmitter_params.value_or(params);
  const TimingParams& r_params = options.receiver_params.value_or(params);
  check_step_gaps(result, trace.local_events(Actor::Transmitter), t_params, options, "A_t");
  check_step_gaps(result, trace.local_events(Actor::Receiver), r_params, options, "A_r");

  // --- Δ(C(P)): bounded-delay bijection -------------------------------------
  // Outstanding sends per packet value, in send order; greedy earliest match.
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::deque<TimedEvent>> outstanding;
  const auto key_of = [](const ioa::Packet& p) {
    return std::make_pair(static_cast<std::uint8_t>(p.direction), p.payload);
  };
  std::size_t written_count = 0;

  for (const TimedEvent& e : trace.events()) {
    switch (e.action.kind) {
      case ActionKind::Send:
        outstanding[key_of(e.action.packet)].push_back(e);
        break;
      case ActionKind::Recv: {
        auto it = outstanding.find(key_of(e.action.packet));
        if (it == outstanding.end() || it->second.empty()) {
          std::ostringstream os;
          os << "recv of " << e.action.packet << " at " << e.time
             << " has no outstanding matching send";
          add_violation(result, ViolationKind::RecvWithoutSend, e.seq, os.str());
          break;
        }
        const TimedEvent send = it->second.front();
        it->second.pop_front();
        const Duration delay = e.time - send.time;
        if (delay > params.d) {
          std::ostringstream os;
          os << e.action.packet << " sent " << send.time << " received " << e.time << " (delay "
             << delay << " > d=" << params.d << ")";
          add_violation(result, ViolationKind::DeliveryTooLate, e.seq, os.str());
        } else if (delay < options.min_delay) {
          std::ostringstream os;
          os << e.action.packet << " sent " << send.time << " received " << e.time << " (delay "
             << delay << " < d1=" << options.min_delay << ")";
          add_violation(result, ViolationKind::DeliveryTooEarly, e.seq, os.str());
        }
        break;
      }
      case ActionKind::Write: {
        // --- Safety: Y must stay a prefix of X -------------------------------
        if (written_count >= input.size() || input[written_count] != e.action.message) {
          std::ostringstream os;
          os << "write #" << written_count + 1 << " value "
             << static_cast<int>(e.action.message) << " breaks the prefix property";
          add_violation(result, ViolationKind::OutputNotPrefix, e.seq, os.str());
        }
        ++written_count;
        break;
      }
      case ActionKind::Internal:
        break;
    }
  }

  if (options.require_drained) {
    for (const auto& [key, sends] : outstanding) {
      for (const TimedEvent& send : sends) {
        std::ostringstream os;
        os << send.action.packet << " sent at " << send.time << " was never delivered";
        add_violation(result, ViolationKind::UndeliveredPacket, send.seq, os.str());
      }
    }
  }

  if (options.require_complete && written_count != input.size()) {
    std::ostringstream os;
    os << "output has " << written_count << " messages, input has " << input.size();
    add_violation(result, ViolationKind::OutputIncomplete, 0, os.str());
  }

  return result;
}

std::ostream& operator<<(std::ostream& os, const FaultVerifyReport& r) {
  if (r.ok()) {
    os << "trace OK under faults (" << r.excused << " excused violation(s))";
    return os;
  }
  os << r.unexcused.size() << " unexcused violation(s) (" << r.excused << " excused):\n";
  for (const Violation& v : r.unexcused) {
    os << "  " << v << '\n';
  }
  return os;
}

FaultVerifyReport verify_trace_with_faults(const ioa::TimedTrace& trace,
                                           const TimingParams& params,
                                           std::span<const ioa::Bit> input,
                                           std::span<const fault::FaultEvent> faults,
                                           const VerifyOptions& options) {
  FaultVerifyReport report;
  report.raw = verify_trace(trace, params, input, options);
  if (report.raw.ok()) return report;

  // A violation is excused by faults of the right kinds occurring at or
  // before the violating event. Fault times are send instants, so a fault's
  // downstream consequences (the recv, the wrong write) never precede it.
  const auto fault_at_or_before = [&](Time when, auto&& kind_matches) {
    for (const fault::FaultEvent& f : faults) {
      if (f.at <= when && kind_matches(f.kind)) return true;
    }
    return false;
  };
  // event_seq -> time of that event, by binary search (the trace appends
  // with strictly increasing seq). seq 0 marks trace-global violations.
  const std::vector<TimedEvent>& events = trace.events();
  const auto time_of_seq = [&](std::uint64_t seq) -> std::optional<Time> {
    const auto it = std::lower_bound(
        events.begin(), events.end(), seq,
        [](const TimedEvent& e, std::uint64_t s) { return e.seq < s; });
    if (it == events.end() || it->seq != seq) return std::nullopt;
    return it->time;
  };

  for (const Violation& v : report.raw.violations) {
    bool excused = false;
    switch (v.kind) {
      case ViolationKind::StepGapTooSmall:
      case ViolationKind::StepGapTooLarge:
      case ViolationKind::FirstStepTooLate:
      case ViolationKind::DeliveryTooEarly:
        // Scheduler laws and early delivery cannot result from any injected
        // channel fault.
        break;
      case ViolationKind::DeliveryTooLate:
      case ViolationKind::RecvWithoutSend:
      case ViolationKind::UndeliveredPacket: {
        // Bijection-layer violations. Any fault kind can produce any of the
        // three: the verifier matches recvs greedily against the earliest
        // outstanding same-payload send, so a single drop (or corrupt, or
        // duplicate) shifts every later same-payload match — a dropped send
        // absorbs its retransmission's recv and surfaces as DeliveryTooLate,
        // the cascade's tail as RecvWithoutSend or UndeliveredPacket.
        // Attribution finer than "some fault happened first" would require
        // re-deriving the channel's true bijection, which the fault log does
        // not (and should not) pin down.
        const std::optional<Time> when = time_of_seq(v.event_seq);
        excused = when.has_value() &&
                  fault_at_or_before(*when, [](fault::FaultKind) { return true; });
        break;
      }
      case ViolationKind::OutputNotPrefix: {
        const std::optional<Time> when = time_of_seq(v.event_seq);
        excused = when.has_value() &&
                  fault_at_or_before(*when, [](fault::FaultKind) { return true; });
        break;
      }
      case ViolationKind::OutputIncomplete:
        excused = !faults.empty();
        break;
    }
    if (excused) {
      ++report.excused;
    } else {
      report.unexcused.push_back(v);
    }
  }
  return report;
}

}  // namespace rstp::core
