#include "rstp/core/distinguisher.h"

#include <cmath>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"

namespace rstp::core {

TransmitterSignature transmitter_signature(const protocols::TransmitterBase& transmitter,
                                           std::uint32_t k, std::int64_t window_steps,
                                           std::uint64_t max_steps) {
  RSTP_CHECK_GE(k, 1u, "alphabet must be non-empty");
  RSTP_CHECK_GE(window_steps, 1, "window must span at least one step");

  const std::unique_ptr<ioa::Automaton> clone = transmitter.clone();
  TransmitterSignature sig;

  std::uint64_t step = 0;
  while (step < max_steps) {
    const std::optional<ioa::Action> action = clone->enabled_local();
    if (!action.has_value()) {
      sig.complete = true;  // stopped: a fair finite execution
      break;
    }
    clone->apply(*action);
    ++step;
    if (action->kind == ioa::ActionKind::Send) {
      RSTP_CHECK_LT(action->packet.payload, k, "send outside the declared alphabet");
      const auto window = static_cast<std::size_t>(
          (static_cast<std::int64_t>(step) - 1) / window_steps);
      while (sig.windows.size() <= window) {
        sig.windows.emplace_back(k);
      }
      sig.windows[window].add(action->packet.payload);
      ++sig.total_sends;
      sig.last_send_step = step;
    }
  }
  // ℓ(X): trim trailing windows with no sends.
  const std::size_t used =
      sig.last_send_step == 0
          ? 0
          : (sig.last_send_step + static_cast<std::size_t>(window_steps) - 1) /
                static_cast<std::size_t>(window_steps);
  sig.windows.resize(used, combinatorics::Multiset{k});
  return sig;
}

std::size_t min_windows_for(std::size_t n, std::uint32_t k, std::uint32_t delta1) {
  if (n == 0) return 0;
  // Each window carries one of at most ζ_k(δ1) non-empty multisets or is
  // empty: (ζ_k(δ1) + 1)^ℓ ≥ 2^n  ⇒  ℓ ≥ n / log2(ζ_k(δ1) + 1).
  const double bits_per_window =
      (combinatorics::zeta(k, delta1) + bigint::BigUint{1}).log2();
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) / bits_per_window - 1e-9));
}

}  // namespace rstp::core
