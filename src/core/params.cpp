#include "rstp/core/params.h"

#include <ostream>

#include "rstp/common/check.h"

namespace rstp::core {

void TimingParams::validate() const {
  RSTP_CHECK_GT(c1.ticks(), 0, "c1 must be positive");
  RSTP_CHECK_LE(c1.ticks(), c2.ticks(), "need c1 <= c2");
  RSTP_CHECK_LE(c2.ticks(), d.ticks(), "need c2 <= d");
}

std::int64_t TimingParams::delta1() const { return d.floor_div(c1); }

std::int64_t TimingParams::delta1_wait() const { return d.ceil_div(c1); }

std::int64_t TimingParams::delta2() const { return d.floor_div(c2); }

TimingParams TimingParams::make(std::int64_t c1_ticks, std::int64_t c2_ticks,
                                std::int64_t d_ticks) {
  TimingParams p{Duration{c1_ticks}, Duration{c2_ticks}, Duration{d_ticks}};
  p.validate();
  return p;
}

std::ostream& operator<<(std::ostream& os, const TimingParams& p) {
  return os << "{c1=" << p.c1 << ", c2=" << p.c2 << ", d=" << p.d << "}";
}

}  // namespace rstp::core
