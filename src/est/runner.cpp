#include "rstp/est/runner.h"

#include <memory>
#include <utility>

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/obs/metrics.h"
#include "rstp/sim/scheduler.h"
#include "rstp/sim/simulator.h"

namespace rstp::est {

namespace {

/// Global-registry slots the estimator reports into (naming scheme in
/// docs/OBSERVABILITY.md). Gauges are high-water marks over the process, so
/// a campaign's merged view shows the largest estimate any cell converged to.
struct MetricsRegistryIds {
  obs::MetricsRegistry::MetricId runs = obs::global_registry().counter("est/runs");
  obs::MetricsRegistry::MetricId c1_hat = obs::global_registry().gauge("est/c1_hat");
  obs::MetricsRegistry::MetricId c2_hat = obs::global_registry().gauge("est/c2_hat");
  obs::MetricsRegistry::MetricId d_hat = obs::global_registry().gauge("est/d_hat");
  obs::MetricsRegistry::MetricId gap_samples =
      obs::global_registry().counter("est/gap_samples");
  obs::MetricsRegistry::MetricId delay_samples =
      obs::global_registry().counter("est/delay_samples");
  obs::MetricsRegistry::MetricId resizes = obs::global_registry().counter("est/resizes");
};

void publish_gauges(const obs::EstimatorGauges& g) {
  const MetricsRegistryIds ids;
  obs::MetricsRegistry& reg = obs::global_registry();
  reg.add(ids.runs);
  reg.gauge_max(ids.c1_hat, static_cast<std::uint64_t>(g.c1_hat));
  reg.gauge_max(ids.c2_hat, static_cast<std::uint64_t>(g.c2_hat));
  reg.gauge_max(ids.d_hat, static_cast<std::uint64_t>(g.d_hat));
  reg.add(ids.gap_samples, g.gap_samples);
  reg.add(ids.delay_samples, g.delay_samples);
  reg.add(ids.resizes, g.resizes);
}

double effort_ticks(const core::ProtocolRun& run) {
  if (!run.result.last_transmitter_send.has_value()) return 0;
  return static_cast<double>((*run.result.last_transmitter_send - Time::zero()).ticks());
}

}  // namespace

EstimatedRun run_estimated(protocols::ProtocolKind kind, const protocols::ProtocolConfig& config,
                           const core::Environment& env, const core::DriftSpec& drift,
                           bool estimator_enabled, const EstimatorConfig& est_config,
                           bool record_trace, std::uint64_t max_events,
                           obs::trace::ModelRecorder* tracer) {
  protocols::ProtocolConfig local = config;
  std::shared_ptr<TimingEstimator> estimator;
  std::shared_ptr<BlockPlanner> planner;
  if (estimator_enabled) {
    RSTP_CHECK(kind == protocols::ProtocolKind::Beta || kind == protocols::ProtocolKind::Gamma,
               "the estimator supports only beta and gamma");
    estimator = std::make_shared<TimingEstimator>(est_config);
    planner = std::make_shared<BlockPlanner>(kind == protocols::ProtocolKind::Beta
                                                 ? BlockPlanner::Discipline::TimedBlocks
                                                 : BlockPlanner::Discipline::AckedBlocks,
                                             local.k, local.input, estimator);
    local.planner = planner;
  }
  protocols::ProtocolInstance instance = protocols::make_protocol(kind, local);

  // Always burn the three per-run seeds in core::run_protocol's order so the
  // env.seed stream is consumed identically with or without a drift spec —
  // the oracle/estimated halves of a pair must face the same environment.
  Rng seeder{env.seed};
  const std::uint64_t t_seed = seeder.next_u64();
  const std::uint64_t r_seed = seeder.next_u64();
  const std::uint64_t chan_seed = seeder.next_u64();

  std::unique_ptr<sim::StepScheduler> t_sched;
  std::unique_ptr<sim::StepScheduler> r_sched;
  std::unique_ptr<channel::DeliveryPolicy> policy;
  if (drift.empty()) {
    t_sched = core::make_scheduler(env.transmitter_sched, local.params, t_seed);
    r_sched = core::make_scheduler(env.receiver_sched, local.params, r_seed);
    policy = core::make_delivery_policy(env.delay, local.params, chan_seed);
  } else {
    t_sched = sim::make_drifting_scheduler(drift, local.params);
    r_sched = sim::make_drifting_scheduler(drift, local.params);
    policy = channel::make_drifting_delay(drift, local.params.d);
  }
  channel::Channel chan{local.params.d, std::move(policy)};
  if (estimator != nullptr) estimator->attach_channel(&chan);

  sim::SimConfig sim_config;
  sim_config.params = local.params;
  sim_config.record_trace = record_trace;
  sim_config.max_events = max_events;
  sim_config.tracer = tracer;
  sim_config.estimator = estimator.get();

  sim::Simulator simulator{*instance.transmitter, *instance.receiver, chan, *t_sched, *r_sched,
                           sim_config};
  EstimatedRun out;
  out.run.result = simulator.run();
  out.run.output_correct = out.run.result.output == local.input;
  if (estimator != nullptr) {
    const core::TimingParams estimate = estimator->estimate();
    out.gauges.c1_hat = estimate.c1.ticks();
    out.gauges.c2_hat = estimate.c2.ticks();
    out.gauges.d_hat = estimate.d.ticks();
    out.gauges.gap_samples = estimator->gap_samples();
    out.gauges.delay_samples = estimator->delay_samples();
    out.gauges.resizes = planner->resizes();
    publish_gauges(out.gauges);
  }
  return out;
}

PenaltyRun run_penalty_pair(protocols::ProtocolKind kind,
                            const protocols::ProtocolConfig& config,
                            const core::Environment& env, const core::DriftSpec& drift,
                            const EstimatorConfig& est_config, std::uint64_t max_events) {
  PenaltyRun out;
  out.oracle = run_estimated(kind, config, env, drift, /*estimator_enabled=*/false, est_config,
                             /*record_trace=*/false, max_events)
                   .run;
  out.estimated = run_estimated(kind, config, env, drift, /*estimator_enabled=*/true, est_config,
                                /*record_trace=*/false, max_events);
  out.est_penalty = fold_est_penalty(effort_ticks(out.oracle), effort_ticks(out.estimated.run));
  return out;
}

double fold_est_penalty(double oracle_ticks, double estimated_ticks) {
  if (oracle_ticks > 0) return estimated_ticks / oracle_ticks;
  // The oracle never sent. If the estimated run was silent too, the pair has
  // no penalty to report (0, the schema's "not applicable"). If it DID send,
  // the raw division would hand the diff gate inf (or NaN for 0/0 with a
  // negative-ticks corruption) — report the finite sentinel instead so
  // `est_penalty_max` trips loudly rather than silently passing.
  return estimated_ticks > 0 ? kDegenerateEstPenalty : 0;
}

sim::CampaignSpec golden_estimator_spec() {
  sim::CampaignSpec spec;
  spec.protocols = {protocols::ProtocolKind::Beta, protocols::ProtocolKind::Gamma};
  spec.timings = {core::TimingParams::make(1, 2, 6), core::TimingParams::make(2, 3, 9)};
  spec.alphabets = {4, 8};
  spec.environments = {core::Environment::worst_case()};
  spec.seeds_per_cell = 1;
  spec.input_bits = 256;
  spec.campaign_seed = 0xE57;
  spec.estimator_enabled = true;
  // Margin 0: worst_case realizes gaps exactly at c2 and delays exactly at d,
  // so the pinned expectation is exact convergence, not a padded envelope.
  spec.estimator.margin = 0.0;
  // Breakpoints at 250 and 600 land inside every cell's run (the shortest
  // grid cell finishes around tick 760), exercising re-convergence both ways.
  spec.drifts = {core::DriftSpec{}, core::DriftSpec::parse("0:9,250:4,600:7")};
  return spec;
}

}  // namespace rstp::est
