#include "rstp/est/adaptive.h"

#include <sstream>

#include "rstp/common/check.h"
#include "rstp/protocols/gamma.h"

namespace rstp::est {

using ioa::Action;
using ioa::ActionKind;
using ioa::Bit;
using ioa::Packet;

namespace {

std::shared_ptr<BlockPlanner> checked_planner(const protocols::ProtocolConfig& config,
                                              BlockPlanner::Discipline expected) {
  config.validate();
  RSTP_CHECK(config.planner != nullptr, "adaptive automata require config.planner");
  RSTP_CHECK(config.planner->discipline() == expected,
             "planner discipline does not match the protocol");
  RSTP_CHECK_EQ(config.planner->alphabet(), config.k, "planner alphabet must match config.k");
  RSTP_CHECK_EQ(config.planner->input_bits(), config.input.size(),
                "planner input must match config.input");
  return config.planner;
}

}  // namespace

// ---------------------------------------------------------------------------
// β

AdaptiveBetaTransmitter::AdaptiveBetaTransmitter(const protocols::ProtocolConfig& config)
    : planner_(checked_planner(config, BlockPlanner::Discipline::TimedBlocks)) {
  if (planner_->input_bits() == 0) phase_ = Phase::Done;
  std::ostringstream os;
  os << "A_t^beta-est(k=" << config.k << ",margin=" << planner_->estimator().config().margin
     << ",n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> AdaptiveBetaTransmitter::enabled_local() const {
  switch (phase_) {
    case Phase::Send: {
      const BlockPlan& p = planner_->plan(block_);
      return Action::send(Packet::to_receiver(p.symbols[pos_]));
    }
    case Phase::Wait:
      return protocols::wait_t_action();
    case Phase::Done:
      return std::nullopt;
  }
  RSTP_UNREACHABLE("invalid phase");
}

void AdaptiveBetaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    return;  // r-passive: the receiver never sends, but stay input-enabled
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    const BlockPlan& p = planner_->plan(block_);
    ++pos_;
    if (pos_ == p.delta) {
      ++counters_.blocks_encoded;
      more_ = planner_->has_block(block_ + 1);
      phase_ = Phase::Wait;
      wait_count_ = 0;
    }
    return;
  }
  // wait_t: count the step; leave the wait phase only once the planned wait
  // has elapsed AND the channel has drained — the drain is what makes the
  // protocol correct even while the estimates are still warming up.
  ++wait_count_;
  const BlockPlan& p = planner_->plan(block_);
  if (wait_count_ >= static_cast<std::int64_t>(p.wait) && planner_->outstanding() == 0) {
    if (more_) {
      ++block_;
      pos_ = 0;
      phase_ = Phase::Send;
    } else {
      phase_ = Phase::Done;
    }
  }
}

bool AdaptiveBetaTransmitter::quiescent() const { return transmission_complete(); }

bool AdaptiveBetaTransmitter::transmission_complete() const {
  return phase_ == Phase::Done || (phase_ == Phase::Wait && !more_);
}

std::string AdaptiveBetaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "beta_est_t block=" << block_ << " pos=" << pos_ << " wait=" << wait_count_
     << " phase=" << static_cast<int>(phase_);
  return os.str();
}

std::unique_ptr<ioa::Automaton> AdaptiveBetaTransmitter::clone() const {
  // Shares the planner (see the header caveat on explorer branching).
  return std::make_unique<AdaptiveBetaTransmitter>(*this);
}

AdaptiveBetaReceiver::AdaptiveBetaReceiver(const protocols::ProtocolConfig& config)
    : planner_(checked_planner(config, BlockPlanner::Discipline::TimedBlocks)),
      block_(config.k),
      target_length_(config.input.size()) {
  std::ostringstream os;
  os << "A_r^beta-est(k=" << config.k << ",n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> AdaptiveBetaReceiver::enabled_local() const {
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return protocols::idle_r_action();
}

void AdaptiveBetaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LT(payload, planner_->alphabet(), "packet symbol outside the alphabet");
    // The transmitter computed plan(block_index_) before sending any of its
    // packets, so this lookup always hits the frozen cache.
    const BlockPlan& p = planner_->plan(block_index_);
    block_.add(payload);
    if (block_.size() == p.delta) {
      const std::vector<Bit> bits = p.coder->decode(block_);
      // Blocks are padded independently: keep only this block's real bits.
      decoded_.insert(decoded_.end(), bits.begin(),
                      bits.begin() + static_cast<std::ptrdiff_t>(p.bits));
      block_.clear();
      ++block_index_;
      ++counters_.blocks_decoded;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Write) {
    written_.push_back(action.message);
  }
}

bool AdaptiveBetaReceiver::quiescent() const {
  return written_.size() >= target_length_ ||
         (written_.size() == decoded_.size() && block_.size() == 0);
}

std::string AdaptiveBetaReceiver::snapshot() const {
  std::ostringstream os;
  os << "beta_est_r block=" << block_index_ << " decoded=" << decoded_.size()
     << " written=" << written_.size() << " pending=" << block_.size();
  return os.str();
}

std::unique_ptr<ioa::Automaton> AdaptiveBetaReceiver::clone() const {
  return std::make_unique<AdaptiveBetaReceiver>(*this);
}

// ---------------------------------------------------------------------------
// γ

AdaptiveGammaTransmitter::AdaptiveGammaTransmitter(const protocols::ProtocolConfig& config)
    : planner_(checked_planner(config, BlockPlanner::Discipline::AckedBlocks)) {
  if (planner_->input_bits() == 0) phase_ = Phase::Done;
  std::ostringstream os;
  os << "A_t^gamma-est(k=" << config.k << ",margin=" << planner_->estimator().config().margin
     << ",n=" << config.input.size() << ")";
  name_ = os.str();
}

std::optional<Action> AdaptiveGammaTransmitter::enabled_local() const {
  switch (phase_) {
    case Phase::Send: {
      const BlockPlan& p = planner_->plan(block_);
      return Action::send(Packet::to_receiver(p.symbols[pos_]));
    }
    case Phase::AwaitAcks:
      return protocols::idle_t_action();
    case Phase::Done:
      return std::nullopt;
  }
  RSTP_UNREACHABLE("invalid phase");
}

void AdaptiveGammaTransmitter::apply(const Action& action) {
  if (accepts_input(action)) {
    RSTP_CHECK_EQ(action.packet.payload, protocols::kAckPayload, "unexpected r→t payload");
    ++acked_;
    ++counters_.acks_observed;
    RSTP_CHECK_LE(acked_, static_cast<std::int64_t>(pos_),
                  "ack without a matching packet in this block");
    const BlockPlan& p = planner_->plan(block_);
    if (acked_ == static_cast<std::int64_t>(p.delta)) {
      acked_ = 0;
      if (more_) {
        ++block_;
        pos_ = 0;
        phase_ = Phase::Send;
      } else {
        phase_ = Phase::Done;
      }
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  if (action.kind == ActionKind::Send) {
    const BlockPlan& p = planner_->plan(block_);
    ++pos_;
    if (pos_ == p.delta) {
      ++counters_.blocks_encoded;
      more_ = planner_->has_block(block_ + 1);
      phase_ = Phase::AwaitAcks;
    }
  }
  // idle_t has no effect.
}

bool AdaptiveGammaTransmitter::quiescent() const { return transmission_complete(); }

bool AdaptiveGammaTransmitter::transmission_complete() const {
  return phase_ == Phase::Done || (phase_ == Phase::AwaitAcks && !more_);
}

std::string AdaptiveGammaTransmitter::snapshot() const {
  std::ostringstream os;
  os << "gamma_est_t block=" << block_ << " pos=" << pos_ << " acked=" << acked_
     << " phase=" << static_cast<int>(phase_);
  return os.str();
}

std::unique_ptr<ioa::Automaton> AdaptiveGammaTransmitter::clone() const {
  return std::make_unique<AdaptiveGammaTransmitter>(*this);
}

AdaptiveGammaReceiver::AdaptiveGammaReceiver(const protocols::ProtocolConfig& config)
    : planner_(checked_planner(config, BlockPlanner::Discipline::AckedBlocks)),
      block_(config.k),
      target_length_(config.input.size()) {
  std::ostringstream os;
  os << "A_r^gamma-est(k=" << config.k << ",n=" << target_length_ << ")";
  name_ = os.str();
}

std::optional<Action> AdaptiveGammaReceiver::enabled_local() const {
  if (unacked_ > 0) {
    return Action::send(Packet::to_transmitter(protocols::kAckPayload));
  }
  if (written_.size() < decoded_.size() && written_.size() < target_length_) {
    return Action::write(decoded_[written_.size()]);
  }
  return protocols::idle_r_action();
}

void AdaptiveGammaReceiver::apply(const Action& action) {
  if (accepts_input(action)) {
    const std::uint32_t payload = action.packet.payload;
    RSTP_CHECK_LT(payload, planner_->alphabet(), "packet symbol outside the alphabet");
    ++unacked_;
    const BlockPlan& p = planner_->plan(block_index_);
    block_.add(payload);
    if (block_.size() == p.delta) {
      const std::vector<Bit> bits = p.coder->decode(block_);
      decoded_.insert(decoded_.end(), bits.begin(),
                      bits.begin() + static_cast<std::ptrdiff_t>(p.bits));
      block_.clear();
      ++block_index_;
      ++counters_.blocks_decoded;
    }
    return;
  }
  const std::optional<Action> enabled = enabled_local();
  RSTP_CHECK(enabled.has_value() && *enabled == action, "action not enabled");
  switch (action.kind) {
    case ActionKind::Send:
      --unacked_;
      ++counters_.acks_sent;
      break;
    case ActionKind::Write:
      written_.push_back(action.message);
      break;
    case ActionKind::Internal:
      break;
    case ActionKind::Recv:
      RSTP_UNREACHABLE("recv handled as input");
  }
}

bool AdaptiveGammaReceiver::quiescent() const {
  return unacked_ == 0 &&
         (written_.size() >= target_length_ ||
          (written_.size() == decoded_.size() && block_.size() == 0));
}

std::string AdaptiveGammaReceiver::snapshot() const {
  std::ostringstream os;
  os << "gamma_est_r block=" << block_index_ << " decoded=" << decoded_.size()
     << " written=" << written_.size() << " pending=" << block_.size()
     << " unacked=" << unacked_;
  return os.str();
}

std::unique_ptr<ioa::Automaton> AdaptiveGammaReceiver::clone() const {
  return std::make_unique<AdaptiveGammaReceiver>(*this);
}

}  // namespace rstp::est
