#include "rstp/est/estimator.h"

#include <algorithm>
#include <cmath>

#include "rstp/channel/channel.h"
#include "rstp/common/check.h"

namespace rstp::est {

void EstimatorConfig::validate() const {
  RSTP_CHECK(margin >= 0.0 && margin < 1.0, "estimator margin must be in [0, 1)");
  RSTP_CHECK(gain > 0.0 && gain <= 1.0, "estimator gain must be in (0, 1]");
  RSTP_CHECK(var_gain > 0.0 && var_gain <= 1.0, "estimator var_gain must be in (0, 1]");
  RSTP_CHECK(max_block >= 1, "estimator max_block must be at least 1");
}

TimingEstimator::TimingEstimator(EstimatorConfig config) : config_(config) {
  config_.validate();
}

void TimingEstimator::observe_gap(Duration gap) {
  RSTP_CHECK(!gap.is_negative(), "estimator observed a negative step gap");
  const auto sample = static_cast<double>(gap.ticks());
  if (!have_gap_) {
    have_gap_ = true;
    min_gap_ = gap.ticks();
    gap_srtt_ = sample;
    gap_var_ = sample / 2.0;  // RFC 6298 first-sample seeding
  } else {
    min_gap_ = std::min(min_gap_, gap.ticks());
    gap_var_ += config_.var_gain * (std::abs(gap_srtt_ - sample) - gap_var_);
    gap_srtt_ += config_.gain * (sample - gap_srtt_);
  }
  ++gap_samples_;
}

void TimingEstimator::observe_delay(Duration delay) {
  RSTP_CHECK(!delay.is_negative(), "estimator observed a negative delivery delay");
  const auto sample = static_cast<double>(delay.ticks());
  if (!have_delay_) {
    have_delay_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    rttvar_ += config_.var_gain * (std::abs(srtt_ - sample) - rttvar_);
    srtt_ += config_.gain * (sample - srtt_);
  }
  ++delay_samples_;
}

core::TimingParams TimingEstimator::estimate() const {
  // The clamp chain below is the legality proof: each line lower-bounds the
  // next quantity by the previous one, so 1 <= c1 <= c2 <= d holds for any
  // sample history (including adversarial drift).
  std::int64_t c1 = 1;
  if (have_gap_) {
    c1 = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::floor(static_cast<double>(min_gap_) * (1.0 - config_.margin))));
  }
  std::int64_t c2 = c1;
  if (have_gap_) {
    c2 = std::max<std::int64_t>(
        c1, std::llround((gap_srtt_ + 4.0 * gap_var_) * (1.0 + config_.margin)));
  }
  std::int64_t d = c2;
  if (have_delay_) {
    d = std::max<std::int64_t>(d,
                               std::llround((srtt_ + 4.0 * rttvar_) * (1.0 + config_.margin)));
  }
  return core::TimingParams{Duration{c1}, Duration{c2}, Duration{d}};
}

std::uint64_t TimingEstimator::outstanding() const {
  return channel_ == nullptr ? 0 : channel_->in_flight();
}

BlockPlanner::BlockPlanner(Discipline discipline, std::uint32_t k, std::vector<ioa::Bit> input,
                           std::shared_ptr<TimingEstimator> estimator)
    : discipline_(discipline), k_(k), input_(std::move(input)), estimator_(std::move(estimator)) {
  RSTP_CHECK(k_ >= 2, "planner alphabet must have at least two symbols");
  RSTP_CHECK(estimator_ != nullptr, "planner requires an estimator");
}

bool BlockPlanner::has_block(std::size_t j) const {
  if (j == 0) return !input_.empty();
  RSTP_CHECK(j - 1 < plans_.size(), "has_block(j) requires plan(j-1) to be computed");
  const BlockPlan& prev = plans_[j - 1];
  return prev.first_bit + prev.bits < input_.size();
}

const BlockPlan& BlockPlanner::plan(std::size_t j) {
  RSTP_CHECK(j <= plans_.size(), "plans are computed sequentially");
  if (j < plans_.size()) return plans_[j];
  RSTP_CHECK(has_block(j), "plan(j) requested past the end of the input");

  const core::TimingParams est = estimator_->estimate();
  const std::int64_t raw =
      discipline_ == Discipline::TimedBlocks ? est.delta1_wait() : est.delta2();
  const auto delta = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
      raw, 1, static_cast<std::int64_t>(estimator_->config().max_block)));

  BlockPlan p;
  p.delta = delta;
  p.wait = discipline_ == Discipline::TimedBlocks ? delta : 0;
  p.first_bit = plans_.empty() ? 0 : plans_.back().first_bit + plans_.back().bits;

  auto [it, inserted] = coders_.try_emplace(delta, nullptr);
  if (inserted) it->second = std::make_shared<const combinatorics::BlockCoder>(k_, delta);
  p.coder = it->second;

  p.bits = std::min(p.coder->bits_per_block(), input_.size() - p.first_bit);
  // Each block is encoded independently: its slice of X zero-padded to the
  // coder's block width. Only the final block can carry padding.
  std::vector<ioa::Bit> padded(input_.begin() + static_cast<std::ptrdiff_t>(p.first_bit),
                               input_.begin() + static_cast<std::ptrdiff_t>(p.first_bit + p.bits));
  padded.resize(p.coder->bits_per_block(), 0);
  p.symbols = p.coder->encode(padded);

  if (!plans_.empty() && plans_.back().delta != delta) ++resizes_;
  plans_.push_back(std::move(p));
  return plans_.back();
}

}  // namespace rstp::est
