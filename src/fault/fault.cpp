#include "rstp/fault/fault.h"

#include <ostream>

#include "rstp/common/check.h"
#include "rstp/common/rng.h"

namespace rstp::fault {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Duplicate:
      return "duplicate";
    case FaultKind::Late:
      return "late";
    case FaultKind::Corrupt:
      return "corrupt";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_string(std::string_view name) {
  for (const FaultKind kind :
       {FaultKind::Drop, FaultKind::Duplicate, FaultKind::Late, FaultKind::Corrupt}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, FaultKind kind) { return os << to_string(kind); }

std::ostream& operator<<(std::ostream& os, const FaultEvent& e) {
  os << e.kind << " send_seq=" << e.send_seq << " at=" << e.at << " " << e.original;
  if (e.kind == FaultKind::Corrupt) os << " -> " << e.injected;
  if (e.kind == FaultKind::Late) os << " late_by=" << e.late_by;
  return os;
}

void FaultRates::validate() const {
  RSTP_CHECK_LE(drop_pm + duplicate_pm + late_pm + corrupt_pm, 1000u,
                "fault rates are per-mille and must sum to <= 1000");
  RSTP_CHECK_GE(max_duplicates, 1u, "duplicate faults need at least one extra copy");
  RSTP_CHECK_GE(max_late.ticks(), 1, "late faults need at least one tick of overshoot");
  RSTP_CHECK_GE(corrupt_space, 2u, "corruption needs at least two candidate payloads");
}

SeededFaultInjector::SeededFaultInjector(std::uint64_t seed, FaultRates rates,
                                         std::vector<PinnedFault> pins)
    : seed_(seed), rates_(rates), pins_(std::move(pins)) {
  rates_.validate();
}

FaultDecision SeededFaultInjector::decide(const ioa::Packet& packet, Time /*sent_at*/,
                                          Time /*deadline*/, std::uint64_t send_seq) {
  // A per-packet SplitMix64 stream keyed on (seed, send_seq): the decision
  // never depends on how many draws earlier packets consumed.
  std::uint64_t state = seed_ ^ (0x9E3779B97F4A7C15ULL * (send_seq + 1));
  const auto draw = [&state]() { return splitmix64(state); };
  const auto corrupted = [&](std::uint32_t arg) {
    // Replacement payload in [0, corrupt_space), never equal to the original.
    std::uint32_t value = arg % rates_.corrupt_space;
    if (value == packet.payload) value = (value + 1) % rates_.corrupt_space;
    return value;
  };

  FaultDecision decision;
  for (const PinnedFault& pin : pins_) {
    if (pin.send_seq != send_seq) continue;
    switch (pin.kind) {
      case FaultKind::Drop:
        decision.drop = true;
        break;
      case FaultKind::Duplicate:
        decision.duplicates = pin.arg == 0 ? 1 : pin.arg;
        break;
      case FaultKind::Late:
        decision.late_by = Duration{pin.arg == 0 ? 1 : static_cast<std::int64_t>(pin.arg)};
        break;
      case FaultKind::Corrupt:
        decision.corrupt_payload = corrupted(pin.arg);
        break;
    }
    return decision;
  }

  if (!rates_.any()) return decision;
  // One roll in [0, 1000) selects at most one fault class (rates sum <= 1000).
  const std::uint64_t roll = draw() % 1000;
  std::uint64_t bound = rates_.drop_pm;
  if (roll < bound) {
    decision.drop = true;
    return decision;
  }
  bound += rates_.duplicate_pm;
  if (roll < bound) {
    decision.duplicates =
        1 + static_cast<std::uint32_t>(draw() % rates_.max_duplicates);
    return decision;
  }
  bound += rates_.late_pm;
  if (roll < bound) {
    decision.late_by =
        Duration{1 + static_cast<std::int64_t>(draw() % static_cast<std::uint64_t>(
                                                   rates_.max_late.ticks()))};
    return decision;
  }
  bound += rates_.corrupt_pm;
  if (roll < bound) {
    decision.corrupt_payload = corrupted(static_cast<std::uint32_t>(draw()));
  }
  return decision;
}

}  // namespace rstp::fault
