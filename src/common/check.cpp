#include "rstp/common/check.h"

#include <sstream>

namespace rstp::detail {

namespace {

std::string format_location(const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " (" << loc.function_name() << ")";
  return os.str();
}

}  // namespace

void contract_failure(std::string_view condition, std::string_view message,
                      const std::source_location& loc) {
  std::ostringstream os;
  os << "RSTP_CHECK failed: `" << condition << "`";
  if (!message.empty()) {
    os << " — " << message;
  }
  os << " at " << format_location(loc);
  throw ContractViolation(os.str());
}

void unreachable_failure(std::string_view message, const std::source_location& loc) {
  std::ostringstream os;
  os << "RSTP_UNREACHABLE reached";
  if (!message.empty()) {
    os << " — " << message;
  }
  os << " at " << format_location(loc);
  throw ContractViolation(os.str());
}

}  // namespace rstp::detail
