#include "rstp/common/rng.h"

#include <bit>

namespace rstp {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro256** requires a nonzero state; SplitMix64 cannot emit four zero
  // words from any seed, but guard anyway to keep the invariant local.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RSTP_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  RSTP_CHECK_LE(lo, hi, "next_in requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

Duration Rng::next_duration(Duration lo, Duration hi) {
  return Duration{next_in(lo.ticks(), hi.ticks())};
}

double Rng::next_double() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  RSTP_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  return next_double() < p;
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace rstp
