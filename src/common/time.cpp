#include "rstp/common/time.h"

#include <ostream>

namespace rstp {

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ticks() << "t"; }

std::ostream& operator<<(std::ostream& os, Time t) { return os << "@" << t.ticks(); }

}  // namespace rstp
