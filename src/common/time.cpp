#include "rstp/common/time.h"

#include <cstdlib>
#include <mutex>
#include <ostream>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace rstp {

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ticks() << "t"; }

std::ostream& operator<<(std::ostream& os, Time t) { return os << "@" << t.ticks(); }

// ---------------------------------------------------------------------------
// Host clock calibration

namespace detail {

HostClockState host_clock_state;

}  // namespace detail

namespace {

/// CPUID leaf 0x80000007, EDX bit 8: "Invariant TSC" — the counter ticks at a
/// constant rate across P-/C-state transitions, which is the property that
/// makes a one-shot calibration against steady_clock valid for the whole run.
[[nodiscard]] bool cpu_has_invariant_tsc() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0) return false;
  if (eax < 0x80000007u) return false;
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
#else
  return false;
#endif
}

/// One calibration pass: samples (tsc, steady) twice across a ~2ms window and
/// derives the fixed-point cycles→ns multiplier. Returns false (leaving the
/// fallback in place) when the TSC is unusable: no invariant bit, RSTP_NO_TSC
/// set, no 128-bit multiply, or a nonsensical sample (counter not advancing).
bool try_calibrate_tsc() {
#if defined(__SIZEOF_INT128__)
  if (std::getenv("RSTP_NO_TSC") != nullptr) return false;
  if (!cpu_has_invariant_tsc()) return false;

  const std::uint64_t ns0 = detail::steady_now_ns();
  const std::uint64_t tsc0 = detail::read_tsc();
  // Spin (not sleep) so the window is wall-clock-tight; 2ms gives the
  // multiplier ~5 significant digits, plenty for profiling spans.
  std::uint64_t ns1 = ns0;
  while (ns1 - ns0 < 2'000'000) ns1 = detail::steady_now_ns();
  const std::uint64_t tsc1 = detail::read_tsc();
  ns1 = detail::steady_now_ns();

  if (tsc1 <= tsc0 || ns1 <= ns0) return false;
  const unsigned __int128 mult =
      ((static_cast<unsigned __int128>(ns1 - ns0) << detail::kHostClockShift) +
       (tsc1 - tsc0) / 2) /
      (tsc1 - tsc0);
  if (mult == 0 || mult > ~std::uint64_t{0}) return false;

  detail::host_clock_state.tsc_base = tsc1;
  detail::host_clock_state.ns_base = ns1;
  detail::host_clock_state.mult = static_cast<std::uint64_t>(mult);
  detail::host_clock_state.active.store(true, std::memory_order_release);
  return true;
#else
  return false;
#endif
}

std::once_flag calibrate_once;

}  // namespace

void calibrate_host_clock() {
  std::call_once(calibrate_once, [] { (void)try_calibrate_tsc(); });
}

HostClockSource host_clock_source() {
  calibrate_host_clock();  // idempotent: report the source that would be used
  return detail::host_clock_state.active.load(std::memory_order_acquire)
             ? HostClockSource::Tsc
             : HostClockSource::Steady;
}

const char* to_string(HostClockSource source) {
  return source == HostClockSource::Tsc ? "tsc" : "steady";
}

namespace detail {

void recalibrate_host_clock_for_testing() {
  host_clock_state.active.store(false, std::memory_order_release);
  (void)try_calibrate_tsc();
}

void set_host_clock_source_for_testing(HostClockSource source) {
  if (source == HostClockSource::Steady) {
    host_clock_state.active.store(false, std::memory_order_release);
  } else if (host_clock_state.mult != 0) {
    host_clock_state.active.store(true, std::memory_order_release);
  }
}

}  // namespace detail

}  // namespace rstp
