#include "rstp/channel/policies.h"

#include <algorithm>

#include "rstp/common/check.h"

namespace rstp::channel {

Delivery ZeroDelayPolicy::choose(const ioa::Packet& /*packet*/, Time sent_at, Time /*deadline*/,
                                 std::uint64_t /*send_seq*/) {
  return Delivery{sent_at, 0};
}

FixedDelayPolicy::FixedDelayPolicy(Duration delay) : delay_(delay) {
  RSTP_CHECK(!delay_.is_negative(), "fixed delay must be non-negative");
}

Delivery FixedDelayPolicy::choose(const ioa::Packet& /*packet*/, Time sent_at, Time /*deadline*/,
                                  std::uint64_t /*send_seq*/) {
  return Delivery{sent_at + delay_, 0};
}

Delivery MaxDelayPolicy::choose(const ioa::Packet& /*packet*/, Time /*sent_at*/, Time deadline,
                                std::uint64_t /*send_seq*/) {
  return Delivery{deadline, 0};
}

UniformRandomPolicy::UniformRandomPolicy(Rng rng, Duration lo, Duration hi, Duration max_delay)
    : rng_(rng), lo_(lo), hi_(hi) {
  RSTP_CHECK(!lo_.is_negative(), "random delay lower bound must be non-negative");
  RSTP_CHECK_LE(lo_.ticks(), hi_.ticks(), "random delay bounds inverted (lo > hi)");
  RSTP_CHECK_LE(hi_.ticks(), max_delay.ticks(),
                "random delay upper bound exceeds the channel's d");
}

Delivery UniformRandomPolicy::choose(const ioa::Packet& /*packet*/, Time sent_at,
                                     Time /*deadline*/, std::uint64_t /*send_seq*/) {
  return Delivery{sent_at + rng_.next_duration(lo_, hi_), 0};
}

AdversarialBatchPolicy::AdversarialBatchPolicy(Duration window, Duration max_delay,
                                               BatchOrder order)
    : window_(window), max_delay_(max_delay), order_(order) {
  RSTP_CHECK_GT(window_.ticks(), 0, "batch window must be positive");
  RSTP_CHECK_LE(window_.ticks(), max_delay_.ticks(),
                "batch window must not exceed d, or batching would violate the delay bound");
}

Delivery AdversarialBatchPolicy::choose(const ioa::Packet& packet, Time sent_at, Time /*deadline*/,
                                        std::uint64_t /*send_seq*/) {
  // Window index of the send instant, and the common batch delivery time.
  const std::int64_t w = (sent_at - Time::zero()).floor_div(window_);
  const Time batch_time = Time::zero() + window_ * w + max_delay_;
  // Order inside the batch depends only on the payload: two windows carrying
  // equal multisets produce byte-identical delivery prefixes, which is the
  // indistinguishability the lower-bound proofs exploit.
  const std::uint64_t key = order_ == BatchOrder::AscendingPayload
                                ? packet.payload
                                : ~static_cast<std::uint64_t>(packet.payload);
  return Delivery{batch_time, key};
}

DriftingDelayPolicy::DriftingDelayPolicy(core::DriftSpec spec, Duration max_delay)
    : spec_(std::move(spec)), max_delay_(max_delay) {
  spec_.validate();
  RSTP_CHECK(!spec_.empty(), "drifting delay policy requires a non-empty spec");
  RSTP_CHECK(!max_delay_.is_negative(), "max delay must be non-negative");
}

Delivery DriftingDelayPolicy::choose(const ioa::Packet& /*packet*/, Time sent_at,
                                     Time /*deadline*/, std::uint64_t /*send_seq*/) {
  const core::DriftSpec::Segment& seg = spec_.segment_at(sent_at);
  const Duration delay{std::clamp<std::int64_t>(seg.d_eff.ticks(), 0, max_delay_.ticks())};
  return Delivery{sent_at + delay, 0};
}

std::unique_ptr<DeliveryPolicy> make_zero_delay() { return std::make_unique<ZeroDelayPolicy>(); }

std::unique_ptr<DeliveryPolicy> make_fixed_delay(Duration delay) {
  return std::make_unique<FixedDelayPolicy>(delay);
}

std::unique_ptr<DeliveryPolicy> make_max_delay() { return std::make_unique<MaxDelayPolicy>(); }

std::unique_ptr<DeliveryPolicy> make_uniform_random(std::uint64_t seed, Duration lo, Duration hi,
                                                    Duration max_delay) {
  return std::make_unique<UniformRandomPolicy>(Rng{seed}, lo, hi, max_delay);
}

std::unique_ptr<DeliveryPolicy> make_drifting_delay(core::DriftSpec spec, Duration max_delay) {
  return std::make_unique<DriftingDelayPolicy>(std::move(spec), max_delay);
}

std::unique_ptr<DeliveryPolicy> make_adversarial_batch(Duration window, Duration max_delay,
                                                       AdversarialBatchPolicy::BatchOrder order) {
  return std::make_unique<AdversarialBatchPolicy>(window, max_delay, order);
}

}  // namespace rstp::channel
