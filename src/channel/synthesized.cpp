#include "rstp/channel/synthesized.h"

#include <ostream>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::channel {

std::ostream& operator<<(std::ostream& os, const GenomeDefect& defect) {
  return os << defect.field << '[' << defect.index << "]: " << defect.reason;
}

GenomeCheck check_genome(const ScheduleGenome& genome, const core::TimingParams& params) {
  params.validate();
  GenomeCheck check;
  const auto defect = [&](std::string field, std::size_t index, std::string reason) {
    check.defects.push_back(GenomeDefect{std::move(field), index, std::move(reason)});
  };
  const auto range_reason = [](std::string_view what, Duration got, Duration lo, Duration hi) {
    std::ostringstream os;
    os << what << ' ' << got.ticks() << " outside [" << lo.ticks() << ", " << hi.ticks() << ']';
    return os.str();
  };

  if (genome.delays.empty()) {
    defect("delays", 0, "table must not be empty");
  }
  for (std::size_t i = 0; i < genome.delays.size(); ++i) {
    const Duration delay = genome.delays[i];
    if (delay < Duration{0} || delay > params.d) {
      defect("delays", i, range_reason("delay", delay, Duration{0}, params.d));
    }
  }
  if (genome.order_keys.empty()) {
    defect("order_keys", 0, "table must not be empty");
  }
  const auto check_first = [&](std::string field, Duration first) {
    if (first < Duration{0} || first > params.c2) {
      defect(std::move(field), 0, range_reason("first offset", first, Duration{0}, params.c2));
    }
  };
  check_first("t_first", genome.t_first);
  check_first("r_first", genome.r_first);
  const auto check_gaps = [&](std::string_view field, const std::vector<Duration>& gaps) {
    if (gaps.empty()) {
      defect(std::string{field}, 0, "table must not be empty");
      return;
    }
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      if (gaps[i] < params.c1 || gaps[i] > params.c2) {
        defect(std::string{field}, i, range_reason("gap", gaps[i], params.c1, params.c2));
      }
    }
  };
  check_gaps("t_gaps", genome.t_gaps);
  check_gaps("r_gaps", genome.r_gaps);
  return check;
}

void validate_genome(const ScheduleGenome& genome, const core::TimingParams& params) {
  const GenomeCheck check = check_genome(genome, params);
  if (check.ok()) return;
  std::ostringstream os;
  os << "illegal schedule genome (" << check.defects.size()
     << " defect(s)); first: " << check.defects.front();
  throw ModelError(os.str());
}

SynthesizedPolicy::SynthesizedPolicy(ScheduleGenome genome, const core::TimingParams& params)
    : genome_(std::move(genome)) {
  const GenomeCheck check = check_genome(genome_, params);
  RSTP_CHECK(check.ok(), "SynthesizedPolicy requires a legal genome (see check_genome)");
}

Delivery SynthesizedPolicy::choose(const ioa::Packet& /*packet*/, Time sent_at, Time /*deadline*/,
                                   std::uint64_t send_seq) {
  Delivery delivery;
  delivery.when = sent_at + genome_.delays[send_seq % genome_.delays.size()];
  delivery.order_key = genome_.order_keys[send_seq % genome_.order_keys.size()];
  return delivery;
}

std::unique_ptr<DeliveryPolicy> make_synthesized(ScheduleGenome genome,
                                                 const core::TimingParams& params) {
  return std::make_unique<SynthesizedPolicy>(std::move(genome), params);
}

}  // namespace rstp::channel
