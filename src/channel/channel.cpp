#include "rstp/channel/channel.h"

#include <algorithm>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::channel {

namespace {

/// Delivery order: time, then policy tie key, then send order.
[[nodiscard]] bool delivers_before(const InFlightPacket& a, const InFlightPacket& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.order_key != b.order_key) return a.order_key < b.order_key;
  return a.send_seq < b.send_seq;
}

}  // namespace

Channel::Channel(Duration max_delay, std::unique_ptr<DeliveryPolicy> policy, Duration min_delay)
    : max_delay_(max_delay), min_delay_(min_delay), policy_(std::move(policy)) {
  RSTP_CHECK(!min_delay_.is_negative(), "channel minimum delay must be non-negative");
  RSTP_CHECK_LE(min_delay_.ticks(), max_delay_.ticks(), "need min_delay <= max_delay");
  RSTP_CHECK(policy_ != nullptr, "channel requires a delivery policy");
}

void Channel::send(const ioa::Packet& packet, Time now) {
  const Time earliest = now + min_delay_;
  const Time deadline = now + max_delay_;
  const Delivery choice = policy_->choose(packet, now, deadline, send_seq_);
  if (choice.when < earliest || choice.when > deadline) {
    std::ostringstream os;
    os << "delivery policy violated the channel model: packet sent " << now
       << " scheduled for delivery " << choice.when << " outside [" << earliest << ", "
       << deadline << "]";
    throw ModelError(os.str());
  }
  InFlightPacket entry{packet, now, choice.when, choice.order_key, send_seq_};
  ++send_seq_;
  // Insert keeping the in-flight list sorted by delivery order; traffic in
  // this model is small enough that O(n) insertion is irrelevant.
  const auto pos = std::upper_bound(in_flight_.begin(), in_flight_.end(), entry, delivers_before);
  in_flight_.insert(pos, entry);
}

std::optional<Time> Channel::next_delivery_time() const {
  if (in_flight_.empty()) return std::nullopt;
  return in_flight_.front().deliver_at;
}

std::vector<InFlightPacket> Channel::collect_due(Time now) {
  const auto split = std::partition_point(
      in_flight_.begin(), in_flight_.end(),
      [now](const InFlightPacket& p) { return p.deliver_at <= now; });
  std::vector<InFlightPacket> due(in_flight_.begin(), split);
  in_flight_.erase(in_flight_.begin(), split);
  return due;
}

}  // namespace rstp::channel
