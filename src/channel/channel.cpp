#include "rstp/channel/channel.h"

#include <algorithm>
#include <sstream>

#include "rstp/common/check.h"
#include "rstp/obs/metrics.h"

namespace rstp::channel {

namespace {

/// Delivery order: time, then policy tie key, then send order.
[[nodiscard]] bool delivers_before(const InFlightPacket& a, const InFlightPacket& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.order_key != b.order_key) return a.order_key < b.order_key;
  return a.send_seq < b.send_seq;
}

/// std::push_heap/pop_heap build a max-heap w.r.t. the comparator; inverting
/// the delivery order puts the earliest delivery at the front.
[[nodiscard]] bool delivers_after(const InFlightPacket& a, const InFlightPacket& b) {
  return delivers_before(b, a);
}

}  // namespace

Channel::Channel(Duration max_delay, std::unique_ptr<DeliveryPolicy> policy, Duration min_delay)
    : max_delay_(max_delay), min_delay_(min_delay), policy_(std::move(policy)) {
  RSTP_CHECK(!min_delay_.is_negative(), "channel minimum delay must be non-negative");
  RSTP_CHECK_LE(min_delay_.ticks(), max_delay_.ticks(), "need min_delay <= max_delay");
  RSTP_CHECK(policy_ != nullptr, "channel requires a delivery policy");
}

void Channel::send(const ioa::Packet& packet, Time now) {
  const Time earliest = now + min_delay_;
  const Time deadline = now + max_delay_;

  // In-model choices go through the policy and the window check; injected
  // faults step around both deliberately and are logged instead.
  const auto choose_in_model = [&](const ioa::Packet& p) {
    const Delivery choice = policy_->choose(p, now, deadline, send_seq_);
    if (choice.when < earliest || choice.when > deadline) {
      std::ostringstream os;
      os << "delivery policy violated the channel model: packet sent " << now
         << " scheduled for delivery " << choice.when << " outside [" << earliest << ", "
         << deadline << "]";
      throw ModelError(os.str());
    }
    return choice;
  };
  const auto enqueue = [&](const ioa::Packet& p, const Delivery& choice) {
    in_flight_.push_back(InFlightPacket{p, now, choice.when, choice.order_key, send_seq_});
    std::push_heap(in_flight_.begin(), in_flight_.end(), delivers_after);
  };
  const auto log_fault = [&](fault::FaultKind kind, const ioa::Packet& injected,
                             Duration late_by = Duration{0}) {
    fault_log_.push_back(
        fault::FaultEvent{kind, send_seq_, now, packet, injected, late_by});
  };

  if (injector_ == nullptr) {
    enqueue(packet, choose_in_model(packet));
    ++send_seq_;
    return;
  }

  const fault::FaultDecision decision = injector_->decide(packet, now, deadline, send_seq_);
  ioa::Packet actual = packet;
  if (decision.corrupt_payload.has_value()) {
    actual.payload = *decision.corrupt_payload;
    log_fault(fault::FaultKind::Corrupt, actual);
  }
  if (decision.drop) {
    log_fault(fault::FaultKind::Drop, actual);
    ++send_seq_;  // dropped sends still consume a send index
    return;
  }
  if (decision.late_by.ticks() > 0) {
    RSTP_CHECK(!decision.late_by.is_negative(), "late overshoot must be positive");
    log_fault(fault::FaultKind::Late, actual, decision.late_by);
    enqueue(actual, Delivery{deadline + decision.late_by, 0});
  } else {
    enqueue(actual, choose_in_model(actual));
  }
  for (std::uint32_t copy = 0; copy < decision.duplicates; ++copy) {
    log_fault(fault::FaultKind::Duplicate, actual);
    enqueue(actual, choose_in_model(actual));
  }
  ++send_seq_;
}

std::optional<Time> Channel::next_delivery_time() const {
  if (in_flight_.empty()) return std::nullopt;
  return in_flight_.front().deliver_at;
}

const std::vector<InFlightPacket>& Channel::collect_due(Time now) {
  // Nests under the simulator's deliver phase (channel_push, its counterpart
  // on the send side, nests under sim_step).
  const obs::ScopedPhaseTimer timer{obs::Phase::ChannelPop};
  due_scratch_.clear();
  while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
    std::pop_heap(in_flight_.begin(), in_flight_.end(), delivers_after);
    due_scratch_.push_back(std::move(in_flight_.back()));
    in_flight_.pop_back();
    // Heap pops must come out in delivery order — the tie rule the simulator
    // and the §4 interleaving semantics rely on.
    RSTP_CHECK(due_scratch_.size() < 2 ||
                   !delivers_before(due_scratch_.back(), due_scratch_[due_scratch_.size() - 2]),
               "channel delivery order violated");
  }
  return due_scratch_;
}

}  // namespace rstp::channel
