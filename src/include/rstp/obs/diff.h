// Metrics diffing: the regression-gate half of `rstp report`.
//
// Two "rstp-run-metrics-v1" series are joined by cell — the run identity
// (protocol, c1, c2, d, k, input_bits, seed) plus an occurrence index for
// duplicate identities — and every per-run quantity (verdicts, counters,
// histogram count/mean/p50/p95/p99) is compared exactly: integral quantities
// diff in u64 arithmetic (sign + magnitude, so counters near 2^64 never go
// through a double), floating quantities bit-for-bit. The report carries
// only the quantities that changed per cell, plus grid-level aggregates the
// threshold gate (`--fail-on`) evaluates against.
//
// Threshold grammar (docs/OBSERVABILITY.md):
//   spec       := clause (',' clause)*
//   clause     := name ('>' | '>=') number ['%']
//   name       := an aggregate quantity ("effort_mean", "delay_p99",
//                 "cells_changed", ...); a bare counter name ("events") is
//                 shorthand for its "_total" aggregate.
// A '%' limit is relative to the old value; a bare limit is absolute. A
// clause trips only on increases — improvements never fail the gate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "rstp/obs/json.h"
#include "rstp/obs/sinks.h"

namespace rstp::obs {

/// The join key: run identity plus `rep`, the 0-based occurrence index among
/// records with the same identity in file order (so repeated seeds still
/// pair up 1:1 and a dropped repetition shows as a missing cell).
struct CellKey {
  std::string protocol;
  std::int64_t c1 = 0;
  std::int64_t c2 = 0;
  std::int64_t d = 0;
  std::uint32_t k = 2;
  std::uint64_t input_bits = 0;
  std::uint64_t seed = 0;
  std::uint64_t rep = 0;

  friend bool operator==(const CellKey&, const CellKey&) = default;
  [[nodiscard]] friend bool operator<(const CellKey& a, const CellKey& b) {
    const auto tie = [](const CellKey& x) {
      return std::tie(x.protocol, x.c1, x.c2, x.d, x.k, x.input_bits, x.seed, x.rep);
    };
    return tie(a) < tie(b);
  }
};

/// One quantity's old/new pair. Integral quantities keep the exact u64
/// values and diff as sign + magnitude; floating quantities (effort,
/// histogram means) diff as doubles. `old_v`/`new_v` mirror the integral
/// values as doubles for display and relative thresholds.
struct QuantityDelta {
  std::string name;
  bool integral = true;
  std::uint64_t old_u = 0;  ///< valid when integral
  std::uint64_t new_u = 0;  ///< valid when integral
  double old_v = 0;
  double new_v = 0;

  [[nodiscard]] bool changed() const;
  /// Exact for integral deltas below 2^53; the sign is always exact.
  [[nodiscard]] double delta() const;
  /// Relative change vs old, in percent; +/-HUGE_VAL when old == 0 and new
  /// differs, 0 when both are 0. The +HUGE_VAL convention keeps relative
  /// gates loud on a zero baseline: any regression from 0 exceeds every
  /// finite limit (and non-finite limits are rejected at parse time). A NaN
  /// input propagates to a NaN result, which evaluate_thresholds treats as a
  /// violation rather than letting NaN comparisons pass it silently.
  [[nodiscard]] double pct() const;

  friend bool operator==(const QuantityDelta&, const QuantityDelta&) = default;
};

/// A matched cell with at least one changed quantity; `deltas` holds only
/// the changed ones, in catalog order.
struct CellDiff {
  CellKey key;
  std::vector<QuantityDelta> deltas;

  friend bool operator==(const CellDiff&, const CellDiff&) = default;
};

struct DiffReport {
  std::uint64_t old_records = 0;
  std::uint64_t new_records = 0;
  std::uint64_t matched = 0;
  std::vector<CellKey> missing;      ///< cells only in the old series
  std::vector<CellKey> extra;        ///< cells only in the new series
  std::vector<CellDiff> cells;       ///< matched cells that changed, key order
  std::vector<QuantityDelta> aggregates;  ///< all aggregates, catalog order

  /// Aggregate lookup by exact name, then by name + "_total" (the bare
  /// counter shorthand); nullptr when neither exists.
  [[nodiscard]] const QuantityDelta* find_aggregate(std::string_view name) const;

  friend bool operator==(const DiffReport&, const DiffReport&) = default;
};

/// Joins and diffs two record series (typically two read_run_metrics_jsonl
/// results). Aggregates cover: per-counter "_total" sums over matched pairs,
/// "end_time_total", "effort_mean"/"effort_max", "delay_p50/p95/p99" (mean
/// over matched cells of the per-cell data-delay percentile), and the join
/// health counts "cells_changed"/"cells_missing"/"cells_extra" (old side 0).
[[nodiscard]] DiffReport diff_metrics(const std::vector<RunMetricsRecord>& old_runs,
                                      const std::vector<RunMetricsRecord>& new_runs);

/// One --fail-on clause.
struct Threshold {
  std::string quantity;
  bool inclusive = false;  ///< ">=" (trips at the limit) vs ">"
  double limit = 0;
  bool relative = false;  ///< limit is a percentage of the old value
  std::string source;     ///< the original clause text, for messages
};

/// Thrown on a malformed threshold spec or an unknown quantity name; `token`
/// is the offending clause or name.
class ThresholdParseError : public std::runtime_error {
 public:
  ThresholdParseError(const std::string& what, std::string token)
      : std::runtime_error(what), token_(std::move(token)) {}
  [[nodiscard]] const std::string& token() const { return token_; }

 private:
  std::string token_;
};

/// Parses a comma-separated threshold spec; throws ThresholdParseError on a
/// malformed clause.
[[nodiscard]] std::vector<Threshold> parse_thresholds(std::string_view spec);

struct ThresholdViolation {
  Threshold threshold;
  QuantityDelta quantity;  ///< the aggregate that tripped
  double observed = 0;     ///< the measured increase (absolute or percent)
};

/// Evaluates thresholds against the report's aggregates. Throws
/// ThresholdParseError when a clause names no aggregate. A clause trips only
/// when the quantity increased past its limit.
[[nodiscard]] std::vector<ThresholdViolation> evaluate_thresholds(
    const DiffReport& report, const std::vector<Threshold>& thresholds);

/// One JSON object ("rstp-metrics-diff-v1") on a single line; integral
/// quantities keep their exact u64 lexemes, doubles their shortest
/// round-trip form, so read_diff_json reproduces the report exactly.
void write_diff_json(std::ostream& os, const DiffReport& report);

/// Inverse of write_diff_json; throws JsonParseError on malformed input or
/// a wrong schema tag.
[[nodiscard]] DiffReport read_diff_json(std::string_view json);

/// Human-readable rendering: join summary, per-cell changed quantities, and
/// the nonzero aggregates.
void print_diff_table(std::ostream& os, const DiffReport& report);

}  // namespace rstp::obs
