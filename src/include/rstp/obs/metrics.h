// rstp::obs — the always-cheap instrumentation layer (metrics registry,
// fixed-bucket histograms, scoped phase timers).
//
// Design constraints, in order:
//   1. Deterministic merges. Campaign workers record concurrently; every
//      shard-merged quantity must be bitwise identical across thread counts.
//      All shard state is integral (counter sums and gauge maxima are
//      order-independent folds), so the merged snapshot is reproducible no
//      matter how the OS interleaved the recording threads. Wall-clock phase
//      timers are the one observational (non-reproducible) quantity; they are
//      kept out of RunMetrics and CampaignResult for exactly that reason.
//   2. No contention on the hot path. Each recording thread owns a private
//      shard (2 KiB, registered once under a mutex); add() is a thread-local
//      lookup plus a relaxed atomic increment — no shared cache line is
//      written by two threads.
//   3. Branch-cheap when idle. Phase timers are gated on one relaxed atomic
//      bool; with timing disabled (the default) an instrumented hot path
//      pays a single predictable branch and never reads the clock.
//
// Naming scheme (docs/OBSERVABILITY.md): lowercase path segments separated
// by '/', "<subsystem>/<quantity>[/<unit>]" — e.g. "campaign/jobs",
// "phase/codec_rank/ns". Registering the same name twice returns the same id.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rstp/common/check.h"
#include "rstp/common/time.h"

namespace rstp::obs {

/// Nearest-rank fold over a fixed bucket array: the index of the bucket
/// containing the rank-⌈p/100·count⌉ observation (rank clamped into
/// [1, count]; p clamped into [0, 100]). The one percentile kernel shared by
/// Histogram::percentile, the dashboard's display fold, and the trace
/// summary — callers map the returned index to their own value domain.
/// Degenerate folds are part of the contract, not UB: an empty fold
/// (count == 0 or size == 0) returns bucket 0, and when `count` exceeds the
/// bucket sum — possible only for the dashboard's relaxed-atomic fold, where
/// the count and the buckets are read at slightly different moments — the
/// scan runs dry and clamps to the last bucket (size - 1). Coherent callers
/// pass count == Σ buckets and never hit the clamp.
[[nodiscard]] std::size_t nearest_rank_bucket(const std::uint64_t* buckets, std::size_t size,
                                              std::uint64_t count, double p);

/// A fixed-bucket linear histogram over int64 values with exact count / sum /
/// min / max and nearest-rank percentiles.
///
/// Buckets are linear over the configured [lo, hi] window: width
/// ceil(span / max_buckets). Out-of-window values clamp into the edge buckets
/// (min()/max() still report the true extremes), so record() can never
/// allocate or fail. With width 1 — the common case: delays live in [0, d],
/// gaps in [0, c2] — percentiles are exact; wider buckets report the bucket's
/// upper edge (classic nearest-rank-on-buckets).
class Histogram {
 public:
  /// Unconfigured (no buckets); record() on it is a contract violation.
  /// Exists so metric structs can be default-constructed then assigned.
  Histogram() = default;

  /// Linear buckets covering [lo, hi] with at most `max_buckets` buckets.
  Histogram(std::int64_t lo, std::int64_t hi, std::size_t max_buckets = 64);

  /// Rebuilds a histogram from its serialized parts (the JSONL sink's exact
  /// round trip). Throws ContractViolation when the parts are inconsistent
  /// (bucket counts must sum to `count`).
  [[nodiscard]] static Histogram from_parts(std::int64_t lo, std::int64_t width,
                                            std::vector<std::uint64_t> buckets,
                                            std::uint64_t count, std::int64_t sum,
                                            std::int64_t min, std::int64_t max);

  [[nodiscard]] bool configured() const { return !buckets_.empty(); }

  /// Inline: this runs once per simulation event on the campaign hot path.
  void record(std::int64_t value) {
    RSTP_CHECK(configured(), "record() on an unconfigured histogram");
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
    std::size_t index = 0;
    if (value > lo_) {
      const auto offset = static_cast<std::uint64_t>(value - lo_);
      // Width 1 is the common (exact) layout; skip the integer divide for it.
      const std::uint64_t raw =
          width_ == 1 ? offset : offset / static_cast<std::uint64_t>(width_);
      index = std::min(buckets_.size() - 1, static_cast<std::size_t>(raw));
    }
    ++buckets_[index];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  /// True extremes of recorded values (0 when empty).
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const;

  /// Nearest-rank percentile, p in [0, 100]; 0 when empty. p50/p95/p99 are
  /// the conventional calls. Exact when bucket width is 1.
  [[nodiscard]] std::int64_t percentile(double p) const;

  [[nodiscard]] std::int64_t lower_bound() const { return lo_; }
  [[nodiscard]] std::int64_t bucket_width() const { return width_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Adds another histogram's contents; both must share one bucket layout.
  void merge(const Histogram& other);

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::int64_t lo_ = 0;
  std::int64_t width_ = 1;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> buckets_;
};

/// Named counters and gauges recorded through lock-free thread-local shards.
///
/// Counters accumulate (merge = sum); gauges track a high-water mark
/// (merge = max). Both folds are order-independent over the integral shard
/// slots, so collect() is deterministic for any thread interleaving.
///
/// The registry must outlive every thread that records into it; shards are
/// owned by the registry and TLS entries are keyed by a never-reused registry
/// id, so a dangling lookup after destruction is impossible by construction.
class MetricsRegistry {
 public:
  using MetricId = std::size_t;

  /// Per-shard slot capacity; registering more metrics than this throws.
  /// Sized for the flat phase totals plus the realized parent/child edge
  /// counters of the nested timers with ample headroom (4 KiB per shard).
  static constexpr std::size_t kMaxMetrics = 512;

  MetricsRegistry();
  ~MetricsRegistry();  // out of line: Shard is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a counter / gauge by name.
  [[nodiscard]] MetricId counter(std::string_view name);
  [[nodiscard]] MetricId gauge(std::string_view name);

  /// Adds `delta` to a counter in this thread's shard. Lock-free after the
  /// thread's first touch of this registry.
  void add(MetricId id, std::uint64_t delta = 1);

  /// Raises this thread's shard slot to at least `value` (gauge high-water).
  void gauge_max(MetricId id, std::uint64_t value);

  struct Sample {
    std::string name;
    bool is_gauge = false;
    std::uint64_t value = 0;

    friend bool operator==(const Sample&, const Sample&) = default;
  };

  /// Merged view over all shards, in registration order (deterministic).
  [[nodiscard]] std::vector<Sample> collect() const;

  /// Merged value of one metric.
  [[nodiscard]] std::uint64_t value(MetricId id) const;

  /// This thread's raw slot array (kMaxMetrics relaxed atomics, indexed by
  /// MetricId). Implementation detail for the phase-timer exit path, which
  /// batches several increments through a single thread-local lookup; all
  /// other callers should use add()/gauge_max().
  [[nodiscard]] std::atomic<std::uint64_t>* thread_slots();

  /// Zeroes every shard slot (the metric names stay registered).
  void reset();

 private:
  struct Shard;
  Shard& shard_for_this_thread();

  std::uint64_t registry_id_;  // never reused; guards TLS cache validity
  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<bool> is_gauge_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The process-wide registry used by the built-in instrumentation (phase
/// timers, campaign counters). Lives until process exit.
[[nodiscard]] MetricsRegistry& global_registry();

// ---------------------------------------------------------------------------
// Scoped wall-clock phase timers for the simulation hot paths.
//
// Timers nest: each recording thread keeps a stack of active phases, and a
// timer's elapsed time is recorded twice — once under its own flat
// "phase/<name>/{calls,ns}" totals (the original four-phase layout is a
// strict subset of these), and once under the parent/child edge
// "phase/<parent>/<child>/{calls,ns}" for the innermost enclosing phase, if
// any. The edge counters are what lets `rstp run --timing` render a
// flamegraph-style breakdown (sim step → protocol apply → codec rank) and
// the diff gate localize which phase regressed.

enum class Phase : std::uint8_t {
  CodecRank = 0,   ///< MultisetCodec::rank
  CodecUnrank,     ///< MultisetCodec::unrank
  ChannelPop,      ///< Channel::collect_due
  SimStep,         ///< Simulator::take_process_step (incl. scheduler gap)
  ProtoEnabled,    ///< automaton enabled_local() inside a sim step
  ProtoApply,      ///< automaton apply() of a locally chosen action
  ProtoRecv,       ///< automaton apply() of a delivered packet
  SchedGap,        ///< StepScheduler gap validation
  RecordEvent,     ///< event bookkeeping (counters, optional trace append)
  Deliver,         ///< Simulator::deliver_due (channel pop + recv applies)
  ChannelPush,     ///< Channel::send (delivery policy + heap push)
  StepAccount,     ///< per-step/per-delivery counter + histogram bookkeeping
};
inline constexpr std::size_t kPhaseCount = 12;

[[nodiscard]] std::string_view to_string(Phase phase);

/// Phase timing is off by default: instrumented code pays one relaxed atomic
/// load and never touches the clock. Enable around a region of interest
/// (e.g. `rstp run --timing`, `rstp bench`). Enabling also calibrates the
/// host clock (common/time.h), so timestamps come from the TSC when the CPU
/// supports it.
void set_phase_timing_enabled(bool enabled);
[[nodiscard]] bool phase_timing_enabled();

/// Measures the cost of one armed ScopedPhaseTimer enter/exit pair (two clock
/// reads plus the stack and registry bookkeeping) by timing a tight loop of
/// empty timers, min-of-trials to filter preemption. The result is stored
/// process-wide, published as the "phase/_overhead/ns_per_pair" gauge in the
/// global registry (and re-published across reset_phase_totals), and returned.
/// The calibration loop itself records into the phase counters — call
/// reset_phase_totals() afterwards, before the workload you want attributed.
/// Temporarily enables phase timing if it is off.
std::uint64_t measure_phase_overhead_ns_per_pair();

/// The last measured timer-pair overhead (0 before any measurement). What
/// `rstp run --timing` subtracts to print net-of-overhead attribution.
[[nodiscard]] std::uint64_t phase_overhead_ns_per_pair();

struct PhaseTotal {
  Phase phase{};
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;
};

/// Merged "phase/<name>/{calls,ns}" counters from the global registry.
[[nodiscard]] std::vector<PhaseTotal> collect_phase_totals();

/// One parent→child attribution: time the child phase spent directly inside
/// the parent. Edges aggregate over every instance of the pair, so a child's
/// flat total minus the sum of its incoming edges is its top-level time.
struct PhaseEdgeTotal {
  Phase parent{};
  Phase child{};
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;
};

/// Merged "phase/<parent>/<child>/{calls,ns}" counters, in (parent, child)
/// enum order; only edges that actually occurred are returned.
[[nodiscard]] std::vector<PhaseEdgeTotal> collect_phase_edge_totals();

/// Zeroes the phase counters (global registry reset of the phase slots only
/// is not supported; this resets the whole global registry).
void reset_phase_totals();

namespace detail {
/// Hot-path gate for ScopedPhaseTimer. Mutate only through
/// set_phase_timing_enabled(); read with relaxed ordering.
extern std::atomic<bool> phase_timing_flag;
/// Monotonic clock read — the calibrated host clock (TSC when available,
/// steady_clock otherwise; see common/time.h). Inline so the timer ctor reads
/// it directly, before any other instrumentation work — everything the
/// machinery does then falls inside the measured interval and is attributed
/// to the phase it measures, not smeared into the enclosing phase's self time.
[[nodiscard]] inline std::uint64_t phase_now_ns() { return rstp::host_now_ns(); }
/// Pushes `phase` on this thread's phase stack.
void phase_push(Phase phase);
/// Pops the stack and records the elapsed time: the call count plus either
/// the parent/child edge (when nested) or the phase's top-level slot. After
/// its own clock read it performs exactly one relaxed add, so per-timer
/// cost outside the measured interval stays a few nanoseconds.
void phase_exit(Phase phase, std::uint64_t start_ns);
}  // namespace detail

/// RAII timer: records one call + elapsed nanoseconds into the global
/// registry when phase timing is enabled (both the flat per-phase totals and
/// the parent/child edge for the enclosing timer); a no-op branch otherwise.
/// Inline so the disabled path (the default on the simulation hot paths)
/// compiles down to one relaxed load and a predictable branch — no call, no
/// clock read, no stack traffic.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase)
      : phase_(phase),
        armed_(detail::phase_timing_flag.load(std::memory_order_relaxed)) {
    if (armed_) {
      start_ns_ = detail::phase_now_ns();
      detail::phase_push(phase_);
    }
  }
  ~ScopedPhaseTimer() {
    if (armed_) detail::phase_exit(phase_, start_ns_);
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Phase phase_;
  bool armed_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace rstp::obs
