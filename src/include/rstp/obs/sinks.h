// Metric sinks: the JSONL writer/reader (`--metrics-out`, `rstp report`) and
// the human-readable table formatters.
//
// One JSONL line per run ("rstp-run-metrics-v1"): identity (protocol, timing,
// k, input size, seed), the verdicts a reader filters on (correct, quiescent,
// effort), the full RunCounters, and each histogram serialized exactly
// (bucket layout + counts + extremes), so read-after-write reproduces the
// in-memory RunMetrics bit for bit. Percentiles are re-derived on read, never
// trusted from the file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rstp/obs/metrics.h"
#include "rstp/obs/run_metrics.h"

namespace rstp::obs {

/// One exported run: enough identity to interpret the row without the
/// invocation at hand, plus the metric snapshot itself.
struct RunMetricsRecord {
  std::string protocol;
  std::int64_t c1 = 0;
  std::int64_t c2 = 0;
  std::int64_t d = 0;
  std::uint32_t k = 2;
  std::uint64_t input_bits = 0;
  std::uint64_t seed = 0;      ///< environment seed (0 for deterministic runs)
  double effort = 0;           ///< t(last-send)/n ticks per bit; 0 if nothing sent
  /// Empirical effort / the matching theoretical lower bound (Theorem 5.3
  /// for r-passive protocols, 5.6 for active ones). 0 when not applicable
  /// (plain runs, fuzz cases) — absent in old JSONL files, which read back
  /// as 0, keeping checked-in baselines parseable.
  double gap_ratio = 0;
  /// Estimator cells only (est/runner.h): effort_est / effort_oracle for the
  /// paired run, plus the estimated run's final gauges. 0 elsewhere — and in
  /// pre-estimator JSONL files, which read back as zeros like gap_ratio.
  double est_penalty = 0;
  EstimatorGauges est{};
  /// Multiplexed rows only (sim/multi_session.h): the number of sessions
  /// folded into this record and the sustained simulated-events-per-second
  /// throughput of the run that produced it. 0 on single-session rows — and
  /// in pre-megasession JSONL files, which read back as 0 like gap_ratio.
  /// events_per_sec is wall-clock (machine-dependent): it never becomes a
  /// per-record diff cell, only the report aggregates consume it.
  std::uint64_t sessions = 0;
  double events_per_sec = 0;
  std::int64_t end_time = 0;   ///< simulated time of the last event, ticks
  bool correct = false;
  bool quiescent = false;
  RunMetrics metrics;

  friend bool operator==(const RunMetricsRecord&, const RunMetricsRecord&) = default;
};

/// Appends one record as a single JSON object line ("rstp-run-metrics-v1").
void write_run_metrics_jsonl(std::ostream& os, const RunMetricsRecord& record);

/// Reads every line of a JSONL stream written by write_run_metrics_jsonl.
/// Blank lines are skipped; malformed lines or a wrong schema tag throw
/// JsonParseError naming the offending line number.
[[nodiscard]] std::vector<RunMetricsRecord> read_run_metrics_jsonl(std::istream& is);

/// Renders records as a fixed-width table (one row per run) followed by a
/// totals line folding the integral counters over all rows.
void print_metrics_table(std::ostream& os, const std::vector<RunMetricsRecord>& records);

/// Renders the wall-clock phase-timer totals (per-phase calls, total and
/// mean time) as a small table. A nonzero `overhead_ns_per_pair` (the
/// measured cost of one enter/exit pair, see
/// obs::measure_phase_overhead_ns_per_pair) adds a net_ns column: the mean
/// with `overhead` subtracted per call, floored at zero.
void print_phase_table(std::ostream& os, const std::vector<PhaseTotal>& totals,
                       std::uint64_t overhead_ns_per_pair = 0);

/// Renders the nested parent/child attribution as an indented tree: roots
/// are phases never observed inside another phase (plus the top-level
/// residual of phases that occur both ways), children show their share of
/// the parent, and a "(self)" line holds whatever a parent did not attribute
/// to any child. Recursion stops at children shared by several parents,
/// where a one-level edge cannot split the subtree exactly.
void print_phase_tree(std::ostream& os, const std::vector<PhaseTotal>& totals,
                      const std::vector<PhaseEdgeTotal>& edges);

}  // namespace rstp::obs
