// Live terminal dashboard for long campaigns and fuzz hunts.
//
// The dashboard is a pure *display reader*: simulation code publishes
// display-only snapshots (sim::CampaignSnapshot, sim::FuzzGenerationSnapshot)
// through progress hooks, the CLI converts them into a DashboardState, and
// `render_frame` turns that state into one ANSI frame. Nothing in here can
// feed back into a result — campaign and fuzz outputs stay bitwise identical
// with the dashboard on or off (tests/dashboard_test.cpp pins it).
//
// Split so every layer is testable without a terminal:
//   * render_frame(state) -> string   pure; golden-frame snapshot tests
//   * render_line(state)  -> string   pure; the piped / NO_COLOR fallback,
//                                     guaranteed free of escape bytes
//   * Dashboard                       the only stateful part: erases the
//                                     previous frame with cursor movement
//                                     codes and writes the next one
//   * stream_supports_dashboard      the TTY / NO_COLOR / TERM=dumb gate
#pragma once

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace rstp::obs {

/// One per-protocol row of a campaign dashboard.
struct DashboardProtocolRow {
  std::string name;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t events = 0;
  /// Rolling mean effort over this protocol's finished jobs that sent at
  /// least once; 0 while no such job has finished.
  double effort_mean = 0;
  std::uint64_t effort_jobs = 0;
};

/// Everything one frame renders. A pure value: equal states render equal
/// frames, which is what makes golden-frame tests possible.
struct DashboardState {
  enum class Mode { Campaign, Fuzz };
  Mode mode = Mode::Campaign;
  /// Emit ANSI color/bold sequences. Frames still use cursor movement when
  /// drawn through Dashboard; with color=false render_frame itself contains
  /// no escape bytes at all.
  bool color = true;
  /// Header label ("campaign", "fuzz beta"); the mode name when empty.
  std::string label;
  double elapsed_seconds = 0;
  std::uint64_t done = 0;   ///< jobs (campaign) or executed cases (fuzz)
  std::uint64_t total = 0;  ///< grid size (campaign) or budget (fuzz)

  // Campaign-mode fields.
  std::uint64_t events = 0;
  double effort_mean = 0;  ///< rolling mean over jobs that sent; see rows
  std::uint64_t effort_jobs = 0;
  std::vector<DashboardProtocolRow> protocols;
  /// Display-only data-delay distribution: bucket i counts deliveries with
  /// delay i ticks, last bucket clamps. Feeds the rolling p50/p95/p99.
  std::vector<std::uint64_t> delay_buckets;
  std::uint64_t delay_count = 0;

  // Fuzz-mode fields.
  std::uint64_t generation = 0;
  std::uint64_t corpus = 0;
  std::uint64_t coverage = 0;       ///< distinct fingerprints so far
  std::uint64_t coverage_gain = 0;  ///< new fingerprints in the last generation
  std::uint64_t crashes = 0;
  std::uint64_t failures = 0;
};

/// Nearest-rank percentile over clamped 1-tick display buckets (the value of
/// bucket i is i); 0 when count == 0. p in [0, 100].
[[nodiscard]] std::int64_t delay_percentile(const std::vector<std::uint64_t>& buckets,
                                            std::uint64_t count, double p);

/// Renders one multi-line frame (every line '\n'-terminated). Pure: no
/// cursor movement, no clock, no global state — only SGR color codes, and
/// none at all when state.color is false.
[[nodiscard]] std::string render_frame(const DashboardState& state);

/// The one-line fallback for piped output: same numbers, no escape bytes
/// ever. Campaign mode mirrors the historical monitor line shape; fuzz mode
/// is one line per generation.
[[nodiscard]] std::string render_line(const DashboardState& state);

/// True when `stream` should get live ANSI frames: it is a terminal
/// (isatty), NO_COLOR is unset, and TERM is neither empty nor "dumb".
[[nodiscard]] bool stream_supports_dashboard(std::FILE* stream);

/// The stateful redraw wrapper: remembers how many lines the previous frame
/// used and rewinds the cursor over them before writing the next frame, so
/// the dashboard repaints in place. close() restores the cursor; it is safe
/// to call with no frame drawn (then it writes nothing).
class Dashboard {
 public:
  explicit Dashboard(std::ostream& os) : os_(&os) {}

  /// Erases the previous frame (if any) and writes render_frame(state).
  void draw(const DashboardState& state);

  /// Leaves the last frame on screen and re-shows the cursor.
  void close();

  [[nodiscard]] std::size_t last_frame_lines() const { return last_lines_; }

 private:
  std::ostream* os_;
  std::size_t last_lines_ = 0;
  bool cursor_hidden_ = false;
};

}  // namespace rstp::obs
