// rstp::obs::trace — a causal span tracer with Chrome-trace/Perfetto export.
//
// Where metrics (metrics.h, run_metrics.h) aggregate, the tracer keeps the
// *timeline*: one record per interesting thing that happened, in two clock
// domains that never mix:
//
//   * model time — integral ticks on the simulated execution. Protocol
//     lifecycle spans (block encode, idle gaps, decode, ack rounds), one
//     in-flight span per packet on the channel track, and packet-lineage
//     flow events linking each send → fault decision → delivery. Pure
//     functions of the execution: a fixed seed yields a byte-identical
//     export.
//   * host time — calibrated wall-clock nanoseconds (common/time.h). Phase
//     timer enter/exit pairs become profiling spans when a Tracer's host
//     hook is attached and phase timing is enabled.
//
// Recording is strictly opt-in and bitwise-invisible: every hook is a pure
// reader of simulation state, so results with tracing on/off and across
// thread counts stay identical (pinned by tests/trace_test.cpp). Buffers are
// preallocated at construction — the hot path is a bounds check and a POD
// copy, never an allocation; overflow increments a drop counter instead.
//
// The exporter writes Chrome Trace Event Format JSON (schema rstp-trace-v1)
// that opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
// ph "X" complete spans, ph "s"/"f" flows, pid = actor (1 transmitter,
// 2 channel, 3 receiver, 100 host), tid = session for the process tracks,
// swimlane for the channel's overlapping in-flight spans. Model ticks are
// rendered 1 tick = 1 µs; host spans are rebased to the first span.
// See docs/OBSERVABILITY.md § Tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "rstp/common/time.h"
#include "rstp/fault/fault.h"
#include "rstp/ioa/action.h"
#include "rstp/obs/metrics.h"
#include "rstp/obs/run_metrics.h"

namespace rstp::obs::trace {

/// Statically interned event names. The exporter maps these to fixed strings,
/// so a trace file for a fixed seed is byte-stable (the golden test pins it).
enum class Name : std::uint8_t {
  Send = 0,     ///< a process's send step (dur-0 span, carries the flow start)
  Recv,         ///< a delivery applied to its destination (carries the flow finish)
  Write,        ///< receiver output-tape append
  Idle,         ///< folded stretch of consecutive internal (wait/idle) steps
  BlockEncode,  ///< transmitter: first send of a block → blocks_encoded increment
  BlockDecode,  ///< receiver: blocks_decoded increment
  AckRound,     ///< receiver: acks_sent increment
  PktData,      ///< t→r packet: channel in-flight span + its flow pair
  PktAck,       ///< r→t packet: channel in-flight span + its flow pair
  FaultDrop,
  FaultDuplicate,
  FaultLate,
  FaultCorrupt,
};
[[nodiscard]] std::string_view to_string(Name name);

/// The Chrome "process" a record renders under (pid = actor).
enum class Track : std::uint8_t { Transmitter = 0, Channel, Receiver, Host };

enum class RecKind : std::uint8_t {
  ModelSpan,   ///< ph "X" in model ticks
  FlowStart,   ///< ph "s" at the send span
  FlowFinish,  ///< ph "f" (bp "e") at the recv span
  HostSpan,    ///< ph "X" in host nanoseconds (arg = Phase index)
};

/// One fixed-size trace record, either domain. POD so Buffer::append is a
/// copy.
struct Record {
  std::int64_t start = 0;      ///< model ticks, or host ns
  std::int64_t dur = 0;
  std::uint64_t flow_id = 0;   ///< packet lineage id = channel send_seq
  std::uint64_t arg = 0;       ///< payload (model) or Phase index (host)
  RecKind kind = RecKind::ModelSpan;
  Name name = Name::Send;
  Track track = Track::Transmitter;
  std::uint8_t lane = 0;       ///< channel swimlane / kFaultLane
  bool has_flow = false;       ///< flow_id is a real send_seq (seq 0 is valid)
  std::uint32_t session = 0;   ///< Chrome tid of the process tracks
};

/// The channel tid reserved for fault-decision markers (in-flight swimlanes
/// count up from 0 and are capped well below this).
inline constexpr std::uint8_t kFaultLane = 255;

struct TraceConfig {
  /// Record capacity of the model buffer and of each per-thread host buffer.
  /// Overflow drops records (counted), never allocates or blocks.
  std::size_t capacity = 1 << 16;
};

/// A single-writer preallocated record buffer. append() never allocates:
/// past capacity it counts the drop and returns. The drop counter is atomic
/// only so the exporter may read it while a recording thread still owns the
/// buffer.
class Buffer {
 public:
  explicit Buffer(std::size_t capacity);

  void append(const Record& rec) {
    if (records_.size() < capacity_) {
      records_.push_back(rec);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_;
  std::vector<Record> records_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Owns every buffer of one tracing session: the model buffer (written by the
/// simulator through a ModelRecorder) plus one host buffer per recording
/// thread (written by the phase-exit hook while attached). Create it, run,
/// then export; the Tracer must outlive any Simulator or instrumented code
/// recording into it.
class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});
  ~Tracer();  // detaches the host hook if still attached
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] Buffer& model_buffer() { return model_; }
  [[nodiscard]] const Buffer& model_buffer() const { return model_; }

  /// Arms the global phase-exit hook: while attached (and phase timing is
  /// enabled), every timer pair also lands here as a host span. At most one
  /// Tracer may be attached process-wide. Detach (or destroy the Tracer)
  /// only when no instrumented code can still be running.
  void attach_host_hook();
  void detach_host_hook();

  /// Total records dropped across all buffers (0 means the trace is complete).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Host spans recorded so far, summed over all per-thread buffers.
  [[nodiscard]] std::uint64_t host_span_count() const;

  /// Serializes everything recorded so far as Chrome Trace Event Format JSON
  /// (schema rstp-trace-v1). Deterministic for a fixed model record stream.
  void write_chrome_json(std::ostream& os) const;

  /// This thread's host buffer (phase-exit hook plumbing; registers the
  /// buffer on first touch, O(1) afterwards via a TLS cache).
  [[nodiscard]] Buffer& host_buffer_for_this_thread();

 private:
  TraceConfig config_;
  std::uint64_t tracer_id_;  ///< never reused; keys the TLS buffer cache
  Buffer model_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> host_buffers_;
  bool attached_ = false;
};

/// Aggregates a recorded trace for one-line CLI reporting; delay percentiles
/// use the shared nearest-rank fold over a fixed 64-bucket display window
/// (bucket i = i ticks, clamped), matching the campaign dashboard.
struct Summary {
  std::uint64_t model_spans = 0;
  std::uint64_t flow_events = 0;
  std::uint64_t host_spans = 0;
  std::uint64_t dropped = 0;
  std::uint64_t data_delivered = 0;  ///< in-flight t→r spans (delay samples)
  std::int64_t delay_p50 = 0;
  std::int64_t delay_p95 = 0;
  std::int64_t delay_p99 = 0;
};
[[nodiscard]] Summary summarize(const Tracer& tracer);

/// Derives the protocol-lifecycle span stream from one simulation. Owned by
/// the caller (one per run) and driven by sim::Simulator at its existing
/// record points. A pure observer: it reads event fields and protocol
/// counters, never touches simulation state, so arming it cannot change any
/// result bit.
class ModelRecorder {
 public:
  explicit ModelRecorder(Tracer& tracer, std::uint32_t session = 0);

  /// A local step the automaton just applied (counters already advanced).
  void on_local_step(ioa::ProcessId id, Time at, const ioa::Action& action,
                     const ProtocolCounters* counters);
  /// A send accepted this step. `entered_channel` is false when the
  /// simulator's own drop_every_nth discarded it (no send_seq, no flow).
  void on_send(ioa::ProcessId id, Time at, const ioa::Packet& packet, std::uint64_t send_seq,
               bool entered_channel);
  /// A delivery just applied to its destination.
  void on_delivery(ioa::ProcessId dest, Time sent_at, Time deliver_at,
                   const ioa::Packet& packet, std::uint64_t send_seq,
                   const ProtocolCounters* dest_counters);
  /// End of run: flushes open idle/block spans and emits fault markers.
  void on_finish(Time end, const std::vector<fault::FaultEvent>& faults);

 private:
  struct ProcessTrack {
    bool idle_open = false;
    std::int64_t idle_start = 0;
    std::int64_t idle_last = 0;
    ProtocolCounters prev{};
  };

  void close_idle(ProcessTrack& track, Track where);
  void note_counters(ioa::ProcessId id, std::int64_t at, const ProtocolCounters* counters);
  [[nodiscard]] std::uint8_t assign_lane(std::int64_t sent_at, std::int64_t deliver_at);

  Tracer* tracer_;
  Buffer* buffer_;
  std::uint32_t session_;
  ProcessTrack tracks_[2];  ///< indexed by ProcessId
  bool block_open_ = false;
  std::int64_t block_start_ = 0;
  std::vector<std::int64_t> lane_busy_until_;  ///< preallocated swimlanes
};

namespace detail {
/// The attached host-span sink (null when none). The phase-exit hook reads it
/// with one relaxed load; see Tracer::attach_host_hook.
extern std::atomic<Tracer*> host_sink;
void record_host_span(Phase phase, std::uint64_t start_ns, std::uint64_t end_ns);
}  // namespace detail

}  // namespace rstp::obs::trace
