// A minimal JSON reader for the obs sinks (`rstp report` parsing its own
// JSONL output). Deliberately small: full JSON grammar, DOM-style values,
// no streaming, no external dependencies. Numbers keep their raw lexeme so
// 64-bit identities (seeds, counters) survive round trips that a
// double-only representation would corrupt.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rstp/common/check.h"

namespace rstp::obs {

/// Thrown on malformed JSON input (a data error, not a contract violation).
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  std::string text;  ///< String contents, or a Number's raw lexeme
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Numeric conversions; throw JsonParseError when the value is not a
  /// number of the requested shape.
  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::int64_t to_i64() const;
  [[nodiscard]] std::uint64_t to_u64() const;

  /// Convenience typed member readers with defaults for absent keys.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] std::int64_t i64_or(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parses one complete JSON document; throws JsonParseError with a byte
/// offset on malformed input (including trailing garbage).
[[nodiscard]] JsonValue parse_json(std::string_view input);

/// Escapes a string for embedding in a JSON document (adds the quotes).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest decimal form of a double that round-trips exactly through
/// to_double() (std::to_chars shortest / std::from_chars).
[[nodiscard]] std::string json_number(double value);

}  // namespace rstp::obs
