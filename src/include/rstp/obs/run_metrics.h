// Structured per-run metrics: the compact, deterministic snapshot every
// simulation produces even when trace recording is off.
//
// Where a TimedTrace is the full event log (memory proportional to the run)
// and core::TraceStats a post-hoc pass over it, RunMetrics is accumulated
// *during* the run at O(1) memory: per-direction send/recv/drop counters,
// per-process step and internal-step counts, the protocol automata's own
// counters (reported uniformly through CounterSource), and fixed-bucket
// delay/gap histograms with nearest-rank percentiles. Everything in here is
// a pure function of the simulated execution — no wall-clock quantities —
// so campaign results carrying RunMetrics stay bitwise identical across
// thread counts.
#pragma once

#include <cstdint>

#include "rstp/obs/metrics.h"

namespace rstp::obs {

/// Counters every protocol automaton reports uniformly (the ProtocolBase
/// stat-hook). Protocols without a notion of blocks or acks leave the
/// irrelevant fields at zero; retransmissions stay zero for the paper's
/// protocols (the channel is lossless) and exist for fault-tolerant
/// variants and the drop-injection harness.
struct ProtocolCounters {
  std::uint64_t blocks_encoded = 0;   ///< transmitter: blocks fully sent
  std::uint64_t blocks_decoded = 0;   ///< receiver: blocks decoded to bits
  std::uint64_t acks_sent = 0;        ///< receiver: ack packets emitted
  std::uint64_t acks_observed = 0;    ///< transmitter: ack packets consumed
  std::uint64_t retransmissions = 0;  ///< re-sends of already-sent payload

  ProtocolCounters& operator+=(const ProtocolCounters& rhs) {
    blocks_encoded += rhs.blocks_encoded;
    blocks_decoded += rhs.blocks_decoded;
    acks_sent += rhs.acks_sent;
    acks_observed += rhs.acks_observed;
    retransmissions += rhs.retransmissions;
    return *this;
  }

  friend bool operator==(const ProtocolCounters&, const ProtocolCounters&) = default;
};

/// Implemented by automata that expose ProtocolCounters (protocols::
/// TransmitterBase / ReceiverBase). The simulator discovers it by
/// dynamic_cast, so automata outside the protocol hierarchy keep working
/// with zero protocol counters.
class CounterSource {
 public:
  virtual ~CounterSource() = default;
  [[nodiscard]] virtual const ProtocolCounters& protocol_counters() const = 0;
};

/// The integral (histogram-free) half of RunMetrics. Mergeable across runs
/// with any parameters; the campaign's whole-grid totals are a fold of
/// these in job order.
struct RunCounters {
  std::uint64_t events = 0;           ///< applied actions (all kinds)
  std::uint64_t data_sends = 0;       ///< t→r send events
  std::uint64_t ack_sends = 0;        ///< r→t send events
  std::uint64_t data_recvs = 0;       ///< t→r deliveries
  std::uint64_t ack_recvs = 0;        ///< r→t deliveries
  std::uint64_t dropped = 0;          ///< fault-injected losses
  std::uint64_t writes = 0;           ///< output-tape appends
  std::uint64_t transmitter_steps = 0;
  std::uint64_t receiver_steps = 0;
  std::uint64_t transmitter_internal_steps = 0;  ///< wait_t / idle_t
  std::uint64_t receiver_internal_steps = 0;     ///< idle_r
  ProtocolCounters protocol;

  RunCounters& operator+=(const RunCounters& rhs) {
    events += rhs.events;
    data_sends += rhs.data_sends;
    ack_sends += rhs.ack_sends;
    data_recvs += rhs.data_recvs;
    ack_recvs += rhs.ack_recvs;
    dropped += rhs.dropped;
    writes += rhs.writes;
    transmitter_steps += rhs.transmitter_steps;
    receiver_steps += rhs.receiver_steps;
    transmitter_internal_steps += rhs.transmitter_internal_steps;
    receiver_internal_steps += rhs.receiver_internal_steps;
    protocol += rhs.protocol;
    return *this;
  }

  friend bool operator==(const RunCounters&, const RunCounters&) = default;
};

/// Final-state gauges of the online timing estimator (rstp::est), copied out
/// of a run when `--estimator` is active and left all-zero otherwise. Lives
/// here (not in est/) so the obs sinks and diff layers can carry it without
/// depending on the estimator module; est::EstimatorStats is an alias.
struct EstimatorGauges {
  std::int64_t c1_hat = 0;         ///< final ĉ1 estimate, ticks
  std::int64_t c2_hat = 0;         ///< final ĉ2 estimate, ticks
  std::int64_t d_hat = 0;          ///< final d̂ estimate, ticks
  std::uint64_t gap_samples = 0;   ///< step-gap observations consumed
  std::uint64_t delay_samples = 0; ///< send→delivery observations consumed
  std::uint64_t resizes = 0;       ///< block-boundary δ changes

  friend bool operator==(const EstimatorGauges&, const EstimatorGauges&) = default;
};

/// One run's full metric snapshot. Histogram windows come from the model
/// parameters (delays in [0, d], step gaps in [0, c2]), so two runs with the
/// same TimingParams have mergeable histograms.
struct RunMetrics {
  RunCounters counters;
  Histogram data_delay;       ///< t→r delivery delay, ticks
  Histogram ack_delay;        ///< r→t delivery delay, ticks
  Histogram transmitter_gap;  ///< gap between consecutive A_t steps, ticks
  Histogram receiver_gap;     ///< gap between consecutive A_r steps, ticks

  friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

}  // namespace rstp::obs
