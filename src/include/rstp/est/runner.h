// Estimator-aware run drivers: the est-layer mirror of core::run_protocol.
//
// run_estimated() builds the same simulator stack as core::run_protocol but
// optionally (a) replaces the environment's schedulers/delivery policy with a
// core::DriftSpec-driven pair — scripted mid-run breakpoints, clamped so the
// execution stays in good(A) for the envelope — and (b) threads a
// TimingEstimator + BlockPlanner through ProtocolConfig so A^β/A^γ re-plan
// block sizes from live (ĉ1, ĉ2, d̂) estimates.
//
// run_penalty_pair() runs a cell twice in the SAME environment — once with
// the oracle constants, once estimator-driven — and reports
// est_penalty = effort_est / effort_oracle, the quantity the golden grid and
// the diff gate track (`--fail-on 'est_penalty_max>5%'`). Note the penalty
// can legitimately be below 1: under a SlowFixed environment ĉ1 converges to
// the realized gap c2, which legally shrinks β's timed blocks relative to the
// worst-case oracle plan.
//
// Seed-stream parity: run_estimated always draws the three per-run seeds
// (transmitter scheduler, receiver scheduler, delivery policy) in exactly
// core::run_protocol's order, even when a drifting spec ignores them, so the
// oracle and estimated halves of a pair — and drifting and stationary cells
// sharing a campaign seed — consume env.seed identically.
#pragma once

#include <cstdint>

#include "rstp/core/drift.h"
#include "rstp/core/effort.h"
#include "rstp/est/estimator.h"
#include "rstp/sim/campaign.h"

namespace rstp::est {

/// One estimator-aware run: the protocol outcome plus the estimator's final
/// gauges (zero when the estimator was disabled).
struct EstimatedRun {
  core::ProtocolRun run;
  obs::EstimatorGauges gauges;
};

/// Mirror of core::run_protocol with a drift axis and an optional estimator.
/// An empty `drift` keeps the environment's own schedulers/policy; a
/// non-empty one substitutes DriftingSpecScheduler for both processes and
/// DriftingDelayPolicy for the channel. With `estimator_enabled` the run uses
/// the adaptive A^β/A^γ variants (kind must be Beta or Gamma) and publishes
/// its final gauges to the global metrics registry (est/* slots).
[[nodiscard]] EstimatedRun run_estimated(protocols::ProtocolKind kind,
                                         const protocols::ProtocolConfig& config,
                                         const core::Environment& env,
                                         const core::DriftSpec& drift, bool estimator_enabled,
                                         const EstimatorConfig& est_config = EstimatorConfig{},
                                         bool record_trace = true,
                                         std::uint64_t max_events = 50'000'000,
                                         obs::trace::ModelRecorder* tracer = nullptr);

/// The finite sentinel fold_est_penalty reports when the estimated run sent
/// but the oracle never did: the ratio is degenerate (division by zero), and
/// the raw inf/NaN it would produce poisons everything downstream — NaN
/// compares false against every gate limit and neither survives a JSON
/// round-trip as a number. Large and finite, it instead trips any sane
/// `est_penalty_max` threshold loudly.
inline constexpr double kDegenerateEstPenalty = 1e9;

/// The guarded penalty fold, exposed for tests and for any sweep that folds
/// oracle/estimated efforts itself: effort_est / effort_oracle when the
/// oracle sent (oracle_ticks > 0); 0 when neither run sent (the schema's
/// "not applicable" value, as in pre-estimator rows); kDegenerateEstPenalty
/// when only the estimated run sent.
[[nodiscard]] double fold_est_penalty(double oracle_ticks, double estimated_ticks);

/// An oracle/estimator pair over one cell and the effort ratio between them.
struct PenaltyRun {
  core::ProtocolRun oracle;  ///< constants pinned to the true (c1, c2, d)
  EstimatedRun estimated;    ///< same environment, estimator-driven plans
  /// effort_est / effort_oracle via fold_est_penalty: 0 if neither run sent,
  /// kDegenerateEstPenalty if only the oracle stayed silent.
  double est_penalty = 0;
};

/// Runs the oracle first, then the estimated run, in the same environment
/// (same env.seed stream, same drift spec). Traces are not recorded — this
/// is the campaign/bench path.
[[nodiscard]] PenaltyRun run_penalty_pair(protocols::ProtocolKind kind,
                                          const protocols::ProtocolConfig& config,
                                          const core::Environment& env,
                                          const core::DriftSpec& drift,
                                          const EstimatorConfig& est_config = EstimatorConfig{},
                                          std::uint64_t max_events = 50'000'000);

/// The checked-in estimator baseline grid (tests/golden/estimator_baseline.jsonl):
/// {β, γ} × {(1,2,6), (2,3,9)} × k ∈ {4, 8} × worst_case × {stationary,
/// drifting "0:9,250:4,600:7"} — 16 cells, margin 0 (worst-case realized
/// gaps/delays sit exactly on the bounds, so exact convergence is the pin).
[[nodiscard]] sim::CampaignSpec golden_estimator_spec();

}  // namespace rstp::est
