// Estimator-driven A^β/A^γ: the paper's block protocols re-planned at every
// block boundary from live (ĉ1, ĉ2, d̂) estimates.
//
// The adaptive transmitters mirror Figures 3/4 exactly, except that δ (and
// β's wait W) come from a BlockPlan computed per block instead of a constant
// fixed at construction. Correctness no longer leans on the oracle δ:
//
//   * β's inter-block wait runs for plan.wait steps AND until the channel has
//     drained (planner->outstanding() == 0). Even if d̂ is still far below
//     the true d, no packet of block j can be in flight when block j+1's
//     first send happens, so blocks cannot mix — the Figure 3 separation
//     argument holds with the drain replacing the δ·c1 ≥ d arithmetic.
//   * γ is ack-gated exactly as in Figure 4: block j+1 starts only after
//     δ_j acks, which the receiver emits only after δ_j arrivals. Estimation
//     quality affects effort, never correctness.
//
// Both sides of a pair read the same shared BlockPlanner (see est/estimator.h
// for the agreement argument). clone() shares the planner too: two clones
// stepped independently would race its sequential plan cache, so the
// explorer must not branch adaptive automata (no explorer config uses
// planner-backed pairs).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rstp/combinatorics/multiset_codec.h"
#include "rstp/est/estimator.h"
#include "rstp/protocols/base.h"

namespace rstp::est {

class AdaptiveBetaTransmitter final : public protocols::TransmitterBase {
 public:
  /// Requires config.planner with Discipline::TimedBlocks.
  explicit AdaptiveBetaTransmitter(const protocols::ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  enum class Phase : std::uint8_t { Send, Wait, Done };

  std::string name_;
  std::shared_ptr<BlockPlanner> planner_;
  Phase phase_ = Phase::Send;
  std::size_t block_ = 0;        ///< current block index
  std::uint32_t pos_ = 0;        ///< next symbol within the block
  std::int64_t wait_count_ = 0;  ///< wait_t steps taken since the block ended
  bool more_ = false;            ///< a block follows the current one
};

class AdaptiveBetaReceiver final : public protocols::ReceiverBase {
 public:
  explicit AdaptiveBetaReceiver(const protocols::ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::shared_ptr<BlockPlanner> planner_;
  std::size_t block_index_ = 0;     ///< block currently being collected
  combinatorics::Multiset block_;   ///< Figure 3's A
  std::vector<ioa::Bit> decoded_;
  std::vector<ioa::Bit> written_;
  std::size_t target_length_ = 0;
};

class AdaptiveGammaTransmitter final : public protocols::TransmitterBase {
 public:
  /// Requires config.planner with Discipline::AckedBlocks.
  explicit AdaptiveGammaTransmitter(const protocols::ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  enum class Phase : std::uint8_t { Send, AwaitAcks, Done };

  std::string name_;
  std::shared_ptr<BlockPlanner> planner_;
  Phase phase_ = Phase::Send;
  std::size_t block_ = 0;
  std::uint32_t pos_ = 0;     ///< symbols of the current block already sent
  std::int64_t acked_ = 0;    ///< acks consumed for the current block
  bool more_ = false;
};

class AdaptiveGammaReceiver final : public protocols::ReceiverBase {
 public:
  explicit AdaptiveGammaReceiver(const protocols::ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::shared_ptr<BlockPlanner> planner_;
  std::size_t block_index_ = 0;
  combinatorics::Multiset block_;
  std::vector<ioa::Bit> decoded_;
  std::vector<ioa::Bit> written_;
  std::size_t target_length_ = 0;
  std::int64_t unacked_ = 0;
};

}  // namespace rstp::est
