// Online (c1, c2, d) estimation: the self-tuning layer over the paper's
// oracle constants.
//
// The paper hands every protocol the channel constants that drive A^β/A^γ
// block sizing. Real deployments discover them — the adaptive-RTO discipline
// of RFC 6298 is the standard answer, and this module transplants it into
// the model: a TimingEstimator observes every step gap and every
// send→delivery delay from inside a run (simulator hooks, zero effect when
// absent) and maintains
//
//   ĉ1 = max(1, ⌊min_gap · (1 − margin)⌋)            (running minimum)
//   ĉ2 = max(ĉ1, round((gap_srtt + 4·gap_var) · (1 + margin)))
//   d̂  = max(ĉ2, round((srtt + 4·rttvar) · (1 + margin)))
//
// with SRTT/RTTVAR-style exponentially weighted means (gain 1/8, variance
// gain 1/4, first sample seeding variance at sample/2 — all per RFC 6298).
// d̂ deliberately uses the EWMA rather than a running max so it re-converges
// *downward* after a drift breakpoint shortens the true delay. The clamp
// chain keeps every estimate legal (1 ≤ ĉ1 ≤ ĉ2 ≤ d̂) no matter how
// adversarial the samples; with no samples at all the estimate is (1,1,1),
// making block 0 a one-packet probe.
//
// A BlockPlanner turns the live estimates into per-block transmission plans
// for the adaptive β/γ automata (est/adaptive.h). The planner is *shared*
// between the transmitter and receiver of a pair (via ProtocolConfig): block
// j's plan is computed once, at the first time either side needs it, from
// the estimator state at that instant, and then frozen. Since the receiver
// first touches plan(j) only when block j's first packet arrives — which the
// transmitter sent after computing plan(j) — both sides always agree on
// (δ_j, B_j, symbols), and a resize (δ_{j+1} ≠ δ_j) can only happen at a
// block boundary, by construction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "rstp/combinatorics/block_coder.h"
#include "rstp/core/params.h"
#include "rstp/ioa/action.h"
#include "rstp/obs/run_metrics.h"

namespace rstp::channel {
class Channel;
}

namespace rstp::est {

/// Final-state estimator gauges; the obs layer owns the struct so the sinks
/// and diff gate can carry it without depending on this module.
using EstimatorStats = obs::EstimatorGauges;

struct EstimatorConfig {
  double margin = 0.125;       ///< safety margin applied to every estimate
  double gain = 0.125;         ///< EWMA gain for the means (RFC 6298 alpha)
  double var_gain = 0.25;      ///< EWMA gain for the deviations (RFC 6298 beta)
  std::uint32_t max_block = 256;  ///< cap on any planned δ

  /// Throws rstp::ContractViolation unless margin ∈ [0, 1), both gains are in
  /// (0, 1], and max_block >= 1.
  void validate() const;

  friend bool operator==(const EstimatorConfig&, const EstimatorConfig&) = default;
};

/// The EWMA+variance estimator. One instance per run, fed by the simulator's
/// observation hooks; both protocol sides read it through the shared planner.
class TimingEstimator {
 public:
  explicit TimingEstimator(EstimatorConfig config);

  /// Non-owning; lets outstanding() see the channel's in-flight count so the
  /// adaptive β transmitter can drain between blocks even when d̂ is low.
  void attach_channel(const channel::Channel* channel) { channel_ = channel; }

  /// One step gap of either process (always in [c1, c2] in-model).
  void observe_gap(Duration gap);

  /// One send→delivery delay of either direction (always ≤ d in-model).
  void observe_delay(Duration delay);

  /// The current legal estimate: 1 ≤ ĉ1 ≤ ĉ2 ≤ d̂ always holds.
  [[nodiscard]] core::TimingParams estimate() const;

  [[nodiscard]] std::uint64_t gap_samples() const { return gap_samples_; }
  [[nodiscard]] std::uint64_t delay_samples() const { return delay_samples_; }
  /// Packets currently in flight (0 when no channel is attached).
  [[nodiscard]] std::uint64_t outstanding() const;
  [[nodiscard]] const EstimatorConfig& config() const { return config_; }

 private:
  EstimatorConfig config_;
  const channel::Channel* channel_ = nullptr;
  bool have_gap_ = false;
  std::int64_t min_gap_ = 0;   ///< running minimum (no decay: c1 is a floor)
  double gap_srtt_ = 0;
  double gap_var_ = 0;
  bool have_delay_ = false;
  double srtt_ = 0;
  double rttvar_ = 0;
  std::uint64_t gap_samples_ = 0;
  std::uint64_t delay_samples_ = 0;
};

/// One block's frozen transmission plan.
struct BlockPlan {
  std::uint32_t delta = 1;   ///< δ_j: packets in this block
  std::uint32_t wait = 0;    ///< β: minimum wait_t steps after the block (γ: 0)
  std::size_t first_bit = 0; ///< offset of this block's slice of X
  std::size_t bits = 0;      ///< real input bits carried (≤ coder bits/block)
  std::shared_ptr<const combinatorics::BlockCoder> coder;
  std::vector<combinatorics::Symbol> symbols;  ///< δ_j symbols, canonical order
};

/// Computes and freezes per-block plans from the live estimates. Shared by
/// the (A_t, A_r) pair of one run; see the header comment for the agreement
/// argument. Not thread-safe — one planner belongs to exactly one run.
class BlockPlanner {
 public:
  /// Which block discipline consumes the plans: β sizes blocks by δ̂1 (and
  /// waits that many steps plus a channel drain), γ by δ̂2 (ack-gated).
  enum class Discipline : std::uint8_t { TimedBlocks, AckedBlocks };

  BlockPlanner(Discipline discipline, std::uint32_t k, std::vector<ioa::Bit> input,
               std::shared_ptr<TimingEstimator> estimator);

  /// The plan for block j. Computed (from the estimator state at this
  /// instant) and frozen on first request; j may exceed the computed prefix
  /// by at most one. Requires has_block(j).
  const BlockPlan& plan(std::size_t j);

  /// True iff block j exists (the input is not exhausted before it).
  /// Requires plan(j-1) to have been computed for j >= 1.
  [[nodiscard]] bool has_block(std::size_t j) const;

  [[nodiscard]] std::uint64_t outstanding() const { return estimator_->outstanding(); }
  /// Number of boundaries where δ changed (the resize gauge).
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
  [[nodiscard]] std::size_t input_bits() const { return input_.size(); }
  [[nodiscard]] std::uint32_t alphabet() const { return k_; }
  [[nodiscard]] Discipline discipline() const { return discipline_; }
  [[nodiscard]] TimingEstimator& estimator() { return *estimator_; }
  [[nodiscard]] const TimingEstimator& estimator() const { return *estimator_; }

 private:
  Discipline discipline_;
  std::uint32_t k_;
  std::vector<ioa::Bit> input_;
  std::shared_ptr<TimingEstimator> estimator_;
  std::vector<BlockPlan> plans_;
  std::map<std::uint32_t, std::shared_ptr<const combinatorics::BlockCoder>> coders_;
  std::uint64_t resizes_ = 0;
};

}  // namespace rstp::est
