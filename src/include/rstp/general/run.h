// Running and verifying protocols under the generalized (§7) model.
//
// The pieces already exist — per-process schedulers, a channel with a
// delivery window, protocol block/wait overrides, a verifier with
// per-process gap laws — this header wires them together behind the same
// surface core/effort.h offers for the base model.
#pragma once

#include <cstdint>

#include "rstp/core/effort.h"
#include "rstp/core/verify.h"
#include "rstp/general/params.h"

namespace rstp::general {

/// Environment knobs for the general model (Adversarial falls back to the
/// max-delay FIFO policy when the window has zero width, where batching is
/// impossible).
struct GeneralEnvironment {
  core::Environment::Sched transmitter_sched = core::Environment::Sched::SlowFixed;
  core::Environment::Sched receiver_sched = core::Environment::Sched::SlowFixed;
  core::Environment::Delay delay = core::Environment::Delay::Max;
  std::uint64_t seed = 1;

  [[nodiscard]] static GeneralEnvironment worst_case() { return {}; }
  [[nodiscard]] static GeneralEnvironment randomized(std::uint64_t seed);
};

/// Builds a ProtocolConfig whose derived sizes come from the general model:
/// β gets block/wait = beta_block()/beta_wait(), γ gets block = delta2(),
/// α and altbit use the envelope parameters directly.
[[nodiscard]] protocols::ProtocolConfig make_general_config(protocols::ProtocolKind kind,
                                                            const GeneralTimingParams& params,
                                                            std::uint32_t k,
                                                            std::vector<ioa::Bit> input);

/// Instantiates, runs, and reports — the general-model run_protocol.
[[nodiscard]] core::ProtocolRun run_general_protocol(protocols::ProtocolKind kind,
                                                     const GeneralTimingParams& params,
                                                     std::uint32_t k,
                                                     std::vector<ioa::Bit> input,
                                                     const GeneralEnvironment& env,
                                                     bool record_trace = true,
                                                     std::uint64_t max_events = 50'000'000);

/// verify_trace with the general model's per-process gap laws and delivery
/// window.
[[nodiscard]] core::VerifyResult verify_general_trace(const ioa::TimedTrace& trace,
                                                      const GeneralTimingParams& params,
                                                      std::span<const ioa::Bit> input,
                                                      bool require_complete = true);

/// Worst-case effort measurement under the general model (random input).
[[nodiscard]] core::EffortMeasurement measure_general_effort(protocols::ProtocolKind kind,
                                                             const GeneralTimingParams& params,
                                                             std::uint32_t k, std::size_t n,
                                                             const GeneralEnvironment& env,
                                                             std::uint64_t input_seed = 0xC0FFEE);

}  // namespace rstp::general
