// The §7 generalized real-time model.
//
// The paper closes by proposing two generalizations and asking whether the
// results carry over:
//   (1) replace d by two constants d1 ≤ d2 bounding the delivery delay from
//       below and above;
//   (2) give each process its own (c1, c2) step law.
// This module implements both. The derivations (documented per-field in
// GeneralBoundsReport) show the results do generalize, with two interesting
// twists the paper's question invites:
//   * a known minimum delay d1 *helps the protocols*: block separation only
//     needs consecutive blocks' sends to be (d2 − d1) apart, not d2 — so
//     A^β's idle phase shrinks to ⌈(d2−d1)/c1^t⌉ steps and its effort drops;
//   * the same margin *hurts the lower-bound adversary*: the Lemma 5.1
//     batching window must fit in d2 − d1, so the passive lower bound's δ
//     becomes ⌊(d2−d1)/c1^t⌋ — the two effects move together, keeping the
//     construction within a constant factor of the bound.
// The base model is the special case d1 = 0, identical laws.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "rstp/core/params.h"

namespace rstp::general {

struct GeneralTimingParams {
  Duration t_c1{1};  ///< transmitter min step gap
  Duration t_c2{1};  ///< transmitter max step gap
  Duration r_c1{1};  ///< receiver min step gap
  Duration r_c2{1};  ///< receiver max step gap
  Duration d_lo{0};  ///< d1: minimum delivery delay
  Duration d_hi{1};  ///< d2: maximum delivery delay

  /// Requires 0 < c1 ≤ c2 per process, 0 ≤ d1 ≤ d2, and each c2 ≤ d2
  /// (mirroring the base model's c2 ≤ d, which δ2 ≥ 1 needs).
  void validate() const;

  /// Embeds the base model: both processes get (c1, c2), window [0, d].
  [[nodiscard]] static GeneralTimingParams from_base(const core::TimingParams& base);

  /// True iff this is exactly a base-model instance.
  [[nodiscard]] bool is_base() const;

  /// Delivery-window width d2 − d1 (the quantity block separation cares about).
  [[nodiscard]] Duration window_width() const { return d_hi - d_lo; }

  // --- derived step counts (generalizing δ1, δ2) ---------------------------

  /// Max transmitter steps inside one max-delay span: ⌊d2/c1^t⌋.
  [[nodiscard]] std::int64_t delta1() const;
  /// β's block size: ⌈d2/c1^t⌉ (the paper's δ1 with ceil discretization).
  [[nodiscard]] std::int64_t beta_block() const;
  /// β's idle phase: ⌈(d2−d1)/c1^t⌉ steps guarantee block separation; at
  /// least 1 to keep the round structure well-formed.
  [[nodiscard]] std::int64_t beta_wait() const;
  /// Max transmitter steps the Lemma 5.1 adversary can batch: ⌊(d2−d1)/c1^t⌋
  /// (0 when d1 = d2 — a deterministic-latency channel admits no batching).
  [[nodiscard]] std::int64_t adversary_delta() const;
  /// γ's block size: ⌊d2/c2^t⌋.
  [[nodiscard]] std::int64_t delta2() const;

  // --- projections for the simulator / verifier ----------------------------

  /// Transmitter's (c1, c2) with d = d2, for gap validation.
  [[nodiscard]] core::TimingParams transmitter_params() const;
  /// Receiver's (c1, c2) with d = d2.
  [[nodiscard]] core::TimingParams receiver_params() const;
  /// Conservative uniform envelope: (min c1, max c2, d2). Any execution of
  /// the general model is also an execution of this base model.
  [[nodiscard]] core::TimingParams envelope() const;

  friend bool operator==(const GeneralTimingParams&, const GeneralTimingParams&) = default;
};

std::ostream& operator<<(std::ostream& os, const GeneralTimingParams& p);

/// Generalized closed-form bounds (the §7 answers).
struct GeneralBoundsReport {
  GeneralTimingParams params{};
  std::uint32_t k = 2;

  std::int64_t beta_block = 0;
  std::int64_t beta_wait = 0;
  std::int64_t adversary_delta = 0;
  std::int64_t delta2 = 0;

  std::size_t beta_bits_per_block = 0;
  std::size_t gamma_bits_per_block = 0;

  /// Generalized Thm 5.3: the batch adversary erases order inside windows of
  /// δ̂ = ⌊(d2−d1)/c1^t⌋ transmitter steps, each spanning ≤ δ̂·c2^t time:
  /// eff ≥ δ̂·c2^t / log2 ζ_k(δ̂). Zero (no bound from this argument) when
  /// d1 = d2.
  double passive_lower = 0;
  /// Generalized Thm 5.6: eff ≥ d2 / log2 ζ_k(δ2).
  double active_lower = 0;
  /// Generalized A^α: one message per ⌈(d2−d1)/c1^t⌉ steps (min-separation
  /// sends stay ordered), each ≤ c2^t: eff = max(1,⌈(d2−d1)/c1^t⌉)·c2^t.
  double alpha_effort = 0;
  /// Generalized Lemma 6.1: rounds of (block + wait) transmitter steps carry
  /// B bits: eff ≤ (block + wait)·c2^t / B.
  double beta_upper = 0;
  /// Generalized §6.2 with ack queueing. The paper's 3d + c2 assumes the
  /// receiver keeps pace with arrivals (it does when both run the same law:
  /// FIFO max-delay arrivals are ≥ c2 apart). With r_c2 > t_c2 arrivals can
  /// outpace the receiver and acks queue; the i-th ack leaves by
  /// a_i + (δ2−i+1)·r_c2 with a_i ≤ (i−1)·t_c2 + d2, so the block period is
  /// ≤ 2d2 + max(δ2·r_c2, (δ2−1)·t_c2 + r_c2) + t_c2 — which is ≤ the
  /// paper's 3d2 + c2 form in the base model (δ2·c2 ≤ d2).
  double gamma_upper = 0;
};

[[nodiscard]] GeneralBoundsReport compute_general_bounds(const GeneralTimingParams& params,
                                                         std::uint32_t k);

std::ostream& operator<<(std::ostream& os, const GeneralBoundsReport& r);

}  // namespace rstp::general
