// The model's timing parameters (paper §1, §4) and the derived step counts.
//
// Three constants govern every good execution:
//   c1 — minimum gap between consecutive local steps of a process
//   c2 — maximum gap between consecutive local steps of a process
//   d  — maximum channel delay
// with 0 < c1 ≤ c2 ≤ d. The paper's derived quantities:
//   δ1 = d/c1 — the most steps a process can take in d time units
//   δ2 = d/c2 — the fewest steps a process must take in d time units
//
// Discretization: the paper implicitly assumes c1 | d and c2 | d. Over
// integer ticks we expose the floor values (used by the counting bounds) and
// the ceiling δ1 (used by protocols to size idle periods so that δ1_wait
// steps always span ≥ d time even at the fastest rate c1). When c | d all
// variants coincide with the paper's d/c.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "rstp/common/time.h"

namespace rstp::core {

struct TimingParams {
  Duration c1{1};  ///< min step gap
  Duration c2{1};  ///< max step gap
  Duration d{1};   ///< max channel delay

  /// Validates 0 < c1 <= c2 <= d; throws rstp::ContractViolation otherwise.
  void validate() const;

  /// δ1 = ⌊d/c1⌋: max steps in d time (counting bound form).
  [[nodiscard]] std::int64_t delta1() const;

  /// ⌈d/c1⌉: idle steps that guarantee ≥ d elapsed even at the fastest rate;
  /// the β protocol's wait length (= δ1 when c1 | d).
  [[nodiscard]] std::int64_t delta1_wait() const;

  /// δ2 = ⌊d/c2⌋: min steps in d time (the active protocol's block size).
  [[nodiscard]] std::int64_t delta2() const;

  /// Convenience constructor with validation.
  [[nodiscard]] static TimingParams make(std::int64_t c1_ticks, std::int64_t c2_ticks,
                                         std::int64_t d_ticks);

  friend bool operator==(const TimingParams&, const TimingParams&) = default;
};

std::ostream& operator<<(std::ostream& os, const TimingParams& p);

}  // namespace rstp::core
