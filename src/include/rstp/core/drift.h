// Scripted channel drift: the "constants" (d, and optionally c2) change
// mid-run at fixed breakpoints.
//
// The paper's model hands every protocol a single (c1, c2, d) for the whole
// execution. Real links drift: a route change shortens d, load stretches the
// step rate. A DriftSpec is a piecewise-constant schedule of *effective*
// values — each segment says "from time t on, deliveries take d_eff and
// steps arrive every c2_eff". The drifting scheduler/delivery-policy pair
// (sim/scheduler.h, channel/policies.h) clamps every effective value into
// the run's declared envelope [c1, c2] / [0, d], so a drifting execution is
// still inside good(A) for the envelope parameters: the verifier needs no
// excusal machinery, and one spec is legal against every envelope. What
// drifts is the *realized* channel the online estimator (rstp::est) sees —
// the adversary the self-tuning layer has to chase.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rstp/common/time.h"

namespace rstp::core {

/// A malformed drift specification, carrying the offending token so callers
/// can name it in usage errors (same shape as obs::ThresholdParseError).
class DriftParseError : public std::runtime_error {
 public:
  DriftParseError(const std::string& message, std::string token)
      : std::runtime_error(message), token_(std::move(token)) {}
  [[nodiscard]] const std::string& token() const { return token_; }

 private:
  std::string token_;
};

/// A piecewise-constant schedule of effective channel values.
struct DriftSpec {
  struct Segment {
    Time start{};                     ///< segment begins at this instant
    Duration d_eff{};                 ///< effective delivery delay from start on
    std::optional<Duration> c2_eff;   ///< effective step gap (unset: envelope c2)

    friend bool operator==(const Segment&, const Segment&) = default;
  };

  std::vector<Segment> segments;  ///< by construction: first at 0, strictly increasing

  [[nodiscard]] bool empty() const { return segments.empty(); }

  /// The segment governing instant `t` (the last segment whose start <= t).
  /// Requires a non-empty spec.
  [[nodiscard]] const Segment& segment_at(Time t) const;

  /// Throws rstp::ContractViolation unless the first segment starts at 0,
  /// starts are strictly increasing, and every d_eff is non-negative (c2_eff,
  /// when set, positive). Envelope legality is NOT checked here — effective
  /// values are clamped into the envelope at run time, so one spec serves
  /// every timing point of a grid.
  void validate() const;

  /// Parses "start:d[:c2],start:d[:c2],..." (e.g. "0:9,250:4,600:7").
  /// Throws DriftParseError naming the offending segment or field on any
  /// malformed token; the result is validated.
  [[nodiscard]] static DriftSpec parse(std::string_view text);

  /// The inverse of parse (canonical form; empty string for an empty spec).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DriftSpec&, const DriftSpec&) = default;
};

std::ostream& operator<<(std::ostream& os, const DriftSpec& spec);

}  // namespace rstp::core
