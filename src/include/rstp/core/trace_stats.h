// Trace statistics: quantitative summaries of a timed execution.
//
// Where the verifier answers "is this execution in good(A)?", the stats
// module answers "what did the execution look like?" — per-process step
// counts and gap extremes, per-direction delay distributions, channel
// occupancy, and throughput figures. The benches and examples use it to
// report more than a single effort number, and its delay/gap extremes give
// tests an independent way to assert an environment behaved as configured
// (e.g. "the random policy actually produced delays spanning [0, d]").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>

#include "rstp/ioa/trace.h"

namespace rstp::core {

struct GapStats {
  std::uint64_t steps = 0;  ///< local events of the process
  std::optional<Duration> min_gap;
  std::optional<Duration> max_gap;
  double mean_gap = 0;  ///< 0 when fewer than two events
};

struct DelayStats {
  std::uint64_t delivered = 0;  ///< matched send→recv pairs
  std::uint64_t unmatched_sends = 0;
  std::optional<Duration> min_delay;
  std::optional<Duration> max_delay;
  double mean_delay = 0;
  /// Nearest-rank tail latencies over the matched deliveries, computed with
  /// the obs::Histogram machinery (width-1 buckets up to 4096 ticks of spread,
  /// so exact for every realistic d). Unset when nothing was delivered. The
  /// tails — not the mean — are what a latency budget must be held against:
  /// a link can meet a mean budget while routinely blowing it at p99.
  std::optional<Duration> p50_delay;
  std::optional<Duration> p95_delay;
  std::optional<Duration> p99_delay;
};

struct TraceStats {
  GapStats transmitter;
  GapStats receiver;
  DelayStats data;  ///< t→r packets
  DelayStats acks;  ///< r→t packets
  std::uint64_t writes = 0;
  std::uint64_t max_in_flight = 0;  ///< peak packets simultaneously in the channel
  Time end_time{};
  std::optional<Time> last_transmitter_send;
  /// Writes per tick of total execution time (0 for empty/instant traces).
  double write_throughput = 0;
};

/// Computes all statistics in one pass over the trace. Unmatched recvs are
/// ignored here (the verifier owns flagging them).
[[nodiscard]] TraceStats compute_trace_stats(const ioa::TimedTrace& trace);

std::ostream& operator<<(std::ostream& os, const TraceStats& stats);

}  // namespace rstp::core
