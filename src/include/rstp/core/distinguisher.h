// Executable Lemma 5.1: transmitter window signatures.
//
// The r-passive lower bound (paper §5.1) rests on one observation: since an
// r-passive deterministic transmitter's behaviour depends only on X, a "fast"
// execution (steps every c1) is fully described by the function P^tr(X) that
// maps each window of δ1 consecutive transmitter steps to the MULTISET of
// packets sent in it — the batch adversary can always deliver a window as one
// canonically-ordered burst, so the receiver learns nothing beyond the
// multiset sequence. Lemma 5.1: if two inputs have equal signatures, the
// receiver behaves identically on both, so a correct protocol must give
// distinct inputs distinct signatures; counting signatures yields Thm 5.3.
//
// This module computes that signature for any r-passive transmitter by
// driving a clone of it (no channel, no receiver — r-passivity means none is
// needed) and grouping its sends into δ1-step windows. Tests and E12 use it
// to (a) verify the shipped protocols' signatures are injective, (b) exhibit
// two inputs the strawman CANNOT distinguish, and (c) reproduce the counting
// argument ℓ(n) ≥ n / log2(ζ_k(δ1)) on exhaustive small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "rstp/combinatorics/multiset_codec.h"
#include "rstp/protocols/base.h"

namespace rstp::core {

struct TransmitterSignature {
  /// P^tr(X)[1..ℓ]: per-window multisets of sent packet payloads. Trailing
  /// all-empty windows are trimmed, so windows.size() is the paper's ℓ(X).
  std::vector<combinatorics::Multiset> windows;
  /// Total send events observed.
  std::size_t total_sends = 0;
  /// Step index (1-based) of the last send; 0 if none.
  std::size_t last_send_step = 0;
  /// False if the transmitter was still active when the step cap was hit
  /// (e.g. an ACTIVE transmitter stalling for acks that never come — the
  /// signature is only meaningful for r-passive transmitters).
  bool complete = false;

  friend bool operator==(const TransmitterSignature&, const TransmitterSignature&) = default;
};

/// Computes the signature of (a clone of) `transmitter` over the k-symbol
/// alphabet with windows of `window_steps` transmitter steps (the paper's
/// δ1). The transmitter itself is not modified.
[[nodiscard]] TransmitterSignature transmitter_signature(
    const protocols::TransmitterBase& transmitter, std::uint32_t k, std::int64_t window_steps,
    std::uint64_t max_steps = 1'000'000);

/// The paper's ℓ(n) lower bound: any r-passive solution needs at least
/// ⌈n / log2 ζ_k(δ1)⌉ windows to distinguish all 2^n inputs of length n.
[[nodiscard]] std::size_t min_windows_for(std::size_t n, std::uint32_t k, std::uint32_t delta1);

}  // namespace rstp::core
