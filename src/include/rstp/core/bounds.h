// Closed-form effort bounds (paper §5 and §6).
//
// Lower bounds (every solution pays at least this, asymptotically):
//   Theorem 5.3 (r-passive):  eff ≥ δ1·c2 / log2(ζ_k(δ1))
//   Theorem 5.6 (active):     eff ≥ d / log2(ζ_k(δ2))
// Upper bounds (the paper's constructions achieve these):
//   §4   A^α:     eff = (d/c1)·c2           (exact, = ⌈d/c1⌉·c2 here)
//   §6.1 A^β(k):  eff ≤ 2δ1·c2 / ⌊log2 μ_k(δ1)⌋
//   §6.2 A^γ(k):  eff ≤ (3d + c2) / ⌊log2 μ_k(δ2)⌋
// All logs are base 2 because |M| = 2 in the paper; efforts are per message
// bit, in ticks. The upper/lower ratios are O(1) in k and δ — the paper's
// "asymptotically optimal" claim — which the E4/E5 benches tabulate.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "rstp/core/params.h"

namespace rstp::core {

struct BoundsReport {
  TimingParams params{};
  std::uint32_t k = 2;

  std::int64_t delta1 = 0;       ///< ⌊d/c1⌋
  std::int64_t delta1_wait = 0;  ///< ⌈d/c1⌉ (protocol block/wait size)
  std::int64_t delta2 = 0;       ///< ⌊d/c2⌋

  std::size_t beta_bits_per_block = 0;   ///< ⌊log2 μ_k(δ1_wait)⌋
  std::size_t gamma_bits_per_block = 0;  ///< ⌊log2 μ_k(δ2)⌋

  double passive_lower = 0;  ///< Theorem 5.3
  double active_lower = 0;   ///< Theorem 5.6
  double alpha_effort = 0;   ///< A^α worst case (exact)
  double beta_upper = 0;     ///< A^β(k) worst case
  double gamma_upper = 0;    ///< A^γ(k) worst case
  double altbit_upper = 0;   ///< stop-and-wait worst case, ≈ 2d + 2c2 per bit

  /// Optimality ratios (upper / matching lower); O(1) per the paper.
  [[nodiscard]] double passive_ratio() const { return beta_upper / passive_lower; }
  [[nodiscard]] double active_ratio() const { return gamma_upper / active_lower; }
};

/// Computes every bound for the given parameters. Requires k >= 2 and valid
/// timing parameters.
[[nodiscard]] BoundsReport compute_bounds(const TimingParams& params, std::uint32_t k);

std::ostream& operator<<(std::ostream& os, const BoundsReport& report);

}  // namespace rstp::core
