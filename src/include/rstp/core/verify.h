// Trace verifier: decides membership in good(A) and checks the problem's
// correctness conditions (paper §4).
//
// Given a recorded timed execution, the verifier independently re-checks
// everything the simulator is supposed to guarantee — it shares no state
// with the simulator, so it doubles as an oracle in property tests and as a
// validator for traces produced by other means (e.g. the explorer or
// hand-written negative tests):
//
//   Σ(A_t, A_r): for each process, the gap between consecutive local events
//                lies in [c1, c2] (and optionally the first step is ≤ c2).
//   Δ(C(P)):     there is a bijection between send and recv events matching
//                equal packets with 0 ≤ recv − send ≤ d. (Greedy earliest-
//                send matching is exact here: all candidates carry identical
//                payloads, so an exchange argument reduces any valid
//                bijection to the greedy one.)
//   Safety:      Y is a prefix of X at every point of the execution.
//   Liveness:    Y = X at the end (when `require_complete`), and no packet
//                is left undelivered (when `require_drained`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rstp/core/params.h"
#include "rstp/fault/fault.h"
#include "rstp/ioa/trace.h"

namespace rstp::core {

enum class ViolationKind : std::uint8_t {
  StepGapTooSmall,   ///< consecutive local events closer than c1
  StepGapTooLarge,   ///< consecutive local events farther than c2
  FirstStepTooLate,  ///< first local event after c2 (optional check)
  RecvWithoutSend,   ///< recv with no earlier unmatched matching send
  DeliveryTooEarly,  ///< matched recv − send is below d1 (generalized model)
  DeliveryTooLate,   ///< matched recv − send exceeds d
  UndeliveredPacket, ///< send never matched by a recv (optional check)
  OutputNotPrefix,   ///< a write made Y stop being a prefix of X
  OutputIncomplete,  ///< Y ≠ X at the end of the trace (optional check)
};

std::ostream& operator<<(std::ostream& os, ViolationKind kind);

struct Violation {
  ViolationKind kind{};
  std::uint64_t event_seq = 0;  ///< seq of the offending event (0 if global)
  std::string detail;
};

std::ostream& operator<<(std::ostream& os, const Violation& v);

struct VerifyOptions {
  bool require_complete = true;  ///< require Y == X at the end
  bool require_drained = true;   ///< require every send matched by a recv
  bool check_first_step = false; ///< require each process's first local event ≤ c2

  /// §7 generalization hooks. When set, each process's step-gap law comes
  /// from its own parameters (instead of the shared ones), and deliveries
  /// must additionally take at least `min_delay` (the window's d1).
  std::optional<TimingParams> transmitter_params;
  std::optional<TimingParams> receiver_params;
  Duration min_delay{0};
};

struct VerifyResult {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// True iff no violation of `kind` is present.
  [[nodiscard]] bool clean_of(ViolationKind kind) const;
};

std::ostream& operator<<(std::ostream& os, const VerifyResult& r);

/// Verifies `trace` against the model `params` and the input sequence X.
[[nodiscard]] VerifyResult verify_trace(const ioa::TimedTrace& trace, const TimingParams& params,
                                        std::span<const ioa::Bit> input,
                                        const VerifyOptions& options = {});

/// Verdict of a run whose channel may have injected faults: the raw verdict
/// plus a classification of every violation as *excused* (an injected fault
/// accounts for it) or *unexcused* (a protocol bug even granting the faults).
struct FaultVerifyReport {
  VerifyResult raw;                    ///< every violation, fault-blind
  std::vector<Violation> unexcused;    ///< violations no injected fault explains
  std::size_t excused = 0;             ///< count of excused violations

  /// "No protocol bug": every violation (if any) traces back to a fault.
  [[nodiscard]] bool ok() const { return unexcused.empty(); }
};

std::ostream& operator<<(std::ostream& os, const FaultVerifyReport& r);

/// Runs verify_trace and then excuses exactly the violations the fault log
/// explains (`faults` must be the channel's log for the same execution, in
/// send order):
///
///   DeliveryTooLate, RecvWithoutSend, UndeliveredPacket
///                      ← any fault at or before the violating event. The
///                        verifier's greedy same-payload matching means one
///                        drop/duplicate/corruption shifts every later match
///                        of that payload, so each fault kind can surface as
///                        any of the three.
///   OutputNotPrefix    ← any fault at or before the write (safety under
///                        faults: a wrong write is excused only when the
///                        channel misbehaved first — property P6)
///   OutputIncomplete   ← any fault at all (liveness is never owed on a
///                        faulted channel)
///
/// Step-gap violations (Σ(A_t, A_r)) and DeliveryTooEarly are never excused:
/// no channel fault can produce them (sends are appended in trace order, so
/// matched delays are never negative even under duplication).
[[nodiscard]] FaultVerifyReport verify_trace_with_faults(
    const ioa::TimedTrace& trace, const TimingParams& params, std::span<const ioa::Bit> input,
    std::span<const fault::FaultEvent> faults, const VerifyOptions& options = {});

}  // namespace rstp::core
