// Trace verifier: decides membership in good(A) and checks the problem's
// correctness conditions (paper §4).
//
// Given a recorded timed execution, the verifier independently re-checks
// everything the simulator is supposed to guarantee — it shares no state
// with the simulator, so it doubles as an oracle in property tests and as a
// validator for traces produced by other means (e.g. the explorer or
// hand-written negative tests):
//
//   Σ(A_t, A_r): for each process, the gap between consecutive local events
//                lies in [c1, c2] (and optionally the first step is ≤ c2).
//   Δ(C(P)):     there is a bijection between send and recv events matching
//                equal packets with 0 ≤ recv − send ≤ d. (Greedy earliest-
//                send matching is exact here: all candidates carry identical
//                payloads, so an exchange argument reduces any valid
//                bijection to the greedy one.)
//   Safety:      Y is a prefix of X at every point of the execution.
//   Liveness:    Y = X at the end (when `require_complete`), and no packet
//                is left undelivered (when `require_drained`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rstp/core/params.h"
#include "rstp/ioa/trace.h"

namespace rstp::core {

enum class ViolationKind : std::uint8_t {
  StepGapTooSmall,   ///< consecutive local events closer than c1
  StepGapTooLarge,   ///< consecutive local events farther than c2
  FirstStepTooLate,  ///< first local event after c2 (optional check)
  RecvWithoutSend,   ///< recv with no earlier unmatched matching send
  DeliveryTooEarly,  ///< matched recv − send is below d1 (generalized model)
  DeliveryTooLate,   ///< matched recv − send exceeds d
  UndeliveredPacket, ///< send never matched by a recv (optional check)
  OutputNotPrefix,   ///< a write made Y stop being a prefix of X
  OutputIncomplete,  ///< Y ≠ X at the end of the trace (optional check)
};

std::ostream& operator<<(std::ostream& os, ViolationKind kind);

struct Violation {
  ViolationKind kind{};
  std::uint64_t event_seq = 0;  ///< seq of the offending event (0 if global)
  std::string detail;
};

std::ostream& operator<<(std::ostream& os, const Violation& v);

struct VerifyOptions {
  bool require_complete = true;  ///< require Y == X at the end
  bool require_drained = true;   ///< require every send matched by a recv
  bool check_first_step = false; ///< require each process's first local event ≤ c2

  /// §7 generalization hooks. When set, each process's step-gap law comes
  /// from its own parameters (instead of the shared ones), and deliveries
  /// must additionally take at least `min_delay` (the window's d1).
  std::optional<TimingParams> transmitter_params;
  std::optional<TimingParams> receiver_params;
  Duration min_delay{0};
};

struct VerifyResult {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// True iff no violation of `kind` is present.
  [[nodiscard]] bool clean_of(ViolationKind kind) const;
};

std::ostream& operator<<(std::ostream& os, const VerifyResult& r);

/// Verifies `trace` against the model `params` and the input sequence X.
[[nodiscard]] VerifyResult verify_trace(const ioa::TimedTrace& trace, const TimingParams& params,
                                        std::span<const ioa::Bit> input,
                                        const VerifyOptions& options = {});

}  // namespace rstp::core
