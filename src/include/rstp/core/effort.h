// Empirical effort measurement (paper §4's eff(A)).
//
// eff(A) = suplim_{n→∞} max{ t(last-send(η^t)) : η^t ∈ good(A(n)) } / n.
//
// The max over good executions is attained by the slowest admissible
// environment: both processes stepping every c2 and the channel holding
// every packet the full d (for active protocols the ack path also pays d).
// measure_effort drives exactly that environment — or any other the caller
// picks — records t(last-send), and divides by n; measuring at growing n
// approximates the suplim (the benches report several n and the asymptote).
//
// Every measurement re-derives Y and compares with X, so an effort number
// from a corrupted run can never be reported silently (see
// EffortMeasurement::output_correct).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rstp/core/params.h"
#include "rstp/protocols/factory.h"
#include "rstp/sim/simulator.h"

namespace rstp::core {

/// One named environment = a scheduler choice per process + a channel policy.
struct Environment {
  enum class Sched : std::uint8_t {
    SlowFixed,  ///< every c2 (worst case for effort)
    FastFixed,  ///< every c1 (the lower-bound proofs' "fast" executions)
    Random,     ///< uniform in [c1, c2]
    Sawtooth,   ///< alternating c1, c2
  };
  enum class Delay : std::uint8_t {
    Max,          ///< every packet takes exactly d
    Zero,         ///< instantaneous delivery
    Random,       ///< uniform in [0, d] (reorders)
    Adversarial,  ///< batch adversary over windows of ⌈d/c1⌉·c1 (Lemma 5.1)
  };

  Sched transmitter_sched = Sched::SlowFixed;
  Sched receiver_sched = Sched::SlowFixed;
  Delay delay = Delay::Max;
  std::uint64_t seed = 1;  ///< used by Random variants

  /// The environment attaining (up to discretization) the paper's max:
  /// SlowFixed/SlowFixed/Max.
  [[nodiscard]] static Environment worst_case();
  /// The lower-bound proofs' environment: FastFixed/FastFixed/Adversarial.
  [[nodiscard]] static Environment adversarial_fast();
  /// Randomized-everything environment for property tests.
  [[nodiscard]] static Environment randomized(std::uint64_t seed);
};

/// Builds the scheduler / channel a given Environment describes.
[[nodiscard]] std::unique_ptr<sim::StepScheduler> make_scheduler(Environment::Sched kind,
                                                                 const TimingParams& params,
                                                                 std::uint64_t seed);
[[nodiscard]] std::unique_ptr<channel::DeliveryPolicy> make_delivery_policy(
    Environment::Delay kind, const TimingParams& params, std::uint64_t seed);

/// A complete protocol run plus its derived verdicts.
struct ProtocolRun {
  sim::RunResult result;
  bool output_correct = false;  ///< Y == X
};

/// Instantiates `kind` over `config`, runs it in `env`, and reports.
/// `record_trace=false` keeps memory flat for large n. `tracer` (obs/trace.h;
/// non-owning) arms the causal span tracer for the run; it is a pure observer
/// and cannot change any result bit.
[[nodiscard]] ProtocolRun run_protocol(protocols::ProtocolKind kind,
                                       const protocols::ProtocolConfig& config,
                                       const Environment& env, bool record_trace = true,
                                       std::uint64_t max_events = 50'000'000,
                                       obs::trace::ModelRecorder* tracer = nullptr);

struct EffortMeasurement {
  std::size_t n = 0;              ///< |X|
  double effort = 0;              ///< t(last-send)/n, in ticks per message
  std::optional<Time> last_send;  ///< t(last-send)
  bool output_correct = false;    ///< Y == X
  bool quiescent = false;         ///< run completed (vs hit the event cap)
  std::uint64_t transmitter_sends = 0;
};

/// Measures effort on a uniformly random n-bit input (seeded) in `env`.
[[nodiscard]] EffortMeasurement measure_effort(protocols::ProtocolKind kind,
                                               const TimingParams& params, std::uint32_t k,
                                               std::size_t n, const Environment& env,
                                               std::uint64_t input_seed = 0xC0FFEE);

/// Summary of effort over many randomized environments (fresh scheduler and
/// channel randomness per sample; fixed input). eff(A)'s max-over-executions
/// definition predicts worst_case ≥ max over any sample set — the E15 bench
/// and tests check exactly that.
struct EffortDistribution {
  std::size_t samples = 0;
  double min = 0;
  double mean = 0;
  double max = 0;
  double p95 = 0;     ///< 95th percentile (nearest-rank)
  bool all_correct = false;
};

/// Runs `samples` fully randomized environments (seeds derived from `seed`)
/// and summarizes the measured efforts. Requires samples >= 1 and n >= 1.
[[nodiscard]] EffortDistribution measure_effort_distribution(protocols::ProtocolKind kind,
                                                             const TimingParams& params,
                                                             std::uint32_t k, std::size_t n,
                                                             std::size_t samples,
                                                             std::uint64_t seed = 0xD157);

/// Uniformly random bit sequence; the standard workload generator.
[[nodiscard]] std::vector<ioa::Bit> make_random_input(std::size_t n, std::uint64_t seed);

/// Alternating 0101… sequence (worst case for naive run-length schemes).
[[nodiscard]] std::vector<ioa::Bit> make_alternating_input(std::size_t n);

/// All-zero / all-one sequences.
[[nodiscard]] std::vector<ioa::Bit> make_constant_input(std::size_t n, ioa::Bit value);

}  // namespace rstp::core
