// Exact binomial coefficients and the paper's counting functions.
//
// Section 3 of the paper defines, for a k-symbol universe:
//   μ_k(n) = |multisets of size n|        = C(n+k-1, k-1)
//   ζ_k(n) = |multisets of size ≤ n, ≥ 1| = Σ_{j=1..n} μ_k(j)
// These drive both the encodings (a block of ⌊log2 μ_k(δ)⌋ bits is one
// multiset of δ packets) and the lower bounds (Theorems 5.3/5.6 divide by
// log2 ζ_k(δ)). Everything here is exact BigUint arithmetic.
#pragma once

#include <cstdint>

#include "rstp/bigint/biguint.h"

namespace rstp::combinatorics {

/// C(n, r), exactly. Returns 0 when r > n.
[[nodiscard]] bigint::BigUint binomial(std::uint64_t n, std::uint64_t r);

/// μ_k(n) = C(n+k-1, k-1): multisets of size exactly n over {0..k-1}.
/// Requires k >= 1. μ_k(0) = 1 (the empty multiset).
[[nodiscard]] bigint::BigUint mu(std::uint32_t k, std::uint32_t n);

/// ζ_k(n) = Σ_{j=1..n} μ_k(j): non-empty multisets of size at most n.
/// Requires k >= 1; ζ_k(0) = 0.
[[nodiscard]] bigint::BigUint zeta(std::uint32_t k, std::uint32_t n);

/// ⌊log2 μ_k(n)⌋ — the number of data bits one δ-packet block can carry
/// (the paper's ⌊log(μ_k(δ))⌋ with log base 2, as |M| = 2).
/// Requires μ_k(n) >= 1; returns 0 when μ_k(n) = 1 (block carries no data).
[[nodiscard]] std::size_t floor_log2_mu(std::uint32_t k, std::uint32_t n);

/// log2 μ_k(n) as a double (for bound tables / plots).
[[nodiscard]] double log2_mu(std::uint32_t k, std::uint32_t n);

/// log2 ζ_k(n) as a double. Requires ζ_k(n) >= 1 (i.e. n >= 1).
[[nodiscard]] double log2_zeta(std::uint32_t k, std::uint32_t n);

}  // namespace rstp::combinatorics
