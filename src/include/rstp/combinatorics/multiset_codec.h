// Multisets over a k-symbol universe and the paper's toseq/tomulti maps.
//
// Section 3 postulates two functions without constructing them:
//   toseq_k(n)   : multi_k(n) → {0..k-1}^n        (a linearization)
//   tomulti_k(n) : {0,1}^⌊log μ_k(n)⌋ → multi_k(n) (an injection)
// This module supplies constructive, exact versions via a rank/unrank pair
// over multisets of size exactly n: multisets are ordered by the
// lexicographic order of their non-decreasing symbol sequence, and ranks are
// computed with exact BigUint binomial sums. The bijection means decoding is
// immune to any permutation of a block's packets — the property the β and γ
// protocols rely on for correctness over a reordering channel.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rstp/bigint/biguint.h"

namespace rstp::combinatorics {

/// A packet symbol: an element of the transmitter's alphabet {0, ..., k-1}.
using Symbol = std::uint32_t;

/// A multiset over the universe {0..k-1}, stored as per-symbol counts.
class Multiset {
 public:
  /// Empty multiset over a universe of `k` symbols (k >= 1).
  explicit Multiset(std::uint32_t k);

  /// Builds the multiset of a symbol sequence (any order).
  [[nodiscard]] static Multiset from_symbols(std::uint32_t k, std::span<const Symbol> symbols);

  /// Adopts a per-symbol count vector directly (universe = counts.size() >= 1).
  [[nodiscard]] static Multiset from_counts(std::vector<std::uint32_t> counts);

  /// Universe size k.
  [[nodiscard]] std::uint32_t universe() const { return static_cast<std::uint32_t>(counts_.size()); }

  /// Total number of elements (with multiplicity) — the paper's |A|.
  [[nodiscard]] std::uint32_t size() const { return size_; }

  /// mult(s, A): occurrences of symbol s. s must be < universe().
  [[nodiscard]] std::uint32_t count(Symbol s) const;

  /// Inserts one occurrence of s (the paper's A := A ∪ {s}).
  void add(Symbol s);

  /// Removes one occurrence of s; s must be present.
  void remove(Symbol s);

  /// Empties the multiset (the paper's A := ∅).
  void clear();

  /// toseq: the canonical (non-decreasing) linearization.
  [[nodiscard]] std::vector<Symbol> to_sorted_sequence() const;

  /// Submultiset test: every multiplicity of *this is ≤ that of `other`.
  [[nodiscard]] bool submultiset_of(const Multiset& other) const;

  friend bool operator==(const Multiset&, const Multiset&) = default;

 private:
  Multiset() = default;  // for from_counts, which adopts the vector wholesale

  std::vector<std::uint32_t> counts_;
  std::uint32_t size_ = 0;
};

/// The precomputed counting tables shared by every codec instance with the
/// same (k, n): the μ-table of the Pascal-style recurrence plus its
/// per-position cumulative sums (see MultisetCodec). Immutable once built,
/// so instances on different threads may share one safely.
struct MultisetTables;

/// Rank/unrank bijection between multi_k(n) and [0, μ_k(n)).
///
/// Construction: μ-table via the Pascal-style recurrence
/// μ_j(L) = μ_{j-1}(L) + μ_j(L-1), plus cumulative suffix-count sums
/// cum_L(c) = Σ_{c'<c} μ_{k-c'}(L). The tables are interned in a
/// process-wide cache keyed on (k, n), so constructing many codecs for the
/// same parameters (one per block/protocol instance, or one per campaign
/// job) builds them exactly once. With the cumulative table, rank() costs
/// at most one BigUint add + subtract per symbol change (none for repeats)
/// and unrank() one comparison per repeated symbol plus a galloping search
/// per change — O(n + min(k, n) log k) BigUint operations instead of the
/// recurrence walk's O(n·k) worst case.
class MultisetCodec {
 public:
  /// Requires k >= 1, n >= 0.
  MultisetCodec(std::uint32_t k, std::uint32_t n);

  [[nodiscard]] std::uint32_t universe() const { return k_; }
  [[nodiscard]] std::uint32_t block_size() const { return n_; }

  /// μ_k(n): the number of codable multisets.
  [[nodiscard]] const bigint::BigUint& count() const;

  /// Rank of a multiset in [0, μ_k(n)). Requires m.universe()==k, m.size()==n.
  [[nodiscard]] bigint::BigUint rank(const Multiset& m) const;

  /// Inverse of rank(). Requires value < μ_k(n).
  [[nodiscard]] Multiset unrank(const bigint::BigUint& value) const;

  /// The original O(n·k) recurrence-walk implementations, kept as the
  /// differential-testing and benchmarking reference for the cumulative-table
  /// fast paths above. Semantically identical to rank()/unrank().
  [[nodiscard]] bigint::BigUint rank_reference(const Multiset& m) const;
  [[nodiscard]] Multiset unrank_reference(const bigint::BigUint& value) const;

 private:
  /// μ_j(L) — number of non-decreasing length-L sequences over a j-symbol
  /// suffix universe; used as the suffix-count in ranking.
  [[nodiscard]] const bigint::BigUint& suffix_count(std::uint32_t j, std::uint32_t L) const;

  std::uint32_t k_;
  std::uint32_t n_;
  std::shared_ptr<const MultisetTables> tables_;  // interned per (k, n)
};

/// Converts a bit string (MSB first) to the integer it denotes.
[[nodiscard]] bigint::BigUint bits_to_biguint(std::span<const std::uint8_t> bits);

/// Renders `value` as exactly `width` bits, MSB first. Requires
/// value < 2^width.
[[nodiscard]] std::vector<std::uint8_t> biguint_to_bits(const bigint::BigUint& value,
                                                        std::size_t width);

}  // namespace rstp::combinatorics
