// BlockCoder: the "straightforward but tedious" encoding the paper omits.
//
// The β and γ protocols (§6) transmit B = ⌊log2 μ_k(δ)⌋ message bits per
// block by composing toseq_k(δ) ∘ tomulti_k(δ): the B bits name an integer,
// the integer is unranked to a multiset of δ symbols, and the multiset's
// linearization is sent as δ packets. The receiver collects the δ packets
// into a multiset (in whatever order the channel delivered them), ranks it,
// and recovers the B bits. This class implements both directions exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rstp/combinatorics/multiset_codec.h"

namespace rstp::combinatorics {

/// A message bit (the paper's M = {0, 1}).
using Bit = std::uint8_t;

class BlockCoder {
 public:
  /// Coder for blocks of `delta` packets over a `k`-symbol alphabet.
  /// Requires k >= 2 and μ_k(delta) >= 2 (a block must carry at least one
  /// bit, i.e. delta >= 1).
  BlockCoder(std::uint32_t k, std::uint32_t delta);

  /// B: data bits carried per block of delta packets.
  [[nodiscard]] std::size_t bits_per_block() const { return bits_per_block_; }

  /// δ: packets per block.
  [[nodiscard]] std::uint32_t packets_per_block() const { return codec_.block_size(); }

  /// k: alphabet size.
  [[nodiscard]] std::uint32_t alphabet() const { return codec_.universe(); }

  /// Encodes exactly bits_per_block() bits into the canonical (sorted)
  /// δ-symbol block.
  [[nodiscard]] std::vector<Symbol> encode(std::span<const Bit> bits) const;

  /// Decodes a received block from its multiset. Throws rstp::ModelError if
  /// the multiset is not a valid codeword (possible only if the channel
  /// model was violated, e.g. corruption/mixing across blocks).
  [[nodiscard]] std::vector<Bit> decode(const Multiset& block) const;

  /// Convenience: decode from symbols in arrival order.
  [[nodiscard]] std::vector<Bit> decode(std::span<const Symbol> symbols) const;

  /// Encodes an arbitrary-length message: pads with zero bits to a multiple
  /// of bits_per_block() and concatenates the per-block symbol sequences.
  [[nodiscard]] std::vector<Symbol> encode_message(std::span<const Bit> message) const;

  /// Number of padded bits encode_message() appends to a message of length n.
  [[nodiscard]] std::size_t padding_for(std::size_t message_bits) const;

  /// Number of blocks encode_message() emits for a message of length n
  /// (always at least 1, even for an empty message — the paper transmits a
  /// fixed-length X known to both sides, so an empty X needs no blocks; we
  /// return 0 in that case).
  [[nodiscard]] std::size_t blocks_for(std::size_t message_bits) const;

 private:
  MultisetCodec codec_;
  std::size_t bits_per_block_;
};

}  // namespace rstp::combinatorics
