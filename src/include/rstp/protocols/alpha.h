// A^α — the simple r-passive solution (paper §4, Figure 1).
//
// The transmitter sends each message bit as one packet, then performs
// ⌈d/c1⌉ − 1 wait steps before the next send, so consecutive sends are at
// least ⌈d/c1⌉ steps ≥ d time apart even at the fastest rate c1. Packets are
// therefore delivered in send order and the receiver can write each packet's
// payload directly. Effort: exactly ⌈d/c1⌉·c2 per message in the worst case
// (= d·c2/c1 when c1 | d, the paper's value).
//
// The receiver stores arrivals in an array and writes them one per step,
// idling when it has nothing to do — a direct transcription of Figure 1,
// including the unbounded array the paper's Remark allows for simplicity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rstp/protocols/base.h"

namespace rstp::protocols {

class AlphaTransmitter final : public TransmitterBase {
 public:
  explicit AlphaTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  /// Steps from one send to the next (⌈d/c1⌉); exposed for tests/benches.
  [[nodiscard]] std::int64_t steps_per_message() const { return wait_steps_; }

 private:
  std::string name_;
  std::vector<ioa::Bit> input_;   // X
  std::int64_t wait_steps_ = 0;   // ⌈d/c1⌉
  std::size_t i_ = 0;             // next message index
  std::int64_t j_ = 0;            // idle-step counter (Figure 1's j)
};

class AlphaReceiver final : public ReceiverBase {
 public:
  explicit AlphaReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::vector<ioa::Bit> received_;  // Figure 1's y_1, y_2, ...
  std::vector<ioa::Bit> written_;   // Y
};

}  // namespace rstp::protocols
