// Shared protocol machinery: configuration, transmitter/receiver interfaces,
// and the internal-action vocabulary common to all RSTP solutions.
//
// A solution to RSTP (paper §4) is a pair (A_t, A_r). Every transmitter here
// is given the whole input sequence X up front (as in Figures 1/3/4: "we
// assume that A_t is given X") and every receiver is given |X| — the paper's
// receivers likewise implicitly know when the job is done ("A_r has only to
// write the elements of X"); operationally the length lets block receivers
// discard padding bits and lets the simulator detect quiescence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rstp/core/params.h"
#include "rstp/ioa/automaton.h"
#include "rstp/obs/run_metrics.h"

namespace rstp::est {
class BlockPlanner;
}

namespace rstp::protocols {

/// Everything needed to instantiate one (A_t, A_r) pair.
struct ProtocolConfig {
  core::TimingParams params{};
  /// k: the transmitter packet alphabet size, |P^tr| (>= 2).
  std::uint32_t k = 2;
  /// X: the input sequence of message bits.
  std::vector<ioa::Bit> input;

  /// Overrides for the block protocols' derived sizes (both must agree
  /// between the transmitter and receiver of a pair):
  ///   * β: block = packets per block (default ⌈d/c1⌉), wait = idle steps
  ///     between blocks (default ⌈d/c1⌉). Setting wait below ⌈d/c1⌉ breaks
  ///     the block-separation argument — used by the ablation experiments.
  ///   * γ: block = packets per block / acks per round (default ⌊d/c2⌋).
  /// They also serve the §7 generalized model, where the sizes derive from
  /// per-process rates and a delivery window rather than from `params`.
  std::optional<std::uint32_t> block_size_override;
  std::optional<std::uint32_t> wait_steps_override;

  /// Window size for the windowed-γ extension: how many blocks may be in
  /// flight, each tagged with its block index mod W (alphabet k must be a
  /// multiple of W, leaving k/W ≥ 2 data symbols). Default 2. W = 1
  /// degenerates to plain γ's stop-and-wait block rhythm.
  std::optional<std::uint32_t> window_override;

  /// When set, the factory builds the estimator-driven β/γ variants
  /// (est/adaptive.h) instead of the oracle-constant automata; the planner is
  /// shared between the pair so both sides agree on every per-block plan.
  /// Only Beta and Gamma support it. Ignored by validate().
  std::shared_ptr<est::BlockPlanner> planner;

  /// Validates params, k >= 2, positive overrides, and binary input.
  void validate() const;
};

/// Internal action identities shared across protocols (names are for traces).
inline constexpr std::uint16_t kWaitT = 1;  ///< transmitter inter-block wait
inline constexpr std::uint16_t kIdleR = 2;  ///< receiver idle
inline constexpr std::uint16_t kIdleT = 3;  ///< transmitter idle (await acks)

[[nodiscard]] ioa::Action wait_t_action();
[[nodiscard]] ioa::Action idle_r_action();
[[nodiscard]] ioa::Action idle_t_action();

/// A_t: accepts r→t packets as inputs and reports when its last send(p) is
/// behind it (used by the effort harness and by tests).
///
/// The obs::CounterSource base is the uniform stat-hook: implementations bump
/// `counters_` at their semantic milestones (block fully sent, ack consumed)
/// and every protocol reports through the same RunMetrics fields. Protocols
/// with no block/ack structure simply leave the counters at zero.
class TransmitterBase : public ioa::Automaton, public obs::CounterSource {
 public:
  /// True once the automaton will never perform another send.
  [[nodiscard]] virtual bool transmission_complete() const = 0;

  [[nodiscard]] bool accepts_input(const ioa::Action& action) const override;

  [[nodiscard]] const obs::ProtocolCounters& protocol_counters() const final {
    return counters_;
  }

 protected:
  obs::ProtocolCounters counters_;
};

/// A_r: accepts t→r packets as inputs and exposes the output tape Y.
class ReceiverBase : public ioa::Automaton, public obs::CounterSource {
 public:
  /// Y so far: the sequence of messages written (in write order).
  [[nodiscard]] virtual const std::vector<ioa::Bit>& output() const = 0;

  [[nodiscard]] bool accepts_input(const ioa::Action& action) const override;

  [[nodiscard]] const obs::ProtocolCounters& protocol_counters() const final {
    return counters_;
  }

 protected:
  obs::ProtocolCounters counters_;
};

}  // namespace rstp::protocols
