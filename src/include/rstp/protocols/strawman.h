// Strawman positional-block protocol — a deliberately order-SENSITIVE
// variant of A^β used by experiment E7 (the executable Lemma 5.1 study).
//
// It keeps A^β's exact send/wait rhythm (δ sends, δ waits) but encodes each
// block positionally: with b = ⌊log2 k⌋ bits per symbol, a block of δ
// symbols carries δ·b bits whose meaning depends on the ORDER in which the
// packets arrive. Under a FIFO environment it works and even carries more
// bits per block than A^β; under the adversarial batch policy — which
// delivers each window as a canonically-ordered batch, exactly the adversary
// from the lower-bound proofs — the arrival order is destroyed and the
// output is corrupted while A^β(k) still decodes perfectly.
//
// This contrast is the point: only the multiset content of a δ-window is
// information the receiver can rely on, which is precisely why μ_k(δ) (and
// not k^δ) appears in the paper's bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rstp/protocols/base.h"

namespace rstp::protocols {

class StrawmanTransmitter final : public TransmitterBase {
 public:
  explicit StrawmanTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  [[nodiscard]] std::int64_t block_size() const { return delta_; }
  [[nodiscard]] std::size_t bits_per_block() const { return bits_per_block_; }

 private:
  std::string name_;
  std::vector<std::uint32_t> stream_;  // positional symbols, block-aligned
  std::int64_t delta_ = 0;
  std::size_t bits_per_symbol_ = 0;
  std::size_t bits_per_block_ = 0;
  std::size_t i_ = 0;
  std::int64_t c_ = 0;
};

class StrawmanReceiver final : public ReceiverBase {
 public:
  explicit StrawmanReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::vector<std::uint32_t> arrivals_;  // current block, in ARRIVAL order
  std::vector<ioa::Bit> decoded_;
  std::vector<ioa::Bit> written_;
  std::uint32_t k_ = 2;
  std::int64_t delta_ = 0;
  std::size_t bits_per_symbol_ = 0;
  std::size_t target_length_ = 0;
};

}  // namespace rstp::protocols
