// A^γ(k) — the active (acknowledgement-based) solution (paper §6.2,
// Figure 4; the protocol idea is credited to Richard Beigel).
//
// Like A^β but with block size δ2 = ⌊d/c2⌋ and ack-based block separation:
// the transmitter sends the δ2 packets of a block (taking ≤ δ2·c2 ≤ d time),
// then idles until it has received δ2 acknowledgements — one per delivered
// packet — before starting the next block. Since acks certify that the
// receiver holds the complete block, no timing argument is needed for block
// separation, and the per-block latency is bounded by 3d + c2 (packet
// delivery d, receiver ack step c2, ack delivery d, plus the ≤ d of block
// transmission), giving effort ≤ (3d + c2)/⌊log2 μ_k(δ2)⌋.
//
// The receiver's local-action priority is: outstanding acks first, then
// writes, then idle — acks gate the transmitter's progress, writes do not.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rstp/combinatorics/block_coder.h"
#include "rstp/protocols/base.h"

namespace rstp::protocols {

/// Payload of every acknowledgement packet (P^rt is the singleton {ack}).
inline constexpr std::uint32_t kAckPayload = 0;

class GammaTransmitter final : public TransmitterBase {
 public:
  explicit GammaTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  /// δ2: packets per block (= acks awaited per round).
  [[nodiscard]] std::int64_t block_size() const { return delta2_; }
  [[nodiscard]] std::size_t bits_per_block() const { return coder_->bits_per_block(); }
  [[nodiscard]] const std::vector<combinatorics::Symbol>& symbol_stream() const { return stream_; }

 private:
  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;
  std::vector<combinatorics::Symbol> stream_;
  std::int64_t delta2_ = 0;  // δ2
  std::size_t i_ = 0;        // next symbol index
  std::int64_t c_ = 0;       // packets sent in the current block (Figure 4's c)
  std::int64_t a_ = 0;       // acks received in the current block (Figure 4's a)
};

class GammaReceiver final : public ReceiverBase {
 public:
  explicit GammaReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  [[nodiscard]] std::size_t decoded_bits() const { return decoded_.size(); }

 private:
  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;
  combinatorics::Multiset block_;   // Figure 4's A
  std::vector<ioa::Bit> decoded_;
  std::vector<ioa::Bit> written_;   // Y
  std::int64_t unacked_ = 0;        // Figure 4's j: received, not yet acked
  std::size_t target_length_ = 0;
};

}  // namespace rstp::protocols
