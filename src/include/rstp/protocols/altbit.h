// Stop-and-wait / alternating-bit baseline ([BSW69], cited in §1).
//
// The classic comparator: one message bit per round trip. The transmitter
// sends (x_i, seq) where seq = i mod 2, then idles until the ack carrying
// seq arrives; the receiver writes each accepted bit and acknowledges every
// packet with its sequence bit. On this channel (lossless, duplication-free,
// delay ≤ d) a single outstanding packet needs no retransmission, so the
// protocol degenerates to pure stop-and-wait; the alternating bit is kept
// and *checked* at both ends as a protocol-fidelity assertion.
//
// Purpose in this repository: the E8 baseline. Its worst-case effort is
// ~2d + 2c2 per bit (one round trip each), against which the multiset-block
// protocols' ~(3d + c2)/B per bit shows the win factor of block encoding.
//
// Packet formats: data payload = bit | (seq << 1) ∈ {0,1,2,3} (so |P^tr| = 4);
// ack payload = seq ∈ {0,1}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rstp/protocols/base.h"

namespace rstp::protocols {

class AltBitTransmitter final : public TransmitterBase {
 public:
  explicit AltBitTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  enum class Phase : std::uint8_t { Sending, AwaitingAck };

  std::string name_;
  std::vector<ioa::Bit> input_;
  std::size_t i_ = 0;
  Phase phase_ = Phase::Sending;
};

class AltBitReceiver final : public ReceiverBase {
 public:
  explicit AltBitReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::vector<ioa::Bit> accepted_;       // bits accepted, pending write
  std::vector<ioa::Bit> written_;        // Y
  std::vector<std::uint32_t> ack_queue_;  // seq bits to acknowledge, FIFO
  std::uint32_t expected_seq_ = 0;
};

}  // namespace rstp::protocols
