// Uniform construction of (A_t, A_r) pairs — the library's main entry point
// for "give me a solution to RSTP".
#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>

#include "rstp/protocols/base.h"

namespace rstp::protocols {

enum class ProtocolKind : std::uint8_t {
  Alpha,     ///< §4 Figure 1 — simple r-passive, one bit per d
  Beta,      ///< §6.1 Figure 3 — block r-passive, multiset-coded
  Gamma,     ///< §6.2 Figure 4 — active, ack-gated multiset blocks
  AltBit,    ///< [BSW69] baseline — stop-and-wait, one bit per round trip
  Strawman,  ///< order-sensitive positional blocks (E7 negative exhibit)
  Indexed,   ///< [Ste76]-style unbounded-alphabet streaming (needs k >= 2|X|)
  WindowedGamma,  ///< pipelined gamma extension: 2 parity-tagged blocks in flight
};

[[nodiscard]] std::string_view to_string(ProtocolKind kind);
std::ostream& operator<<(std::ostream& os, ProtocolKind kind);

/// True for the protocols in which the receiver sends no packets (P^rt = ∅).
[[nodiscard]] bool is_r_passive(ProtocolKind kind);

struct ProtocolInstance {
  std::unique_ptr<TransmitterBase> transmitter;
  std::unique_ptr<ReceiverBase> receiver;
};

/// Builds a fresh transmitter/receiver pair for `kind` over `config`.
/// Throws rstp::ContractViolation on invalid configurations.
[[nodiscard]] ProtocolInstance make_protocol(ProtocolKind kind, const ProtocolConfig& config);

/// All kinds, for parameterized sweeps.
inline constexpr ProtocolKind kAllProtocolKinds[] = {
    ProtocolKind::Alpha,  ProtocolKind::Beta,     ProtocolKind::Gamma,  ProtocolKind::AltBit,
    ProtocolKind::Strawman, ProtocolKind::Indexed, ProtocolKind::WindowedGamma};

/// The correct solutions from the paper (excludes the strawman exhibit).
inline constexpr ProtocolKind kPaperProtocolKinds[] = {
    ProtocolKind::Alpha, ProtocolKind::Beta, ProtocolKind::Gamma, ProtocolKind::AltBit};

}  // namespace rstp::protocols
