// A^γw(k, W) — windowed (pipelined) gamma: an engineered extension.
//
// The paper's A^γ is stop-and-wait at block granularity: after δ2 packets it
// idles until all δ2 acks return, so every block pays the full ~3d round
// trip. This variant keeps up to W blocks in flight by tagging each packet
// with its block index mod W:
//
//   payload = symbol + (k/W)·tag,  tag = block_index mod W
//
// The receiver separates concurrent blocks by tag (each tag class has at
// most one outstanding block, because the transmitter starts block b+W only
// once block b is fully acked — and acks imply receipt), decodes each tag's
// multiset when complete, and writes blocks in order. Acks carry the
// packet's tag so the transmitter can attribute them.
//
// The trade: the per-block round trip amortizes over W blocks — for W large
// enough the pipeline hides it entirely and effort approaches the streaming
// limit δ2·c2/B' — but symbols come from an alphabet of k/W, so each block
// carries only B' = ⌊log2 μ_{k/W}(δ2)⌋ bits. Windowing wins iff W·B' > B;
// E16 locates the crossovers in both k and W. This is exactly the kind of
// protocol the paper's framework prices: pipelining is purchased with
// alphabet. W = 1 degenerates to plain γ's rhythm; the default is W = 2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rstp/combinatorics/block_coder.h"
#include "rstp/core/bounds.h"
#include "rstp/protocols/base.h"

namespace rstp::protocols {

/// Worst-case effort bound for A^γw(k, W): W blocks complete per
/// max(W·δ2·c2, δ2·c2 + 2d + 2c2) window (send-limited vs round-trip-
/// limited), each carrying ⌊log2 μ_{k/W}(δ2)⌋ bits. Requires W >= 1,
/// W | k, and k/W >= 2.
[[nodiscard]] double windowed_gamma_upper(const core::TimingParams& params, std::uint32_t k,
                                          std::uint32_t window = 2);

class WindowedGammaTransmitter final : public TransmitterBase {
 public:
  /// Requires W | k and k/W >= 2 (W from config.window_override, default 2).
  explicit WindowedGammaTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  [[nodiscard]] std::int64_t block_size() const { return delta2_; }
  [[nodiscard]] std::size_t bits_per_block() const { return coder_->bits_per_block(); }
  [[nodiscard]] const std::vector<combinatorics::Symbol>& symbol_stream() const { return stream_; }

 private:
  /// The tag class of the block currently awaiting acks at the head of the
  /// window (block index `completed_`).
  [[nodiscard]] std::size_t head_tag() const { return completed_ % window_; }

  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;  // over k/W symbols
  std::vector<combinatorics::Symbol> stream_;               // untagged symbols
  std::uint32_t symbols_ = 2;   // k/W
  std::uint32_t window_ = 2;    // W
  std::int64_t delta2_ = 0;
  std::size_t i_ = 0;           // next symbol index
  std::int64_t c_ = 0;          // packets sent in the current block
  std::size_t block_ = 0;       // index of the block being sent
  std::size_t completed_ = 0;   // fully-acked blocks (prefix of the block order)
  std::vector<std::int64_t> acks_;  // acks per tag for outstanding blocks
};

class WindowedGammaReceiver final : public ReceiverBase {
 public:
  explicit WindowedGammaReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  [[nodiscard]] std::size_t decoded_bits() const { return decoded_.size(); }

 private:
  void decode_ready_blocks();

  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;
  std::uint32_t symbols_ = 2;  // k/W
  std::uint32_t window_ = 2;   // W
  std::vector<combinatorics::Multiset> blocks_;  // per-tag accumulation
  std::size_t next_tag_ = 0;                     // blocks decode in order
  std::vector<std::uint32_t> ack_queue_;         // tags to acknowledge
  std::vector<ioa::Bit> decoded_;
  std::vector<ioa::Bit> written_;
  std::size_t target_length_ = 0;
};

}  // namespace rstp::protocols
