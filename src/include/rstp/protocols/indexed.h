// Indexed streaming — the unbounded-alphabet escape hatch ([Ste76]-style
// sequence numbering, adapted to the lossless bounded-delay channel).
//
// Every bound in the paper depends on k = |P^tr|: effort ≥ Ω(δ·c2/log μ_k(δ)).
// This protocol shows the dependence is essential. Give each packet its
// index — payload = (i << 1) | x_i, an alphabet of size 2·|X| — and
// reordering becomes harmless without any waiting or acking: the transmitter
// streams one packet per step and stops; the receiver reassembles by index.
// Worst-case effort: exactly c2 per bit, *below every fixed-k lower bound*
// once |X| is large enough. The price is the unbounded alphabet — precisely
// the resource the paper's model charges for.
//
// Like the other solutions it is r-passive; unlike them it needs
// k ≥ 2·|X| (checked at construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rstp/protocols/base.h"

namespace rstp::protocols {

class IndexedTransmitter final : public TransmitterBase {
 public:
  explicit IndexedTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::vector<ioa::Bit> input_;
  std::size_t i_ = 0;
};

class IndexedReceiver final : public ReceiverBase {
 public:
  explicit IndexedReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

 private:
  std::string name_;
  std::vector<std::uint8_t> present_;  // arrival mask by index
  std::vector<ioa::Bit> slots_;        // reassembly buffer
  std::vector<ioa::Bit> written_;      // Y
  std::size_t target_length_ = 0;
};

}  // namespace rstp::protocols
