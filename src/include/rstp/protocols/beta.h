// A^β(k) — the block r-passive solution (paper §6.1, Figure 3).
//
// The transmitter groups the input into chunks of B = ⌊log2 μ_k(δ)⌋ bits,
// encodes each chunk as a multiset of δ packets over the k-symbol alphabet
// (combinatorics::BlockCoder), and runs in rounds of 2δ steps: δ sends
// followed by δ idle steps. The idle phase spans ≥ d time at every legal
// step rate, so all packets of a block are delivered before any packet of
// the next block — blocks cannot mix. Within a block the channel may reorder
// arbitrarily; decoding is from the multiset, so order is irrelevant.
//
// δ here is ⌈d/c1⌉ (the paper's δ1 = d/c1 generalized to non-dividing c1;
// see core::TimingParams::delta1_wait). Worst-case effort:
// 2δ·c2 / B per message (Lemma 6.1's bound).
//
// The receiver accumulates arrivals in a multiset A, decodes every full
// block of δ, and writes the recovered bits one per step, discarding the
// zero-padding beyond |X|.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rstp/combinatorics/block_coder.h"
#include "rstp/protocols/base.h"

namespace rstp::protocols {

class BetaTransmitter final : public TransmitterBase {
 public:
  explicit BetaTransmitter(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] bool transmission_complete() const override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  /// δ: packets per block (default ⌈d/c1⌉, overridable via ProtocolConfig).
  [[nodiscard]] std::int64_t block_size() const { return block_; }
  /// Idle steps between blocks (default ⌈d/c1⌉, overridable).
  [[nodiscard]] std::int64_t wait_steps() const { return wait_; }
  /// B: message bits per block.
  [[nodiscard]] std::size_t bits_per_block() const { return coder_->bits_per_block(); }
  /// The full encoded symbol stream (|input| padded to a block multiple).
  [[nodiscard]] const std::vector<combinatorics::Symbol>& symbol_stream() const { return stream_; }

 private:
  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;
  std::vector<combinatorics::Symbol> stream_;  // encoded X, block-aligned
  std::int64_t block_ = 0;                     // δ (send-phase length)
  std::int64_t wait_ = 0;                      // idle-phase length
  std::size_t i_ = 0;                          // next symbol index (Figure 3's i)
  std::int64_t c_ = 0;                         // round step counter (Figure 3's c)
};

class BetaReceiver final : public ReceiverBase {
 public:
  explicit BetaReceiver(ProtocolConfig config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::optional<ioa::Action> enabled_local() const override;
  void apply(const ioa::Action& action) override;
  [[nodiscard]] bool quiescent() const override;
  [[nodiscard]] const std::vector<ioa::Bit>& output() const override { return written_; }
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::unique_ptr<ioa::Automaton> clone() const override;

  /// Bits decoded so far (includes padding not yet known to be padding).
  [[nodiscard]] std::size_t decoded_bits() const { return decoded_.size(); }

 private:
  std::string name_;
  std::shared_ptr<const combinatorics::BlockCoder> coder_;
  combinatorics::Multiset block_;     // Figure 3's A
  std::vector<ioa::Bit> decoded_;     // Figure 3's ŷ_1, ŷ_2, ...
  std::vector<ioa::Bit> written_;     // Y
  std::size_t target_length_ = 0;     // |X|: bits beyond this are padding
};

}  // namespace rstp::protocols
