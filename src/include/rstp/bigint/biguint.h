// BigUint: arbitrary-precision unsigned integers.
//
// Why it exists: the paper's encodings and bounds are built on the counts
// μ_k(n) = C(n+k-1, k-1) and ζ_k(n) = Σ_{j≤n} μ_k(j). For realistic model
// parameters (δ up to a few hundred, k up to a few thousand) these counts
// vastly overflow 64- and 128-bit integers, yet the multiset rank/unrank
// codec (combinatorics/) must be *exactly* injective — a single off-by-one
// from floating-point rounding would silently corrupt transmitted data. So
// the codec and the bound tables run on exact big integers.
//
// Representation: little-endian vector of 64-bit limbs, normalized (no
// trailing zero limbs; zero is the empty vector). The class is a regular
// value type with the usual arithmetic operators, full ordering, exact
// divmod, bit operations, and decimal/double conversions.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rstp::bigint {

class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a machine word.
  explicit BigUint(std::uint64_t value);

  /// Parse a non-empty decimal string (digits only). Throws
  /// rstp::ContractViolation on malformed input.
  [[nodiscard]] static BigUint from_decimal(std::string_view text);

  /// 2^exponent.
  [[nodiscard]] static BigUint pow2(std::size_t exponent);

  // --- observers ---------------------------------------------------------

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits; 0 for zero (so bit_length()-1 is floor(log2)
  /// for nonzero values).
  [[nodiscard]] std::size_t bit_length() const;

  /// Value of bit `i` (i counts from the least significant bit).
  [[nodiscard]] bool bit(std::size_t i) const;

  /// True iff the value fits in a u64.
  [[nodiscard]] bool fits_u64() const { return limbs_.size() <= 1; }

  /// Low 64 bits if fits_u64(), otherwise throws.
  [[nodiscard]] std::uint64_t to_u64() const;

  /// Nearest double (may overflow to +inf for enormous values).
  [[nodiscard]] double to_double() const;

  /// log2 of the value as a double, exact to double precision; requires a
  /// nonzero value. Works far beyond double range (uses the top limbs plus
  /// the bit length).
  [[nodiscard]] double log2() const;

  /// Decimal rendering.
  [[nodiscard]] std::string to_decimal() const;

  // --- arithmetic --------------------------------------------------------

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);  ///< requires *this >= rhs
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator<<=(std::size_t bits);
  BigUint& operator>>=(std::size_t bits);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  friend BigUint operator<<(BigUint a, std::size_t bits) { return a <<= bits; }
  friend BigUint operator>>(BigUint a, std::size_t bits) { return a >>= bits; }

  /// Quotient and remainder in one pass. Throws on division by zero.
  struct DivModResult;
  [[nodiscard]] static DivModResult divmod(const BigUint& numerator, const BigUint& denominator);

  friend BigUint operator/(const BigUint& a, const BigUint& b);
  friend BigUint operator%(const BigUint& a, const BigUint& b);

  /// Exact division by a machine word with remainder out-param; faster than
  /// general divmod and used by the binomial pipeline.
  [[nodiscard]] BigUint div_u64(std::uint64_t divisor, std::uint64_t& remainder) const;

  BigUint& mul_u64(std::uint64_t factor);
  BigUint& add_u64(std::uint64_t addend);

  // --- comparison --------------------------------------------------------

  friend bool operator==(const BigUint& a, const BigUint& b) { return a.limbs_ == b.limbs_; }
  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b);

  friend std::ostream& operator<<(std::ostream& os, const BigUint& v);

 private:
  void normalize();

  std::vector<std::uint64_t> limbs_;  // little-endian, normalized
};

struct BigUint::DivModResult {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint operator/(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).quotient;
}
inline BigUint operator%(const BigUint& a, const BigUint& b) {
  return BigUint::divmod(a, b).remainder;
}

}  // namespace rstp::bigint
