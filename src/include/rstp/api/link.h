// High-level byte-transfer facade — the API a downstream user adopts.
//
// Everything below this header speaks the paper's language (bits, automata,
// ticks). Link speaks the user's: give it bytes and a timing model, it picks
// (or is told) a protocol, runs the full composition through the simulator,
// optionally verifies the execution against good(A), and hands back the
// reassembled bytes plus transfer statistics.
//
//   rstp::api::LinkOptions options;
//   options.params = rstp::core::TimingParams::make(1, 2, 16);
//   options.k = 16;
//   rstp::api::Link link{options};
//   auto result = link.transfer(payload_bytes);
//   // result.ok, result.received, result.stats.ticks_per_bit, ...
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rstp/core/effort.h"
#include "rstp/protocols/factory.h"

namespace rstp::api {

/// Protocol selection: Auto picks the lower worst-case bound for the model
/// (β when timing is tight, γ when uncertainty is high — the E6 crossover).
enum class LinkProtocol : std::uint8_t { Auto, Alpha, Beta, Gamma, AltBit };

struct LinkOptions {
  core::TimingParams params = core::TimingParams::make(1, 2, 16);
  std::uint32_t k = 16;  ///< packet alphabet size
  LinkProtocol protocol = LinkProtocol::Auto;
  core::Environment environment = core::Environment::worst_case();
  /// Record the timed trace and run the good(A) verifier on it. Costs memory
  /// proportional to the execution; off by default for large transfers.
  bool verify = false;
  std::uint64_t max_events = 100'000'000;
};

struct TransferStats {
  protocols::ProtocolKind protocol_used{};
  std::size_t payload_bytes = 0;
  std::size_t payload_bits = 0;
  std::optional<Time> last_send;      ///< t(last-send), the effort numerator
  Time completion{};                  ///< time of the final event
  double ticks_per_bit = 0;           ///< measured effort
  std::uint64_t data_packets = 0;     ///< t→r sends
  std::uint64_t ack_packets = 0;      ///< r→t sends
  std::uint64_t events = 0;
  bool verified = false;              ///< verifier ran and accepted
};

struct TransferResult {
  /// Reassembled payload (== the input iff ok).
  std::vector<std::uint8_t> received;
  TransferStats stats;
  /// Transfer completed, bytes match, and (when requested) the trace
  /// verified against good(A).
  bool ok = false;
};

class Link {
 public:
  /// Validates options (throws rstp::ContractViolation on bad parameters).
  explicit Link(LinkOptions options);

  /// Transfers `payload` across the modeled channel. Each call is an
  /// independent run (fresh automata, fresh channel).
  [[nodiscard]] TransferResult transfer(std::span<const std::uint8_t> payload) const;

  /// The protocol Auto resolves to under these options.
  [[nodiscard]] protocols::ProtocolKind resolved_protocol() const { return resolved_; }

  /// Bound-based recommendation (the decision Auto makes).
  [[nodiscard]] static protocols::ProtocolKind recommend(const core::TimingParams& params,
                                                         std::uint32_t k);

 private:
  LinkOptions options_;
  protocols::ProtocolKind resolved_;
};

/// MSB-first bit (de)serialization used by Link; exposed for interop/tests.
[[nodiscard]] std::vector<ioa::Bit> bytes_to_bits(std::span<const std::uint8_t> bytes);
/// Requires bits.size() to be a multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> bits_to_bytes(std::span<const ioa::Bit> bits);

}  // namespace rstp::api
