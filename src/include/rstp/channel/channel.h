// The channel automaton C(P) (paper §4) with bounded-delay timing (Δ(C(P))).
//
// Untimed, C(P)'s fair executions are exactly the sequences with a bijection
// between send and recv events in which no packet is received before it is
// sent — i.e. a lossless, duplication-free, arbitrarily-reordering bag. The
// timing property Δ(C(P)) additionally bounds every packet's (recv − send)
// difference by d.
//
// We realize the nondeterminism with a DeliveryPolicy: at each send the
// policy picks the delivery instant (and a tie-order key) within [sent, sent
// + d]. Different policies are different adversaries/environments — FIFO,
// random, latest-possible, and the batch adversary from the Lemma 5.1/5.4
// lower-bound constructions. The Channel enforces the model: a policy that
// returns an out-of-window time triggers rstp::ModelError.
//
// Simultaneous deliveries: the discrete-time model needs a tie rule where the
// paper's continuous model has measure-zero coincidences. Deliveries at equal
// times are handed over in ascending (order_key, send_seq) order; the default
// order_key is 0, making equal-time deliveries arrive in send order. Policies
// may override order_key to exercise adversarial same-instant orders; the
// verifier only requires the delay window, not the tie rule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rstp/common/time.h"
#include "rstp/fault/fault.h"
#include "rstp/ioa/action.h"

namespace rstp::channel {

/// A policy's decision for one packet.
struct Delivery {
  Time when{};                 ///< delivery instant, in [sent_at, sent_at + d]
  std::uint64_t order_key = 0;  ///< tie order among equal-time deliveries
};

/// Strategy resolving the channel's nondeterminism. Implementations must be
/// deterministic given their construction (seeded RNG allowed).
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;

  /// Chooses when the `send_seq`-th packet, sent at `sent_at`, is delivered.
  /// `deadline` equals sent_at + d. Must return when ∈ [sent_at, deadline].
  [[nodiscard]] virtual Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                        std::uint64_t send_seq) = 0;
};

/// One packet accepted by the channel and not yet delivered.
struct InFlightPacket {
  ioa::Packet packet{};
  Time sent_at{};
  Time deliver_at{};
  std::uint64_t order_key = 0;
  std::uint64_t send_seq = 0;
};

/// The channel automaton with its timing property enforced at run time.
class Channel {
 public:
  /// `max_delay` is the paper's d. The policy resolves delivery times.
  /// `min_delay` generalizes the model per the paper's §7 (delivery within
  /// [d1, d2] instead of [0, d]); the default 0 is the paper's base model.
  /// The policy must respect both bounds — the channel enforces them.
  Channel(Duration max_delay, std::unique_ptr<DeliveryPolicy> policy,
          Duration min_delay = Duration{0});

  /// Accepts a send(p) input at time `now`.
  void send(const ioa::Packet& packet, Time now);

  /// Earliest pending delivery instant, if any packet is in flight.
  [[nodiscard]] std::optional<Time> next_delivery_time() const;

  /// Pops and returns every packet whose delivery instant is ≤ `now`, in
  /// delivery order (time, order_key, send_seq). The returned reference is to
  /// a reusable internal buffer: it stays valid until the next collect_due
  /// call and never allocates on the steady state (copy it to keep it).
  [[nodiscard]] const std::vector<InFlightPacket>& collect_due(Time now);

  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }
  [[nodiscard]] bool empty() const { return in_flight_.empty(); }
  [[nodiscard]] Duration max_delay() const { return max_delay_; }
  [[nodiscard]] Duration min_delay() const { return min_delay_; }

  /// Total packets ever accepted (= send events so far).
  [[nodiscard]] std::uint64_t total_sent() const { return send_seq_; }

  /// Attaches a fault injector (non-owning; must outlive the channel). Each
  /// subsequent send is first offered to the injector: drops never enter the
  /// queue, corruptions mutate the payload before the policy sees it, late
  /// decisions bypass the policy and schedule delivery past the deadline, and
  /// duplicates enqueue extra copies (each placed by the policy). Every
  /// applied fault lands in fault_log(), in send order. Without an injector
  /// (the default) behavior is exactly the in-model channel.
  void set_fault_injector(fault::FaultInjector* injector) { injector_ = injector; }

  /// Faults applied so far, in send order (one entry per duplicate copy).
  [[nodiscard]] const std::vector<fault::FaultEvent>& fault_log() const { return fault_log_; }

 private:
  Duration max_delay_;
  Duration min_delay_;
  std::unique_ptr<DeliveryPolicy> policy_;
  fault::FaultInjector* injector_ = nullptr;  // non-owning
  // Binary min-heap on (deliver_at, order_key, send_seq): O(log n) send and
  // pop instead of the previous sorted vector's O(n) insert.
  std::vector<InFlightPacket> in_flight_;
  std::vector<InFlightPacket> due_scratch_;  // reused by collect_due
  std::vector<fault::FaultEvent> fault_log_;
  std::uint64_t send_seq_ = 0;
};

}  // namespace rstp::channel
