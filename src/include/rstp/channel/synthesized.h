// Synthesized delivery schedules: the searchable half of the channel's
// nondeterminism space.
//
// The hand-coded policies in policies.h are *points* in the space of legal
// channel behaviours (Δ(C(P)) allows any per-packet delay in [0, d] and any
// tie order). A ScheduleGenome is a finite, serializable *program* over that
// space: cyclic tables of per-packet delays and tie-order keys, plus the two
// processes' step-gap tables. The adversary synthesizer (sim/adversary.h)
// mutates genomes hunting for effort maximizers; SynthesizedPolicy replays
// the channel half of a genome bit-exactly.
//
// Legality is the paper's model, nothing more:
//   * every delay ∈ [0, d]  — the timing property Δ(C(P)); because delays
//     are bounded, every packet is delivered: the fairness/liveness half of
//     C(P) (no packet is withheld forever) holds by construction.
//   * every step gap ∈ [c1, c2] and first offsets ∈ [0, c2] — the process
//     timing assumption the StepScheduler contract encodes.
//
// check_genome reports *all* defects as structured values (field, index,
// reason) rather than throwing on the first — the property tests (P7) and
// the CLI both want the full list; validate_genome is the throwing wrapper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "rstp/channel/channel.h"
#include "rstp/core/params.h"

namespace rstp::channel {

/// A complete, finite description of one channel adversary plus the two
/// process schedules it plays against. All tables are cyclic: packet
/// `send_seq` takes delay `delays[send_seq % delays.size()]`, step i of the
/// transmitter takes gap `t_gaps[i % t_gaps.size()]`, and so on. A genome is
/// a pure value: equal genomes replay to bit-identical executions.
struct ScheduleGenome {
  std::vector<Duration> delays{Duration{0}};       ///< per-packet, ∈ [0, d]
  std::vector<std::uint64_t> order_keys{0};        ///< per-packet tie order
  Duration t_first{0};                             ///< transmitter first offset ∈ [0, c2]
  Duration r_first{0};                             ///< receiver first offset ∈ [0, c2]
  std::vector<Duration> t_gaps{Duration{1}};       ///< transmitter gaps, ∈ [c1, c2]
  std::vector<Duration> r_gaps{Duration{1}};       ///< receiver gaps, ∈ [c1, c2]

  friend bool operator==(const ScheduleGenome&, const ScheduleGenome&) = default;
};

/// One legality violation found in a genome: which table, which slot, why.
struct GenomeDefect {
  std::string field;      ///< "delays", "order_keys", "t_first", "r_first", "t_gaps", "r_gaps"
  std::size_t index = 0;  ///< offending slot (0 for scalar fields)
  std::string reason;     ///< human-readable constraint, with the values
};

std::ostream& operator<<(std::ostream& os, const GenomeDefect& defect);

/// Full legality report for a genome against `params`.
struct GenomeCheck {
  std::vector<GenomeDefect> defects;
  [[nodiscard]] bool ok() const { return defects.empty(); }
};

/// Checks every table entry against the paper's model (delays within [0, d],
/// gaps within [c1, c2], first offsets within [0, c2], no empty tables).
/// Never throws; collects all defects.
[[nodiscard]] GenomeCheck check_genome(const ScheduleGenome& genome,
                                       const core::TimingParams& params);

/// Throwing wrapper: rstp::ModelError naming the first defect (and the total
/// defect count) if the genome is illegal.
void validate_genome(const ScheduleGenome& genome, const core::TimingParams& params);

/// Replays the channel half of a legal genome: packet send_seq is delivered
/// at sent_at + delays[send_seq % |delays|] with order_keys[send_seq %
/// |order_keys|]. Construction validates the genome (ContractViolation on an
/// illegal one) so the policy can never produce an out-of-window delivery.
class SynthesizedPolicy final : public DeliveryPolicy {
 public:
  SynthesizedPolicy(ScheduleGenome genome, const core::TimingParams& params);

  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;

  [[nodiscard]] const ScheduleGenome& genome() const { return genome_; }

 private:
  ScheduleGenome genome_;
};

[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_synthesized(
    ScheduleGenome genome, const core::TimingParams& params);

}  // namespace rstp::channel
