// Concrete delivery policies — points in the channel's nondeterminism space.
//
// Each policy is one "environment" the protocols can face:
//   * ZeroDelayPolicy      — instantaneous delivery (best case, FIFO).
//   * FixedDelayPolicy     — constant latency f ≤ d (FIFO; a perfect link).
//   * MaxDelayPolicy       — every packet takes exactly d (worst latency,
//                            still FIFO; drives worst-case effort runs).
//   * UniformRandomPolicy  — delay uniform in [lo, hi] ⊆ [0, d]; reorders.
//   * AdversarialBatchPolicy — the Lemma 5.1/5.4 adversary: groups the sends
//     of each time window of length W, delivers the whole window as one
//     batch at the earliest deadline, ordered canonically by payload (or
//     reversed), erasing all intra-window ordering information. With
//     W = δ1·c1 this realizes the executions used in the r-passive lower
//     bound: the receiver observes only the per-window multisets P^tr(X)[i].
#pragma once

#include <cstdint>
#include <memory>

#include "rstp/channel/channel.h"
#include "rstp/common/rng.h"
#include "rstp/core/drift.h"

namespace rstp::channel {

class ZeroDelayPolicy final : public DeliveryPolicy {
 public:
  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;
};

class FixedDelayPolicy final : public DeliveryPolicy {
 public:
  explicit FixedDelayPolicy(Duration delay);
  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;

 private:
  Duration delay_;
};

class MaxDelayPolicy final : public DeliveryPolicy {
 public:
  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;
};

class UniformRandomPolicy final : public DeliveryPolicy {
 public:
  /// Delay uniform in [lo, hi], which must satisfy 0 ≤ lo ≤ hi ≤ max_delay
  /// (the channel's d). The bounds are validated here, at construction, with
  /// a rstp::ContractViolation naming the offending values — a misconfigured
  /// policy used to surface only as a run-time channel model violation on the
  /// first unlucky draw.
  UniformRandomPolicy(Rng rng, Duration lo, Duration hi, Duration max_delay);
  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;

 private:
  Rng rng_;
  Duration lo_;
  Duration hi_;
};

class AdversarialBatchPolicy final : public DeliveryPolicy {
 public:
  enum class BatchOrder : std::uint8_t {
    AscendingPayload,   ///< canonical order — identical for equal multisets
    DescendingPayload,  ///< reversed canonical order
  };

  /// Windows are [i·W, (i+1)·W). All packets sent in window i are delivered
  /// simultaneously at time i·W + d (which is within every member's
  /// [sent, sent+d] window whenever W ≤ d). Requires 1 ≤ window ≤ d.
  AdversarialBatchPolicy(Duration window, Duration max_delay,
                         BatchOrder order = BatchOrder::AscendingPayload);

  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;

 private:
  Duration window_;
  Duration max_delay_;
  BatchOrder order_;
};

class DriftingDelayPolicy final : public DeliveryPolicy {
 public:
  /// Delay follows a core::DriftSpec: a packet sent at t takes the segment's
  /// d_eff, clamped into [0, max_delay] so a drifting run never leaves the
  /// envelope the verifier checks (the spec's breakpoints are what the
  /// online estimator has to chase). FIFO within a segment (order_key 0).
  /// Requires a non-empty, valid spec.
  DriftingDelayPolicy(core::DriftSpec spec, Duration max_delay);
  [[nodiscard]] Delivery choose(const ioa::Packet& packet, Time sent_at, Time deadline,
                                std::uint64_t send_seq) override;

 private:
  core::DriftSpec spec_;
  Duration max_delay_;
};

/// Convenience factories.
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_zero_delay();
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_fixed_delay(Duration delay);
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_max_delay();
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_uniform_random(std::uint64_t seed, Duration lo,
                                                                  Duration hi, Duration max_delay);
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_drifting_delay(core::DriftSpec spec,
                                                                  Duration max_delay);
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_adversarial_batch(
    Duration window, Duration max_delay,
    AdversarialBatchPolicy::BatchOrder order = AdversarialBatchPolicy::BatchOrder::AscendingPayload);

}  // namespace rstp::channel
