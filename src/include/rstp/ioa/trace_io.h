// Timed-trace (de)serialization.
//
// A stable line-oriented text format so executions can be saved, diffed,
// replayed through the verifier offline, or produced by external tools:
//
//   # any line starting with '#' is a comment
//   <seq> <time> <actor> send  <dir> <payload>
//   <seq> <time> <actor> recv  <dir> <payload>
//   <seq> <time> <actor> write <bit>
//   <seq> <time> <actor> internal <id> [name]
//
// where <actor> ∈ {t, r, c} and <dir> ∈ {tr, rt}. parse_trace rejects
// malformed lines and non-monotone sequences with rstp::ModelError (these
// are data errors, not caller bugs).
#pragma once

#include <iosfwd>
#include <string>

#include "rstp/ioa/trace.h"

namespace rstp::ioa {

/// Writes the trace in the documented format.
void write_trace(std::ostream& os, const TimedTrace& trace);

/// Renders the trace to a string.
[[nodiscard]] std::string trace_to_string(const TimedTrace& trace);

/// Parses a trace; inverse of write_trace. Throws rstp::ModelError on
/// malformed input. Internal action names are preserved only as far as the
/// static names the library knows; unknown names round-trip as empty.
[[nodiscard]] TimedTrace parse_trace(std::istream& is);
[[nodiscard]] TimedTrace parse_trace_string(const std::string& text);

}  // namespace rstp::ioa
