// Timed executions and traces (paper §2.2).
//
// A TimedTrace is the recorded timed execution of the composed system: a
// sequence of (time, actor, action) triples with non-decreasing times and
// t(first event) = 0 normalization left to the producer. Events carry a
// global sequence number so that simultaneous events retain the execution's
// total order (the paper's executions are sequences; timing maps events to
// reals monotonically but not injectively).
//
// The trace is the interface between the simulator (which produces it), the
// verifier (which checks it against good(A)), and the effort harness (which
// reads last-send times off it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "rstp/common/time.h"
#include "rstp/ioa/action.h"

namespace rstp::ioa {

/// Which component of the composition performed the event's action (the
/// component for which the action is *local*): send/write/internal events
/// belong to a process; recv events belong to the channel.
enum class Actor : std::uint8_t { Transmitter = 0, Receiver = 1, Channel = 2 };

std::ostream& operator<<(std::ostream& os, Actor a);

[[nodiscard]] constexpr Actor actor_of(ProcessId p) {
  return p == ProcessId::Transmitter ? Actor::Transmitter : Actor::Receiver;
}

struct TimedEvent {
  Time time{};
  Actor actor = Actor::Channel;
  Action action{};
  std::uint64_t seq = 0;  ///< position in the execution's total order

  friend bool operator==(const TimedEvent&, const TimedEvent&) = default;
};

std::ostream& operator<<(std::ostream& os, const TimedEvent& e);

class TimedTrace {
 public:
  TimedTrace() = default;

  /// Appends an event; times must be non-decreasing and seq strictly
  /// increasing (enforced).
  void append(TimedEvent event);

  /// Pre-allocates storage for `events` appends (producers that know the
  /// execution's rough length avoid reallocation churn on the hot path).
  void reserve(std::size_t events) { events_.reserve(events); }

  [[nodiscard]] const std::vector<TimedEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// The messages written in the execution — the paper's Y(η).
  [[nodiscard]] std::vector<Bit> written_messages() const;

  /// Time of the last send event by the given process (the paper's
  /// last-send(η^t) is the transmitter's); nullopt if it never sent.
  [[nodiscard]] std::optional<Time> last_send_time(ProcessId sender) const;

  /// Number of send events by the given process.
  [[nodiscard]] std::size_t send_count(ProcessId sender) const;

  /// All events whose action is local to `actor`, in execution order.
  [[nodiscard]] std::vector<TimedEvent> local_events(Actor actor) const;

  /// beh(α) (paper §2.1): the external actions only — send/recv/write
  /// events, with internal steps removed.
  [[nodiscard]] std::vector<TimedEvent> behavior() const;

  /// The timed execution as one process observes it (the paper's α|A_p for
  /// a process): its own local events plus the recv events addressed to it.
  /// Lemma 5.1's indistinguishability is literally "equal receiver views".
  [[nodiscard]] std::vector<TimedEvent> process_view(ProcessId process) const;

  /// Time of the last event, or Time::zero() if empty.
  [[nodiscard]] Time end_time() const;

 private:
  std::vector<TimedEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const TimedTrace& trace);

}  // namespace rstp::ioa
