// The action vocabulary of the RSTP I/O automata (paper §2, §4).
//
// Every automaton in the composition A_t ∘ C ∘ A_r interacts through four
// kinds of actions:
//   send(p)  — output of a process, input of the channel
//   recv(p)  — output of the channel, input of a process
//   write(m) — output of the receiver (appends m to the output tape Y)
//   internal — wait_t / idle_r / protocol-specific bookkeeping steps
//
// Packets carry a direction tag (P^tr vs P^rt — the paper keeps the two
// sub-alphabets disjoint) and an integer payload: a symbol in {0..k-1} for
// data packets, a protocol-defined value for acknowledgement packets.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace rstp::ioa {

/// A message bit, the paper's M = {0, 1}.
using Bit = std::uint8_t;

/// Which process an event belongs to (the channel is a third actor).
enum class ProcessId : std::uint8_t { Transmitter = 0, Receiver = 1 };

[[nodiscard]] constexpr ProcessId peer(ProcessId p) {
  return p == ProcessId::Transmitter ? ProcessId::Receiver : ProcessId::Transmitter;
}

std::ostream& operator<<(std::ostream& os, ProcessId p);

/// A packet on the channel. `direction` partitions the alphabet into the
/// paper's P^tr (transmitter→receiver) and P^rt (receiver→transmitter).
struct Packet {
  enum class Direction : std::uint8_t { TransmitterToReceiver = 0, ReceiverToTransmitter = 1 };

  Direction direction = Direction::TransmitterToReceiver;
  std::uint32_t payload = 0;

  /// The process this packet is addressed to.
  [[nodiscard]] constexpr ProcessId destination() const {
    return direction == Direction::TransmitterToReceiver ? ProcessId::Receiver
                                                         : ProcessId::Transmitter;
  }
  /// The process that sent this packet.
  [[nodiscard]] constexpr ProcessId source() const { return peer(destination()); }

  [[nodiscard]] static constexpr Packet to_receiver(std::uint32_t payload) {
    return Packet{Direction::TransmitterToReceiver, payload};
  }
  [[nodiscard]] static constexpr Packet to_transmitter(std::uint32_t payload) {
    return Packet{Direction::ReceiverToTransmitter, payload};
  }

  friend constexpr auto operator<=>(const Packet&, const Packet&) = default;
};

std::ostream& operator<<(std::ostream& os, const Packet& p);

enum class ActionKind : std::uint8_t { Send, Recv, Write, Internal };

std::ostream& operator<<(std::ostream& os, ActionKind k);

/// One action. Which payload field is meaningful depends on `kind`; the
/// factory functions below are the only intended constructors.
///
/// `internal_name` is a static debugging label (e.g. "wait_t"); it is not
/// part of an action's identity — `internal_id` is, mirroring the paper where
/// internal actions are distinguished elements of int(A).
struct Action {
  ActionKind kind = ActionKind::Internal;
  Packet packet{};                    // Send / Recv
  Bit message = 0;                    // Write
  std::uint16_t internal_id = 0;      // Internal
  std::string_view internal_name{};  // Internal (debug only, not identity)

  [[nodiscard]] static Action send(Packet p) { return Action{ActionKind::Send, p, 0, 0, {}}; }
  [[nodiscard]] static Action recv(Packet p) { return Action{ActionKind::Recv, p, 0, 0, {}}; }
  [[nodiscard]] static Action write(Bit m) { return Action{ActionKind::Write, {}, m, 0, {}}; }
  [[nodiscard]] static Action internal(std::uint16_t id, std::string_view name) {
    return Action{ActionKind::Internal, {}, 0, id, name};
  }

  friend bool operator==(const Action& a, const Action& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case ActionKind::Send:
      case ActionKind::Recv:
        return a.packet == b.packet;
      case ActionKind::Write:
        return a.message == b.message;
      case ActionKind::Internal:
        return a.internal_id == b.internal_id;
    }
    return false;
  }
};

std::ostream& operator<<(std::ostream& os, const Action& a);

}  // namespace rstp::ioa
