// Bounded-exhaustive exploration of good(A) for small instances.
//
// The simulator samples one execution per run; the explorer instead walks
// EVERY execution of A_t ∘ C ∘ A_r in a restricted but adversarially
// complete fragment of good(A):
//   * each process steps at a fixed integer period (c1 = c2 = period per
//     process; periods may differ — the §7 asymmetric fragment). Timing
//     *uncertainty* (c1 < c2) is exercised by randomized property tests;
//   * d is a small integer — each packet sent at instant s may be delivered
//     at any instant in [s, s+d] (receiver-bound; [s+1, s+d] for acks, which
//     cannot overtake the sender's own simultaneous step), in ANY order
//     relative to other deliverable packets.
// Within one instant the canonical event order matches the simulator:
// deliveries to the transmitter → the transmitter's step → deliveries to the
// receiver (including same-instant zero-delay arrivals of packets the
// transmitter just sent) → the receiver's step.
//
// The explorer checks a safety predicate in every reachable state and a
// completion predicate in every terminal state, with memoization on
// (t-state, r-state, in-flight packets with slots relative to now) so the
// search space is the set of distinct states, not executions.
//
// This is how the repository demonstrates Lemma 6.1-style correctness
// exhaustively: for tiny X, EVERY admissible reordering of every admissible
// delivery schedule leaves Y a prefix of X and every execution completes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rstp/ioa/automaton.h"
#include "rstp/ioa/trace.h"

namespace rstp::ioa {

struct ExplorerConfig {
  /// Integer delay bound d (in ticks).
  std::int64_t d = 2;
  /// Per-process step periods (the §7 asymmetric generalization with
  /// c1 = c2 = period per process): the transmitter steps at ticks divisible
  /// by t_period, the receiver at ticks divisible by r_period. Default 1/1
  /// is the synchronous fragment described above.
  std::int64_t t_period = 1;
  std::int64_t r_period = 1;
  /// Cap on distinct memoized states; exceeding it sets exhausted_caps.
  std::uint64_t max_states = 2'000'000;
  /// Cap on simultaneously in-flight packets (branch factor is factorial in
  /// this); exceeding it sets exhausted_caps.
  std::size_t max_in_flight = 8;
  /// Cap on execution depth (instants along one branch).
  std::uint64_t max_depth = 100'000;
};

struct ExplorerResult {
  std::uint64_t distinct_states = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t transitions = 0;
  bool safety_held = true;
  bool all_terminals_complete = true;
  bool exhausted_caps = false;
  /// Snapshot of the first state violating safety/completion, if any.
  std::string first_violation;
  /// The execution reaching the first violation, as a timed trace (one tick
  /// per instant; recv events carry Actor::Channel as in the simulator).
  /// Empty when no violation was found. The trace is a genuine member of
  /// good(A) — feeding it to core::verify_trace shows timing/channel clean
  /// but the output property broken, which is exactly what "the protocol is
  /// unsafe in this model" means.
  TimedTrace counterexample;

  [[nodiscard]] bool verified() const {
    return safety_held && all_terminals_complete && !exhausted_caps;
  }
};

class Explorer {
 public:
  /// Predicates receive the automata in their current explored state.
  using Predicate = std::function<bool(const Automaton& transmitter, const Automaton& receiver)>;

  /// The automata are cloned internally; the originals are not modified.
  /// `safety` is checked in every state, `complete` in terminal states
  /// (both quiescent/stopped, nothing in flight). Null predicates pass.
  Explorer(const Automaton& transmitter, const Automaton& receiver, ExplorerConfig config,
           Predicate safety, Predicate complete);

  [[nodiscard]] ExplorerResult run();

 private:
  const Automaton& transmitter_;
  const Automaton& receiver_;
  ExplorerConfig config_;
  Predicate safety_;
  Predicate complete_;
};

}  // namespace rstp::ioa
