// Deterministic I/O automata (paper §2.1, restricted per §5: "we consider
// only solutions (A_t, A_r) where both A_t and A_r are deterministic").
//
// A deterministic I/O automaton has, in every state, at most one enabled
// local (output or internal) action, and is input-enabled: any input action
// can be applied in any state. The simulator (sim/) drives an automaton by
// alternately delivering inputs (recv events, at channel-chosen times) and
// asking for its next local step (at scheduler-chosen times).
//
// `snapshot()` serializes the automaton's full state; it exists for the
// bounded-exhaustive explorer (ioa/explorer.h) and for debugging, and two
// automata of the same type with equal snapshots must behave identically.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rstp/ioa/action.h"

namespace rstp::ioa {

class Automaton {
 public:
  virtual ~Automaton() = default;

  /// Human-readable automaton name (e.g. "A_t^beta(k=8)").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// The unique enabled local action in the current state, or nullopt if no
  /// local action is enabled (the automaton is stopped; a finite execution
  /// ending here is fair, §2.1).
  [[nodiscard]] virtual std::optional<Action> enabled_local() const = 0;

  /// Applies a transition. `action` must be either the currently enabled
  /// local action or an input action the automaton accepts; anything else is
  /// a contract violation.
  virtual void apply(const Action& action) = 0;

  /// True iff `action` is an input action of this automaton (in(A)).
  /// Input-enabledness: apply() must accept any such action in any state.
  [[nodiscard]] virtual bool accepts_input(const Action& action) const = 0;

  /// True when the automaton has finished all useful work and will only
  /// idle (or do nothing) unless it receives further input. Used by the
  /// simulator's quiescence detection; it never affects the transition
  /// relation itself.
  [[nodiscard]] virtual bool quiescent() const = 0;

  /// Serialized full state; equal snapshots (for the same concrete type)
  /// imply equal future behaviour. Used by the explorer for state hashing.
  [[nodiscard]] virtual std::string snapshot() const = 0;

  /// Deep copy, used by the explorer to branch the state space.
  [[nodiscard]] virtual std::unique_ptr<Automaton> clone() const = 0;

 protected:
  Automaton() = default;
  Automaton(const Automaton&) = default;
  Automaton& operator=(const Automaton&) = default;
};

/// Applies the enabled local action (if any) and returns it. Convenience for
/// drivers; returns nullopt when the automaton is stopped.
std::optional<Action> step_local(Automaton& a);

}  // namespace rstp::ioa
