// Error-handling primitives for the rstp library.
//
// Conventions (see DESIGN.md §7):
//   * RSTP_CHECK / RSTP_CHECK_* guard preconditions and invariants that a
//     correct caller must uphold; violations throw rstp::ContractViolation.
//     They are always on (never compiled out) — this library models a
//     correctness-critical protocol stack and silent UB is unacceptable.
//   * rstp::ModelError reports violations of the *paper's model* detected at
//     run time (e.g. a trace outside good(A), a channel policy exceeding the
//     delivery deadline). These are expected in negative tests.
//   * RSTP_UNREACHABLE marks impossible branches.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rstp {

/// Thrown when an RSTP_CHECK-style contract is violated: a programming error
/// in the caller or in the library itself, never a data-dependent condition.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a run-time object violates the paper's timing/channel model
/// (for example, a delivery policy that returns a time after the deadline).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void contract_failure(std::string_view condition, std::string_view message,
                                   const std::source_location& loc);

[[noreturn]] void unreachable_failure(std::string_view message, const std::source_location& loc);

}  // namespace detail

}  // namespace rstp

/// Check `cond`; on failure throw rstp::ContractViolation carrying the source
/// location and the optional message.
#define RSTP_CHECK(cond, ...)                                                       \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::rstp::detail::contract_failure(#cond, ::std::string_view{"" __VA_ARGS__},   \
                                       ::std::source_location::current());          \
    }                                                                               \
  } while (false)

/// Binary comparison checks with readable failure text.
#define RSTP_CHECK_EQ(a, b, ...) RSTP_CHECK((a) == (b), "" __VA_ARGS__)
#define RSTP_CHECK_NE(a, b, ...) RSTP_CHECK((a) != (b), "" __VA_ARGS__)
#define RSTP_CHECK_LT(a, b, ...) RSTP_CHECK((a) < (b), "" __VA_ARGS__)
#define RSTP_CHECK_LE(a, b, ...) RSTP_CHECK((a) <= (b), "" __VA_ARGS__)
#define RSTP_CHECK_GT(a, b, ...) RSTP_CHECK((a) > (b), "" __VA_ARGS__)
#define RSTP_CHECK_GE(a, b, ...) RSTP_CHECK((a) >= (b), "" __VA_ARGS__)

/// Mark a branch the author believes impossible. Throws if ever reached.
#define RSTP_UNREACHABLE(...)                                                      \
  ::rstp::detail::unreachable_failure(::std::string_view{"" __VA_ARGS__},          \
                                      ::std::source_location::current())
