// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (randomized schedulers, random
// delivery policies, property-test input generation) draws from an Rng seeded
// explicitly by the caller, so that every run — including failures found by
// property tests — is reproducible from its seed.
//
// The generator is xoshiro256**, seeded through SplitMix64 per the authors'
// recommendation. Both are tiny, fast, public-domain algorithms; we implement
// them here rather than using <random> engines because their output is
// specified exactly (bit-for-bit reproducibility across standard libraries).
#pragma once

#include <array>
#include <cstdint>

#include "rstp/common/check.h"
#include "rstp/common/time.h"

namespace rstp {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and handy as
/// a standalone mixing function for deriving per-component subseeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give independent-looking streams;
  /// the all-zero internal state is unreachable by construction.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  /// sampling (Lemire-style) so the distribution is exactly uniform.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform Duration in the closed range [lo, hi].
  [[nodiscard]] Duration next_duration(Duration lo, Duration hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Bernoulli(p) draw.
  [[nodiscard]] bool next_bool(double p = 0.5);

  /// Derive an independent child generator; used to give each component of a
  /// simulation (scheduler, channel, workload) its own stream so adding draws
  /// to one component does not perturb another.
  [[nodiscard]] Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rstp
