// Integral model time.
//
// The paper works over real time; we discretize to 64-bit integer "ticks" so
// that every quantity in the model (step gaps, delivery deadlines, effort
// numerators) is exact and every simulation is bit-reproducible. A tick has
// no fixed physical meaning — callers pick the resolution by scaling c1, c2
// and d (e.g. 1 tick = 1 µs).
//
// `Time` is an absolute instant (ticks since the start of the execution, the
// paper's t(π) with t(first event) = 0); `Duration` is a difference of
// instants. Both are strong types: mixing them up is a compile error.
#pragma once

#include <atomic>
#include <chrono>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "rstp/common/check.h"

namespace rstp {

class Duration;

/// A signed difference between two instants, in ticks. Durations appearing in
/// the model (c1, c2, d, gaps) are non-negative; negative values only arise
/// transiently in arithmetic and are rejected where the model requires
/// non-negativity.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }
  [[nodiscard]] constexpr bool is_negative() const { return ticks_ < 0; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  constexpr Duration& operator+=(Duration rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration rhs) {
    ticks_ -= rhs.ticks_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ticks_ + b.ticks_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ticks_ - b.ticks_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t s) { return Duration{a.ticks_ * s}; }
  friend constexpr Duration operator*(std::int64_t s, Duration a) { return Duration{a.ticks_ * s}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ticks_}; }

  /// Integer division of durations (used for δ = d/c computations); caller
  /// chooses floor/ceil explicitly via the free functions below.
  [[nodiscard]] constexpr std::int64_t floor_div(Duration divisor) const {
    RSTP_CHECK(divisor.ticks_ > 0, "duration division requires a positive divisor");
    std::int64_t q = ticks_ / divisor.ticks_;
    std::int64_t r = ticks_ % divisor.ticks_;
    if (r != 0 && ((r < 0) != (divisor.ticks_ < 0))) --q;
    return q;
  }
  [[nodiscard]] constexpr std::int64_t ceil_div(Duration divisor) const {
    RSTP_CHECK(divisor.ticks_ > 0, "duration division requires a positive divisor");
    return -((-*this).floor_div(divisor));
  }

 private:
  std::int64_t ticks_ = 0;
};

/// An absolute instant on the execution timeline (ticks since time 0).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time t, Duration d) { return Time{t.ticks_ + d.ticks()}; }
  friend constexpr Time operator+(Duration d, Time t) { return t + d; }
  friend constexpr Time operator-(Time t, Duration d) { return Time{t.ticks_ - d.ticks()}; }
  friend constexpr Duration operator-(Time a, Time b) { return Duration{a.ticks_ - b.ticks_}; }

  constexpr Time& operator+=(Duration d) {
    ticks_ += d.ticks();
    return *this;
  }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }

 private:
  std::int64_t ticks_ = 0;
};

/// Literal-style helpers: `ticks(5)` reads better than `Duration{5}` at call
/// sites dense with model arithmetic.
[[nodiscard]] constexpr Duration ticks(std::int64_t n) { return Duration{n}; }
[[nodiscard]] constexpr Time at_tick(std::int64_t n) { return Time{n}; }

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Time t);

// ---------------------------------------------------------------------------
// Host wall-clock time (profiling only — never part of the model).
//
// Model time above is integral and bit-reproducible; host time is the other
// domain: what the phase timers and the tracer's profiling spans are stamped
// with. The default source is std::chrono::steady_clock. On x86-64 hosts
// whose CPU advertises an invariant TSC, calibrate_host_clock() measures the
// TSC rate against steady_clock once at startup and host_now_ns() then reads
// the counter directly — roughly an order of magnitude cheaper per read than
// a clock_gettime call, which is what pushes the phase-timer pair floor
// below the documented ~265ns. Setting the environment variable RSTP_NO_TSC
// (to any value) forces the steady_clock fallback; so does a missing
// invariant-TSC bit or a failed calibration.

enum class HostClockSource : std::uint8_t {
  Steady,  ///< std::chrono::steady_clock (the portable fallback)
  Tsc,     ///< calibrated invariant rdtsc
};

/// Detects and calibrates the TSC once per process (idempotent, thread-safe).
/// Until the first call host_now_ns() reads steady_clock; after it, the best
/// available source. Callers that care about the phase-timer floor (e.g.
/// set_phase_timing_enabled) invoke this; everyone else may stay oblivious.
void calibrate_host_clock();

/// The source host_now_ns() currently reads.
[[nodiscard]] HostClockSource host_clock_source();
[[nodiscard]] const char* to_string(HostClockSource source);

namespace detail {

/// Calibration state for the TSC fast path. `active` flips to true only
/// after every other field is published (release/acquire pairing below), and
/// only ever flips once outside of tests.
struct HostClockState {
  std::atomic<bool> active{false};
  std::uint64_t tsc_base = 0;  ///< counter value at calibration
  std::uint64_t ns_base = 0;   ///< steady_clock ns at calibration
  std::uint64_t mult = 0;      ///< ns = (cycles * mult) >> kHostClockShift
};
inline constexpr unsigned kHostClockShift = 32;
extern HostClockState host_clock_state;

[[nodiscard]] inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

[[nodiscard]] inline std::uint64_t read_tsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return 0;
#endif
}

/// Re-runs detection + calibration, honoring the current environment. Tests
/// use this to force the RSTP_NO_TSC fallback after the process-wide
/// calibration already ran; production code calls calibrate_host_clock().
void recalibrate_host_clock_for_testing();
/// Flips between the calibrated TSC and the steady fallback without
/// re-calibrating (no-op if the TSC was never calibrated). Lets one process
/// measure both sources back to back.
void set_host_clock_source_for_testing(HostClockSource source);

}  // namespace detail

/// Current host time in nanoseconds (monotonic; epoch unspecified — only
/// differences are meaningful). Inline: with the TSC active this is one
/// counter read and a 128-bit multiply, no call.
[[nodiscard]] inline std::uint64_t host_now_ns() {
#if defined(__SIZEOF_INT128__)
  if (detail::host_clock_state.active.load(std::memory_order_acquire)) {
    const std::uint64_t cycles = detail::read_tsc() - detail::host_clock_state.tsc_base;
    return detail::host_clock_state.ns_base +
           static_cast<std::uint64_t>(
               (static_cast<unsigned __int128>(cycles) * detail::host_clock_state.mult) >>
               detail::kHostClockShift);
  }
#endif
  return detail::steady_now_ns();
}

}  // namespace rstp
