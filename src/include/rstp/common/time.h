// Integral model time.
//
// The paper works over real time; we discretize to 64-bit integer "ticks" so
// that every quantity in the model (step gaps, delivery deadlines, effort
// numerators) is exact and every simulation is bit-reproducible. A tick has
// no fixed physical meaning — callers pick the resolution by scaling c1, c2
// and d (e.g. 1 tick = 1 µs).
//
// `Time` is an absolute instant (ticks since the start of the execution, the
// paper's t(π) with t(first event) = 0); `Duration` is a difference of
// instants. Both are strong types: mixing them up is a compile error.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "rstp/common/check.h"

namespace rstp {

class Duration;

/// A signed difference between two instants, in ticks. Durations appearing in
/// the model (c1, c2, d, gaps) are non-negative; negative values only arise
/// transiently in arithmetic and are rejected where the model requires
/// non-negativity.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }
  [[nodiscard]] constexpr bool is_negative() const { return ticks_ < 0; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  constexpr Duration& operator+=(Duration rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration rhs) {
    ticks_ -= rhs.ticks_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ticks_ + b.ticks_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ticks_ - b.ticks_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t s) { return Duration{a.ticks_ * s}; }
  friend constexpr Duration operator*(std::int64_t s, Duration a) { return Duration{a.ticks_ * s}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ticks_}; }

  /// Integer division of durations (used for δ = d/c computations); caller
  /// chooses floor/ceil explicitly via the free functions below.
  [[nodiscard]] constexpr std::int64_t floor_div(Duration divisor) const {
    RSTP_CHECK(divisor.ticks_ > 0, "duration division requires a positive divisor");
    std::int64_t q = ticks_ / divisor.ticks_;
    std::int64_t r = ticks_ % divisor.ticks_;
    if (r != 0 && ((r < 0) != (divisor.ticks_ < 0))) --q;
    return q;
  }
  [[nodiscard]] constexpr std::int64_t ceil_div(Duration divisor) const {
    RSTP_CHECK(divisor.ticks_ > 0, "duration division requires a positive divisor");
    return -((-*this).floor_div(divisor));
  }

 private:
  std::int64_t ticks_ = 0;
};

/// An absolute instant on the execution timeline (ticks since time 0).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time t, Duration d) { return Time{t.ticks_ + d.ticks()}; }
  friend constexpr Time operator+(Duration d, Time t) { return t + d; }
  friend constexpr Time operator-(Time t, Duration d) { return Time{t.ticks_ - d.ticks()}; }
  friend constexpr Duration operator-(Time a, Time b) { return Duration{a.ticks_ - b.ticks_}; }

  constexpr Time& operator+=(Duration d) {
    ticks_ += d.ticks();
    return *this;
  }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }

 private:
  std::int64_t ticks_ = 0;
};

/// Literal-style helpers: `ticks(5)` reads better than `Duration{5}` at call
/// sites dense with model arithmetic.
[[nodiscard]] constexpr Duration ticks(std::int64_t n) { return Duration{n}; }
[[nodiscard]] constexpr Time at_tick(std::int64_t n) { return Time{n}; }

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace rstp
