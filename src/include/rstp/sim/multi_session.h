// The million-session multiplexed engine: N independent (transmitter,
// channel, receiver) sessions interleaved on one simulated clock.
//
// Where a Campaign parallelizes at job level (one complete session per grid
// cell, run to completion before the worker takes the next), MultiSession
// hosts many concurrent sessions inside one event loop — the regime the
// ROADMAP's "millions of users" north star actually needs, and the aggregate
// many-flows view the timing-channel capacity literature frames throughput
// in. The architecture:
//
//   * Sessions are split into a fixed number of shards (spec.shards,
//     independent of the worker count). Each shard owns a contiguous session
//     range and runs ONE event loop over all of them: a cross-session
//     time-ordered binary heap keyed by (next dispatch instant, session id)
//     pops the earliest session, advances it exactly one dispatch (a whole
//     due delivery batch, or one process step — Simulator::advance), and
//     pushes it back with its new instant. Within a session the single-
//     session tie rule (deliveries, then transmitter, then receiver) is
//     untouched; across sessions the session id breaks instant ties.
//   * Arena layout: each shard materializes its sessions once, into one
//     exactly-reserved contiguous slot vector, before its loop starts. The
//     per-step path allocates nothing — packets live in each session
//     channel's reusable heap + scratch buffers, and the heap entries are
//     16-byte PODs in a pre-reserved vector.
//   * Sessions are independent by construction (no cross-session actions),
//     so each session's execution — driven through the same incremental
//     Simulator API run() itself uses — is bitwise identical to a standalone
//     core::run_protocol call with the same derived seeds. Per-session seeds
//     come from the campaign's derivation (derive_unit_seeds over
//     base_seed + session id), making session i a pure function of the spec.
//   * Folds reuse the MetricsRegistry shard pattern: each worker folds its
//     shard's finished sessions in session order into a per-shard slot, and
//     the shard folds merge serially in shard order after the join. The
//     result is therefore bitwise identical across 1/3/8 threads and
//     invariant to the shard count (shards partition the session order into
//     contiguous runs, so the merged fold is always the session-order fold).
//
// events_per_sec / elapsed_seconds are the only wall-clock quantities and
// are excluded from every determinism comparison.
#pragma once

#include <cstdint>

#include "rstp/core/effort.h"
#include "rstp/core/params.h"
#include "rstp/obs/run_metrics.h"
#include "rstp/obs/sinks.h"
#include "rstp/protocols/factory.h"
#include "rstp/sim/campaign.h"

namespace rstp::sim {

/// The declarative multiplexed run: one protocol/timing/environment cell,
/// N sessions with per-session derived seeds.
struct MultiSessionSpec {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Alpha;
  core::TimingParams params{};
  std::uint32_t k = 2;
  std::size_t input_bits = 64;  ///< |X| per session (random, per-session seed)
  /// Scheduler/delivery-policy choice; the `seed` field is ignored and
  /// replaced by each session's derived seed.
  core::Environment environment{};
  std::uint64_t sessions = 1;
  std::uint64_t base_seed = 1;  ///< root of every derived per-session stream
  /// Fixed shard count (sessions are split into `shards` contiguous ranges).
  /// Independent of the thread count by design — it must be, for the merged
  /// result to be bitwise identical across thread counts.
  std::uint32_t shards = 16;
  std::uint64_t max_events_per_session = 10'000'000;

  /// Throws rstp::ContractViolation on an invalid spec.
  void validate() const;
};

/// The deterministic fold over all sessions (session order), plus the two
/// wall-clock throughput figures.
struct MultiSessionResult {
  std::uint64_t sessions = 0;
  std::uint64_t correct_sessions = 0;    ///< Y == X
  std::uint64_t quiescent_sessions = 0;  ///< ended in global quiescence
  std::uint64_t total_events = 0;
  /// min/max/mean effort over sessions that sent at least once.
  CampaignAggregate effort{};
  /// Fold of every session's RunMetrics in session order (all sessions share
  /// one TimingParams, so the histogram layouts merge exactly).
  obs::RunMetrics metrics;
  /// Wall-clock figures — observational, excluded from determinism checks.
  double elapsed_seconds = 0;
  double events_per_sec = 0;

  [[nodiscard]] bool all_correct() const {
    return correct_sessions == sessions && quiescent_sessions == sessions;
  }

  /// Everything except the wall-clock fields — the bitwise determinism
  /// contract across thread counts and shard/thread schedules.
  [[nodiscard]] bool same_simulation(const MultiSessionResult& rhs) const {
    return sessions == rhs.sessions && correct_sessions == rhs.correct_sessions &&
           quiescent_sessions == rhs.quiescent_sessions && total_events == rhs.total_events &&
           effort == rhs.effort && metrics == rhs.metrics;
  }
};

class MultiSession {
 public:
  /// Validates and freezes the spec.
  explicit MultiSession(MultiSessionSpec spec);

  [[nodiscard]] const MultiSessionSpec& spec() const { return spec_; }

  /// Runs every shard on `threads` workers (0 = hardware concurrency) and
  /// merges. The fold is bitwise identical for every thread count.
  [[nodiscard]] MultiSessionResult run(unsigned threads = 1) const;

 private:
  MultiSessionSpec spec_;
};

/// Flattens a multiplexed run into one JSONL-exportable record carrying the
/// cell identity (seed = base_seed), the session-order metric fold, and the
/// `sessions` / `events_per_sec` schema fields. effort is the mean over
/// sending sessions; correct/quiescent require every session to pass.
[[nodiscard]] obs::RunMetricsRecord multi_session_metrics_record(
    const MultiSessionSpec& spec, const MultiSessionResult& result);

/// The checked-in megasession baseline cell
/// (tests/golden/megasession_baseline.jsonl): the `rstp mega` defaults at
/// 10k sessions — alpha, (1,2,4), k=2, 64 bits, 16 shards, seed 0x3E6A —
/// regenerated with `rstp mega --sessions 10000 --metrics-out <path>`.
[[nodiscard]] MultiSessionSpec golden_megasession_spec();

}  // namespace rstp::sim
